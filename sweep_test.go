package feasim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"feasim"
	"feasim/internal/core"
)

// TestSweepDeterministicAcrossWorkerCounts runs the same grid on 1 and 4
// workers and requires identical per-point results: seeds are split from
// the root stream by grid index, not by worker scheduling.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	pr := feasim.Protocol{Batches: 5, BatchSize: 50, Level: 0.90}
	spec := feasim.SweepSpec{
		Base:      feasim.Scenario{J: 1000, W: 10, O: 10},
		Util:      []float64{0.05, 0.1, 0.2},
		TaskRatio: []float64{5, 10},
		Backends:  []string{feasim.BackendAnalytic, feasim.BackendExact},
		Seed:      2024,
		Protocol:  &pr,
	}
	run := func(workers int) []feasim.SweepResult {
		spec.Workers = workers
		res, err := feasim.CollectSweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if len(serial) != 12 || len(parallel) != 12 {
		t.Fatalf("grid sizes %d, %d; want 12 (2 backends x 3 utils x 2 ratios)", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Point.Index != b.Point.Index || a.Point.Backend != b.Point.Backend {
			t.Fatalf("point %d: ordering mismatch", i)
		}
		if a.Report.Scenario.Seed != b.Report.Scenario.Seed {
			t.Errorf("point %d: seeds differ across worker counts", i)
		}
		if a.Report.EJob != b.Report.EJob || a.Report.WeightedEfficiency != b.Report.WeightedEfficiency {
			t.Errorf("point %d (%s): results differ across worker counts: %v vs %v",
				i, a.Point.Backend, a.Report.EJob, b.Report.EJob)
		}
	}
}

// TestSweepCancelReturnsPromptly cancels a sweep of deliberately slow DES
// points and requires CollectSweep to come back quickly with
// context.Canceled.
func TestSweepCancelReturnsPromptly(t *testing.T) {
	pr := feasim.Protocol{Batches: 20, BatchSize: 1000, Level: 0.90}
	spec := feasim.SweepSpec{
		Base:     feasim.Scenario{J: 6000, W: 60, O: 10},
		Util:     []float64{0.05, 0.1, 0.2, 0.3},
		Backends: []string{feasim.BackendDES},
		Workers:  2,
		Protocol: &pr,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := feasim.CollectSweep(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled sweep took %v to return", elapsed)
	}
}

// TestSweepCancelMidFlight starts a long sweep, cancels after the first
// result arrives, and requires the stream to close promptly.
func TestSweepCancelMidFlight(t *testing.T) {
	pr := feasim.Protocol{Batches: 20, BatchSize: 1000, Level: 0.90, MaxRel: 0.001, MaxSamples: 1 << 30}
	spec := feasim.SweepSpec{
		Base:     feasim.Scenario{J: 6000, W: 60, O: 10},
		Util:     []float64{0.05, 0.1, 0.2, 0.3, 0.25, 0.15},
		Backends: []string{feasim.BackendDES},
		Workers:  2,
		Protocol: &pr,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := feasim.RunSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	for range ch {
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("sweep stream took %v to close after cancellation", elapsed)
	}
}

// TestSweepDedupesRepeatedAnalyticPoints crosses the analytic backend with
// an OwnerCV2 axis. The discrete model sees only the mean owner demand, so
// the three grid points share one solve; two must come from the cache.
func TestSweepDedupesRepeatedAnalyticPoints(t *testing.T) {
	spec := feasim.SweepSpec{
		Base:     feasim.Scenario{J: 1000, W: 10, O: 10, Util: 0.1},
		OwnerCV2: []float64{1, 4, 16},
		Backends: []string{feasim.BackendAnalytic},
		Workers:  1, // serial so cache hits are deterministic
		Seed:     5,
	}
	res, err := feasim.CollectSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	cached := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		if r.Cached {
			cached++
		}
		if r.Report.EJob != res[0].Report.EJob {
			t.Errorf("analytic answers should agree across OwnerCV2: %v vs %v",
				r.Report.EJob, res[0].Report.EJob)
		}
	}
	if cached != 2 {
		t.Errorf("cache served %d points, want 2", cached)
	}
}

// TestSweepTaskRatioAxis checks the J = ratio·O·W expansion.
func TestSweepTaskRatioAxis(t *testing.T) {
	spec := feasim.SweepSpec{
		Base:      feasim.Scenario{W: 10, O: 10, Util: 0.1, J: 1},
		W:         []int{10, 20},
		TaskRatio: []float64{8, 13},
		Seed:      1,
	}
	res, err := feasim.CollectSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, r := range res {
		s := r.Point.Scenario
		wantJ := float64(s.W) * s.O * r.Report.TaskRatio
		if s.J != wantJ {
			t.Errorf("point %d: J=%g, want ratio·O·W=%g", r.Point.Index, s.J, wantJ)
		}
	}
}

// TestSweepGoldenFile loads the checked-in sweep spec and runs it.
func TestSweepGoldenFile(t *testing.T) {
	spec, err := feasim.LoadSweep("testdata/sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := feasim.CollectSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 27 { // 3 backends x 3 utils x 3 ratios
		t.Fatalf("got %d results, want 27", len(res))
	}
	backends := make(map[string]int)
	for _, r := range res {
		backends[r.Point.Backend]++
	}
	for _, b := range feasim.Backends() {
		if backends[b] != 9 {
			t.Errorf("backend %s answered %d points, want 9", b, backends[b])
		}
	}
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("point %d (%s): %v", r.Point.Index, r.Point.Backend, r.Err)
		}
	}
}

func TestSweepRejectsUnknownBackend(t *testing.T) {
	spec := feasim.SweepSpec{
		Base:     feasim.Scenario{J: 1000, W: 10, O: 10, Util: 0.1},
		Backends: []string{"csim"},
	}
	if _, err := feasim.CollectSweep(context.Background(), spec); err == nil {
		t.Error("unknown backend should fail the sweep up front")
	}
}

// TestSweepFixedTPSharesKernelTables runs a W-grid at a fixed task demand
// and owner probability — the memory-bounded-scaleup shape — across many
// workers, and asserts the process-wide binomial table memo absorbed the
// kernel work: every point after the first per (T, P) must hit the cache,
// no matter which worker solves it.
func TestSweepFixedTPSharesKernelTables(t *testing.T) {
	ws := make([]int, 0, 40)
	for w := 2; w <= 80; w += 2 {
		ws = append(ws, w)
	}
	utils := []float64{0.05, 0.2}
	spec := feasim.SweepSpec{
		Base:      feasim.Scenario{Name: "fixedtp", O: 10},
		W:         ws,
		Util:      utils,
		TaskRatio: []float64{300}, // T = 3000 fixed: J = ratio·O·W tracks W
		Backends:  []string{feasim.BackendAnalytic},
		Workers:   8,
		Seed:      1,
	}
	hits0, misses0 := core.TablesCacheStats()
	res, err := feasim.CollectSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ws) * len(utils); len(res) != want {
		t.Fatalf("got %d points, want %d", len(res), want)
	}
	// Tables builds outside the cache lock, so workers racing on a cold key
	// may each count one benign duplicate miss: the bound per (T, P) pair is
	// the worker count, not 1. What must not happen is per-point rebuilding.
	hits1, misses1 := core.TablesCacheStats()
	maxBuilds := uint64(len(utils) * spec.Workers)
	builds := misses1 - misses0
	if builds > maxBuilds {
		t.Errorf("%d table builds for %d distinct (T, P) pairs on %d workers (max %d): points are not sharing the memo",
			builds, len(utils), spec.Workers, maxBuilds)
	}
	if got, min := hits1-hits0, uint64(len(res))-builds; got < min {
		t.Errorf("only %d table-cache hits, want >= %d", got, min)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d failed: %v", r.Point.Index, r.Err)
		}
	}
}
