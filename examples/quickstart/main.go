// Quickstart: evaluate the feasibility model at one point, check the
// verdict, and validate the analysis by simulation — the library's three
// core calls in ~40 lines.
package main

import (
	"fmt"
	"log"

	"feasim"
)

func main() {
	// A 12,000-unit job on 60 workstations whose owners use 5% of their
	// machines in 10-unit bursts.
	p, err := feasim.ParamsFromUtilization(12000, 60, 10, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	r, err := feasim.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task ratio %.1f → speedup %.1f of %d, weighted efficiency %.2f\n",
		r.Metrics.TaskRatio, r.Speedup, p.W, r.WeightedEfficiency)

	// Is that good enough? The paper's bar: 80% of the possible speedup.
	v, err := feasim.Assess(p, 0.80)
	if err != nil {
		log.Fatal(err)
	}
	if v.Feasible {
		fmt.Println("verdict: feasible — idle cycles are worth stealing")
	} else {
		fmt.Printf("verdict: infeasible — grow the job to J >= %.0f (task ratio %d)\n",
			v.MinJobDemand, v.MinRatio)
	}

	// Trust but verify: the paper's own validation, simulation vs analysis.
	pr := feasim.Protocol{Batches: 20, BatchSize: 500, Level: 0.90, MaxSamples: 1 << 20}
	run, ana, ok, err := feasim.ValidateAgainstAnalysis(p, pr, 42, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated E[job time] %v vs analysis %.2f — agreement: %v\n",
		run.JobTime, ana.EJob, ok)
}
