// Quickstart: declare the feasibility question once as a Scenario, then ask
// all three solver backends — the paper's exact analysis, the discrete-time
// validation simulator, and the discrete-event engine — to answer it.
package main

import (
	"context"
	"fmt"
	"log"

	"feasim"
)

func main() {
	ctx := context.Background()

	// A 12,000-unit job on 60 workstations whose owners use 5% of their
	// machines in 10-unit bursts. The paper's bar: 80% of the possible
	// speedup.
	s := feasim.Scenario{
		Name: "quickstart",
		J:    12000, W: 60, O: 10, Util: 0.05,
		TargetEff: 0.80,
		Seed:      42,
	}

	// 1. The paper's exact analysis (equations (1)-(8) + threshold solver).
	ana, err := feasim.NewAnalyticSolver().Solve(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task ratio %.1f → speedup %.1f of %d, weighted efficiency %.2f\n",
		ana.TaskRatio, ana.Speedup, ana.W, ana.WeightedEfficiency)
	if *ana.Feasible {
		fmt.Println("verdict: feasible — idle cycles are worth stealing")
	} else {
		fmt.Printf("verdict: infeasible — grow the job to J >= %.0f (task ratio %d)\n",
			ana.MinJobDemand, ana.MinRatio)
	}

	// 2. Trust but verify: the discrete-time simulator answers the same
	// scenario under the paper's batch-means protocol.
	pr := feasim.Protocol{Batches: 20, BatchSize: 500, Level: 0.90, MaxSamples: 1 << 20}
	exact, err := feasim.NewExactSimSolver(pr).Solve(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated weighted efficiency [%.3f, %.3f] vs analysis %.3f — agreement: %v\n",
		exact.WeffCI.Lo, exact.WeffCI.Hi, ana.WeightedEfficiency,
		exact.WeffCI.Widen(0.5).Contains(ana.WeightedEfficiency))

	// 3. Drop the model's optimistic assumptions: wall-clock owner think
	// times and high-variance owner bursts on the discrete-event engine.
	noisy := s
	noisy.OwnerCV2 = 16
	des, err := feasim.NewDESSolver(pr, 10).Solve(ctx, noisy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with CV²=16 owner bursts the DES backend measures weighted efficiency %.3f (analysis sees only the mean: %.3f)\n",
		des.WeightedEfficiency, ana.WeightedEfficiency)
}
