// Task-ratio advisor: the paper's headline engineering question, answered
// for a concrete shop. Given a cluster (size, owner behaviour measured à la
// uptime) and a candidate parallel application, report whether the job is
// big enough to steal cycles efficiently — and if not, how big it must be.
//
// The paper's rule of thumb (Section 5): at 5% owner utilization the task
// ratio must reach ~8 for 80% of the possible speedup; ~13 at 10%; ~20 at
// 20%. This example recomputes those thresholds for the actual environment
// instead of interpolating the paper's three points.
package main

import (
	"fmt"
	"log"

	"feasim"
)

// candidate describes one parallel application a user is considering.
type candidate struct {
	name string
	j    float64 // total demand, in the same units as the owner burst O
}

func main() {
	const (
		workstations = 48
		ownerBurst   = 10.0 // mean owner burst demand (time units)
		target       = 0.80 // fraction of possible speedup we insist on
	)
	utils := []float64{0.02, 0.05, 0.10, 0.20}

	fmt.Printf("cluster: %d workstations, owner bursts of %g units, target %.0f%% weighted efficiency\n\n",
		workstations, ownerBurst, target*100)

	// Environment-specific threshold table (the paper's conclusions table,
	// recomputed for this cluster size).
	rows, err := feasim.ThresholdTable(workstations, ownerBurst, target, utils)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-16s %-18s\n", "owner util", "min task ratio", "min job demand J")
	for _, r := range rows {
		fmt.Printf("%-14s %-16d %-18.0f\n", fmt.Sprintf("%.0f%%", r.Util*100), r.MinRatio,
			float64(r.MinRatio)*ownerBurst*workstations)
	}

	// Now judge three real candidates at the measured utilization.
	const measuredUtil = 0.05
	candidates := []candidate{
		{"nightly-regression", 2_000},
		{"parameter-sweep", 12_000},
		{"monte-carlo-pricing", 200_000},
	}
	fmt.Printf("\ncandidates at measured owner utilization %.0f%%:\n", measuredUtil*100)
	fmt.Printf("%-22s %-12s %-12s %-10s %s\n", "application", "task ratio", "weff", "verdict", "advice")
	for _, cand := range candidates {
		p, err := feasim.ParamsFromUtilization(cand.j, workstations, ownerBurst, measuredUtil)
		if err != nil {
			log.Fatal(err)
		}
		v, err := feasim.Assess(p, target)
		if err != nil {
			log.Fatal(err)
		}
		verdict, advice := "RUN", "-"
		if !v.Feasible {
			verdict = "DON'T"
			advice = fmt.Sprintf("batch work until J >= %.0f", v.MinJobDemand)
		}
		fmt.Printf("%-22s %-12.1f %-12.3f %-10s %s\n",
			cand.name, v.Result.Metrics.TaskRatio, v.WeightedEfficiency, verdict, advice)
	}

	// And show the flip side: the same infeasible job becomes feasible on a
	// smaller partition of the cluster (fewer workstations → larger tasks).
	small := candidates[0]
	fmt.Printf("\nright-sizing %q (J=%.0f):\n", small.name, small.j)
	fmt.Printf("%-14s %-12s %-10s\n", "workstations", "weff", "verdict")
	for _, w := range []int{48, 24, 12, 6, 3} {
		p, err := feasim.ParamsFromUtilization(small.j, w, ownerBurst, measuredUtil)
		if err != nil {
			log.Fatal(err)
		}
		r, err := feasim.Analyze(p)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "RUN"
		if r.WeightedEfficiency < target {
			verdict = "DON'T"
		}
		fmt.Printf("%-14d %-12.3f %-10s\n", w, r.WeightedEfficiency, verdict)
	}
}
