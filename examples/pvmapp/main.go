// pvmapp is a complete master/worker application written against the
// PVM-style API on the virtual non-dedicated cluster: a Monte Carlo
// estimate of pi, partitioned across workstations, with the work done
// through each station's preemptible CPU. It demonstrates the messaging
// primitives the paper's experiment used — spawn, typed pack/unpack,
// tagged send/recv, groups and barrier — and reports the same per-task
// interference measurements.
package main

import (
	"fmt"
	"log"

	"feasim"
)

const (
	tagParams = 10 // master → worker: samples to draw, compute cost
	tagResult = 11 // worker → master: hits, task record
)

func main() {
	const (
		workers       = 8
		totalSamples  = 800_000
		unitsPerBatch = 75.0 // virtual compute seconds per 100k samples
		ownerUtil     = 0.10 // a busier cluster than the paper's 3%
	)

	params, err := feasim.SunELCParams(10, ownerUtil)
	if err != nil {
		log.Fatal(err)
	}
	clu, err := feasim.NewCluster(workers, params, 2024)
	if err != nil {
		log.Fatal(err)
	}

	vm, err := feasim.NewVM(feasim.PVMConfig{Hosts: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer vm.Halt()

	worker := func(t *feasim.PVMTask) error {
		t.JoinGroup("pi")
		if err := t.Barrier("pi", workers); err != nil {
			return err
		}
		m, err := t.Recv(t.Parent(), tagParams)
		if err != nil {
			return err
		}
		n, err := m.Body.UnpackInt64()
		if err != nil {
			return err
		}
		seed, err := m.Body.UnpackInt64()
		if err != nil {
			return err
		}

		// The actual computation, metered through the non-dedicated CPU:
		// the station stretches the virtual time according to owner
		// interference, exactly like a niced process.
		st, err := clu.Station(t.Host())
		if err != nil {
			return err
		}
		rec := st.RunTask(float64(n) / 100_000 * unitsPerBatch)

		// The numeric work itself (instantaneous in wall time; its cost is
		// what RunTask just accounted for).
		stream := feasim.NewStream(uint64(seed))
		var hits int64
		for i := int64(0); i < n; i++ {
			x, y := stream.Float64(), stream.Float64()
			if x*x+y*y < 1 {
				hits++
			}
		}

		reply := feasim.NewMsgBuffer().
			PackInt64(hits).
			PackInt64(n).
			PackFloat64(rec.Elapsed).
			PackFloat64(rec.OwnerTime).
			PackInt32(int32(rec.Bursts))
		return t.Send(t.Parent(), tagResult, reply)
	}

	master, err := vm.Spawn("master", 0, 0, func(t *feasim.PVMTask) error {
		tids, err := t.SpawnN("pi-worker", workers, worker)
		if err != nil {
			return err
		}
		per := int64(totalSamples / workers)
		for i, tid := range tids {
			msg := feasim.NewMsgBuffer().PackInt64(per).PackInt64(int64(1000 + i))
			if err := t.Send(tid, tagParams, msg); err != nil {
				return err
			}
		}
		var hits, n int64
		var maxElapsed, totalOwner float64
		var bursts int32
		for range tids {
			m, err := t.Recv(feasim.AnyTID, tagResult)
			if err != nil {
				return err
			}
			h, err := m.Body.UnpackInt64()
			if err != nil {
				return err
			}
			k, err := m.Body.UnpackInt64()
			if err != nil {
				return err
			}
			elapsed, err := m.Body.UnpackFloat64()
			if err != nil {
				return err
			}
			owner, err := m.Body.UnpackFloat64()
			if err != nil {
				return err
			}
			b, err := m.Body.UnpackInt32()
			if err != nil {
				return err
			}
			hits += h
			n += k
			totalOwner += owner
			bursts += b
			if elapsed > maxElapsed {
				maxElapsed = elapsed
			}
		}
		fmt.Printf("pi ≈ %.6f from %d samples across %d workstations\n",
			4*float64(hits)/float64(n), n, workers)
		fmt.Printf("max task time %.1f virtual s; owner stole %.1f s over %d bursts\n",
			maxElapsed, totalOwner, bursts)

		// Compare against the model's prediction for this job shape.
		demand := float64(totalSamples) / 100_000 * unitsPerBatch
		p, err := feasim.ParamsFromUtilization(demand, workers, 10, ownerUtil)
		if err != nil {
			return err
		}
		r, err := feasim.Analyze(p)
		if err != nil {
			return err
		}
		fmt.Printf("model: task ratio %.1f, predicted E[max task] %.1f s, weighted efficiency %.2f\n",
			r.Metrics.TaskRatio, r.EJob, r.WeightedEfficiency)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Wait(master); err != nil {
		log.Fatal(err)
	}
}
