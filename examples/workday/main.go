// Workday planning: the paper calibrated against uptime averaged "over two
// working days", but real owner activity has a day/night cycle. This
// example uses the phased-station extension to answer an operational
// question the averaged model cannot: when should a cycle-stealing job
// launch, and what does launching early cost?
package main

import (
	"fmt"
	"log"

	"feasim"
)

func main() {
	const (
		ownerBurst = 10.0
		dayUtil    = 0.25 // 8 busy office hours
		nightUtil  = 0.02 // 16 quiet hours
		dayLen     = 8 * 3600.0
		nightLen   = 16 * 3600.0
		demand     = 3 * 3600.0 // a 3-hour task per workstation
		runs       = 400
	)

	sched, err := feasim.Workday(dayUtil, nightUtil, ownerBurst, dayLen, nightLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner schedule: %.0fh day at %.0f%%, %.0fh night at %.0f%% (mean %.1f%%)\n",
		dayLen/3600, dayUtil*100, nightLen/3600, nightUtil*100, sched.MeanUtilization()*100)
	fmt.Printf("task: %.0fh of compute per workstation\n\n", demand/3600)

	// Sweep launch times through the day (hour 0 = office opening).
	fmt.Printf("%-12s %-16s %-14s\n", "launch", "mean task (h)", "stretch")
	st, err := feasim.NewPhasedStation("ws", sched, feasim.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}
	type point struct {
		hour    float64
		stretch float64
	}
	var bestPt, worstPt point
	for _, hour := range []float64{0, 4, 7, 8, 12, 20, 23} {
		var sum feasim.Summary
		for i := 0; i < runs; i++ {
			sum.Add(st.RunTaskAt(hour*3600, demand).Elapsed)
		}
		stretch := sum.Mean() / demand
		fmt.Printf("%-12s %-16.2f %-14.3f\n",
			fmt.Sprintf("hour %02.0f", hour), sum.Mean()/3600, stretch)
		pt := point{hour, stretch}
		if bestPt.stretch == 0 || pt.stretch < bestPt.stretch {
			bestPt = pt
		}
		if pt.stretch > worstPt.stretch {
			worstPt = pt
		}
	}
	fmt.Printf("\nbest launch: hour %02.0f (stretch %.3f); worst: hour %02.0f (stretch %.3f)\n",
		bestPt.hour, bestPt.stretch, worstPt.hour, worstPt.stretch)

	// Compare against what the averaged (paper-style) model predicts: a
	// single utilization equal to the day/night mean. The average is a poor
	// guide for short jobs — it undercharges daytime runs and overcharges
	// night runs.
	p, err := feasim.ParamsFromUtilization(demand, 1, ownerBurst, sched.MeanUtilization())
	if err != nil {
		log.Fatal(err)
	}
	r, err := feasim.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("averaged-utilization model predicts stretch %.3f for every launch time\n",
		r.ETask/demand)
	fmt.Println("→ launching at office close instead of office open saves",
		fmt.Sprintf("%.0f minutes on a 3-hour task.", (worstPt.stretch-bestPt.stretch)*demand/60))
}
