// Scaled-problem study (paper Section 3.2): under memory-bounded scaleup
// the per-task demand — and so the task ratio — stays constant as
// workstations are added, which is why cycle stealing shines for scaled
// problems. This example sweeps system size at several owner utilizations
// and renders the paper's Figure 9 as ASCII, then quantifies the scaleup.
package main

import (
	"fmt"
	"log"

	"feasim"
)

func main() {
	const (
		taskDemand = 100.0 // T per workstation (J = T*W)
		ownerBurst = 10.0
	)
	utils := []float64{0.01, 0.05, 0.1, 0.2}
	ws := []int{1, 2, 5, 10, 20, 40, 60, 80, 100}

	fig := feasim.Figure{
		ID:     "scaled",
		Title:  "Scaled problem: response time vs system size (T fixed at 100)",
		XLabel: "workstations",
		YLabel: "E[job time]",
	}
	fmt.Printf("%-8s", "W")
	for _, u := range utils {
		fmt.Printf("  util=%-6.2f", u)
	}
	fmt.Println()

	curves := make(map[float64][]feasim.ScaledPoint)
	for _, u := range utils {
		pts, err := feasim.ScaledSweep(taskDemand, ownerBurst, u, ws)
		if err != nil {
			log.Fatal(err)
		}
		curves[u] = pts
		s := feasim.Series{Name: fmt.Sprintf("util=%g", u)}
		for _, pt := range pts {
			s.X = append(s.X, float64(pt.W))
			s.Y = append(s.Y, pt.Result.EJob)
		}
		fig.Series = append(fig.Series, s)
	}
	for i, w := range ws {
		fmt.Printf("%-8d", w)
		for _, u := range utils {
			fmt.Printf("  %-11.2f", curves[u][i].Result.EJob)
		}
		fmt.Println()
	}

	art, err := feasim.RenderASCII(fig, 90, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(art)

	// The paper's takeaway: 100x the work for a modest response-time cost.
	fmt.Println("scaling 1 → 100 workstations (100x the total work):")
	for _, u := range utils {
		last := curves[u][len(ws)-1]
		fmt.Printf("  util %4.0f%%: +%.0f%% response time, scaleup %.1f of %d\n",
			u*100, last.IncreaseVsDedicated*100,
			float64(last.W)*curves[u][0].Result.EJob/last.Result.EJob, last.W)
	}
}
