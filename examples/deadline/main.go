// Deadline planning: the model gives the full distribution of job
// completion time, not just its mean, so a batch scheduler can answer
// "what is the probability this job finishes before the owners arrive at
// 9am?" and right-size the allocation accordingly.
//
// Scenario: a nightly job of 14,400 units (4 dedicated hours at one unit
// per second) must finish within a 35-minute maintenance window on a pool
// of 16 workstations whose owners average 10% remnant utilization. How many
// workstations should it use, and how confident are we?
package main

import (
	"context"
	"fmt"
	"log"

	"feasim"
)

func main() {
	const (
		jobDemand  = 14400.0 // total compute (unit = 1 second)
		ownerBurst = 10.0
		ownerUtil  = 0.10
		window     = 2100.0 // the maintenance window in seconds (35 min)
		maxW       = 16     // machines available in the overnight pool
	)

	fmt.Printf("job: %.0f s of dedicated compute; window: %.0f s; owners: %.0f%% in %gs bursts\n\n",
		jobDemand, window, ownerUtil*100, ownerBurst)

	// Sweep candidate allocations with the declarative API: one Scenario
	// per W, each carrying the deadline, answered by the analytic solver.
	// The quantile columns still come from the exact completion-time
	// distribution.
	ctx := context.Background()
	solver := feasim.NewAnalyticSolver()
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s %-14s\n",
		"W", "E[job] (s)", "p50 (s)", "p95 (s)", "p99.9 (s)", "P(make window)")
	for _, w := range []int{4, 8, 10, 12, 16} {
		s := feasim.Scenario{
			Name: "overnight", J: jobDemand, W: w, O: ownerBurst, Util: ownerUtil,
			Deadline: window,
		}
		rep, err := solver.Solve(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		p, err := feasim.ParamsFromUtilization(jobDemand, w, ownerBurst, ownerUtil)
		if err != nil {
			log.Fatal(err)
		}
		d, err := feasim.JobTimeDistribution(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-12.0f %-12.0f %-12.0f %-12.0f %-14.6f\n",
			w, rep.EJob, d.Quantile(0.5), d.Quantile(0.95), d.Quantile(0.999), *rep.DeadlineProb)
	}

	// The efficiency-aware choice: the largest W still meeting 85% weighted
	// efficiency (don't waste the pool just to shave minutes).
	plan, err := feasim.PlanPartition(jobDemand, ownerBurst, ownerUtil, 0.85, maxW)
	if err != nil {
		log.Fatal(err)
	}
	chosen := feasim.Scenario{
		Name: "overnight", J: jobDemand, W: plan.W, O: ownerBurst, Util: ownerUtil,
		Deadline: window,
	}
	rep, err := solver.Solve(ctx, chosen)
	if err != nil {
		log.Fatal(err)
	}
	prob := *rep.DeadlineProb
	fmt.Printf("\nrecommended allocation: W=%d (weighted efficiency %.3f, task ratio %.0f)\n",
		plan.W, plan.Result.WeightedEfficiency, plan.Result.Metrics.TaskRatio)
	fmt.Printf("deadline confidence at W=%d: %.6f\n", plan.W, prob)

	// Cross-check the distribution against simulation at the chosen W.
	x, err := feasim.NewExactSimulator(feasim.NewParams(jobDemand, plan.W, ownerBurst, plan.Result.P), 7)
	if err != nil {
		log.Fatal(err)
	}
	misses := 0
	const runs = 20000
	for i := 0; i < runs; i++ {
		if x.Sample().JobTime > window {
			misses++
		}
	}
	fmt.Printf("simulated miss rate over %d nights: %.6f (model: %.6f)\n",
		runs, float64(misses)/runs, 1-prob)
}
