// Sweep-grid: recompute the paper's conclusions as a parallel sweep, then
// stress them. A single SweepSpec fans (owner utilization × task ratio ×
// owner-burst variance) across the analytic and DES backends on a
// context-cancellable worker pool; results stream in as each point
// completes. The analytic model sees only the mean owner demand, so its
// half of the grid repeats across the OwnerCV2 axis and is deduplicated by
// the in-memory cache, while the DES backend shows what CV²=16 bursts do
// to the weighted efficiency the analysis promises.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"feasim"
)

func main() {
	// A guard rail for the whole sweep: the worker pool unwinds promptly if
	// the budget expires.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	pr := feasim.Protocol{Batches: 5, BatchSize: 100, Level: 0.90}
	spec := feasim.SweepSpec{
		Base:      feasim.Scenario{Name: "conclusions", W: 12, O: 10, J: 1},
		Util:      []float64{0.05, 0.2},
		TaskRatio: []float64{4, 8, 13},
		OwnerCV2:  []float64{1, 16}, // felt by the DES backend; analytic dedups
		Backends:  []string{feasim.BackendAnalytic, feasim.BackendDES},
		Seed:      1993,
		Protocol:  &pr,
	}

	ch, err := feasim.RunSweep(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("weighted efficiency per (util, task ratio, owner CV²) — paper's bar is 0.80")
	fmt.Printf("%-6s %-9s %-6s %-7s %-5s %-10s %s\n",
		"point", "backend", "util", "ratio", "cv2", "weff", "notes")
	solved, cached := 0, 0
	for res := range ch {
		if res.Err != nil {
			fmt.Printf("%-6d %-9s error: %v\n", res.Point.Index, res.Point.Backend, res.Err)
			continue
		}
		solved++
		notes := ""
		if res.Cached {
			cached++
			notes = "cached"
		}
		s := res.Point.Scenario
		fmt.Printf("%-6d %-9s %-6.2f %-7.4g %-5.4g %-10.4f %s\n",
			res.Point.Index, res.Point.Backend, s.Util, res.Report.TaskRatio, s.OwnerCV2,
			res.Report.WeightedEfficiency, notes)
	}
	if err := ctx.Err(); err != nil {
		log.Fatalf("sweep cut short after %d points: %v", solved, err)
	}
	fmt.Printf("\n%d points solved, %d deduplicated by the analytic cache\n", solved, cached)
}
