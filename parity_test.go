package feasim_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"feasim"
)

// The cross-backend parity suite: one canonical query per kind, fanned
// across every backend. A (backend, kind) pair advertised in Capabilities
// must agree with the analytic answer within the stated tolerance; a pair
// *not* advertised must refuse with ErrUnsupported carrying the pair — so
// capability claims and behavior cannot drift apart in either direction.

// parityPr keeps the simulated probes fast while leaving the confidence
// intervals meaningful.
var parityPr = feasim.Protocol{Batches: 8, BatchSize: 80, Level: 0.90}

// paritySolvers builds the full backend set under the parity protocol.
func paritySolvers() []feasim.Solver {
	return []feasim.Solver{
		feasim.NewAnalyticSolver(),
		feasim.NewExactSimSolver(parityPr),
		feasim.NewDESSolver(parityPr, 10),
	}
}

// parityCheck compares one backend's answer against the analytic answer for
// the same query.
type parityCheck func(t *testing.T, backend string, got, analytic feasim.Answer)

// parityQueries is the canonical query-per-kind table. The scenario keeps
// T = J/W integral so the exact simulator can answer, and stays small so
// the empirical bisections and batch runs are cheap.
func parityQueries() map[string]struct {
	query feasim.Query
	check parityCheck
} {
	sc := feasim.Scenario{Name: "parity", J: 400, W: 4, O: 10, Util: 0.05, Seed: 1993}
	return map[string]struct {
		query feasim.Query
		check parityCheck
	}{
		feasim.KindReport: {
			query: feasim.ReportQuery{Scenario: sc},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g, a := got.(feasim.ReportAnswer).Report, analytic.(feasim.ReportAnswer).Report
				if g.Backend != backend {
					t.Errorf("report backend %q", g.Backend)
				}
				if backend == feasim.BackendAnalytic {
					return
				}
				if rel := math.Abs(g.EJob-a.EJob) / a.EJob; rel > 0.05 {
					t.Errorf("E[job] %.3f vs analytic %.3f: off %.1f%%", g.EJob, a.EJob, rel*100)
				}
				if ci := g.WeffCI.Widen(0.75); !ci.Contains(a.WeightedEfficiency) {
					t.Errorf("weff CI [%.4f, %.4f] misses analytic %.4f", ci.Lo, ci.Hi, a.WeightedEfficiency)
				}
				if g.Samples == 0 {
					t.Error("simulated report should carry a sample count")
				}
			},
		},
		feasim.KindThreshold: {
			query: feasim.ThresholdQuery{W: 4, O: 10, Util: 0.05, TargetEff: 0.7, Seed: 1993},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g, a := got.(feasim.ThresholdAnswer), analytic.(feasim.ThresholdAnswer)
				if d := g.MinRatio - a.MinRatio; d < -1 || d > 1 {
					t.Errorf("min ratio %d vs analytic %d: off by more than one step", g.MinRatio, a.MinRatio)
				}
				if g.MinJobDemand != float64(g.MinRatio)*10*4 {
					t.Errorf("min job demand %.0f != ratio·O·W", g.MinJobDemand)
				}
				if backend != feasim.BackendAnalytic && (g.Probes == 0 || g.Samples == 0) {
					t.Errorf("empirical answer should report bisection cost: probes=%d samples=%d", g.Probes, g.Samples)
				}
			},
		},
		feasim.KindPartition: {
			query: feasim.PartitionQuery{J: 400, O: 10, Util: 0.05, TargetEff: 0.5, MaxW: 8, Seed: 7},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g, a := got.(feasim.PartitionAnswer), analytic.(feasim.PartitionAnswer)
				if g.W < 1 || g.W > 8 {
					t.Fatalf("chosen W=%d outside [1, 8]", g.W)
				}
				if d := g.W - a.W; d < -2 || d > 2 {
					t.Errorf("right-size W=%d vs analytic %d: too far apart", g.W, a.W)
				}
				if g.Report.WeightedEfficiency < 0.5 {
					t.Errorf("report at chosen W=%d has weff %.4f below target", g.W, g.Report.WeightedEfficiency)
				}
			},
		},
		feasim.KindDistribution: {
			query: feasim.DistributionQuery{
				Scenario:  sc,
				Quantiles: []float64{0.5, 0.9},
				Deadlines: []float64{110},
			},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g, a := got.(feasim.DistributionAnswer), analytic.(feasim.DistributionAnswer)
				if backend == feasim.BackendAnalytic {
					return
				}
				if rel := math.Abs(g.Mean-a.Mean) / a.Mean; rel > 0.05 {
					t.Errorf("mean %.3f vs analytic %.3f: off %.1f%%", g.Mean, a.Mean, rel*100)
				}
				for i := range a.Quantiles {
					// The job time lives on the lattice T + k·O, so empirical
					// quantiles should land within one O step.
					if d := math.Abs(g.Quantiles[i].Time - a.Quantiles[i].Time); d > 10 {
						t.Errorf("q%g: empirical %.1f vs exact %.1f", a.Quantiles[i].Q*100, g.Quantiles[i].Time, a.Quantiles[i].Time)
					}
				}
				if d := math.Abs(g.Deadlines[0].Prob - a.Deadlines[0].Prob); d > 0.1 {
					t.Errorf("P(done by 110): empirical %.3f vs exact %.3f", g.Deadlines[0].Prob, a.Deadlines[0].Prob)
				}
				if g.Samples == 0 {
					t.Error("empirical distribution should carry a sample count")
				}
			},
		},
		feasim.KindTimeline: {
			query: feasim.TimelineQuery{
				Scenario: feasim.Scenario{
					Name: "parity", J: 400, W: 4, O: 10, Seed: 1993, TargetEff: 0.5,
					Schedule: []feasim.PhaseSpec{
						{Name: "day", Duration: 600, Util: 0.1},
						{Name: "night", Duration: 600, Util: 0.01},
					},
				},
				Samples: 120,
			},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g, a := got.(feasim.TimelineAnswer), analytic.(feasim.TimelineAnswer)
				if g.Backend != backend {
					t.Errorf("timeline backend %q", g.Backend)
				}
				if g.CycleLength != 1200 {
					t.Errorf("cycle length %v, want 1200", g.CycleLength)
				}
				if len(g.Epochs) != len(a.Epochs) {
					t.Fatalf("%d epochs vs analytic %d", len(g.Epochs), len(a.Epochs))
				}
				for i, ep := range g.Epochs {
					ref := a.Epochs[i]
					if ep.Start != ref.Start || ep.Phase != ref.Phase {
						t.Fatalf("epoch %d launch (%v, %q) vs analytic (%v, %q)", i, ep.Start, ep.Phase, ref.Start, ref.Phase)
					}
					if ep.Feasible == nil {
						t.Errorf("epoch %d: target_eff set but no feasibility verdict", i)
					}
					if backend == feasim.BackendAnalytic {
						continue
					}
					if rel := math.Abs(ep.EJob-ref.EJob) / ref.EJob; rel > 0.06 {
						t.Errorf("epoch %d (%s): E[job] %.3f vs quasi-static %.3f: off %.1f%%", i, ep.Phase, ep.EJob, ref.EJob, rel*100)
					}
					if ep.Samples == 0 {
						t.Errorf("epoch %d: replayed answer should carry a sample count", i)
					}
				}
			},
		},
		feasim.KindScaled: {
			query: feasim.ScaledQuery{T: 100, O: 10, Util: 0.05, Ws: []int{1, 4, 16}},
			check: func(t *testing.T, backend string, got, analytic feasim.Answer) {
				g := got.(feasim.ScaledAnswer)
				if len(g.Points) != 3 || g.Points[0].IncreaseVsSingle != 0 {
					t.Fatalf("bad scaled curve: %+v", g.Points)
				}
				for i := 1; i < len(g.Points); i++ {
					if g.Points[i].EJob < g.Points[i-1].EJob {
						t.Errorf("scaled E[job] not monotone at %d", i)
					}
				}
			},
		},
	}
}

// TestBackendKindParityMatrix drives every (backend, kind) cell of the
// capability matrix.
func TestBackendKindParityMatrix(t *testing.T) {
	ctx := context.Background()
	table := parityQueries()
	analytic := feasim.NewAnalyticSolver()

	// Analytic reference answers, one per kind (the analytic backend
	// advertises every kind; the suite relies on that).
	refs := make(map[string]feasim.Answer, len(table))
	for kind, c := range table {
		a, err := analytic.Answer(ctx, c.query)
		if err != nil {
			t.Fatalf("analytic reference for %s: %v", kind, err)
		}
		refs[kind] = a
	}

	for _, sv := range paritySolvers() {
		capable := make(map[string]bool)
		for _, k := range sv.Capabilities() {
			capable[k] = true
		}
		for _, kind := range feasim.QueryKinds() {
			sv, kind := sv, kind
			t.Run(sv.Name()+"/"+kind, func(t *testing.T) {
				c, ok := table[kind]
				if !ok {
					t.Fatalf("no canonical query for kind %q — extend the parity table", kind)
				}
				got, err := sv.Answer(ctx, c.query)
				if capable[kind] {
					if err != nil {
						t.Fatalf("advertised pair failed: %v", err)
					}
					if got.Kind() != kind {
						t.Fatalf("answer kind %q", got.Kind())
					}
					c.check(t, sv.Name(), got, refs[kind])
					return
				}
				// Not advertised: the pair must actually refuse, with the
				// typed error naming it.
				if !errors.Is(err, feasim.ErrUnsupported) {
					t.Fatalf("unadvertised pair: want ErrUnsupported, got answer=%v err=%v", got, err)
				}
				var ue *feasim.UnsupportedError
				if !errors.As(err, &ue) || ue.Backend != sv.Name() || ue.Kind != kind {
					t.Errorf("UnsupportedError should carry (%s, %s), got %v", sv.Name(), kind, err)
				}
			})
		}
	}
}

// parityFleet is the canonical mixed fleet: two availability classes over
// four stations, small enough for cheap DES batches.
func parityFleet() feasim.Scenario {
	return feasim.Scenario{
		Name: "parity-het", J: 400, O: 10, Seed: 1993,
		Stations: []feasim.StationSpec{
			{P: 0.03, Count: 2},
			{P: 0.08, Count: 2},
		},
	}
}

// TestHeterogeneousParity checks the mixed fleet across the backends that
// claim to handle it: the DES answer must track the analytic fleet kernel.
func TestHeterogeneousParity(t *testing.T) {
	ctx := context.Background()
	sc := parityFleet()
	analytic := feasim.NewAnalyticSolver()
	des := feasim.NewDESSolver(parityPr, 10)

	aAns, err := analytic.Answer(ctx, feasim.ReportQuery{Scenario: sc})
	if err != nil {
		t.Fatalf("analytic heterogeneous report: %v", err)
	}
	dAns, err := des.Answer(ctx, feasim.ReportQuery{Scenario: sc})
	if err != nil {
		t.Fatalf("des heterogeneous report: %v", err)
	}
	a, d := aAns.(feasim.ReportAnswer).Report, dAns.(feasim.ReportAnswer).Report
	if rel := math.Abs(d.EJob-a.EJob) / a.EJob; rel > 0.08 {
		t.Errorf("mixed-fleet E[job]: des %.3f vs analytic %.3f, off %.1f%%", d.EJob, a.EJob, rel*100)
	}
	if ci := d.WeffCI.Widen(0.75); !ci.Contains(a.WeightedEfficiency) {
		t.Errorf("mixed-fleet weff CI [%.4f, %.4f] misses analytic %.4f", ci.Lo, ci.Hi, a.WeightedEfficiency)
	}

	// Threshold over the same mix as a station template: the empirical
	// bisection should land within one ratio step of the fleet kernel.
	tq := feasim.ThresholdQuery{
		W: 4, O: 10, TargetEff: 0.7, Seed: 1993,
		Stations: []feasim.StationSpec{
			{P: 0.03, Count: 2},
			{P: 0.08, Count: 2},
		},
	}
	aThr, err := analytic.Answer(ctx, tq)
	if err != nil {
		t.Fatalf("analytic heterogeneous threshold: %v", err)
	}
	dThr, err := des.Answer(ctx, tq)
	if err != nil {
		t.Fatalf("des heterogeneous threshold: %v", err)
	}
	ga, gd := aThr.(feasim.ThresholdAnswer), dThr.(feasim.ThresholdAnswer)
	if diff := gd.MinRatio - ga.MinRatio; diff < -1 || diff > 1 {
		t.Errorf("mixed-fleet min ratio: des %d vs analytic %d, off by more than one step", gd.MinRatio, ga.MinRatio)
	}
}

// TestExactRefusesHeterogeneous pins the exact backend's typed refusal: its
// batch-Pow ladder is a single-probability kernel, so heterogeneous inputs
// must surface an UnsupportedError naming the reason instead of a silent
// wrong answer.
func TestExactRefusesHeterogeneous(t *testing.T) {
	ctx := context.Background()
	exact := feasim.NewExactSimSolver(parityPr)
	sc := parityFleet()

	queries := map[string]feasim.Query{
		feasim.KindReport:       feasim.ReportQuery{Scenario: sc},
		feasim.KindDistribution: feasim.DistributionQuery{Scenario: sc, Quantiles: []float64{0.5}},
		feasim.KindThreshold: feasim.ThresholdQuery{
			W: 4, O: 10, TargetEff: 0.7, Seed: 1993,
			Stations: []feasim.StationSpec{{P: 0.03, Count: 2}, {P: 0.08, Count: 2}},
		},
	}
	for kind, q := range queries {
		_, err := exact.Answer(ctx, q)
		if !errors.Is(err, feasim.ErrUnsupported) {
			t.Fatalf("%s: want ErrUnsupported, got %v", kind, err)
		}
		var ue *feasim.UnsupportedError
		if !errors.As(err, &ue) {
			t.Fatalf("%s: want *UnsupportedError, got %v", kind, err)
		}
		if ue.Backend != feasim.BackendExact || ue.Kind != kind || ue.Detail != "heterogeneous fleets" {
			t.Errorf("%s: UnsupportedError carries (%s, %s, %q), want (%s, %s, %q)",
				kind, ue.Backend, ue.Kind, ue.Detail, feasim.BackendExact, kind, "heterogeneous fleets")
		}
	}
}

// TestDegenerateFleetBitExact pins the collapse contract: a fleet whose
// stations all resolve to the same (p, speed) must reproduce the aggregate
// homogeneous answer bit-for-bit, whatever the spelling — split groups,
// util-vs-p forms, or explicit reference speed.
func TestDegenerateFleetBitExact(t *testing.T) {
	ctx := context.Background()
	analytic := feasim.NewAnalyticSolver()
	hom := feasim.Scenario{Name: "parity", J: 400, W: 4, O: 10, Util: 0.05, Seed: 1993}

	ref, err := analytic.Answer(ctx, feasim.ReportQuery{Scenario: hom})
	if err != nil {
		t.Fatalf("homogeneous reference: %v", err)
	}
	want := ref.(feasim.ReportAnswer).Report
	want.Elapsed = 0

	spellings := map[string][]feasim.StationSpec{
		"one group":   {{Util: 0.05, Count: 4}},
		"split 2+2":   {{Util: 0.05, Count: 2}, {Util: 0.05, Count: 2}},
		"split 1+3":   {{Util: 0.05, Count: 1}, {Util: 0.05, Count: 3}},
		"unit speed":  {{Util: 0.05, Speed: 1, Count: 4}},
		"unit counts": {{Util: 0.05}, {Util: 0.05}, {Util: 0.05}, {Util: 0.05}},
	}
	for name, stations := range spellings {
		sc := feasim.Scenario{Name: "parity", J: 400, O: 10, Seed: 1993, Stations: stations}
		ans, err := analytic.Answer(ctx, feasim.ReportQuery{Scenario: sc})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ans.(feasim.ReportAnswer).Report
		got.Elapsed = 0
		// The embedded scenario echoes the query's own spelling; every
		// derived number must match the homogeneous answer bit-for-bit.
		got.Scenario, want.Scenario = feasim.Scenario{}, feasim.Scenario{}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: degenerate fleet report %+v differs from homogeneous %+v", name, got, want)
		}
	}
}

// TestCapabilityListsAreExact pins the advertised matrix itself, so a
// capability added or dropped without updating the other layers (CLI docs,
// serve taxonomy, this suite) fails loudly.
func TestCapabilityListsAreExact(t *testing.T) {
	want := map[string][]string{
		feasim.BackendAnalytic: {feasim.KindReport, feasim.KindThreshold, feasim.KindPartition, feasim.KindDistribution, feasim.KindScaled, feasim.KindTimeline},
		feasim.BackendExact:    {feasim.KindReport, feasim.KindThreshold, feasim.KindDistribution},
		feasim.BackendDES:      {feasim.KindReport, feasim.KindThreshold, feasim.KindPartition, feasim.KindDistribution, feasim.KindTimeline},
	}
	for _, sv := range paritySolvers() {
		got := sv.Capabilities()
		w := want[sv.Name()]
		if len(got) != len(w) {
			t.Errorf("%s capabilities %v, want %v", sv.Name(), got, w)
			continue
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("%s capabilities %v, want %v", sv.Name(), got, w)
				break
			}
		}
	}
}
