package feasim_test

import (
	"math"
	"strings"
	"testing"

	"feasim"
)

// These tests exercise the public facade end to end, the way the examples
// and a downstream user would.

func TestFacadeAnalyzeMatchesPaperSpotValue(t *testing.T) {
	p, err := feasim.ParamsFromUtilization(1000, 100, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	r, err := feasim.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Speedup-61.0) > 0.5 {
		t.Errorf("speedup %.2f, paper quotes 61", r.Speedup)
	}
}

func TestFacadeAssessRoundTrip(t *testing.T) {
	p := feasim.NewParams(600, 60, 10, 0.025)
	v, err := feasim.Assess(p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Feasible {
		t.Error("task ratio 1 at ~20% utilization must be infeasible")
	}
	if v.MinJobDemand <= p.J {
		t.Error("advice should require a larger job")
	}
}

func TestFacadeSimulationPipeline(t *testing.T) {
	p, err := feasim.ParamsFromUtilization(1000, 10, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := feasim.NewExactSimulator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr := feasim.Protocol{Batches: 10, BatchSize: 100, Level: 0.9, MaxSamples: 1 << 20}
	res, err := feasim.RunExact(x, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 1000 {
		t.Errorf("samples = %d", res.Samples)
	}
	ana, err := feasim.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	wide := res.JobTime
	wide.HalfWidth *= 4
	if !wide.Contains(ana.EJob) {
		t.Errorf("simulation %v far from analysis %.3f", res.JobTime, ana.EJob)
	}
}

func TestFacadeGeneralSimulator(t *testing.T) {
	cfg := feasim.HomogeneousGeometric(4, 50, 10, 0.01)
	cfg.Seed = 9
	g, err := feasim.NewGeneralSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := feasim.Protocol{Batches: 4, BatchSize: 50, Level: 0.9, MaxSamples: 1 << 20}
	res, err := feasim.RunGeneral(g, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobTime.Mean < 50 {
		t.Errorf("job time %v below task demand", res.JobTime.Mean)
	}
}

func TestFacadeClusterAndPVM(t *testing.T) {
	params, err := feasim.SunELCParams(10, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	c, err := feasim.NewCluster(4, params, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := feasim.LocalComputation{Cluster: c, Workers: 4, TotalDemand: 400}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTaskTime < 100 {
		t.Errorf("max task time %v below per-task demand", res.MaxTaskTime)
	}
}

func TestFacadeMessagePassing(t *testing.T) {
	vm, err := feasim.NewVM(feasim.PVMConfig{Hosts: 2, Transport: feasim.TransportInProc})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Halt()
	echo, err := vm.Spawn("echo", 1, 0, func(task *feasim.PVMTask) error {
		m, err := task.Recv(feasim.AnyTID, feasim.AnyTag)
		if err != nil {
			return err
		}
		return task.Send(m.Src, 2, m.Body)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan float64, 1)
	ping, err := vm.Spawn("ping", 0, 0, func(task *feasim.PVMTask) error {
		if err := task.Send(echo, 1, feasim.NewMsgBuffer().PackFloat64(2.5)); err != nil {
			return err
		}
		m, err := task.Recv(echo, 2)
		if err != nil {
			return err
		}
		v, err := m.Body.UnpackFloat64()
		if err != nil {
			return err
		}
		got <- v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll([]feasim.TID{echo, ping}); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 2.5 {
		t.Errorf("echoed %v", v)
	}
}

func TestFacadeDistParsing(t *testing.T) {
	d, err := feasim.ParseDist("hyper:0.5,5,15")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 10 {
		t.Errorf("mean %v", d.Mean())
	}
	h := feasim.BalancedHyperExp(10, 4)
	if math.Abs(h.Mean()-10) > 1e-9 {
		t.Errorf("balanced hyper mean %v", h.Mean())
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	if len(feasim.Experiments()) != 16 {
		t.Errorf("experiments = %d, want 16", len(feasim.Experiments()))
	}
	d, ok := feasim.ExperimentByID("fig09")
	if !ok {
		t.Fatal("fig09 missing")
	}
	cfg := feasim.DefaultExperimentConfig()
	cfg.WStep = 25
	out, err := d.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	art, err := feasim.RenderASCII(*out.Figure, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art, "fig09") {
		t.Error("render missing figure id")
	}
	csv, err := feasim.FigureCSV(*out.Figure)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "Number of Processors") {
		t.Errorf("csv header: %q", strings.Split(csv, "\n")[0])
	}
}

func TestFacadeThresholdAndScaled(t *testing.T) {
	rows, err := feasim.ThresholdTable(60, 10, 0.8, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MinRatio != 8 {
		t.Errorf("threshold %d, want 8", rows[0].MinRatio)
	}
	pts, err := feasim.ScaledSweep(100, 10, 0.05, []int{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[1].IncreaseVsDedicated-0.30) > 0.02 {
		t.Errorf("scaled increase %v, paper 0.30", pts[1].IncreaseVsDedicated)
	}
}

func TestFacadeStats(t *testing.T) {
	bm := feasim.NewBatchMeans(10)
	for i := 0; i < 200; i++ {
		bm.Add(float64(i % 10))
	}
	ci, err := bm.MeanCI(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(4.5) {
		t.Errorf("CI %v misses 4.5", ci)
	}
	var s feasim.Summary
	s.Add(1)
	s.Add(3)
	if s.Mean() != 2 {
		t.Errorf("mean %v", s.Mean())
	}
}

func TestFacadeDistributionAPI(t *testing.T) {
	p, err := feasim.ParamsFromUtilization(1000, 10, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := feasim.JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := feasim.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-r.EJob) > 1e-8*r.EJob {
		t.Errorf("distribution mean %v vs E_j %v", d.Mean(), r.EJob)
	}
	td, err := feasim.TaskTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(td.Mean()-r.ETask) > 1e-8*r.ETask {
		t.Errorf("task distribution mean %v vs E_t %v", td.Mean(), r.ETask)
	}
	prob, err := feasim.DeadlineProb(p, r.EJob*2)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.99 {
		t.Errorf("generous deadline probability %v", prob)
	}
	g, err := feasim.AnalyzeGumbel(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.EJob <= 0 {
		t.Error("Gumbel approximation returned nonpositive E_j")
	}
}

func TestFacadePartitionPlanning(t *testing.T) {
	w, err := feasim.MaxWorkstations(2000, 10, 0.05, 0.8, 200)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := feasim.PlanPartition(2000, 10, 0.05, 0.8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if plan.W != w {
		t.Errorf("plan W %d vs MaxWorkstations %d", plan.W, w)
	}
}

func TestFacadeMultiJob(t *testing.T) {
	base := feasim.HomogeneousGeometric(4, 100, 10, 1.0/90)
	cfg := feasim.MultiJobConfig{
		Stations:   base.Stations,
		TaskDemand: base.TaskDemand,
		Jobs:       2,
		JobThink:   feasim.Exponential{M: 50},
		Seed:       5,
	}
	st, err := feasim.RunMultiJob(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.Response.N() != 100 {
		t.Errorf("responses = %d, want 100", st.Response.N())
	}
	pts, err := feasim.MultiJobSweep(cfg, []int{1, 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].MeanResponse <= pts[0].MeanResponse {
		t.Errorf("sweep results %+v", pts)
	}
}

func TestFacadeExecutionTrace(t *testing.T) {
	params, err := feasim.SunELCParams(10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := feasim.NewCluster(1, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Station(0)
	if err != nil {
		t.Fatal(err)
	}
	tr := feasim.NewExecutionTrace()
	st.SetTrace(tr)
	st.RunTask(200)
	if tr.Len() == 0 {
		t.Error("trace recorded nothing")
	}
	if !strings.Contains(tr.CSV(), "compute") {
		t.Error("trace CSV missing compute rows")
	}
}
