package feasim_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"feasim"
)

// TestScenarioJSONRoundTrip marshals a fully populated scenario —
// including per-station distribution specs in the rng.Parse syntax — and
// requires the unmarshalled value to be deeply equal to the original.
func TestScenarioJSONRoundTrip(t *testing.T) {
	cases := []feasim.Scenario{
		{
			Name: "aggregate", J: 12000, W: 60, O: 10, Util: 0.05,
			Deadline: 400, TargetEff: 0.8, Seed: 42,
		},
		{
			Name: "aggregate-p", J: 1000, W: 10, O: 10, P: 0.01,
			OwnerCV2: 16, Seed: 7,
		},
		{
			Name: "explicit",
			Stations: []feasim.StationSpec{
				{OwnerThink: "exp:90", OwnerDemand: "hyper:0.1,55,5", Count: 8},
				{OwnerThink: "geom:0.01", OwnerDemand: "det:10", Count: 4},
			},
			TaskDemand: "unif:50,150",
			Seed:       11,
		},
	}
	for _, want := range cases {
		t.Run(want.Name, func(t *testing.T) {
			if err := want.Validate(); err != nil {
				t.Fatalf("fixture invalid: %v", err)
			}
			data, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := feasim.ParseScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestScenarioGoldenFile loads the checked-in scenario, requires it to
// survive a marshal/unmarshal cycle unchanged, and solves it analytically.
func TestScenarioGoldenFile(t *testing.T) {
	s, err := feasim.LoadScenario("testdata/scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "paper-baseline" || s.J != 1000 || s.W != 10 || s.O != 10 {
		t.Errorf("golden scenario fields changed: %+v", s)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := feasim.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("golden scenario does not round trip:\n got %+v\nwant %+v", back, s)
	}
	rep, err := feasim.NewAnalyticSolver().Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible == nil || rep.DeadlineProb == nil {
		t.Fatal("golden scenario sets target_eff and deadline; report should answer both")
	}
	if *rep.DeadlineProb <= 0 || *rep.DeadlineProb > 1 {
		t.Errorf("deadline probability out of range: %v", *rep.DeadlineProb)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []struct {
		name string
		json string
	}{
		{"unknown field", `{"j": 100, "w": 10, "o": 10, "jitter": 3}`},
		{"util and p", `{"j": 100, "w": 10, "o": 10, "util": 0.1, "p": 0.01}`},
		{"negative deadline", `{"j": 100, "w": 10, "o": 10, "deadline": -1}`},
		{"target out of range", `{"j": 100, "w": 10, "o": 10, "target_eff": 1.5}`},
		{"zero owner demand", `{"j": 100, "w": 10, "util": 0.1}`},
		{"bad dist spec", `{"j": 100, "w": 10, "o": 10, "task_demand": "wiggly:3"}`},
		{"station count mismatch", `{"w": 3, "j": 100, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10", "count": 2}]}`},
		{"station missing demand", `{"j": 100, "stations": [{"owner_think": "exp:90"}]}`},
		// Explicit stations define the owner workload: aggregate owner fields
		// on the same scenario would be silently ignored, so they are
		// rejected as contradictory.
		{"stations plus o", `{"j": 100, "o": 10, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}]}`},
		{"stations plus util", `{"j": 100, "util": 0.1, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}]}`},
		{"stations plus p", `{"j": 100, "p": 0.01, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}]}`},
		{"stations plus owner_cv2", `{"j": 100, "owner_cv2": 4, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}]}`},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if _, err := feasim.ParseScenario([]byte(c.json)); err == nil {
				t.Errorf("expected error for %s", c.json)
			}
		})
	}
}
