package feasim

import (
	"context"

	"feasim/internal/solve"
)

// SweepSpec declares a scenario grid: a base Scenario plus axis value lists
// (W, Util, TaskRatio, OwnerCV2) crossed with a backend list. See RunSweep.
type SweepSpec = solve.SweepSpec

// SweepPoint is one cell of an expanded sweep grid.
type SweepPoint = solve.Point

// SweepResult is one streamed sweep result: the point, its Report or error,
// and whether it was served from the analytic deduplication cache.
type SweepResult = solve.PointReport

// RunSweep fans the expanded grid across a context-cancellable worker pool
// (spec.Workers, default GOMAXPROCS) and streams results over the returned
// channel as they complete. Per-point seeds are split deterministically from
// spec.Seed, so results are reproducible regardless of worker count;
// repeated analytic points are deduplicated through an in-memory cache.
func RunSweep(ctx context.Context, spec SweepSpec) (<-chan SweepResult, error) {
	return solve.Sweep(ctx, spec)
}

// CollectSweep drains RunSweep into a slice sorted by grid index. When ctx
// is cancelled mid-sweep it returns the completed prefix along with
// ctx.Err().
func CollectSweep(ctx context.Context, spec SweepSpec) ([]SweepResult, error) {
	return solve.Collect(ctx, spec)
}

// ParseSweep decodes a SweepSpec from JSON, rejecting unknown fields.
func ParseSweep(data []byte) (SweepSpec, error) { return solve.ParseSweep(data) }

// LoadSweep reads and decodes a sweep spec JSON file.
func LoadSweep(path string) (SweepSpec, error) { return solve.LoadSweep(path) }
