package feasim

import (
	"context"

	"feasim/internal/solve"
)

// SweepSpec declares a Report grid: a base Scenario plus axis value lists
// (W, Util, TaskRatio, OwnerCV2) crossed with a backend list. See RunSweep.
// It is the ReportQuery special case of QuerySweepSpec; both run on the same
// engine.
type SweepSpec = solve.SweepSpec

// SweepPoint is one cell of an expanded sweep grid.
type SweepPoint = solve.Point

// SweepResult is one streamed sweep result: the point, its Report or error,
// and whether it was served from the analytic deduplication cache.
type SweepResult = solve.PointReport

// QuerySweepSpec declares a grid over any query kind: a base query (JSON: a
// nested {"kind": ...} envelope under "base") plus the axis lists that apply
// to that kind — scenario axes for report/distribution, W/Util for
// threshold, MaxW/Util for partition, Util/TaskRatio for scaled.
type QuerySweepSpec = solve.QuerySweepSpec

// QuerySweepPoint is one cell of an expanded query grid.
type QuerySweepPoint = solve.QueryPoint

// QuerySweepResult is one streamed query-sweep result: the point, its typed
// Answer or error, and the dedup-cache flag.
type QuerySweepResult = solve.QueryResult

// RunSweep fans the expanded grid across a context-cancellable worker pool
// (spec.Workers, default GOMAXPROCS) and streams results over the returned
// channel as they complete. Per-point seeds are split deterministically from
// spec.Seed, so results are reproducible regardless of worker count;
// repeated analytic points are deduplicated through an in-memory cache.
func RunSweep(ctx context.Context, spec SweepSpec) (<-chan SweepResult, error) {
	return solve.Sweep(ctx, spec)
}

// CollectSweep drains RunSweep into a slice sorted by grid index. When ctx
// is cancelled mid-sweep it returns the completed prefix along with
// ctx.Err().
func CollectSweep(ctx context.Context, spec SweepSpec) ([]SweepResult, error) {
	return solve.Collect(ctx, spec)
}

// RunQuerySweep is RunSweep generalized to any query kind: the same worker
// pool, deterministic seeding and analytic deduplication (cache keyed by
// query kind), streaming typed Answers.
func RunQuerySweep(ctx context.Context, spec QuerySweepSpec) (<-chan QuerySweepResult, error) {
	return solve.SweepQueries(ctx, spec)
}

// CollectQuerySweep drains RunQuerySweep into a slice sorted by grid index.
func CollectQuerySweep(ctx context.Context, spec QuerySweepSpec) ([]QuerySweepResult, error) {
	return solve.CollectQueries(ctx, spec)
}

// ParseSweep decodes a SweepSpec from JSON, rejecting unknown fields.
func ParseSweep(data []byte) (SweepSpec, error) { return solve.ParseSweep(data) }

// LoadSweep reads and decodes a sweep spec JSON file.
func LoadSweep(path string) (SweepSpec, error) { return solve.LoadSweep(path) }

// ParseQuerySweep decodes a QuerySweepSpec from JSON, rejecting unknown
// fields and unknown query kinds.
func ParseQuerySweep(data []byte) (QuerySweepSpec, error) { return solve.ParseQuerySweep(data) }

// LoadQuerySweep reads and decodes a query sweep spec JSON file.
func LoadQuerySweep(path string) (QuerySweepSpec, error) { return solve.LoadQuerySweep(path) }

// FrontierSpec declares an adaptive frontier search: a base query carrying a
// feasibility verdict, two scenario axes (JSON: "x"/"y" with an axis name and
// range), and a refinement budget (coarse cells halved depth times). It is
// the paper's single-axis feasibility threshold generalized to a 2-D
// boundary, probed only where the boundary lives.
type FrontierSpec = solve.FrontierSpec

// FrontierAxis is one searched dimension: an axis name ("w", "util",
// "task_ratio", "owner_cv2" or "spread") plus its closed value range.
type FrontierAxis = solve.FrontierAxis

// FrontierCell is one resolved cell of a frontier run: bounds, finest-grid
// placement, and the verdict (feasible, infeasible, boundary, error).
type FrontierCell = solve.FrontierCell

// FrontierStats summarizes a frontier run, including the probe count the
// equivalent dense grid would have paid.
type FrontierStats = solve.FrontierStats

// FrontierResult is a collected frontier run: cells in stream order plus
// stats.
type FrontierResult = solve.FrontierResult

// Frontier cell verdicts and axis names.
const (
	FrontierFeasible   = solve.FrontierFeasible
	FrontierInfeasible = solve.FrontierInfeasible
	FrontierBoundary   = solve.FrontierBoundary
	FrontierError      = solve.FrontierError

	FrontierAxisW        = solve.FrontierAxisW
	FrontierAxisUtil     = solve.FrontierAxisUtil
	FrontierAxisRatio    = solve.FrontierAxisRatio
	FrontierAxisOwnerCV2 = solve.FrontierAxisOwnerCV2
	FrontierAxisSpread   = solve.FrontierAxisSpread
)

// RunFrontier starts the adaptive refinement and streams resolved cells in
// level order — every cell of one refinement level before any of the next.
// Corner probes reuse the sweep engine's per-point path: deterministic
// coordinate-derived seeds and the analytic dedup cache, so refinement
// levels hit the memo instead of re-solving shared corners. The stats
// callback is valid once the channel closes.
func RunFrontier(ctx context.Context, spec FrontierSpec) (<-chan FrontierCell, func() FrontierStats, error) {
	return solve.SweepFrontier(ctx, spec)
}

// CollectFrontier drains RunFrontier into the cell list plus run stats. When
// ctx is cancelled mid-run it returns the resolved prefix along with
// ctx.Err().
func CollectFrontier(ctx context.Context, spec FrontierSpec) (FrontierResult, error) {
	return solve.CollectFrontier(ctx, spec)
}

// ParseFrontier decodes a FrontierSpec from JSON, rejecting unknown fields
// and invalid search declarations.
func ParseFrontier(data []byte) (FrontierSpec, error) { return solve.ParseFrontier(data) }

// LoadFrontier reads and decodes a frontier spec JSON file.
func LoadFrontier(path string) (FrontierSpec, error) { return solve.LoadFrontier(path) }
