package feasim_test

import (
	"fmt"

	"feasim"
)

// ExampleAnalyze reproduces the paper's headline Figure 1 data point: a
// 1000-unit job on 100 workstations whose owners are just 1% busy still
// loses almost 40% of the perfect speedup.
func ExampleAnalyze() {
	p, _ := feasim.ParamsFromUtilization(1000, 100, 10, 0.01)
	r, _ := feasim.Analyze(p)
	fmt.Printf("speedup %.1f of 100, weighted efficiency %.3f\n", r.Speedup, r.WeightedEfficiency)
	// Output: speedup 61.0 of 100, weighted efficiency 0.616
}

// ExampleThresholdTable recomputes the paper's conclusions: the minimum
// task ratio for 80% of the possible speedup at each owner utilization.
func ExampleThresholdTable() {
	rows, _ := feasim.ThresholdTable(60, 10, 0.8, []float64{0.05, 0.1, 0.2})
	for _, row := range rows {
		fmt.Printf("util %.0f%% -> task ratio %d\n", row.Util*100, row.MinRatio)
	}
	// Output:
	// util 5% -> task ratio 8
	// util 10% -> task ratio 12
	// util 20% -> task ratio 18
}

// ExampleAssess answers the practical question directly: is this job big
// enough for this cluster, and if not, how big must it become?
func ExampleAssess() {
	p, _ := feasim.ParamsFromUtilization(600, 60, 10, 0.2)
	v, _ := feasim.Assess(p, 0.8)
	fmt.Printf("feasible: %v; grow J to at least %.0f\n", v.Feasible, v.MinJobDemand)
	// Output: feasible: false; grow J to at least 10800
}

// ExampleScaledSweep shows the paper's scaled-problem result: 100x the work
// on 100 workstations costs only 30% extra time at 5% owner utilization.
func ExampleScaledSweep() {
	pts, _ := feasim.ScaledSweep(100, 10, 0.05, []int{1, 100})
	fmt.Printf("response-time increase at W=100: +%.0f%%\n", pts[1].IncreaseVsDedicated*100)
	// Output: response-time increase at W=100: +30%
}

// ExampleDeadlineProb uses the exact job-time distribution for admission
// control: will the job make its window?
func ExampleDeadlineProb() {
	p, _ := feasim.ParamsFromUtilization(1000, 10, 10, 0.1)
	certain, _ := feasim.DeadlineProb(p, 200)
	hopeless, _ := feasim.DeadlineProb(p, 100)
	fmt.Printf("deadline 200: %.2f, deadline 100: %.2f\n", certain, hopeless)
	// Output: deadline 200: 1.00, deadline 100: 0.00
}
