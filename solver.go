package feasim

import (
	"feasim/internal/solve"
)

// Solver answers a Scenario; implementations honor context cancellation.
// The three backends are NewAnalyticSolver (the paper's equations),
// NewExactSimSolver (the discrete-time validation simulator) and
// NewDESSolver (the discrete-event engine with arbitrary distributions).
type Solver = solve.Solver

// Report is a Solver's answer: point estimates for the Section 3 metrics,
// confidence intervals from the simulation backends, and the optional
// feasibility verdict and deadline probability.
type Report = solve.Report

// Interval is a closed interval [Lo, Hi]; simulation Reports carry one per
// metric.
type Interval = solve.Interval

// Backend names accepted by SolverByName and SweepSpec.Backends.
const (
	BackendAnalytic = solve.BackendAnalytic
	BackendExact    = solve.BackendExact
	BackendDES      = solve.BackendDES
)

// Backends lists the backend names in canonical order.
func Backends() []string { return solve.Backends() }

// NewAnalyticSolver answers scenarios with the paper's exact discrete-time
// analysis (equations (1)-(8)), the threshold solver, and the deadline
// distribution.
func NewAnalyticSolver() Solver { return solve.Analytic{} }

// NewExactSimSolver answers scenarios with the discrete-time simulator of
// the analyzed model under the given batch-means protocol (zero value: the
// paper's protocol).
func NewExactSimSolver(pr Protocol) Solver { return solve.ExactSim{Protocol: pr} }

// NewDESSolver answers scenarios with the discrete-event simulator:
// wall-clock owner think times, arbitrary distributions and heterogeneous
// stations. warmup < 0 disables warmup; 0 uses a small default.
func NewDESSolver(pr Protocol, warmup int) Solver { return solve.DES{Protocol: pr, Warmup: warmup} }

// SolverByName builds the named backend ("analytic", "exact", "des") with
// the given protocol (ignored by the analytic backend).
func SolverByName(name string, pr Protocol) (Solver, error) {
	s, err := solve.SolverFor(name, pr)
	if err != nil {
		return nil, err
	}
	return s, nil
}
