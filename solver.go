package feasim

import (
	"feasim/internal/solve"
)

// Solver answers typed queries (Answer) and scenarios (Solve, the
// ReportQuery shorthand); implementations honor context cancellation. The
// three backends are NewAnalyticSolver (the paper's equations),
// NewExactSimSolver (the discrete-time validation simulator) and
// NewDESSolver (the discrete-event engine). Capabilities lists the query
// kinds a backend answers; the rest fail with ErrUnsupported.
type Solver = solve.Solver

// Report is a Solver's answer to a report query: point estimates for the
// Section 3 metrics, confidence intervals from the simulation backends, and
// the optional feasibility verdict and deadline probability.
type Report = solve.Report

// Interval is a closed interval [Lo, Hi]; simulation Reports carry one per
// metric.
type Interval = solve.Interval

// SolverOptions configures a backend built by NewSolver: the simulation
// protocol (zero means the paper's) and the DES warmup (zero means the
// default, negative disables).
type SolverOptions = solve.Options

// Backend names accepted by NewSolver, SolverByName and SweepSpec.Backends.
const (
	BackendAnalytic = solve.BackendAnalytic
	BackendExact    = solve.BackendExact
	BackendDES      = solve.BackendDES
)

// Backends lists the backend names in canonical order.
func Backends() []string { return solve.Backends() }

// NewAnalyticSolver answers queries with the paper's exact discrete-time
// analysis (equations (1)-(8)), the threshold and partition solvers, the
// exact completion-time distribution and the scaled-problem sweep. It is the
// only backend answering every query kind.
func NewAnalyticSolver() Solver { return solve.Analytic{} }

// NewExactSimSolver answers queries with the discrete-time simulator of the
// analyzed model under the given batch-means protocol (zero value: the
// paper's protocol). Threshold queries are answered by empirical bisection,
// distribution queries from raw job samples.
func NewExactSimSolver(pr Protocol) Solver { return solve.ExactSim{Protocol: pr} }

// NewDESSolver answers queries with the discrete-event simulator:
// wall-clock owner think times, arbitrary distributions and heterogeneous
// stations. warmup < 0 disables warmup; 0 uses a small default. Threshold
// and partition queries are answered by empirical bisection.
func NewDESSolver(pr Protocol, warmup int) Solver { return solve.DES{Protocol: pr, Warmup: warmup} }

// NewSolver builds the named backend ("analytic", "exact", "des") with the
// given options — the constructor path that lets the CLI and sweep specs
// configure the DES warmup alongside the protocol.
func NewSolver(name string, opts SolverOptions) (Solver, error) {
	return solve.NewSolver(name, opts)
}

// SolverByName builds the named backend with the given protocol and default
// warmup. Use NewSolver to configure the DES warmup too.
func SolverByName(name string, pr Protocol) (Solver, error) {
	return solve.NewSolver(name, solve.Options{Protocol: pr})
}

// ---- The shared answer layer ----

// AnswerCache is a size-bounded LRU of query answers with single-flight
// coalescing of concurrent identical queries, shareable across backends
// (keys include the backend name — but nothing else of a solver's identity,
// so all solvers sharing one cache under one backend name must be
// configured identically; use separate caches for differently-configured
// solvers of the same backend). It backs the HTTP query service and the
// sweep engine's analytic dedup.
type AnswerCache = solve.AnswerCache

// CacheStats is a point-in-time snapshot of an AnswerCache.
type CacheStats = solve.CacheStats

// CachedSolver wraps any Solver with an AnswerCache; it implements Solver,
// so it drops in anywhere a backend does. Analytic answers are cached by
// scenario core (seed-independent); stochastic backends by their full
// envelope, seed included.
type CachedSolver = solve.CachedSolver

// DefaultAnswerCacheCapacity bounds an AnswerCache built with capacity <= 0.
const DefaultAnswerCacheCapacity = solve.DefaultAnswerCacheCapacity

// NewAnswerCache builds a cache bounded to capacity answers; capacity <= 0
// means DefaultAnswerCacheCapacity. The hot state is sharded by key hash so
// many-core traffic on distinct keys does not serialize on one mutex; the
// shard count is sized to the host's parallelism (one shard on a
// GOMAXPROCS=1 host, which cannot contend).
func NewAnswerCache(capacity int) *AnswerCache { return solve.NewAnswerCache(capacity) }

// NewAnswerCacheShards builds a cache with an explicit shard count (rounded
// up to a power of two, capped so each shard holds at least one entry;
// <= 0 selects the parallelism-sized default). shards == 1 is the
// single-mutex layout, kept as a contention baseline for benchmarks and for
// tests that need strict global LRU order.
func NewAnswerCacheShards(capacity, shards int) *AnswerCache {
	return solve.NewAnswerCacheShards(capacity, shards)
}

// NewCachedSolver wraps inner with the given cache; a nil cache gets a
// private one with the default capacity.
func NewCachedSolver(inner Solver, cache *AnswerCache) *CachedSolver {
	return solve.NewCachedSolver(inner, cache)
}
