// Benchmarks regenerating every table and figure in the paper (one
// BenchmarkFigureNN per artifact, reporting its headline number as a custom
// metric), micro-benchmarks of each substrate, and ablation benchmarks for
// the design choices called out in DESIGN.md §6.
//
// Run with: go test -bench=. -benchmem
package feasim_test

import (
	"context"
	"fmt"
	"testing"

	"feasim"
	"feasim/internal/benchgrid"
	"feasim/internal/core"
	"feasim/internal/des"
	"feasim/internal/experiment"
	"feasim/internal/pvm"
	"feasim/internal/rng"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// runExperiment executes one paper experiment per iteration and reports the
// value of its first check as a custom metric.
func runExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	d, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiment.TestConfig()
	var out experiment.Output
	var err error
	for i := 0; i < b.N; i++ {
		out, err = d.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out.Checks) > 0 {
		b.ReportMetric(out.Checks[0].Got, metric)
	}
	for _, c := range out.Checks {
		if !c.Pass() {
			b.Errorf("%s: %s", id, c)
		}
	}
}

// ---- One benchmark per paper artifact ----

func BenchmarkFigure01Speedup(b *testing.B) { runExperiment(b, "fig01", "speedup@W100,u1%") }
func BenchmarkFigure02Efficiency(b *testing.B) {
	runExperiment(b, "fig02", "")
}
func BenchmarkFigure03WeightedSpeedup(b *testing.B) { runExperiment(b, "fig03", "") }
func BenchmarkFigure04WeightedEfficiency(b *testing.B) {
	runExperiment(b, "fig04", "weff@W100,u1%")
}
func BenchmarkFigure05WeightedSpeedupBig(b *testing.B) { runExperiment(b, "fig05", "") }
func BenchmarkFigure06WeightedEfficiencyBig(b *testing.B) {
	runExperiment(b, "fig06", "10Kbeats1K")
}
func BenchmarkFigure07TaskRatio(b *testing.B)        { runExperiment(b, "fig07", "") }
func BenchmarkFigure08TaskRatioSystems(b *testing.B) { runExperiment(b, "fig08", "smallWbeatsBig") }
func BenchmarkFigure09Scaled(b *testing.B)           { runExperiment(b, "fig09", "increase@W100,u1%") }
func BenchmarkFigure10PVMResponse(b *testing.B)      { runExperiment(b, "fig10", "maxtask@1min,W12") }
func BenchmarkFigure11PVMSpeedup(b *testing.B)       { runExperiment(b, "fig11", "ordering") }
func BenchmarkSimValidation(b *testing.B)            { runExperiment(b, "simval", "coverage") }
func BenchmarkThresholdTable(b *testing.B)           { runExperiment(b, "thresholds", "ratio@u5%") }

// ---- Substrate micro-benchmarks ----

func BenchmarkAnalyze(b *testing.B) {
	p, err := feasim.ParamsFromUtilization(1000, 100, 10, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := feasim.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeLargeT(b *testing.B) {
	// Scaled-problem regime: T = 100k units per task.
	p, err := feasim.ParamsFromUtilization(1e7, 100, 10, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := feasim.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinomialExpectedMax(b *testing.B) {
	bin := core.Binomial{N: 1000, P: 0.01}
	for i := 0; i < b.N; i++ {
		_ = bin.ExpectedMaxOfIID(100)
	}
}

func BenchmarkThresholdSolve(b *testing.B) {
	q := core.ThresholdQuery{W: 60, O: 10, Util: 0.1, TargetWeightedEff: 0.8}
	for i := 0; i < b.N; i++ {
		if _, err := q.MinTaskRatio(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSimSample(b *testing.B) {
	p, err := feasim.ParamsFromUtilization(1000, 100, 10, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	x, err := sim.NewExact(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Sample()
	}
}

func BenchmarkGeneralSimJob(b *testing.B) {
	cfg := sim.HomogeneousGeometric(12, 100, 10, 1.0/90)
	cfg.Seed = 3
	g, err := sim.NewGeneral(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESEventThroughput(b *testing.B) {
	// Events executed per benchmark op: two processes ping-ponging holds.
	e := des.NewEngine()
	defer e.Close()
	stop := false
	for p := 0; p < 4; p++ {
		e.Spawn(fmt.Sprintf("p%d", p), func(pr *des.Proc) {
			for !stop {
				pr.Hold(1)
			}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	stop = true
	e.RunUntil(e.Now() + 2) // let the loops observe stop and drain
}

func BenchmarkDESPreemptiveServer(b *testing.B) {
	e := des.NewEngine()
	defer e.Close()
	s := e.NewPreemptiveServer("cpu")
	stop := false
	e.Spawn("task", func(p *des.Proc) {
		for !stop {
			s.Use(p, 5, 0)
		}
	})
	e.Spawn("owner", func(p *des.Proc) {
		for !stop {
			p.Hold(2)
			s.Use(p, 1, 1)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	stop = true
	e.RunUntil(e.Now() + 20)
}

func BenchmarkPVMPingPongInProc(b *testing.B) { benchPingPong(b, pvm.InProc) }
func BenchmarkPVMPingPongTCP(b *testing.B)    { benchPingPong(b, pvm.TCP) }

func benchPingPong(b *testing.B, kind pvm.TransportKind) {
	vm, err := pvm.NewVM(pvm.Config{Hosts: 2, Transport: kind})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Halt()
	echo, err := vm.Spawn("echo", 1, 0, func(t *pvm.Task) error {
		for {
			m, err := t.Recv(pvm.AnyTID, 1)
			if err != nil {
				return nil // halt
			}
			if err := t.Send(m.Src, 2, m.Body); err != nil {
				return err
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	b.ResetTimer()
	_, err = vm.Spawn("driver", 0, 0, func(t *pvm.Task) error {
		buf := pvm.NewBuffer().PackInt64(42)
		for i := 0; i < b.N; i++ {
			if err := t.Send(echo, 1, buf); err != nil {
				return err
			}
			if _, err := t.Recv(echo, 2); err != nil {
				return err
			}
		}
		done <- nil
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	// bytes per op: one frame each way.
	b.SetBytes(2 * (4 + 12 + 9))
}

func BenchmarkStationRunTask(b *testing.B) {
	params, err := feasim.SunELCParams(10, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := feasim.NewCluster(1, params, 5)
	if err != nil {
		b.Fatal(err)
	}
	st, err := c.Station(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.RunTask(1000)
	}
}

func BenchmarkBatchMeansAdd(b *testing.B) {
	bm := stats.NewBatchMeans(1000)
	s := rng.NewStream(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Add(s.Float64())
	}
}

// runSweepBench measures points/s for one canonical grid at one pool size.
func runSweepBench(b *testing.B, spec feasim.SweepSpec, workers int) {
	b.Helper()
	spec.Workers = workers
	for i := 0; i < b.N; i++ {
		res, err := feasim.CollectSweep(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != benchgrid.Points {
			b.Fatalf("got %d points, want %d", len(res), benchgrid.Points)
		}
	}
	b.ReportMetric(float64(benchgrid.Points*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweep measures the parallel sweep engine on the canonical grids
// of internal/benchgrid (shared with `feasim bench`, so BENCH_*.json tracks
// the same workloads). The plain grid isolates the engine's fan-out,
// seed-splitting and channel overhead; the fixedTP grid holds (T, P)
// constant at T=10^5 so every point shares one binomial table per
// utilization through the process-wide kernel memo — before the table
// cache, each of those points rebuilt its own O(T) kernel.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runSweepBench(b, benchgrid.AnalyticGrid(), workers)
		})
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("fixedTP/workers=%d", workers), func(b *testing.B) {
			runSweepBench(b, benchgrid.FixedTPGrid(), workers)
		})
	}
}

// BenchmarkFrontier measures the adaptive frontier engine on the canonical
// benchgrid workload (shared with `feasim bench`, so BENCH_9.json's
// sweep_frontier row tracks the same refinement): boundary search to
// resolution 32, reported as cells/s plus dense_per_probe — the probe-count
// saving over the equivalent dense grid.
func BenchmarkFrontier(b *testing.B) {
	b.Run("res=32", benchgrid.FrontierBench())
}

// BenchmarkServedQuery measures the HTTP query service end to end on an
// empirical (exact-sim) threshold bisection — decode, dispatch, solve,
// encode — via the canonical benchgrid served-query pair (shared with
// `feasim bench`, so BENCH_9.json tracks the same workload). The cold path
// varies the seed every iteration so every request misses the cache and
// runs a fresh warm-started bisection; the hit path repeats one envelope,
// so after the first request everything is served from the answer LRU. The
// gap between the two is the cache's value under the heavy-traffic hot
// case.
func BenchmarkServedQuery(b *testing.B) {
	b.Run("cold", benchgrid.ServedQueryBench(false))
	b.Run("hit", benchgrid.ServedQueryBench(true))
}

// BenchmarkServedBatch measures the batched hot path via the canonical
// benchgrid batch (shared with `feasim bench`, so BENCH_9.json tracks the
// same workload): 64 mixed envelopes per /v1/batch request, all served from
// the answer LRU after the warm request, reported as envelopes/s. The
// acceptance bar is per-envelope throughput ≥ 5× served_query_hit's request
// rate — one round trip and one pooled response encode amortized over the
// whole batch.
func BenchmarkServedBatch(b *testing.B) {
	b.Run(fmt.Sprintf("hit%d", benchgrid.ServedBatchSize), benchgrid.ServedBatchBench())
}

// BenchmarkTimelineQuasiStatic measures the analytic timeline path on the
// canonical 3-phase workday (shared with `feasim bench`, so BENCH_9.json's
// timeline_quasistatic row tracks the same workload): 24 epoch answers per
// query, each a quasi-static walk whose stationary kernel evaluations share
// the process-wide binomial-table memo.
func BenchmarkTimelineQuasiStatic(b *testing.B) {
	b.Run(fmt.Sprintf("epochs=%d", benchgrid.TimelineEpochCount), benchgrid.TimelineQuasiStaticBench())
}

// BenchmarkAnswerCacheHit measures the answer cache's hot path over a
// resident 256-key working set: the single-mutex layout (shards=1, the
// pre-sharding baseline) against the deployed layout (shards sized to
// GOMAXPROCS — exactly one shard on a 1-CPU host, so the default never pays
// the shard hash where it cannot shed contention) and a pinned 16-shard
// layout that records the hash tax and the contention relief explicitly.
func BenchmarkAnswerCacheHit(b *testing.B) {
	for _, cfg := range []struct {
		name        string
		shards, par int
	}{
		{"mutex/p1", 1, 1},
		{"sharded/p1", 0, 1},
		{"mutex/p8", 1, 8},
		{"sharded/p8", 0, 8},
		{"sharded16/p1", 16, 1},
		{"sharded16/p8", 16, 8},
	} {
		b.Run(cfg.name, benchgrid.CacheHitContentionBench(cfg.shards, cfg.par))
	}
}

// BenchmarkQueryThresholdSweep measures the typed query path on the
// canonical threshold grid of internal/benchgrid (shared with `feasim
// bench`, so BENCH_9.json tracks the same workload): 40 analytic threshold
// bisections per op, reported as full searches per second.
func BenchmarkQueryThresholdSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := benchgrid.ThresholdGrid()
			spec.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := feasim.CollectQuerySweep(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != benchgrid.ThresholdPoints {
					b.Fatalf("got %d points, want %d", len(res), benchgrid.ThresholdPoints)
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(benchgrid.ThresholdPoints*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// ---- Ablation benchmarks (DESIGN.md §6) ----

// BenchmarkAblationOwnerVariance quantifies the paper's optimism point 2:
// deterministic owner demands versus hyperexponential demands with CV²=16
// and the same mean. Reports mean job time for each.
func BenchmarkAblationOwnerVariance(b *testing.B) {
	mean := func(demand rng.Dist) float64 {
		cfg := sim.HomogeneousGeometric(12, 100, 10, 1.0/90)
		for i := range cfg.Stations {
			cfg.Stations[i].OwnerDemand = demand
		}
		cfg.Seed = 11
		g, err := sim.NewGeneral(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := g.Run(300)
		if err != nil {
			b.Fatal(err)
		}
		var s stats.Summary
		for _, x := range st.Samples {
			s.Add(x.JobTime)
		}
		return s.Mean()
	}
	var det, hyper float64
	for i := 0; i < b.N; i++ {
		det = mean(rng.Deterministic{V: 10})
		hyper = mean(rng.BalancedHyperExp(10, 16))
	}
	b.ReportMetric(det, "jobtime-det")
	b.ReportMetric(hyper, "jobtime-hyperCV16")
	if hyper <= det {
		b.Errorf("high-variance owners should slow the job: det %.2f, hyper %.2f", det, hyper)
	}
}

// BenchmarkAblationImbalance quantifies optimism point 1: deterministic
// task demands versus uniform demands with the same mean.
func BenchmarkAblationImbalance(b *testing.B) {
	mean := func(task rng.Dist) float64 {
		cfg := sim.HomogeneousGeometric(12, 100, 10, 1.0/90)
		cfg.TaskDemand = task
		cfg.Seed = 13
		g, err := sim.NewGeneral(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := g.Run(300)
		if err != nil {
			b.Fatal(err)
		}
		var s stats.Summary
		for _, x := range st.Samples {
			s.Add(x.JobTime)
		}
		return s.Mean()
	}
	var det, unif float64
	for i := 0; i < b.N; i++ {
		det = mean(rng.Deterministic{V: 100})
		unif = mean(rng.Uniform{Lo: 50, Hi: 150})
	}
	b.ReportMetric(det, "jobtime-balanced")
	b.ReportMetric(unif, "jobtime-imbalanced")
	if unif <= det {
		b.Errorf("imbalance should slow the job: det %.2f, unif %.2f", det, unif)
	}
}

// BenchmarkAblationNoGuarantee quantifies optimism point 3: the exact model
// guarantees one unit of task progress between owner bursts, the general
// (wall-clock) model does not. Reports both job-time means; the general
// model should be the slower one.
func BenchmarkAblationNoGuarantee(b *testing.B) {
	p, err := feasim.ParamsFromUtilization(1200, 12, 10, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	var exactMean, generalMean float64
	for i := 0; i < b.N; i++ {
		x, err := sim.NewExact(p, 17)
		if err != nil {
			b.Fatal(err)
		}
		var xs stats.Summary
		for j := 0; j < 2000; j++ {
			xs.Add(x.Sample().JobTime)
		}
		exactMean = xs.Mean()

		cfg := sim.HomogeneousGeometric(12, 100, 10, p.P)
		cfg.Seed = 17
		g, err := sim.NewGeneral(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := g.Run(400)
		if err != nil {
			b.Fatal(err)
		}
		var gs stats.Summary
		for _, s := range st.Samples {
			gs.Add(s.JobTime)
		}
		generalMean = gs.Mean()
	}
	b.ReportMetric(exactMean, "jobtime-guaranteed")
	b.ReportMetric(generalMean, "jobtime-wallclock")
}

// BenchmarkAblationMigration quantifies the Section 5 extension: task
// migration under a heavy-tailed (long-running) owner job on one station.
func BenchmarkAblationMigration(b *testing.B) {
	mk := func(seed uint64) *feasim.Cluster {
		hog := feasim.StationParams{
			OwnerThink:  feasim.Exponential{M: 100},
			OwnerDemand: feasim.Pareto{Xm: 20, A: 1.5}, // long-running owner jobs
		}
		quiet, err := feasim.SunELCParams(10, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		c, err := feasim.NewHeterogeneousCluster(
			[]feasim.StationParams{hog, quiet, quiet}, seed)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	m := feasim.Migrator{InterferenceBudget: 0.3, TransferCost: 10, MaxMigrations: 2}
	var with, without stats.Summary
	for i := 0; i < b.N; i++ {
		for r := 0; r < 50; r++ {
			cm := mk(uint64(1000 + r))
			rec, err := m.RunTask(cm, 0, 500)
			if err != nil {
				b.Fatal(err)
			}
			with.Add(rec.Elapsed)
			cs := mk(uint64(1000 + r))
			st, err := cs.Station(0)
			if err != nil {
				b.Fatal(err)
			}
			without.Add(st.RunTask(500).Elapsed)
		}
	}
	b.ReportMetric(with.Mean(), "tasktime-migrate")
	b.ReportMetric(without.Mean(), "tasktime-stay")
	if with.Mean() >= without.Mean() {
		b.Errorf("migration should beat staying under a hog: %.1f vs %.1f", with.Mean(), without.Mean())
	}
}

// BenchmarkAblationTrialsConvention compares the rounded-trials convention
// (used by the figures) against floor/ceil interpolation for non-integral
// T, reporting the largest E_j disagreement across a W sweep.
func BenchmarkAblationTrialsConvention(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for w := 1; w <= 100; w++ {
			p, err := feasim.ParamsFromUtilization(1000, w, 10, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			r1, err := core.Analyze(p)
			if err != nil {
				b.Fatal(err)
			}
			r2, err := core.AnalyzeInterpolated(p)
			if err != nil {
				b.Fatal(err)
			}
			rel := (r1.EJob - r2.EJob) / r2.EJob
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst*100, "maxdisagreement-%")
}

// ---- Extension experiments as benchmarks ----

func BenchmarkExtension01OwnerVariance(b *testing.B) {
	runExperiment(b, "ext01", "monotoneInCV2")
}

func BenchmarkExtension02MultiJob(b *testing.B) {
	runExperiment(b, "ext02", "response@K1")
}

// BenchmarkAblationGumbel compares the O(1) extreme-value approximation of
// E[max] against the exact O(T) computation across the scaled-problem
// regime, reporting the worst relative E_j error and the speedup factor.
func BenchmarkAblationGumbel(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, w := range []int{8, 20, 60, 100} {
			p, err := feasim.ParamsFromUtilization(1e5*float64(w), w, 10, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			exact, err := core.Analyze(p)
			if err != nil {
				b.Fatal(err)
			}
			approx, err := core.AnalyzeGumbel(p)
			if err != nil {
				b.Fatal(err)
			}
			rel := (approx.EJob - exact.EJob) / exact.EJob
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst*100, "worstErr-%")
}

func BenchmarkExtension03Heterogeneity(b *testing.B) {
	runExperiment(b, "ext03", "monotoneInSpread")
}
