package feasim

import "feasim/internal/solve"

// ---- Unified Scenario/Solver API ----
//
// The declarative entry point: a Scenario describes the feasibility
// question once, and any Solver backend — analytic, exact simulation, or
// discrete-event simulation — answers it. See NewAnalyticSolver,
// NewExactSimSolver, NewDESSolver and RunSweep.

// Scenario is the declarative, JSON-serializable description of one
// feasibility question: the workload (aggregate J/W/O/util, or explicit
// per-station distributions), an optional deadline, and an optional
// weighted-efficiency target.
type Scenario = solve.Scenario

// PhaseSpec is one phase of a scenario's owner-utilization timeline
// (Scenario.Schedule / Scenario.Trace): the owners run at Util for Duration
// time units.
type PhaseSpec = solve.PhaseSpec

// StationSpec declares one workstation's owner workload by rng.Parse
// distribution spec strings, for explicit-station scenarios.
type StationSpec = solve.StationSpec

// ParseScenario decodes a Scenario from JSON, rejecting unknown fields.
func ParseScenario(data []byte) (Scenario, error) { return solve.ParseScenario(data) }

// LoadScenario reads and decodes a scenario JSON file.
func LoadScenario(path string) (Scenario, error) { return solve.LoadScenario(path) }
