package feasim_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"feasim"
)

// TestThresholdQueryCrossBackendParity is the query-API parity check: the
// exact-sim backend's empirical threshold bisection must agree with the
// analytic solver — the boundary ratio within one step (simulation noise can
// flip a knife-edge point), and the analytic weighted efficiency at the
// simulated boundary inside the simulated CI (widened by the usual slack).
func TestThresholdQueryCrossBackendParity(t *testing.T) {
	ctx := context.Background()
	q := feasim.ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 1993}

	aa, err := feasim.NewAnalyticSolver().Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ana := aa.(feasim.ThresholdAnswer)

	pr := feasim.Protocol{Batches: 10, BatchSize: 200, Level: 0.90}
	xa, err := feasim.NewExactSimSolver(pr).Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sim := xa.(feasim.ThresholdAnswer)

	if d := sim.MinRatio - ana.MinRatio; d < -1 || d > 1 {
		t.Errorf("empirical min ratio %d vs analytic %d: off by more than one step", sim.MinRatio, ana.MinRatio)
	}
	if sim.Probes == 0 || sim.Samples == 0 {
		t.Errorf("empirical answer should report bisection cost, got probes=%d samples=%d", sim.Probes, sim.Samples)
	}
	if sim.WeffCI.Zero() {
		t.Fatal("empirical answer should carry the boundary CI")
	}
	// Analytic weighted efficiency at the simulated boundary ratio.
	p, err := feasim.ParamsFromUtilization(float64(sim.MinRatio)*10*float64(q.W), q.W, 10, q.Util)
	if err != nil {
		t.Fatal(err)
	}
	res, err := feasim.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if ci := sim.WeffCI.Widen(0.5); !ci.Contains(res.WeightedEfficiency) {
		t.Errorf("boundary CI [%.4f, %.4f] misses analytic weff %.4f at ratio %d",
			ci.Lo, ci.Hi, res.WeightedEfficiency, sim.MinRatio)
	}
	// Both prescriptions must translate to the same J = ratio·O·W rule.
	if sim.MinJobDemand != float64(sim.MinRatio)*10*float64(q.W) {
		t.Errorf("min job demand %.0f != ratio·O·W", sim.MinJobDemand)
	}
}

// TestPartitionQueryDESBisection exercises the only simulation backend that
// right-sizes: the DES bisection must return a W whose report meets the
// target, and respect MaxW.
func TestPartitionQueryDESBisection(t *testing.T) {
	ctx := context.Background()
	pr := feasim.Protocol{Batches: 5, BatchSize: 100, Level: 0.90}
	q := feasim.PartitionQuery{J: 400, O: 10, Util: 0.05, TargetEff: 0.5, MaxW: 8, Seed: 7}
	pa, err := feasim.NewDESSolver(pr, 5).Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ans := pa.(feasim.PartitionAnswer)
	if ans.W < 1 || ans.W > q.MaxW {
		t.Fatalf("chosen W=%d outside [1, %d]", ans.W, q.MaxW)
	}
	if ans.Report.WeightedEfficiency < q.TargetEff {
		t.Errorf("report at chosen W=%d has weff %.4f below target %.2f",
			ans.W, ans.Report.WeightedEfficiency, q.TargetEff)
	}
	if ans.Report.W != ans.W {
		t.Errorf("answer W=%d but report solved W=%d", ans.W, ans.Report.W)
	}
	// The analytic right-sizer on the same question should land nearby.
	w, err := feasim.MaxWorkstations(q.J, q.O, q.Util, q.TargetEff, q.MaxW)
	if err != nil {
		t.Fatal(err)
	}
	if d := ans.W - w; d < -2 || d > 2 {
		t.Errorf("DES right-size W=%d vs analytic %d: too far apart", ans.W, w)
	}
}

// TestDistributionQueryEmpiricalMatchesAnalytic compares the exact-sim
// backend's empirical quantiles against the model's exact distribution. The
// job time lives on the lattice T + k·O, so empirical quantiles should land
// within one O step of the exact ones once a few thousand samples are in.
func TestDistributionQueryEmpiricalMatchesAnalytic(t *testing.T) {
	ctx := context.Background()
	q := feasim.DistributionQuery{
		Scenario:  feasim.Scenario{Name: "dist", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 1993},
		Quantiles: []float64{0.5, 0.9},
		Deadlines: []float64{150},
	}
	aa, err := feasim.NewAnalyticSolver().Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	exact := aa.(feasim.DistributionAnswer)

	pr := feasim.Protocol{Batches: 10, BatchSize: 500, Level: 0.90}
	xa, err := feasim.NewExactSimSolver(pr).Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	emp := xa.(feasim.DistributionAnswer)
	if emp.Samples != 5000 {
		t.Errorf("empirical answer used %d samples, want the protocol's 5000", emp.Samples)
	}
	if rel := math.Abs(emp.Mean-exact.Mean) / exact.Mean; rel > 0.02 {
		t.Errorf("empirical mean %.2f vs exact %.2f: off by %.1f%%", emp.Mean, exact.Mean, rel*100)
	}
	for i := range exact.Quantiles {
		if d := math.Abs(emp.Quantiles[i].Time - exact.Quantiles[i].Time); d > 10 { // one O step
			t.Errorf("q%g: empirical %.1f vs exact %.1f", exact.Quantiles[i].Q*100,
				emp.Quantiles[i].Time, exact.Quantiles[i].Time)
		}
	}
	if d := math.Abs(emp.Deadlines[0].Prob - exact.Deadlines[0].Prob); d > 0.05 {
		t.Errorf("P(done by 150): empirical %.4f vs exact %.4f", emp.Deadlines[0].Prob, exact.Deadlines[0].Prob)
	}
}

// TestDESDistributionOnExplicitStations: the workload only the DES backend
// understands must be answerable as a distribution query — the empirical
// path is what makes deadline tails measurable beyond the discrete model.
func TestDESDistributionOnExplicitStations(t *testing.T) {
	q := feasim.DistributionQuery{
		Scenario: feasim.Scenario{
			Name: "het",
			Stations: []feasim.StationSpec{
				{OwnerThink: "exp:190", OwnerDemand: "det:10", Count: 2},
				{OwnerThink: "exp:90", OwnerDemand: "det:10", Count: 2},
			},
			TaskDemand: "det:100",
			Seed:       3,
		},
		Deadlines: []float64{100},
	}
	pr := feasim.Protocol{Batches: 5, BatchSize: 60, Level: 0.90}
	da, err := feasim.NewDESSolver(pr, 5).Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ans := da.(feasim.DistributionAnswer)
	if ans.Mean <= 100 {
		t.Errorf("owner interference should stretch the mean past the dedicated 100, got %v", ans.Mean)
	}
	// The default quantile set applies when none are requested.
	if len(ans.Quantiles) != 4 {
		t.Errorf("want the 4 default quantiles, got %+v", ans.Quantiles)
	}
	if ans.Deadlines[0].Prob < 0 || ans.Deadlines[0].Prob >= 1 {
		t.Errorf("P(done by 100) should be in [0,1) under interference, got %v", ans.Deadlines[0].Prob)
	}
	// The analytic backend must refuse the explicit-station distribution.
	if _, err := feasim.NewAnalyticSolver().Answer(context.Background(), q); err == nil {
		t.Error("analytic backend should refuse explicit-station distribution queries")
	}
}

// TestSolveIsReportQueryShorthand: the kept Solve must agree exactly with
// Answer(ReportQuery) on the deterministic backend.
func TestSolveIsReportQueryShorthand(t *testing.T) {
	ctx := context.Background()
	s := feasim.Scenario{Name: "short", J: 1000, W: 10, O: 10, Util: 0.1, TargetEff: 0.8}
	sv := feasim.NewAnalyticSolver()
	rep, err := sv.Solve(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sv.Answer(ctx, feasim.ReportQuery{Scenario: s})
	if err != nil {
		t.Fatal(err)
	}
	got := ra.(feasim.ReportAnswer).Report
	rep.Elapsed, got.Elapsed = 0, 0
	if rep.EJob != got.EJob || rep.WeightedEfficiency != got.WeightedEfficiency ||
		(rep.Feasible == nil) != (got.Feasible == nil) {
		t.Errorf("Solve and Answer(ReportQuery) disagree:\n %+v\n %+v", rep, got)
	}
}

// TestErrUnsupportedAtFacade: the re-exported sentinel matches backend
// refusals end to end.
func TestErrUnsupportedAtFacade(t *testing.T) {
	q := feasim.ScaledQuery{T: 100, O: 10, Util: 0.1, Ws: []int{1, 10}}
	_, err := feasim.NewDESSolver(feasim.Protocol{}, 0).Answer(context.Background(), q)
	if !errors.Is(err, feasim.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
	var ue *feasim.UnsupportedError
	if !errors.As(err, &ue) || ue.Backend != feasim.BackendDES || ue.Kind != feasim.KindScaled {
		t.Errorf("UnsupportedError should carry (des, scaled), got %v", err)
	}
	for _, sv := range []feasim.Solver{
		feasim.NewAnalyticSolver(),
		feasim.NewExactSimSolver(feasim.Protocol{}),
		feasim.NewDESSolver(feasim.Protocol{}, 0),
	} {
		if len(sv.Capabilities()) == 0 {
			t.Errorf("%s: empty capability list", sv.Name())
		}
	}
}
