package peer

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerStateMachine drives one peer's breaker through
// closed → open → half-open → open → half-open → closed and pins the
// single-trial semantics of the half-open state.
func TestBreakerStateMachine(t *testing.T) {
	c, err := New(Config{
		Self:            "http://a",
		Peers:           []string{"http://b"},
		FailAfter:       2,
		BreakerCooldown: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const b = "http://b"

	if !c.Allow(b) || !c.Healthy(b) {
		t.Fatal("fresh peer must be routable")
	}
	c.noteFailure(b, "boom")
	if !c.Healthy(b) {
		t.Fatal("one failure below FailAfter must not open the breaker")
	}
	c.noteFailure(b, "boom")
	if c.Healthy(b) || c.Allow(b) {
		t.Fatal("breaker must be open after FailAfter consecutive failures")
	}
	if st := c.Status(); st.Peers[0].Breaker != "open" || st.Peers[0].Ejections != 1 {
		t.Fatalf("status after open: %+v", st.Peers[0])
	}

	time.Sleep(40 * time.Millisecond)
	if !c.Allow(b) {
		t.Fatal("cooldown elapsed: breaker must grant a half-open trial")
	}
	if c.Allow(b) {
		t.Fatal("half-open breaker must grant exactly one trial")
	}
	if st := c.Status(); st.Peers[0].Breaker != "half-open" {
		t.Fatalf("status in half-open: %+v", st.Peers[0])
	}

	c.noteFailure(b, "still down") // the trial failed
	if st := c.Status(); st.Peers[0].Breaker != "open" || st.Peers[0].Ejections != 2 {
		t.Fatalf("failed trial must re-open: %+v", st.Peers[0])
	}
	if c.Allow(b) {
		t.Fatal("re-opened breaker must refuse traffic until a new cooldown")
	}

	time.Sleep(40 * time.Millisecond)
	if !c.Allow(b) {
		t.Fatal("second cooldown elapsed: another trial expected")
	}
	c.noteSuccess(b) // the trial succeeded
	if !c.Healthy(b) || !c.Allow(b) {
		t.Fatal("successful trial must readmit the peer")
	}
	if st := c.Status(); st.Peers[0].Breaker != "closed" || st.Peers[0].ConsecutiveFails != 0 {
		t.Fatalf("status after readmit: %+v", st.Peers[0])
	}
}

// TestBreakerRateOpen pins the failure-rate path: a flapping peer that never
// fails FailAfter times in a row still opens once half the rolling window is
// observed at >= the threshold failure rate.
func TestBreakerRateOpen(t *testing.T) {
	c, err := New(Config{
		Self:      "http://a",
		Peers:     []string{"http://b"},
		FailAfter: 100, // consecutive path effectively disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const b = "http://b"

	opened := false
	for i := 0; i < DefaultBreakerWindow && !opened; i++ {
		c.noteFailure(b, "flap")
		opened = !c.Healthy(b)
		if !opened {
			c.noteSuccess(b)
		}
	}
	if !opened {
		t.Fatal("50% flapping must open the breaker via the rate window")
	}
	st := c.Status()
	if st.Peers[0].Ejections != 1 {
		t.Fatalf("want 1 breaker open, got %+v", st.Peers[0])
	}
	// Readmit clears the window: the peer starts from a clean slate.
	c.noteSuccess(b)
	if !c.Healthy(b) {
		t.Fatal("success must readmit")
	}
	c.noteFailure(b, "one blip")
	if !c.Healthy(b) {
		t.Fatal("a single failure after readmit must not re-open (window cleared)")
	}
}

// TestForwardRetries pins the backoff-retry path: transient 5xx attempts are
// retried within one logical Forward and the retry counter advances.
func TestForwardRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	c, err := New(Config{
		Self:           "http://self",
		Peers:          []string{srv.URL},
		FailAfter:      10, // stay closed through the transient failures
		RetryMax:       2,
		RetryBaseDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	status, body, err := c.Forward(context.Background(), srv.URL, "/v1/query", "", []byte(`{}`))
	if err != nil || status != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("forward after retries: status=%d body=%q err=%v", status, body, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("want 3 attempts, server saw %d", got)
	}
	st := c.Status()
	if st.Retries != 2 || st.ForwardErrors != 0 || st.Forwards != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestForwardRetryBudget pins the token bucket: with a budget of one token,
// a persistently failing forward stops retrying once the bucket is empty.
func TestForwardRetryBudget(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, err := New(Config{
		Self:           "http://self",
		Peers:          []string{srv.URL},
		FailAfter:      100,
		RetryMax:       5,
		RetryBudget:    1,
		RetryBaseDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Forward(context.Background(), srv.URL, "/v1/query", "", []byte(`{}`)); err == nil {
		t.Fatal("forward to a dead peer must fail")
	}
	// One original attempt plus exactly one budgeted retry.
	if got := calls.Load(); got != 2 {
		t.Fatalf("want 2 attempts under a 1-token budget, server saw %d", got)
	}
	st := c.Status()
	if st.Retries != 1 || st.RetryBudgetExhausted != 1 || st.ForwardErrors != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// hedgeRing finds a hash homed on `home` whose next distinct healthy ring
// owner is `next`, so a hedged forward deterministically races those two.
func hedgeRing(t *testing.T, c *Cluster, home, next string) uint64 {
	t.Helper()
	for _, v := range c.ring.vnodes {
		if c.ring.owner(v.hash) != home {
			continue
		}
		if m, ok := c.nextOwner(v.hash, home); ok && m == next {
			return v.hash
		}
	}
	t.Fatalf("no hash homed on %s hedging to %s", home, next)
	return 0
}

// TestForwardHedgedWins pins the hedge race: a slow home loses to the next
// ring owner, the winner's body is returned, and the cancelled loser takes
// no health penalty.
func TestForwardHedgedWins(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(300 * time.Millisecond):
		}
		fmt.Fprint(w, `"slow"`)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `"fast"`)
	}))
	defer fast.Close()

	c, err := New(Config{
		Self:       "http://self",
		Peers:      []string{slow.URL, fast.URL},
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := hedgeRing(t, c, slow.URL, fast.URL)

	status, body, err := c.ForwardHedged(context.Background(), h, slow.URL, "/v1/query", "", []byte(`{}`))
	if err != nil || status != http.StatusOK || string(body) != `"fast"` {
		t.Fatalf("hedged forward: status=%d body=%q err=%v", status, body, err)
	}
	st := c.Status()
	if st.Hedges != 1 || st.HedgesWon != 1 || st.HedgesLost != 0 {
		t.Fatalf("hedge counters: %+v", st)
	}
	if st.ForwardErrors != 0 {
		t.Fatalf("the cancelled loser must not count as a forward error: %+v", st)
	}
	if !c.Healthy(slow.URL) {
		t.Fatal("the cancelled loser must not take a health penalty")
	}
}

// TestForwardHedgedLocal pins the no-alternative case: when the only other
// ring owner is this node itself, the hedge resolves to ErrHedgeLocal so the
// caller answers with a local solve instead of waiting out a slow home.
func TestForwardHedgedLocal(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(300 * time.Millisecond):
		}
		fmt.Fprint(w, `"slow"`)
	}))
	defer slow.Close()

	c, err := New(Config{
		Self:       "http://self",
		Peers:      []string{slow.URL},
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.ForwardHedged(context.Background(), 1, slow.URL, "/v1/query", "", []byte(`{}`))
	if !errors.Is(err, ErrHedgeLocal) {
		t.Fatalf("want ErrHedgeLocal, got %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("local hedge must beat the slow home, took %v", d)
	}
	if st := c.Status(); st.HedgesLocal != 1 {
		t.Fatalf("hedge counters: %+v", st)
	}
}

// TestForwardHedgedFastHome pins the common case: a home answering within the
// hedge delay never triggers a hedge.
func TestForwardHedgedFastHome(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `"home"`)
	}))
	defer fast.Close()

	c, err := New(Config{
		Self:       "http://self",
		Peers:      []string{fast.URL},
		HedgeDelay: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	status, body, err := c.ForwardHedged(context.Background(), 1, fast.URL, "/v1/query", "", []byte(`{}`))
	if err != nil || status != http.StatusOK || string(body) != `"home"` {
		t.Fatalf("hedged forward: status=%d body=%q err=%v", status, body, err)
	}
	if st := c.Status(); st.Hedges != 0 {
		t.Fatalf("no hedge expected: %+v", st)
	}
}
