// Package peer is the cluster subsystem of the answer tier: a consistent-hash
// ring over the answer-cache routing hash (solve.RouteHash), static membership
// with per-peer health probing, and the HTTP forwarding transport the serve
// layer uses to route a query to its home node.
//
// The division of labor is deliberate: this package deals only in routing
// hashes (uint64), member URLs and raw request/response bytes. It knows
// nothing of queries or answers — the serve layer computes the routing hash,
// decides route-or-solve, and interprets the forwarded body. That keeps the
// ring, health and transport testable without a solver and reusable for any
// future keyspace.
package peer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardHeader marks a request as already forwarded once by a peer; its
// value is the forwarding node's URL. A node receiving it must answer
// locally, never re-forward — the loop guard that bounds any routing
// disagreement (mid-rollout config skew, say) to a single extra hop.
const ForwardHeader = "X-Feasim-Forwarded"

// Defaults applied by New for zero Config fields.
const (
	DefaultProbeInterval  = 2 * time.Second
	DefaultProbeTimeout   = 1 * time.Second
	DefaultFailAfter      = 3
	DefaultForwardTimeout = 30 * time.Second
)

// Config describes one node's view of the static cluster.
type Config struct {
	// Self is this node's own advertised base URL (as it appears in every
	// peer's -peers list). Required.
	Self string
	// Peers is the static member list: base URLs of the other nodes. Self is
	// tolerated and dropped; duplicates and trailing slashes are normalized.
	// At least one distinct peer is required — a single-node deployment
	// should run without a Cluster at all.
	Peers []string
	// VirtualNodes is the per-member virtual node count on the ring
	// (<= 0: DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the health-poll period (<= 0: DefaultProbeInterval).
	ProbeInterval time.Duration
	// ProbeTimeout bounds a single /v1/healthz probe (<= 0: DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that opens a peer's breaker
	// (<= 0: DefaultFailAfter). One probe success readmits it.
	FailAfter int
	// ForwardTimeout bounds a forwarded request when the caller's context has
	// no earlier deadline (<= 0: DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// Client issues probes and forwards (nil: a private default client).
	Client *http.Client

	// BreakerWindow is the rolling outcome window per peer; a failure rate of
	// BreakerThreshold over at least half the window also opens the breaker,
	// catching flappers that never fail FailAfter times in a row
	// (<= 0: DefaultBreakerWindow / DefaultBreakerThreshold).
	BreakerWindow    int
	BreakerThreshold float64
	// BreakerCooldown is how long an open breaker refuses traffic before
	// Allow grants a single half-open trial (<= 0: DefaultBreakerCooldown).
	// The background prober readmits sooner when the peer recovers.
	BreakerCooldown time.Duration
	// RetryMax bounds the retries of one Forward call (0: DefaultRetryMax,
	// < 0: retries disabled).
	RetryMax int
	// RetryBudget caps the retry/hedge token bucket; each logical forward
	// deposits DefaultRetryBudgetRatio tokens (<= 0: DefaultRetryBudget).
	RetryBudget float64
	// RetryBaseDelay is the first backoff step; retry #n sleeps uniform in
	// [0, RetryBaseDelay·2^n] (<= 0: DefaultRetryBaseDelay).
	RetryBaseDelay time.Duration
	// HedgeDelay seeds the adaptive hedge delay before enough forward
	// latencies are observed (0: DefaultHedgeDelay, < 0: hedging disabled).
	HedgeDelay time.Duration
}

// peerState is the mutable health record of one remote member: its circuit
// breaker plus per-peer counters.
type peerState struct {
	url           string
	state         breakerState
	fails         int // consecutive failures (probe or forward)
	lastError     string
	ejections     int64 // breaker open transitions
	forwards      int64 // forwards attempted to this peer
	forwardErrors int64

	window        []bool // rolling outcome ring, true = failure (closed state only)
	windowIdx     int
	windowFails   int
	openedAt      time.Time // when the breaker last opened
	halfOpenTrial bool      // the single half-open trial is in flight
}

// Cluster is one node's live view of the answer-tier ring: the (immutable)
// member ring, the (mutable) per-peer health table, and the routing counters
// surfaced by GET /v1/cluster. Safe for concurrent use.
type Cluster struct {
	self           string
	members        []string // sorted; includes self
	ring           ring
	client         *http.Client
	probeInterval  time.Duration
	probeTimeout   time.Duration
	forwardTimeout time.Duration
	failAfter      int

	breakerWindow    int
	breakerThreshold float64
	breakerCooldown  time.Duration
	retryMax         int
	retryBaseDelay   time.Duration
	hedgeInitial     time.Duration
	hedgeDisabled    bool
	budget           *retryBudget

	mu    sync.Mutex
	peers map[string]*peerState // remote members only

	jitterMu sync.Mutex
	jitter   *rand.Rand // backoff jitter

	latMu      sync.Mutex
	latSamples []time.Duration // ring of recent successful forward latencies
	latIdx     int
	latCount   int64
	hedgeEWMA  time.Duration // smoothed p95, the adaptive hedge delay

	forwards        atomic.Int64 // logical forwards attempted (this node → a home peer)
	forwardErrors   atomic.Int64 // logical forwards that failed after retries
	fallbacks       atomic.Int64 // remote-homed queries solved locally instead
	forwardedIn     atomic.Int64 // forwarded requests received from peers
	replicaHits     atomic.Int64 // remote-homed queries served from the local replica cache
	retries         atomic.Int64 // extra forward attempts after a failed one
	budgetExhausted atomic.Int64 // retries/hedges refused by the token bucket
	hedges          atomic.Int64 // hedge attempts fired (remote or local)
	hedgesWon       atomic.Int64 // hedges that answered before the home
	hedgesLost      atomic.Int64 // homes that answered after a hedge fired
	hedgesLocal     atomic.Int64 // hedges resolved by a local solve
	forwardCorrupt  atomic.Int64 // 200 forward bodies that failed to parse

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// normalizeURL validates a member URL: absolute, http or https, no query or
// fragment; the trailing slash is stripped so URLs compare canonically.
func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("peer: bad URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer: URL %q must be absolute http(s), got scheme %q", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("peer: URL %q has no host", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("peer: URL %q must not carry a query or fragment", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// New validates the config and builds the node's cluster view. The health
// prober is not started — call Start once the node is ready to serve (the
// serve layer does this) so tests can drive health transitions manually.
// All peers start healthy: a cold cluster routes optimistically and lets the
// first probe or forward correct the picture.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("peer: Config.Self is required")
	}
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{self: true}
	members := []string{self}
	peers := make(map[string]*peerState)
	for _, raw := range cfg.Peers {
		p, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			continue // duplicates and self in -peers are tolerated
		}
		seen[p] = true
		members = append(members, p)
		peers[p] = &peerState{url: p, state: breakerClosed}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("peer: no peers besides self; run without a cluster instead")
	}
	sort.Strings(members)
	r, err := buildRing(members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		self:             self,
		members:          members,
		ring:             r,
		client:           cfg.Client,
		probeInterval:    cfg.ProbeInterval,
		probeTimeout:     cfg.ProbeTimeout,
		forwardTimeout:   cfg.ForwardTimeout,
		failAfter:        cfg.FailAfter,
		breakerWindow:    cfg.BreakerWindow,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		retryMax:         cfg.RetryMax,
		retryBaseDelay:   cfg.RetryBaseDelay,
		hedgeInitial:     cfg.HedgeDelay,
		hedgeDisabled:    cfg.HedgeDelay < 0,
		jitter:           jitterSource(),
		peers:            peers,
		stop:             make(chan struct{}),
		done:             make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.probeInterval <= 0 {
		c.probeInterval = DefaultProbeInterval
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = DefaultProbeTimeout
	}
	if c.forwardTimeout <= 0 {
		c.forwardTimeout = DefaultForwardTimeout
	}
	if c.failAfter <= 0 {
		c.failAfter = DefaultFailAfter
	}
	if c.breakerWindow <= 0 {
		c.breakerWindow = DefaultBreakerWindow
	}
	if c.breakerThreshold <= 0 || c.breakerThreshold > 1 {
		c.breakerThreshold = DefaultBreakerThreshold
	}
	if c.breakerCooldown <= 0 {
		c.breakerCooldown = DefaultBreakerCooldown
	}
	switch {
	case c.retryMax == 0:
		c.retryMax = DefaultRetryMax
	case c.retryMax < 0:
		c.retryMax = 0
	}
	budgetCap := cfg.RetryBudget
	if budgetCap <= 0 {
		budgetCap = DefaultRetryBudget
	}
	c.budget = newRetryBudget(budgetCap, DefaultRetryBudgetRatio)
	if c.retryBaseDelay <= 0 {
		c.retryBaseDelay = DefaultRetryBaseDelay
	}
	if c.hedgeInitial == 0 {
		c.hedgeInitial = DefaultHedgeDelay
	}
	c.latSamples = make([]time.Duration, 0, 64)
	return c, nil
}

// Self returns this node's canonical URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the full sorted member list, self included.
func (c *Cluster) Members() []string {
	out := make([]string, len(c.members))
	copy(out, c.members)
	return out
}

// Home maps a routing hash to its home member. local is true when this node
// is the home (answer here; no forwarding).
func (c *Cluster) Home(h uint64) (url string, local bool) {
	owner := c.ring.owner(h)
	return owner, owner == c.self
}

// Healthy reports whether the given member's breaker is closed. Self is
// always healthy; unknown URLs are not. Routing decisions should prefer
// Allow, which additionally grants the half-open trial of an open breaker.
func (c *Cluster) Healthy(member string) bool {
	if member == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	return ok && p.state == breakerClosed
}

// Start launches the background health prober. Idempotent.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		go c.probeLoop()
	})
}

// Close stops the prober and waits for it to exit. Idempotent; safe to call
// even if Start never ran.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: unblock the wait
	<-c.done
}

func (c *Cluster) probeLoop() {
	defer close(c.done)
	// Probe immediately on start, then on the ticker: a node joining a ring
	// where a peer is already dead should learn so within one probe, not one
	// interval.
	c.probeAll()
	t := time.NewTicker(c.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Cluster) probeAll() {
	c.mu.Lock()
	urls := make([]string, 0, len(c.peers))
	for u := range c.peers {
		urls = append(urls, u)
	}
	c.mu.Unlock()
	for _, u := range urls {
		c.probeOne(u)
	}
}

func (c *Cluster) probeOne(member string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/v1/healthz", nil)
	if err != nil {
		c.noteFailure(member, err.Error())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteFailure(member, err.Error())
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.noteFailure(member, fmt.Sprintf("healthz status %d", resp.StatusCode))
		return
	}
	c.noteSuccess(member)
}

// noteFailure records a probe/forward failure against the peer's breaker: a
// closed breaker opens on failAfter consecutive failures or on the rolling
// failure rate; a half-open trial failure re-opens with a fresh cooldown; an
// open breaker just refreshes its cooldown (the peer is still down).
func (c *Cluster) noteFailure(member, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	if !ok {
		return
	}
	p.fails++
	p.lastError = errMsg
	switch p.state {
	case breakerClosed:
		p.pushOutcome(true, c.breakerWindow)
		if p.fails >= c.failAfter || p.windowTrips(c.breakerWindow, c.breakerThreshold) {
			p.state = breakerOpen
			p.openedAt = time.Now()
			p.ejections++
		}
	case breakerHalfOpen:
		p.state = breakerOpen
		p.openedAt = time.Now()
		p.halfOpenTrial = false
		p.ejections++
	case breakerOpen:
		p.openedAt = time.Now()
	}
}

// noteSuccess records a probe/forward success: the failure streak resets and
// an open or half-open breaker closes (readmit), starting from a clean
// outcome window.
func (c *Cluster) noteSuccess(member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	if !ok {
		return
	}
	p.fails = 0
	p.lastError = ""
	if p.state == breakerClosed {
		p.pushOutcome(false, c.breakerWindow)
		return
	}
	p.state = breakerClosed
	p.halfOpenTrial = false
	p.clearWindow()
}

// Forward relays a query body to the home member over the peer's own wire
// format: POST member+path?rawQuery with the loop-guard header set. The
// response status and body are returned verbatim for statuses below 500 —
// including 4xx, which means the home judged the envelope itself bad and the
// verdict should be echoed, not retried locally. Transport errors and 5xx
// (the home is broken, not the envelope) count against the peer's health and
// return an error so the caller falls back to a local solve.
// One logical Forward makes up to 1+RetryMax attempts: transport errors and
// 5xx retry with full-jitter exponential backoff, each retry paid for from
// the cluster-wide retry budget. Every failed attempt counts against the
// peer's breaker; the counters (forwards, forwardErrors) count logical calls.
func (c *Cluster) Forward(ctx context.Context, member, path, rawQuery string, body []byte) (status int, respBody []byte, err error) {
	c.forwards.Add(1)
	c.mu.Lock()
	if p, ok := c.peers[member]; ok {
		p.forwards++
	}
	c.mu.Unlock()
	c.budget.deposit()

	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.forwardTimeout)
		defer cancel()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		start := time.Now()
		st, data, aerr := c.forwardOnce(ctx, member, path, rawQuery, body)
		if aerr == nil {
			c.noteSuccess(member)
			c.observeForwardLatency(time.Since(start))
			return st, data, nil
		}
		if errors.Is(ctx.Err(), context.Canceled) {
			// The caller gave up — a hedge winner cancelled this attempt, or
			// the client hung up. Not the peer's fault: no health penalty,
			// no error counter, no retry.
			return 0, nil, aerr
		}
		lastErr = aerr
		c.noteFailure(member, aerr.Error())
		if attempt >= c.retryMax || ctx.Err() != nil {
			break
		}
		if !c.budget.withdraw() {
			c.budgetExhausted.Add(1)
			break
		}
		c.retries.Add(1)
		if !sleepCtx(ctx, c.backoff(attempt)) {
			break
		}
	}
	c.forwardErrors.Add(1)
	c.mu.Lock()
	if p, ok := c.peers[member]; ok {
		p.forwardErrors++
	}
	c.mu.Unlock()
	return 0, nil, lastErr
}

// forwardOnce is a single forward attempt: POST, read, judge the status.
func (c *Cluster) forwardOnce(ctx context.Context, member, path, rawQuery string, body []byte) (int, []byte, error) {
	u := member + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("peer: building forward to %s: %w", member, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("peer: forward to %s: %w", member, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("peer: reading forward response from %s: %w", member, err)
	}
	if resp.StatusCode >= 500 {
		return 0, nil, fmt.Errorf("peer: %s answered a forward with status %d", member, resp.StatusCode)
	}
	return resp.StatusCode, data, nil
}

// NoteFallback counts a remote-homed query answered by a local solve because
// the home was unhealthy or the forward failed.
func (c *Cluster) NoteFallback() { c.fallbacks.Add(1) }

// NoteForwardedIn counts a forwarded request received from a peer (seen via
// ForwardHeader).
func (c *Cluster) NoteForwardedIn() { c.forwardedIn.Add(1) }

// NoteReplicaHit counts a remote-homed query served from this node's local
// replica cache without touching the network.
func (c *Cluster) NoteReplicaHit() { c.replicaHits.Add(1) }

// PeerStatus is the /v1/cluster health record of one remote member.
type PeerStatus struct {
	URL              string `json:"url"`
	Healthy          bool   `json:"healthy"`
	Breaker          string `json:"breaker"` // closed | open | half-open
	ConsecutiveFails int    `json:"consecutive_fails"`
	LastError        string `json:"last_error,omitempty"`
	Ejections        int64  `json:"ejections"` // breaker open transitions
	Forwards         int64  `json:"forwards"`
	ForwardErrors    int64  `json:"forward_errors"`
}

// Status is a point-in-time snapshot of the cluster view: ring layout, peer
// health and the routing counters. Serialized as the meat of GET /v1/cluster.
type Status struct {
	Self          string             `json:"self"`
	Members       []string           `json:"members"`
	VirtualNodes  int                `json:"virtual_nodes"`
	Ownership     map[string]float64 `json:"ownership"`
	Forwards      int64              `json:"forwards"`
	ForwardErrors int64              `json:"forward_errors"`
	Fallbacks     int64              `json:"fallbacks"`
	ForwardedIn   int64              `json:"forwarded_in"`
	ReplicaHits   int64              `json:"replica_hits"`

	Retries              int64   `json:"retries"`
	RetryBudgetExhausted int64   `json:"retry_budget_exhausted"`
	RetryBudgetTokens    float64 `json:"retry_budget_tokens"`
	Hedges               int64   `json:"hedges"`
	HedgesWon            int64   `json:"hedges_won"`
	HedgesLost           int64   `json:"hedges_lost"`
	HedgesLocal          int64   `json:"hedges_local"`
	HedgeDelayNS         int64   `json:"hedge_delay_ns"` // current adaptive hedge delay
	ForwardCorrupt       int64   `json:"forward_corrupt"`

	Peers []PeerStatus `json:"peers"`
}

// Status snapshots the cluster view.
func (c *Cluster) Status() Status {
	st := Status{
		Self:          c.self,
		Members:       c.Members(),
		VirtualNodes:  len(c.ring.vnodes) / len(c.members),
		Ownership:     c.ring.ownership(),
		Forwards:      c.forwards.Load(),
		ForwardErrors: c.forwardErrors.Load(),
		Fallbacks:     c.fallbacks.Load(),
		ForwardedIn:   c.forwardedIn.Load(),
		ReplicaHits:   c.replicaHits.Load(),

		Retries:              c.retries.Load(),
		RetryBudgetExhausted: c.budgetExhausted.Load(),
		RetryBudgetTokens:    c.budget.balance(),
		Hedges:               c.hedges.Load(),
		HedgesWon:            c.hedgesWon.Load(),
		HedgesLost:           c.hedgesLost.Load(),
		HedgesLocal:          c.hedgesLocal.Load(),
		HedgeDelayNS:         int64(c.hedgeDelay()),
		ForwardCorrupt:       c.forwardCorrupt.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range st.Members {
		p, ok := c.peers[m]
		if !ok {
			continue // self
		}
		st.Peers = append(st.Peers, PeerStatus{
			URL:              p.url,
			Healthy:          p.state == breakerClosed,
			Breaker:          p.state.String(),
			ConsecutiveFails: p.fails,
			LastError:        p.lastError,
			Ejections:        p.ejections,
			Forwards:         p.forwards,
			ForwardErrors:    p.forwardErrors,
		})
	}
	return st
}
