// Package peer is the cluster subsystem of the answer tier: a consistent-hash
// ring over the answer-cache routing hash (solve.RouteHash), static membership
// with per-peer health probing, and the HTTP forwarding transport the serve
// layer uses to route a query to its home node.
//
// The division of labor is deliberate: this package deals only in routing
// hashes (uint64), member URLs and raw request/response bytes. It knows
// nothing of queries or answers — the serve layer computes the routing hash,
// decides route-or-solve, and interprets the forwarded body. That keeps the
// ring, health and transport testable without a solver and reusable for any
// future keyspace.
package peer

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardHeader marks a request as already forwarded once by a peer; its
// value is the forwarding node's URL. A node receiving it must answer
// locally, never re-forward — the loop guard that bounds any routing
// disagreement (mid-rollout config skew, say) to a single extra hop.
const ForwardHeader = "X-Feasim-Forwarded"

// Defaults applied by New for zero Config fields.
const (
	DefaultProbeInterval  = 2 * time.Second
	DefaultProbeTimeout   = 1 * time.Second
	DefaultFailAfter      = 3
	DefaultForwardTimeout = 30 * time.Second
)

// Config describes one node's view of the static cluster.
type Config struct {
	// Self is this node's own advertised base URL (as it appears in every
	// peer's -peers list). Required.
	Self string
	// Peers is the static member list: base URLs of the other nodes. Self is
	// tolerated and dropped; duplicates and trailing slashes are normalized.
	// At least one distinct peer is required — a single-node deployment
	// should run without a Cluster at all.
	Peers []string
	// VirtualNodes is the per-member virtual node count on the ring
	// (<= 0: DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the health-poll period (<= 0: DefaultProbeInterval).
	ProbeInterval time.Duration
	// ProbeTimeout bounds a single /v1/healthz probe (<= 0: DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a peer from
	// routing (<= 0: DefaultFailAfter). One probe success readmits it.
	FailAfter int
	// ForwardTimeout bounds a forwarded request when the caller's context has
	// no earlier deadline (<= 0: DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// Client issues probes and forwards (nil: a private default client).
	Client *http.Client
}

// peerState is the mutable health record of one remote member.
type peerState struct {
	url           string
	healthy       bool
	fails         int // consecutive failures (probe or forward)
	lastError     string
	ejections     int64
	forwards      int64 // forwards attempted to this peer
	forwardErrors int64
}

// Cluster is one node's live view of the answer-tier ring: the (immutable)
// member ring, the (mutable) per-peer health table, and the routing counters
// surfaced by GET /v1/cluster. Safe for concurrent use.
type Cluster struct {
	self           string
	members        []string // sorted; includes self
	ring           ring
	client         *http.Client
	probeInterval  time.Duration
	probeTimeout   time.Duration
	forwardTimeout time.Duration
	failAfter      int

	mu    sync.Mutex
	peers map[string]*peerState // remote members only

	forwards      atomic.Int64 // forwards attempted (this node → a home peer)
	forwardErrors atomic.Int64 // forwards that failed (transport error or 5xx)
	fallbacks     atomic.Int64 // remote-homed queries solved locally instead
	forwardedIn   atomic.Int64 // forwarded requests received from peers
	replicaHits   atomic.Int64 // remote-homed queries served from the local replica cache

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// normalizeURL validates a member URL: absolute, http or https, no query or
// fragment; the trailing slash is stripped so URLs compare canonically.
func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("peer: bad URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer: URL %q must be absolute http(s), got scheme %q", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("peer: URL %q has no host", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("peer: URL %q must not carry a query or fragment", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// New validates the config and builds the node's cluster view. The health
// prober is not started — call Start once the node is ready to serve (the
// serve layer does this) so tests can drive health transitions manually.
// All peers start healthy: a cold cluster routes optimistically and lets the
// first probe or forward correct the picture.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("peer: Config.Self is required")
	}
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{self: true}
	members := []string{self}
	peers := make(map[string]*peerState)
	for _, raw := range cfg.Peers {
		p, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			continue // duplicates and self in -peers are tolerated
		}
		seen[p] = true
		members = append(members, p)
		peers[p] = &peerState{url: p, healthy: true}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("peer: no peers besides self; run without a cluster instead")
	}
	sort.Strings(members)
	r, err := buildRing(members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		self:           self,
		members:        members,
		ring:           r,
		client:         cfg.Client,
		probeInterval:  cfg.ProbeInterval,
		probeTimeout:   cfg.ProbeTimeout,
		forwardTimeout: cfg.ForwardTimeout,
		failAfter:      cfg.FailAfter,
		peers:          peers,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.probeInterval <= 0 {
		c.probeInterval = DefaultProbeInterval
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = DefaultProbeTimeout
	}
	if c.forwardTimeout <= 0 {
		c.forwardTimeout = DefaultForwardTimeout
	}
	if c.failAfter <= 0 {
		c.failAfter = DefaultFailAfter
	}
	return c, nil
}

// Self returns this node's canonical URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the full sorted member list, self included.
func (c *Cluster) Members() []string {
	out := make([]string, len(c.members))
	copy(out, c.members)
	return out
}

// Home maps a routing hash to its home member. local is true when this node
// is the home (answer here; no forwarding).
func (c *Cluster) Home(h uint64) (url string, local bool) {
	owner := c.ring.owner(h)
	return owner, owner == c.self
}

// Healthy reports whether the given member is currently routable. Self is
// always healthy; unknown URLs are not.
func (c *Cluster) Healthy(member string) bool {
	if member == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	return ok && p.healthy
}

// Start launches the background health prober. Idempotent.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		go c.probeLoop()
	})
}

// Close stops the prober and waits for it to exit. Idempotent; safe to call
// even if Start never ran.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: unblock the wait
	<-c.done
}

func (c *Cluster) probeLoop() {
	defer close(c.done)
	// Probe immediately on start, then on the ticker: a node joining a ring
	// where a peer is already dead should learn so within one probe, not one
	// interval.
	c.probeAll()
	t := time.NewTicker(c.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Cluster) probeAll() {
	c.mu.Lock()
	urls := make([]string, 0, len(c.peers))
	for u := range c.peers {
		urls = append(urls, u)
	}
	c.mu.Unlock()
	for _, u := range urls {
		c.probeOne(u)
	}
}

func (c *Cluster) probeOne(member string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/v1/healthz", nil)
	if err != nil {
		c.noteFailure(member, err.Error())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteFailure(member, err.Error())
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.noteFailure(member, fmt.Sprintf("healthz status %d", resp.StatusCode))
		return
	}
	c.noteSuccess(member)
}

// noteFailure records a probe/forward failure and ejects the peer once it
// accumulates failAfter consecutive failures.
func (c *Cluster) noteFailure(member, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	if !ok {
		return
	}
	p.fails++
	p.lastError = errMsg
	if p.healthy && p.fails >= c.failAfter {
		p.healthy = false
		p.ejections++
	}
}

// noteSuccess records a probe/forward success: the failure streak resets and
// an ejected peer is readmitted.
func (c *Cluster) noteSuccess(member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	if !ok {
		return
	}
	p.fails = 0
	p.lastError = ""
	p.healthy = true
}

// Forward relays a query body to the home member over the peer's own wire
// format: POST member+path?rawQuery with the loop-guard header set. The
// response status and body are returned verbatim for statuses below 500 —
// including 4xx, which means the home judged the envelope itself bad and the
// verdict should be echoed, not retried locally. Transport errors and 5xx
// (the home is broken, not the envelope) count against the peer's health and
// return an error so the caller falls back to a local solve.
func (c *Cluster) Forward(ctx context.Context, member, path, rawQuery string, body []byte) (status int, respBody []byte, err error) {
	c.forwards.Add(1)
	c.mu.Lock()
	if p, ok := c.peers[member]; ok {
		p.forwards++
	}
	c.mu.Unlock()

	fail := func(e error) (int, []byte, error) {
		c.forwardErrors.Add(1)
		c.mu.Lock()
		if p, ok := c.peers[member]; ok {
			p.forwardErrors++
		}
		c.mu.Unlock()
		c.noteFailure(member, e.Error())
		return 0, nil, e
	}

	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.forwardTimeout)
		defer cancel()
	}
	u := member + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return fail(fmt.Errorf("peer: building forward to %s: %w", member, err))
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return fail(fmt.Errorf("peer: forward to %s: %w", member, err))
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fail(fmt.Errorf("peer: reading forward response from %s: %w", member, err))
	}
	if resp.StatusCode >= 500 {
		return fail(fmt.Errorf("peer: %s answered a forward with status %d", member, resp.StatusCode))
	}
	c.noteSuccess(member)
	return resp.StatusCode, data, nil
}

// NoteFallback counts a remote-homed query answered by a local solve because
// the home was unhealthy or the forward failed.
func (c *Cluster) NoteFallback() { c.fallbacks.Add(1) }

// NoteForwardedIn counts a forwarded request received from a peer (seen via
// ForwardHeader).
func (c *Cluster) NoteForwardedIn() { c.forwardedIn.Add(1) }

// NoteReplicaHit counts a remote-homed query served from this node's local
// replica cache without touching the network.
func (c *Cluster) NoteReplicaHit() { c.replicaHits.Add(1) }

// PeerStatus is the /v1/cluster health record of one remote member.
type PeerStatus struct {
	URL              string `json:"url"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	LastError        string `json:"last_error,omitempty"`
	Ejections        int64  `json:"ejections"`
	Forwards         int64  `json:"forwards"`
	ForwardErrors    int64  `json:"forward_errors"`
}

// Status is a point-in-time snapshot of the cluster view: ring layout, peer
// health and the routing counters. Serialized as the meat of GET /v1/cluster.
type Status struct {
	Self          string             `json:"self"`
	Members       []string           `json:"members"`
	VirtualNodes  int                `json:"virtual_nodes"`
	Ownership     map[string]float64 `json:"ownership"`
	Forwards      int64              `json:"forwards"`
	ForwardErrors int64              `json:"forward_errors"`
	Fallbacks     int64              `json:"fallbacks"`
	ForwardedIn   int64              `json:"forwarded_in"`
	ReplicaHits   int64              `json:"replica_hits"`
	Peers         []PeerStatus       `json:"peers"`
}

// Status snapshots the cluster view.
func (c *Cluster) Status() Status {
	st := Status{
		Self:          c.self,
		Members:       c.Members(),
		VirtualNodes:  len(c.ring.vnodes) / len(c.members),
		Ownership:     c.ring.ownership(),
		Forwards:      c.forwards.Load(),
		ForwardErrors: c.forwardErrors.Load(),
		Fallbacks:     c.fallbacks.Load(),
		ForwardedIn:   c.forwardedIn.Load(),
		ReplicaHits:   c.replicaHits.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range st.Members {
		p, ok := c.peers[m]
		if !ok {
			continue // self
		}
		st.Peers = append(st.Peers, PeerStatus{
			URL:              p.url,
			Healthy:          p.healthy,
			ConsecutiveFails: p.fails,
			LastError:        p.lastError,
			Ejections:        p.ejections,
			Forwards:         p.forwards,
			ForwardErrors:    p.forwardErrors,
		})
	}
	return st
}
