package peer

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"feasim/internal/solve"
)

// threeNodeViews builds the same 3-member cluster from each member's
// perspective. The URLs are fake — fine for pure ring/routing tests.
func threeNodeViews(t *testing.T) []*Cluster {
	t.Helper()
	urls := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
	views := make([]*Cluster, len(urls))
	for i, self := range urls {
		var others []string
		for j, u := range urls {
			if j != i {
				others = append(others, u)
			}
		}
		c, err := New(Config{Self: self, Peers: others})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = c
	}
	return views
}

// TestRingAgreement: every member computes the same home for every key — the
// property that lets the fleet route without coordination — and marks
// exactly itself as local.
func TestRingAgreement(t *testing.T) {
	views := threeNodeViews(t)
	for h := uint64(0); h < 10_000; h++ {
		key := h * 0x9e3779b97f4a7c15 // spread probes over the ring
		home0, _ := views[0].Home(key)
		for i, v := range views {
			home, local := v.Home(key)
			if home != home0 {
				t.Fatalf("key %#x: view %d homes %s, view 0 homes %s", key, i, home, home0)
			}
			if local != (home == v.Self()) {
				t.Fatalf("key %#x: view %d local=%v for home %s", key, i, local, home)
			}
		}
	}
}

// TestRingRoutesTimelineQueries: the end-to-end routing contract for the new
// query kind — every view agrees on a timeline query's home node, the home
// follows the schedule (the owner's workday is routing identity, so distinct
// workdays spread over the fleet), and analytic name/seed siblings of one
// workday land on one home.
func TestRingRoutesTimelineQueries(t *testing.T) {
	views := threeNodeViews(t)
	workday := func(name string, seed uint64, nightUtil float64) solve.TimelineQuery {
		return solve.TimelineQuery{Scenario: solve.Scenario{
			Name: name, J: 400, W: 4, O: 10, Seed: seed,
			Schedule: []solve.PhaseSpec{
				{Name: "day", Duration: 600, Util: 0.1},
				{Name: "night", Duration: 600, Util: nightUtil},
			},
		}}
	}
	homes := make(map[string]bool)
	for i := 0; i < 32; i++ {
		q := workday("wd", 1, 0.01+float64(i)*0.005)
		key, ok := solve.RouteHash(solve.BackendAnalytic, q)
		if !ok {
			t.Fatal("timeline queries must be routable")
		}
		home0, _ := views[0].Home(key)
		homes[home0] = true
		for v, view := range views {
			if home, _ := view.Home(key); home != home0 {
				t.Fatalf("schedule %d: view %d homes %s, view 0 homes %s", i, v, home, home0)
			}
		}
	}
	if len(homes) < 2 {
		t.Errorf("32 distinct workdays all homed on one node — schedule not feeding the ring")
	}
	k1, _ := solve.RouteHash(solve.BackendAnalytic, workday("a", 1, 0.01))
	k2, _ := solve.RouteHash(solve.BackendAnalytic, workday("b", 99, 0.01))
	if k1 != k2 {
		t.Error("analytic timeline siblings should share a routing key")
	}
}

// TestRingBalance: with the default virtual node count, a 3-member ring's
// ownership fractions are within a reasonable band of 1/3 and sum to 1.
func TestRingBalance(t *testing.T) {
	views := threeNodeViews(t)
	own := views[0].Status().Ownership
	if len(own) != 3 {
		t.Fatalf("ownership over %d members, want 3", len(own))
	}
	var sum float64
	for m, f := range own {
		sum += f
		if f < 0.15 || f > 0.55 {
			t.Errorf("member %s owns %.3f of the keyspace — too far from 1/3", m, f)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ownership fractions sum to %v, want 1", sum)
	}
}

// TestNewValidation: the config must be rejected early, not at first route.
func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},                   // no self
		{Self: "http://a:1"}, // no peers
		{Self: "http://a:1", Peers: []string{"http://a:1"}},     // only self
		{Self: "a:1", Peers: []string{"http://b:1"}},            // relative self
		{Self: "ftp://a:1", Peers: []string{"http://b:1"}},      // bad scheme
		{Self: "http://a:1", Peers: []string{"http://b:1?x=1"}}, // query string
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	// Duplicates, self-mentions and trailing slashes normalize away.
	c, err := New(Config{
		Self:  "http://a:1/",
		Peers: []string{"http://b:1/", "http://b:1", "http://a:1", "http://c:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 3 {
		t.Errorf("members %v, want 3 normalized entries", got)
	}
	if !c.Healthy("http://b:1") || c.Healthy("http://nope:1") {
		t.Error("known peers start healthy; unknown URLs are never healthy")
	}
}

// TestForwardLoopGuardAndEcho: a forward carries the loop-guard header, and
// sub-5xx responses — including 4xx verdicts — are echoed with their status.
func TestForwardLoopGuardAndEcho(t *testing.T) {
	var gotHeader atomic.Value
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(ForwardHeader))
		if strings.Contains(r.URL.RawQuery, "backend=bogus") {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"bad backend"}`))
			return
		}
		w.Write([]byte(`{"kind":"threshold"}`))
	}))
	defer peerSrv.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{peerSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := c.Forward(context.Background(), peerSrv.URL, "/v1/query", "", []byte(`{}`))
	if err != nil || status != http.StatusOK {
		t.Fatalf("forward: status=%d err=%v", status, err)
	}
	if string(body) != `{"kind":"threshold"}` {
		t.Errorf("forward body %q", body)
	}
	if got := gotHeader.Load(); got != "http://self:1" {
		t.Errorf("loop-guard header %q, want the forwarder's URL", got)
	}
	status, body, err = c.Forward(context.Background(), peerSrv.URL, "/v1/query", "backend=bogus", []byte(`{}`))
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("4xx must echo, not error: status=%d err=%v", status, err)
	}
	if string(body) != `{"error":"bad backend"}` {
		t.Errorf("4xx body %q", body)
	}
	if st := c.Status(); st.Forwards != 2 || st.ForwardErrors != 0 {
		t.Errorf("counters %+v, want 2 forwards / 0 errors", st)
	}
}

// TestForwardFailureCounts: transport errors and 5xx count against the
// peer's health; failAfter consecutive failures eject it, one success
// readmits.
func TestForwardFailureCounts(t *testing.T) {
	var failing atomic.Bool
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer peerSrv.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{peerSrv.URL}, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	failing.Store(true)
	for i := 0; i < 2; i++ {
		if _, _, err := c.Forward(context.Background(), peerSrv.URL, "/v1/query", "", nil); err == nil {
			t.Fatal("5xx must surface as an error")
		}
	}
	if c.Healthy(peerSrv.URL) {
		t.Fatal("peer should be ejected after FailAfter consecutive failures")
	}
	st := c.Status()
	if st.ForwardErrors != 2 || len(st.Peers) != 1 || st.Peers[0].Ejections != 1 {
		t.Errorf("status %+v, want 2 forward errors and 1 ejection", st)
	}
	failing.Store(false)
	if _, _, err := c.Forward(context.Background(), peerSrv.URL, "/v1/query", "", nil); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy(peerSrv.URL) {
		t.Error("a successful forward must readmit the peer")
	}
}

// TestProbeEjectReadmit: the background prober ejects a peer whose healthz
// fails and readmits it when it recovers.
func TestProbeEjectReadmit(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer peerSrv.Close()

	c, err := New(Config{
		Self:          "http://self:1",
		Peers:         []string{peerSrv.URL},
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	wait := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.Healthy(peerSrv.URL) != want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait(true, "initial health")
	healthy.Store(false)
	wait(false, "ejection after flapping down")
	healthy.Store(true)
	wait(true, "readmission after recovery")
	if st := c.Status(); st.Peers[0].Ejections < 1 {
		t.Errorf("status %+v, want at least one recorded ejection", st.Peers[0])
	}
}
