package peer

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// The consistent-hash ring. Members are node URLs; each member projects
// VirtualNodes points onto the 64-bit ring (fnv64a of "url#i"), and a key
// hash is owned by the first virtual node clockwise from it. Every node
// builds the ring from the same static member list, so all nodes agree on
// every key's home without coordination — the property the answer tier
// routes on. Health is deliberately NOT part of ring construction: ejecting
// a peer must not reshuffle ownership of the rest of the keyspace, so an
// unhealthy home is handled by the caller falling back to a local solve.

// DefaultVirtualNodes is the per-member virtual node count used when
// Config.VirtualNodes <= 0. 128 points per member keeps the ownership
// imbalance of a small static cluster within a few percent.
const DefaultVirtualNodes = 128

type vnode struct {
	hash  uint64
	owner string // member URL
}

type ring struct {
	vnodes []vnode // sorted by hash
}

// mix64 is the splitmix64 finalizer. FNV-1a over member URLs that share a
// long common prefix (every vnode label is "<url>#<i>") leaves the high
// bits — the ones the sort orders on — strongly correlated, clumping a
// member's virtual nodes into long contiguous arcs: ownership imbalance
// far beyond the few-percent target, and arcs so long a vnode often has no
// *other*-member successor for the hedge to race. The finalizer
// decorrelates the bits; it is deterministic, so every node still builds
// the identical ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func buildRing(members []string, virtualNodes int) (ring, error) {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := ring{vnodes: make([]vnode, 0, len(members)*virtualNodes)}
	for _, m := range members {
		for i := 0; i < virtualNodes; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m, i)
			r.vnodes = append(r.vnodes, vnode{hash: mix64(h.Sum64()), owner: m})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Owner tiebreak on (vanishingly rare) hash collisions keeps the sort —
		// and therefore routing — identical on every node.
		return a.owner < b.owner
	})
	if len(r.vnodes) == 0 {
		return ring{}, fmt.Errorf("peer: ring has no members")
	}
	return r, nil
}

// owner returns the member owning hash h: the first virtual node at or after
// h, wrapping past the top of the ring to the first virtual node.
func (r ring) owner(h uint64) string {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].owner
}

// ownership returns each member's fraction of the keyspace — the summed arc
// lengths of its virtual nodes' segments over 2^64. Diagnostic only (the
// /v1/cluster payload); routing never reads it.
func (r ring) ownership() map[string]float64 {
	frac := make(map[string]float64)
	n := len(r.vnodes)
	if n == 0 {
		return frac
	}
	const whole = float64(math.MaxUint64) + 1
	for i, v := range r.vnodes {
		prev := r.vnodes[(i-1+n)%n].hash
		// Segment (prev, v.hash] owned by v.owner; the wrap segment spans
		// the top of the ring.
		arc := v.hash - prev // uint64 arithmetic wraps correctly
		frac[v.owner] += float64(arc) / whole
	}
	return frac
}
