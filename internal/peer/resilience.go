package peer

// The resilience layer of the answer tier: a per-peer circuit breaker
// (closed → open on failure rate or failure streak, half-open single-trial
// readmit), a cluster-wide retry budget (token bucket — a down home cannot
// trigger a retry storm), and hedged forwards (after an adaptive delay based
// on the p95 of recent forward latencies, a second attempt races the first to
// the next ring owner, or falls back to a local solve).

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Resilience defaults applied by New for zero Config fields.
const (
	DefaultBreakerWindow    = 20
	DefaultBreakerThreshold = 0.5
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultRetryMax         = 2
	DefaultRetryBudget      = 10
	DefaultRetryBudgetRatio = 0.1
	DefaultRetryBaseDelay   = 10 * time.Millisecond
	DefaultHedgeDelay       = 100 * time.Millisecond
)

// maxRetryDelay caps one exponential-backoff step before jitter.
const maxRetryDelay = 250 * time.Millisecond

// minHedgeDelay floors the adaptive hedge delay so a warm loopback cluster
// cannot degenerate into hedging every forward.
const minHedgeDelay = 1 * time.Millisecond

// hedgeRecomputeEvery is how many latency observations pass between p95
// recomputations (sorting the sample ring on every forward would tax the hot
// path for no precision gain).
const hedgeRecomputeEvery = 8

// ErrHedgeLocal reports that a hedged forward gave up on the network: the
// hedge delay elapsed, no healthy alternative owner exists, and the caller
// should answer with a local solve instead of waiting for the home.
var ErrHedgeLocal = errors.New("peer: hedged forward chose a local solve")

// breakerState is the circuit-breaker position of one remote peer.
type breakerState int

const (
	breakerClosed   breakerState = iota // routable; outcomes recorded
	breakerOpen                         // ejected; forwards refused until cooldown
	breakerHalfOpen                     // one trial in flight decides readmit/reopen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// pushOutcome records one closed-state outcome (true = failure) in the
// peer's rolling window. Caller holds the cluster mutex.
func (p *peerState) pushOutcome(fail bool, window int) {
	if len(p.window) < window {
		p.window = append(p.window, fail)
		if fail {
			p.windowFails++
		}
		return
	}
	if p.window[p.windowIdx] {
		p.windowFails--
	}
	p.window[p.windowIdx] = fail
	if fail {
		p.windowFails++
	}
	p.windowIdx = (p.windowIdx + 1) % window
}

// windowTrips reports whether the rolling failure rate justifies opening:
// at least half the window observed and the failure fraction at or above the
// threshold. This is what catches a flapping peer that never fails failAfter
// times in a row. Caller holds the cluster mutex.
func (p *peerState) windowTrips(window int, threshold float64) bool {
	minSamples := window / 2
	if minSamples < 1 {
		minSamples = 1
	}
	if len(p.window) < minSamples {
		return false
	}
	return float64(p.windowFails) >= threshold*float64(len(p.window))
}

// clearWindow resets the rolling outcome window (on readmit, so a recovered
// peer starts from a clean slate). Caller holds the cluster mutex.
func (p *peerState) clearWindow() {
	p.window = p.window[:0]
	p.windowIdx = 0
	p.windowFails = 0
}

// Allow reports whether traffic may be routed to member right now, and is
// the only way a forward reaches an open breaker: once the cooldown elapses
// it admits exactly one half-open trial whose outcome (noteSuccess /
// noteFailure) readmits or re-opens the peer. Self is always allowed.
func (c *Cluster) Allow(member string) bool {
	if member == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[member]
	if !ok {
		return false
	}
	switch p.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(p.openedAt) >= c.breakerCooldown {
			p.state = breakerHalfOpen
			p.halfOpenTrial = true
			return true
		}
		return false
	case breakerHalfOpen:
		if !p.halfOpenTrial {
			p.halfOpenTrial = true
			return true
		}
		return false
	}
	return false
}

// retryBudget is a token bucket bounding retries and hedges cluster-wide:
// every logical forward deposits ratio tokens (up to cap), every retry or
// hedge withdraws one. Sustained failure therefore costs at most ~ratio extra
// attempts per forward, while short blips retry freely from the accumulated
// bucket.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

func newRetryBudget(cap, ratio float64) *retryBudget {
	return &retryBudget{tokens: cap, cap: cap, ratio: ratio}
}

func (b *retryBudget) deposit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (b *retryBudget) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// backoff returns the full-jitter exponential backoff for retry #attempt:
// uniform in [0, min(base·2^attempt, cap)].
func (c *Cluster) backoff(attempt int) time.Duration {
	d := c.retryBaseDelay << uint(attempt)
	if d <= 0 || d > maxRetryDelay {
		d = maxRetryDelay
	}
	c.jitterMu.Lock()
	d = time.Duration(c.jitter.Int63n(int64(d) + 1))
	c.jitterMu.Unlock()
	return d
}

// sleepCtx waits d or until ctx is done; reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// observeForwardLatency feeds one successful forward's duration into the
// hedge-delay estimator: a 64-sample ring whose p95 is folded into an EWMA
// every hedgeRecomputeEvery observations.
func (c *Cluster) observeForwardLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.latSamples) < cap(c.latSamples) {
		c.latSamples = append(c.latSamples, d)
	} else {
		c.latSamples[c.latIdx] = d
		c.latIdx = (c.latIdx + 1) % cap(c.latSamples)
	}
	c.latCount++
	if c.latCount%hedgeRecomputeEvery != 0 || len(c.latSamples) < hedgeRecomputeEvery {
		return
	}
	sorted := append([]time.Duration(nil), c.latSamples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[len(sorted)*95/100]
	if c.hedgeEWMA == 0 {
		c.hedgeEWMA = p95
	} else {
		// 0.7/0.3 smoothing: reactive enough to follow a latency regime
		// change within a few windows, stable enough to ignore one outlier.
		c.hedgeEWMA = time.Duration(0.7*float64(c.hedgeEWMA) + 0.3*float64(p95))
	}
}

// hedgeDelay returns the current adaptive hedge delay: the smoothed p95 of
// recent forward latencies, clamped to [minHedgeDelay, forwardTimeout/2];
// before enough samples exist, the configured initial delay.
func (c *Cluster) hedgeDelay() time.Duration {
	c.latMu.Lock()
	d := c.hedgeEWMA
	c.latMu.Unlock()
	if d == 0 {
		return c.hedgeInitial
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if max := c.forwardTimeout / 2; d > max {
		d = max
	}
	return d
}

// nextOwner walks the ring clockwise from hash h for the first distinct
// member other than exclude whose breaker admits traffic — the hedge target.
// ok is false when that member is this node itself (or nobody qualifies):
// the hedge should then be a local solve.
func (c *Cluster) nextOwner(h uint64, exclude string) (member string, ok bool) {
	n := len(c.ring.vnodes)
	i := sort.Search(n, func(i int) bool { return c.ring.vnodes[i].hash >= h })
	seen := map[string]bool{exclude: true}
	for k := 0; k < n; k++ {
		m := c.ring.vnodes[(i+k)%n].owner
		if seen[m] {
			continue
		}
		seen[m] = true
		if m == c.self {
			return "", false
		}
		if c.Healthy(m) {
			return m, true
		}
	}
	return "", false
}

// ForwardHedged forwards to the home member like Forward, but arms a hedge:
// if no answer arrives within the adaptive hedge delay, a second forward
// races the first to the next ring owner (the loop-guard header makes it
// answer locally, so no routing loop), or — when no healthy alternative
// exists — the hedge is ErrHedgeLocal and the caller solves locally. The
// first success wins and the loser is cancelled without a health penalty.
// Hedges withdraw from the same retry budget that bounds retries.
func (c *Cluster) ForwardHedged(ctx context.Context, hash uint64, home, path, rawQuery string, body []byte) (status int, respBody []byte, err error) {
	if c.hedgeDisabled {
		return c.Forward(ctx, home, path, rawQuery, body)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		status int
		body   []byte
		member string
		err    error
	}
	ch := make(chan result, 2)
	launch := func(member string) {
		go func() {
			st, data, ferr := c.Forward(hctx, member, path, rawQuery, body)
			ch <- result{status: st, body: data, member: member, err: ferr}
		}()
	}
	launch(home)

	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	pending := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if hedged {
					if r.member == home {
						c.hedgesLost.Add(1)
					} else {
						c.hedgesWon.Add(1)
					}
				}
				cancel() // the loser is cancelled, not failed
				return r.status, r.body, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return 0, nil, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			next, remote := c.nextOwner(hash, home)
			if !c.budget.withdraw() {
				c.budgetExhausted.Add(1)
				continue // over budget: keep waiting on the home alone
			}
			c.hedges.Add(1)
			if !remote {
				c.hedgesLocal.Add(1)
				cancel()
				return 0, nil, ErrHedgeLocal
			}
			pending++
			launch(next)
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
}

// NoteCorrupt records a 200 forward response whose body failed to parse:
// counted like any other peer failure (the home is serving garbage) so the
// breaker sees it, plus its own counter for observability.
func (c *Cluster) NoteCorrupt(member string) {
	c.forwardCorrupt.Add(1)
	c.noteFailure(member, "forward body failed to parse")
}

// jitterSource builds the backoff jitter RNG. Jitter does not need to be
// reproducible (chaos determinism lives in internal/fault), only cheap and
// race-free under the cluster's own mutex.
func jitterSource() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
