// Package timeline promotes the workday machinery of internal/cluster to a
// query-answerable subsystem. The paper calibrated its model from uptime
// measured "over two working days" — a single stationary utilization — but
// owner activity at 2pm is nothing like 2am. A Profile is a
// piecewise-constant owner-utilization timeline (a repeating workday
// schedule, or a recorded trace that holds its final level); the package
// answers "how long does a job launched at offset t take?" two ways:
//
//   - QuasiStatic: the analytic approximation. Within each segment the job
//     completes at the stationary rate 1/E[job | util] of the paper's
//     discrete model (the fast core.BinomialTables kernel), and the
//     remaining completion fraction carries across segment boundaries. A
//     profile whose segments all share one utilization never changes rate,
//     so the answer reduces to the stationary analysis exactly.
//   - Replay: the empirical check. Each launch offset is replayed by
//     independent cluster.PhasedStation replications, whose owners switch
//     behaviour as the task crosses phase boundaries.
//
// internal/solve lowers phased Scenarios onto this package to answer the
// "timeline" query kind; keeping the mechanics here keeps solve free of
// cluster/DES plumbing and this package free of the query envelope.
package timeline

import (
	"fmt"
	"math"

	"feasim/internal/cluster"
	"feasim/internal/core"
	"feasim/internal/rng"
	"feasim/internal/stats"
)

// Segment is one span of a utilization profile: the owners run at Util for
// Duration time units.
type Segment struct {
	Name     string
	Duration float64
	Util     float64
}

// Profile is a piecewise-constant owner-utilization timeline. Cyclic
// profiles repeat forever (a workday schedule); non-cyclic ones are
// recorded traces whose last segment's utilization holds after the
// recording ends.
type Profile struct {
	Segments []Segment
	Cyclic   bool
}

// Validate checks the profile: at least one segment, positive durations,
// utilizations inside the model's [0,1) domain.
func (p Profile) Validate() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("timeline: profile needs at least one segment")
	}
	for i, seg := range p.Segments {
		if !(seg.Duration > 0) {
			return fmt.Errorf("timeline: segment %d (%s) needs a positive duration, got %v", i, seg.Name, seg.Duration)
		}
		if seg.Util < 0 || seg.Util >= 1 {
			return fmt.Errorf("timeline: segment %d (%s) needs utilization in [0,1), got %v", i, seg.Name, seg.Util)
		}
	}
	return nil
}

// Length is the duration of one cycle (or of the recorded trace).
func (p Profile) Length() float64 {
	var sum float64
	for _, seg := range p.Segments {
		sum += seg.Duration
	}
	return sum
}

// MeanUtilization is the duration-weighted utilization over one cycle.
func (p Profile) MeanUtilization() float64 {
	total := p.Length()
	if total <= 0 {
		return 0
	}
	var sum float64
	for _, seg := range p.Segments {
		sum += seg.Util * seg.Duration
	}
	return sum / total
}

// SegmentAt returns the segment active at absolute time t >= 0 and the time
// it ends. Cyclic profiles wrap modulo the cycle; past the end of a trace
// the last segment holds with an infinite end.
func (p Profile) SegmentAt(t float64) (Segment, float64) {
	total := p.Length()
	if !p.Cyclic && t >= total {
		return p.Segments[len(p.Segments)-1], math.Inf(1)
	}
	var base float64
	pos := t
	if p.Cyclic {
		base = math.Floor(t/total) * total
		pos = t - base
	}
	var acc float64
	for _, seg := range p.Segments {
		acc += seg.Duration
		if pos < acc {
			return seg, base + acc
		}
	}
	// Floating-point boundary: wrap (cyclic) or hold the last segment.
	if p.Cyclic {
		return p.Segments[0], base + total + p.Segments[0].Duration
	}
	return p.Segments[len(p.Segments)-1], math.Inf(1)
}

// MeanUtilizationOver is the duration-weighted utilization over [t0, t1] —
// the value a weighted-efficiency metric for a job spanning that window
// should divide by.
func (p Profile) MeanUtilizationOver(t0, t1 float64) float64 {
	if !(t1 > t0) {
		seg, _ := p.SegmentAt(t0)
		return seg.Util
	}
	var area float64
	t := t0
	for t < t1 {
		seg, end := p.SegmentAt(t)
		stop := math.Min(end, t1)
		if !(stop > t) {
			break
		}
		area += seg.Util * (stop - t)
		t = stop
	}
	return area / (t1 - t0)
}

// EpochStarts returns the launch offsets a timeline answer covers. With
// epochs > 0 the horizon is divided evenly; with epochs == 0 there is one
// launch at start plus one at every segment boundary inside the horizon. A
// zero horizon means one full cycle (or the recorded trace length).
func (p Profile) EpochStarts(start, horizon float64, epochs int) []float64 {
	if horizon <= 0 {
		horizon = p.Length()
	}
	if epochs > 0 {
		out := make([]float64, epochs)
		step := horizon / float64(epochs)
		for i := range out {
			out[i] = start + float64(i)*step
		}
		return out
	}
	out := []float64{start}
	t := start
	for {
		_, end := p.SegmentAt(t)
		if math.IsInf(end, 1) || end >= start+horizon {
			break
		}
		out = append(out, end)
		t = end
	}
	return out
}

// QuasiStatic answers launch-time questions analytically under the
// frozen-phase approximation: within each segment the job progresses at the
// stationary completion rate of the discrete model at that segment's
// utilization, and the unfinished fraction is carried across boundaries.
type QuasiStatic struct {
	Profile Profile
	J       float64
	W       int
	O       float64

	// uniform marks a profile whose segments all share one utilization: the
	// rate never changes, so the walk is skipped and the stationary E[job]
	// returned exactly (no boundary-splicing rounding), which is what makes
	// a single-phase schedule reproduce the stationary report bit-for-bit.
	uniform bool
	// memo caches the stationary E[job] per distinct utilization; workdays
	// hold a handful of utilizations but an answer may cover many epochs.
	memo map[float64]float64
}

// NewQuasiStatic builds the walker for a job of total demand j on w
// stations with owner burst demand o.
func NewQuasiStatic(p Profile, j float64, w int, o float64) (*QuasiStatic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	uniform := true
	for _, seg := range p.Segments {
		if seg.Util != p.Segments[0].Util {
			uniform = false
			break
		}
	}
	return &QuasiStatic{Profile: p, J: j, W: w, O: o, uniform: uniform, memo: make(map[float64]float64)}, nil
}

// stationaryEJob is the discrete model's E[job] at utilization u.
func (qs *QuasiStatic) stationaryEJob(u float64) (float64, error) {
	if e, ok := qs.memo[u]; ok {
		return e, nil
	}
	p, err := core.ParamsFromUtilization(qs.J, qs.W, qs.O, u)
	if err != nil {
		return 0, err
	}
	res, err := core.Analyze(p)
	if err != nil {
		return 0, err
	}
	qs.memo[u] = res.EJob
	return res.EJob, nil
}

// Epoch is the quasi-static answer for one launch offset.
type Epoch struct {
	// Start is the launch offset; Segment and LaunchUtil describe the
	// profile at that instant.
	Start      float64
	Segment    string
	LaunchUtil float64
	// MeanUtil is the duration-weighted utilization over the job's span.
	MeanUtil float64
	// EJob is the expected completion time of a job launched at Start.
	EJob float64
}

// maxWalkSegments bounds the boundary-splicing walk; a job that crosses a
// million segments without finishing signals a degenerate profile (e.g.
// microscopic durations against a huge job), not a real workday.
const maxWalkSegments = 1 << 20

// At computes the quasi-static completion of a job launched at offset t0.
func (qs *QuasiStatic) At(t0 float64) (Epoch, error) {
	seg0, _ := qs.Profile.SegmentAt(t0)
	ep := Epoch{Start: t0, Segment: seg0.Name, LaunchUtil: seg0.Util}
	if qs.uniform {
		e, err := qs.stationaryEJob(seg0.Util)
		if err != nil {
			return Epoch{}, err
		}
		ep.EJob = e
		ep.MeanUtil = seg0.Util
		return ep, nil
	}
	t := t0
	frac := 1.0 // unfinished fraction of the job
	var utilArea float64
	for i := 0; i < maxWalkSegments; i++ {
		seg, end := qs.Profile.SegmentAt(t)
		e, err := qs.stationaryEJob(seg.Util)
		if err != nil {
			return Epoch{}, err
		}
		if need := frac * e; need <= end-t {
			ep.EJob = t + need - t0
			utilArea += seg.Util * need
			if ep.EJob > 0 {
				ep.MeanUtil = utilArea / ep.EJob
			} else {
				ep.MeanUtil = seg.Util
			}
			return ep, nil
		}
		span := end - t
		frac -= span / e
		utilArea += seg.Util * span
		t = end
	}
	return Epoch{}, fmt.Errorf("timeline: job launched at %v does not finish within %d segments", t0, maxWalkSegments)
}

// traceHoldTail is the duration of the hold phase appended when lowering a
// trace onto the cyclic cluster.Schedule: long enough that no finite job
// ever wraps back into the recording.
const traceHoldTail = 1e15

// ClusterSchedule lowers the profile onto the cluster package's phase
// machinery: one phase per segment carrying the paper's Sun-ELC owner
// workload at the segment's utilization. A trace gets a final hold phase
// (the last segment's utilization, traceHoldTail long) so the cyclic phase
// arithmetic never replays the recording.
func (p Profile) ClusterSchedule(o float64) (cluster.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	segs := p.Segments
	if !p.Cyclic {
		hold := segs[len(segs)-1]
		hold.Name = "hold"
		hold.Duration = traceHoldTail
		segs = append(append([]Segment(nil), segs...), hold)
	}
	sched := make(cluster.Schedule, 0, len(segs))
	for i, seg := range segs {
		params, err := cluster.SunELCParams(o, seg.Util)
		if err != nil {
			return nil, fmt.Errorf("timeline: segment %d (%s): %w", i, seg.Name, err)
		}
		sched = append(sched, cluster.Phase{Name: seg.Name, Duration: seg.Duration, Params: params})
	}
	return sched, sched.Validate()
}

// ReplayResult summarizes one launch offset's DES replications.
type ReplayResult struct {
	// Mean is the empirical mean job time; CI its confidence interval.
	Mean    float64
	CI      stats.CI
	Samples int64
}

// Replay measures the empirical job time at one launch offset: reps
// independent replications, each running one task of the given demand on w
// phased stations starting at offset t0; the replication's job time is the
// slowest station's. Station streams are split from root by (replication,
// station), so the result is a pure function of (sched, w, demand, t0,
// reps, root seed).
func Replay(sched cluster.Schedule, w int, demand, t0 float64, reps int, level float64, root *rng.Stream) (ReplayResult, error) {
	if w < 1 {
		return ReplayResult{}, fmt.Errorf("timeline: replay needs at least one station, got %d", w)
	}
	if reps < 2 {
		return ReplayResult{}, fmt.Errorf("timeline: replay needs at least 2 replications, got %d", reps)
	}
	var sum stats.Summary
	for r := 0; r < reps; r++ {
		rs := root.Split(uint64(r))
		var jobTime float64
		for i := 0; i < w; i++ {
			st, err := cluster.NewPhasedStation(fmt.Sprintf("w%d", i), sched, rs.Split(uint64(i)))
			if err != nil {
				return ReplayResult{}, err
			}
			if rec := st.RunTaskAt(t0, demand); rec.Elapsed > jobTime {
				jobTime = rec.Elapsed
			}
		}
		sum.Add(jobTime)
	}
	return ReplayResult{Mean: sum.Mean(), CI: sum.MeanCI(level), Samples: sum.N()}, nil
}
