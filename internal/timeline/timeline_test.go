package timeline

import (
	"math"
	"testing"

	"feasim/internal/core"
	"feasim/internal/rng"
)

func workday() Profile {
	return Profile{
		Cyclic: true,
		Segments: []Segment{
			{Name: "morning", Duration: 480, Util: 0.15},
			{Name: "afternoon", Duration: 480, Util: 0.3},
			{Name: "night", Duration: 480, Util: 0.02},
		},
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
	}{
		{"empty", Profile{}},
		{"zero duration", Profile{Segments: []Segment{{Duration: 0, Util: 0.1}}}},
		{"negative duration", Profile{Segments: []Segment{{Duration: -5, Util: 0.1}}}},
		{"util one", Profile{Segments: []Segment{{Duration: 10, Util: 1}}}},
		{"util negative", Profile{Segments: []Segment{{Duration: 10, Util: -0.1}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := workday().Validate(); err != nil {
		t.Fatalf("workday should validate: %v", err)
	}
}

func TestSegmentAtCyclicAndTrace(t *testing.T) {
	p := workday()
	seg, end := p.SegmentAt(0)
	if seg.Name != "morning" || end != 480 {
		t.Fatalf("t=0: got %q end %v", seg.Name, end)
	}
	seg, end = p.SegmentAt(500)
	if seg.Name != "afternoon" || end != 960 {
		t.Fatalf("t=500: got %q end %v", seg.Name, end)
	}
	// One full cycle later the same segment is active, ending a cycle later.
	seg, end = p.SegmentAt(500 + 1440)
	if seg.Name != "afternoon" || end != 960+1440 {
		t.Fatalf("t=1940: got %q end %v", seg.Name, end)
	}

	tr := workday()
	tr.Cyclic = false
	seg, end = tr.SegmentAt(2000) // past the recorded 1440: last segment holds
	if seg.Name != "night" || !math.IsInf(end, 1) {
		t.Fatalf("trace past end: got %q end %v", seg.Name, end)
	}
}

func TestMeanUtilization(t *testing.T) {
	p := workday()
	want := (0.15*480 + 0.3*480 + 0.02*480) / 1440
	if got := p.MeanUtilization(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean util %v, want %v", got, want)
	}
	// Over exactly the afternoon the mean is the afternoon's util.
	if got := p.MeanUtilizationOver(480, 960); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("afternoon mean util %v", got)
	}
	// Half morning, half afternoon.
	if got := p.MeanUtilizationOver(240, 720); math.Abs(got-(0.15+0.3)/2) > 1e-12 {
		t.Fatalf("straddling mean util %v", got)
	}
}

func TestEpochStarts(t *testing.T) {
	p := workday()
	// Evenly spaced epochs.
	got := p.EpochStarts(0, 0, 4)
	want := []float64{0, 360, 720, 1080}
	if len(got) != len(want) {
		t.Fatalf("epochs %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epochs %v, want %v", got, want)
		}
	}
	// Default: one launch per segment boundary within one cycle.
	got = p.EpochStarts(0, 0, 0)
	want = []float64{0, 480, 960}
	if len(got) != len(want) {
		t.Fatalf("boundary epochs %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundary epochs %v, want %v", got, want)
		}
	}
}

// TestQuasiStaticUniformIsStationary pins the acceptance criterion: a
// profile at one constant utilization reproduces the stationary E[job]
// exactly, at any launch offset.
func TestQuasiStaticUniformIsStationary(t *testing.T) {
	p := Profile{Cyclic: true, Segments: []Segment{{Name: "flat", Duration: 100, Util: 0.1}}}
	qs, err := NewQuasiStatic(p, 400, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	params, err := core.ParamsFromUtilization(400, 4, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, t0 := range []float64{0, 37.5, 99.9, 250} {
		ep, err := qs.At(t0)
		if err != nil {
			t.Fatal(err)
		}
		if ep.EJob != res.EJob {
			t.Fatalf("launch %v: quasi-static %v != stationary %v", t0, ep.EJob, res.EJob)
		}
		if ep.MeanUtil != 0.1 {
			t.Fatalf("launch %v: mean util %v", t0, ep.MeanUtil)
		}
	}
}

// TestQuasiStaticSplice checks the boundary-splicing arithmetic against a
// hand-computed two-segment crossing.
func TestQuasiStaticSplice(t *testing.T) {
	p := Profile{Cyclic: true, Segments: []Segment{
		{Name: "busy", Duration: 50, Util: 0.3},
		{Name: "idle", Duration: 1000, Util: 0},
	}}
	qs, err := NewQuasiStatic(p, 400, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	eBusy := qs.mustEJob(t, 0.3)
	// Launched at 0 the job spends the 50 busy units completing 50/eBusy of
	// itself, then finishes at the dedicated rate (E[job] = J/W = 100).
	ep, err := qs.At(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 + (1-50/eBusy)*100
	if math.Abs(ep.EJob-want) > 1e-9 {
		t.Fatalf("spliced E[job] %v, want %v", ep.EJob, want)
	}
	wantUtil := 0.3 * 50 / ep.EJob
	if math.Abs(ep.MeanUtil-wantUtil) > 1e-9 {
		t.Fatalf("span mean util %v, want %v", ep.MeanUtil, wantUtil)
	}
	// Launched in the idle stretch with room to spare, the job is purely
	// dedicated.
	ep, err = qs.At(100)
	if err != nil {
		t.Fatal(err)
	}
	if ep.EJob != 100 || ep.MeanUtil != 0 {
		t.Fatalf("idle launch: E[job] %v mean util %v", ep.EJob, ep.MeanUtil)
	}
}

func (qs *QuasiStatic) mustEJob(t *testing.T, u float64) float64 {
	t.Helper()
	e, err := qs.stationaryEJob(u)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestQuasiStaticDegenerateProfile exercises the walk bound: a microscopic
// cycle against a huge job crosses segments forever without the job ever
// finishing a segment's worth — the walk must still terminate (the rates
// repeat, so it finishes) or error, never hang.
func TestQuasiStaticManyBoundaries(t *testing.T) {
	p := Profile{Cyclic: true, Segments: []Segment{
		{Name: "a", Duration: 1, Util: 0.2},
		{Name: "b", Duration: 1, Util: 0.05},
	}}
	qs, err := NewQuasiStatic(p, 4000, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := qs.At(0)
	if err != nil {
		t.Fatal(err)
	}
	// The job takes ~1000+ time units, crossing ~1000 boundaries; its mean
	// util must sit between the two segment levels.
	if ep.EJob <= 1000 || ep.MeanUtil <= 0.05 || ep.MeanUtil >= 0.2 {
		t.Fatalf("many-boundary walk: E[job] %v mean util %v", ep.EJob, ep.MeanUtil)
	}
}

func TestClusterScheduleLowering(t *testing.T) {
	p := workday()
	sched, err := p.ClusterSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 || sched[0].Name != "morning" || sched[2].Duration != 480 {
		t.Fatalf("schedule %+v", sched)
	}
	if got := sched.MeanUtilization(); math.Abs(got-p.MeanUtilization()) > 1e-9 {
		t.Fatalf("lowered mean util %v, want %v", got, p.MeanUtilization())
	}
	// A trace grows a hold tail so the cyclic arithmetic never replays it.
	tr := workday()
	tr.Cyclic = false
	sched, err = tr.ClusterSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 || sched[3].Name != "hold" || sched[3].Duration != traceHoldTail {
		t.Fatalf("trace schedule %+v", sched)
	}
}

func TestReplayDeterministicAndDedicated(t *testing.T) {
	p := workday()
	sched, err := p.ClusterSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Replay(sched, 4, 100, 480, 50, 0.9, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(sched, 4, 100, 480, 50, 0.9, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Samples != 50 {
		t.Fatalf("replay not deterministic: %v vs %v (n=%d)", a.Mean, b.Mean, a.Samples)
	}
	if a.Mean < 100 {
		t.Fatalf("mean job time %v below the dedicated bound", a.Mean)
	}

	// An all-idle profile is exactly the dedicated system: every
	// replication's job time is the task demand.
	idle := Profile{Cyclic: true, Segments: []Segment{{Name: "idle", Duration: 100, Util: 0}}}
	ds, err := idle.ClusterSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(ds, 4, 100, 0, 10, 0.9, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean != 100 || r.CI.HalfWidth != 0 {
		t.Fatalf("dedicated replay: mean %v halfwidth %v", r.Mean, r.CI.HalfWidth)
	}
}

func TestReplayRejectsBadArgs(t *testing.T) {
	sched, err := workday().ClusterSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(sched, 0, 100, 0, 10, 0.9, rng.NewStream(1)); err == nil {
		t.Error("w=0 should error")
	}
	if _, err := Replay(sched, 4, 100, 0, 1, 0.9, rng.NewStream(1)); err == nil {
		t.Error("reps=1 should error")
	}
}
