package core

import (
	"math"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// ---- Reference implementations: the pre-kernel (PR-1) algorithms ----
//
// The fast kernel (tables.go) anchors one log-domain evaluation at the mode
// and extends it by the ratio recurrence, truncating the support to the mass
// window. These references evaluate every entry independently in the log
// domain — three Lgamma per entry, no truncation — exactly as core.Analyze
// did before the kernel rework, and the tests below pit the two against each
// other across regimes.

func refPMFTable(n int, p float64) []float64 {
	b := Binomial{N: n, P: p}
	t := make([]float64, n+1)
	for k := range t {
		t[k] = math.Exp(b.LogPMF(k))
	}
	return t
}

func refCDFTable(n int, p float64) []float64 {
	pmf := refPMFTable(n, p)
	s := make([]float64, n+1)
	run := 0.0
	for k, v := range pmf {
		run += v
		if run > 1 {
			run = 1
		}
		s[k] = run
	}
	s[n] = 1
	return s
}

func refExpectedMax(n int, p float64, w int) float64 {
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return float64(n)
	}
	s := refCDFTable(n, p)
	fw := float64(w)
	var sum float64
	for k := 0; k < n; k++ {
		tail := 1 - math.Pow(s[k], fw)
		if tail < 1e-18 && fw*(1-s[k]) < 1e-18 {
			break
		}
		sum += tail
	}
	return sum
}

// bigExpectedMax computes E[max of w iid Bin(n, p)] with 200-bit floats:
// the gold standard the float64 implementations are judged against.
func bigExpectedMax(n int, p float64, w int) float64 {
	const prec = 200
	bp := new(big.Float).SetPrec(prec).SetFloat64(p)
	one := new(big.Float).SetPrec(prec).SetInt64(1)
	q := new(big.Float).SetPrec(prec).Sub(one, bp)
	// pmf(0) = (1-p)^n by squaring.
	pmf := new(big.Float).SetPrec(prec).SetInt64(1)
	base := new(big.Float).SetPrec(prec).Copy(q)
	for e := n; e > 0; e >>= 1 {
		if e&1 == 1 {
			pmf.Mul(pmf, base)
		}
		base.Mul(base, base)
	}
	r := new(big.Float).SetPrec(prec).Quo(bp, q)
	S := new(big.Float).SetPrec(prec)
	sum := new(big.Float).SetPrec(prec)
	mean := float64(n) * p
	for k := 0; k < n; k++ {
		S.Add(S, pmf)
		// Shortcut S^w < 2^-300: the term is 1 to far below float64
		// resolution, and aligning the enormous exponent gap in 1 − S^w
		// makes big.Float subtraction O(gap) — quadratic over the loop.
		if exp := S.MantExp(nil); float64(w)*float64(exp) < -300 {
			sum.Add(sum, one)
		} else {
			// term = 1 - S^w by squaring.
			sw := new(big.Float).SetPrec(prec).SetInt64(1)
			sb := new(big.Float).SetPrec(prec).Copy(S)
			for e := w; e > 0; e >>= 1 {
				if e&1 == 1 {
					sw.Mul(sw, sb)
				}
				sb.Mul(sb, sb)
			}
			term := new(big.Float).SetPrec(prec).Sub(one, sw)
			sum.Add(sum, term)
			if tf, _ := term.Float64(); tf < 1e-25 && float64(k) > mean {
				break
			}
		}
		// pmf(k+1) = pmf(k) · (n-k)/(k+1) · p/(1-p). The ratio must be formed
		// in big arithmetic: a float64 ratio's rounding, accumulated over
		// ~10^4 steps, is enough to stall S measurably below 1 and keep the
		// loop from terminating.
		fac := new(big.Float).SetPrec(prec).Quo(
			new(big.Float).SetPrec(prec).SetInt64(int64(n-k)),
			new(big.Float).SetPrec(prec).SetInt64(int64(k+1)))
		pmf.Mul(pmf, fac)
		pmf.Mul(pmf, r)
	}
	f, _ := sum.Float64()
	return f
}

// refAnalyze is Analyze as implemented before the fast kernel: same model,
// reference order-statistic computation.
func refAnalyze(p Params) (etask, ejob float64) {
	t := p.TaskDemand()
	n := int(math.Round(t))
	mean := float64(n) * p.P
	etask = t + p.O*mean
	if p.O == 0 || p.P == 0 || n == 0 {
		return etask, t
	}
	return etask, t + p.O*refExpectedMax(n, p.P, p.W)
}

// ---- Recurrence vs log-domain reference ----

func TestTablesMatchReferenceSmallN(t *testing.T) {
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		p := (float64(pRaw) + 0.5) / (math.MaxUint16 + 1)
		tb := newBinomialTables(n, p)
		if tb.Lo != 0 || tb.Hi != n {
			return false // small N must keep the exact full support
		}
		ref := refPMFTable(n, p)
		for k := 0; k <= n; k++ {
			a, b := tb.PMF(k), ref[k]
			if math.Abs(a-b) > 1e-9*math.Max(a, b)+1e-250 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTablesMatchReferenceExtremeP(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{500000, 1e-8},     // P → 0: window collapses onto 0
		{500000, 1e-5},     // mean 5
		{100000, 1 - 1e-9}, // P → 1: window collapses onto N
		{100000, 0.999},
		{1000000, 0.5},  // widest window the support allows
		{1000000, 0.01}, // the scaled-problem regime
	}
	for _, c := range cases {
		tb := newBinomialTables(c.n, c.p)
		b := Binomial{N: c.n, P: c.p}
		var mass float64
		for k := tb.Lo; k <= tb.Hi; k++ {
			mass += tb.PMF(k)
			ref := math.Exp(b.LogPMF(k))
			got := tb.PMF(k)
			if math.Abs(got-ref) > 5e-9*math.Max(got, ref)+1e-250 {
				t.Errorf("n=%d p=%g k=%d: recurrence %v vs reference %v", c.n, c.p, k, got, ref)
			}
		}
		if math.Abs(mass-1) > 1e-11 {
			t.Errorf("n=%d p=%g: window mass %v, want 1 within 1e-11", c.n, c.p, mass)
		}
	}
}

func TestTablesWindowIsSqrtScale(t *testing.T) {
	// The truncation must turn O(N) into O(√N): the window around N·P is a
	// bounded number of standard deviations wide.
	for _, c := range []struct {
		n int
		p float64
	}{{100000, 0.5}, {1000000, 0.1}, {1000000, 0.9}} {
		tb := newBinomialTables(c.n, c.p)
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if width := float64(tb.Hi - tb.Lo + 1); width > 40*sd {
			t.Errorf("n=%d p=%g: window width %v exceeds 40σ=%v", c.n, c.p, width, 40*sd)
		}
		mean := float64(c.n) * c.p
		if float64(tb.Lo) > mean || float64(tb.Hi) < mean {
			t.Errorf("n=%d p=%g: window [%d,%d] misses the mean %v", c.n, c.p, tb.Lo, tb.Hi, mean)
		}
	}
}

func TestTablesExpectedMaxMatchesBigFloat(t *testing.T) {
	// The gold standard: 200-bit arithmetic. The fast kernel's top-down
	// tails and expm1/log1p fold must track it to full float64 fidelity —
	// tighter than the log-domain reference manages (see the test below).
	for _, c := range []struct {
		n int
		p float64
		w int
	}{
		{50, 0.3, 10},
		{1000, 0.01, 100},
		{1000, 0.01, 1000},
		{2048, 0.5, 60},
		{100000, 0.011, 100},
	} {
		got := newBinomialTables(c.n, c.p).ExpectedMax(c.w)
		want := bigExpectedMax(c.n, c.p, c.w)
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Errorf("n=%d p=%g w=%d: E[max] %v vs big-float %v", c.n, c.p, c.w, got, want)
		}
	}
}

func TestTablesExpectedMaxMatchesReference(t *testing.T) {
	// Old-vs-new agreement. The reference computes (1 − S^w) on a bottom-up
	// cdf, whose upper tail floors at the table's total-mass rounding error
	// (~1e-12); over N terms at width w that floor contributes up to
	// ~w·N·1e-12 — an error of the *reference*, verified against big-float
	// above. The tolerance accounts for it.
	// Larger n pairs with the big-float test and TestAnalyzeParityLargeT:
	// there the reference's own error dominates any sensible tolerance.
	for _, c := range []struct {
		n int
		p float64
	}{{50, 0.3}, {1000, 0.01}, {5000, 0.2}} {
		tb := newBinomialTables(c.n, c.p)
		for _, w := range []int{1, 2, 10, 100} {
			got := tb.ExpectedMax(w)
			ref := refExpectedMax(c.n, c.p, w)
			tol := 1e-9*(1+ref) + 2e-11*float64(w)*float64(c.n)
			if math.Abs(got-ref) > tol {
				t.Errorf("n=%d p=%g w=%d: E[max] %v vs reference %v (tol %v)", c.n, c.p, w, got, ref, tol)
			}
		}
	}
}

func TestTablesExpectedMaxOfOneIsMean(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{2048, 0.5}, {300000, 0.004}, {1000000, 0.25}} {
		tb := newBinomialTables(c.n, c.p)
		if got, want := tb.ExpectedMax(1), tb.Mean(); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("n=%d p=%g: E[max of 1] = %v, want mean %v", c.n, c.p, got, want)
		}
	}
}

func TestTablesDegenerate(t *testing.T) {
	for _, tb := range []*BinomialTables{
		newBinomialTables(0, 0.3),
		newBinomialTables(9, 0),
	} {
		if tb.PMF(0) != 1 || tb.CDF(0) != 1 || tb.ExpectedMax(5) != 0 {
			t.Errorf("degenerate tables wrong: %+v", tb)
		}
	}
	tb := newBinomialTables(9, 1)
	if tb.PMF(9) != 1 || tb.CDF(8) != 0 || tb.ExpectedMax(5) != 9 {
		t.Errorf("P=1 tables wrong: %+v", tb)
	}
}

func TestTablesCDFOutsideWindow(t *testing.T) {
	tb := newBinomialTables(1000000, 0.5)
	if tb.CDF(tb.Lo-1) != 0 || tb.CDF(0) != 0 {
		t.Error("CDF below the window must be 0")
	}
	if tb.CDF(tb.Hi+1) != 1 || tb.CDF(1000000) != 1 {
		t.Error("CDF above the window must be 1")
	}
	if tb.PMF(tb.Lo-1) != 0 || tb.PMF(tb.Hi+1) != 0 {
		t.Error("PMF outside the window must be 0")
	}
}

func TestTablesMaxPMFWindowMatchesDense(t *testing.T) {
	b := Binomial{N: 80, P: 0.07}
	tb := Tables(b.N, b.P)
	for _, w := range []int{1, 3, 12} {
		dense := b.MaxPMFTable(w)
		win := tb.MaxPMFWindow(w)
		var sum float64
		for i, v := range win {
			if math.Abs(v-dense[tb.Lo+i]) > 1e-12 {
				t.Errorf("w=%d k=%d: window %v vs dense %v", w, tb.Lo+i, v, dense[tb.Lo+i])
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("w=%d: Max window sums to %v", w, sum)
		}
	}
}

func TestTablesMemoized(t *testing.T) {
	a := Tables(777, 0.123)
	hits0, _ := TablesCacheStats()
	b := Tables(777, 0.123)
	hits1, _ := TablesCacheStats()
	if a != b {
		t.Error("same (N, P) must return the same shared table")
	}
	if hits1 != hits0+1 {
		t.Errorf("expected one cache hit, stats went %d -> %d", hits0, hits1)
	}
	if c := Tables(777, 0.1234); c == a {
		t.Error("different P must not share a table")
	}
}

func TestTablesCacheBounded(t *testing.T) {
	for i := 0; i < 3*tableCacheCap; i++ {
		Tables(100+i, 0.37)
	}
	if n := tablesCacheEntries(); n > tableCacheCap {
		t.Errorf("cache grew to %d entries, cap is %d", n, tableCacheCap)
	}
}

// TestTablesHotKeySurvivesEviction is the regression test for the old
// eviction sweep, which deleted half the memo in random map-iteration order
// and could drop the hottest (N, P) mid-sweep. With recency-aware eviction a
// table that is touched between insertions must stay resident through any
// number of eviction cycles on its shard.
func TestTablesHotKeySurvivesEviction(t *testing.T) {
	hot := Tables(613, 0.29)
	// Push far more distinct keys through the memo than it can hold, enough
	// to overflow every shard several times, re-touching the hot key between
	// insertions the way a sweep worker would.
	for i := 0; i < 8*tableCacheCap; i++ {
		Tables(1000+i, 0.41)
		if got := Tables(613, 0.29); got != hot {
			t.Fatalf("hot table evicted and rebuilt after %d insertions", i+1)
		}
	}
}

// TestTablesConcurrentBuildEvict hammers the memo from many goroutines with
// overlapping hot keys and a churning stream of cold keys — the shard locks,
// recency lists and racing double-builds must stay consistent under -race,
// and every caller of one key must observe a usable table.
func TestTablesConcurrentBuildEvict(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Cold churn unique to this worker forces evictions...
				cold := Tables(2000+w*1000+i, 0.33)
				// ...while a small hot set is shared by all workers.
				hot := Tables(500+i%4, 0.27)
				for _, tb := range []*BinomialTables{cold, hot} {
					if tb.CDF(tb.Hi) < 0.999999 {
						t.Errorf("table (%d, %v) unusable: CDF(Hi)=%v", tb.N, tb.P, tb.CDF(tb.Hi))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := tablesCacheEntries(); n > tableCacheCap {
		t.Errorf("cache grew to %d entries under concurrency, cap is %d", n, tableCacheCap)
	}
}

// ---- Golden: Analyze old-vs-new parity on the paper's figure grids ----

func TestAnalyzeParityOnFigureGrids(t *testing.T) {
	var utils = []float64{0.01, 0.05, 0.1, 0.2}
	check := func(p Params) {
		t.Helper()
		refTask, refJob := refAnalyze(p)
		r := MustAnalyze(p)
		if math.Abs(r.ETask-refTask) > 1e-9*refTask {
			t.Errorf("J=%g W=%d P=%g: E_t %v vs reference %v", p.J, p.W, p.P, r.ETask, refTask)
		}
		if math.Abs(r.EJob-refJob) > 1e-9*refJob {
			t.Errorf("J=%g W=%d P=%g: E_j %v vs reference %v", p.J, p.W, p.P, r.EJob, refJob)
		}
	}
	// Figures 1-4: J=1000; Figures 5-6: J=10000; W swept to 100.
	for _, j := range []float64{1000, 10000} {
		for _, util := range utils {
			for w := 4; w <= 100; w += 4 {
				p, err := ParamsFromUtilization(j, w, 10, util)
				if err != nil {
					t.Fatal(err)
				}
				check(p)
			}
		}
	}
	// Figure 9: the scaled problem, T=100 held fixed.
	for _, util := range utils {
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 100} {
			p, err := ParamsFromUtilization(100*float64(w), w, 10, util)
			if err != nil {
				t.Fatal(err)
			}
			check(p)
		}
	}
}

func TestAnalyzeParityLargeT(t *testing.T) {
	// The scaled-problem regime the truncation targets: T up to 10^6. At
	// this magnitude the *reference* is the limiting side — its per-entry
	// Lgamma rounding and cdf-tail floor cost it up to ~1e-6 relative
	// (verified against 200-bit arithmetic in the big-float test above) —
	// so old-vs-new parity is asserted at 5e-6, and the new kernel is
	// additionally pinned to the big-float truth at full precision.
	for _, c := range []struct {
		j float64
		w int
	}{{1e7, 100}, {1e7, 10}, {1e8, 100}} {
		p, err := ParamsFromUtilization(c.j, c.w, 10, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		refTask, refJob := refAnalyze(p)
		r := MustAnalyze(p)
		if math.Abs(r.ETask-refTask) > 1e-9*refTask {
			t.Errorf("J=%g W=%d: E_t %v vs reference %v", c.j, c.w, r.ETask, refTask)
		}
		if math.Abs(r.EJob-refJob) > 5e-6*refJob {
			t.Errorf("J=%g W=%d: E_j %v vs reference %v", c.j, c.w, r.EJob, refJob)
		}
		n := int(math.Round(p.TaskDemand()))
		bigJob := p.TaskDemand() + p.O*bigExpectedMax(n, p.P, p.W)
		if math.Abs(r.EJob-bigJob) > 1e-9*bigJob {
			t.Errorf("J=%g W=%d: E_j %v vs big-float %v", c.j, c.w, r.EJob, bigJob)
		}
	}
}

func TestJobTimeDistributionCompactForLargeT(t *testing.T) {
	// The windowed distributions must not materialize the empty bulk of the
	// support: for T=100000 the table has ~√T-scale entries, not T.
	p, err := ParamsFromUtilization(1e7, 100, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Times) > 20000 {
		t.Errorf("distribution has %d points; truncation should keep it O(√T)", len(d.Times))
	}
	ana := MustAnalyze(p)
	if math.Abs(d.Mean()-ana.EJob) > 1e-8*ana.EJob {
		t.Errorf("windowed distribution mean %v vs E_j %v", d.Mean(), ana.EJob)
	}
}
