package core

import (
	"fmt"
	"math"
)

// Params are the inputs of the feasibility model.
type Params struct {
	J float64 // total demand of the parallel job (time units)
	W int     // number of workstations (== number of tasks)
	O float64 // owner burst service demand (time units)
	P float64 // owner request probability per unit of task progress
}

// NewParams builds Params from the raw model inputs.
func NewParams(j float64, w int, o, p float64) Params {
	return Params{J: j, W: w, O: o, P: p}
}

// ParamsFromUtilization builds Params with P derived from a target owner
// utilization via the inversion of equation (8): P = U / (O·(1−U)).
// A zero utilization yields P = 0 (a dedicated system).
func ParamsFromUtilization(j float64, w int, o, util float64) (Params, error) {
	if util < 0 || util >= 1 {
		return Params{}, fmt.Errorf("core: owner utilization must be in [0,1), got %v", util)
	}
	p := Params{J: j, W: w, O: o}
	if util > 0 {
		if o <= 0 {
			return Params{}, fmt.Errorf("core: positive utilization requires O > 0")
		}
		p.P = util / (o * (1 - util))
	}
	return p, p.Validate()
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	switch {
	case !(p.J > 0) || math.IsInf(p.J, 0):
		return fmt.Errorf("core: job demand J must be positive and finite, got %v", p.J)
	case p.W < 1:
		return fmt.Errorf("core: workstation count W must be >= 1, got %d", p.W)
	case p.O < 0 || math.IsNaN(p.O) || math.IsInf(p.O, 0):
		return fmt.Errorf("core: owner demand O must be >= 0 and finite, got %v", p.O)
	case p.P < 0 || p.P > 1 || math.IsNaN(p.P):
		return fmt.Errorf("core: request probability P must be in [0,1], got %v", p.P)
	case p.P > 0 && p.J/float64(p.W) < 1:
		// The discrete-time model needs at least one unit of task progress
		// per task: with T < 1 the interruption-opportunity count rounds to
		// zero and the model degenerates (tasks would never be preempted).
		return fmt.Errorf("core: task demand J/W = %v is below one time unit; use fewer workstations or rescale the unit",
			p.J/float64(p.W))
	}
	return nil
}

// TaskDemand is T = J/W.
func (p Params) TaskDemand() float64 { return p.J / float64(p.W) }

// Utilization is the owner utilization U = O / (O + 1/P) of equation (8).
func (p Params) Utilization() float64 {
	if p.P == 0 || p.O == 0 {
		return 0
	}
	return p.O / (p.O + 1/p.P)
}

// TaskRatio is the paper's new metric: parallel task demand over mean owner
// demand, T/O. It is infinite on a dedicated system (O = 0).
func (p Params) TaskRatio() float64 {
	if p.O == 0 {
		return math.Inf(1)
	}
	return p.TaskDemand() / p.O
}

// trials is the number of interruption opportunities for one task. T = J/W
// may be non-integral when W does not divide J; the binomial trial count is
// rounded while the deterministic T term stays real, keeping the figures'
// densely sampled curves smooth (see DESIGN.md §5 and AnalyzeInterpolated).
func (p Params) trials() int {
	return int(math.Round(p.TaskDemand()))
}

// Metrics are the paper's Section 3.1 performance measures.
type Metrics struct {
	TaskRatio          float64 // T / O
	Speedup            float64 // J / E_j
	WeightedSpeedup    float64 // J / ((1−U)·E_j)
	Efficiency         float64 // J / (W·E_j)
	WeightedEfficiency float64 // J / ((1−U)·W·E_j)
}

// Result is the full model output for one parameter point.
type Result struct {
	Params
	T             float64 // task demand J/W
	U             float64 // owner utilization
	ETask         float64 // expected task completion time, equation (3)
	EJob          float64 // expected job completion time, equation (7)
	EMaxBursts    float64 // E[max over W tasks of owner-burst counts]
	EBurstsPerTsk float64 // E[bursts on one task] = T·P
	Metrics
}

// Analyze evaluates the model at p. The order-statistic kernel is served by
// the shared (N, P)-memoized tables (tables.go), so sweeps that revisit the
// same task demand and request probability — a W-grid, a threshold
// bisection — build each binomial table once.
func Analyze(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return analyzeWithTrials(p, p.trials())
}

// MustAnalyze is Analyze for known-good parameters; it panics on error.
// The experiment definitions use it with validated sweeps.
func MustAnalyze(p Params) Result {
	r, err := Analyze(p)
	if err != nil {
		panic(err)
	}
	return r
}

func metricsFor(p Params, u, ejob float64) Metrics {
	m := Metrics{TaskRatio: p.TaskRatio()}
	if ejob > 0 {
		m.Speedup = p.J / ejob
		m.Efficiency = m.Speedup / float64(p.W)
		m.WeightedSpeedup = m.Speedup / (1 - u)
		m.WeightedEfficiency = m.Efficiency / (1 - u)
	}
	return m
}

// ETaskDirect evaluates equation (3) by direct summation,
//
//	E_t = T + Σ_{i=0}^{T} O·i·Bin(T,i,P),
//
// rather than through the closed form T + O·T·P. It exists so tests can
// confirm the two agree; Analyze uses the closed form.
func ETaskDirect(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := p.trials()
	bin := Binomial{N: n, P: p.P}
	var sum float64
	for i := 0; i <= n; i++ {
		sum += float64(i) * bin.PMF(i)
	}
	return p.TaskDemand() + p.O*sum, nil
}

// EJobDirect evaluates equation (7) through the paper's own Max[W,n]
// construction (equations (4)-(6)) instead of the tail-sum identity.
// Tests confirm agreement with Analyze.
func EJobDirect(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := p.trials()
	if p.O == 0 || p.P == 0 || n == 0 {
		return p.TaskDemand(), nil
	}
	max := Binomial{N: n, P: p.P}.MaxPMFTable(p.W)
	var sum float64
	for i, prob := range max {
		sum += float64(i) * prob
	}
	return p.TaskDemand() + p.O*sum, nil
}

// TaskTimeBound returns the model's worst case T + T·O (the guarantee the
// discrete model provides: at most one owner burst per unit of progress).
func TaskTimeBound(p Params) float64 {
	t := p.TaskDemand()
	return t + float64(p.trials())*p.O
}

// AnalyzeInterpolated is the ablation convention for non-integral T: it
// analyzes at floor(T) and ceil(T) trials and blends linearly. Figures use
// Analyze (rounded trials); benchmarks compare the two conventions.
func AnalyzeInterpolated(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	t := p.TaskDemand()
	lo := math.Floor(t)
	hi := math.Ceil(t)
	if lo == hi {
		return Analyze(p)
	}
	frac := t - lo
	rl, err := analyzeWithTrials(p, int(lo))
	if err != nil {
		return Result{}, err
	}
	rh, err := analyzeWithTrials(p, int(hi))
	if err != nil {
		return Result{}, err
	}
	r := rl
	r.ETask = (1-frac)*rl.ETask + frac*rh.ETask
	r.EJob = (1-frac)*rl.EJob + frac*rh.EJob
	r.EMaxBursts = (1-frac)*rl.EMaxBursts + frac*rh.EMaxBursts
	r.EBurstsPerTsk = (1-frac)*rl.EBurstsPerTsk + frac*rh.EBurstsPerTsk
	r.Metrics = metricsFor(p, r.U, r.EJob)
	return r, nil
}

func analyzeWithTrials(p Params, n int) (Result, error) {
	t := p.TaskDemand()
	u := p.Utilization()
	r := Result{Params: p, T: t, U: u}
	mean := float64(n) * p.P
	r.EBurstsPerTsk = mean
	r.ETask = t + p.O*mean
	if p.O == 0 || p.P == 0 || n == 0 {
		r.EJob = t
	} else {
		r.EMaxBursts = Tables(n, p.P).ExpectedMax(p.W)
		r.EJob = t + p.O*r.EMaxBursts
	}
	r.Metrics = metricsFor(p, u, r.EJob)
	return r, nil
}
