package core

import (
	"testing"
)

func TestMaxWorkstationsBoundary(t *testing.T) {
	// J=2000, O=10, util 5%: from the taskratio example, weff crosses 0.8
	// somewhere between 24 and 48 workstations.
	w, err := MaxWorkstations(2000, 10, 0.05, 0.8, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The returned W must meet the target and W+1 must miss it.
	at := func(wk int) float64 {
		p, err := ParamsFromUtilization(2000, wk, 10, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return MustAnalyze(p).WeightedEfficiency
	}
	if at(w) < 0.8 {
		t.Errorf("W=%d misses the target: %.4f", w, at(w))
	}
	if at(w+1) >= 0.8 {
		t.Errorf("W=%d is not maximal: W+1 reaches %.4f", w, at(w+1))
	}
}

func TestMaxWorkstationsWholeRangeFeasible(t *testing.T) {
	// An enormous job meets 80% everywhere up to maxW.
	w, err := MaxWorkstations(1e6, 10, 0.05, 0.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w != 100 {
		t.Errorf("W = %d, want the full 100", w)
	}
}

func TestMaxWorkstationsSingleStationIdentity(t *testing.T) {
	// On one workstation weighted efficiency is exactly 1 — the identity
	// (1-U)*E_t = T — so any target <= 1 is feasible at W=1, and a tiny job
	// is simply capped at W = floor(J) by the T >= 1 constraint.
	w, err := MaxWorkstations(10, 10, 0.3, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w < 1 || w > 10 {
		t.Errorf("W = %d, must be within [1, floor(J)=10]", w)
	}
}

func TestMaxWorkstationsSubUnitJob(t *testing.T) {
	// A job below one time unit cannot be modelled at all.
	if _, err := MaxWorkstations(0.5, 10, 0.3, 0.8, 100); err == nil {
		t.Error("sub-unit job should error")
	}
}

func TestMaxWorkstationsValidation(t *testing.T) {
	if _, err := MaxWorkstations(100, 10, 0.05, 0.8, 0); err == nil {
		t.Error("maxW=0 should fail")
	}
	if _, err := MaxWorkstations(100, 10, 0.05, 0, 10); err == nil {
		t.Error("target 0 should fail")
	}
	if _, err := MaxWorkstations(100, 10, 0.05, 1.5, 10); err == nil {
		t.Error("target > 1 should fail")
	}
	if _, err := MaxWorkstations(100, 10, 1.0, 0.8, 10); err == nil {
		t.Error("bad utilization should propagate")
	}
}

func TestWeightedEffMonotoneInW(t *testing.T) {
	// The monotonicity MaxWorkstations' binary search relies on: for fixed
	// J, weighted efficiency never rises when adding workstations (modulo
	// the tiny rounding wiggle from integral binomial trials).
	prev := 2.0
	for w := 1; w <= 128; w++ {
		p, err := ParamsFromUtilization(2000, w, 10, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		eff := MustAnalyze(p).WeightedEfficiency
		if eff > prev+0.005 {
			t.Fatalf("weighted efficiency rose at W=%d: %.5f after %.5f", w, eff, prev)
		}
		prev = eff
	}
}

func TestPlanPartition(t *testing.T) {
	plan, err := PlanPartition(2000, 10, 0.05, 0.8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.WeightedEfficiency < plan.Target {
		t.Errorf("plan misses its own target: %.4f < %.4f", plan.Result.WeightedEfficiency, plan.Target)
	}
	if plan.W < 1 || plan.W > 200 {
		t.Errorf("plan W = %d out of range", plan.W)
	}
	if _, err := PlanPartition(0.5, 10, 0.3, 0.99, 100); err == nil {
		t.Error("sub-unit job plan should error")
	}
}
