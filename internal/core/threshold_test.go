package core

import (
	"math"
	"testing"
)

// TestConclusionsTable pins the paper's headline thresholds against our
// solver at the Figure 7 system size (60 workstations, O=10, target 80%
// weighted efficiency). The paper quotes 8 / 13 / 20 for utilizations of
// 5 / 10 / 20% read off its Figure 7; the exact solve gives 8 / 12 / 18 —
// within one plot-gridline of the paper (see EXPERIMENTS.md).
func TestConclusionsTable(t *testing.T) {
	rows, err := ThresholdTable(60, 10, 0.8, []float64{0.05, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 12, 18}
	paper := []int{8, 13, 20}
	for i, row := range rows {
		if row.MinRatio != want[i] {
			t.Errorf("util=%v: min ratio %d, want %d (paper read %d off Figure 7)",
				row.Util, row.MinRatio, want[i], paper[i])
		}
		if row.WeightedEff < 0.8 {
			t.Errorf("util=%v: achieved weighted efficiency %.4f below target", row.Util, row.WeightedEff)
		}
		// Minimality: one ratio lower must miss the target.
		q := ThresholdQuery{W: 60, O: 10, Util: row.Util, TargetWeightedEff: 0.8}
		below, err := q.weightedEffAtRatio(float64(row.MinRatio - 1))
		if err != nil {
			t.Fatal(err)
		}
		if below >= 0.8 {
			t.Errorf("util=%v: ratio %d already meets target; %d not minimal",
				row.Util, row.MinRatio-1, row.MinRatio)
		}
	}
}

func TestThresholdMonotoneInUtilization(t *testing.T) {
	prev := 0
	for _, util := range []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3} {
		q := ThresholdQuery{W: 60, O: 10, Util: util, TargetWeightedEff: 0.8}
		ratio, err := q.MinTaskRatio(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < prev {
			t.Errorf("threshold fell from %d to %d at util %v", prev, ratio, util)
		}
		prev = ratio
	}
}

func TestThresholdMonotoneInSystemSize(t *testing.T) {
	// Figure 8: "Sensitivity to the task ratio increases with system size."
	prev := 0
	for _, w := range []int{2, 4, 8, 20, 60, 100} {
		q := ThresholdQuery{W: w, O: 10, Util: 0.1, TargetWeightedEff: 0.8}
		ratio, err := q.MinTaskRatio(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < prev {
			t.Errorf("threshold fell from %d to %d at W=%d", prev, ratio, w)
		}
		prev = ratio
	}
}

func TestWeightedEffMonotoneInRatio(t *testing.T) {
	q := ThresholdQuery{W: 60, O: 10, Util: 0.1, TargetWeightedEff: 0.8}
	prev := 0.0
	for r := 1; r <= 64; r *= 2 {
		eff, err := q.weightedEffAtRatio(float64(r))
		if err != nil {
			t.Fatal(err)
		}
		if eff < prev-1e-9 {
			t.Errorf("weighted efficiency fell at ratio %d: %v < %v", r, eff, prev)
		}
		prev = eff
	}
}

func TestThresholdDedicated(t *testing.T) {
	q := ThresholdQuery{W: 10, O: 10, Util: 0, TargetWeightedEff: 0.99}
	ratio, err := q.MinTaskRatio(100)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Errorf("dedicated system threshold = %d, want 1", ratio)
	}
}

func TestThresholdUnreachable(t *testing.T) {
	// Target 1.0 weighted efficiency with interference on W>1 is impossible.
	q := ThresholdQuery{W: 10, O: 10, Util: 0.2, TargetWeightedEff: 1.0}
	if _, err := q.MinTaskRatio(64); err == nil {
		t.Error("unreachable target should error at maxRatio cap")
	}
}

func TestThresholdQueryValidate(t *testing.T) {
	bad := []ThresholdQuery{
		{W: 0, O: 10, Util: 0.1, TargetWeightedEff: 0.8},
		{W: 10, O: 0, Util: 0.1, TargetWeightedEff: 0.8},
		{W: 10, O: 10, Util: 1.0, TargetWeightedEff: 0.8},
		{W: 10, O: 10, Util: -0.1, TargetWeightedEff: 0.8},
		{W: 10, O: 10, Util: 0.1, TargetWeightedEff: 0},
		{W: 10, O: 10, Util: 0.1, TargetWeightedEff: 1.2},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, q)
		}
	}
	if _, err := (ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetWeightedEff: 0.8}).MinTaskRatio(0); err == nil {
		t.Error("maxRatio 0 should be rejected")
	}
}

func TestRequiredJobDemand(t *testing.T) {
	if got := RequiredJobDemand(8, 10, 60); got != 4800 {
		t.Errorf("RequiredJobDemand = %v, want 4800", got)
	}
}

func TestAssessFeasibleAndNot(t *testing.T) {
	// Large job on lightly loaded system: feasible at 80%.
	big, err := ParamsFromUtilization(60000, 60, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Assess(big, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Errorf("task ratio 100 at 5%% util should be feasible, weff=%.3f", v.WeightedEfficiency)
	}
	if v.MinRatio != 8 {
		t.Errorf("MinRatio = %d, want 8", v.MinRatio)
	}
	if v.MinJobDemand != 4800 {
		t.Errorf("MinJobDemand = %v, want 4800", v.MinJobDemand)
	}

	// Tiny job on busy system: infeasible, and the verdict says how big J
	// must become.
	small, err := ParamsFromUtilization(600, 60, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Assess(small, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Feasible {
		t.Error("task ratio 1 at 20% util should be infeasible")
	}
	if v2.MinJobDemand <= small.J {
		t.Errorf("MinJobDemand %v should exceed current J %v", v2.MinJobDemand, small.J)
	}

	// Dedicated system: trivially feasible with ratio 1.
	ded := Params{J: 100, W: 4, O: 0, P: 0}
	v3, err := Assess(ded, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Feasible || v3.MinRatio != 1 {
		t.Errorf("dedicated verdict wrong: %+v", v3)
	}
}

func TestScaledSweepAgainstPaper(t *testing.T) {
	// Conclusions: "+14/30/44/71%" going to 100 workstations at utilizations
	// of 1/5/10/20% with T=100, O=10 (dedicated baseline; see scaled.go).
	want := map[float64]float64{0.01: 0.14, 0.05: 0.30, 0.1: 0.44, 0.2: 0.71}
	for util, inc := range want {
		got, err := ScaledIncreaseAt(100, 10, util, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-inc) > 0.02 {
			t.Errorf("util=%v: scaled increase %.3f, paper %.2f", util, got, inc)
		}
	}
}

func TestScaledSweepShape(t *testing.T) {
	pts, err := ScaledSweep(100, 10, 0.1, []int{1, 2, 5, 10, 20, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Response time is nondecreasing in W and the growth flattens: the
	// marginal increase from 50→100 is smaller than from 1→2 per step.
	prev := 0.0
	for _, pt := range pts {
		if pt.Result.EJob < prev-1e-9 {
			t.Errorf("scaled E_j fell at W=%d", pt.W)
		}
		prev = pt.Result.EJob
	}
	first := pts[1].Result.EJob - pts[0].Result.EJob
	last := (pts[6].Result.EJob - pts[5].Result.EJob) / 50
	if last > first {
		t.Errorf("scaled curve not flattening: early step %v, late per-W step %v", first, last)
	}
	// W=1 increase must be zero vs itself under the single-station baseline.
	if math.Abs(pts[0].IncreaseVsSingle) > 1e-12 {
		t.Errorf("W=1 increase vs single = %v", pts[0].IncreaseVsSingle)
	}
}

func TestScaledTaskRatioConstant(t *testing.T) {
	pts, err := ScaledSweep(100, 10, 0.05, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if got := pt.Result.Metrics.TaskRatio; math.Abs(got-10) > 1e-9 {
			t.Errorf("W=%d: scaled task ratio %v, want constant 10", pt.W, got)
		}
	}
}

func TestScaledSweepErrors(t *testing.T) {
	if _, err := ScaledSweep(100, 10, 0.1, nil); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := ScaledSweep(100, 10, 1.0, []int{1}); err == nil {
		t.Error("utilization 1.0 should error")
	}
}

func TestScaleup(t *testing.T) {
	pts, err := ScaledSweep(100, 10, 0.1, []int{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0].Result
	s := Scaleup(pts[1], base)
	// Perfect scaleup would be 100; interference should cost 20-40%.
	if s <= 50 || s >= 100 {
		t.Errorf("scaleup at W=100, util 10%% = %v, expected in (50, 100)", s)
	}
}
