package core

import (
	"math"
	"math/big"
	"testing"
)

// pbReferencePMF computes the exact Poisson-binomial pmf by the dense
// per-trial DP in high-precision arithmetic — a deliberately different
// algorithm (no grouping, no windows, no float64 rounding) from the
// production group-convolution path.
func pbReferencePMF(groups []PBGroup, prec uint) []*big.Float {
	n := 0
	for _, g := range groups {
		n += g.Count
	}
	pmf := make([]*big.Float, n+1)
	pmf[0] = big.NewFloat(1).SetPrec(prec)
	for i := 1; i <= n; i++ {
		pmf[i] = big.NewFloat(0).SetPrec(prec)
	}
	one := big.NewFloat(1).SetPrec(prec)
	filled := 0
	for _, g := range groups {
		p := big.NewFloat(g.P).SetPrec(prec)
		q := new(big.Float).SetPrec(prec).Sub(one, p)
		for trial := 0; trial < g.Count; trial++ {
			for k := filled + 1; k >= 1; k-- {
				a := new(big.Float).SetPrec(prec).Mul(pmf[k], q)
				b := new(big.Float).SetPrec(prec).Mul(pmf[k-1], p)
				pmf[k] = a.Add(a, b)
			}
			pmf[0].Mul(pmf[0], q)
			filled++
		}
	}
	return pmf
}

// TestPoissonBinomialReference is the acceptance bar: the exact DP agrees
// with the high-precision per-trial reference to 1e-9 at N = 1024.
func TestPoissonBinomialReference(t *testing.T) {
	groups := []PBGroup{
		{P: 0.01, Count: 256},
		{P: 0.05, Count: 256},
		{P: 0.12, Count: 256},
		{P: 0.30, Count: 128},
		{P: 0.75, Count: 128},
	}
	pb, err := PoissonBinomial(groups)
	if err != nil {
		t.Fatal(err)
	}
	if pb.N != 1024 {
		t.Fatalf("N = %d, want 1024", pb.N)
	}
	if pb.Approx {
		t.Fatal("N = 1024 must take the exact convolution path")
	}
	ref := pbReferencePMF(groups, 128)
	var maxDiff float64
	for k := 0; k <= pb.N; k++ {
		want, _ := ref[k].Float64()
		if d := math.Abs(pb.PMF(k) - want); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-9 {
		t.Fatalf("max |pmf - reference| = %g, want <= 1e-9", maxDiff)
	}
	t.Logf("max |pmf - reference| = %g over support 0..%d (window [%d,%d])", maxDiff, pb.N, pb.Lo, pb.Hi)

	// Moments match the closed forms exactly.
	var mu, s2 float64
	for _, g := range groups {
		mu += float64(g.Count) * g.P
		s2 += float64(g.Count) * g.P * (1 - g.P)
	}
	if pb.Mean() != mu || pb.Variance() != s2 {
		t.Fatalf("moments (%v, %v) != closed forms (%v, %v)", pb.Mean(), pb.Variance(), mu, s2)
	}
}

// TestPoissonBinomialHomogeneousCollapse: a single-group input must share
// the BinomialTables memo bit-for-bit — the same backing slices, not a
// recomputation.
func TestPoissonBinomialHomogeneousCollapse(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{100, 0.05}, {1, 0.5}, {5000, 0.001}, {200000, 0.01},
	} {
		pb, err := PoissonBinomial([]PBGroup{{P: tc.p, Count: tc.n}})
		if err != nil {
			t.Fatal(err)
		}
		bt := Tables(tc.n, tc.p)
		if pb.Lo != bt.Lo || pb.Hi != bt.Hi {
			t.Fatalf("(%d, %v): window [%d,%d] != tables [%d,%d]", tc.n, tc.p, pb.Lo, pb.Hi, bt.Lo, bt.Hi)
		}
		if &pb.pmf[0] != &bt.pmf[0] || &pb.cdf[0] != &bt.cdf[0] || &pb.tail[0] != &bt.tail[0] {
			t.Fatalf("(%d, %v): collapse must alias the Tables slices, not copy or rebuild", tc.n, tc.p)
		}
		if pb.Approx {
			t.Fatalf("(%d, %v): homogeneous collapse must never approximate", tc.n, tc.p)
		}
	}
	// Split homogeneous groups merge and still collapse.
	pb, err := PoissonBinomial([]PBGroup{{P: 0.05, Count: 60}, {P: 0.05, Count: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if bt := Tables(100, 0.05); &pb.pmf[0] != &bt.pmf[0] {
		t.Fatal("split equal-p groups must merge to the homogeneous collapse")
	}
}

func TestPoissonBinomialSmallExact(t *testing.T) {
	// Two Bernoullis p=0.5 plus one p=0.25:
	// pmf(0)=0.25·0.75, pmf(3)=0.25·0.25, etc.
	pb, err := PoissonBinomial([]PBGroup{{P: 0.5, Count: 2}, {P: 0.25, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		0.25 * 0.75,
		0.5*0.75 + 0.25*0.25,
		0.25*0.75 + 0.5*0.25,
		0.25 * 0.25,
	}
	for k, w := range want {
		if d := math.Abs(pb.PMF(k) - w); d > 1e-15 {
			t.Fatalf("pmf(%d) = %v, want %v", k, pb.PMF(k), w)
		}
	}
	if got := pb.CDF(3); math.Abs(got-1) > 1e-15 {
		t.Fatalf("CDF(3) = %v, want 1", got)
	}
	if got := pb.Tail(1); math.Abs(got-(want[2]+want[3])) > 1e-15 {
		t.Fatalf("Tail(1) = %v, want %v", got, want[2]+want[3])
	}
}

func TestPoissonBinomialCanonicalOrderInvariance(t *testing.T) {
	a, err := PoissonBinomial([]PBGroup{{P: 0.1, Count: 30}, {P: 0.3, Count: 10}, {P: 0.1, Count: 20}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonBinomial([]PBGroup{{P: 0.3, Count: 10}, {P: 0.1, Count: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal multisets must share one memoized table")
	}
}

func TestPoissonBinomialMemoSharing(t *testing.T) {
	groups := []PBGroup{{P: 0.017, Count: 13}, {P: 0.093, Count: 7}}
	a, err := PoissonBinomial(groups)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := PoissonBinomialCacheStats()
	b, err := PoissonBinomial(groups)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := PoissonBinomialCacheStats()
	if a != b {
		t.Fatal("repeat build must return the shared table")
	}
	if h1 != h0+1 {
		t.Fatalf("repeat build must hit the memo (hits %d -> %d)", h0, h1)
	}
}

func TestPoissonBinomialApprox(t *testing.T) {
	groups := []PBGroup{{P: 0.04, Count: 40000}, {P: 0.11, Count: 40000}}
	pb, err := PoissonBinomial(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Approx {
		t.Fatalf("N = %d must take the refined-normal path", pb.N)
	}
	// Window mass is renormalized to exactly one.
	var mass, mean float64
	for i, v := range pb.PMFWindow() {
		mass += v
		mean += float64(pb.Lo+i) * v
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("approximate pmf mass = %v", mass)
	}
	if rel := math.Abs(mean-pb.Mean()) / pb.Mean(); rel > 1e-3 {
		t.Fatalf("approximate mean %v vs exact %v (rel %g)", mean, pb.Mean(), rel)
	}
	// The refined-normal cdf stays a cdf.
	prev := 0.0
	for k := pb.Lo; k <= pb.Hi; k++ {
		c := pb.CDF(k)
		if c < prev-1e-15 || c > 1 {
			t.Fatalf("cdf not monotone at %d: %v after %v", k, c, prev)
		}
		prev = c
	}
}

func TestPoissonBinomialValidation(t *testing.T) {
	for _, groups := range [][]PBGroup{
		nil,
		{},
		{{P: 0.5, Count: 0}},
		{{P: 0.5, Count: -3}},
		{{P: -0.1, Count: 5}},
		{{P: 1.5, Count: 5}},
		{{P: math.NaN(), Count: 5}},
	} {
		if _, err := PoissonBinomial(groups); err == nil {
			t.Fatalf("groups %v must be rejected", groups)
		}
	}
}
