package core

import (
	"math"
	"testing"
	"testing/quick"
)

func distParams(t *testing.T, j float64, w int, util float64) Params {
	t.Helper()
	p, err := ParamsFromUtilization(j, w, 10, util)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTaskTimeDistributionMeanMatchesETask(t *testing.T) {
	p := distParams(t, 1000, 10, 0.1)
	d, err := TaskTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ana := MustAnalyze(p)
	if math.Abs(d.Mean()-ana.ETask) > 1e-9*ana.ETask {
		t.Errorf("distribution mean %v vs E_t %v", d.Mean(), ana.ETask)
	}
}

func TestJobTimeDistributionMeanMatchesEJob(t *testing.T) {
	for _, w := range []int{1, 2, 10, 100} {
		for _, util := range []float64{0.01, 0.1, 0.2} {
			p := distParams(t, 1000, w, util)
			d, err := JobTimeDistribution(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			ana := MustAnalyze(p)
			if math.Abs(d.Mean()-ana.EJob) > 1e-8*ana.EJob {
				t.Errorf("W=%d util=%v: distribution mean %v vs E_j %v", w, util, d.Mean(), ana.EJob)
			}
		}
	}
}

func TestJobTimeDistributionDedicated(t *testing.T) {
	p := distParams(t, 1000, 10, 0)
	d, err := JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Times) != 1 || d.Times[0] != 100 || d.Probs[0] != 1 {
		t.Errorf("dedicated job time distribution: %+v", d)
	}
	if d.Variance() != 0 {
		t.Error("dedicated variance should be 0")
	}
}

func TestJobTimeStochasticallyDominatesTaskTime(t *testing.T) {
	// The slowest of W tasks is never faster than one task: for every t,
	// P(job <= t) <= P(task <= t).
	p := distParams(t, 1000, 20, 0.15)
	task, err := TaskTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	job, err := JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{50, 55, 60, 80, 120, 200} {
		if jt, tt := 1-job.TailProb(q), 1-task.TailProb(q); jt > tt+1e-9 {
			t.Errorf("at t=%v: P(job<=t)=%v > P(task<=t)=%v", q, jt, tt)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	p := distParams(t, 1000, 20, 0.1)
	d, err := JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	prev := -math.MaxFloat64
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := d.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
	if med := d.Quantile(0.5); med < 50 {
		t.Errorf("median %v below task demand", med)
	}
	defer func() {
		if recover() == nil {
			t.Error("quantile outside [0,1] should panic")
		}
	}()
	d.Quantile(1.5)
}

func TestTailProbEdges(t *testing.T) {
	p := distParams(t, 1000, 10, 0.1)
	d, err := JobTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TailProb(-1); math.Abs(got-1) > 1e-12 {
		t.Errorf("tail below support = %v, want 1", got)
	}
	if got := d.TailProb(d.Times[len(d.Times)-1]); got != 0 {
		t.Errorf("tail above support = %v, want 0", got)
	}
}

func TestDeadlineProb(t *testing.T) {
	p := distParams(t, 1000, 10, 0.1) // T=100
	// Deadline below T: impossible.
	if prob, err := DeadlineProb(p, 99); err != nil || prob != 0 {
		t.Errorf("impossible deadline: %v %v", prob, err)
	}
	// Deadline at the worst case: certain.
	if prob, err := DeadlineProb(p, TaskTimeBound(p)); err != nil || math.Abs(prob-1) > 1e-9 {
		t.Errorf("certain deadline: %v %v", prob, err)
	}
	// Monotone in the deadline.
	prev := -1.0
	for _, dl := range []float64{100, 110, 130, 160, 200} {
		prob, err := DeadlineProb(p, dl)
		if err != nil {
			t.Fatal(err)
		}
		if prob < prev {
			t.Fatalf("deadline probability fell at %v", dl)
		}
		prev = prob
	}
}

func TestDistributionValidateRejectsBadInput(t *testing.T) {
	bad := []TimeDistribution{
		{},
		{Times: []float64{1}, Probs: []float64{0.5, 0.5}},
		{Times: []float64{1, 1}, Probs: []float64{0.5, 0.5}},
		{Times: []float64{1, 2}, Probs: []float64{0.9, 0.2}},
		{Times: []float64{1, 2}, Probs: []float64{-0.1, 1.1}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, d)
		}
	}
}

func TestVarianceAgainstBinomial(t *testing.T) {
	// Task time is an affine map of the binomial: Var = O²·T·P·(1−P).
	p := distParams(t, 1000, 10, 0.1)
	d, err := TaskTimeDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.O * p.O * Binomial{N: 100, P: p.P}.Variance()
	if math.Abs(d.Variance()-want) > 1e-6*want {
		t.Errorf("task-time variance %v, want %v", d.Variance(), want)
	}
}

func TestAnalyzeGumbelTracksExact(t *testing.T) {
	// The Gumbel approximation should be within a few percent of the exact
	// E_j in the regime the approximation targets (large mean counts).
	for _, w := range []int{8, 20, 60, 100} {
		p := distParams(t, 100000, w, 0.1) // large T: binomial ≈ normal
		exact := MustAnalyze(p)
		approx, err := AnalyzeGumbel(p)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(approx.EJob-exact.EJob) / exact.EJob
		if rel > 0.03 {
			t.Errorf("W=%d: Gumbel E_j %.2f vs exact %.2f (rel %.4f)", w, approx.EJob, exact.EJob, rel)
		}
	}
}

func TestAnalyzeGumbelDegenerateCases(t *testing.T) {
	// W=1 must be exact (no extreme-value step involved).
	p := distParams(t, 1000, 1, 0.1)
	exact := MustAnalyze(p)
	approx, err := AnalyzeGumbel(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.EJob-exact.EJob) > 1e-8*exact.EJob {
		t.Errorf("W=1 should be exact: %v vs %v", approx.EJob, exact.EJob)
	}
	// Dedicated system.
	ded := distParams(t, 1000, 10, 0)
	aded, err := AnalyzeGumbel(ded)
	if err != nil {
		t.Fatal(err)
	}
	if aded.EJob != 100 {
		t.Errorf("dedicated Gumbel E_j = %v", aded.EJob)
	}
	if _, err := AnalyzeGumbel(Params{}); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestQuickJobDistributionProper(t *testing.T) {
	f := func(wRaw, uRaw uint8) bool {
		w := int(wRaw)%60 + 1
		util := float64(uRaw%50)/100 + 0.01
		p, err := ParamsFromUtilization(600, w, 10, util)
		if err != nil {
			return false
		}
		d, err := JobTimeDistribution(p)
		if err != nil {
			return false
		}
		return d.Validate() == nil && d.Mean() >= p.TaskDemand()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
