package core

import (
	"math"
	"testing"
)

// TestAnalyzeFleetHomogeneousCollapse pins the degenerate-fleet guarantee:
// all p_i equal at reference speed reproduces the homogeneous analytic
// answer bit-exactly, even when the stations arrive as split groups.
func TestAnalyzeFleetHomogeneousCollapse(t *testing.T) {
	p := Params{J: 400, W: 4, O: 10, P: 0.02}
	want, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, stations := range [][]FleetStation{
		{{P: 0.02, Count: 4}},
		{{P: 0.02, Count: 1}, {P: 0.02, Count: 3}},
		{{P: 0.02, Speed: 1, Count: 2}, {P: 0.02, Count: 2}},
	} {
		got, err := AnalyzeFleet(Fleet{J: 400, O: 10, Stations: stations})
		if err != nil {
			t.Fatal(err)
		}
		if got.EJob != want.EJob || got.ETask != want.ETask || got.U != want.U ||
			got.EMaxBursts != want.EMaxBursts || got.EBurstsPerTsk != want.EBurstsPerTsk ||
			got.WeightedEfficiency != want.WeightedEfficiency {
			t.Fatalf("stations %v: fleet answer %+v not bit-exact vs homogeneous %+v", stations, got, want)
		}
	}
}

// TestAnalyzeFleetBruteForce cross-checks the breakpoint-sweep E[job]
// against a dense brute-force evaluation of P(max ≤ x) on a small mixed
// fleet.
func TestAnalyzeFleetBruteForce(t *testing.T) {
	f := Fleet{J: 120, O: 5, Stations: []FleetStation{
		{P: 0.05, Count: 2},
		{P: 0.20, Count: 1},
		{P: 0.10, Speed: 2, Count: 1},
	}}
	res, err := AnalyzeFleet(f)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force: enumerate every lattice point of every group's full
	// support and difference the exact product of full-support cdfs.
	tRef := f.TaskDemand()
	type grp struct {
		t   float64
		n   int
		c   int
		bin Binomial
	}
	var groups []grp
	for _, s := range f.Canonical() {
		eff := tRef / s.Speed
		n := int(math.Round(eff))
		groups = append(groups, grp{t: eff, n: n, c: s.Count, bin: Binomial{N: n, P: s.P}})
	}
	var pts []float64
	for _, g := range groups {
		for k := 0; k <= g.n; k++ {
			pts = append(pts, g.t+float64(k)*f.O)
		}
	}
	cdfAt := func(g grp, x float64) float64 {
		k := int(math.Floor((x - g.t) / f.O * (1 + 1e-12)))
		if k < 0 {
			return 0
		}
		if k > g.n {
			k = g.n
		}
		var c float64
		for i := 0; i <= k; i++ {
			c += g.bin.PMF(i)
		}
		if c > 1 {
			c = 1
		}
		return c
	}
	var want, prev float64
	seen := map[float64]bool{}
	var sorted []float64
	for _, x := range pts {
		if !seen[x] {
			seen[x] = true
			sorted = append(sorted, x)
		}
	}
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for _, x := range sorted {
		g := 1.0
		for _, gr := range groups {
			g *= math.Pow(cdfAt(gr, x), float64(gr.c))
		}
		want += x * (g - prev)
		prev = g
	}
	if rel := math.Abs(res.EJob-want) / want; rel > 1e-9 {
		t.Fatalf("EJob = %v, brute force %v (rel %g)", res.EJob, want, rel)
	}
}

// TestFleetSpeedEquivalence: a uniformly-sped fleet is the homogeneous
// model at the scaled task demand.
func TestFleetSpeedEquivalence(t *testing.T) {
	res, err := AnalyzeFleet(Fleet{J: 800, O: 10, Stations: []FleetStation{{P: 0.05, Speed: 2, Count: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	// t_i = (800/4)/2 = 100: same per-task law as the homogeneous fleet
	// with J = 400.
	want, err := Analyze(Params{J: 400, W: 4, O: 10, P: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.EJob-want.EJob) / want.EJob; rel > 1e-9 {
		t.Fatalf("speed-2 fleet EJob = %v, homogeneous scaled EJob = %v (rel %g)", res.EJob, want.EJob, rel)
	}
	if math.Abs(res.ETask-want.ETask) > 1e-9 {
		t.Fatalf("speed-2 fleet ETask = %v, want %v", res.ETask, want.ETask)
	}
}

func TestFleetJobTimeDistribution(t *testing.T) {
	f := Fleet{J: 400, O: 10, Stations: []FleetStation{
		{P: 0.03, Count: 2},
		{P: 0.08, Count: 2},
	}}
	d, err := FleetJobTimeDistribution(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(d.Mean() - res.EJob); diff > 1e-9 {
		t.Fatalf("distribution mean %v != EJob %v", d.Mean(), res.EJob)
	}
	// The heterogeneous max is stochastically above each group's own max:
	// its mean exceeds the homogeneous job time of the better group alone.
	better, err := Analyze(Params{J: 400, W: 4, O: 10, P: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if res.EJob < better.EJob {
		t.Fatalf("mixed-fleet EJob %v below all-best homogeneous %v", res.EJob, better.EJob)
	}
}

func TestFleetUtilization(t *testing.T) {
	f := Fleet{J: 400, O: 10, Stations: []FleetStation{
		{P: 0.05, Count: 1},
		{P: 0, Count: 1},
	}}
	u1 := 10.0 / (10 + 1/0.05)
	if got := f.Utilization(); math.Abs(got-u1/2) > 1e-15 {
		t.Fatalf("fleet utilization %v, want %v", got, u1/2)
	}
}

func TestFleetValidation(t *testing.T) {
	for _, f := range []Fleet{
		{J: 0, O: 10, Stations: []FleetStation{{P: 0.1, Count: 1}}},
		{J: 100, O: -1, Stations: []FleetStation{{P: 0.1, Count: 1}}},
		{J: 100, O: 10},
		{J: 100, O: 10, Stations: []FleetStation{{P: 1.5, Count: 1}}},
		{J: 100, O: 10, Stations: []FleetStation{{P: 0.1, Count: 0}}},
		{J: 100, O: 10, Stations: []FleetStation{{P: 0.1, Speed: -2, Count: 1}}},
		// Effective demand below one unit at speed 200.
		{J: 100, O: 10, Stations: []FleetStation{{P: 0.1, Speed: 200, Count: 1}}},
	} {
		if err := f.Validate(); err == nil {
			t.Fatalf("fleet %+v must be rejected", f)
		}
	}
}

func TestTileFleet(t *testing.T) {
	tpl := []FleetStation{{P: 0.1, Count: 2}, {P: 0.3, Count: 1}}
	got, err := TileFleet(tpl, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle p: .1 .1 .3 .1 .1 .3 .1 → five at 0.1, two at 0.3.
	counts := map[float64]int{}
	total := 0
	for _, s := range got {
		counts[s.P] += s.Count
		total += s.Count
	}
	if total != 7 || counts[0.1] != 5 || counts[0.3] != 2 {
		t.Fatalf("tiled fleet %+v, want 5×0.1 + 2×0.3", got)
	}
	if _, err := TileFleet(nil, 3); err == nil {
		t.Fatal("empty template must be rejected")
	}
}

// TestFleetThresholdCollapse: the fleet threshold search on a homogeneous
// mix returns the homogeneous threshold.
func TestFleetThresholdCollapse(t *testing.T) {
	o, util := 10.0, 0.05
	p := util / (o * (1 - util))
	hq := ThresholdQuery{W: 10, O: o, Util: util, TargetWeightedEff: 0.8}
	want, err := hq.MinTaskRatio(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	fq := FleetThresholdQuery{Stations: []FleetStation{{P: p, Count: 10}}, O: o, TargetWeightedEff: 0.8}
	got, err := fq.MinTaskRatio(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fleet threshold %d, homogeneous %d", got, want)
	}
}

// TestFleetThresholdMinimality: the mixed-fleet threshold is no easier
// than the all-best homogeneous fleet's, and the returned ratio is the
// true boundary (feasible at ratio, infeasible one below). Note the mixed
// fleet can need a *higher* ratio than even its worst homogeneous cousin:
// the job pays the worst group's max while weighted efficiency only
// credits the fleet-average utilization.
func TestFleetThresholdMinimality(t *testing.T) {
	o := 10.0
	lowP, highP := 0.003, 0.02
	mixed := FleetThresholdQuery{
		Stations:          []FleetStation{{P: lowP, Count: 5}, {P: highP, Count: 5}},
		O:                 o,
		TargetWeightedEff: 0.8,
	}
	mixedRatio, err := mixed.MinTaskRatio(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	best := FleetThresholdQuery{Stations: []FleetStation{{P: lowP, Count: 10}}, O: o, TargetWeightedEff: 0.8}
	bestRatio, err := best.MinTaskRatio(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if mixedRatio < bestRatio {
		t.Fatalf("mixed ratio %d below all-best homogeneous ratio %d", mixedRatio, bestRatio)
	}
	at, err := mixed.weightedEffAtRatio(float64(mixedRatio))
	if err != nil {
		t.Fatal(err)
	}
	if at < 0.8 {
		t.Fatalf("weff(%d) = %v misses the target", mixedRatio, at)
	}
	if mixedRatio > 1 {
		below, err := mixed.weightedEffAtRatio(float64(mixedRatio - 1))
		if err != nil {
			t.Fatal(err)
		}
		if below >= 0.8 {
			t.Fatalf("weff(%d) = %v already meets the target; ratio %d is not minimal", mixedRatio-1, below, mixedRatio)
		}
	}
}

func TestMaxFleetWorkstationsCollapse(t *testing.T) {
	o, util := 10.0, 0.05
	p := util / (o * (1 - util))
	want, err := MaxWorkstations(4000, o, util, 0.8, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MaxFleetWorkstations(4000, o, []FleetStation{{P: p, Count: 1}}, 0.8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fleet partition %d, homogeneous %d", got, want)
	}
}

func TestScaledFleetSweepCollapse(t *testing.T) {
	o, util := 10.0, 0.05
	p := util / (o * (1 - util))
	ws := []int{1, 4, 16}
	want, err := ScaledSweep(100, o, util, ws)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScaledFleetSweep(100, o, []FleetStation{{P: p, Count: 1}}, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if math.Abs(got[i].Result.EJob-want[i].Result.EJob) > 1e-12 {
			t.Fatalf("W=%d: fleet scaled EJob %v, homogeneous %v", ws[i], got[i].Result.EJob, want[i].Result.EJob)
		}
		if math.Abs(got[i].IncreaseVsDedicated-want[i].IncreaseVsDedicated) > 1e-12 {
			t.Fatalf("W=%d: increase-vs-dedicated mismatch", ws[i])
		}
	}
}

func TestAssessFleet(t *testing.T) {
	f := Fleet{J: 4000, O: 10, Stations: []FleetStation{
		{P: 0.003, Count: 5},
		{P: 0.02, Count: 5},
	}}
	v, err := AssessFleet(f, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if v.MinRatio < 1 || math.IsInf(v.MinJobDemand, 1) {
		t.Fatalf("verdict %+v: threshold must be reachable", v)
	}
	// Feasible iff the achieved weighted efficiency clears the target —
	// consistent with the threshold's own verdict at this ratio.
	atMin, err := AnalyzeFleet(Fleet{J: v.MinJobDemand, O: 10, Stations: f.Stations})
	if err != nil {
		t.Fatal(err)
	}
	if atMin.WeightedEfficiency < 0.8 {
		t.Fatalf("fleet at MinJobDemand %v reaches only %v", v.MinJobDemand, atMin.WeightedEfficiency)
	}
}

// TestFleetBurstTables: the Poisson-binomial kernel's fleet view — total
// per-job burst count — matches the closed-form mean and drives
// EBurstsPerTsk.
func TestFleetBurstTables(t *testing.T) {
	f := Fleet{J: 400, O: 10, Stations: []FleetStation{
		{P: 0.03, Count: 2},
		{P: 0.08, Count: 2},
	}}
	pb, ok, err := f.BurstTables()
	if err != nil || !ok {
		t.Fatalf("BurstTables: ok=%v err=%v", ok, err)
	}
	// n = 100 per station: mean = 2·100·0.03 + 2·100·0.08 = 22.
	if math.Abs(pb.Mean()-22) > 1e-12 {
		t.Fatalf("fleet burst mean %v, want 22", pb.Mean())
	}
	res, err := AnalyzeFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EBurstsPerTsk-22.0/4) > 1e-12 {
		t.Fatalf("EBurstsPerTsk %v, want %v", res.EBurstsPerTsk, 22.0/4)
	}
}
