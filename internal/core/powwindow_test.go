package core

import (
	"math"
	"testing"
)

// TestMaxPMFWindowLadderAgreement pins the squaring-ladder fast path
// against the direct per-entry math.Pow evaluation at 1e-12.
func TestMaxPMFWindowLadderAgreement(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
		w int
	}{
		{100, 0.05, 1},
		{100, 0.05, 2},
		{100, 0.05, 7},
		{1000, 0.01, 64},
		{1000, 0.3, 100},
		{100000, 0.01, 1000},
		{5, 0.9, 3},
	} {
		tb := Tables(tc.n, tc.p)
		got := tb.MaxPMFWindow(tc.w)
		fw := float64(tc.w)
		prev := 0.0
		for i, s := range tb.cdf {
			c := math.Pow(s, fw)
			want := c - prev
			if want < 0 {
				want = 0
			}
			prev = c
			diff := math.Abs(got[i] - want)
			if diff > 1e-12 && diff > 1e-12*math.Abs(want) {
				t.Fatalf("Bin(%d,%v) w=%d index %d: ladder %v vs pow %v (diff %g)",
					tc.n, tc.p, tc.w, i, got[i], want, diff)
			}
		}
		// The window is still a (sub-)pmf: nonnegative, mass ≤ 1.
		var mass float64
		for _, v := range got {
			if v < 0 {
				t.Fatalf("negative max-pmf entry %v", v)
			}
			mass += v
		}
		if mass > 1+1e-9 {
			t.Fatalf("max-pmf mass %v > 1", mass)
		}
	}
}

// TestExpectedMaxMemo: repeated identical (N, P, W) solves hit the per-W
// memo and return the identical value.
func TestExpectedMaxMemo(t *testing.T) {
	tb := Tables(100, 0.05)
	first := tb.ExpectedMax(32)
	tb.emMu.Lock()
	v, ok := tb.emMemo[32]
	tb.emMu.Unlock()
	if !ok || v != first {
		t.Fatalf("ExpectedMax(32) = %v not recorded in memo (got %v, ok=%v)", first, v, ok)
	}
	if again := tb.ExpectedMax(32); again != first {
		t.Fatalf("memoized ExpectedMax differs: %v vs %v", again, first)
	}
	// Distinct W values stay distinct entries.
	if tb.ExpectedMax(64) <= first {
		t.Fatal("ExpectedMax must grow with W")
	}
}
