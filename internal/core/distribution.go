package core

import (
	"fmt"
	"math"
)

// Beyond the paper's expectations: the full distribution of task and job
// completion times. The model makes these exact and cheap — task time is
// T + O·Bin(T,P), job time is T + O·max of W such binomials — so quantiles
// and tail probabilities (what a deadline scheduler actually wants) come
// straight from the pmf tables of binomial.go.

// TimeDistribution is a discrete completion-time distribution: time values
// with their probabilities, in increasing time order.
type TimeDistribution struct {
	Times []float64
	Probs []float64
}

// Validate checks the distribution is well-formed and normalized.
func (d TimeDistribution) Validate() error {
	if len(d.Times) == 0 || len(d.Times) != len(d.Probs) {
		return fmt.Errorf("core: malformed time distribution (%d times, %d probs)", len(d.Times), len(d.Probs))
	}
	var sum float64
	for i, p := range d.Probs {
		if p < -1e-12 {
			return fmt.Errorf("core: negative probability %v at %d", p, i)
		}
		if i > 0 && d.Times[i] <= d.Times[i-1] {
			return fmt.Errorf("core: times not increasing at %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("core: probabilities sum to %v", sum)
	}
	return nil
}

// Mean is the expectation.
func (d TimeDistribution) Mean() float64 {
	var m float64
	for i, p := range d.Probs {
		m += d.Times[i] * p
	}
	return m
}

// Variance is the second central moment.
func (d TimeDistribution) Variance() float64 {
	m := d.Mean()
	var v float64
	for i, p := range d.Probs {
		dlt := d.Times[i] - m
		v += dlt * dlt * p
	}
	return v
}

// StdDev is the standard deviation.
func (d TimeDistribution) StdDev() float64 { return math.Sqrt(d.Variance()) }

// Quantile returns the smallest time t with P(X <= t) >= q.
func (d TimeDistribution) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("core: quantile requires q in [0,1]")
	}
	var cum float64
	for i, p := range d.Probs {
		cum += p
		if cum >= q-1e-12 {
			return d.Times[i]
		}
	}
	return d.Times[len(d.Times)-1]
}

// TailProb returns P(X > t).
func (d TimeDistribution) TailProb(t float64) float64 {
	var tail float64
	for i := len(d.Times) - 1; i >= 0; i-- {
		if d.Times[i] <= t {
			break
		}
		tail += d.Probs[i]
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// TaskTimeDistribution returns the exact distribution of one task's
// completion time, T + O·Bin(trials, P).
func TaskTimeDistribution(p Params) (TimeDistribution, error) {
	if err := p.Validate(); err != nil {
		return TimeDistribution{}, err
	}
	t := p.TaskDemand()
	n := p.trials()
	if p.O == 0 || p.P == 0 || n == 0 {
		return TimeDistribution{Times: []float64{t}, Probs: []float64{1}}, nil
	}
	tb := Tables(n, p.P)
	return burstCountToTimes(t, p.O, tb.Lo, tb.PMFWindow()), nil
}

// JobTimeDistribution returns the exact distribution of the job completion
// time, T + O·max over W tasks of the burst counts — the distribution whose
// mean is the paper's E_j (equation (7)).
func JobTimeDistribution(p Params) (TimeDistribution, error) {
	if err := p.Validate(); err != nil {
		return TimeDistribution{}, err
	}
	t := p.TaskDemand()
	n := p.trials()
	if p.O == 0 || p.P == 0 || n == 0 {
		return TimeDistribution{Times: []float64{t}, Probs: []float64{1}}, nil
	}
	tb := Tables(n, p.P)
	return burstCountToTimes(t, p.O, tb.Lo, tb.MaxPMFWindow(p.W)), nil
}

// burstCountToTimes maps a burst-count pmf window (pmf[i] is the probability
// of lo+i bursts) onto completion times, trimming the negligible top tail so
// the tables stay compact. For large task demands the window is already the
// O(√T) mass window, so the distribution never materializes the empty bulk
// of the support.
func burstCountToTimes(t, o float64, lo int, pmf []float64) TimeDistribution {
	hi := len(pmf) - 1
	for hi > 0 && pmf[hi] < 1e-15 {
		hi--
	}
	d := TimeDistribution{
		Times: make([]float64, 0, hi+1),
		Probs: make([]float64, 0, hi+1),
	}
	var kept float64
	for k := 0; k <= hi; k++ {
		d.Times = append(d.Times, t+float64(lo+k)*o)
		d.Probs = append(d.Probs, pmf[k])
		kept += pmf[k]
	}
	// Fold the trimmed mass into the last kept point to stay normalized.
	if rem := 1 - kept; rem > 0 {
		d.Probs[len(d.Probs)-1] += rem
	}
	return d
}

// DeadlineProb returns P(job completes within the deadline) — the
// deliverable a batch scheduler wants from the model.
func DeadlineProb(p Params, deadline float64) (float64, error) {
	d, err := JobTimeDistribution(p)
	if err != nil {
		return 0, err
	}
	return 1 - d.TailProb(deadline), nil
}

// AnalyzeGumbel approximates E[max of W iid Bin(T,P)] with the classic
// extreme-value (Gumbel) asymptotic
//
//	E[max] ≈ μ + σ·(a_W + γ/ln-term)    a_W = sqrt(2 ln W) - (ln ln W + ln 4π)/(2 sqrt(2 ln W))
//
// applied to the normal approximation of the binomial. It is O(1) instead
// of O(√T): the extreme-value step needs only the closed-form moments N·P
// and N·P·(1−P), so it deliberately does not touch the (N, P) table memo —
// a pure-Gumbel sweep over many distinct points must not build (or evict)
// kernel tables the exact paths are sharing. Accuracy is benchmarked
// against the exact computation in BenchmarkAblationGumbel.
func AnalyzeGumbel(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	t := p.TaskDemand()
	u := p.Utilization()
	r := Result{Params: p, T: t, U: u}
	n := p.trials()
	bin := Binomial{N: n, P: p.P}
	r.EBurstsPerTsk = bin.Mean()
	r.ETask = t + p.O*bin.Mean()
	switch {
	case p.O == 0 || p.P == 0 || n == 0:
		r.EJob = t
	case p.W == 1:
		r.EJob = r.ETask
		r.EMaxBursts = bin.Mean()
	default:
		mu := bin.Mean()
		sigma := math.Sqrt(bin.Variance())
		w := float64(p.W)
		l := math.Log(w)
		const gamma = 0.5772156649015329 // Euler–Mascheroni
		var aW float64
		if l > 0.5 {
			s := math.Sqrt(2 * l)
			aW = s - (math.Log(l)+math.Log(4*math.Pi))/(2*s) + gamma/s
		}
		em := mu + sigma*aW
		if em > float64(n) {
			em = float64(n)
		}
		if em < mu {
			em = mu
		}
		r.EMaxBursts = em
		r.EJob = t + p.O*em
	}
	r.Metrics = metricsFor(p, u, r.EJob)
	return r, nil
}
