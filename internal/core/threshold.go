package core

import (
	"fmt"
	"math"
)

// ThresholdQuery asks: on a system of W workstations each with owner burst
// demand O and owner utilization Util, how large must the task ratio T/O be
// for the parallel job to reach TargetWeightedEff weighted efficiency?
//
// This is the paper's headline engineering result (Section 5): "the task
// ratio should be at least 8 for a parallel job to achieve 80 percent of the
// possible speedup ... for a utilization of 5 percent. At a utilization of
// 10 percent the task ratio must be 13 or higher, and at a utilization of 20
// percent the task ratio must be 20 or greater."
type ThresholdQuery struct {
	W                 int
	O                 float64
	Util              float64
	TargetWeightedEff float64
}

// Validate checks the query parameters.
func (q ThresholdQuery) Validate() error {
	switch {
	case q.W < 1:
		return fmt.Errorf("core: threshold query needs W >= 1, got %d", q.W)
	case !(q.O > 0):
		return fmt.Errorf("core: threshold query needs O > 0, got %v", q.O)
	case q.Util < 0 || q.Util >= 1:
		return fmt.Errorf("core: threshold query needs utilization in [0,1), got %v", q.Util)
	case !(q.TargetWeightedEff > 0) || q.TargetWeightedEff > 1:
		return fmt.Errorf("core: target weighted efficiency must be in (0,1], got %v", q.TargetWeightedEff)
	}
	return nil
}

// weightedEffAtRatio evaluates weighted efficiency at task ratio r (T = r·O).
func (q ThresholdQuery) weightedEffAtRatio(r float64) (float64, error) {
	t := r * q.O
	p, err := ParamsFromUtilization(t*float64(q.W), q.W, q.O, q.Util)
	if err != nil {
		return 0, err
	}
	res, err := Analyze(p)
	if err != nil {
		return 0, err
	}
	return res.WeightedEfficiency, nil
}

// MinTaskRatio returns the smallest integer task ratio achieving the target
// weighted efficiency, found by exponential-then-binary search. Weighted
// efficiency is monotone nondecreasing in the task ratio (larger tasks
// amortize each owner burst over more useful work), which the property tests
// verify. maxRatio caps the search; if even maxRatio misses the target, an
// error is returned. Each probe varies T (= ratio·O) at fixed P, so probes
// within one search hit distinct (N, P) tables; the process-wide memo of
// tables.go pays off across searches — repeated queries, ThresholdTable
// rows at shared ratios, or a sweep running alongside.
func (q ThresholdQuery) MinTaskRatio(maxRatio int) (int, error) {
	ratio, _, err := q.minTaskRatioEff(maxRatio)
	return ratio, err
}

// minTaskRatioEff is MinTaskRatio returning also the weighted efficiency
// achieved at the returned ratio, so callers that report both (ThresholdTable,
// Assess) do not re-solve the boundary point.
func (q ThresholdQuery) minTaskRatioEff(maxRatio int) (int, float64, error) {
	if err := q.Validate(); err != nil {
		return 0, 0, err
	}
	if maxRatio < 1 {
		return 0, 0, fmt.Errorf("core: maxRatio must be >= 1, got %d", maxRatio)
	}
	if q.Util == 0 {
		return 1, 1, nil // dedicated system: any ratio achieves weighted eff 1
	}
	// Exponential search for an upper bracket.
	hi := 1
	hiEff := 0.0
	for {
		eff, err := q.weightedEffAtRatio(float64(hi))
		if err != nil {
			return 0, 0, err
		}
		if eff >= q.TargetWeightedEff {
			hiEff = eff
			break
		}
		if hi >= maxRatio {
			return 0, 0, fmt.Errorf("core: target weighted efficiency %.3f unreachable within task ratio %d (best %.4f)",
				q.TargetWeightedEff, maxRatio, eff)
		}
		hi *= 2
		if hi > maxRatio {
			hi = maxRatio
		}
	}
	lo := hi / 2 // eff(lo) known < target when hi > 1
	if hi == 1 {
		return 1, hiEff, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		eff, err := q.weightedEffAtRatio(float64(mid))
		if err != nil {
			return 0, 0, err
		}
		if eff >= q.TargetWeightedEff {
			hi, hiEff = mid, eff
		} else {
			lo = mid
		}
	}
	return hi, hiEff, nil
}

// ThresholdRow is one line of the conclusions table.
type ThresholdRow struct {
	Util        float64
	MinRatio    int
	WeightedEff float64 // achieved weighted efficiency at MinRatio
}

// ThresholdTable reproduces the conclusions table: for each utilization, the
// minimum task ratio reaching the target weighted efficiency on a system of
// w workstations with owner demand o.
func ThresholdTable(w int, o, target float64, utils []float64) ([]ThresholdRow, error) {
	rows := make([]ThresholdRow, 0, len(utils))
	for _, u := range utils {
		q := ThresholdQuery{W: w, O: o, Util: u, TargetWeightedEff: target}
		ratio, eff, err := q.minTaskRatioEff(1 << 20)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ThresholdRow{Util: u, MinRatio: ratio, WeightedEff: eff})
	}
	return rows, nil
}

// RequiredJobDemand converts a task-ratio threshold into the minimum total
// job demand J = ratio·O·W, the quantity a user actually controls.
func RequiredJobDemand(ratio int, o float64, w int) float64 {
	return float64(ratio) * o * float64(w)
}

// FeasibilityVerdict classifies a parameter point against a target weighted
// efficiency, for the advisor example.
type FeasibilityVerdict struct {
	Result
	Target   float64
	Feasible bool
	// MinRatio is the threshold ratio at these (W, O, U); 0 when unreachable.
	MinRatio int
	// MinJobDemand is the smallest J meeting the target; +Inf when unreachable.
	MinJobDemand float64
}

// Assess runs the model and the threshold solver together.
func Assess(p Params, target float64) (FeasibilityVerdict, error) {
	res, err := Analyze(p)
	if err != nil {
		return FeasibilityVerdict{}, err
	}
	v := FeasibilityVerdict{Result: res, Target: target, Feasible: res.WeightedEfficiency >= target}
	if p.O > 0 && res.U > 0 {
		q := ThresholdQuery{W: p.W, O: p.O, Util: res.U, TargetWeightedEff: target}
		ratio, err := q.MinTaskRatio(1 << 20)
		if err != nil {
			v.MinJobDemand = math.Inf(1)
			return v, nil
		}
		v.MinRatio = ratio
		v.MinJobDemand = RequiredJobDemand(ratio, p.O, p.W)
	} else {
		v.MinRatio = 1
		v.MinJobDemand = p.O * float64(p.W)
	}
	return v, nil
}
