package core

import (
	"container/list"
	"math"
	"sync"
)

// The analytic hot path: every quantity the model produces — E_t, E_j, the
// completion-time distributions, deadline probabilities and the threshold
// searches built on them — reduces to order statistics of Bin(N, P). The
// original kernel rebuilt an O(N) pmf/cdf table with three Lgamma+Exp per
// entry on every Analyze call, and rebuilt it per W even though the table
// depends only on (N, P). BinomialTables replaces that with
//
//   - a single log-domain anchor at the mode (one Lgamma triple per table)
//     extended by the multiplicative ratio recurrence
//     pmf(k+1) = pmf(k) · (N−k)/(k+1) · P/(1−P),
//   - truncation of the support to the mass window around N·P once N is
//     large (the omitted tail is below tablesTailMass), turning O(N) work
//     and memory into O(√N), and
//   - a process-wide memo keyed by (N, P), shared by every consumer —
//     Analyze, the distributions, the threshold/optimize/scaled searches and
//     all sweep workers — so a W-grid or a bisection at fixed (T, P) pays
//     for one table total.
//
// Tables are immutable after construction and therefore safe to share
// across goroutines without locking; only the memo map itself is locked.

const (
	// tablesFullSupportMax is the largest N whose tables keep the exact full
	// support {0..N}; beyond it the support is truncated to the mass window.
	tablesFullSupportMax = 2048
	// tablesTailEps stops the window extension: entries below it are
	// excluded. The pmf decays at least geometrically past the stopping
	// points (it is unimodal and already ≥8σ out), so the total omitted
	// mass is below tablesTailMass.
	tablesTailEps = 1e-18
	// tablesTailMass bounds the probability mass outside [Lo, Hi].
	tablesTailMass = 1e-15
)

// BinomialTables is the pmf/cdf of Bin(N, P) over the support window
// [Lo, Hi]. Outside the window the pmf is treated as 0 and the cdf as 0
// (below Lo) or 1 (above Hi); for N ≤ tablesFullSupportMax the window is the
// full support and the tables are exact.
type BinomialTables struct {
	N  int
	P  float64
	Lo int // first supported burst count, inclusive
	Hi int // last supported burst count, inclusive

	pmf []float64 // pmf[k-Lo] = P(X = k)
	cdf []float64 // cdf[k-Lo] = P(X <= k), clamped to [0, 1]
	// tail[k-Lo] = P(X > k), accumulated from the top of the window
	// downward. Near the upper tail this is far more accurate than 1−cdf:
	// the bottom-up running sum floors at the table's total-mass rounding
	// error (~1e-12), while the top-down sum keeps full relative precision
	// of the tiny tail itself — exactly what the order-statistic fold
	// (1 − S^w ≈ w·tail for S near 1) is sensitive to.
	tail []float64

	// emMu guards emMemo, the per-W ExpectedMax memo. The distribution
	// tables above stay immutable and lock-free; only repeated identical
	// (N, P, W) solves take this lock, to skip the order-statistic fold.
	emMu   sync.Mutex
	emMemo map[int]float64
}

// Tables returns the (memoized) tables for Bin(n, p). The returned value is
// shared and must not be modified.
func Tables(n int, p float64) *BinomialTables {
	key := tableKey{n: n, p: p}
	s := tableShardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.hits++
		t := el.Value.(*tableEntry).t
		s.mu.Unlock()
		return t
	}
	s.misses++
	s.mu.Unlock()

	// Build outside the lock: tables are deterministic, so two goroutines
	// racing on the same key waste one build, never correctness.
	t := newBinomialTables(n, p)

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// A racing build won the insert; keep the resident table so every
		// caller of this key shares one value.
		s.order.MoveToFront(el)
		t = el.Value.(*tableEntry).t
	} else {
		s.entries[key] = s.order.PushFront(&tableEntry{key: key, t: t})
		for len(s.entries) > tableShardCap {
			// Evict in recency order, never the key just inserted: the memo
			// must stay bounded under adversarial parameter streams, but a
			// hot (N, P) that every sweep worker touches stays resident
			// (the old random map-order half-sweep could drop it mid-use).
			back := s.order.Back()
			s.order.Remove(back)
			delete(s.entries, back.Value.(*tableEntry).key)
			s.evictions++
		}
	}
	s.mu.Unlock()
	return t
}

type tableKey struct {
	n int
	p float64
}

// tableEntry is the recency-list payload, carrying the key back for
// eviction.
type tableEntry struct {
	key tableKey
	t   *BinomialTables
}

const (
	// tableCacheCap bounds the memo's total residency across all shards.
	// Sized so a shard still holds a canonical sweep's working set (~100
	// distinct (N, P) keys across the whole memo) even when the key hash
	// distributes unevenly: the bound only exists to stop unbounded growth
	// under adversarial parameter streams, and tables are O(√T), so the
	// memory cost of headroom is small next to the cost of rebuilding a hot
	// table every grid pass.
	tableCacheCap = 256
	// tableShardCount splits the memo so concurrent sweep workers hitting
	// distinct (N, P) keys do not serialize on one mutex. Power of two.
	tableShardCount = 8
	// tableShardCap is each shard's recency-eviction bound.
	tableShardCap = tableCacheCap / tableShardCount
)

// tableShard is one slice of the memo: its own lock, map and recency list
// (front = most recently used).
type tableShard struct {
	mu      sync.Mutex
	entries map[tableKey]*list.Element
	order   *list.List
	hits    uint64
	misses  uint64
	// evictions counts entries dropped by the recency bound.
	evictions uint64
}

var tableShards = func() [tableShardCount]*tableShard {
	var out [tableShardCount]*tableShard
	for i := range out {
		out[i] = &tableShard{entries: make(map[tableKey]*list.Element), order: list.New()}
	}
	return out
}()

// tableShardFor hashes (n, p) onto a shard with a 64-bit finalizer mix; the
// same key always lands on the same shard.
func tableShardFor(key tableKey) *tableShard {
	h := math.Float64bits(key.p) ^ uint64(key.n)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return tableShards[h&(tableShardCount-1)]
}

// TablesCacheStats reports the cumulative hit/miss counts of the shared
// table memo (summed across shards), for benchmarks and tests of
// cross-worker sharing.
func TablesCacheStats() (hits, misses uint64) {
	for _, s := range tableShards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// tablesCacheEntries reports the memo's current residency, for the bound
// tests.
func tablesCacheEntries() int {
	n := 0
	for _, s := range tableShards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// pointMass reports whether Bin(n, p) is degenerate, and at which count.
func pointMass(n int, p float64) (at int, ok bool) {
	switch {
	case n == 0 || p == 0:
		return 0, true
	case p == 1:
		return n, true
	}
	return 0, false
}

// modeAnchor returns the mode of Bin(n, p) and the pmf there, evaluated in
// the log domain — the single Lgamma triple each table is anchored on.
func modeAnchor(n int, p float64) (mode int, pmfMode float64) {
	mode = int(math.Floor(float64(n+1) * p))
	if mode > n {
		mode = n
	}
	return mode, math.Exp(Binomial{N: n, P: p}.LogPMF(mode))
}

// newBinomialTables builds the tables for Bin(n, p).
func newBinomialTables(n int, p float64) *BinomialTables {
	t := &BinomialTables{N: n, P: p}
	if at, ok := pointMass(n, p); ok {
		t.Lo, t.Hi = at, at
		t.pmf = []float64{1}
		t.cdf = []float64{1}
		t.tail = []float64{0}
		return t
	}
	mode, pmfMode := modeAnchor(n, p)

	lo, hi := 0, n
	if n > tablesFullSupportMax {
		lo, hi = windowBounds(n, p, mode, pmfMode)
	}
	t.Lo, t.Hi = lo, hi
	t.pmf = ratioPMF(n, p, lo, hi, mode, pmfMode)

	// Renormalize: the log-domain anchor carries ~1 ulp of Lgamma error,
	// which scales the whole table uniformly (the window misses at most
	// tablesTailMass of true mass, far below the anchor error). Dividing by
	// the summed mass removes that common factor, leaving only the tiny
	// per-step recurrence drift.
	var mass float64
	for _, v := range t.pmf {
		mass += v
	}
	for i := range t.pmf {
		t.pmf[i] /= mass
	}

	t.cdf = make([]float64, len(t.pmf))
	run := 0.0
	for i, v := range t.pmf {
		run += v
		if run > 1 {
			run = 1
		}
		t.cdf[i] = run
	}
	if hi == n {
		// Full upper support: force S[N] = 1 exactly so order statistics
		// built on the cdf are proper distributions.
		t.cdf[len(t.cdf)-1] = 1
	}
	t.tail = make([]float64, len(t.pmf))
	down := 0.0
	for i := len(t.pmf) - 1; i >= 0; i-- {
		t.tail[i] = down // P(X > Lo+i) excludes pmf[i] itself
		down += t.pmf[i]
		if down > 1 {
			down = 1 // accumulation rounding must not push a tail above 1
		}
	}
	return t
}

// windowBounds walks outward from the mode until the pmf drops below
// tablesTailEps on each side, returning the truncated support.
func windowBounds(n int, p float64, mode int, pmfMode float64) (lo, hi int) {
	r := p / (1 - p)
	hi = mode
	for v := pmfMode; hi < n; {
		v *= r * float64(n-hi) / float64(hi+1)
		if v < tablesTailEps {
			break
		}
		hi++
	}
	lo = mode
	for v := pmfMode; lo > 0; {
		v *= float64(lo) / (r * float64(n-lo+1))
		if v < tablesTailEps {
			break
		}
		lo--
	}
	return lo, hi
}

// ratioPMF fills pmf values for k in [lo, hi] by the two-sided ratio
// recurrence anchored at the mode. mode must lie in [lo, hi].
func ratioPMF(n int, p float64, lo, hi, mode int, pmfMode float64) []float64 {
	out := make([]float64, hi-lo+1)
	out[mode-lo] = pmfMode
	r := p / (1 - p)
	v := pmfMode
	for k := mode; k < hi; k++ {
		v *= r * float64(n-k) / float64(k+1)
		out[k+1-lo] = v
	}
	v = pmfMode
	for k := mode; k > lo; k-- {
		v *= float64(k) / (r * float64(n-k+1))
		out[k-1-lo] = v
	}
	return out
}

// fullPMFTable is the recurrence-based full-support table {0..N}, used by
// the compatibility methods that promise a dense slice.
func fullPMFTable(n int, p float64) []float64 {
	if at, ok := pointMass(n, p); ok {
		out := make([]float64, n+1)
		out[at] = 1
		return out
	}
	mode, pmfMode := modeAnchor(n, p)
	return ratioPMF(n, p, 0, n, mode, pmfMode)
}

// Mean is N·P.
func (t *BinomialTables) Mean() float64 { return float64(t.N) * t.P }

// Variance is N·P·(1−P).
func (t *BinomialTables) Variance() float64 { return float64(t.N) * t.P * (1 - t.P) }

// PMF returns P(X = k); 0 outside the window.
func (t *BinomialTables) PMF(k int) float64 {
	if k < t.Lo || k > t.Hi {
		return 0
	}
	return t.pmf[k-t.Lo]
}

// CDF returns P(X <= k): 0 below the window, 1 above it.
func (t *BinomialTables) CDF(k int) float64 {
	switch {
	case k < t.Lo:
		return 0
	case k > t.Hi:
		return 1
	}
	return t.cdf[k-t.Lo]
}

// PMFWindow returns the window pmf, aligned so slice index i holds
// P(X = Lo+i). The slice is shared and must not be modified.
func (t *BinomialTables) PMFWindow() []float64 { return t.pmf }

// ExpectedMax returns E[max of w iid Bin(N, P)] by the tail-sum identity
//
//	E[max] = Σ_{n=0}^{N-1} (1 − S[n]^w).
//
// Terms below the window have S[n] ≈ 0 and contribute 1 each; terms above it
// have S[n] ≈ 1 and contribute nothing. Each in-window term is evaluated as
// −expm1(w·log1p(−tail[n])) on the top-down tail, which keeps full relative
// precision where S ≈ 1 — computing 1 − S^w there floors at the table's
// total-mass rounding error and, summed over the support, that floor is
// exactly the regime a large-W order statistic amplifies.
func (t *BinomialTables) ExpectedMax(w int) float64 {
	if w < 1 {
		panic("core: ExpectedMax requires w >= 1")
	}
	if t.N == 0 || t.P == 0 {
		return 0
	}
	if t.P == 1 {
		return float64(t.N)
	}
	// Memoize per W: a sweep grid or bisection that revisits the same
	// (N, P, W) point — and every cache-missed re-solve behind it — pays
	// the O(window) fold once per table lifetime.
	t.emMu.Lock()
	if v, ok := t.emMemo[w]; ok {
		t.emMu.Unlock()
		return v
	}
	t.emMu.Unlock()
	fw := float64(w)
	sum := float64(t.Lo)
	hi := t.Hi
	if hi > t.N-1 {
		hi = t.N - 1
	}
	for n := t.Lo; n <= hi; n++ {
		tau := t.tail[n-t.Lo]
		// 1−S^w ≤ w·τ, and τ is nonincreasing: all later terms are
		// negligible too.
		if fw*tau < 1e-18 {
			break
		}
		sum += -math.Expm1(fw * math.Log1p(-tau))
	}
	t.emMu.Lock()
	if t.emMemo == nil {
		t.emMemo = make(map[int]float64)
	}
	if len(t.emMemo) < expectedMaxMemoCap {
		t.emMemo[w] = sum
	}
	t.emMu.Unlock()
	return sum
}

// expectedMaxMemoCap bounds each table's per-W memo: real workloads touch
// a handful of W values per (N, P); the cap only guards against
// adversarial W streams.
const expectedMaxMemoCap = 128

// MaxPMFWindow returns the paper's Max[W, n] — the probability that the
// busiest of w tasks suffers exactly n interruptions — over the window,
// aligned so slice index i holds Max[w, Lo+i]. The result is newly
// allocated and owned by the caller.
func (t *BinomialTables) MaxPMFWindow(w int) []float64 {
	if w < 1 {
		panic("core: MaxPMFWindow requires w >= 1")
	}
	out := powWindow(t.cdf, w)
	prev := 0.0
	for i, c := range out {
		out[i] = c - prev
		if out[i] < 0 {
			out[i] = 0
		}
		prev = c
	}
	return out
}

// powWindow raises every entry of s to the w-th power with one shared
// square-and-multiply ladder: O(len·log w) multiplications instead of a
// math.Pow (log+exp) per entry. The ladder accumulates at most ~2·log2(w)
// roundings per entry, well inside the 1e-12 agreement the tests pin
// against math.Pow.
func powWindow(s []float64, w int) []float64 {
	acc := make([]float64, len(s))
	for i := range acc {
		acc[i] = 1
	}
	base := append([]float64(nil), s...)
	for e := w; ; {
		if e&1 == 1 {
			for i := range acc {
				acc[i] *= base[i]
			}
		}
		e >>= 1
		if e == 0 {
			break
		}
		for i := range base {
			base[i] *= base[i]
		}
	}
	return acc
}
