// Package core implements the analytical model of Leutenegger & Sun,
// "Distributed Computing Feasibility in a Non-Dedicated Homogeneous
// Distributed System" (ICASE 93-65, Supercomputing '93).
//
// Notation (the paper's Table 1):
//
//	J   total demand of the parallel job
//	W   number of workstations in the system
//	T   demand of one parallel task, T = J/W
//	O   time an owner process uses the workstation per burst
//	U   utilization of a workstation by its owner
//	P   probability the owner requests the processor in a time step
//	E_t mean expected task completion time
//	E_j mean expected job completion time
//
// The model is discrete time. The owner of each workstation cycles between
// thinking (geometric with mean 1/P) and using the workstation for a
// deterministic O units; owner processes have preemptive priority over the
// parallel task, and the task is guaranteed one unit of progress between
// owner bursts. Consequently the number of owner bursts hitting a task of
// demand T is Binomial(T, P) (paper equation (2)) and
//
//	E_t = T + O · E[Bin(T,P)]                  (equation (3))
//	E_j = T + O · E[max of W iid Bin(T,P)]     (equations (4)-(7))
//	U   = O / (O + 1/P)                        (equation (8))
package core

import (
	"fmt"
	"math"
)

// Binomial is the distribution of the number of owner interruptions hitting
// one parallel task: N trials (one interruption opportunity per unit of task
// progress) each succeeding with probability P.
type Binomial struct {
	N int
	P float64
}

// Validate reports whether the distribution parameters are usable.
func (b Binomial) Validate() error {
	if b.N < 0 {
		return fmt.Errorf("core: binomial trials must be >= 0, got %d", b.N)
	}
	if b.P < 0 || b.P > 1 || math.IsNaN(b.P) {
		return fmt.Errorf("core: binomial probability must be in [0,1], got %v", b.P)
	}
	return nil
}

// Mean is N·P.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance is N·P·(1-P).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// LogPMF returns ln P(X = k), or -Inf outside the support. It is evaluated
// in the log domain (via Lgamma) so that large T cannot underflow: the
// scaled-problem ablations push T into the hundreds of thousands. This is
// the reference kernel: the fast path (tables.go) anchors one log-domain
// evaluation at the mode and extends it by the ratio recurrence, and the
// property tests pit the two against each other.
func (b Binomial) LogPMF(k int) float64 {
	if k < 0 || k > b.N {
		return math.Inf(-1)
	}
	switch b.P {
	case 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case 1:
		if k == b.N {
			return 0
		}
		return math.Inf(-1)
	}
	return logChoose(b.N, k) + float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log1p(-b.P)
}

// PMF returns P(X = k), the paper's Bin(T, n, P) of equation (2).
func (b Binomial) PMF(k int) float64 { return math.Exp(b.LogPMF(k)) }

// CDF returns P(X <= k), the paper's S[n] of equation (4), by direct
// summation of the pmf.
func (b Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.N {
		return 1
	}
	var sum float64
	for i := 0; i <= k; i++ {
		sum += b.PMF(i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// PMFTable returns the full pmf over {0, ..., N}, computed by the ratio
// recurrence anchored at the mode (one Lgamma triple for the whole table
// instead of three per entry). Entries whose true value is below the
// smallest denormal underflow to 0, exactly as the log-domain reference
// does. Callers that only need the mass window should use Tables instead —
// the dense slice is inherently O(N).
func (b Binomial) PMFTable() []float64 {
	return fullPMFTable(b.N, b.P)
}

// CDFTable returns S[0..N] with S[N] clamped to exactly 1, so that order
// statistics built on top of it are proper distributions.
func (b Binomial) CDFTable() []float64 {
	pmf := b.PMFTable()
	s := make([]float64, b.N+1)
	var run float64
	for k, p := range pmf {
		run += p
		if run > 1 {
			run = 1
		}
		s[k] = run
	}
	s[b.N] = 1
	return s
}

// ExpectedMaxOfIID returns E[max of w iid copies of b], the expectation the
// paper forms through Max[W,n] = C[W,n] − C[W,n−1] (equations (5)-(6)).
// We use the equivalent tail-sum identity
//
//	E[max] = Σ_{n=0}^{N-1} (1 − S[n]^w)
//
// which avoids the cancellation C[n]−C[n−1] entirely. It is served by the
// shared (N, P)-memoized tables, so repeated calls at different w — a W-grid
// sweep, a threshold bisection — pay for one table total.
func (b Binomial) ExpectedMaxOfIID(w int) float64 {
	if w < 1 {
		panic("core: ExpectedMaxOfIID requires w >= 1")
	}
	if b.N == 0 || b.P == 0 {
		return 0
	}
	if b.P == 1 {
		return float64(b.N)
	}
	return Tables(b.N, b.P).ExpectedMax(w)
}

// MaxPMFTable returns the paper's Max[W, n] for n in {0, ..., N}: the
// probability that the busiest of w tasks suffers exactly n interruptions.
// The dense slice is O(N); entries outside the tables' mass window are 0.
func (b Binomial) MaxPMFTable(w int) []float64 {
	if w < 1 {
		panic("core: MaxPMFTable requires w >= 1")
	}
	t := Tables(b.N, b.P)
	out := make([]float64, b.N+1)
	copy(out[t.Lo:t.Hi+1], t.MaxPMFWindow(w))
	return out
}

// logChoose is ln C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
