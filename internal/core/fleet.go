package core

import (
	"fmt"
	"math"
	"sort"
)

// Heterogeneous fleets: the paper's model with per-station owner request
// probability and execution speed. Station i runs its task share at speed
// s_i (effective demand t_i = T/s_i, T = J/W the reference task demand) and
// its owner interrupts each unit of progress with probability p_i, so the
// per-task burst count is Bin(round(t_i), p_i) and the job completion time
// is
//
//	M = max_i ( t_i + O·X_i ),   X_i ~ Bin(n_i, p_i) independent.
//
// P(M ≤ x) = Π_g F_g(⌊(x−t_g)/O⌋)^c_g over the speed/availability groups,
// evaluated on the shared BinomialTables windows via the log1p(−tail)
// product (the same precision trick as ExpectedMax); the fleet's total
// burst count Σ_i X_i is served by the PoissonBinomialTables kernel. A
// fleet that collapses to one group at reference speed delegates to
// Analyze, reproducing the homogeneous path bit-for-bit.

// FleetStation describes one group of identical stations in a
// heterogeneous fleet: Count stations whose owners request with
// probability P per unit of task progress, executing task work at Speed
// times the reference rate (0 means 1).
type FleetStation struct {
	P     float64
	Speed float64
	Count int
}

// speed returns the effective speed, defaulting 0 to the reference rate.
func (s FleetStation) speed() float64 {
	if s.Speed == 0 {
		return 1
	}
	return s.Speed
}

// Fleet is a heterogeneous feasibility question: total job demand J split
// evenly across the stations (one task each), owner burst demand O shared
// fleet-wide, availability and speed per station group.
type Fleet struct {
	J        float64
	O        float64
	Stations []FleetStation
}

// W is the total station (= task) count.
func (f Fleet) W() int {
	n := 0
	for _, s := range f.Stations {
		n += s.Count
	}
	return n
}

// TaskDemand is the reference per-task demand T = J/W.
func (f Fleet) TaskDemand() float64 { return f.J / float64(f.W()) }

// Validate checks fleet parameter ranges, mirroring Params.Validate per
// station group.
func (f Fleet) Validate() error {
	switch {
	case !(f.J > 0) || math.IsInf(f.J, 0):
		return fmt.Errorf("core: fleet job demand J must be positive and finite, got %v", f.J)
	case f.O < 0 || math.IsNaN(f.O) || math.IsInf(f.O, 0):
		return fmt.Errorf("core: fleet owner demand O must be >= 0 and finite, got %v", f.O)
	case len(f.Stations) == 0:
		return fmt.Errorf("core: fleet needs at least one station group")
	}
	t := f.TaskDemand()
	for i, s := range f.Stations {
		switch {
		case s.Count < 1:
			return fmt.Errorf("core: fleet station group %d count must be >= 1, got %d", i, s.Count)
		case s.P < 0 || s.P > 1 || math.IsNaN(s.P):
			return fmt.Errorf("core: fleet station group %d probability must be in [0,1], got %v", i, s.P)
		case !(s.speed() > 0) || math.IsInf(s.Speed, 0) || math.IsNaN(s.Speed):
			return fmt.Errorf("core: fleet station group %d speed must be positive and finite, got %v", i, s.Speed)
		case s.P > 0 && t/s.speed() < 1:
			return fmt.Errorf("core: fleet station group %d effective task demand %v is below one time unit",
				i, t/s.speed())
		}
	}
	return nil
}

// Canonical returns the station multiset sorted by (p, speed) with equal
// groups merged and speeds normalized — the form the fleet identity
// signature and the kernels key on.
func (f Fleet) Canonical() []FleetStation {
	out := make([]FleetStation, 0, len(f.Stations))
	for _, s := range f.Stations {
		out = append(out, FleetStation{P: s.P, Speed: s.speed(), Count: s.Count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].Speed < out[j].Speed
	})
	merged := out[:1]
	for _, s := range out[1:] {
		if last := &merged[len(merged)-1]; last.P == s.P && last.Speed == s.Speed {
			last.Count += s.Count
		} else {
			merged = append(merged, s)
		}
	}
	return merged
}

// Homogeneous reports whether the fleet collapses to the homogeneous model
// — one canonical group at reference speed — and returns the equivalent
// Params.
func (f Fleet) Homogeneous() (Params, bool) {
	canon := f.Canonical()
	if len(canon) != 1 || canon[0].Speed != 1 {
		return Params{}, false
	}
	return Params{J: f.J, W: canon[0].Count, O: f.O, P: canon[0].P}, true
}

// Utilization is the station-weighted mean owner utilization
// Σ c_g·u_g / W with u_g = O/(O + 1/p_g) (equation (8) per group).
func (f Fleet) Utilization() float64 {
	if f.O == 0 {
		return 0
	}
	var sum float64
	for _, s := range f.Stations {
		if s.P > 0 {
			sum += float64(s.Count) * f.O / (f.O + 1/s.P)
		}
	}
	return sum / float64(f.W())
}

// BurstTables returns the Poisson-binomial tables of the fleet's total
// per-job burst count Σ_i Bin(n_i, p_i), the generalized kernel behind
// EBurstsPerTsk. The boolean is false for a fleet with no interruptible
// trials (the count is identically zero).
func (f Fleet) BurstTables() (*PoissonBinomialTables, bool, error) {
	if err := f.Validate(); err != nil {
		return nil, false, err
	}
	t := f.TaskDemand()
	var groups []PBGroup
	for _, s := range f.Canonical() {
		n := int(math.Round(t / s.Speed))
		if s.P > 0 && n > 0 {
			groups = append(groups, PBGroup{P: s.P, Count: s.Count * n})
		}
	}
	if len(groups) == 0 {
		return nil, false, nil
	}
	pb, err := PoissonBinomial(groups)
	if err != nil {
		return nil, false, err
	}
	return pb, true, nil
}

// FleetResult is the model output for one heterogeneous parameter point,
// mirroring Result.
type FleetResult struct {
	Fleet
	W     int
	T     float64 // reference task demand J/W
	U     float64 // station-weighted owner utilization
	ETask float64 // station-weighted expected task completion time
	EJob  float64 // E[max over stations of task completion times]
	// EMaxBursts is E[max burst count] when every station runs at the
	// reference speed (the counts share one lattice); 0 otherwise.
	EMaxBursts    float64
	EBurstsPerTsk float64 // fleet-mean bursts per task, from the Poisson-binomial kernel
	Metrics
}

// fleetGroup is one canonical group resolved against the job: effective
// demand, trial count and the shared binomial window.
type fleetGroup struct {
	FleetStation
	t  float64
	n  int
	tb *BinomialTables
}

func resolveFleetGroups(f Fleet) []fleetGroup {
	t := f.TaskDemand()
	canon := f.Canonical()
	out := make([]fleetGroup, 0, len(canon))
	for _, s := range canon {
		g := fleetGroup{FleetStation: s, t: t / s.Speed}
		g.n = int(math.Round(g.t))
		g.tb = Tables(g.n, s.P)
		out = append(out, g)
	}
	return out
}

// AnalyzeFleet evaluates the heterogeneous model at f. A fleet whose
// canonical form is a single reference-speed group routes through Analyze,
// reproducing the homogeneous answer bit-for-bit.
func AnalyzeFleet(f Fleet) (FleetResult, error) {
	if err := f.Validate(); err != nil {
		return FleetResult{}, err
	}
	if p, ok := f.Homogeneous(); ok {
		r, err := Analyze(p)
		if err != nil {
			return FleetResult{}, err
		}
		return FleetResult{
			Fleet:         f,
			W:             p.W,
			T:             r.T,
			U:             r.U,
			ETask:         r.ETask,
			EJob:          r.EJob,
			EMaxBursts:    r.EMaxBursts,
			EBurstsPerTsk: r.EBurstsPerTsk,
			Metrics:       r.Metrics,
		}, nil
	}

	w := f.W()
	res := FleetResult{Fleet: f, W: w, T: f.TaskDemand(), U: f.Utilization()}
	groups := resolveFleetGroups(f)

	var etask float64
	sameOffset := true
	for _, g := range groups {
		etask += float64(g.Count) * (g.t + f.O*float64(g.n)*g.P)
		if g.t != groups[0].t {
			sameOffset = false
		}
	}
	res.ETask = etask / float64(w)

	if pb, ok, err := f.BurstTables(); err != nil {
		return FleetResult{}, err
	} else if ok {
		res.EBurstsPerTsk = pb.Mean() / float64(w)
	}

	times, probs := fleetJobPMF(groups, f.O)
	for i, p := range probs {
		res.EJob += times[i] * p
	}
	if sameOffset && f.O > 0 {
		res.EMaxBursts = (res.EJob - groups[0].t) / f.O
	}
	res.Metrics = metricsFor(Params{J: f.J, W: w, O: f.O}, res.U, res.EJob)
	return res, nil
}

// fleetJobPMF builds the exact job completion-time distribution over the
// merged lattice of group support points x = t_g + k·O,
//
//	P(M ≤ x) = Π_g F_g(k_g(x))^c_g = exp( Σ_g c_g·log1p(−tail_g(k_g(x))) ),
//
// differenced across the sorted support. Groups whose window the point has
// not reached force the product to zero; the log1p(−tail) form keeps full
// relative precision where the per-group cdf is near one — exactly the
// regime a fleet-wide max amplifies.
func fleetJobPMF(groups []fleetGroup, o float64) (times, probs []float64) {
	if o == 0 {
		deterministic := 0.0
		for _, g := range groups {
			if g.t > deterministic {
				deterministic = g.t
			}
		}
		return []float64{deterministic}, []float64{1}
	}
	var pts []float64
	for _, g := range groups {
		for k := g.tb.Lo; k <= g.tb.Hi; k++ {
			pts = append(pts, g.t+float64(k)*o)
		}
	}
	sort.Float64s(pts)
	dedup := pts[:1]
	for _, x := range pts[1:] {
		if x != dedup[len(dedup)-1] {
			dedup = append(dedup, x)
		}
	}

	times = make([]float64, 0, len(dedup))
	probs = make([]float64, 0, len(dedup))
	prev := 0.0
	for _, x := range dedup {
		logG := 0.0
		zero := false
		for _, g := range groups {
			k := int(math.Floor((x-g.t)/o + 1e-9))
			if k < g.tb.Lo {
				zero = true
				break
			}
			if k >= g.tb.Hi {
				continue // tail is 0: this group's factor is 1
			}
			tau := g.tb.tail[k-g.tb.Lo]
			if tau >= 1 {
				zero = true
				break
			}
			logG += float64(g.Count) * math.Log1p(-tau)
		}
		cum := 0.0
		if !zero {
			cum = math.Exp(logG)
		}
		p := cum - prev
		prev = cum
		if p <= 0 {
			continue
		}
		times = append(times, x)
		probs = append(probs, p)
	}
	if len(times) == 0 {
		// Every point differenced to zero mass (degenerate windows); fall
		// back to the largest support point as a point mass.
		return []float64{dedup[len(dedup)-1]}, []float64{1}
	}
	// Fold the truncated upper-tail remainder into the last kept point so
	// the distribution stays normalized, as burstCountToTimes does.
	if rem := 1 - prev; rem > 0 {
		probs[len(probs)-1] += rem
	}
	return times, probs
}

// FleetJobTimeDistribution returns the exact distribution of the fleet job
// completion time — the heterogeneous JobTimeDistribution.
func FleetJobTimeDistribution(f Fleet) (TimeDistribution, error) {
	if err := f.Validate(); err != nil {
		return TimeDistribution{}, err
	}
	if p, ok := f.Homogeneous(); ok {
		return JobTimeDistribution(p)
	}
	times, probs := fleetJobPMF(resolveFleetGroups(f), f.O)
	return TimeDistribution{Times: times, Probs: probs}, nil
}

// FleetDeadlineProb returns P(fleet job completes within the deadline).
func FleetDeadlineProb(f Fleet, deadline float64) (float64, error) {
	d, err := FleetJobTimeDistribution(f)
	if err != nil {
		return 0, err
	}
	return 1 - d.TailProb(deadline), nil
}

// TileFleet expands a station template cyclically to exactly w stations —
// the convention the threshold/partition/scaled searches use to grow or
// shrink a heterogeneous fleet while preserving its mix. The result is
// canonical (sorted, merged).
func TileFleet(template []FleetStation, w int) ([]FleetStation, error) {
	if len(template) == 0 {
		return nil, fmt.Errorf("core: fleet template needs at least one station group")
	}
	if w < 1 {
		return nil, fmt.Errorf("core: fleet tiling needs w >= 1, got %d", w)
	}
	var flat []FleetStation
	for _, s := range template {
		if s.Count < 1 {
			return nil, fmt.Errorf("core: fleet template group count must be >= 1, got %d", s.Count)
		}
		for i := 0; i < s.Count; i++ {
			flat = append(flat, FleetStation{P: s.P, Speed: s.speed(), Count: 1})
		}
	}
	out := make([]FleetStation, 0, w)
	for i := 0; i < w; i++ {
		out = append(out, flat[i%len(flat)])
	}
	return Fleet{J: 1, O: 0, Stations: out}.Canonical(), nil
}

// FleetThresholdQuery is ThresholdQuery over a heterogeneous fleet: the
// station mix is fixed, the task ratio (J = ratio·O·W) is searched.
type FleetThresholdQuery struct {
	Stations          []FleetStation
	O                 float64
	TargetWeightedEff float64
}

// Validate checks the query parameters.
func (q FleetThresholdQuery) Validate() error {
	switch {
	case len(q.Stations) == 0:
		return fmt.Errorf("core: fleet threshold query needs at least one station group")
	case !(q.O > 0):
		return fmt.Errorf("core: fleet threshold query needs O > 0, got %v", q.O)
	case !(q.TargetWeightedEff > 0) || q.TargetWeightedEff > 1:
		return fmt.Errorf("core: target weighted efficiency must be in (0,1], got %v", q.TargetWeightedEff)
	}
	return nil
}

func (q FleetThresholdQuery) dedicated() bool {
	for _, s := range q.Stations {
		if s.P > 0 {
			return false
		}
	}
	return true
}

func (q FleetThresholdQuery) weightedEffAtRatio(r float64) (float64, error) {
	w := 0
	for _, s := range q.Stations {
		w += s.Count
	}
	res, err := AnalyzeFleet(Fleet{J: r * q.O * float64(w), O: q.O, Stations: q.Stations})
	if err != nil {
		return 0, err
	}
	return res.WeightedEfficiency, nil
}

// MinTaskRatio returns the smallest integer task ratio achieving the
// target weighted efficiency, by the same exponential-then-binary search
// as the homogeneous ThresholdQuery (weighted efficiency is monotone
// nondecreasing in the ratio for a fixed mix).
func (q FleetThresholdQuery) MinTaskRatio(maxRatio int) (int, error) {
	ratio, _, err := q.minTaskRatioEff(maxRatio)
	return ratio, err
}

func (q FleetThresholdQuery) minTaskRatioEff(maxRatio int) (int, float64, error) {
	if err := q.Validate(); err != nil {
		return 0, 0, err
	}
	if maxRatio < 1 {
		return 0, 0, fmt.Errorf("core: maxRatio must be >= 1, got %d", maxRatio)
	}
	if q.dedicated() {
		// All-p=0 fleet: no owner ever interrupts, so E[job] = t/s_min and
		// the weighted efficiency J/(W·E[job]) = s_min at every ratio. The
		// reference-speed fleet reproduces the homogeneous (1, 1) answer.
		eff := math.Inf(1)
		for _, s := range q.Stations {
			if sp := s.speed(); sp < eff {
				eff = sp
			}
		}
		if eff < q.TargetWeightedEff {
			return 0, 0, fmt.Errorf("core: target weighted efficiency %.3f unreachable at any ratio: the dedicated fleet's slowest station caps it at %.4f",
				q.TargetWeightedEff, eff)
		}
		return 1, eff, nil
	}
	hi := 1
	hiEff := 0.0
	for {
		eff, err := q.weightedEffAtRatio(float64(hi))
		if err != nil {
			return 0, 0, err
		}
		if eff >= q.TargetWeightedEff {
			hiEff = eff
			break
		}
		if hi >= maxRatio {
			return 0, 0, fmt.Errorf("core: target weighted efficiency %.3f unreachable within task ratio %d (best %.4f)",
				q.TargetWeightedEff, maxRatio, eff)
		}
		hi *= 2
		if hi > maxRatio {
			hi = maxRatio
		}
	}
	lo := hi / 2
	if hi == 1 {
		return 1, hiEff, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		eff, err := q.weightedEffAtRatio(float64(mid))
		if err != nil {
			return 0, 0, err
		}
		if eff >= q.TargetWeightedEff {
			hi, hiEff = mid, eff
		} else {
			lo = mid
		}
	}
	return hi, hiEff, nil
}

// FleetVerdict is FeasibilityVerdict over a heterogeneous fleet.
type FleetVerdict struct {
	FleetResult
	Target   float64
	Feasible bool
	MinRatio int
	// MinJobDemand is the smallest J meeting the target at this mix;
	// +Inf when unreachable.
	MinJobDemand float64
}

// AssessFleet runs the fleet model and its threshold solver together,
// mirroring Assess.
func AssessFleet(f Fleet, target float64) (FleetVerdict, error) {
	res, err := AnalyzeFleet(f)
	if err != nil {
		return FleetVerdict{}, err
	}
	v := FleetVerdict{FleetResult: res, Target: target, Feasible: res.WeightedEfficiency >= target}
	if f.O > 0 && res.U > 0 {
		q := FleetThresholdQuery{Stations: f.Stations, O: f.O, TargetWeightedEff: target}
		ratio, err := q.MinTaskRatio(1 << 20)
		if err != nil {
			v.MinJobDemand = math.Inf(1)
			return v, nil
		}
		v.MinRatio = ratio
		v.MinJobDemand = RequiredJobDemand(ratio, f.O, res.W)
	} else {
		v.MinRatio = 1
		v.MinJobDemand = f.O * float64(res.W)
	}
	return v, nil
}

// MaxFleetWorkstations is MaxWorkstations over a heterogeneous mix: the
// largest W in [1, maxW] whose tiled fleet meets the target weighted
// efficiency for a job of demand j. The template is tiled cyclically to
// each probed size (TileFleet), so the mix is preserved as the fleet grows.
func MaxFleetWorkstations(j, o float64, template []FleetStation, target float64, maxW int) (int, error) {
	if maxW < 1 {
		return 0, fmt.Errorf("core: maxW must be >= 1, got %d", maxW)
	}
	if !(target > 0) || target > 1 {
		return 0, fmt.Errorf("core: target weighted efficiency must be in (0,1], got %v", target)
	}
	// The discrete model needs every interruptible station's effective
	// demand j/(w·s) >= 1, which caps the usable size at floor(j/s_max)
	// over stations with p > 0.
	maxSpeed := 0.0
	for _, s := range template {
		if s.P > 0 && s.speed() > maxSpeed {
			maxSpeed = s.speed()
		}
	}
	if maxSpeed > 0 && float64(maxW) > j/maxSpeed {
		maxW = int(j / maxSpeed)
		if maxW < 1 {
			return 0, fmt.Errorf("core: job demand %v is below one effective time unit at the fleet's fastest station", j)
		}
	}
	memo := make(map[int]float64)
	eff := func(w int) (float64, error) {
		if e, ok := memo[w]; ok {
			return e, nil
		}
		stations, err := TileFleet(template, w)
		if err != nil {
			return 0, err
		}
		r, err := AnalyzeFleet(Fleet{J: j, O: o, Stations: stations})
		if err != nil {
			return 0, err
		}
		memo[w] = r.WeightedEfficiency
		return r.WeightedEfficiency, nil
	}
	one, err := eff(1)
	if err != nil {
		return 0, err
	}
	if one < target {
		return 0, fmt.Errorf("core: even one workstation reaches only %.4f weighted efficiency (target %.4f)", one, target)
	}
	lo, hi := 1, maxW
	top, err := eff(maxW)
	if err != nil {
		return 0, err
	}
	if top >= target {
		return maxW, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		e, err := eff(mid)
		if err != nil {
			return 0, err
		}
		if e >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// FleetScaledPoint is the fleet model output at one system size of a
// scaled sweep.
type FleetScaledPoint struct {
	W                   int
	Result              FleetResult
	IncreaseVsDedicated float64
	IncreaseVsSingle    float64
}

// ScaledFleetSweep is ScaledSweep over a heterogeneous mix: the reference
// per-task demand t is held fixed (J = t·W) while the template is tiled to
// each system size.
func ScaledFleetSweep(t, o float64, template []FleetStation, ws []int) ([]FleetScaledPoint, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("core: scaled sweep needs at least one system size")
	}
	at := func(w int) (FleetResult, error) {
		stations, err := TileFleet(template, w)
		if err != nil {
			return FleetResult{}, err
		}
		return AnalyzeFleet(Fleet{J: t * float64(w), O: o, Stations: stations})
	}
	base, err := at(1)
	if err != nil {
		return nil, err
	}
	out := make([]FleetScaledPoint, 0, len(ws))
	for _, w := range ws {
		r := base
		if w != 1 {
			var err error
			r, err = at(w)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, FleetScaledPoint{
			W:                   w,
			Result:              r,
			IncreaseVsDedicated: r.EJob/t - 1,
			IncreaseVsSingle:    r.EJob/base.EJob - 1,
		})
	}
	return out, nil
}
