package core

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams builds the fixed-size workload of Figures 1-4.
func paperParams(t *testing.T, j float64, w int, util float64) Params {
	t.Helper()
	p, err := ParamsFromUtilization(j, w, 10, util)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUtilizationInversionRoundTrips(t *testing.T) {
	for _, util := range []float64{0.01, 0.03, 0.05, 0.1, 0.2, 0.65} {
		p := paperParams(t, 1000, 10, util)
		if got := p.Utilization(); math.Abs(got-util) > 1e-12 {
			t.Errorf("util %v round-tripped to %v", util, got)
		}
	}
}

func TestZeroUtilization(t *testing.T) {
	p := paperParams(t, 1000, 10, 0)
	if p.P != 0 {
		t.Fatalf("zero utilization must give P=0, got %v", p.P)
	}
	r := MustAnalyze(p)
	if r.EJob != p.TaskDemand() || r.ETask != p.TaskDemand() {
		t.Errorf("dedicated system: E_j=%v E_t=%v want %v", r.EJob, r.ETask, p.TaskDemand())
	}
	if r.Speedup != float64(p.W) {
		t.Errorf("dedicated speedup = %v, want %d", r.Speedup, p.W)
	}
	if math.Abs(r.WeightedEfficiency-1) > 1e-12 {
		t.Errorf("dedicated weighted efficiency = %v, want 1", r.WeightedEfficiency)
	}
}

// TestPaperFigure1SpotValues pins the two numbers the paper quotes from
// Figure 1: "At 100 nodes the speedup for a system with only 1% utilization
// is only 61% of the optimal speedup, for a 20% utilization the speedup is
// only 32.5% of the optimal speedup."
func TestPaperFigure1SpotValues(t *testing.T) {
	r1 := MustAnalyze(paperParams(t, 1000, 100, 0.01))
	if pct := r1.Speedup / 100 * 100; math.Abs(pct-61.0) > 0.5 {
		t.Errorf("util 1%%: %% of optimal = %.1f, paper says 61", pct)
	}
	r20 := MustAnalyze(paperParams(t, 1000, 100, 0.2))
	if pct := r20.Speedup / 100 * 100; math.Abs(pct-32.5) > 0.5 {
		t.Errorf("util 20%%: %% of optimal = %.1f, paper says 32.5", pct)
	}
}

// TestPaperWeightedEfficiencySpotValues pins "the weighted-efficiency is
// still only 61.5% (41%) for a utilization of 1% (20%)" at 100 nodes.
func TestPaperWeightedEfficiencySpotValues(t *testing.T) {
	r1 := MustAnalyze(paperParams(t, 1000, 100, 0.01))
	if math.Abs(r1.WeightedEfficiency-0.615) > 0.01 {
		t.Errorf("weighted efficiency at 1%% = %.3f, paper says 0.615", r1.WeightedEfficiency)
	}
	r20 := MustAnalyze(paperParams(t, 1000, 100, 0.2))
	if math.Abs(r20.WeightedEfficiency-0.41) > 0.01 {
		t.Errorf("weighted efficiency at 20%% = %.3f, paper says 0.41", r20.WeightedEfficiency)
	}
}

func TestETaskClosedFormMatchesDirectSum(t *testing.T) {
	f := func(wRaw, uRaw uint8) bool {
		w := int(wRaw)%100 + 1
		util := float64(uRaw%60)/100 + 0.001
		p, err := ParamsFromUtilization(1000, w, 10, util)
		if err != nil {
			return false
		}
		direct, err := ETaskDirect(p)
		if err != nil {
			return false
		}
		closed := MustAnalyze(p).ETask
		return math.Abs(direct-closed) < 1e-6*(1+closed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEJobTailSumMatchesMaxPMF(t *testing.T) {
	for _, w := range []int{1, 2, 8, 60, 100} {
		for _, util := range []float64{0.01, 0.1, 0.2} {
			p := paperParams(t, 1000, w, util)
			direct, err := EJobDirect(p)
			if err != nil {
				t.Fatal(err)
			}
			viaTail := MustAnalyze(p).EJob
			if math.Abs(direct-viaTail) > 1e-8*(1+viaTail) {
				t.Errorf("W=%d util=%v: direct %v vs tail-sum %v", w, util, direct, viaTail)
			}
		}
	}
}

func TestSingleWorkstationJobEqualsTask(t *testing.T) {
	for _, util := range []float64{0.01, 0.1, 0.3} {
		r := MustAnalyze(paperParams(t, 500, 1, util))
		if math.Abs(r.EJob-r.ETask) > 1e-9 {
			t.Errorf("W=1: E_j %v != E_t %v", r.EJob, r.ETask)
		}
	}
}

func TestOrderingInvariants(t *testing.T) {
	// T <= E_t <= E_j <= T + trials·O for any parameters.
	f := func(jRaw uint16, wRaw, uRaw uint8) bool {
		j := float64(jRaw%5000) + 100
		w := int(wRaw)%100 + 1
		util := float64(uRaw%80) / 100
		p, err := ParamsFromUtilization(j, w, 10, util)
		if err != nil {
			return false
		}
		r := MustAnalyze(p)
		tdem := p.TaskDemand()
		tol := 1e-9 * (1 + r.EJob) // relative: E_j accumulates thousands of terms
		return r.ETask >= tdem-tol &&
			r.EJob >= r.ETask-tol &&
			r.EJob <= TaskTimeBound(p)+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupBounds(t *testing.T) {
	// 0 < speedup <= W and weighted efficiency in (0, 1].
	f := func(jRaw uint16, wRaw, uRaw uint8) bool {
		j := float64(jRaw%5000) + 100
		w := int(wRaw)%128 + 1
		if j/float64(w) < 1 {
			return true // below the model's time granularity (rejected by Validate)
		}
		util := float64(uRaw%90) / 100
		p, err := ParamsFromUtilization(j, w, 10, util)
		if err != nil {
			return false
		}
		r := MustAnalyze(p)
		// The rounded-trials convention undercounts interruption
		// opportunities when T = J/W sits barely above the granularity
		// floor (trials = round(T) < T), which can push the weighted
		// efficiency above 1 — by at most T/trials: E_task = T + trials·P·O
		// ≥ trials/(1−u), so weff = T/((1−u)·E_job) ≤ T/trials. Scale the
		// upper bound to that provable envelope (exactly 1 once trials ≥ T).
		weffBound := 1.0
		if tr := p.trials(); float64(tr) < p.TaskDemand() {
			weffBound = p.TaskDemand() / float64(tr)
		}
		return r.Speedup > 0 && r.Speedup <= float64(w)+1e-9 &&
			r.WeightedEfficiency > 0 && r.WeightedEfficiency <= weffBound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupConcaveBenefitShrinks(t *testing.T) {
	// The paper: "the benefit of adding more nodes decreases as nodes are
	// added". Rounding T=J/W to integral binomial trials puts small wiggles
	// on the marginal gains, so check the trend: the average gain over the
	// first stretch of the curve must clearly exceed the average gain over
	// the last stretch, and speedup itself must keep rising.
	sp := make([]float64, 101)
	for w := 1; w <= 100; w++ {
		sp[w] = MustAnalyze(paperParams(t, 1000, w, 0.1)).Speedup
	}
	for w := 2; w <= 100; w++ {
		if sp[w] < sp[w-1]-0.02 {
			t.Errorf("speedup fell materially at W=%d: %v -> %v", w, sp[w-1], sp[w])
		}
	}
	early := (sp[20] - sp[1]) / 19
	late := (sp[100] - sp[81]) / 19
	if late >= early {
		t.Errorf("speedup curve not concave: early gain %v <= late gain %v", early, late)
	}
}

func TestBiggerJobsHigherWeightedEfficiency(t *testing.T) {
	// Figures 3-6: J=10000 dominates J=1000 at every W and utilization.
	for _, util := range []float64{0.01, 0.05, 0.1, 0.2} {
		for _, w := range []int{10, 40, 80, 100} {
			small := MustAnalyze(paperParams(t, 1000, w, util))
			big := MustAnalyze(paperParams(t, 10000, w, util))
			if big.WeightedEfficiency <= small.WeightedEfficiency {
				t.Errorf("util=%v W=%d: J=10K weff %.4f not above J=1K %.4f",
					util, w, big.WeightedEfficiency, small.WeightedEfficiency)
			}
		}
	}
}

func TestHigherUtilizationLowerSpeedup(t *testing.T) {
	for _, w := range []int{5, 50, 100} {
		prev := math.Inf(1)
		for _, util := range []float64{0.01, 0.05, 0.1, 0.2} {
			r := MustAnalyze(paperParams(t, 1000, w, util))
			if r.Speedup >= prev {
				t.Errorf("W=%d: speedup should fall with utilization", w)
			}
			prev = r.Speedup
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{J: 0, W: 1, O: 1, P: 0.1},
		{J: -5, W: 1, O: 1, P: 0.1},
		{J: 100, W: 0, O: 1, P: 0.1},
		{J: 100, W: 1, O: -1, P: 0.1},
		{J: 100, W: 1, O: 1, P: -0.1},
		{J: 100, W: 1, O: 1, P: 1.1},
		{J: math.Inf(1), W: 1, O: 1, P: 0.5},
		{J: 100, W: 1, O: math.NaN(), P: 0.5},
		{J: 10, W: 20, O: 1, P: 0.5}, // T = 0.5 below one time unit
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, p)
		}
		if _, err := Analyze(p); err == nil {
			t.Errorf("case %d: Analyze should refuse %+v", i, p)
		}
	}
}

func TestParamsFromUtilizationRejects(t *testing.T) {
	if _, err := ParamsFromUtilization(100, 4, 10, 1.0); err == nil {
		t.Error("utilization 1.0 must be rejected")
	}
	if _, err := ParamsFromUtilization(100, 4, 10, -0.1); err == nil {
		t.Error("negative utilization must be rejected")
	}
	if _, err := ParamsFromUtilization(100, 4, 0, 0.1); err == nil {
		t.Error("positive utilization with O=0 must be rejected")
	}
}

func TestTaskRatio(t *testing.T) {
	p := Params{J: 1000, W: 10, O: 10, P: 0.01}
	if got := p.TaskRatio(); got != 10 {
		t.Errorf("task ratio = %v, want 10", got)
	}
	ded := Params{J: 1000, W: 10, O: 0, P: 0}
	if !math.IsInf(ded.TaskRatio(), 1) {
		t.Error("dedicated task ratio should be +Inf")
	}
}

func TestAnalyzeInterpolatedAgreesAtIntegralT(t *testing.T) {
	p := paperParams(t, 1000, 10, 0.1) // T = 100 exactly
	a := MustAnalyze(p)
	b, err := AnalyzeInterpolated(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.EJob != b.EJob || a.ETask != b.ETask {
		t.Errorf("interpolated convention differs at integral T: %v vs %v", a.EJob, b.EJob)
	}
}

func TestAnalyzeInterpolatedBetweenNeighbors(t *testing.T) {
	p := paperParams(t, 1000, 3, 0.1) // T = 333.33...
	r, err := AnalyzeInterpolated(p)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Analyze(Params{J: 999, W: 3, O: p.O, P: p.P}) // T = 333
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(Params{J: 1002, W: 3, O: p.O, P: p.P}) // T = 334
	if err != nil {
		t.Fatal(err)
	}
	// The blended E[max bursts] must land between the neighbours'.
	if r.EMaxBursts < lo.EMaxBursts-1e-9 || r.EMaxBursts > hi.EMaxBursts+1e-9 {
		t.Errorf("interpolated EMaxBursts %v outside [%v, %v]", r.EMaxBursts, lo.EMaxBursts, hi.EMaxBursts)
	}
}

func TestMustAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyze should panic on invalid params")
		}
	}()
	MustAnalyze(Params{})
}

func TestMetricsRelationshipsHold(t *testing.T) {
	r := MustAnalyze(paperParams(t, 1000, 60, 0.05))
	if math.Abs(r.Efficiency-r.Speedup/60) > 1e-12 {
		t.Error("efficiency != speedup/W")
	}
	if math.Abs(r.WeightedSpeedup-r.Speedup/(1-r.U)) > 1e-9 {
		t.Error("weighted speedup != speedup/(1-U)")
	}
	if math.Abs(r.WeightedEfficiency-r.Efficiency/(1-r.U)) > 1e-9 {
		t.Error("weighted efficiency != efficiency/(1-U)")
	}
}
