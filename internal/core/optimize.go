package core

import "fmt"

// Right-sizing: the inverse question to the threshold solver. Instead of
// "how big must the job be for this cluster?", ask "how much of the cluster
// should this job use?". For a fixed-size job, weighted efficiency falls as
// workstations are added (each task shrinks, so the task ratio drops —
// Figures 1-4), while raw speedup rises; the useful operating point is the
// largest W that still meets an efficiency target.

// MaxWorkstations returns the largest W in [1, maxW] whose weighted
// efficiency meets the target for a job of demand j on machines with owner
// burst o and utilization util. If even W=1 misses the target, it returns
// an error carrying the achievable efficiency.
func MaxWorkstations(j, o, util, target float64, maxW int) (int, error) {
	if maxW < 1 {
		return 0, fmt.Errorf("core: maxW must be >= 1, got %d", maxW)
	}
	if !(target > 0) || target > 1 {
		return 0, fmt.Errorf("core: target weighted efficiency must be in (0,1], got %v", target)
	}
	// Memoize evaluations within this search: the bracket endpoints can be
	// revisited (eff(maxW) when the whole range is feasible). Each probe has
	// its own T = J/W, so the process-wide table memo only helps across
	// calls that repeat a W, not between probes.
	memo := make(map[int]float64)
	eff := func(w int) (float64, error) {
		if e, ok := memo[w]; ok {
			return e, nil
		}
		p, err := ParamsFromUtilization(j, w, o, util)
		if err != nil {
			return 0, err
		}
		r, err := Analyze(p)
		if err != nil {
			return 0, err
		}
		memo[w] = r.WeightedEfficiency
		return r.WeightedEfficiency, nil
	}
	// The discrete model needs T = J/W >= 1, which caps the usable system
	// size at floor(J) regardless of maxW.
	if util > 0 && float64(maxW) > j {
		maxW = int(j)
		if maxW < 1 {
			return 0, fmt.Errorf("core: job demand %v is below one time unit", j)
		}
	}
	one, err := eff(1)
	if err != nil {
		return 0, err
	}
	if one < target {
		return 0, fmt.Errorf("core: even one workstation reaches only %.4f weighted efficiency (target %.4f)", one, target)
	}
	// Weighted efficiency is monotone nonincreasing in W for fixed J
	// (property-tested); binary search for the boundary.
	lo, hi := 1, maxW // eff(lo) >= target
	top, err := eff(maxW)
	if err != nil {
		return 0, err
	}
	if top >= target {
		return maxW, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		e, err := eff(mid)
		if err != nil {
			return 0, err
		}
		if e >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// PartitionPlan describes how to run a fixed-size job efficiently.
type PartitionPlan struct {
	W      int     // workstations to use
	Result Result  // model output at that W
	Target float64 // the efficiency target the plan meets
}

// PlanPartition runs MaxWorkstations and returns the full model output at
// the chosen size.
func PlanPartition(j, o, util, target float64, maxW int) (PartitionPlan, error) {
	w, err := MaxWorkstations(j, o, util, target, maxW)
	if err != nil {
		return PartitionPlan{}, err
	}
	p, err := ParamsFromUtilization(j, w, o, util)
	if err != nil {
		return PartitionPlan{}, err
	}
	r, err := Analyze(p)
	if err != nil {
		return PartitionPlan{}, err
	}
	return PartitionPlan{W: w, Result: r, Target: target}, nil
}
