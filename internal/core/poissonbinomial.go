package core

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The heterogeneous-fleet kernel: the homogeneous model reduces every
// quantity to Bin(N, P), but a fleet whose stations differ in availability
// needs the distribution of S = Σ_g Bin(count_g, p_g) — the Poisson
// binomial, grouped by equal success probability. The same three tricks
// that make BinomialTables cheap apply group-wise:
//
//   - each group's window comes from the shared ratio-recurrence tables of
//     tables.go (one Lgamma triple per distinct (count, p)),
//   - groups are convolved window-against-window, so a fleet of G groups
//     costs O(Σ window_g · running window) instead of O(N²) dense work, and
//   - results are memoized process-wide, keyed by the sorted multiset of
//     (p, count) pairs, in the same sharded-LRU layout as the table memo.
//
// A single-group input is exactly Bin(count, p): it delegates to Tables and
// shares that table's slices bit-for-bit, so homogeneous callers pay
// nothing for the generalization. Above pbApproxCutoff total trials the
// pmf is built by a refined-normal (second-order Edgeworth) approximation
// instead of the exact convolution; the exact DP is cross-validated against
// big.Float reference arithmetic in poissonbinomial_test.go.

// PBGroup is one homogeneous slice of a Poisson-binomial sum: Count
// independent Bernoulli(P) trials.
type PBGroup struct {
	P     float64
	Count int
}

const (
	// pbApproxCutoff is the largest total trial count built by exact
	// group convolution; above it the refined-normal approximation is
	// used. The exact-path acceptance bar (1e-9 vs high-precision
	// reference at N = 1024) sits far below the cutoff.
	pbApproxCutoff = 1 << 15
	// pbApproxSigmas is the half-width, in standard deviations, of the
	// approximate path's support window.
	pbApproxSigmas = 10.0
)

// PoissonBinomialTables is the pmf/cdf of S = Σ_g Bin(count_g, p_g) over
// the support window [Lo, Hi], in the same layout as BinomialTables.
// Outside the window the pmf is treated as 0 and the cdf as 0 (below Lo)
// or 1 (above Hi).
type PoissonBinomialTables struct {
	// N is the total trial count Σ count_g.
	N int
	// Groups is the canonical (sorted, merged) group multiset.
	Groups []PBGroup
	Lo     int
	Hi     int
	// Approx reports that the table was built by the refined-normal
	// approximation rather than the exact convolution.
	Approx bool

	mu, sigma2 float64
	pmf        []float64
	cdf        []float64
	tail       []float64
}

// PoissonBinomial returns the (memoized) tables for the Poisson-binomial
// sum described by groups. The returned value is shared and must not be
// modified.
func PoissonBinomial(groups []PBGroup) (*PoissonBinomialTables, error) {
	canon, err := canonicalPBGroups(groups)
	if err != nil {
		return nil, err
	}
	if len(canon) == 1 {
		// Homogeneous: exactly Bin(count, p). Delegate to the shared
		// binomial memo and alias its slices, so the collapse is
		// bit-for-bit the Tables(n, p) path.
		g := canon[0]
		bt := Tables(g.Count, g.P)
		return &PoissonBinomialTables{
			N:      g.Count,
			Groups: canon,
			Lo:     bt.Lo,
			Hi:     bt.Hi,
			mu:     bt.Mean(),
			sigma2: bt.Variance(),
			pmf:    bt.pmf,
			cdf:    bt.cdf,
			tail:   bt.tail,
		}, nil
	}

	key := pbKey(canon)
	s := pbShardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.hits++
		t := el.Value.(*pbEntry).t
		s.mu.Unlock()
		return t, nil
	}
	s.misses++
	s.mu.Unlock()

	// Build outside the lock; a racing duplicate build wastes work, never
	// correctness.
	t := newPoissonBinomialTables(canon)

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		t = el.Value.(*pbEntry).t
	} else {
		s.entries[key] = s.order.PushFront(&pbEntry{key: key, t: t})
		for len(s.entries) > pbShardCap {
			back := s.order.Back()
			s.order.Remove(back)
			delete(s.entries, back.Value.(*pbEntry).key)
		}
	}
	s.mu.Unlock()
	return t, nil
}

// canonicalPBGroups validates, sorts by p and merges equal-p groups, so the
// memo key — and the table itself — depends only on the multiset.
func canonicalPBGroups(groups []PBGroup) ([]PBGroup, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: poisson binomial needs at least one group")
	}
	out := make([]PBGroup, 0, len(groups))
	for _, g := range groups {
		switch {
		case g.Count < 1:
			return nil, fmt.Errorf("core: poisson binomial group count must be >= 1, got %d", g.Count)
		case g.P < 0 || g.P > 1 || math.IsNaN(g.P):
			return nil, fmt.Errorf("core: poisson binomial probability must be in [0,1], got %v", g.P)
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	merged := out[:1]
	for _, g := range out[1:] {
		if last := &merged[len(merged)-1]; last.P == g.P {
			last.Count += g.Count
		} else {
			merged = append(merged, g)
		}
	}
	return merged, nil
}

// pbKey is the memo key: the canonical multiset rendered compactly.
func pbKey(canon []PBGroup) string {
	var b strings.Builder
	for _, g := range canon {
		b.WriteString(strconv.FormatUint(math.Float64bits(g.P), 16))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(g.Count))
		b.WriteByte(';')
	}
	return b.String()
}

const (
	pbCacheCap   = 128
	pbShardCount = 8
	pbShardCap   = pbCacheCap / pbShardCount
)

type pbEntry struct {
	key string
	t   *PoissonBinomialTables
}

type pbShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List
	hits    uint64
	misses  uint64
}

var pbShards = func() [pbShardCount]*pbShard {
	var out [pbShardCount]*pbShard
	for i := range out {
		out[i] = &pbShard{entries: make(map[string]*list.Element), order: list.New()}
	}
	return out
}()

func pbShardFor(key string) *pbShard {
	var h uint64 = 1469598103934665603 // FNV-64a
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return pbShards[h&(pbShardCount-1)]
}

// PoissonBinomialCacheStats reports the cumulative hit/miss counts of the
// shared Poisson-binomial memo, for tests of cross-caller sharing.
func PoissonBinomialCacheStats() (hits, misses uint64) {
	for _, s := range pbShards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// newPoissonBinomialTables builds the tables for a canonical multi-group
// multiset.
func newPoissonBinomialTables(canon []PBGroup) *PoissonBinomialTables {
	t := &PoissonBinomialTables{Groups: canon}
	for _, g := range canon {
		t.N += g.Count
		t.mu += float64(g.Count) * g.P
		t.sigma2 += float64(g.Count) * g.P * (1 - g.P)
	}
	if t.N > pbApproxCutoff {
		t.buildApprox()
	} else {
		t.buildExact()
	}
	t.finishFromPMF()
	return t
}

// buildExact convolves the group windows. Each group's window is the
// shared BinomialTables mass window, so the omitted mass is at most
// G·tablesTailMass; a final renormalization absorbs it together with the
// anchor rounding, exactly as newBinomialTables does.
func (t *PoissonBinomialTables) buildExact() {
	acc := []float64{1}
	lo := 0
	for _, g := range t.Groups {
		bt := Tables(g.Count, g.P)
		win := bt.pmf
		next := make([]float64, len(acc)+len(win)-1)
		for i, a := range acc {
			if a == 0 {
				continue
			}
			for j, w := range win {
				next[i+j] += a * w
			}
		}
		acc = next
		lo += bt.Lo
	}
	// Trim convolution edges that fell below the table tail threshold: the
	// running window is the sum of per-group windows and overshoots the
	// true mass window of the sum.
	first, last := 0, len(acc)-1
	for first < last && acc[first] < tablesTailEps {
		first++
	}
	for last > first && acc[last] < tablesTailEps {
		last--
	}
	t.Lo = lo + first
	t.Hi = lo + last
	t.pmf = acc[first : last+1]
}

// buildApprox fills the pmf from the refined-normal (second-order
// Edgeworth) cdf with continuity correction: the skew term restores the
// asymmetry a heterogeneous sum keeps even at large N.
func (t *PoissonBinomialTables) buildApprox() {
	t.Approx = true
	sigma := math.Sqrt(t.sigma2)
	var kappa3 float64
	for _, g := range t.Groups {
		kappa3 += float64(g.Count) * g.P * (1 - g.P) * (1 - 2*g.P)
	}
	skew := kappa3 / (6 * sigma * t.sigma2)
	cdf := func(k int) float64 {
		x := (float64(k) + 0.5 - t.mu) / sigma
		v := 0.5*math.Erfc(-x/math.Sqrt2) - skew*(x*x-1)*math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)
		switch {
		case v < 0:
			return 0
		case v > 1:
			return 1
		}
		return v
	}
	lo := int(math.Floor(t.mu - pbApproxSigmas*sigma))
	if lo < 0 {
		lo = 0
	}
	hi := int(math.Ceil(t.mu + pbApproxSigmas*sigma))
	if hi > t.N {
		hi = t.N
	}
	t.Lo, t.Hi = lo, hi
	t.pmf = make([]float64, hi-lo+1)
	prev := 0.0
	if lo > 0 {
		prev = cdf(lo - 1)
	}
	for k := lo; k <= hi; k++ {
		c := cdf(k)
		v := c - prev
		if v < 0 {
			v = 0
		}
		t.pmf[k-lo] = v
		prev = c
	}
}

// finishFromPMF renormalizes and derives the cdf and top-down tail, in the
// same order (and with the same clamps) as newBinomialTables.
func (t *PoissonBinomialTables) finishFromPMF() {
	var mass float64
	for _, v := range t.pmf {
		mass += v
	}
	for i := range t.pmf {
		t.pmf[i] /= mass
	}
	t.cdf = make([]float64, len(t.pmf))
	run := 0.0
	for i, v := range t.pmf {
		run += v
		if run > 1 {
			run = 1
		}
		t.cdf[i] = run
	}
	if t.Hi == t.N {
		t.cdf[len(t.cdf)-1] = 1
	}
	t.tail = make([]float64, len(t.pmf))
	down := 0.0
	for i := len(t.pmf) - 1; i >= 0; i-- {
		t.tail[i] = down
		down += t.pmf[i]
		if down > 1 {
			down = 1
		}
	}
}

// Mean is Σ count_g·p_g.
func (t *PoissonBinomialTables) Mean() float64 { return t.mu }

// Variance is Σ count_g·p_g·(1−p_g).
func (t *PoissonBinomialTables) Variance() float64 { return t.sigma2 }

// PMF returns P(S = k); 0 outside the window.
func (t *PoissonBinomialTables) PMF(k int) float64 {
	if k < t.Lo || k > t.Hi {
		return 0
	}
	return t.pmf[k-t.Lo]
}

// CDF returns P(S <= k): 0 below the window, 1 above it.
func (t *PoissonBinomialTables) CDF(k int) float64 {
	switch {
	case k < t.Lo:
		return 0
	case k > t.Hi:
		return 1
	}
	return t.cdf[k-t.Lo]
}

// Tail returns P(S > k) from the top-down accumulation, which keeps full
// relative precision in the upper tail.
func (t *PoissonBinomialTables) Tail(k int) float64 {
	switch {
	case k < t.Lo:
		return 1
	case k > t.Hi:
		return 0
	}
	return t.tail[k-t.Lo]
}

// PMFWindow returns the window pmf, aligned so slice index i holds
// P(S = Lo+i). The slice is shared and must not be modified.
func (t *PoissonBinomialTables) PMFWindow() []float64 { return t.pmf }
