package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSmallExact(t *testing.T) {
	// Bin(4, 0.5): pmf = {1,4,6,4,1}/16.
	b := Binomial{N: 4, P: 0.5}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := b.PMF(k); math.Abs(got-w) > 1e-14 {
			t.Errorf("PMF(%d) = %v, want %v", k, got, w)
		}
	}
	if b.PMF(-1) != 0 || b.PMF(5) != 0 {
		t.Error("PMF outside support must be 0")
	}
}

func TestBinomialDegenerateP(t *testing.T) {
	b0 := Binomial{N: 7, P: 0}
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("P=0 must be a point mass at 0")
	}
	b1 := Binomial{N: 7, P: 1}
	if b1.PMF(7) != 1 || b1.PMF(6) != 0 {
		t.Error("P=1 must be a point mass at N")
	}
	if b0.CDF(0) != 1 || b1.CDF(6) != 0 || b1.CDF(7) != 1 {
		t.Error("degenerate CDFs wrong")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%200 + 1
		p := float64(pRaw) / (math.MaxUint16 + 1)
		b := Binomial{N: n, P: p}
		var sum float64
		for k := 0; k <= n; k++ {
			sum += b.PMF(k)
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialMeanMatchesPMF(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%100 + 1
		p := float64(pRaw) / (math.MaxUint16 + 1)
		b := Binomial{N: n, P: p}
		var mean float64
		for k := 0; k <= n; k++ {
			mean += float64(k) * b.PMF(k)
		}
		return math.Abs(mean-b.Mean()) < 1e-9*(1+b.Mean())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	b := Binomial{N: 150, P: 0.03}
	table := b.CDFTable()
	prev := 0.0
	for k, v := range table {
		if v < prev {
			t.Fatalf("CDF decreases at k=%d: %v < %v", k, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("CDF out of range at k=%d: %v", k, v)
		}
		prev = v
	}
	if table[len(table)-1] != 1 {
		t.Error("CDF must end at exactly 1")
	}
}

func TestBinomialLargeNNoUnderflow(t *testing.T) {
	// (1-P)^N underflows in linear space for these parameters; the log-domain
	// pmf must still normalize.
	b := Binomial{N: 200000, P: 0.02}
	// Sum the pmf over a wide window around the mean (4000 ± 20 sd).
	mean := b.Mean()
	sd := math.Sqrt(b.Variance())
	lo, hi := int(mean-20*sd), int(mean+20*sd)
	var sum float64
	for k := lo; k <= hi; k++ {
		sum += b.PMF(k)
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("windowed pmf sum = %v, want 1", sum)
	}
	if b.PMF(0) != 0 {
		// Underflow to exactly 0 is expected and fine at k=0 here...
		t.Logf("PMF(0) = %v", b.PMF(0))
	}
	if v := b.LogPMF(0); math.IsNaN(v) || v > 0 {
		t.Errorf("LogPMF(0) = %v should be a large negative number", v)
	}
}

func TestExpectedMaxWOneEqualsMean(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%120 + 1
		p := float64(pRaw)/(math.MaxUint16+1)*0.5 + 1e-4
		b := Binomial{N: n, P: p}
		return math.Abs(b.ExpectedMaxOfIID(1)-b.Mean()) < 1e-9*(1+b.Mean())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExpectedMaxMonotoneInW(t *testing.T) {
	b := Binomial{N: 100, P: 0.05}
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 20, 60, 100, 500} {
		m := b.ExpectedMaxOfIID(w)
		if m < prev {
			t.Fatalf("E[max] decreased at w=%d: %v < %v", w, m, prev)
		}
		if m > float64(b.N) {
			t.Fatalf("E[max] exceeds support: %v", m)
		}
		prev = m
	}
}

func TestExpectedMaxAgainstMaxPMF(t *testing.T) {
	// The tail-sum identity must agree with the paper's Max[W,n] expectation.
	for _, w := range []int{1, 3, 10, 60} {
		b := Binomial{N: 40, P: 0.1}
		viaTail := b.ExpectedMaxOfIID(w)
		var viaPMF float64
		for n, prob := range b.MaxPMFTable(w) {
			viaPMF += float64(n) * prob
		}
		if math.Abs(viaTail-viaPMF) > 1e-9 {
			t.Errorf("w=%d: tail-sum %v vs Max[W,n] %v", w, viaTail, viaPMF)
		}
	}
}

func TestMaxPMFTableIsDistribution(t *testing.T) {
	b := Binomial{N: 60, P: 0.08}
	for _, w := range []int{1, 2, 12, 100} {
		var sum float64
		for _, p := range b.MaxPMFTable(w) {
			if p < 0 {
				t.Fatalf("negative Max pmf entry at w=%d", w)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("w=%d: Max pmf sums to %v", w, sum)
		}
	}
}

func TestExpectedMaxDegenerate(t *testing.T) {
	if (Binomial{N: 0, P: 0.3}).ExpectedMaxOfIID(5) != 0 {
		t.Error("N=0 must have zero max")
	}
	if (Binomial{N: 9, P: 0}).ExpectedMaxOfIID(5) != 0 {
		t.Error("P=0 must have zero max")
	}
	if got := (Binomial{N: 9, P: 1}).ExpectedMaxOfIID(5); got != 9 {
		t.Errorf("P=1 max must be N, got %v", got)
	}
}

func TestExpectedMaxPanicsOnBadW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("w=0 should panic")
		}
	}()
	Binomial{N: 5, P: 0.5}.ExpectedMaxOfIID(0)
}

func TestBinomialValidate(t *testing.T) {
	if err := (Binomial{N: -1, P: 0.5}).Validate(); err == nil {
		t.Error("negative N should fail validation")
	}
	if err := (Binomial{N: 5, P: 1.5}).Validate(); err == nil {
		t.Error("P > 1 should fail validation")
	}
	if err := (Binomial{N: 5, P: 0.5}).Validate(); err != nil {
		t.Errorf("valid binomial rejected: %v", err)
	}
}
