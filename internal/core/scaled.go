package core

import "fmt"

// Scaled-problem analysis (paper Section 3.2). Under memory-bounded scaleup
// (Sun & Ni, the paper's references [10] and [12]) the job demand grows
// linearly with the number of workstations, J = T·W, so each task's demand —
// and therefore the task ratio — stays constant. The paper's finding: with
// T = 100 and O = 10, going from 1 to 100 workstations raises response time
// by only 14/30/44/71% at owner utilizations of 1/5/10/20%.

// ScaledPoint is the model output at one system size of a scaled sweep.
type ScaledPoint struct {
	W      int
	Result Result
	// IncreaseVsDedicated is E_j(W)/T − 1: the increase relative to the
	// dedicated single-workstation time. The paper's quoted "+14/30/44/71%"
	// match this baseline numerically (its Figure 9 y-axis starts at T=100),
	// even though its prose says "one workstation with the same owner
	// utilization"; see EXPERIMENTS.md.
	IncreaseVsDedicated float64
	// IncreaseVsSingle is E_j(W)/E_j(1) − 1: the strict reading of the
	// paper's prose (baseline keeps the owner interference).
	IncreaseVsSingle float64
}

// ScaledSweep evaluates the scaled problem at each system size in ws,
// holding the per-task demand t and owner parameters fixed. Because (T, P)
// are constant across the sweep, every point consumes the same memoized
// binomial table (tables.go); only the O(window) order-statistic fold is
// per-W work.
func ScaledSweep(t, o, util float64, ws []int) ([]ScaledPoint, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("core: scaled sweep needs at least one system size")
	}
	base, err := scaledAt(t, o, util, 1)
	if err != nil {
		return nil, err
	}
	out := make([]ScaledPoint, 0, len(ws))
	for _, w := range ws {
		r := base // scaled sweeps usually include W=1: reuse the baseline solve
		if w != 1 {
			var err error
			r, err = scaledAt(t, o, util, w)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, ScaledPoint{
			W:                   w,
			Result:              r,
			IncreaseVsDedicated: r.EJob/t - 1,
			IncreaseVsSingle:    r.EJob/base.EJob - 1,
		})
	}
	return out, nil
}

func scaledAt(t, o, util float64, w int) (Result, error) {
	p, err := ParamsFromUtilization(t*float64(w), w, o, util)
	if err != nil {
		return Result{}, err
	}
	return Analyze(p)
}

// ScaledIncreaseAt returns the response-time increase of a scaled problem at
// system size w against the dedicated baseline (the numbers quoted in the
// paper's conclusions: +30% at 5% utilization and W=100, +71% at 20%).
func ScaledIncreaseAt(t, o, util float64, w int) (float64, error) {
	pts, err := ScaledSweep(t, o, util, []int{w})
	if err != nil {
		return 0, err
	}
	return pts[0].IncreaseVsDedicated, nil
}

// Scaleup reports how much more work the scaled system completes per unit
// time than the single workstation: W·E_j(1)/E_j(W). Perfect memory-bounded
// scaleup would be W.
func Scaleup(pt ScaledPoint, base Result) float64 {
	if pt.Result.EJob == 0 {
		return 0
	}
	return float64(pt.W) * base.EJob / pt.Result.EJob
}
