package pvm

import (
	"fmt"
	"net"
	"sync"
)

// Transport moves a message from the sender's host to the destination
// host's daemon. Implementations must preserve per-(src,dst) ordering.
type transport interface {
	// deliver routes m toward its destination host daemon.
	deliver(m *Message) error
	// close releases transport resources.
	close() error
}

// inprocTransport delivers directly into the destination daemon. Delivery
// happens on the sender's goroutine; ordering per (src,dst) follows from
// the sender's program order.
type inprocTransport struct {
	vm *VM
}

func (tr *inprocTransport) deliver(m *Message) error {
	d, err := tr.vm.daemonFor(m.Dst)
	if err != nil {
		return err
	}
	return d.localDeliver(m)
}

func (tr *inprocTransport) close() error { return nil }

// tcpTransport routes messages between host daemons over loopback TCP, one
// stream per ordered host pair, mirroring PVM's daemon-to-daemon routes.
// Stream order gives per-(src,dst) FIFO.
type tcpTransport struct {
	vm *VM

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[[2]int]net.Conn // (srcHost, dstHost) → stream
	wg        sync.WaitGroup
	closed    bool
}

func newTCPTransport(vm *VM) *tcpTransport {
	return &tcpTransport{vm: vm, conns: make(map[[2]int]net.Conn)}
}

// listen starts the accept loop for one host daemon and records its
// address in the host table.
func (tr *tcpTransport) listen(d *Daemon) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("pvm: host %d listen: %w", d.index, err)
	}
	d.addr = ln.Addr().String()
	tr.mu.Lock()
	tr.listeners = append(tr.listeners, ln)
	tr.mu.Unlock()
	tr.wg.Add(1)
	go func() {
		defer tr.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			tr.wg.Add(1)
			go func() {
				defer tr.wg.Done()
				defer conn.Close()
				for {
					m, err := readFrame(conn)
					if err != nil {
						return // peer closed or transport shutting down
					}
					// Delivery errors (unknown task) are dropped like PVM
					// drops messages to dead TIDs.
					_ = d.localDeliver(m)
				}
			}()
		}
	}()
	return nil
}

// deliver sends m over the (srcHost → dstHost) stream, dialing it on first
// use. Local destinations short-circuit without touching the network.
func (tr *tcpTransport) deliver(m *Message) error {
	srcHost := m.Src.Host()
	dstHost := m.Dst.Host()
	d, err := tr.vm.daemonFor(m.Dst)
	if err != nil {
		return err
	}
	if srcHost == dstHost {
		return d.localDeliver(m)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return fmt.Errorf("pvm: transport closed")
	}
	key := [2]int{srcHost, dstHost}
	conn, ok := tr.conns[key]
	if !ok {
		conn, err = net.Dial("tcp", d.addr)
		if err != nil {
			return fmt.Errorf("pvm: dial host %d: %w", dstHost, err)
		}
		tr.conns[key] = conn
	}
	if err := writeFrame(conn, m); err != nil {
		delete(tr.conns, key)
		conn.Close()
		return fmt.Errorf("pvm: send to host %d: %w", dstHost, err)
	}
	return nil
}

func (tr *tcpTransport) close() error {
	tr.mu.Lock()
	tr.closed = true
	for _, ln := range tr.listeners {
		ln.Close()
	}
	for k, c := range tr.conns {
		c.Close()
		delete(tr.conns, k)
	}
	tr.mu.Unlock()
	tr.wg.Wait()
	return nil
}
