package pvm

import (
	"fmt"
	"sync"
)

// TransportKind selects how messages move between hosts.
type TransportKind int

const (
	// InProc delivers messages by direct function call (fastest; default).
	InProc TransportKind = iota
	// TCP routes inter-host messages over loopback TCP streams, exercising
	// a real network path like the original PVM daemons.
	TCP
)

// Config configures a virtual machine.
type Config struct {
	// Hosts is the number of workstations in the virtual machine.
	Hosts int
	// Transport selects the inter-host message path.
	Transport TransportKind
	// HostNames optionally names each host (defaults to ws0, ws1, ...).
	HostNames []string
}

// Daemon is the per-host pvmd: it owns the host's task table and delivers
// messages to local task mailboxes.
type Daemon struct {
	vm    *VM
	index int
	name  string
	addr  string // TCP transport address, when enabled

	mu        sync.Mutex
	tasks     map[int]*Task // local id → task
	nextLocal int
}

// Name returns the host name.
func (d *Daemon) Name() string { return d.name }

// Index returns the host's index within the VM.
func (d *Daemon) Index() int { return d.index }

// localDeliver places m into the destination task's mailbox.
func (d *Daemon) localDeliver(m *Message) error {
	d.mu.Lock()
	task, ok := d.tasks[m.Dst.local()]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("pvm: no task %v on host %d", m.Dst, d.index)
	}
	task.mb.put(m)
	return nil
}

// VM is the virtual machine: a set of host daemons, a task table, and a
// transport.
type VM struct {
	mu      sync.Mutex
	daemons []*Daemon
	tasks   map[TID]*Task
	groups  map[string]*group
	tr      transport
	halted  bool
	// spawn counter for round-robin placement
	rr int
}

// NewVM assembles a virtual machine ("pvmd startup + pvm_addhosts").
func NewVM(cfg Config) (*VM, error) {
	if cfg.Hosts < 1 || cfg.Hosts > maxHosts {
		return nil, fmt.Errorf("pvm: host count must be in [1, %d], got %d", maxHosts, cfg.Hosts)
	}
	if cfg.HostNames != nil && len(cfg.HostNames) != cfg.Hosts {
		return nil, fmt.Errorf("pvm: %d host names for %d hosts", len(cfg.HostNames), cfg.Hosts)
	}
	vm := &VM{
		tasks:  make(map[TID]*Task),
		groups: make(map[string]*group),
	}
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("ws%d", i)
		if cfg.HostNames != nil {
			name = cfg.HostNames[i]
		}
		vm.daemons = append(vm.daemons, &Daemon{
			vm:    vm,
			index: i,
			name:  name,
			tasks: make(map[int]*Task),
		})
	}
	switch cfg.Transport {
	case InProc:
		vm.tr = &inprocTransport{vm: vm}
	case TCP:
		t := newTCPTransport(vm)
		for _, d := range vm.daemons {
			if err := t.listen(d); err != nil {
				t.close()
				return nil, err
			}
		}
		vm.tr = t
	default:
		return nil, fmt.Errorf("pvm: unknown transport %d", cfg.Transport)
	}
	return vm, nil
}

// Hosts returns the number of hosts in the machine ("pvm_config").
func (vm *VM) Hosts() int { return len(vm.daemons) }

// Daemon returns the daemon for a host index.
func (vm *VM) Daemon(host int) (*Daemon, error) {
	if host < 0 || host >= len(vm.daemons) {
		return nil, fmt.Errorf("pvm: no host %d in a %d-host machine", host, len(vm.daemons))
	}
	return vm.daemons[host], nil
}

func (vm *VM) daemonFor(t TID) (*Daemon, error) {
	if !t.Valid() {
		return nil, fmt.Errorf("pvm: invalid destination %v", t)
	}
	return vm.Daemon(t.Host())
}

// TaskFunc is a task body. Returning ends the task (implicit pvm_exit);
// the returned error is reported through Wait.
type TaskFunc func(t *Task) error

// Spawn starts one task on the given host ("pvm_spawn" with explicit
// placement). parent is the spawning task's TID, or 0 for a console spawn.
func (vm *VM) Spawn(name string, host int, parent TID, fn TaskFunc) (TID, error) {
	vm.mu.Lock()
	if vm.halted {
		vm.mu.Unlock()
		return 0, fmt.Errorf("pvm: virtual machine halted")
	}
	vm.mu.Unlock()
	d, err := vm.Daemon(host)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.nextLocal++
	local := d.nextLocal
	tid := makeTID(host, local)
	task := &Task{
		vm:     vm,
		tid:    tid,
		parent: parent,
		name:   name,
		host:   host,
		mb:     newMailbox(),
		done:   make(chan struct{}),
	}
	d.tasks[local] = task
	d.mu.Unlock()

	vm.mu.Lock()
	vm.tasks[tid] = task
	vm.mu.Unlock()

	go task.run(fn)
	return tid, nil
}

// SpawnN starts n copies of a task round-robin across all hosts, returning
// their TIDs in spawn order ("pvm_spawn" with PvmTaskDefault placement).
func (vm *VM) SpawnN(name string, n int, parent TID, fn TaskFunc) ([]TID, error) {
	if n < 1 {
		return nil, fmt.Errorf("pvm: SpawnN needs n >= 1, got %d", n)
	}
	tids := make([]TID, 0, n)
	for i := 0; i < n; i++ {
		vm.mu.Lock()
		host := vm.rr % len(vm.daemons)
		vm.rr++
		vm.mu.Unlock()
		tid, err := vm.Spawn(fmt.Sprintf("%s#%d", name, i), host, parent, fn)
		if err != nil {
			return tids, err
		}
		tids = append(tids, tid)
	}
	return tids, nil
}

// Lookup resolves a TID to its task.
func (vm *VM) lookup(t TID) (*Task, error) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	task, ok := vm.tasks[t]
	if !ok {
		return nil, fmt.Errorf("pvm: unknown task %v", t)
	}
	return task, nil
}

// Wait blocks until the task exits and returns its error.
func (vm *VM) Wait(t TID) error {
	task, err := vm.lookup(t)
	if err != nil {
		return err
	}
	<-task.done
	return task.err
}

// WaitAll waits for several tasks, returning the first error encountered
// (all tasks are waited for regardless).
func (vm *VM) WaitAll(tids []TID) error {
	var first error
	for _, t := range tids {
		if err := vm.Wait(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TaskInfo describes one task for introspection ("pvm_tasks").
type TaskInfo struct {
	TID     TID
	Parent  TID
	Name    string
	Host    int
	Running bool
}

// Tasks lists every task ever spawned, in TID order, with its current
// state. It is the console's view of the machine.
func (vm *VM) Tasks() []TaskInfo {
	vm.mu.Lock()
	infos := make([]TaskInfo, 0, len(vm.tasks))
	for _, t := range vm.tasks {
		running := true
		select {
		case <-t.done:
			running = false
		default:
		}
		infos = append(infos, TaskInfo{
			TID: t.tid, Parent: t.parent, Name: t.name, Host: t.host, Running: running,
		})
	}
	vm.mu.Unlock()
	sortTaskInfos(infos)
	return infos
}

func sortTaskInfos(infos []TaskInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].TID < infos[j-1].TID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Send injects a message from outside the task system (console send); src
// may be 0.
func (vm *VM) Send(src, dst TID, tag int, body *Buffer) error {
	return vm.tr.deliver(&Message{Src: src, Dst: dst, Tag: tag, Body: body})
}

// Halt shuts the machine down: transports close and subsequent Spawn calls
// fail. Running tasks blocked in Recv are unblocked with an error
// ("pvm_halt").
func (vm *VM) Halt() error {
	vm.mu.Lock()
	if vm.halted {
		vm.mu.Unlock()
		return nil
	}
	vm.halted = true
	tasks := make([]*Task, 0, len(vm.tasks))
	for _, t := range vm.tasks {
		tasks = append(tasks, t)
	}
	vm.mu.Unlock()
	for _, t := range tasks {
		t.mb.close()
	}
	return vm.tr.close()
}
