package pvm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is a typed message buffer in the style of PVM's pack/unpack
// (pvm_initsend / pvm_pkint / pvm_upkint ...). Values are encoded
// big-endian (PvmDataDefault's XDR spirit) with a one-byte type tag per
// item, so mismatched unpacks fail loudly instead of silently corrupting —
// the classic PVM footgun.
//
// Pack methods append; Unpack methods consume from the front. A Buffer is
// not safe for concurrent use.
type Buffer struct {
	data []byte
	off  int
}

// NewBuffer returns an empty send buffer (pvm_initsend).
func NewBuffer() *Buffer { return &Buffer{} }

type wireType byte

const (
	wtInt32 wireType = iota + 1
	wtInt64
	wtFloat64
	wtString
	wtBytes
)

func (w wireType) String() string {
	switch w {
	case wtInt32:
		return "int32"
	case wtInt64:
		return "int64"
	case wtFloat64:
		return "float64"
	case wtString:
		return "string"
	case wtBytes:
		return "bytes"
	}
	return fmt.Sprintf("wireType(%d)", byte(w))
}

// Len returns the number of unconsumed bytes.
func (b *Buffer) Len() int { return len(b.data) - b.off }

// Bytes returns the full encoded contents (including consumed bytes);
// transports use it to frame messages.
func (b *Buffer) Bytes() []byte { return b.data }

// Reset clears the buffer for reuse.
func (b *Buffer) Reset() { b.data = b.data[:0]; b.off = 0 }

// Clone returns an independent copy with the read cursor rewound, so a
// message body can be fanned out to several receivers.
func (b *Buffer) Clone() *Buffer {
	return &Buffer{data: append([]byte(nil), b.data...)}
}

// bufferFromBytes wraps a received frame body.
func bufferFromBytes(p []byte) *Buffer { return &Buffer{data: p} }

func (b *Buffer) packHeader(t wireType) {
	b.data = append(b.data, byte(t))
}

// PackInt32 appends a 32-bit integer (pvm_pkint).
func (b *Buffer) PackInt32(v int32) *Buffer {
	b.packHeader(wtInt32)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(v))
	return b
}

// PackInt64 appends a 64-bit integer (pvm_pklong).
func (b *Buffer) PackInt64(v int64) *Buffer {
	b.packHeader(wtInt64)
	b.data = binary.BigEndian.AppendUint64(b.data, uint64(v))
	return b
}

// PackFloat64 appends a double (pvm_pkdouble).
func (b *Buffer) PackFloat64(v float64) *Buffer {
	b.packHeader(wtFloat64)
	b.data = binary.BigEndian.AppendUint64(b.data, math.Float64bits(v))
	return b
}

// PackString appends a length-prefixed string (pvm_pkstr).
func (b *Buffer) PackString(s string) *Buffer {
	b.packHeader(wtString)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(len(s)))
	b.data = append(b.data, s...)
	return b
}

// PackBytes appends a length-prefixed byte slice (pvm_pkbyte).
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.packHeader(wtBytes)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(len(p)))
	b.data = append(b.data, p...)
	return b
}

// PackFloat64s appends a vector of doubles as individual items.
func (b *Buffer) PackFloat64s(vs []float64) *Buffer {
	b.PackInt32(int32(len(vs)))
	for _, v := range vs {
		b.PackFloat64(v)
	}
	return b
}

func (b *Buffer) unpackHeader(want wireType) error {
	if b.Len() < 1 {
		return fmt.Errorf("pvm: unpack %s: buffer exhausted", want)
	}
	got := wireType(b.data[b.off])
	if got != want {
		return fmt.Errorf("pvm: unpack type mismatch: have %s, want %s", got, want)
	}
	b.off++
	return nil
}

func (b *Buffer) take(n int) ([]byte, error) {
	if b.Len() < n {
		return nil, fmt.Errorf("pvm: unpack: need %d bytes, have %d", n, b.Len())
	}
	p := b.data[b.off : b.off+n]
	b.off += n
	return p, nil
}

// UnpackInt32 consumes a 32-bit integer.
func (b *Buffer) UnpackInt32() (int32, error) {
	if err := b.unpackHeader(wtInt32); err != nil {
		return 0, err
	}
	p, err := b.take(4)
	if err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(p)), nil
}

// UnpackInt64 consumes a 64-bit integer.
func (b *Buffer) UnpackInt64() (int64, error) {
	if err := b.unpackHeader(wtInt64); err != nil {
		return 0, err
	}
	p, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(p)), nil
}

// UnpackFloat64 consumes a double.
func (b *Buffer) UnpackFloat64() (float64, error) {
	if err := b.unpackHeader(wtFloat64); err != nil {
		return 0, err
	}
	p, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(p)), nil
}

// UnpackString consumes a string.
func (b *Buffer) UnpackString() (string, error) {
	if err := b.unpackHeader(wtString); err != nil {
		return "", err
	}
	lp, err := b.take(4)
	if err != nil {
		return "", err
	}
	p, err := b.take(int(binary.BigEndian.Uint32(lp)))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// UnpackBytes consumes a byte slice (copied out of the buffer).
func (b *Buffer) UnpackBytes() ([]byte, error) {
	if err := b.unpackHeader(wtBytes); err != nil {
		return nil, err
	}
	lp, err := b.take(4)
	if err != nil {
		return nil, err
	}
	p, err := b.take(int(binary.BigEndian.Uint32(lp)))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), p...), nil
}

// UnpackFloat64s consumes a vector packed by PackFloat64s.
func (b *Buffer) UnpackFloat64s() ([]float64, error) {
	n, err := b.UnpackInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("pvm: negative vector length %d", n)
	}
	vs := make([]float64, n)
	for i := range vs {
		if vs[i], err = b.UnpackFloat64(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
