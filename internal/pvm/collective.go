package pvm

import (
	"fmt"
	"math"
)

// Collective operations over groups, mirroring PVM 3.3's pvm_reduce /
// pvm_gather / pvm_scatter. As in PVM, collectives are built on plain
// messages: every member must call the collective with the same root and
// tag, and the root receives/combines.

// ReduceOp combines two float64 values; PVM shipped PvmSum, PvmProduct,
// PvmMax, PvmMin.
type ReduceOp func(a, b float64) float64

// Built-in reduction operators.
var (
	OpSum     ReduceOp = func(a, b float64) float64 { return a + b }
	OpProduct ReduceOp = func(a, b float64) float64 { return a * b }
	OpMax     ReduceOp = math.Max
	OpMin     ReduceOp = math.Min
)

// Reduce combines each member's vector element-wise with op; the result
// lands on the root (identified by group instance number). Every group
// member must call Reduce with identical root, tag, op semantics and vector
// length. Non-root members return nil.
func (t *Task) Reduce(groupName string, rootInstance, tag int, op ReduceOp, values []float64) ([]float64, error) {
	members := t.GroupMembers(groupName)
	if len(members) == 0 {
		return nil, fmt.Errorf("pvm: reduce on empty group %q", groupName)
	}
	if rootInstance < 0 || rootInstance >= len(members) {
		return nil, fmt.Errorf("pvm: reduce root instance %d out of range (group size %d)", rootInstance, len(members))
	}
	root := members[rootInstance]
	if t.tid != root {
		return nil, t.Send(root, tag, NewBuffer().PackFloat64s(values))
	}
	acc := append([]float64(nil), values...)
	for i := 0; i < len(members)-1; i++ {
		m, err := t.Recv(AnyTID, tag)
		if err != nil {
			return nil, err
		}
		vs, err := m.Body.UnpackFloat64s()
		if err != nil {
			return nil, err
		}
		if len(vs) != len(acc) {
			return nil, fmt.Errorf("pvm: reduce length mismatch: %d vs %d", len(vs), len(acc))
		}
		for j := range acc {
			acc[j] = op(acc[j], vs[j])
		}
	}
	return acc, nil
}

// Gather collects each member's vector on the root, ordered by instance
// number (pvm_gather). Non-root members return nil.
func (t *Task) Gather(groupName string, rootInstance, tag int, values []float64) ([][]float64, error) {
	members := t.GroupMembers(groupName)
	if len(members) == 0 {
		return nil, fmt.Errorf("pvm: gather on empty group %q", groupName)
	}
	if rootInstance < 0 || rootInstance >= len(members) {
		return nil, fmt.Errorf("pvm: gather root instance %d out of range (group size %d)", rootInstance, len(members))
	}
	root := members[rootInstance]
	myIns := -1
	for i, m := range members {
		if m == t.tid {
			myIns = i
		}
	}
	if myIns < 0 {
		return nil, fmt.Errorf("pvm: task %v not in group %q", t.tid, groupName)
	}
	if t.tid != root {
		buf := NewBuffer().PackInt32(int32(myIns)).PackFloat64s(values)
		return nil, t.Send(root, tag, buf)
	}
	out := make([][]float64, len(members))
	out[rootInstance] = append([]float64(nil), values...)
	for i := 0; i < len(members)-1; i++ {
		m, err := t.Recv(AnyTID, tag)
		if err != nil {
			return nil, err
		}
		ins, err := m.Body.UnpackInt32()
		if err != nil {
			return nil, err
		}
		vs, err := m.Body.UnpackFloat64s()
		if err != nil {
			return nil, err
		}
		if ins < 0 || int(ins) >= len(out) {
			return nil, fmt.Errorf("pvm: gather instance %d out of range", ins)
		}
		if out[ins] != nil {
			return nil, fmt.Errorf("pvm: gather received instance %d twice", ins)
		}
		out[ins] = vs
	}
	return out, nil
}

// Scatter distributes consecutive chunks of the root's vector to members by
// instance number (pvm_scatter): member i receives values[i*chunk:(i+1)*chunk].
// Every member (root included) returns its own chunk. Non-root callers pass
// values=nil.
func (t *Task) Scatter(groupName string, rootInstance, tag, chunk int, values []float64) ([]float64, error) {
	members := t.GroupMembers(groupName)
	if len(members) == 0 {
		return nil, fmt.Errorf("pvm: scatter on empty group %q", groupName)
	}
	if rootInstance < 0 || rootInstance >= len(members) {
		return nil, fmt.Errorf("pvm: scatter root instance %d out of range (group size %d)", rootInstance, len(members))
	}
	if chunk < 1 {
		return nil, fmt.Errorf("pvm: scatter chunk must be >= 1, got %d", chunk)
	}
	root := members[rootInstance]
	if t.tid == root {
		if len(values) != chunk*len(members) {
			return nil, fmt.Errorf("pvm: scatter needs %d values, got %d", chunk*len(members), len(values))
		}
		for i, m := range members {
			part := values[i*chunk : (i+1)*chunk]
			if m == t.tid {
				continue
			}
			if err := t.Send(m, tag, NewBuffer().PackFloat64s(part)); err != nil {
				return nil, err
			}
		}
		own := make([]float64, chunk)
		copy(own, values[rootInstance*chunk:(rootInstance+1)*chunk])
		return own, nil
	}
	m, err := t.Recv(root, tag)
	if err != nil {
		return nil, err
	}
	return m.Body.UnpackFloat64s()
}
