package pvm

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestJoinGroupInstanceNumbers(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	instances := make(chan int, 4)
	tids, err := vm.SpawnN("member", 4, 0, func(task *Task) error {
		instances <- task.JoinGroup("workers")
		// Joining twice returns the same instance.
		first := task.JoinGroup("workers")
		second := task.JoinGroup("workers")
		if first != second {
			return fmt.Errorf("rejoin changed instance %d -> %d", first, second)
		}
		return task.Barrier("workers", 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll(tids); err != nil {
		t.Fatal(err)
	}
	close(instances)
	seen := map[int]bool{}
	for i := range instances {
		if seen[i] {
			t.Errorf("duplicate instance %d", i)
		}
		seen[i] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Errorf("instance %d missing", i)
		}
	}
}

func TestBarrierBlocksUntilCount(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	var reached, released int32
	n := 5
	tids, err := vm.SpawnN("b", n, 0, func(task *Task) error {
		task.JoinGroup("g")
		atomic.AddInt32(&reached, 1)
		if err := task.Barrier("g", n); err != nil {
			return err
		}
		// By the time anyone is released, all must have reached the barrier.
		if got := atomic.LoadInt32(&reached); got != int32(n) {
			return fmt.Errorf("released with only %d arrived", got)
		}
		atomic.AddInt32(&released, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll(tids); err != nil {
		t.Fatal(err)
	}
	if released != int32(n) {
		t.Errorf("released %d of %d", released, n)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	const rounds = 10
	var counter int32
	tids, err := vm.SpawnN("g", 3, 0, func(task *Task) error {
		task.JoinGroup("gen")
		for r := 0; r < rounds; r++ {
			atomic.AddInt32(&counter, 1)
			if err := task.Barrier("gen", 3); err != nil {
				return err
			}
			// After each barrier every member finished this round.
			if c := atomic.LoadInt32(&counter); int(c) < 3*(r+1) {
				return fmt.Errorf("round %d released early at count %d", r, c)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll(tids); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierRequiresMembership(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("outsider", 0, 0, func(task *Task) error {
		return task.Barrier("closed-club", 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err == nil {
		t.Error("barrier without join should fail")
	}
	tid2, err := vm.Spawn("badcount", 0, 0, func(task *Task) error {
		task.JoinGroup("g2")
		return task.Barrier("g2", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid2); err == nil {
		t.Error("barrier count 0 should fail")
	}
}

func TestLeaveGroup(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("lv", 0, 0, func(task *Task) error {
		task.JoinGroup("g")
		if n := task.GroupSize("g"); n != 1 {
			return fmt.Errorf("size %d", n)
		}
		if err := task.LeaveGroup("g"); err != nil {
			return err
		}
		if n := task.GroupSize("g"); n != 0 {
			return fmt.Errorf("size after leave %d", n)
		}
		if err := task.LeaveGroup("g"); err == nil {
			return fmt.Errorf("double leave should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

func TestGroupMembersOrderedByInstance(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	ready := make(chan struct{})
	var order []TID
	coord, err := vm.Spawn("coord", 0, 0, func(task *Task) error {
		<-ready
		order = task.GroupMembers("team")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var joined []TID
	for i := 0; i < 3; i++ {
		tid, err := vm.Spawn("m", i%2, 0, func(task *Task) error {
			task.JoinGroup("team")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Wait(tid); err != nil { // serialize joins → instance order
			t.Fatal(err)
		}
		joined = append(joined, tid)
	}
	close(ready)
	if err := vm.Wait(coord); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("members %v", order)
	}
	for i := range joined {
		if order[i] != joined[i] {
			t.Errorf("member order %v, want %v", order, joined)
		}
	}
}

func TestBcastGroup(t *testing.T) {
	vm := newTestVM(t, 3, InProc)
	const n = 3
	got := make(chan int32, n)
	// Members join, barrier, then instance 0 broadcasts.
	tids, err := vm.SpawnN("bc", n, 0, func(task *Task) error {
		ins := task.JoinGroup("bcast")
		if err := task.Barrier("bcast", n); err != nil {
			return err
		}
		if ins == 0 {
			return task.BcastGroup("bcast", 4, NewBuffer().PackInt32(99))
		}
		m, err := task.Recv(AnyTID, 4)
		if err != nil {
			return err
		}
		v, err := m.Body.UnpackInt32()
		if err != nil {
			return err
		}
		got <- v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll(tids); err != nil {
		t.Fatal(err)
	}
	close(got)
	count := 0
	for v := range got {
		if v != 99 {
			t.Errorf("payload %d", v)
		}
		count++
	}
	if count != n-1 {
		t.Errorf("%d members heard the broadcast, want %d", count, n-1)
	}
}
