package pvm

import "fmt"

// Dynamic reconfiguration and failure notification — the remaining PVM 3
// console surface: pvm_addhosts grows the machine at run time, and
// pvm_notify asks the system to deliver a message when a task exits, the
// primitive fault-tolerant PVM applications were built on.

// AddHost appends a new host daemon to a running virtual machine and
// returns its index. With the TCP transport the new daemon starts listening
// immediately.
func (vm *VM) AddHost(name string) (int, error) {
	vm.mu.Lock()
	if vm.halted {
		vm.mu.Unlock()
		return 0, fmt.Errorf("pvm: virtual machine halted")
	}
	if len(vm.daemons) >= maxHosts {
		vm.mu.Unlock()
		return 0, fmt.Errorf("pvm: host table full (%d)", maxHosts)
	}
	idx := len(vm.daemons)
	if name == "" {
		name = fmt.Sprintf("ws%d", idx)
	}
	d := &Daemon{vm: vm, index: idx, name: name, tasks: make(map[int]*Task)}
	vm.daemons = append(vm.daemons, d)
	tr := vm.tr
	vm.mu.Unlock()

	if tcp, ok := tr.(*tcpTransport); ok {
		if err := tcp.listen(d); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// exitTag is carried by notification messages.
const NotifyExitTag = -100

// Notify registers interest in the exit of task watched: when it
// terminates, the caller receives a message with tag NotifyExitTag whose
// body packs the watched TID (pvm_notify with PvmTaskExit). If the task has
// already exited the notification is delivered immediately.
func (t *Task) Notify(watched TID) error {
	target, err := t.vm.lookup(watched)
	if err != nil {
		return err
	}
	me := t.tid
	go func() {
		<-target.done
		// Delivery failure (the watcher itself exited) is dropped, as in
		// PVM.
		_ = t.vm.tr.deliver(&Message{
			Src:  watched,
			Dst:  me,
			Tag:  NotifyExitTag,
			Body: NewBuffer().PackInt32(int32(watched)),
		})
	}()
	return nil
}

// WaitExit blocks until a previously requested exit notification for any
// task arrives and returns the exited TID.
func (t *Task) WaitExit() (TID, error) {
	m, err := t.Recv(AnyTID, NotifyExitTag)
	if err != nil {
		return 0, err
	}
	v, err := m.Body.UnpackInt32()
	if err != nil {
		return 0, err
	}
	return TID(v), nil
}
