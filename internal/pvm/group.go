package pvm

import (
	"fmt"
	"sort"
	"sync"
)

// group implements PVM's dynamic process groups (the pvm_joingroup /
// pvm_barrier / pvm_bcast family). Groups are coordinated centrally by the
// VM, like PVM's group server.
type group struct {
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	members map[TID]int // tid → instance number
	nextIns int
	// barrier state: generation counting so reuse is safe
	barGen     int
	barWaiting int
}

func (vm *VM) groupByName(name string) *group {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	g, ok := vm.groups[name]
	if !ok {
		g = &group{name: name, members: make(map[TID]int)}
		g.cond = sync.NewCond(&g.mu)
		vm.groups[name] = g
	}
	return g
}

// JoinGroup adds the task to a named group and returns its instance number
// (pvm_joingroup).
func (t *Task) JoinGroup(name string) int {
	g := t.vm.groupByName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if ins, ok := g.members[t.tid]; ok {
		return ins
	}
	ins := g.nextIns
	g.nextIns++
	g.members[t.tid] = ins
	return ins
}

// LeaveGroup removes the task from the group (pvm_lvgroup).
func (t *Task) LeaveGroup(name string) error {
	g := t.vm.groupByName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[t.tid]; !ok {
		return fmt.Errorf("pvm: task %v not in group %q", t.tid, name)
	}
	delete(g.members, t.tid)
	return nil
}

// GroupSize returns the current member count (pvm_gsize).
func (t *Task) GroupSize(name string) int {
	g := t.vm.groupByName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// GroupMembers returns the member TIDs ordered by instance number.
func (t *Task) GroupMembers(name string) []TID {
	g := t.vm.groupByName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	tids := make([]TID, 0, len(g.members))
	for tid := range g.members {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return g.members[tids[i]] < g.members[tids[j]] })
	return tids
}

// Barrier blocks until count group members have reached it (pvm_barrier).
// The barrier is reusable: each generation releases together.
func (t *Task) Barrier(name string, count int) error {
	if count < 1 {
		return fmt.Errorf("pvm: barrier count must be >= 1, got %d", count)
	}
	g := t.vm.groupByName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[t.tid]; !ok {
		return fmt.Errorf("pvm: task %v must join group %q before barrier", t.tid, name)
	}
	gen := g.barGen
	g.barWaiting++
	if g.barWaiting >= count {
		g.barWaiting = 0
		g.barGen++
		g.cond.Broadcast()
		return nil
	}
	for g.barGen == gen {
		g.cond.Wait()
	}
	return nil
}

// BcastGroup sends buf to every group member except the caller (pvm_bcast).
func (t *Task) BcastGroup(name string, tag int, buf *Buffer) error {
	return t.Mcast(t.GroupMembers(name), tag, buf)
}
