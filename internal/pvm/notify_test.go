package pvm

import (
	"fmt"
	"testing"
)

func TestAddHostGrowsMachine(t *testing.T) {
	for _, kind := range []TransportKind{InProc, TCP} {
		kind := kind
		t.Run(fmt.Sprintf("transport=%d", kind), func(t *testing.T) {
			vm := newTestVM(t, 1, kind)
			if vm.Hosts() != 1 {
				t.Fatalf("hosts = %d", vm.Hosts())
			}
			idx, err := vm.AddHost("late-joiner")
			if err != nil {
				t.Fatal(err)
			}
			if idx != 1 || vm.Hosts() != 2 {
				t.Fatalf("idx=%d hosts=%d", idx, vm.Hosts())
			}
			d, err := vm.Daemon(1)
			if err != nil || d.Name() != "late-joiner" {
				t.Fatalf("daemon: %v %v", d, err)
			}
			// Tasks on the new host are reachable across transports.
			echo, err := vm.Spawn("echo", 1, 0, func(task *Task) error {
				m, err := task.Recv(AnyTID, 1)
				if err != nil {
					return err
				}
				return task.Send(m.Src, 2, m.Body)
			})
			if err != nil {
				t.Fatal(err)
			}
			ping, err := vm.Spawn("ping", 0, 0, func(task *Task) error {
				if err := task.Send(echo, 1, NewBuffer().PackInt32(5)); err != nil {
					return err
				}
				_, err := task.Recv(echo, 2)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.WaitAll([]TID{echo, ping}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAddHostDefaultName(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	idx, err := vm.AddHost("")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := vm.Daemon(idx)
	if d.Name() != "ws2" {
		t.Errorf("default name %q", d.Name())
	}
}

func TestAddHostAfterHaltFails(t *testing.T) {
	vm, err := NewVM(Config{Hosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	vm.Halt()
	if _, err := vm.AddHost("x"); err == nil {
		t.Error("AddHost after halt should fail")
	}
}

func TestNotifyDeliversOnExit(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	release := make(chan struct{})
	worker, err := vm.Spawn("mortal", 1, 0, func(task *Task) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan TID, 1)
	watcher, err := vm.Spawn("watcher", 0, 0, func(task *Task) error {
		if err := task.Notify(worker); err != nil {
			return err
		}
		close(release) // let the worker die only after we are watching
		tid, err := task.WaitExit()
		if err != nil {
			return err
		}
		got <- tid
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitAll([]TID{worker, watcher}); err != nil {
		t.Fatal(err)
	}
	if tid := <-got; tid != worker {
		t.Errorf("notified about %v, want %v", tid, worker)
	}
}

func TestNotifyAlreadyExited(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	dead, err := vm.Spawn("dead", 0, 0, func(task *Task) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(dead); err != nil {
		t.Fatal(err)
	}
	watcher, err := vm.Spawn("late-watcher", 0, 0, func(task *Task) error {
		if err := task.Notify(dead); err != nil {
			return err
		}
		tid, err := task.WaitExit()
		if err != nil {
			return err
		}
		if tid != dead {
			return fmt.Errorf("wrong tid %v", tid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(watcher); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyUnknownTask(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("w", 0, 0, func(task *Task) error {
		if err := task.Notify(makeTID(0, 999)); err == nil {
			return fmt.Errorf("notify on unknown task should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

// TestNotifyFaultTolerancePattern demonstrates the classic PVM restart
// pattern: a supervisor respawns a crashed worker on notification.
func TestNotifyFaultTolerancePattern(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	result := make(chan int32, 1)
	supervisor, err := vm.Spawn("supervisor", 0, 0, func(task *Task) error {
		work := func(w *Task) error {
			m, err := w.Recv(AnyTID, 1)
			if err != nil {
				return err
			}
			v, err := m.Body.UnpackInt32()
			if err != nil {
				return err
			}
			if v < 0 {
				panic("injected crash")
			}
			return w.Send(w.Parent(), 2, NewBuffer().PackInt32(v*2))
		}
		// First attempt crashes (negative input).
		w1, err := task.Spawn("worker", 1, work)
		if err != nil {
			return err
		}
		if err := task.Notify(w1); err != nil {
			return err
		}
		if err := task.Send(w1, 1, NewBuffer().PackInt32(-1)); err != nil {
			return err
		}
		crashed, err := task.WaitExit()
		if err != nil {
			return err
		}
		if crashed != w1 {
			return fmt.Errorf("unexpected exit %v", crashed)
		}
		// Respawn and retry with good input.
		w2, err := task.Spawn("worker", 1, work)
		if err != nil {
			return err
		}
		if err := task.Send(w2, 1, NewBuffer().PackInt32(21)); err != nil {
			return err
		}
		m, err := task.Recv(w2, 2)
		if err != nil {
			return err
		}
		v, err := m.Body.UnpackInt32()
		if err != nil {
			return err
		}
		result <- v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(supervisor); err != nil {
		t.Fatal(err)
	}
	if v := <-result; v != 42 {
		t.Errorf("restarted computation returned %d, want 42", v)
	}
}
