package pvm

import (
	"fmt"
)

// Task is the handle a running task uses to talk to the virtual machine —
// the libpvm API surface.
type Task struct {
	vm     *VM
	tid    TID
	parent TID
	name   string
	host   int
	mb     *mailbox
	done   chan struct{}
	err    error

	sent, received uint64
}

// run executes the body and performs the implicit pvm_exit.
func (t *Task) run(fn TaskFunc) {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("pvm: task %v (%s) panicked: %v", t.tid, t.name, r)
		}
		t.exit()
	}()
	t.err = fn(t)
}

// exit removes the task from its daemon's routing table (sends to the TID
// now fail, as in PVM) and closes its mailbox. The VM-level record is kept
// so Wait works after exit.
func (t *Task) exit() {
	d := t.vm.daemons[t.host]
	d.mu.Lock()
	delete(d.tasks, t.tid.local())
	d.mu.Unlock()
	t.mb.close()
	close(t.done)
}

// Mytid returns the task's identifier (pvm_mytid).
func (t *Task) Mytid() TID { return t.tid }

// Parent returns the spawning task's TID, or 0 for console-spawned tasks
// (pvm_parent).
func (t *Task) Parent() TID { return t.parent }

// Name returns the task's spawn name.
func (t *Task) Name() string { return t.name }

// Host returns the index of the host the task runs on.
func (t *Task) Host() int { return t.host }

// HostName returns the name of the host the task runs on.
func (t *Task) HostName() string { return t.vm.daemons[t.host].name }

// VM returns the owning virtual machine.
func (t *Task) VM() *VM { return t.vm }

// Send packs off buf to dst with the given tag (pvm_send). The buffer is
// cloned, so the caller may reuse it.
func (t *Task) Send(dst TID, tag int, buf *Buffer) error {
	if !dst.Valid() {
		return fmt.Errorf("pvm: send to invalid TID %v", dst)
	}
	t.sent++
	return t.vm.tr.deliver(&Message{Src: t.tid, Dst: dst, Tag: tag, Body: buf.Clone()})
}

// Mcast sends buf to every TID in dsts (pvm_mcast).
func (t *Task) Mcast(dsts []TID, tag int, buf *Buffer) error {
	for _, d := range dsts {
		if d == t.tid {
			continue
		}
		if err := t.Send(d, tag, buf); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks for the oldest message matching (src, tag); use AnyTID /
// AnyTag as wildcards (pvm_recv).
func (t *Task) Recv(src TID, tag int) (*Message, error) {
	m, err := t.mb.get(src, tag)
	if err != nil {
		return nil, err
	}
	t.received++
	return m, nil
}

// TryRecv is the non-blocking receive (pvm_nrecv).
func (t *Task) TryRecv(src TID, tag int) (*Message, bool) {
	m, ok := t.mb.tryGet(src, tag)
	if ok {
		t.received++
	}
	return m, ok
}

// Probe reports whether a matching message is waiting (pvm_probe).
func (t *Task) Probe(src TID, tag int) bool { return t.mb.probe(src, tag) }

// Stats returns the task's message counters.
func (t *Task) Stats() (sent, received uint64) { return t.sent, t.received }

// Spawn starts a child task on the given host with this task as parent.
func (t *Task) Spawn(name string, host int, fn TaskFunc) (TID, error) {
	return t.vm.Spawn(name, host, t.tid, fn)
}

// SpawnN starts n children round-robin across hosts with this task as
// parent.
func (t *Task) SpawnN(name string, n int, fn TaskFunc) ([]TID, error) {
	return t.vm.SpawnN(name, n, t.tid, fn)
}
