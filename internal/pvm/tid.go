// Package pvm is a PVM-flavoured message-passing library — the substrate
// the paper's experimental section runs on ("We have chosen to implement
// our parallel program using the PVM package", Section 4).
//
// It reproduces the PVM 3 programming model on a single machine: a virtual
// machine is assembled from hosts, each host runs a daemon, tasks are
// spawned onto hosts and addressed by task identifiers (TIDs), and tasks
// exchange typed, tagged messages through pack/unpack buffers. Two
// transports are provided: direct in-process delivery, and a TCP loopback
// transport (one stream per host pair, mirroring pvmd-to-pvmd UDP/TCP
// routing) for exercising a real network stack. Message delivery is FIFO
// per (sender, receiver) pair, matching PVM's ordering guarantee.
package pvm

import "fmt"

// TID identifies a task within a virtual machine. Like real PVM TIDs, it
// packs the host index and a per-host task number into one integer.
type TID int32

// AnyTID is the receive wildcard matching any sender (PVM's -1).
const AnyTID TID = -1

// AnyTag is the receive wildcard matching any message tag (PVM's -1).
const AnyTag = -1

const (
	hostShift = 18
	localMask = (1 << hostShift) - 1
	maxHosts  = 1 << 12
)

// makeTID builds a TID from a host index and per-host task number.
func makeTID(host, local int) TID {
	return TID((host+1)<<hostShift | (local & localMask))
}

// Host extracts the host index a TID lives on.
func (t TID) Host() int { return int(t)>>hostShift - 1 }

// local extracts the per-host task number.
func (t TID) local() int { return int(t) & localMask }

// Valid reports whether t is a concrete (non-wildcard, non-zero) TID.
func (t TID) Valid() bool { return t > 0 }

func (t TID) String() string {
	if t == AnyTID {
		return "t<any>"
	}
	if !t.Valid() {
		return fmt.Sprintf("t<invalid:%d>", int32(t))
	}
	return fmt.Sprintf("t%x", int32(t))
}
