package pvm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Message is one tagged message between tasks.
type Message struct {
	Src  TID
	Dst  TID
	Tag  int
	Body *Buffer
}

// matches reports whether the message satisfies a receive filter.
func (m *Message) matches(src TID, tag int) bool {
	return (src == AnyTID || m.Src == src) && (tag == AnyTag || m.Tag == tag)
}

// frame layout: u32 total-length | i32 src | i32 dst | i32 tag | body bytes.
const frameHeader = 4 + 4 + 4

// writeFrame serializes m onto w.
func writeFrame(w io.Writer, m *Message) error {
	body := m.Body.Bytes()
	hdr := make([]byte, 4+frameHeader)
	binary.BigEndian.PutUint32(hdr[0:], uint32(frameHeader+len(body)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(m.Src)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(int32(m.Dst)))
	binary.BigEndian.PutUint32(hdr[12:], uint32(int32(m.Tag)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame deserializes one message from r.
func readFrame(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < frameHeader || total > 1<<30 {
		return nil, fmt.Errorf("pvm: bad frame length %d", total)
	}
	p := make([]byte, total)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return &Message{
		Src:  TID(int32(binary.BigEndian.Uint32(p[0:]))),
		Dst:  TID(int32(binary.BigEndian.Uint32(p[4:]))),
		Tag:  int(int32(binary.BigEndian.Uint32(p[8:]))),
		Body: bufferFromBytes(p[frameHeader:]),
	}, nil
}

// mailbox is a task's incoming message queue with PVM matching semantics:
// Recv(src, tag) returns the oldest message satisfying the filter, blocking
// until one arrives. Unmatched messages stay queued.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []*Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// put enqueues a message and wakes blocked receivers.
func (mb *mailbox) put(m *Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return // messages to an exited task are dropped, as in PVM
	}
	mb.msgs = append(mb.msgs, m)
	mb.cond.Broadcast()
}

// errTaskExited reports a receive on a closed mailbox.
var errTaskExited = fmt.Errorf("pvm: task exited")

// get blocks until a message matching (src, tag) is available and removes
// it from the queue.
func (mb *mailbox) get(src TID, tag int) (*Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.closed {
			return nil, errTaskExited
		}
		for i, m := range mb.msgs {
			if m.matches(src, tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m, nil
			}
		}
		mb.cond.Wait()
	}
}

// tryGet is the non-blocking variant (pvm_nrecv).
func (mb *mailbox) tryGet(src TID, tag int) (*Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if m.matches(src, tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m, true
		}
	}
	return nil, false
}

// probe reports whether a matching message is queued (pvm_probe).
func (mb *mailbox) probe(src TID, tag int) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, m := range mb.msgs {
		if m.matches(src, tag) {
			return true
		}
	}
	return false
}

// close drops the queue and unblocks receivers with errTaskExited.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.msgs = nil
	mb.cond.Broadcast()
}
