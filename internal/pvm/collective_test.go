package pvm

import (
	"fmt"
	"math"
	"testing"
)

// runGroupProgram spawns n tasks that join a group, barrier, and then run
// body with their instance number; it waits for all and returns the first
// error.
func runGroupProgram(t *testing.T, vm *VM, group string, n int, body func(task *Task, ins int) error) error {
	t.Helper()
	tids, err := vm.SpawnN("member", n, 0, func(task *Task) error {
		ins := task.JoinGroup(group)
		if err := task.Barrier(group, n); err != nil {
			return err
		}
		return body(task, ins)
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm.WaitAll(tids)
}

func TestReduceSum(t *testing.T) {
	vm := newTestVM(t, 3, InProc)
	got := make(chan []float64, 1)
	err := runGroupProgram(t, vm, "r", 5, func(task *Task, ins int) error {
		vals := []float64{float64(ins), float64(ins * 10)}
		res, err := task.Reduce("r", 0, 30, OpSum, vals)
		if err != nil {
			return err
		}
		if ins == 0 {
			got <- res
		} else if res != nil {
			return fmt.Errorf("non-root received a result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-got
	// Sum over instances 0..4: 0+1+2+3+4 = 10; tens column 100.
	if len(res) != 2 || res[0] != 10 || res[1] != 100 {
		t.Errorf("reduce sum = %v, want [10 100]", res)
	}
}

func TestReduceMaxMinProduct(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	type out struct {
		max, min, prod float64
	}
	got := make(chan out, 1)
	err := runGroupProgram(t, vm, "ops", 4, func(task *Task, ins int) error {
		v := float64(ins + 1) // 1..4
		mx, err := task.Reduce("ops", 0, 31, OpMax, []float64{v})
		if err != nil {
			return err
		}
		mn, err := task.Reduce("ops", 0, 32, OpMin, []float64{v})
		if err != nil {
			return err
		}
		pr, err := task.Reduce("ops", 0, 33, OpProduct, []float64{v})
		if err != nil {
			return err
		}
		if ins == 0 {
			got <- out{mx[0], mn[0], pr[0]}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	o := <-got
	if o.max != 4 || o.min != 1 || o.prod != 24 {
		t.Errorf("max/min/prod = %v/%v/%v, want 4/1/24", o.max, o.min, o.prod)
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	got := make(chan float64, 1)
	err := runGroupProgram(t, vm, "root2", 3, func(task *Task, ins int) error {
		res, err := task.Reduce("root2", 2, 34, OpSum, []float64{1})
		if err != nil {
			return err
		}
		if ins == 2 {
			got <- res[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 3 {
		t.Errorf("sum = %v, want 3", v)
	}
}

func TestReduceErrors(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("lonely", 0, 0, func(task *Task) error {
		if _, err := task.Reduce("nogroup", 0, 1, OpSum, []float64{1}); err == nil {
			return fmt.Errorf("empty group should fail")
		}
		task.JoinGroup("g")
		if _, err := task.Reduce("g", 5, 1, OpSum, []float64{1}); err == nil {
			return fmt.Errorf("bad root should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

func TestGatherOrdersByInstance(t *testing.T) {
	vm := newTestVM(t, 4, InProc)
	got := make(chan [][]float64, 1)
	err := runGroupProgram(t, vm, "gth", 4, func(task *Task, ins int) error {
		res, err := task.Gather("gth", 1, 40, []float64{float64(ins), float64(ins) * 2})
		if err != nil {
			return err
		}
		if ins == 1 {
			got <- res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-got
	if len(res) != 4 {
		t.Fatalf("gathered %d rows", len(res))
	}
	for i, row := range res {
		if len(row) != 2 || row[0] != float64(i) || row[1] != float64(i)*2 {
			t.Errorf("row %d = %v", i, row)
		}
	}
}

func TestScatterChunks(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	sums := make(chan float64, 4)
	err := runGroupProgram(t, vm, "sct", 4, func(task *Task, ins int) error {
		var values []float64
		if ins == 0 {
			values = make([]float64, 12) // chunk 3 x 4 members
			for i := range values {
				values[i] = float64(i)
			}
		}
		chunk, err := task.Scatter("sct", 0, 41, 3, values)
		if err != nil {
			return err
		}
		if len(chunk) != 3 {
			return fmt.Errorf("chunk size %d", len(chunk))
		}
		// Member i must hold values 3i, 3i+1, 3i+2.
		for j, v := range chunk {
			if v != float64(3*ins+j) {
				return fmt.Errorf("instance %d chunk %v", ins, chunk)
			}
		}
		sums <- chunk[0] + chunk[1] + chunk[2]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 4; i++ {
		total += <-sums
	}
	if total != 66 { // 0+1+...+11
		t.Errorf("scattered total %v, want 66", total)
	}
}

func TestScatterValidation(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("v", 0, 0, func(task *Task) error {
		task.JoinGroup("sv")
		if _, err := task.Scatter("sv", 0, 1, 0, []float64{1}); err == nil {
			return fmt.Errorf("chunk 0 should fail")
		}
		if _, err := task.Scatter("sv", 0, 1, 2, []float64{1}); err == nil {
			return fmt.Errorf("wrong value count should fail")
		}
		if _, err := task.Scatter("sv", 3, 1, 1, []float64{1}); err == nil {
			return fmt.Errorf("bad root should fail")
		}
		// Valid single-member scatter.
		chunk, err := task.Scatter("sv", 0, 1, 2, []float64{7, 9})
		if err != nil {
			return err
		}
		if len(chunk) != 2 || chunk[0] != 7 || chunk[1] != 9 {
			return fmt.Errorf("self-scatter chunk %v", chunk)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

// TestCollectivePipelineOverTCP runs scatter → local work → reduce over the
// TCP transport, the full bulk-synchronous pattern.
func TestCollectivePipelineOverTCP(t *testing.T) {
	vm := newTestVM(t, 3, TCP)
	got := make(chan float64, 1)
	err := runGroupProgram(t, vm, "bsp", 3, func(task *Task, ins int) error {
		var values []float64
		if ins == 0 {
			values = []float64{1, 2, 3, 4, 5, 6} // chunks of 2
		}
		chunk, err := task.Scatter("bsp", 0, 50, 2, values)
		if err != nil {
			return err
		}
		local := chunk[0] * chunk[1] // pairwise products: 2, 12, 30
		res, err := task.Reduce("bsp", 0, 51, OpSum, []float64{local})
		if err != nil {
			return err
		}
		if ins == 0 {
			got <- res[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := <-got; math.Abs(v-44) > 1e-12 {
		t.Errorf("pipeline result %v, want 44", v)
	}
}
