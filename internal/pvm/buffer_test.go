package pvm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBufferRoundTripAllTypes(t *testing.T) {
	b := NewBuffer()
	b.PackInt32(-42).PackInt64(1 << 40).PackFloat64(3.14159).
		PackString("hello pvm").PackBytes([]byte{0, 1, 2, 255})
	if i, err := b.UnpackInt32(); err != nil || i != -42 {
		t.Fatalf("int32: %v %v", i, err)
	}
	if i, err := b.UnpackInt64(); err != nil || i != 1<<40 {
		t.Fatalf("int64: %v %v", i, err)
	}
	if f, err := b.UnpackFloat64(); err != nil || f != 3.14159 {
		t.Fatalf("float64: %v %v", f, err)
	}
	if s, err := b.UnpackString(); err != nil || s != "hello pvm" {
		t.Fatalf("string: %q %v", s, err)
	}
	p, err := b.UnpackBytes()
	if err != nil || len(p) != 4 || p[3] != 255 {
		t.Fatalf("bytes: %v %v", p, err)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer should be exhausted, %d left", b.Len())
	}
}

func TestBufferTypeMismatchFailsLoudly(t *testing.T) {
	b := NewBuffer().PackInt32(7)
	if _, err := b.UnpackFloat64(); err == nil {
		t.Fatal("unpacking int32 as float64 should fail")
	}
	// The failed unpack must not consume the item.
	if v, err := b.UnpackInt32(); err != nil || v != 7 {
		t.Fatalf("value lost after mismatch: %v %v", v, err)
	}
}

func TestBufferExhaustion(t *testing.T) {
	b := NewBuffer()
	if _, err := b.UnpackInt32(); err == nil {
		t.Fatal("unpack from empty buffer should fail")
	}
	b.PackString("x")
	if _, err := b.UnpackString(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UnpackString(); err == nil {
		t.Fatal("second unpack should fail")
	}
}

func TestBufferQuickRoundTrip(t *testing.T) {
	f := func(i32 int32, i64 int64, fl float64, s string, p []byte) bool {
		if math.IsNaN(fl) {
			return true // NaN != NaN; skip
		}
		b := NewBuffer().PackInt32(i32).PackInt64(i64).PackFloat64(fl).PackString(s).PackBytes(p)
		gi32, err := b.UnpackInt32()
		if err != nil || gi32 != i32 {
			return false
		}
		gi64, err := b.UnpackInt64()
		if err != nil || gi64 != i64 {
			return false
		}
		gfl, err := b.UnpackFloat64()
		if err != nil || gfl != fl {
			return false
		}
		gs, err := b.UnpackString()
		if err != nil || gs != s {
			return false
		}
		gp, err := b.UnpackBytes()
		if err != nil || string(gp) != string(p) {
			return false
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBufferFloat64Vector(t *testing.T) {
	want := []float64{1.5, -2.25, 1e300, 0}
	b := NewBuffer().PackFloat64s(want)
	got, err := b.UnpackFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestBufferCloneIndependent(t *testing.T) {
	b := NewBuffer().PackInt32(1).PackInt32(2)
	if _, err := b.UnpackInt32(); err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	// Clone rewinds: both items visible again.
	if v, err := c.UnpackInt32(); err != nil || v != 1 {
		t.Fatalf("clone first item: %v %v", v, err)
	}
	// Original cursor unaffected by clone reads.
	if v, err := b.UnpackInt32(); err != nil || v != 2 {
		t.Fatalf("original cursor moved: %v %v", v, err)
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer().PackString("junk")
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset buffer should be empty")
	}
	b.PackInt32(9)
	if v, err := b.UnpackInt32(); err != nil || v != 9 {
		t.Fatalf("after reset: %v %v", v, err)
	}
}

func TestTIDEncoding(t *testing.T) {
	for _, c := range []struct{ host, local int }{{0, 1}, {3, 77}, {4095, 1}} {
		tid := makeTID(c.host, c.local)
		if !tid.Valid() {
			t.Errorf("tid for host %d should be valid", c.host)
		}
		if tid.Host() != c.host {
			t.Errorf("host %d round-tripped to %d", c.host, tid.Host())
		}
		if tid.local() != c.local {
			t.Errorf("local %d round-tripped to %d", c.local, tid.local())
		}
	}
	if AnyTID.Valid() {
		t.Error("AnyTID must not be a valid concrete TID")
	}
	if TID(0).Valid() {
		t.Error("zero TID must be invalid")
	}
	for _, tid := range []TID{AnyTID, 0, makeTID(2, 5)} {
		if tid.String() == "" {
			t.Error("TID.String should be non-empty")
		}
	}
}

// TestBufferMixedSequenceRoundTrip packs a random sequence of mixed-type
// items and unpacks them in order, verifying type discipline end to end.
func TestBufferMixedSequenceRoundTrip(t *testing.T) {
	type item struct {
		Kind byte
		I32  int32
		I64  int64
		F    float64
		S    string
	}
	f := func(items []item) bool {
		b := NewBuffer()
		for i := range items {
			switch items[i].Kind % 4 {
			case 0:
				b.PackInt32(items[i].I32)
			case 1:
				b.PackInt64(items[i].I64)
			case 2:
				if math.IsNaN(items[i].F) {
					items[i].F = 0
				}
				b.PackFloat64(items[i].F)
			case 3:
				b.PackString(items[i].S)
			}
		}
		for i := range items {
			switch items[i].Kind % 4 {
			case 0:
				v, err := b.UnpackInt32()
				if err != nil || v != items[i].I32 {
					return false
				}
			case 1:
				v, err := b.UnpackInt64()
				if err != nil || v != items[i].I64 {
					return false
				}
			case 2:
				v, err := b.UnpackFloat64()
				if err != nil || v != items[i].F {
					return false
				}
			case 3:
				v, err := b.UnpackString()
				if err != nil || v != items[i].S {
					return false
				}
			}
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
