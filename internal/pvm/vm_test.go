package pvm

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func newTestVM(t *testing.T, hosts int, kind TransportKind) *VM {
	t.Helper()
	vm, err := NewVM(Config{Hosts: hosts, Transport: kind})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vm.Halt() })
	return vm
}

func TestVMConfigValidation(t *testing.T) {
	if _, err := NewVM(Config{Hosts: 0}); err == nil {
		t.Error("0 hosts should fail")
	}
	if _, err := NewVM(Config{Hosts: maxHosts + 1}); err == nil {
		t.Error("too many hosts should fail")
	}
	if _, err := NewVM(Config{Hosts: 2, HostNames: []string{"only-one"}}); err == nil {
		t.Error("host name count mismatch should fail")
	}
	if _, err := NewVM(Config{Hosts: 1, Transport: TransportKind(99)}); err == nil {
		t.Error("unknown transport should fail")
	}
}

func TestVMHostNames(t *testing.T) {
	vm, err := NewVM(Config{Hosts: 2, HostNames: []string{"elc0", "elc1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Halt()
	d, err := vm.Daemon(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "elc1" || d.Index() != 1 {
		t.Errorf("daemon = %q idx %d", d.Name(), d.Index())
	}
	if _, err := vm.Daemon(5); err == nil {
		t.Error("out-of-range host should fail")
	}
}

func TestPingPong(t *testing.T) {
	for _, kind := range []TransportKind{InProc, TCP} {
		kind := kind
		t.Run(fmt.Sprintf("transport=%d", kind), func(t *testing.T) {
			vm := newTestVM(t, 2, kind)
			echoTid, err := vm.Spawn("echo", 1, 0, func(task *Task) error {
				m, err := task.Recv(AnyTID, 1)
				if err != nil {
					return err
				}
				v, err := m.Body.UnpackInt32()
				if err != nil {
					return err
				}
				return task.Send(m.Src, 2, NewBuffer().PackInt32(v+1))
			})
			if err != nil {
				t.Fatal(err)
			}
			var got int32
			ping, err := vm.Spawn("ping", 0, 0, func(task *Task) error {
				if err := task.Send(echoTid, 1, NewBuffer().PackInt32(41)); err != nil {
					return err
				}
				m, err := task.Recv(echoTid, 2)
				if err != nil {
					return err
				}
				got, err = m.Body.UnpackInt32()
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.WaitAll([]TID{echoTid, ping}); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Errorf("pingpong result %d, want 42", got)
			}
		})
	}
}

func TestFIFOPerSenderReceiverPair(t *testing.T) {
	for _, kind := range []TransportKind{InProc, TCP} {
		kind := kind
		t.Run(fmt.Sprintf("transport=%d", kind), func(t *testing.T) {
			vm := newTestVM(t, 3, kind)
			const n = 200
			recvTid, err := vm.Spawn("sink", 2, 0, func(task *Task) error {
				last := map[TID]int32{}
				for i := 0; i < 2*n; i++ {
					m, err := task.Recv(AnyTID, AnyTag)
					if err != nil {
						return err
					}
					seq, err := m.Body.UnpackInt32()
					if err != nil {
						return err
					}
					if seq != last[m.Src]+1 {
						return fmt.Errorf("from %v: got seq %d after %d", m.Src, seq, last[m.Src])
					}
					last[m.Src] = seq
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			sender := func(task *Task) error {
				for i := int32(1); i <= n; i++ {
					if err := task.Send(recvTid, 5, NewBuffer().PackInt32(i)); err != nil {
						return err
					}
				}
				return nil
			}
			s1, err := vm.Spawn("s1", 0, 0, sender)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := vm.Spawn("s2", 1, 0, sender)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.WaitAll([]TID{recvTid, s1, s2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRecvTagFiltering(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("filter", 0, 0, func(task *Task) error {
		// tag-7 message must be returned even though tag-3 arrived first.
		m7, err := task.Recv(AnyTID, 7)
		if err != nil {
			return err
		}
		if v, _ := m7.Body.UnpackInt32(); v != 70 {
			return fmt.Errorf("tag 7 payload %d", v)
		}
		m3, err := task.Recv(AnyTID, 3)
		if err != nil {
			return err
		}
		if v, _ := m3.Body.UnpackInt32(); v != 30 {
			return fmt.Errorf("tag 3 payload %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Send(0, tid, 3, NewBuffer().PackInt32(30)); err != nil {
		t.Fatal(err)
	}
	if err := vm.Send(0, tid, 7, NewBuffer().PackInt32(70)); err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

func TestRecvSrcFiltering(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	gate := make(chan TID, 2)
	sink, err := vm.Spawn("sink", 0, 0, func(task *Task) error {
		want := <-gate // the specific source to wait for
		m, err := task.Recv(want, AnyTag)
		if err != nil {
			return err
		}
		if m.Src != want {
			return fmt.Errorf("recv from %v, want %v", m.Src, want)
		}
		// The other message is still queued.
		if !task.Probe(AnyTID, AnyTag) {
			return fmt.Errorf("other message should remain queued")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(host int) TID {
		tid, err := vm.Spawn("src", host, 0, func(task *Task) error {
			return task.Send(sink, 1, NewBuffer().PackInt32(int32(host)))
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Wait(tid); err != nil {
			t.Fatal(err)
		}
		return tid
	}
	mk(0)
	second := mk(1)
	gate <- second
	if err := vm.Wait(sink); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAndProbe(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("t", 0, 0, func(task *Task) error {
		// Filter on tag 8, which is never sent: must not match regardless of
		// whether the console's tag-9 message has arrived yet.
		if _, ok := task.TryRecv(AnyTID, 8); ok {
			return fmt.Errorf("TryRecv matched a never-sent tag")
		}
		if task.Probe(AnyTID, 8) {
			return fmt.Errorf("Probe matched a never-sent tag")
		}
		// Blocking receive to synchronize with the console send.
		if _, err := task.Recv(AnyTID, 9); err != nil {
			return err
		}
		if task.Probe(AnyTID, 9) {
			return fmt.Errorf("consumed message still probeable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Send(0, tid, 9, NewBuffer()); err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnNRoundRobin(t *testing.T) {
	vm := newTestVM(t, 4, InProc)
	var hostHits [4]int32
	tids, err := vm.SpawnN("worker", 8, 0, func(task *Task) error {
		atomic.AddInt32(&hostHits[task.Host()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 8 {
		t.Fatalf("spawned %d", len(tids))
	}
	if err := vm.WaitAll(tids); err != nil {
		t.Fatal(err)
	}
	for h, c := range hostHits {
		if c != 2 {
			t.Errorf("host %d ran %d tasks, want 2", h, c)
		}
	}
}

func TestParentChildRelationship(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	result := make(chan TID, 1)
	master, err := vm.Spawn("master", 0, 0, func(task *Task) error {
		child, err := task.Spawn("child", 1, func(c *Task) error {
			result <- c.Parent()
			return nil
		})
		if err != nil {
			return err
		}
		return task.VM().Wait(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(master); err != nil {
		t.Fatal(err)
	}
	if got := <-result; got != master {
		t.Errorf("child's parent = %v, want %v", got, master)
	}
	// Console-spawned master has no parent.
	done := make(chan TID, 1)
	orphan, _ := vm.Spawn("orphan", 0, 0, func(task *Task) error {
		done <- task.Parent()
		return nil
	})
	vm.Wait(orphan)
	if got := <-done; got != 0 {
		t.Errorf("console task parent = %v, want 0", got)
	}
}

func TestTaskErrorAndPanicPropagation(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	bad, err := vm.Spawn("bad", 0, 0, func(task *Task) error {
		return fmt.Errorf("deliberate failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(bad); err == nil {
		t.Error("task error should propagate through Wait")
	}
	pan, err := vm.Spawn("panicky", 0, 0, func(task *Task) error {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(pan); err == nil {
		t.Error("task panic should surface as error")
	}
}

func TestSendToUnknownTaskFails(t *testing.T) {
	vm := newTestVM(t, 1, InProc)
	tid, err := vm.Spawn("t", 0, 0, func(task *Task) error {
		return task.Send(makeTID(0, 999), 1, NewBuffer())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err == nil {
		t.Error("send to nonexistent task should fail")
	}
	if err := vm.Send(0, AnyTID, 1, NewBuffer()); err == nil {
		t.Error("send to wildcard should fail")
	}
}

func TestHaltUnblocksReceivers(t *testing.T) {
	vm, err := NewVM(Config{Hosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	tid, err := vm.Spawn("stuck", 0, 0, func(task *Task) error {
		_, err := task.Recv(AnyTID, AnyTag) // nothing will ever arrive
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Halt(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err == nil {
		t.Error("receiver should be unblocked with an error on halt")
	}
	if _, err := vm.Spawn("late", 0, 0, func(*Task) error { return nil }); err == nil {
		t.Error("spawn after halt should fail")
	}
	if err := vm.Halt(); err != nil {
		t.Errorf("double halt: %v", err)
	}
}

func TestTaskAccessors(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	tid, err := vm.Spawn("acc", 1, 0, func(task *Task) error {
		if task.Mytid() == 0 || task.Host() != 1 {
			return fmt.Errorf("bad tid/host")
		}
		if task.HostName() != "ws1" {
			return fmt.Errorf("host name %q", task.HostName())
		}
		if task.Name() != "acc" {
			return fmt.Errorf("name %q", task.Name())
		}
		if err := task.Send(task.Mytid(), 1, NewBuffer().PackInt32(1)); err != nil {
			return err
		}
		if _, err := task.Recv(task.Mytid(), 1); err != nil {
			return err
		}
		s, r := task.Stats()
		if s != 1 || r != 1 {
			return fmt.Errorf("stats %d/%d", s, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(tid); err != nil {
		t.Fatal(err)
	}
}

func TestMessageFrameRoundTrip(t *testing.T) {
	f := func(src, dst int32, tag int16, payload []byte) bool {
		m := &Message{
			Src: TID(src), Dst: TID(dst), Tag: int(tag),
			Body: NewBuffer().PackBytes(payload),
		}
		var sink frameSink
		if err := writeFrame(&sink, m); err != nil {
			return false
		}
		got, err := readFrame(&sink)
		if err != nil {
			return false
		}
		gp, err := got.Body.UnpackBytes()
		if err != nil {
			return false
		}
		return got.Src == m.Src && got.Dst == m.Dst && got.Tag == m.Tag && string(gp) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// frameSink is an in-memory io.ReadWriter for frame tests.
type frameSink struct{ buf []byte }

func (s *frameSink) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func (s *frameSink) Read(p []byte) (int, error) {
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

func TestTasksIntrospection(t *testing.T) {
	vm := newTestVM(t, 2, InProc)
	gate := make(chan struct{})
	running, err := vm.Spawn("runner", 1, 0, func(task *Task) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := vm.Spawn("finished", 0, 0, func(task *Task) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Wait(done); err != nil {
		t.Fatal(err)
	}
	infos := vm.Tasks()
	if len(infos) != 2 {
		t.Fatalf("tasks = %d, want 2", len(infos))
	}
	byTID := map[TID]TaskInfo{}
	for _, info := range infos {
		byTID[info.TID] = info
	}
	if info := byTID[running]; !info.Running || info.Host != 1 || info.Name != "runner" {
		t.Errorf("running task info: %+v", info)
	}
	if info := byTID[done]; info.Running {
		t.Errorf("finished task still reported running: %+v", info)
	}
	// Sorted by TID.
	for i := 1; i < len(infos); i++ {
		if infos[i].TID < infos[i-1].TID {
			t.Error("tasks not sorted by TID")
		}
	}
	close(gate)
	if err := vm.Wait(running); err != nil {
		t.Fatal(err)
	}
}
