package plot

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID:     "figX",
		Title:  "Sample",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
		},
	}
}

func TestSeriesValidate(t *testing.T) {
	if err := (Series{Name: "ok", X: []float64{1}, Y: []float64{2}}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Series{Name: "empty"}).Validate(); err == nil {
		t.Error("empty series should fail")
	}
	if err := (Series{Name: "ragged", X: []float64{1, 2}, Y: []float64{1}}).Validate(); err == nil {
		t.Error("ragged series should fail")
	}
	if err := (Figure{ID: "f"}).Validate(); err == nil {
		t.Error("figure without series should fail")
	}
}

func TestRenderASCII(t *testing.T) {
	out, err := RenderASCII(sampleFigure(), 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figX", "Sample", "x: x, y: y", "* a", "+ b"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if strings.Count(out, "\n") < 15 {
		t.Error("render too short")
	}
	if _, err := RenderASCII(sampleFigure(), 5, 2); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := RenderASCII(Figure{ID: "bad"}, 60, 15); err == nil {
		t.Error("invalid figure should fail")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	fig := Figure{
		ID: "const", Title: "flat", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "c", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}},
	}
	if _, err := RenderASCII(fig, 40, 8); err != nil {
		t.Fatalf("degenerate ranges must not fail: %v", err)
	}
}

func TestCSV(t *testing.T) {
	out, err := CSV(sampleFigure())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Errorf("rows = %d, want 4", len(lines))
	}
	if lines[1] != "0,0,4" {
		t.Errorf("row %q", lines[1])
	}
}

func TestCSVMismatchedXProducesBlanks(t *testing.T) {
	fig := Figure{
		ID: "m", Title: "m", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1}, Y: []float64{10}},
			{Name: "b", X: []float64{2}, Y: []float64{20}},
		},
	}
	out, err := CSV(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1,10,\n") || !strings.Contains(out, "2,,20\n") {
		t.Errorf("blank handling wrong:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	fig := Figure{
		ID: "e", Title: "e", XLabel: `x, "quoted"`, YLabel: "y",
		Series: []Series{{Name: "a,b", X: []float64{1}, Y: []float64{2}}},
	}
	out, err := CSV(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, `"x, ""quoted""","a,b"`) {
		t.Errorf("escaping wrong: %q", strings.Split(out, "\n")[0])
	}
}

func TestGnuplot(t *testing.T) {
	dat, script, err := Gnuplot(sampleFigure(), "figX.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dat, "# x") || !strings.Contains(dat, "0 0 4") {
		t.Errorf("dat malformed:\n%s", dat)
	}
	if !strings.Contains(script, `"figX.dat" using 1:2`) ||
		!strings.Contains(script, `using 1:3`) {
		t.Errorf("script malformed:\n%s", script)
	}
	if !strings.Contains(script, `set datafile missing "?"`) {
		t.Error("script must declare missing marker")
	}
}

func TestGnuplotMissingPoints(t *testing.T) {
	fig := Figure{
		ID: "m", Title: "m", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1}, Y: []float64{10}},
			{Name: "b", X: []float64{2}, Y: []float64{20}},
		},
	}
	dat, _, err := Gnuplot(fig, "m.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dat, "1 10 ?") || !strings.Contains(dat, "2 ? 20") {
		t.Errorf("missing markers wrong:\n%s", dat)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := Table{
		ID:      "tbl1",
		Title:   "thresholds",
		Columns: []string{"util", "ratio"},
		Rows:    [][]string{{"5%", "8"}, {"10%", "13"}},
	}
	out := tbl.Render()
	for _, want := range []string{"tbl1", "thresholds", "util", "ratio", "5%", "13"} {
		if !strings.Contains(out, want) {
			t.Errorf("table render missing %q", want)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "util,ratio\n5%,8\n") {
		t.Errorf("table csv wrong:\n%s", csv)
	}
}
