// Package plot renders the experiment results the way the paper presents
// them: line charts (here as terminal ASCII) plus machine-readable CSV and
// gnuplot emitters, since the Go ecosystem has no standard plotting stack.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Validate checks that X and Y are the same non-zero length.
func (s Series) Validate() error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// Figure is a titled set of curves over shared axes.
type Figure struct {
	ID     string // e.g. "fig07"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Validate checks all series.
func (f Figure) Validate() error {
	if len(f.Series) == 0 {
		return fmt.Errorf("plot: figure %q has no series", f.ID)
	}
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("plot: figure %q: %w", f.ID, err)
		}
	}
	return nil
}

// markers assigns one rune per series, cycling if needed.
var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&', '~', '^'}

// RenderASCII draws the figure on a width×height character grid with axis
// annotations and a legend.
func RenderASCII(f Figure, width, height int) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	if width < 20 || height < 5 {
		return "", fmt.Errorf("plot: grid %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			c := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			r := height - 1 - int(float64(height-1)*(s.Y[i]-minY)/(maxY-minY))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = mark
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&sb, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&sb, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%11s%-10.4g%*s%10.4g\n", "", minX, width-18, "", maxX)
	fmt.Fprintf(&sb, "%11sx: %s, y: %s\n", "", f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "%11s%c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return sb.String(), nil
}

// CSV renders the figure as a comma-separated table: the first column is
// the union of all X values; one column per series, blank where a series
// has no point at that X.
func CSV(f Figure) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	xs := unionX(f)
	var sb strings.Builder
	sb.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&sb, "%g", x)
		for _, s := range f.Series {
			sb.WriteByte(',')
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&sb, "%g", y)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Gnuplot renders a .dat block (space-separated, same layout as CSV with
// "?" for missing points) and a .gp script that plots every series.
func Gnuplot(f Figure, datName string) (dat, script string, err error) {
	if err := f.Validate(); err != nil {
		return "", "", err
	}
	xs := unionX(f)
	var d strings.Builder
	fmt.Fprintf(&d, "# %s — %s\n# x", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&d, " %q", s.Name)
	}
	d.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&d, "%g", x)
		for _, s := range f.Series {
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&d, " %g", y)
			} else {
				d.WriteString(" ?")
			}
		}
		d.WriteByte('\n')
	}
	var g strings.Builder
	fmt.Fprintf(&g, "set title %q\nset xlabel %q\nset ylabel %q\nset key outside\nset datafile missing \"?\"\nplot \\\n", f.Title, f.XLabel, f.YLabel)
	for i, s := range f.Series {
		sep := ", \\\n"
		if i == len(f.Series)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&g, "  %q using 1:%d with linespoints title %q%s", datName, i+2, s.Name, sep)
	}
	return d.String(), g.String(), nil
}

func unionX(f Figure) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookupY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table is a simple text table (the conclusions threshold table).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render draws the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var sb strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(csvEscape(c))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(cell))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
