package sim

import (
	"fmt"

	"feasim/internal/des"
	"feasim/internal/rng"
	"feasim/internal/stats"
)

// Multi-job extension. The paper assumes "there is one parallel job being
// executed on the system at a time" (Section 2); this simulator relaxes
// that: K parallel jobs circulate in a closed loop (compute → think →
// resubmit), their tasks sharing each workstation's leftover cycles FIFO
// behind the owner. It answers the follow-on question the paper's model
// cannot: how quickly does response time degrade when cycle-stealers
// compete with each other as well as with owners?

// MultiJobConfig configures the closed multi-job simulation.
type MultiJobConfig struct {
	// Stations describes the workstations (owner workloads).
	Stations []StationConfig
	// TaskDemand is the per-task demand distribution; each job forks one
	// task per station.
	TaskDemand rng.Dist
	// Jobs is the multiprogramming level K (the paper's model is K=1).
	Jobs int
	// JobThink is the time between a job's completion and its
	// resubmission.
	JobThink rng.Dist
	// Seed drives all sampling; WarmupPerJob executions of each job are
	// discarded.
	Seed         uint64
	WarmupPerJob int
}

// Validate checks the configuration.
func (c MultiJobConfig) Validate() error {
	if len(c.Stations) == 0 {
		return fmt.Errorf("sim: multi-job config needs stations")
	}
	if c.TaskDemand == nil || c.JobThink == nil {
		return fmt.Errorf("sim: multi-job config needs task demand and job think distributions")
	}
	if c.Jobs < 1 {
		return fmt.Errorf("sim: multi-job config needs at least one job, got %d", c.Jobs)
	}
	for i, s := range c.Stations {
		if s.OwnerThink == nil || s.OwnerDemand == nil {
			return fmt.Errorf("sim: station %d missing owner distributions", i)
		}
	}
	return nil
}

// MultiJobStats is the simulation output.
type MultiJobStats struct {
	// Response summarizes per-execution job response times (fork to join).
	Response stats.Summary
	// PerJob holds each job's own response-time summary.
	PerJob []stats.Summary
	// Throughput is completed executions per unit of simulated time.
	Throughput float64
	// ObservedUtil is the measured owner busy fraction.
	ObservedUtil float64
	// TaskQueueDelay summarizes how long tasks waited behind other jobs'
	// tasks (time in system minus service minus owner interference is not
	// separable per task here; this measures time from task start until
	// first service).
	Completed int64
}

// RunMultiJob simulates until every job has completed n measured
// executions (after warmup) and returns aggregate statistics.
func RunMultiJob(cfg MultiJobConfig, n int) (MultiJobStats, error) {
	if err := cfg.Validate(); err != nil {
		return MultiJobStats{}, err
	}
	if n < 1 {
		return MultiJobStats{}, fmt.Errorf("sim: need at least one measured execution per job")
	}
	w := len(cfg.Stations)
	eng := des.NewEngine()
	defer eng.Close()
	root := rng.NewStream(cfg.Seed)

	servers := make([]*des.PreemptiveServer, w)
	for i := range servers {
		servers[i] = eng.NewPreemptiveServer(fmt.Sprintf("ws%d", i))
	}
	for i, st := range cfg.Stations {
		i, st := i, st
		ostream := root.Split(uint64(1 + i))
		eng.Spawn(fmt.Sprintf("owner%d", i), func(p *des.Proc) {
			for {
				p.Hold(st.OwnerThink.Sample(ostream))
				servers[i].Use(p, st.OwnerDemand.Sample(ostream), PrioOwner)
			}
		})
	}

	out := MultiJobStats{PerJob: make([]stats.Summary, cfg.Jobs)}
	remaining := cfg.Jobs // jobs that have not finished their quota
	var measureStart float64
	measuring := false

	for j := 0; j < cfg.Jobs; j++ {
		j := j
		jstream := root.Split(uint64(1000 + j))
		eng.Spawn(fmt.Sprintf("job%d", j), func(p *des.Proc) {
			done := eng.NewMailbox(fmt.Sprintf("job%d.done", j))
			for exec := 0; exec < cfg.WarmupPerJob+n; exec++ {
				start := p.Now()
				for t := 0; t < w; t++ {
					t := t
					demand := cfg.TaskDemand.Sample(jstream)
					eng.Spawn(fmt.Sprintf("job%d.task%d", j, t), func(tp *des.Proc) {
						servers[t].Use(tp, demand, PrioTask)
						done.Send(struct{}{})
					})
				}
				for t := 0; t < w; t++ {
					done.Recv(p)
				}
				resp := p.Now() - start
				if exec >= cfg.WarmupPerJob {
					if !measuring {
						measuring = true
						measureStart = start
					}
					out.Response.Add(resp)
					out.PerJob[j].Add(resp)
					out.Completed++
				}
				p.Hold(cfg.JobThink.Sample(jstream))
			}
			remaining--
		})
	}

	for remaining > 0 && eng.Step() {
	}
	if remaining > 0 {
		return MultiJobStats{}, fmt.Errorf("sim: engine drained with %d jobs unfinished", remaining)
	}

	horizon := eng.Now() - measureStart
	if horizon > 0 {
		out.Throughput = float64(out.Completed) / horizon
	}
	var busy float64
	for _, s := range servers {
		busy += s.BusyTime(PrioOwner)
	}
	if eng.Now() > 0 {
		out.ObservedUtil = busy / (eng.Now() * float64(w))
	}
	return out, nil
}

// MultiJobSweep runs the simulation at each multiprogramming level,
// reporting mean response time and throughput per level — the saturation
// curve of a shared non-dedicated cluster.
type MultiJobPoint struct {
	Jobs         int
	MeanResponse float64
	Throughput   float64
}

// Sweep runs RunMultiJob for each K in levels with n measured executions
// per job.
func MultiJobSweepLevels(base MultiJobConfig, levels []int, n int) ([]MultiJobPoint, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("sim: sweep needs at least one level")
	}
	out := make([]MultiJobPoint, 0, len(levels))
	for _, k := range levels {
		cfg := base
		cfg.Jobs = k
		st, err := RunMultiJob(cfg, n)
		if err != nil {
			return nil, err
		}
		out = append(out, MultiJobPoint{
			Jobs:         k,
			MeanResponse: st.Response.Mean(),
			Throughput:   st.Throughput,
		})
	}
	return out, nil
}
