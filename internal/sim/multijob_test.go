package sim

import (
	"math"
	"testing"

	"feasim/internal/rng"
)

func multiCfg(w, jobs int) MultiJobConfig {
	base := HomogeneousGeometric(w, 100, 10, 1.0/90) // 10% owners
	return MultiJobConfig{
		Stations:     base.Stations,
		TaskDemand:   base.TaskDemand,
		Jobs:         jobs,
		JobThink:     rng.Exponential{M: 50},
		Seed:         77,
		WarmupPerJob: 5,
	}
}

func TestMultiJobValidate(t *testing.T) {
	bad := []MultiJobConfig{
		{},
		{Stations: multiCfg(2, 1).Stations, Jobs: 1},                                                                // missing dists
		{Stations: multiCfg(2, 1).Stations, TaskDemand: rng.Deterministic{V: 1}, JobThink: rng.Deterministic{V: 1}}, // Jobs 0
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := RunMultiJob(multiCfg(2, 1), 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestMultiJobSingleJobMatchesGeneral(t *testing.T) {
	// K=1 reduces to the paper's single-job model; compare against the
	// General simulator at the same operating point.
	cfg := multiCfg(6, 1)
	st, err := RunMultiJob(cfg, 400)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGeneral(HomogeneousGeometric(6, 100, 10, 1.0/90))
	if err != nil {
		t.Fatal(err)
	}
	gs, err := gen.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	var gm float64
	for _, s := range gs.Samples {
		gm += s.JobTime
	}
	gm /= float64(len(gs.Samples))
	if rel := math.Abs(st.Response.Mean()-gm) / gm; rel > 0.05 {
		t.Errorf("K=1 multi-job mean %.2f vs general %.2f (rel %.3f)", st.Response.Mean(), gm, rel)
	}
}

func TestMultiJobCompetitionDegradesResponse(t *testing.T) {
	// More competing jobs → longer mean response (tasks queue behind each
	// other at every station).
	pts, err := MultiJobSweepLevels(multiCfg(4, 0), []int{1, 2, 4}, 150)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanResponse <= pts[i-1].MeanResponse {
			t.Errorf("response did not grow: K=%d %.2f vs K=%d %.2f",
				pts[i-1].Jobs, pts[i-1].MeanResponse, pts[i].Jobs, pts[i].MeanResponse)
		}
	}
	// Sanity: even K=1 cannot beat the pure demand.
	if pts[0].MeanResponse < 100 {
		t.Errorf("K=1 mean response %.2f below task demand", pts[0].MeanResponse)
	}
}

func TestMultiJobThroughputBounded(t *testing.T) {
	// Throughput cannot exceed the cluster's task-capacity: W stations with
	// ~90% of cycles available, tasks of demand 100, each job needs W tasks
	// → at most (1-U)/100 jobs per unit time... per-station bound: a job
	// occupies each station for >= 100 units of service, so throughput
	// <= 0.9/100 jobs per time unit regardless of K.
	st, err := RunMultiJob(multiCfg(4, 3), 150)
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput > 0.9/100+1e-6 {
		t.Errorf("throughput %.5f exceeds service capacity bound %.5f", st.Throughput, 0.9/100)
	}
	if st.Throughput <= 0 {
		t.Error("throughput should be positive")
	}
	if st.Completed != int64(3*150) {
		t.Errorf("completed %d executions, want %d", st.Completed, 3*150)
	}
}

func TestMultiJobPerJobFairness(t *testing.T) {
	// Symmetric jobs should see similar means (FIFO within the task class).
	st, err := RunMultiJob(multiCfg(4, 3), 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerJob) != 3 {
		t.Fatalf("per-job summaries = %d", len(st.PerJob))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range st.PerJob {
		m := s.Mean()
		lo, hi = math.Min(lo, m), math.Max(hi, m)
	}
	if (hi-lo)/lo > 0.10 {
		t.Errorf("per-job means spread too wide: [%.2f, %.2f]", lo, hi)
	}
}

func TestMultiJobObservedUtil(t *testing.T) {
	st, err := RunMultiJob(multiCfg(4, 2), 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.ObservedUtil-0.10) > 0.02 {
		t.Errorf("observed owner utilization %.4f, configured 0.10", st.ObservedUtil)
	}
}

func TestMultiJobSweepErrors(t *testing.T) {
	if _, err := MultiJobSweepLevels(multiCfg(2, 0), nil, 10); err == nil {
		t.Error("empty sweep should fail")
	}
}
