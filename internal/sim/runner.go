package sim

import (
	"context"
	"fmt"

	"feasim/internal/core"
	"feasim/internal/stats"
)

// Protocol is the output-analysis protocol. DefaultProtocol matches the
// paper: "confidence intervals of 1 percent or less at a 90 percent
// confidence level ... batch means with 20 batches per simulation run and a
// batch size of 1000 samples".
type Protocol struct {
	Batches   int
	BatchSize int
	Level     float64
	// MaxRel, when positive, extends the run past Batches·BatchSize samples
	// until the relative CI half-width reaches it (or MaxSamples is hit).
	MaxRel     float64
	MaxSamples int64
}

// DefaultProtocol is the paper's protocol.
func DefaultProtocol() Protocol {
	return Protocol{Batches: 20, BatchSize: 1000, Level: 0.90, MaxRel: 0.01, MaxSamples: 2_000_000}
}

// Validate checks the protocol.
func (pr Protocol) Validate() error {
	if pr.Batches < 2 || pr.BatchSize < 1 {
		return fmt.Errorf("sim: protocol needs >= 2 batches and batch size >= 1")
	}
	if pr.Level <= 0 || pr.Level >= 1 {
		return fmt.Errorf("sim: confidence level must be in (0,1), got %v", pr.Level)
	}
	return nil
}

// RunResult is the output of a measured simulation run.
type RunResult struct {
	JobTime  stats.CI // batch-means CI on E_j
	MeanTask stats.CI // batch-means CI on E_t
	Samples  int64
	// MetPrecision reports whether the MaxRel target was reached (always
	// true when MaxRel is zero).
	MetPrecision bool
	// ObservedUtil is filled by general-model runs.
	ObservedUtil float64
}

// RunExact applies the protocol to the exact simulator.
func RunExact(x *Exact, pr Protocol) (RunResult, error) {
	return RunExactCtx(context.Background(), x, pr)
}

// RunExactCtx is RunExact with cancellation: the sampling loop checks ctx
// between batches and returns ctx.Err() on cancellation.
func RunExactCtx(ctx context.Context, x *Exact, pr Protocol) (RunResult, error) {
	if err := pr.Validate(); err != nil {
		return RunResult{}, err
	}
	job := stats.NewBatchMeans(pr.BatchSize)
	task := stats.NewBatchMeans(pr.BatchSize)
	gen := func() {
		s := x.Sample()
		job.Add(s.JobTime)
		task.Add(s.MeanTask)
	}
	return drive(ctx, job, task, gen, pr)
}

// RunGeneral applies the protocol to the general simulator. The engine runs
// in slabs of one batch between precision checks.
func RunGeneral(g *General, pr Protocol) (RunResult, error) {
	return RunGeneralCtx(context.Background(), g, pr)
}

// RunGeneralCtx is RunGeneral with cancellation: the engine checks ctx
// periodically while stepping and between precision attempts.
func RunGeneralCtx(ctx context.Context, g *General, pr Protocol) (RunResult, error) {
	if err := pr.Validate(); err != nil {
		return RunResult{}, err
	}
	// Precision-driven growth: run the protocol's minimum sample count,
	// then — if the relative CI half-width target is missed — keep the same
	// engine alive and extend the run, doubling the total each attempt.
	// Earlier samples are carried forward into the batch-means accumulators,
	// so nothing is re-simulated and owner-process continuity is preserved
	// by construction (the owners never stop between slabs).
	run := g.Start()
	defer run.Close()
	job := stats.NewBatchMeans(pr.BatchSize)
	task := stats.NewBatchMeans(pr.BatchSize)
	fed := 0
	feed := func() {
		for _, s := range run.Samples()[fed:] {
			job.Add(s.JobTime)
			task.Add(s.MeanTask)
		}
		fed = len(run.Samples())
	}
	total := pr.Batches * pr.BatchSize
	if err := run.Extend(ctx, total); err != nil {
		return RunResult{}, err
	}
	for attempt := 0; ; attempt++ {
		feed()
		res, err := summarize(job, task, pr)
		if err != nil {
			return RunResult{}, err
		}
		res.ObservedUtil = run.Stats().ObservedUtil
		if res.MetPrecision || pr.MaxRel <= 0 ||
			int64(2*total) > pr.MaxSamples || attempt >= 6 {
			return res, nil
		}
		if err := run.Extend(ctx, total); err != nil { // double the total
			return RunResult{}, err
		}
		total *= 2
	}
}

func drive(ctx context.Context, job, task *stats.BatchMeans, gen func(), pr Protocol) (RunResult, error) {
	minSamples := int64(pr.Batches * pr.BatchSize)
	for job.N() < minSamples {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
		for i := 0; i < pr.BatchSize; i++ {
			gen()
		}
	}
	res, err := summarize(job, task, pr)
	if err != nil {
		return RunResult{}, err
	}
	if pr.MaxRel > 0 {
		for !res.MetPrecision && job.N() < pr.MaxSamples {
			if err := ctx.Err(); err != nil {
				return RunResult{}, err
			}
			for i := 0; i < pr.BatchSize; i++ {
				gen()
			}
			res, err = summarize(job, task, pr)
			if err != nil {
				return RunResult{}, err
			}
		}
	}
	return res, nil
}

func summarize(job, task *stats.BatchMeans, pr Protocol) (RunResult, error) {
	jci, err := job.MeanCI(pr.Level)
	if err != nil {
		return RunResult{}, err
	}
	tci, err := task.MeanCI(pr.Level)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		JobTime:      jci,
		MeanTask:     tci,
		Samples:      job.N(),
		MetPrecision: pr.MaxRel <= 0 || jci.Relative() <= pr.MaxRel,
	}, nil
}

// ValidateAgainstAnalysis runs the exact simulator at p and reports whether
// the analytic E_j and E_t fall within the simulation confidence intervals —
// the paper's own validation procedure ("the simulation results were
// identical to the analysis thus verifying the correctness of analysis
// code"). A small tolerance widens the intervals to absorb CI misses at the
// configured level.
func ValidateAgainstAnalysis(p core.Params, pr Protocol, seed uint64, slack float64) (RunResult, core.Result, bool, error) {
	x, err := NewExact(p, seed)
	if err != nil {
		return RunResult{}, core.Result{}, false, err
	}
	run, err := RunExact(x, pr)
	if err != nil {
		return RunResult{}, core.Result{}, false, err
	}
	ana, err := core.Analyze(p)
	if err != nil {
		return RunResult{}, core.Result{}, false, err
	}
	jb := run.JobTime
	jb.HalfWidth *= 1 + slack
	tk := run.MeanTask
	tk.HalfWidth *= 1 + slack
	ok := jb.Contains(ana.EJob) && tk.Contains(ana.ETask)
	return run, ana, ok, nil
}
