package sim

import (
	"context"
	"testing"
)

func TestGeneralRunExtendMatchesOneShot(t *testing.T) {
	// Extending a run must carry samples forward, not re-simulate: the same
	// seeded simulator run as 30+70 incremental samples must produce exactly
	// the samples of a single 100-sample run.
	cfg := HomogeneousGeometric(4, 50, 10, 0.02)
	cfg.Seed = 42
	cfg.WarmupJobs = 3

	g1, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := g1.Start()
	defer run.Close()
	ctx := context.Background()
	if err := run.Extend(ctx, 30); err != nil {
		t.Fatal(err)
	}
	if got := len(run.Samples()); got != 30 {
		t.Fatalf("after first extend: %d samples, want 30", got)
	}
	if err := run.Extend(ctx, 70); err != nil {
		t.Fatal(err)
	}
	incremental := run.Samples()

	g2, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := g2.Run(100)
	if err != nil {
		t.Fatal(err)
	}

	if len(incremental) != len(oneShot.Samples) {
		t.Fatalf("incremental %d samples vs one-shot %d", len(incremental), len(oneShot.Samples))
	}
	for i := range incremental {
		if incremental[i] != oneShot.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, incremental[i], oneShot.Samples[i])
		}
	}
	if st := run.Stats(); st.ObservedUtil != oneShot.ObservedUtil {
		t.Errorf("observed util differs: %v vs %v", st.ObservedUtil, oneShot.ObservedUtil)
	}
}

func TestGeneralRunExtendRejectsBadCount(t *testing.T) {
	g, err := NewGeneral(HomogeneousGeometric(2, 20, 5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	run := g.Start()
	defer run.Close()
	if err := run.Extend(context.Background(), 0); err == nil {
		t.Error("Extend(0) should error")
	}
}

func TestGeneralRunExtendHonorsCancel(t *testing.T) {
	g, err := NewGeneral(HomogeneousGeometric(8, 500, 10, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	run := g.Start()
	defer run.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run.Extend(ctx, 1000); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunGeneralPrecisionGrowsWithoutRestart(t *testing.T) {
	// An unreachable precision target must make the runner extend the run in
	// doubling slabs up to the sample cap — and every slab's samples count
	// toward the result (carried forward, not discarded).
	cfg := HomogeneousGeometric(4, 100, 10, 1.0/90)
	cfg.Seed = 7
	g, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := Protocol{Batches: 4, BatchSize: 25, Level: 0.9, MaxRel: 1e-9, MaxSamples: 400}
	res, err := RunGeneral(g, pr)
	if err != nil {
		t.Fatal(err)
	}
	// 100 -> 200 -> 400: stops there because doubling again would pass the cap.
	if res.Samples != 400 {
		t.Errorf("samples = %d, want 400 (two doublings from 100)", res.Samples)
	}
	if res.MetPrecision {
		t.Error("1e-9 relative precision should not be met at 400 samples")
	}
}
