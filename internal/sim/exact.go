// Package sim reproduces the paper's simulation study (Section 2.2). Two
// engines are provided:
//
//   - Exact simulates the discrete-time model precisely as analyzed: owner
//     interruption opportunities occur after each unit of task progress with
//     probability P, each burst costs exactly O, and the task is guaranteed
//     one unit of progress between bursts. Its purpose — as in the paper —
//     is to validate the analysis: its estimates must fall within tight
//     confidence intervals of the analytic E_t and E_j.
//
//   - General drops the model's optimistic assumptions (the paper's three
//     "simplifying assumptions" in Section 2.1 and the future work of
//     Section 2.2): owner think times elapse in wall-clock time rather than
//     task progress (so the one-unit-progress guarantee disappears), owner
//     demands and task demands may follow any distribution, and stations may
//     be heterogeneous. It runs on the des engine with preemptive-priority
//     workstations.
//
// Output analysis follows the paper: batch means with 20 batches of 1000
// samples and 90% confidence intervals, targeting ≤1% relative half-width.
package sim

import (
	"fmt"

	"feasim/internal/core"
	"feasim/internal/rng"
)

// JobSample is one simulated execution of the parallel job.
type JobSample struct {
	JobTime     float64 // time until the last task completes
	MeanTask    float64 // mean task completion time over the W tasks
	MaxBursts   int     // owner bursts suffered by the slowest task
	TotalBursts int     // owner bursts over all tasks
}

// Exact is the discrete-time simulator of the analyzed model.
type Exact struct {
	p      core.Params
	trials int
	stream *rng.Stream
	think  rng.Geometric
}

// NewExact builds the exact simulator for the given model parameters.
func NewExact(p core.Params, seed uint64) (*Exact, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := p.TaskDemand()
	trials := int(t + 0.5)
	if float64(trials) != t {
		return nil, fmt.Errorf("sim: exact simulator requires integral task demand, got T=%v", t)
	}
	return &Exact{p: p, trials: trials, stream: rng.NewStream(seed), think: rng.Geometric{P: p.P}}, nil
}

// Params returns the simulated model parameters.
func (x *Exact) Params() core.Params { return x.p }

// taskBursts samples the number of owner bursts suffered by one task:
// Binomial(trials, P) drawn by geometric gap-jumping, which costs
// O(expected bursts) instead of O(T) per task.
func (x *Exact) taskBursts() int {
	if x.p.P <= 0 || x.p.O == 0 {
		return 0
	}
	n := 0
	pos := 0
	for {
		pos += int(x.think.Sample(x.stream))
		if pos > x.trials {
			return n
		}
		n++
	}
}

// Sample runs one job execution.
func (x *Exact) Sample() JobSample {
	t := x.p.TaskDemand()
	maxB, totB := 0, 0
	var sumTask float64
	for w := 0; w < x.p.W; w++ {
		b := x.taskBursts()
		totB += b
		if b > maxB {
			maxB = b
		}
		sumTask += t + float64(b)*x.p.O
	}
	return JobSample{
		JobTime:     t + float64(maxB)*x.p.O,
		MeanTask:    sumTask / float64(x.p.W),
		MaxBursts:   maxB,
		TotalBursts: totB,
	}
}

// SampleStepwise runs one job execution by walking every unit of task
// progress and flipping the owner coin at each, exactly as the model is
// described — an O(T·W) reference implementation used by tests to validate
// the gap-jumping sampler.
func (x *Exact) SampleStepwise() JobSample {
	t := x.p.TaskDemand()
	maxB, totB := 0, 0
	var sumTask float64
	for w := 0; w < x.p.W; w++ {
		b := 0
		for unit := 0; unit < x.trials; unit++ {
			if x.stream.Float64() < x.p.P {
				b++
			}
		}
		totB += b
		if b > maxB {
			maxB = b
		}
		sumTask += t + float64(b)*x.p.O
	}
	return JobSample{
		JobTime:     t + float64(maxB)*x.p.O,
		MeanTask:    sumTask / float64(x.p.W),
		MaxBursts:   maxB,
		TotalBursts: totB,
	}
}
