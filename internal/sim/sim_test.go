package sim

import (
	"math"
	"testing"

	"feasim/internal/core"
	"feasim/internal/rng"
	"feasim/internal/stats"
)

func mustParams(t *testing.T, j float64, w int, o, util float64) core.Params {
	t.Helper()
	p, err := core.ParamsFromUtilization(j, w, o, util)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactRejectsNonIntegralT(t *testing.T) {
	p := mustParams(t, 1000, 3, 10, 0.1) // T = 333.33
	if _, err := NewExact(p, 1); err == nil {
		t.Error("non-integral task demand should be rejected")
	}
}

func TestExactRejectsInvalidParams(t *testing.T) {
	if _, err := NewExact(core.Params{}, 1); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestExactDedicatedIsDeterministic(t *testing.T) {
	p := mustParams(t, 1000, 10, 10, 0)
	x, err := NewExact(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := x.Sample()
		if s.JobTime != 100 || s.MaxBursts != 0 {
			t.Fatalf("dedicated sample = %+v, want job time 100, no bursts", s)
		}
	}
}

func TestExactSampleReproducible(t *testing.T) {
	p := mustParams(t, 1000, 20, 10, 0.1)
	a, _ := NewExact(p, 42)
	b, _ := NewExact(p, 42)
	for i := 0; i < 100; i++ {
		sa, sb := a.Sample(), b.Sample()
		if sa != sb {
			t.Fatalf("same seed diverged at sample %d: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestExactBurstsMeanMatchesBinomial(t *testing.T) {
	// Mean bursts per task must be T·P for both samplers.
	p := mustParams(t, 2000, 20, 10, 0.1) // T=100, P=1/90
	want := 100 * p.P
	for name, sample := range map[string]func(*Exact) JobSample{
		"gap":      (*Exact).Sample,
		"stepwise": (*Exact).SampleStepwise,
	} {
		x, _ := NewExact(p, 99)
		var tot float64
		const n = 4000
		for i := 0; i < n; i++ {
			tot += float64(sample(x).TotalBursts)
		}
		got := tot / (n * 20)
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("%s sampler: mean bursts/task %.4f, want %.4f", name, got, want)
		}
	}
}

func TestGapAndStepwiseSamplersAgree(t *testing.T) {
	// The O(bursts) gap sampler and the O(T) stepwise reference must draw
	// from the same distribution: compare means of job time and max bursts.
	p := mustParams(t, 600, 6, 10, 0.15) // T=100
	const n = 6000
	var gapJob, stepJob, gapMax, stepMax float64
	xg, _ := NewExact(p, 11)
	xs, _ := NewExact(p, 12)
	for i := 0; i < n; i++ {
		g, s := xg.Sample(), xs.SampleStepwise()
		gapJob += g.JobTime
		stepJob += s.JobTime
		gapMax += float64(g.MaxBursts)
		stepMax += float64(s.MaxBursts)
	}
	gapJob, stepJob, gapMax, stepMax = gapJob/n, stepJob/n, gapMax/n, stepMax/n
	if math.Abs(gapJob-stepJob) > 0.01*stepJob {
		t.Errorf("job-time means differ: gap %.3f vs stepwise %.3f", gapJob, stepJob)
	}
	if math.Abs(gapMax-stepMax) > 0.05*stepMax {
		t.Errorf("max-burst means differ: gap %.3f vs stepwise %.3f", gapMax, stepMax)
	}
}

// TestValidationAgainstAnalysis is the paper's Section 2.2 procedure: "We
// duplicated the experiment found in figure 1 of this paper and the
// simulation results were identical to the analysis." We run a scaled-down
// protocol over several Figure 1 points and require the analytic values to
// fall inside (slightly widened) simulation confidence intervals.
func TestValidationAgainstAnalysis(t *testing.T) {
	pr := Protocol{Batches: 20, BatchSize: 500, Level: 0.90, MaxRel: 0, MaxSamples: 1 << 20}
	seed := uint64(2024)
	for _, w := range []int{1, 10, 50, 100} {
		for _, util := range []float64{0.01, 0.1, 0.2} {
			p := mustParams(t, 1000, w, 10, util)
			if p.TaskDemand() != math.Trunc(p.TaskDemand()) {
				continue
			}
			run, ana, ok, err := ValidateAgainstAnalysis(p, pr, seed, 0.6)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("W=%d util=%v: analysis E_j=%.3f E_t=%.3f outside simulation CIs %v / %v",
					w, util, ana.EJob, ana.ETask, run.JobTime, run.MeanTask)
			}
			seed++
		}
	}
}

func TestRunExactPrecisionLoop(t *testing.T) {
	p := mustParams(t, 1000, 10, 10, 0.1)
	x, err := NewExact(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	pr := Protocol{Batches: 10, BatchSize: 100, Level: 0.90, MaxRel: 0.005, MaxSamples: 500_000}
	res, err := RunExact(x, pr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MetPrecision {
		t.Errorf("precision not met after %d samples (rel=%v)", res.Samples, res.JobTime.Relative())
	}
	if res.JobTime.Relative() > 0.005 {
		t.Errorf("relative width %v above target", res.JobTime.Relative())
	}
	if res.Samples < 1000 {
		t.Errorf("must run at least the minimum %d samples, ran %d", 1000, res.Samples)
	}
}

func TestProtocolValidate(t *testing.T) {
	bad := []Protocol{
		{Batches: 1, BatchSize: 10, Level: 0.9},
		{Batches: 5, BatchSize: 0, Level: 0.9},
		{Batches: 5, BatchSize: 10, Level: 0},
		{Batches: 5, BatchSize: 10, Level: 1},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, pr)
		}
	}
	if err := DefaultProtocol().Validate(); err != nil {
		t.Errorf("default protocol invalid: %v", err)
	}
}

func TestHomogeneousGeometricConfig(t *testing.T) {
	cfg := HomogeneousGeometric(12, 100, 10, 0.01)
	if len(cfg.Stations) != 12 {
		t.Fatalf("stations = %d", len(cfg.Stations))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// U = O/(1/P + O) = 10/110.
	want := 10.0 / 110
	if got := cfg.MeanUtilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("configured utilization %v, want %v", got, want)
	}
	if got := cfg.TaskDemand.Mean(); got != 100 {
		t.Errorf("task demand mean %v", got)
	}
}

func TestGeneralConfigValidate(t *testing.T) {
	if err := (GeneralConfig{}).Validate(); err == nil {
		t.Error("empty config should fail")
	}
	cfg := HomogeneousGeometric(2, 10, 10, 0.01)
	cfg.TaskDemand = nil
	if err := cfg.Validate(); err == nil {
		t.Error("missing task demand should fail")
	}
	cfg2 := HomogeneousGeometric(2, 10, 10, 0.01)
	cfg2.Stations[1].OwnerThink = nil
	if err := cfg2.Validate(); err == nil {
		t.Error("missing owner think should fail")
	}
	if _, err := NewGeneral(GeneralConfig{}); err == nil {
		t.Error("NewGeneral should reject invalid config")
	}
}

func TestGeneralDedicatedMatchesDemand(t *testing.T) {
	// Owners that never compute: job time equals task demand exactly.
	cfg := GeneralConfig{
		TaskDemand: rng.Deterministic{V: 50},
		Seed:       3,
	}
	for i := 0; i < 4; i++ {
		cfg.Stations = append(cfg.Stations, StationConfig{
			OwnerThink:  rng.Deterministic{V: 1e12},
			OwnerDemand: rng.Deterministic{V: 0},
		})
	}
	g, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st.Samples {
		if s.JobTime != 50 {
			t.Errorf("dedicated job time %v, want 50", s.JobTime)
		}
	}
}

func TestGeneralObservedUtilizationMatchesConfig(t *testing.T) {
	cfg := HomogeneousGeometric(4, 100, 10, 1.0/90) // 10% utilization
	cfg.Seed = 17
	cfg.WarmupJobs = 20
	g, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.MeanUtilization()
	if math.Abs(st.ObservedUtil-want) > 0.015 {
		t.Errorf("observed owner utilization %.4f, configured %.4f", st.ObservedUtil, want)
	}
	if st.Preemptions == 0 {
		t.Error("expected some task preemptions at 10% utilization")
	}
}

// TestGeneralTracksAnalysisAtLowUtilization: with the paper's geometric
// workload, wall-clock owner thinking (the General model) should stay close
// to the task-progress model at light load — the regime of the paper's
// measured 3% system.
func TestGeneralTracksAnalysisAtLowUtilization(t *testing.T) {
	p := mustParams(t, 1200, 12, 10, 0.03)
	cfg := HomogeneousGeometric(12, 100, 10, p.P)
	cfg.Seed = 23
	cfg.WarmupJobs = 10
	g, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	var sum stats.Summary
	for _, s := range st.Samples {
		sum.Add(s.JobTime)
	}
	ana := core.MustAnalyze(p)
	if rel := math.Abs(sum.Mean()-ana.EJob) / ana.EJob; rel > 0.05 {
		t.Errorf("general model mean job time %.2f vs analysis %.2f (rel %.3f)",
			sum.Mean(), ana.EJob, rel)
	}
}

func TestGeneralImbalanceHurts(t *testing.T) {
	// Paper Section 2.1 optimism point 1: deterministic task times are the
	// best case; imbalance (same mean, positive variance) raises E_j.
	mean := func(samples []JobSample) float64 {
		var s stats.Summary
		for _, x := range samples {
			s.Add(x.JobTime)
		}
		return s.Mean()
	}
	base := HomogeneousGeometric(8, 100, 10, 1.0/90)
	base.Seed = 31
	gb, _ := NewGeneral(base)
	sb, err := gb.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	imb := HomogeneousGeometric(8, 100, 10, 1.0/90)
	imb.TaskDemand = rng.Uniform{Lo: 50, Hi: 150} // same mean 100
	imb.Seed = 31
	gi, _ := NewGeneral(imb)
	si, err := gi.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if mean(si.Samples) <= mean(sb.Samples) {
		t.Errorf("imbalanced tasks should raise job time: balanced %.2f, imbalanced %.2f",
			mean(sb.Samples), mean(si.Samples))
	}
}

func TestGeneralHigherVarianceOwnersHurt(t *testing.T) {
	// Paper Section 2.1 optimism point 2: deterministic owner demands are
	// optimistic; hyperexponential demands with the same mean raise E_j.
	mean := func(samples []JobSample) float64 {
		var s stats.Summary
		for _, x := range samples {
			s.Add(x.JobTime)
		}
		return s.Mean()
	}
	det := HomogeneousGeometric(8, 100, 10, 1.0/90)
	det.Seed = 37
	gd, _ := NewGeneral(det)
	sd, err := gd.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	hv := HomogeneousGeometric(8, 100, 10, 1.0/90)
	for i := range hv.Stations {
		hv.Stations[i].OwnerDemand = rng.BalancedHyperExp(10, 16)
	}
	hv.Seed = 37
	gh, _ := NewGeneral(hv)
	sh, err := gh.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if mean(sh.Samples) <= mean(sd.Samples) {
		t.Errorf("high-variance owners should raise job time: det %.2f, hyper %.2f",
			mean(sd.Samples), mean(sh.Samples))
	}
}

func TestRunGeneralProtocol(t *testing.T) {
	cfg := HomogeneousGeometric(4, 50, 10, 1.0/90)
	cfg.Seed = 41
	g, err := NewGeneral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := Protocol{Batches: 5, BatchSize: 50, Level: 0.90, MaxRel: 0, MaxSamples: 1 << 20}
	res, err := RunGeneral(g, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 250 {
		t.Errorf("samples = %d, want 250", res.Samples)
	}
	if res.JobTime.Mean < 50 {
		t.Errorf("job time %v below task demand", res.JobTime.Mean)
	}
	if res.ObservedUtil <= 0 {
		t.Error("observed utilization should be positive")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cfg := HomogeneousGeometric(2, 10, 10, 0.01)
	g, _ := NewGeneral(cfg)
	if _, err := g.Run(0); err == nil {
		t.Error("Run(0) should error")
	}
	if _, err := RunGeneral(g, Protocol{}); err == nil {
		t.Error("invalid protocol should error")
	}
	x, _ := NewExact(mustParams(t, 100, 10, 10, 0.1), 1)
	if _, err := RunExact(x, Protocol{}); err == nil {
		t.Error("invalid protocol should error")
	}
}
