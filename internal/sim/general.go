package sim

import (
	"context"
	"fmt"

	"feasim/internal/des"
	"feasim/internal/rng"
)

// Priorities on the workstation CPU: owner processes preempt parallel tasks.
const (
	PrioTask  = 0
	PrioOwner = 1
)

// StationConfig describes the owner workload of one workstation in the
// general model. Owner processes cycle: think (wall-clock) then compute for
// a sampled demand at preemptive priority.
type StationConfig struct {
	OwnerThink  rng.Dist // wall-clock think time between owner bursts
	OwnerDemand rng.Dist // owner burst service demand
	// Speed scales task execution: a sampled task demand d takes d/Speed
	// units of CPU on this station. Owner bursts are wall-clock and are
	// not scaled. Zero means the reference rate 1.
	Speed float64
}

// speed returns the effective task-execution rate, defaulting 0 to 1.
func (c StationConfig) speed() float64 {
	if c.Speed == 0 {
		return 1
	}
	return c.Speed
}

// Utilization returns the station's long-run owner utilization
// E[demand] / (E[think] + E[demand]).
func (c StationConfig) Utilization() float64 {
	d, z := c.OwnerDemand.Mean(), c.OwnerThink.Mean()
	if d <= 0 {
		return 0
	}
	return d / (z + d)
}

// GeneralConfig configures the des-based simulator.
type GeneralConfig struct {
	// Stations lists per-workstation owner workloads; len(Stations) is W.
	// Homogeneous systems repeat the same StationConfig.
	Stations []StationConfig
	// TaskDemand is the per-task demand distribution. The paper's model is
	// Deterministic{J/W}; imbalance ablations use wider distributions.
	TaskDemand rng.Dist
	// Seed drives all sampling.
	Seed uint64
	// WarmupJobs are discarded executions that bring the owner processes to
	// steady state before measurement begins.
	WarmupJobs int
}

// HomogeneousGeometric builds the general-model configuration matching the
// paper's workload: W identical stations, geometric owner think with
// per-unit probability p, deterministic owner burst o, deterministic task
// demand t.
func HomogeneousGeometric(w int, t, o, p float64) GeneralConfig {
	st := StationConfig{
		OwnerThink:  rng.Geometric{P: p},
		OwnerDemand: rng.Deterministic{V: o},
	}
	cfg := GeneralConfig{TaskDemand: rng.Deterministic{V: t}}
	for i := 0; i < w; i++ {
		cfg.Stations = append(cfg.Stations, st)
	}
	return cfg
}

// Validate checks the configuration.
func (c GeneralConfig) Validate() error {
	if len(c.Stations) == 0 {
		return fmt.Errorf("sim: general config needs at least one station")
	}
	if c.TaskDemand == nil {
		return fmt.Errorf("sim: general config needs a task demand distribution")
	}
	for i, s := range c.Stations {
		if s.OwnerThink == nil || s.OwnerDemand == nil {
			return fmt.Errorf("sim: station %d missing owner distributions", i)
		}
		if s.Speed < 0 {
			return fmt.Errorf("sim: station %d speed must be >= 0, got %v", i, s.Speed)
		}
	}
	return nil
}

// MeanUtilization is the average configured owner utilization across
// stations.
func (c GeneralConfig) MeanUtilization() float64 {
	var sum float64
	for _, s := range c.Stations {
		sum += s.Utilization()
	}
	return sum / float64(len(c.Stations))
}

// General is the des-based simulator. Each Run constructs a fresh engine;
// jobs execute back-to-back against continuously running owner processes.
type General struct {
	cfg GeneralConfig
}

// NewGeneral builds the simulator.
func NewGeneral(cfg GeneralConfig) (*General, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &General{cfg: cfg}, nil
}

// GeneralStats augments the job samples with observed station behaviour.
type GeneralStats struct {
	Samples []JobSample
	// ObservedUtil is the measured owner busy fraction averaged over
	// stations, to be compared against the configured utilization.
	ObservedUtil float64
	// Preemptions counts task preemptions by owner processes.
	Preemptions uint64
}

// Run simulates n measured job executions (after warmup) and returns the
// samples plus observed statistics.
func (g *General) Run(n int) (GeneralStats, error) {
	return g.RunCtx(context.Background(), n)
}

// RunCtx is Run with cancellation: the event loop checks ctx periodically
// and returns ctx.Err() once cancelled.
func (g *General) RunCtx(ctx context.Context, n int) (GeneralStats, error) {
	if n < 1 {
		return GeneralStats{}, fmt.Errorf("sim: need at least one sample, got %d", n)
	}
	run := g.Start()
	defer run.Close()
	if err := run.Extend(ctx, n); err != nil {
		return GeneralStats{}, err
	}
	return run.Stats(), nil
}

// GeneralRun is an in-progress general-model simulation that can be extended
// incrementally: the owner processes and the job driver keep running between
// Extend calls, so a precision-driven protocol (sim.RunGeneralCtx) grows the
// sample set without discarding earlier work or breaking owner-process
// continuity. Close must be called to release the engine's goroutines.
type GeneralRun struct {
	g       *General
	eng     *des.Engine
	servers []*des.PreemptiveServer
	samples []JobSample
}

// Start spins up the engine: owner processes on every station and a driver
// that executes jobs back-to-back indefinitely (discarding WarmupJobs first).
// No simulated time elapses until the first Extend.
func (g *General) Start() *GeneralRun {
	w := len(g.cfg.Stations)
	r := &GeneralRun{g: g, eng: des.NewEngine()}

	root := rng.NewStream(g.cfg.Seed)
	taskStream := root.Split(0)

	r.servers = make([]*des.PreemptiveServer, w)
	for i := range r.servers {
		r.servers[i] = r.eng.NewPreemptiveServer(fmt.Sprintf("ws%d", i))
	}

	// Owner processes: run forever; Close unwinds them at the end.
	for i, st := range g.cfg.Stations {
		i, st := i, st
		ostream := root.Split(uint64(1 + i))
		r.eng.Spawn(fmt.Sprintf("owner%d", i), func(p *des.Proc) {
			for {
				p.Hold(st.OwnerThink.Sample(ostream))
				r.servers[i].Use(p, st.OwnerDemand.Sample(ostream), PrioOwner)
			}
		})
	}

	doneMB := r.eng.NewMailbox("taskdone")
	r.eng.Spawn("driver", func(p *des.Proc) {
		for job := 0; ; job++ {
			jobStart := p.Now()
			var sumTask, maxTask float64
			for t := 0; t < w; t++ {
				t := t
				// Per-station speed scales the sampled demand into
				// effective CPU time; owner bursts stay wall-clock.
				demand := g.cfg.TaskDemand.Sample(taskStream) / g.cfg.Stations[t].speed()
				r.eng.Spawn(fmt.Sprintf("task%d", t), func(tp *des.Proc) {
					start := tp.Now()
					r.servers[t].Use(tp, demand, PrioTask)
					doneMB.Send(tp.Now() - start)
				})
			}
			for t := 0; t < w; t++ {
				d := doneMB.Recv(p).(float64)
				sumTask += d
				if d > maxTask {
					maxTask = d
				}
			}
			if job >= g.cfg.WarmupJobs {
				r.samples = append(r.samples, JobSample{
					JobTime:  p.Now() - jobStart,
					MeanTask: sumTask / float64(w),
				})
			}
		}
	})
	return r
}

// Extend steps the simulation until n more measured samples exist, checking
// ctx periodically. Because the same seeded engine keeps running, the first
// k samples of a run extended to m >= k are identical to a fresh run of k —
// extension replays nothing and discards nothing.
func (r *GeneralRun) Extend(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("sim: need at least one sample, got %d", n)
	}
	target := len(r.samples) + n
	const ctxCheckEvery = 4096
	for steps := 0; len(r.samples) < target; steps++ {
		if steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !r.eng.Step() {
			// Unreachable with a live driver, but fail loudly over spinning.
			return fmt.Errorf("sim: engine drained before %d samples completed", target)
		}
	}
	return nil
}

// Samples returns all measured samples so far. The slice is owned by the run
// and grows on Extend; callers must not modify it.
func (r *GeneralRun) Samples() []JobSample { return r.samples }

// Stats assembles the observed statistics over the whole run so far.
func (r *GeneralRun) Stats() GeneralStats {
	stats := GeneralStats{Samples: r.samples}
	var busy float64
	for _, s := range r.servers {
		busy += s.BusyTime(PrioOwner)
		stats.Preemptions += s.Preemptions()
	}
	if horizon := r.eng.Now() * float64(len(r.servers)); horizon > 0 {
		stats.ObservedUtil = busy / horizon
	}
	return stats
}

// Close terminates the engine's processes. The run is unusable afterwards.
func (r *GeneralRun) Close() { r.eng.Close() }
