package sim

import (
	"context"
	"fmt"

	"feasim/internal/des"
	"feasim/internal/rng"
)

// Priorities on the workstation CPU: owner processes preempt parallel tasks.
const (
	PrioTask  = 0
	PrioOwner = 1
)

// StationConfig describes the owner workload of one workstation in the
// general model. Owner processes cycle: think (wall-clock) then compute for
// a sampled demand at preemptive priority.
type StationConfig struct {
	OwnerThink  rng.Dist // wall-clock think time between owner bursts
	OwnerDemand rng.Dist // owner burst service demand
}

// Utilization returns the station's long-run owner utilization
// E[demand] / (E[think] + E[demand]).
func (c StationConfig) Utilization() float64 {
	d, z := c.OwnerDemand.Mean(), c.OwnerThink.Mean()
	if d <= 0 {
		return 0
	}
	return d / (z + d)
}

// GeneralConfig configures the des-based simulator.
type GeneralConfig struct {
	// Stations lists per-workstation owner workloads; len(Stations) is W.
	// Homogeneous systems repeat the same StationConfig.
	Stations []StationConfig
	// TaskDemand is the per-task demand distribution. The paper's model is
	// Deterministic{J/W}; imbalance ablations use wider distributions.
	TaskDemand rng.Dist
	// Seed drives all sampling.
	Seed uint64
	// WarmupJobs are discarded executions that bring the owner processes to
	// steady state before measurement begins.
	WarmupJobs int
}

// HomogeneousGeometric builds the general-model configuration matching the
// paper's workload: W identical stations, geometric owner think with
// per-unit probability p, deterministic owner burst o, deterministic task
// demand t.
func HomogeneousGeometric(w int, t, o, p float64) GeneralConfig {
	st := StationConfig{
		OwnerThink:  rng.Geometric{P: p},
		OwnerDemand: rng.Deterministic{V: o},
	}
	cfg := GeneralConfig{TaskDemand: rng.Deterministic{V: t}}
	for i := 0; i < w; i++ {
		cfg.Stations = append(cfg.Stations, st)
	}
	return cfg
}

// Validate checks the configuration.
func (c GeneralConfig) Validate() error {
	if len(c.Stations) == 0 {
		return fmt.Errorf("sim: general config needs at least one station")
	}
	if c.TaskDemand == nil {
		return fmt.Errorf("sim: general config needs a task demand distribution")
	}
	for i, s := range c.Stations {
		if s.OwnerThink == nil || s.OwnerDemand == nil {
			return fmt.Errorf("sim: station %d missing owner distributions", i)
		}
	}
	return nil
}

// MeanUtilization is the average configured owner utilization across
// stations.
func (c GeneralConfig) MeanUtilization() float64 {
	var sum float64
	for _, s := range c.Stations {
		sum += s.Utilization()
	}
	return sum / float64(len(c.Stations))
}

// General is the des-based simulator. Each Run constructs a fresh engine;
// jobs execute back-to-back against continuously running owner processes.
type General struct {
	cfg GeneralConfig
}

// NewGeneral builds the simulator.
func NewGeneral(cfg GeneralConfig) (*General, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &General{cfg: cfg}, nil
}

// GeneralStats augments the job samples with observed station behaviour.
type GeneralStats struct {
	Samples []JobSample
	// ObservedUtil is the measured owner busy fraction averaged over
	// stations, to be compared against the configured utilization.
	ObservedUtil float64
	// Preemptions counts task preemptions by owner processes.
	Preemptions uint64
}

// Run simulates n measured job executions (after warmup) and returns the
// samples plus observed statistics.
func (g *General) Run(n int) (GeneralStats, error) {
	return g.RunCtx(context.Background(), n)
}

// RunCtx is Run with cancellation: the event loop checks ctx periodically
// and returns ctx.Err() once cancelled.
func (g *General) RunCtx(ctx context.Context, n int) (GeneralStats, error) {
	if n < 1 {
		return GeneralStats{}, fmt.Errorf("sim: need at least one sample, got %d", n)
	}
	w := len(g.cfg.Stations)
	eng := des.NewEngine()
	defer eng.Close()

	root := rng.NewStream(g.cfg.Seed)
	taskStream := root.Split(0)

	servers := make([]*des.PreemptiveServer, w)
	for i := range servers {
		servers[i] = eng.NewPreemptiveServer(fmt.Sprintf("ws%d", i))
	}

	// Owner processes: run forever; Close unwinds them at the end.
	for i, st := range g.cfg.Stations {
		i, st := i, st
		ostream := root.Split(uint64(1 + i))
		eng.Spawn(fmt.Sprintf("owner%d", i), func(p *des.Proc) {
			for {
				p.Hold(st.OwnerThink.Sample(ostream))
				servers[i].Use(p, st.OwnerDemand.Sample(ostream), PrioOwner)
			}
		})
	}

	total := g.cfg.WarmupJobs + n
	stats := GeneralStats{Samples: make([]JobSample, 0, n)}
	doneMB := eng.NewMailbox("taskdone")
	finished := false

	eng.Spawn("driver", func(p *des.Proc) {
		for job := 0; job < total; job++ {
			jobStart := p.Now()
			var sumTask, maxTask float64
			for t := 0; t < w; t++ {
				t := t
				demand := g.cfg.TaskDemand.Sample(taskStream)
				eng.Spawn(fmt.Sprintf("task%d", t), func(tp *des.Proc) {
					start := tp.Now()
					servers[t].Use(tp, demand, PrioTask)
					doneMB.Send(tp.Now() - start)
				})
			}
			for t := 0; t < w; t++ {
				d := doneMB.Recv(p).(float64)
				sumTask += d
				if d > maxTask {
					maxTask = d
				}
			}
			if job >= g.cfg.WarmupJobs {
				stats.Samples = append(stats.Samples, JobSample{
					JobTime:  p.Now() - jobStart,
					MeanTask: sumTask / float64(w),
				})
			}
		}
		finished = true
	})

	const ctxCheckEvery = 4096
	for steps := 0; !finished && eng.Step(); steps++ {
		if steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return GeneralStats{}, err
			}
		}
	}
	if !finished {
		if err := ctx.Err(); err != nil {
			return GeneralStats{}, err
		}
		return GeneralStats{}, fmt.Errorf("sim: engine drained before %d samples completed", n)
	}

	var busy, horizon float64
	for _, s := range servers {
		busy += s.BusyTime(PrioOwner)
		stats.Preemptions += s.Preemptions()
	}
	horizon = eng.Now() * float64(w)
	if horizon > 0 {
		stats.ObservedUtil = busy / horizon
	}
	return stats, nil
}
