package rng

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Dist is a non-negative random-variate distribution. Implementations carry
// their analytic moments so tests and experiment reports can compare sampled
// statistics against the truth without re-deriving them.
type Dist interface {
	// Sample draws one variate using the given stream.
	Sample(s *Stream) float64
	// Mean is the analytic expectation.
	Mean() float64
	// Variance is the analytic variance.
	Variance() float64
	// String renders the distribution in the spec syntax accepted by Parse.
	String() string
}

// CV returns the coefficient of variation (stddev/mean) of d, or 0 when the
// mean is 0.
func CV(d Dist) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return math.Sqrt(d.Variance()) / m
}

// Deterministic is a point mass at V — the paper's owner service demand.
type Deterministic struct{ V float64 }

func (d Deterministic) Sample(*Stream) float64 { return d.V }
func (d Deterministic) Mean() float64          { return d.V }
func (d Deterministic) Variance() float64      { return 0 }
func (d Deterministic) String() string         { return fmt.Sprintf("det:%g", d.V) }

// Uniform is continuous uniform on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

func (d Uniform) Sample(s *Stream) float64 { return d.Lo + (d.Hi-d.Lo)*s.Float64() }
func (d Uniform) Mean() float64            { return (d.Lo + d.Hi) / 2 }
func (d Uniform) Variance() float64        { w := d.Hi - d.Lo; return w * w / 12 }
func (d Uniform) String() string           { return fmt.Sprintf("unif:%g,%g", d.Lo, d.Hi) }

// Exponential has the given mean (rate 1/M).
type Exponential struct{ M float64 }

func (d Exponential) Sample(s *Stream) float64 {
	// Inversion; 1-U avoids log(0).
	return -d.M * math.Log(1-s.Float64())
}
func (d Exponential) Mean() float64     { return d.M }
func (d Exponential) Variance() float64 { return d.M * d.M }
func (d Exponential) String() string    { return fmt.Sprintf("exp:%g", d.M) }

// Erlang is the sum of K exponential stages with total mean M (CV = 1/sqrt(K)).
type Erlang struct {
	K int
	M float64
}

func (d Erlang) Sample(s *Stream) float64 {
	stage := Exponential{M: d.M / float64(d.K)}
	var sum float64
	for i := 0; i < d.K; i++ {
		sum += stage.Sample(s)
	}
	return sum
}
func (d Erlang) Mean() float64     { return d.M }
func (d Erlang) Variance() float64 { return d.M * d.M / float64(d.K) }
func (d Erlang) String() string    { return fmt.Sprintf("erlang:%d,%g", d.K, d.M) }

// HyperExp is a two-branch hyperexponential: with probability P1 draw from an
// exponential with mean M1, otherwise mean M2. CV > 1; this is the classic
// model for the heavy-tailed interactive process demands reported by Sauer &
// Chandy (the paper's reference [7] for "much larger variance").
type HyperExp struct {
	P1     float64
	M1, M2 float64
}

func (d HyperExp) Sample(s *Stream) float64 {
	m := d.M2
	if s.Float64() < d.P1 {
		m = d.M1
	}
	return Exponential{M: m}.Sample(s)
}
func (d HyperExp) Mean() float64 { return d.P1*d.M1 + (1-d.P1)*d.M2 }
func (d HyperExp) Variance() float64 {
	// E[X^2] = p1*2*M1^2 + p2*2*M2^2 for a mixture of exponentials.
	m2 := 2 * (d.P1*d.M1*d.M1 + (1-d.P1)*d.M2*d.M2)
	m := d.Mean()
	return m2 - m*m
}
func (d HyperExp) String() string { return fmt.Sprintf("hyper:%g,%g,%g", d.P1, d.M1, d.M2) }

// BalancedHyperExp builds a two-branch hyperexponential with the requested
// mean and squared coefficient of variation cv2 (>1) using balanced means
// (p1*m1 = p2*m2), the standard construction in queueing texts.
func BalancedHyperExp(mean, cv2 float64) HyperExp {
	if cv2 <= 1 {
		return HyperExp{P1: 0.5, M1: mean, M2: mean}
	}
	r := math.Sqrt((cv2 - 1) / (cv2 + 1))
	p1 := (1 - r) / 2
	p2 := 1 - p1
	return HyperExp{P1: p1, M1: mean / (2 * p1), M2: mean / (2 * p2)}
}

// Pareto is a Lomax-free classic Pareto with scale Xm and shape A (> 1 for a
// finite mean; > 2 for finite variance).
type Pareto struct {
	Xm, A float64
}

func (d Pareto) Sample(s *Stream) float64 {
	return d.Xm / math.Pow(1-s.Float64(), 1/d.A)
}
func (d Pareto) Mean() float64 {
	if d.A <= 1 {
		return math.Inf(1)
	}
	return d.A * d.Xm / (d.A - 1)
}
func (d Pareto) Variance() float64 {
	if d.A <= 2 {
		return math.Inf(1)
	}
	return d.Xm * d.Xm * d.A / ((d.A - 1) * (d.A - 1) * (d.A - 2))
}
func (d Pareto) String() string { return fmt.Sprintf("pareto:%g,%g", d.Xm, d.A) }

// Geometric counts the number of unit steps up to and including the first
// success, with success probability P per step (support {1, 2, ...}, mean
// 1/P). This is the paper's owner think time: "at each time unit the owner
// requests the processor with probability P".
type Geometric struct{ P float64 }

func (d Geometric) Sample(s *Stream) float64 {
	if d.P >= 1 {
		return 1
	}
	if d.P <= 0 {
		return math.Inf(1)
	}
	// Inversion: ceil(ln(1-U)/ln(1-P)) is geometric on {1,2,...}.
	u := s.Float64()
	k := math.Ceil(math.Log1p(-u) / math.Log1p(-d.P))
	if k < 1 {
		k = 1
	}
	return k
}
func (d Geometric) Mean() float64     { return 1 / d.P }
func (d Geometric) Variance() float64 { return (1 - d.P) / (d.P * d.P) }
func (d Geometric) String() string    { return fmt.Sprintf("geom:%g", d.P) }

// Shifted adds a constant offset to another distribution, e.g. to model a
// minimum service demand.
type Shifted struct {
	D   Dist
	Off float64
}

func (d Shifted) Sample(s *Stream) float64 { return d.Off + d.D.Sample(s) }
func (d Shifted) Mean() float64            { return d.Off + d.D.Mean() }
func (d Shifted) Variance() float64        { return d.D.Variance() }
func (d Shifted) String() string           { return fmt.Sprintf("shift:%g,%s", d.Off, d.D) }

// Parse builds a Dist from a compact spec string, e.g.
//
//	det:10  exp:10  erlang:4,10  hyper:0.1,55,5  pareto:6,2.5  geom:0.01  unif:5,15
//
// The syntax is used by the command-line tools to describe owner workloads.
func Parse(spec string) (Dist, error) {
	name, rest, _ := strings.Cut(spec, ":")
	var args []float64
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("rng: bad distribution spec %q: %v", spec, err)
			}
			args = append(args, v)
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("rng: %s expects %d parameters, got %d (spec %q)", name, n, len(args), spec)
		}
		return nil
	}
	switch name {
	case "det", "const":
		if err := need(1); err != nil {
			return nil, err
		}
		return Deterministic{V: args[0]}, nil
	case "exp":
		if err := need(1); err != nil {
			return nil, err
		}
		return Exponential{M: args[0]}, nil
	case "erlang":
		if err := need(2); err != nil {
			return nil, err
		}
		return Erlang{K: int(args[0]), M: args[1]}, nil
	case "hyper":
		if err := need(3); err != nil {
			return nil, err
		}
		return HyperExp{P1: args[0], M1: args[1], M2: args[2]}, nil
	case "pareto":
		if err := need(2); err != nil {
			return nil, err
		}
		return Pareto{Xm: args[0], A: args[1]}, nil
	case "geom":
		if err := need(1); err != nil {
			return nil, err
		}
		return Geometric{P: args[0]}, nil
	case "unif":
		if err := need(2); err != nil {
			return nil, err
		}
		return Uniform{Lo: args[0], Hi: args[1]}, nil
	default:
		return nil, fmt.Errorf("rng: unknown distribution %q", name)
	}
}
