// Package rng provides seedable, splittable pseudo-random streams and the
// random-variate distributions used throughout the feasibility study.
//
// The paper's base model needs only a geometric owner think time and a
// deterministic owner service demand, but its stated future work (Section
// 2.2: "we intend to use our simulation ... to explore other service demand
// distributions") calls for higher-variance distributions; exponential,
// Erlang, hyperexponential and Pareto variates are provided for that purpose.
//
// All randomness flows through Stream so that every simulation in the
// repository is reproducible from a single root seed. Streams are cheap and
// splittable: deriving per-workstation child streams keeps stations
// statistically independent without sharing state across goroutines.
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic pseudo-random stream (PCG-backed).
// A Stream is not safe for concurrent use; Split child streams instead.
type Stream struct {
	r    *rand.Rand
	seed uint64
}

// NewStream returns a stream seeded from the given root seed.
func NewStream(seed uint64) *Stream {
	return &Stream{
		r:    rand.New(rand.NewPCG(splitmix(seed), splitmix(seed^0x9e3779b97f4a7c15))),
		seed: seed,
	}
}

// Split derives the i-th independent child stream. Children with distinct
// indexes (or from distinct parents) produce statistically independent
// sequences, which we rely on for per-workstation owner processes.
func (s *Stream) Split(i uint64) *Stream {
	return NewStream(splitmix(s.seed+0x9e3779b97f4a7c15*(i+1)) ^ (i + 1))
}

// Seed reports the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// IntN returns a uniform int in [0, n).
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// splitmix is the SplitMix64 output function; used only for seed derivation.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
