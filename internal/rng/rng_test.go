package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewStream(7)
	c0 := root.Split(0)
	c1 := root.Split(1)
	if c0.Seed() == c1.Seed() {
		t.Fatal("sibling splits share a seed")
	}
	// Splitting must not perturb the parent.
	p1 := NewStream(7)
	p1.Split(0)
	p1.Split(1)
	p2 := NewStream(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split consumed parent stream state")
	}
}

func TestSplitReproducible(t *testing.T) {
	a := NewStream(9).Split(3)
	b := NewStream(9).Split(3)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same split index gave different streams")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntNAndPerm(t *testing.T) {
	s := NewStream(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntN(5) should hit all 5 values over 1000 draws, hit %d", len(seen))
	}
	p := s.Perm(10)
	mark := make([]bool, 10)
	for _, v := range p {
		if mark[v] {
			t.Fatalf("Perm produced duplicate %d", v)
		}
		mark[v] = true
	}
}

// sampleMoments draws n variates and returns their sample mean and variance.
func sampleMoments(d Dist, n int, seed uint64) (mean, variance float64) {
	s := NewStream(seed)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := d.Sample(s)
		sum += x
		sum2 += x * x
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return
}

func checkMoments(t *testing.T, d Dist, n int, relTol float64) {
	t.Helper()
	mean, variance := sampleMoments(d, n, 1234)
	if m := d.Mean(); math.Abs(mean-m) > relTol*math.Max(1, m) {
		t.Errorf("%s: sample mean %.4f vs analytic %.4f", d, mean, m)
	}
	if v := d.Variance(); math.Abs(variance-v) > 3*relTol*math.Max(1, v) {
		t.Errorf("%s: sample variance %.4f vs analytic %.4f", d, variance, v)
	}
}

func TestDistributionMoments(t *testing.T) {
	const n = 200000
	checkMoments(t, Deterministic{V: 10}, 100, 1e-12)
	checkMoments(t, Uniform{Lo: 2, Hi: 8}, n, 0.02)
	checkMoments(t, Exponential{M: 10}, n, 0.02)
	checkMoments(t, Erlang{K: 4, M: 10}, n, 0.02)
	checkMoments(t, HyperExp{P1: 0.3, M1: 2, M2: 20}, n, 0.03)
	checkMoments(t, Geometric{P: 0.1}, n, 0.02)
	checkMoments(t, Pareto{Xm: 5, A: 3.5}, 4*n, 0.05)
	checkMoments(t, Shifted{D: Exponential{M: 5}, Off: 3}, n, 0.02)
}

func TestGeometricSupport(t *testing.T) {
	d := Geometric{P: 0.25}
	s := NewStream(5)
	for i := 0; i < 10000; i++ {
		x := d.Sample(s)
		if x < 1 {
			t.Fatalf("geometric sample below 1: %v", x)
		}
		if x != math.Trunc(x) {
			t.Fatalf("geometric sample not integral: %v", x)
		}
	}
}

func TestGeometricEdges(t *testing.T) {
	s := NewStream(1)
	if v := (Geometric{P: 1}).Sample(s); v != 1 {
		t.Fatalf("P=1 geometric must always be 1, got %v", v)
	}
	if v := (Geometric{P: 0}).Sample(s); !math.IsInf(v, 1) {
		t.Fatalf("P=0 geometric must be +Inf, got %v", v)
	}
}

func TestGeometricMeanMatchesThinkTime(t *testing.T) {
	// The paper's owner think time has mean 1/P.
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		d := Geometric{P: p}
		if got, want := d.Mean(), 1/p; math.Abs(got-want) > 1e-12 {
			t.Errorf("P=%v: mean %v want %v", p, got, want)
		}
	}
}

func TestBalancedHyperExp(t *testing.T) {
	for _, cv2 := range []float64{1.5, 4, 25} {
		d := BalancedHyperExp(10, cv2)
		if math.Abs(d.Mean()-10) > 1e-9 {
			t.Errorf("cv2=%v: mean %v want 10", cv2, d.Mean())
		}
		gotCV2 := d.Variance() / (d.Mean() * d.Mean())
		if math.Abs(gotCV2-cv2) > 1e-9 {
			t.Errorf("cv2=%v: got %v", cv2, gotCV2)
		}
	}
	// cv2 <= 1 degenerates to an exponential-equivalent mixture.
	d := BalancedHyperExp(10, 1)
	if math.Abs(d.Mean()-10) > 1e-9 {
		t.Errorf("cv2=1: mean %v want 10", d.Mean())
	}
}

func TestParetoTail(t *testing.T) {
	d := Pareto{Xm: 1, A: 1.5}
	s := NewStream(3)
	for i := 0; i < 1000; i++ {
		if x := d.Sample(s); x < 1 {
			t.Fatalf("pareto sample below scale: %v", x)
		}
	}
	if !math.IsInf(Pareto{Xm: 1, A: 0.9}.Mean(), 1) {
		t.Error("pareto with shape <= 1 should have infinite mean")
	}
	if !math.IsInf(Pareto{Xm: 1, A: 1.5}.Variance(), 1) {
		t.Error("pareto with shape <= 2 should have infinite variance")
	}
}

func TestCV(t *testing.T) {
	if cv := CV(Exponential{M: 7}); math.Abs(cv-1) > 1e-12 {
		t.Errorf("exponential CV = %v, want 1", cv)
	}
	if cv := CV(Deterministic{V: 7}); cv != 0 {
		t.Errorf("deterministic CV = %v, want 0", cv)
	}
	if cv := CV(Deterministic{V: 0}); cv != 0 {
		t.Errorf("zero-mean CV = %v, want 0", cv)
	}
	if cv := CV(Erlang{K: 4, M: 10}); math.Abs(cv-0.5) > 1e-12 {
		t.Errorf("erlang-4 CV = %v, want 0.5", cv)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"det:10", "exp:10", "erlang:4,10", "hyper:0.1,55,5",
		"pareto:6,2.5", "geom:0.01", "unif:5,15",
	}
	for _, spec := range specs {
		d, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if d.String() != spec {
			t.Errorf("Parse(%q).String() = %q", spec, d.String())
		}
		// Re-parsing the rendered form must give identical moments.
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", d.String(), err)
		}
		if d2.Mean() != d.Mean() || d2.Variance() != d.Variance() {
			t.Errorf("%q: round-trip changed moments", spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "wat:1", "det", "det:", "det:a", "exp:1,2", "erlang:4", "unif:1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestParseConstAlias(t *testing.T) {
	d, err := Parse("const:5")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 5 {
		t.Fatalf("const:5 mean = %v", d.Mean())
	}
}

func TestQuickGeometricAtLeastOne(t *testing.T) {
	s := NewStream(99)
	f := func(pRaw uint16) bool {
		p := (float64(pRaw) + 1) / (math.MaxUint16 + 2) // p in (0,1)
		return Geometric{P: p}.Sample(s) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickExponentialNonNegative(t *testing.T) {
	s := NewStream(100)
	f := func(mRaw uint16) bool {
		m := float64(mRaw)/1000 + 0.001
		return Exponential{M: m}.Sample(s) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
