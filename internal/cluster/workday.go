package cluster

import (
	"fmt"

	"feasim/internal/rng"
)

// Nonstationary owners. The paper calibrated its experiment with uptime
// measurements "over two working days" — averaging away the fact that
// owner activity is far higher at 2pm than 2am. PhasedStation models that
// directly: the owner workload cycles through phases (e.g. a busy day and
// a quiet night), and tasks experience whichever phases their execution
// overlaps. Start offsets let experiments launch jobs at chosen points of
// the cycle.

// Phase is one segment of the owner's repeating schedule.
type Phase struct {
	// Name labels the phase in traces and reports.
	Name string
	// Duration is the phase length in virtual time.
	Duration float64
	// Params is the owner workload during the phase. StationaryStart is
	// ignored here; the phase schedule defines the state instead.
	Params StationParams
}

// Schedule is a repeating sequence of phases.
type Schedule []Phase

// Validate checks the schedule.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("cluster: schedule needs at least one phase")
	}
	for i, ph := range s {
		if !(ph.Duration > 0) {
			return fmt.Errorf("cluster: phase %d (%s) needs positive duration", i, ph.Name)
		}
		if err := ph.Params.Validate(); err != nil {
			return fmt.Errorf("cluster: phase %d (%s): %w", i, ph.Name, err)
		}
	}
	return nil
}

// CycleLength is the total duration of one cycle.
func (s Schedule) CycleLength() float64 {
	var sum float64
	for _, ph := range s {
		sum += ph.Duration
	}
	return sum
}

// MeanUtilization is the duration-weighted owner utilization over a cycle.
func (s Schedule) MeanUtilization() float64 {
	cycle := s.CycleLength()
	if cycle == 0 {
		return 0
	}
	var sum float64
	for _, ph := range s {
		sum += ph.Params.Utilization() * ph.Duration
	}
	return sum / cycle
}

// phaseAt returns the phase active at absolute time t and the time at which
// it ends.
func (s Schedule) phaseAt(t float64) (Phase, float64) {
	cycle := s.CycleLength()
	pos := t - float64(int64(t/cycle))*cycle
	var acc float64
	for _, ph := range s {
		acc += ph.Duration
		if pos < acc {
			return ph, t + (acc - pos)
		}
	}
	// Floating-point boundary: wrap to the first phase.
	return s[0], t + s[0].Duration
}

// Workday builds the canonical two-phase schedule: a busy day and a quiet
// night.
func Workday(dayUtil, nightUtil, o, dayLen, nightLen float64) (Schedule, error) {
	day, err := SunELCParams(o, dayUtil)
	if err != nil {
		return nil, err
	}
	night, err := SunELCParams(o, nightUtil)
	if err != nil {
		return nil, err
	}
	s := Schedule{
		{Name: "day", Duration: dayLen, Params: day},
		{Name: "night", Duration: nightLen, Params: night},
	}
	return s, s.Validate()
}

// PhasedStation is a workstation whose owner follows a repeating schedule.
type PhasedStation struct {
	name     string
	schedule Schedule
	stream   *rng.Stream
}

// NewPhasedStation builds a phased station.
func NewPhasedStation(name string, schedule Schedule, stream *rng.Stream) (*PhasedStation, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	return &PhasedStation{name: name, schedule: schedule, stream: stream}, nil
}

// Name returns the station name.
func (s *PhasedStation) Name() string { return s.name }

// Schedule returns the owner schedule.
func (s *PhasedStation) Schedule() Schedule { return s.schedule }

// RunTaskAt executes a task of the given demand starting at absolute cycle
// time start (e.g. 0 = start of day). Owner behaviour switches as the task
// crosses phase boundaries.
func (s *PhasedStation) RunTaskAt(start, demand float64) TaskRecord {
	if demand < 0 {
		panic(fmt.Sprintf("cluster: negative task demand %v", demand))
	}
	rec := TaskRecord{Station: s.name, Demand: demand}
	now := start
	remaining := demand

	phase, phaseEnd := s.schedule.phaseAt(now)
	// Owner state: next arrival sampled from the current phase.
	nextArrival := now + phase.Params.OwnerThink.Sample(s.stream)
	for remaining > 0 {
		// Phase boundary first: resample owner behaviour in the new phase.
		if now >= phaseEnd {
			phase, phaseEnd = s.schedule.phaseAt(now)
			nextArrival = now + phase.Params.OwnerThink.Sample(s.stream)
			continue
		}
		if nextArrival <= now {
			b := phase.Params.OwnerDemand.Sample(s.stream)
			// Clip the burst at the phase end: the remainder is re-sampled
			// under the next phase's behaviour (an approximation that keeps
			// phases independent).
			if now+b > phaseEnd {
				b = phaseEnd - now
			}
			now += b
			rec.OwnerTime += b
			if b > 0 {
				rec.Bursts++
			}
			nextArrival = now + phase.Params.OwnerThink.Sample(s.stream)
			continue
		}
		slice := nextArrival - now
		if e := phaseEnd - now; e < slice {
			slice = e
		}
		if slice > remaining {
			slice = remaining
		}
		now += slice
		remaining -= slice
	}
	rec.Elapsed = now - start
	return rec
}
