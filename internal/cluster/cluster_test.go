package cluster

import (
	"math"
	"testing"

	"feasim/internal/core"
	"feasim/internal/rng"
	"feasim/internal/stats"
)

func elcParams(t *testing.T, o, util float64) StationParams {
	t.Helper()
	p, err := SunELCParams(o, util)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSunELCParamsUtilization(t *testing.T) {
	for _, util := range []float64{0.01, 0.03, 0.1, 0.2} {
		p := elcParams(t, 10, util)
		if got := p.Utilization(); math.Abs(got-util) > 1e-9 {
			t.Errorf("configured utilization %v, want %v", got, util)
		}
	}
	ded := elcParams(t, 10, 0)
	if ded.Utilization() != 0 {
		t.Error("dedicated params should have zero utilization")
	}
	if _, err := SunELCParams(10, 1.0); err == nil {
		t.Error("utilization 1.0 should fail")
	}
	if _, err := SunELCParams(0.5, 0.9); err == nil {
		t.Error("unreachable utilization at unit granularity should fail")
	}
}

func TestStationDedicatedRunsAtSpeed(t *testing.T) {
	c, err := New(1, elcParams(t, 10, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := c.Station(0)
	rec := st.RunTask(120)
	if rec.Elapsed != 120 || rec.Bursts != 0 || rec.OwnerTime != 0 {
		t.Errorf("dedicated run: %+v", rec)
	}
}

func TestStationInterferenceSlowdown(t *testing.T) {
	// At 10% owner utilization the mean task stretch should be close to the
	// theoretical 1/(1-U) (renewal-reward argument for wall-clock owners).
	p := elcParams(t, 10, 0.10)
	c, err := New(1, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := c.Station(0)
	var sum stats.Summary
	const demand = 1000.0
	for i := 0; i < 400; i++ {
		sum.Add(st.RunTask(demand).Elapsed)
	}
	stretch := sum.Mean() / demand
	want := 1 / 0.9
	if math.Abs(stretch-want) > 0.02*want {
		t.Errorf("mean stretch %.4f, want about %.4f", stretch, want)
	}
}

func TestStationRecordsConsistent(t *testing.T) {
	p := elcParams(t, 10, 0.2)
	c, _ := New(1, p, 7)
	st, _ := c.Station(0)
	for i := 0; i < 50; i++ {
		rec := st.RunTask(100)
		if math.Abs(rec.Elapsed-(rec.Demand+rec.OwnerTime)) > 1e-9 {
			t.Fatalf("elapsed %.4f != demand %.4f + owner %.4f", rec.Elapsed, rec.Demand, rec.OwnerTime)
		}
		if rec.OwnerTime < 0 || rec.Bursts < 0 {
			t.Fatalf("negative interference: %+v", rec)
		}
		if rec.Bursts == 0 && rec.OwnerTime != 0 {
			t.Fatalf("owner time without bursts: %+v", rec)
		}
	}
	n, taskTime, _ := st.Stats()
	if n != 50 || taskTime != 5000 {
		t.Errorf("stats: %d tasks, %.0f compute", n, taskTime)
	}
}

func TestStationZeroDemand(t *testing.T) {
	p := elcParams(t, 10, 0.1)
	c, _ := New(1, p, 9)
	st, _ := c.Station(0)
	rec := st.RunTask(0)
	// A zero-demand task may still wait out a residual burst when it lands
	// mid-burst (stationary start), but absent that it finishes instantly.
	if rec.Elapsed != rec.OwnerTime {
		t.Errorf("zero-demand task computed: %+v", rec)
	}
}

func TestStationNegativeDemandPanics(t *testing.T) {
	p := elcParams(t, 10, 0.1)
	c, _ := New(1, p, 9)
	st, _ := c.Station(0)
	defer func() {
		if recover() == nil {
			t.Error("negative demand should panic")
		}
	}()
	st.RunTask(-1)
}

func TestProbeUtilizationMatchesConfigured(t *testing.T) {
	for _, util := range []float64{0.03, 0.1, 0.2} {
		c, err := New(4, elcParams(t, 10, util), 11)
		if err != nil {
			t.Fatal(err)
		}
		got := c.MeasureUtilization(500_000)
		if math.Abs(got-util) > 0.1*util+0.002 {
			t.Errorf("probed utilization %.4f, configured %.4f", got, util)
		}
	}
}

func TestProbePanicsOnBadHorizon(t *testing.T) {
	c, _ := New(1, elcParams(t, 10, 0.1), 3)
	st, _ := c.Station(0)
	defer func() {
		if recover() == nil {
			t.Error("non-positive horizon should panic")
		}
	}()
	st.ProbeUtilization(0)
}

func TestClusterConstruction(t *testing.T) {
	if _, err := New(0, elcParams(t, 10, 0.1), 1); err == nil {
		t.Error("empty cluster should fail")
	}
	if _, err := NewHeterogeneous(nil, 1); err == nil {
		t.Error("nil station list should fail")
	}
	if _, err := NewHeterogeneous([]StationParams{{}}, 1); err == nil {
		t.Error("invalid station params should fail")
	}
	c, err := New(3, elcParams(t, 10, 0.1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if _, err := c.Station(3); err == nil {
		t.Error("out-of-range station should fail")
	}
	st, err := c.Station(2)
	if err != nil || st.Name() != "elc2" {
		t.Errorf("station 2: %v %v", st, err)
	}
}

func TestClusterStationsIndependent(t *testing.T) {
	// Two stations with identical params must see different owner arrivals
	// (independent split streams).
	c, _ := New(2, elcParams(t, 10, 0.2), 5)
	a, _ := c.Station(0)
	b, _ := c.Station(1)
	same := 0
	for i := 0; i < 20; i++ {
		ra, rb := a.RunTask(100), b.RunTask(100)
		if ra.Elapsed == rb.Elapsed {
			same++
		}
	}
	if same > 10 {
		t.Errorf("stations look correlated: %d/20 identical task times", same)
	}
}

func TestHeterogeneousUtilizations(t *testing.T) {
	params := []StationParams{
		elcParams(t, 10, 0.05),
		elcParams(t, 10, 0.25),
	}
	c, err := NewHeterogeneous(params, 13)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ConfiguredUtilization(); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("mean configured utilization %v, want 0.15", got)
	}
	if idx := c.LeastUtilized(nil); idx != 0 {
		t.Errorf("least utilized = %d, want 0", idx)
	}
	if idx := c.LeastUtilized(map[int]bool{0: true}); idx != 1 {
		t.Errorf("least utilized excluding 0 = %d, want 1", idx)
	}
	if idx := c.LeastUtilized(map[int]bool{0: true, 1: true}); idx != -1 {
		t.Errorf("all excluded should give -1, got %d", idx)
	}
}

// TestStationMeanMatchesModel compares the station's mean task elapsed time
// against the analytic E_t at the paper's experimental operating point (3%
// utilization): the station is the "real system" the model bounds, so the
// mean should be close to — and no less than — the model's optimistic
// prediction.
func TestStationMeanMatchesModel(t *testing.T) {
	const (
		o    = 10.0
		util = 0.03
		dem  = 960.0 // the paper's 16-minute problem on one workstation
	)
	c, _ := New(1, elcParams(t, o, util), 99)
	st, _ := c.Station(0)
	var sum stats.Summary
	for i := 0; i < 800; i++ {
		sum.Add(st.RunTask(dem).Elapsed)
	}
	p, err := core.ParamsFromUtilization(dem, 1, o, util)
	if err != nil {
		t.Fatal(err)
	}
	ana := core.MustAnalyze(p)
	if rel := math.Abs(sum.Mean()-ana.ETask) / ana.ETask; rel > 0.03 {
		t.Errorf("station mean %.2f vs model E_t %.2f (rel %.4f)", sum.Mean(), ana.ETask, rel)
	}
	if sum.Mean() < ana.ETask*0.995 {
		t.Errorf("real system beat the optimistic model meaningfully: %.2f < %.2f", sum.Mean(), ana.ETask)
	}
}

func TestRunTaskBudgetStopsEarly(t *testing.T) {
	// Heavy interference with a tiny budget: the task must come back
	// unfinished with interference just over the budget.
	p := StationParams{
		OwnerThink:  rng.Deterministic{V: 5},
		OwnerDemand: rng.Deterministic{V: 20},
	}
	c, _ := New(1, p, 21)
	st, _ := c.Station(0)
	rec, remaining := st.RunTaskBudget(1000, 30)
	if remaining <= 0 {
		t.Fatal("task should not complete under heavy interference with small budget")
	}
	if rec.OwnerTime <= 30 {
		t.Errorf("should stop only after exceeding budget, owner time %v", rec.OwnerTime)
	}
	if rec.OwnerTime > 30+20+1e-9 { // at most one extra burst past the budget
		t.Errorf("overshot budget by more than one burst: %v", rec.OwnerTime)
	}
	if math.Abs(rec.Elapsed-((rec.Demand-remaining)+rec.OwnerTime)) > 1e-9 {
		t.Errorf("partial record inconsistent: %+v remaining %v", rec, remaining)
	}
}

func TestMigratorMovesOffBusyStation(t *testing.T) {
	// Station 0: owner hogging 80% of the CPU. Station 1: idle. A migrating
	// task must end up cheaper than staying.
	busy := StationParams{
		OwnerThink:  rng.Exponential{M: 5},
		OwnerDemand: rng.Deterministic{V: 20},
	}
	idle := elcParams(t, 10, 0.01)
	mk := func() *Cluster {
		c, err := NewHeterogeneous([]StationParams{busy, idle}, 33)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	m := Migrator{InterferenceBudget: 0.2, TransferCost: 5, MaxMigrations: 1}
	var mig, stay stats.Summary
	for i := 0; i < 60; i++ {
		cm := mk()
		rec, err := m.RunTask(cm, 0, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Migrated {
			t.Fatal("task should have migrated off the busy station")
		}
		mig.Add(rec.Elapsed)
		cs := mk()
		st0, _ := cs.Station(0)
		stay.Add(st0.RunTask(500).Elapsed)
	}
	if mig.Mean() >= stay.Mean() {
		t.Errorf("migration should win: migrated %.1f vs stayed %.1f", mig.Mean(), stay.Mean())
	}
}

func TestMigratorStaysOnQuietStation(t *testing.T) {
	c, _ := New(2, elcParams(t, 10, 0.01), 55)
	m := Migrator{InterferenceBudget: 1.0, TransferCost: 5, MaxMigrations: 2}
	rec, err := m.RunTask(c, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Migrated {
		t.Errorf("task migrated off a 1%%-utilized station: %+v", rec)
	}
}

func TestMigratorValidate(t *testing.T) {
	bad := []Migrator{
		{InterferenceBudget: 0, TransferCost: 1, MaxMigrations: 1},
		{InterferenceBudget: 0.5, TransferCost: -1, MaxMigrations: 1},
		{InterferenceBudget: 0.5, TransferCost: 1, MaxMigrations: -1},
	}
	c, _ := New(1, elcParams(t, 10, 0.1), 1)
	for i, m := range bad {
		if _, err := m.RunTask(c, 0, 10); err == nil {
			t.Errorf("case %d should fail: %+v", i, m)
		}
	}
	good := Migrator{InterferenceBudget: 0.5, TransferCost: 1, MaxMigrations: 1}
	if _, err := good.RunTask(c, 5, 10); err == nil {
		t.Error("bad station index should fail")
	}
}
