package cluster

import (
	"math"
	"strings"
	"testing"
)

func TestTraceTilesTheTimeline(t *testing.T) {
	p := elcParams(t, 10, 0.2)
	c, _ := New(1, p, 13)
	st, _ := c.Station(0)
	tr := NewTrace()
	st.SetTrace(tr)
	rec := st.RunTask(500)

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// Events must tile [0, Elapsed] with no gaps or overlaps.
	cursor := 0.0
	for i, e := range events {
		if math.Abs(e.Start-cursor) > 1e-9 {
			t.Fatalf("event %d starts at %v, expected %v (gap/overlap)", i, e.Start, cursor)
		}
		if e.End < e.Start {
			t.Fatalf("event %d inverted: %+v", i, e)
		}
		cursor = e.End
	}
	if math.Abs(cursor-rec.Elapsed) > 1e-9 {
		t.Errorf("trace ends at %v, task elapsed %v", cursor, rec.Elapsed)
	}
	// Totals must match the record exactly.
	tot := tr.TotalByKind()
	if math.Abs(tot[TraceCompute]-rec.Demand) > 1e-9 {
		t.Errorf("compute total %v, demand %v", tot[TraceCompute], rec.Demand)
	}
	if math.Abs(tot[TraceOwner]-rec.OwnerTime) > 1e-9 {
		t.Errorf("owner total %v, interference %v", tot[TraceOwner], rec.OwnerTime)
	}
}

func TestTraceKindsAlternate(t *testing.T) {
	p := elcParams(t, 10, 0.3)
	c, _ := New(1, p, 17)
	st, _ := c.Station(0)
	tr := NewTrace()
	st.SetTrace(tr)
	st.RunTask(300)
	events := tr.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Kind == events[i-1].Kind {
			t.Fatalf("adjacent events share kind %s at %d (should be coalesced by construction)",
				events[i].Kind, i)
		}
	}
}

func TestTraceTaskSequenceNumbers(t *testing.T) {
	p := elcParams(t, 10, 0.1)
	c, _ := New(1, p, 19)
	st, _ := c.Station(0)
	tr := NewTrace()
	st.SetTrace(tr)
	st.RunTask(50)
	st.RunTask(50)
	seqs := map[int]bool{}
	for _, e := range tr.Events() {
		seqs[e.Task] = true
	}
	if !seqs[0] || !seqs[1] {
		t.Errorf("expected task sequence numbers 0 and 1, got %v", seqs)
	}
}

func TestTraceCSVAndReset(t *testing.T) {
	p := elcParams(t, 10, 0.1)
	c, _ := New(1, p, 23)
	st, _ := c.Station(0)
	tr := NewTrace()
	st.SetTrace(tr)
	st.RunTask(100)
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "station,task,kind,start,end,duration\n") {
		t.Errorf("csv header wrong: %q", strings.Split(csv, "\n")[0])
	}
	if !strings.Contains(csv, "elc0,0,compute,") {
		t.Errorf("csv missing compute rows:\n%s", csv)
	}
	n := tr.Len()
	if n == 0 {
		t.Fatal("trace empty")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("reset did not clear")
	}
	// Detach: no more events recorded.
	st.SetTrace(nil)
	st.RunTask(100)
	if tr.Len() != 0 {
		t.Error("detached trace still recording")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	p := elcParams(t, 10, 0.1)
	c, _ := New(1, p, 29)
	st, _ := c.Station(0)
	// Must not panic or allocate traces when none attached.
	st.RunTask(100)
}
