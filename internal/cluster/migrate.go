package cluster

import "fmt"

// Migration extension. The paper's conclusions leave this open: "How to
// provide reasonable execution times for parallel jobs in a non-dedicated
// system with long running workstation owner jobs must be solved if
// distributed computing is to be feasible". Migrator implements the obvious
// first policy: when a task has absorbed more owner interference than a
// budget proportional to its demand, checkpoint it and restart the
// remainder on the least-utilized other station, paying a transfer cost.

// Migrator is the migration policy.
type Migrator struct {
	// InterferenceBudget is the owner time a task tolerates per unit of
	// compute demand before migrating (e.g. 0.5 = migrate once delays
	// exceed 50% of the remaining demand).
	InterferenceBudget float64
	// TransferCost is the virtual time to move the task between stations
	// (checkpoint + network + restart).
	TransferCost float64
	// MaxMigrations caps how many times one task may move.
	MaxMigrations int
}

// Validate checks the policy parameters.
func (m Migrator) Validate() error {
	if m.InterferenceBudget <= 0 {
		return fmt.Errorf("cluster: interference budget must be positive, got %v", m.InterferenceBudget)
	}
	if m.TransferCost < 0 {
		return fmt.Errorf("cluster: transfer cost must be >= 0, got %v", m.TransferCost)
	}
	if m.MaxMigrations < 0 {
		return fmt.Errorf("cluster: max migrations must be >= 0, got %d", m.MaxMigrations)
	}
	return nil
}

// RunTask executes a task of the given demand starting on station start,
// migrating according to the policy. The returned record accumulates time
// across all visited stations (virtual clocks are per-station; elapsed
// times add because the task occupies exactly one station at a time).
func (m Migrator) RunTask(c *Cluster, start int, demand float64) (TaskRecord, error) {
	if err := m.Validate(); err != nil {
		return TaskRecord{}, err
	}
	st, err := c.Station(start)
	if err != nil {
		return TaskRecord{}, err
	}
	visited := map[int]bool{start: true}
	total := TaskRecord{Station: st.Name(), Demand: demand}
	remaining := demand
	cur := st
	curIdx := start
	for hops := 0; ; hops++ {
		budget := m.InterferenceBudget * remaining
		if hops >= m.MaxMigrations {
			budget = -1 // final placement: run to completion
		}
		rec, left := cur.RunTaskBudget(remaining, budget)
		total.Elapsed += rec.Elapsed
		total.OwnerTime += rec.OwnerTime
		total.Bursts += rec.Bursts
		remaining = left
		if remaining == 0 {
			return total, nil
		}
		next := c.LeastUtilized(visited)
		if next < 0 {
			// Nowhere to go: finish in place.
			rec, _ := cur.RunTaskBudget(remaining, -1)
			total.Elapsed += rec.Elapsed
			total.OwnerTime += rec.OwnerTime
			total.Bursts += rec.Bursts
			return total, nil
		}
		visited[next] = true
		total.Elapsed += m.TransferCost
		total.Migrated = true
		curIdx = next
		cur, err = c.Station(curIdx)
		if err != nil {
			return TaskRecord{}, err
		}
		total.Station = cur.Name()
	}
}
