package cluster

import (
	"fmt"
	"strings"
	"sync"
)

// Trace records the interleaving of task compute slices and owner bursts on
// stations — the timeline behind a TaskRecord. Attach one to a station with
// SetTrace; the experiment tools export it as CSV for inspection, and tests
// use it to verify the preemption accounting tiles exactly.

// TraceKind labels a trace interval.
type TraceKind string

const (
	// TraceCompute is a slice where the parallel task held the CPU.
	TraceCompute TraceKind = "compute"
	// TraceOwner is an owner burst that preempted (or delayed) the task.
	TraceOwner TraceKind = "owner"
)

// TraceEvent is one interval on one station, in that station's task-local
// virtual time (each RunTask starts at 0).
type TraceEvent struct {
	Station string
	Task    int // sequence number of the task run on this station
	Kind    TraceKind
	Start   float64
	End     float64
}

// Duration is the interval length.
func (e TraceEvent) Duration() float64 { return e.End - e.Start }

// Trace accumulates events; safe for concurrent stations sharing one trace.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (tr *Trace) add(e TraceEvent) {
	tr.mu.Lock()
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (tr *Trace) Events() []TraceEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEvent(nil), tr.events...)
}

// Len is the number of recorded events.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}

// Reset clears the trace.
func (tr *Trace) Reset() {
	tr.mu.Lock()
	tr.events = nil
	tr.mu.Unlock()
}

// CSV renders the trace as "station,task,kind,start,end,duration" rows.
func (tr *Trace) CSV() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var sb strings.Builder
	sb.WriteString("station,task,kind,start,end,duration\n")
	for _, e := range tr.events {
		fmt.Fprintf(&sb, "%s,%d,%s,%g,%g,%g\n", e.Station, e.Task, e.Kind, e.Start, e.End, e.Duration())
	}
	return sb.String()
}

// TotalByKind sums interval durations per kind.
func (tr *Trace) TotalByKind() map[TraceKind]float64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[TraceKind]float64, 2)
	for _, e := range tr.events {
		out[e.Kind] += e.Duration()
	}
	return out
}

// SetTrace attaches (or with nil detaches) a trace recorder to the station.
func (s *Station) SetTrace(tr *Trace) {
	s.mu.Lock()
	s.trace = tr
	s.mu.Unlock()
}
