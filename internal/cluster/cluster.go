package cluster

import (
	"fmt"
	"math"

	"feasim/internal/rng"
)

// Cluster is a set of virtual non-dedicated workstations.
type Cluster struct {
	stations []*Station
}

// New builds a homogeneous cluster of n stations sharing params, with
// per-station independent random streams derived from seed.
func New(n int, params StationParams, seed uint64) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one station, got %d", n)
	}
	ps := make([]StationParams, n)
	for i := range ps {
		ps[i] = params
	}
	return NewHeterogeneous(ps, seed)
}

// NewHeterogeneous builds a cluster with per-station owner workloads.
func NewHeterogeneous(params []StationParams, seed uint64) (*Cluster, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("cluster: need at least one station")
	}
	root := rng.NewStream(seed)
	c := &Cluster{}
	for i, p := range params {
		st, err := NewStation(fmt.Sprintf("elc%d", i), p, root.Split(uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("cluster: station %d: %w", i, err)
		}
		c.stations = append(c.stations, st)
	}
	return c, nil
}

// SunELCParams reproduces the paper's measured environment: "the only
// interference is from more trivial usage such as editing files, reading
// mail, news, etc." at a measured 3% owner utilization. Owner bursts of o
// virtual seconds with geometric thinks tuned to the target utilization.
func SunELCParams(o, util float64) (StationParams, error) {
	if util < 0 || util >= 1 {
		return StationParams{}, fmt.Errorf("cluster: utilization must be in [0,1), got %v", util)
	}
	p := StationParams{
		OwnerDemand:     rng.Deterministic{V: o},
		StationaryStart: true,
	}
	if util == 0 {
		// Dedicated: the owner never requests the CPU.
		p.OwnerDemand = rng.Deterministic{V: 0}
		p.OwnerThink = rng.Deterministic{V: math.Inf(1)}
		return p, nil
	}
	// U = O/(1/P + O)  →  1/P = O(1-U)/U.
	prob := util / (o * (1 - util))
	if prob > 1 {
		return StationParams{}, fmt.Errorf("cluster: utilization %v unreachable with burst %v at unit granularity", util, o)
	}
	p.OwnerThink = rng.Geometric{P: prob}
	return p, nil
}

// Size is the number of stations.
func (c *Cluster) Size() int { return len(c.stations) }

// Station returns station i.
func (c *Cluster) Station(i int) (*Station, error) {
	if i < 0 || i >= len(c.stations) {
		return nil, fmt.Errorf("cluster: no station %d in a %d-station cluster", i, len(c.stations))
	}
	return c.stations[i], nil
}

// MeasureUtilization probes every station over the horizon and returns the
// mean owner-busy fraction — the paper's uptime survey.
func (c *Cluster) MeasureUtilization(horizon float64) float64 {
	var sum float64
	for _, s := range c.stations {
		sum += s.ProbeUtilization(horizon)
	}
	return sum / float64(len(c.stations))
}

// ConfiguredUtilization returns the mean analytic owner utilization.
func (c *Cluster) ConfiguredUtilization() float64 {
	var sum float64
	for _, s := range c.stations {
		sum += s.params.Utilization()
	}
	return sum / float64(len(c.stations))
}

// LeastUtilized returns the index of the station with the lowest configured
// owner utilization, excluding the indexes in exclude. Used by the
// migration policy. Returns -1 when every station is excluded.
func (c *Cluster) LeastUtilized(exclude map[int]bool) int {
	best, bestU := -1, 2.0
	for i, s := range c.stations {
		if exclude[i] {
			continue
		}
		if u := s.params.Utilization(); u < bestU {
			best, bestU = i, u
		}
	}
	return best
}
