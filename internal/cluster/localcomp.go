package cluster

import (
	"fmt"

	"feasim/internal/pvm"
	"feasim/internal/stats"
)

// Local computation experiment (paper Section 4): a perfectly parallel
// program with no interprocess communication is run with PVM; the master
// forks W tasks, one per workstation, each task computes independently at
// low priority, records its own computation time, and returns it to the
// master, which reports the maximum.

// Message tags of the experiment protocol.
const (
	TagWork   = 1 // master → worker: assigned compute demand
	TagResult = 2 // worker → master: task timing record
)

// LocalComputation configures one experiment run.
type LocalComputation struct {
	// Cluster supplies the non-dedicated workstations. Workers are placed
	// one per station: PVM host i ↔ station i.
	Cluster *Cluster
	// Workers is W; it must not exceed the cluster size.
	Workers int
	// TotalDemand is J in virtual seconds; each worker computes J/W.
	TotalDemand float64
	// Transport selects the message path (default in-process).
	Transport pvm.TransportKind
}

// RunResult is one execution of the parallel program.
type RunResult struct {
	W             int
	DemandPerTask float64
	// MaxTaskTime is the paper's primary metric: the largest per-task
	// computation interval.
	MaxTaskTime float64
	// MeanTaskTime averages the W task intervals.
	MeanTaskTime float64
	// TotalOwnerTime sums the interference absorbed by all tasks.
	TotalOwnerTime float64
	// Records holds the per-task details.
	Records []TaskRecord
}

// Validate checks the experiment configuration.
func (lc LocalComputation) Validate() error {
	if lc.Cluster == nil {
		return fmt.Errorf("cluster: experiment needs a cluster")
	}
	if lc.Workers < 1 || lc.Workers > lc.Cluster.Size() {
		return fmt.Errorf("cluster: workers must be in [1, %d], got %d", lc.Cluster.Size(), lc.Workers)
	}
	if !(lc.TotalDemand > 0) {
		return fmt.Errorf("cluster: total demand must be positive, got %v", lc.TotalDemand)
	}
	return nil
}

// Run executes the parallel program once over the PVM substrate: spawn W
// workers round-robin (here exactly one per host), send each its demand,
// gather the timing records, and report the maximum task time.
func (lc LocalComputation) Run() (RunResult, error) {
	if err := lc.Validate(); err != nil {
		return RunResult{}, err
	}
	names := make([]string, lc.Workers)
	for i := range names {
		st, err := lc.Cluster.Station(i)
		if err != nil {
			return RunResult{}, err
		}
		names[i] = st.Name()
	}
	vm, err := pvm.NewVM(pvm.Config{Hosts: lc.Workers, Transport: lc.Transport, HostNames: names})
	if err != nil {
		return RunResult{}, err
	}
	defer vm.Halt()

	res := RunResult{W: lc.Workers, DemandPerTask: lc.TotalDemand / float64(lc.Workers)}

	worker := func(t *pvm.Task) error {
		m, err := t.Recv(t.Parent(), TagWork)
		if err != nil {
			return err
		}
		demand, err := m.Body.UnpackFloat64()
		if err != nil {
			return err
		}
		st, err := lc.Cluster.Station(t.Host())
		if err != nil {
			return err
		}
		// The niced computation: owner processes preempt it on the station.
		rec := st.RunTask(demand)
		reply := pvm.NewBuffer().
			PackString(rec.Station).
			PackFloat64(rec.Demand).
			PackFloat64(rec.Elapsed).
			PackFloat64(rec.OwnerTime).
			PackInt32(int32(rec.Bursts))
		return t.Send(t.Parent(), TagResult, reply)
	}

	master, err := vm.Spawn("master", 0, 0, func(t *pvm.Task) error {
		tids, err := t.SpawnN("worker", lc.Workers, worker)
		if err != nil {
			return err
		}
		work := pvm.NewBuffer().PackFloat64(res.DemandPerTask)
		for _, tid := range tids {
			if err := t.Send(tid, TagWork, work); err != nil {
				return err
			}
		}
		for range tids {
			m, err := t.Recv(pvm.AnyTID, TagResult)
			if err != nil {
				return err
			}
			var rec TaskRecord
			if rec.Station, err = m.Body.UnpackString(); err != nil {
				return err
			}
			if rec.Demand, err = m.Body.UnpackFloat64(); err != nil {
				return err
			}
			if rec.Elapsed, err = m.Body.UnpackFloat64(); err != nil {
				return err
			}
			if rec.OwnerTime, err = m.Body.UnpackFloat64(); err != nil {
				return err
			}
			b32, err := m.Body.UnpackInt32()
			if err != nil {
				return err
			}
			rec.Bursts = int(b32)
			res.Records = append(res.Records, rec)
		}
		return nil
	})
	if err != nil {
		return RunResult{}, err
	}
	if err := vm.Wait(master); err != nil {
		return RunResult{}, err
	}

	var sum stats.Summary
	for _, rec := range res.Records {
		sum.Add(rec.Elapsed)
		res.TotalOwnerTime += rec.OwnerTime
	}
	res.MaxTaskTime = sum.Max()
	res.MeanTaskTime = sum.Mean()
	return res, nil
}

// Experiment repeats the run the paper's 10 times (configurable) and
// averages, exactly as Section 4 does: "we ran the parallel program 10
// times for each parameter value and calculated the mean of these 10 runs
// as our metric".
type Experiment struct {
	LocalComputation
	Runs int
}

// ExperimentResult aggregates repeated runs.
type ExperimentResult struct {
	W             int
	DemandPerTask float64
	MaxTaskTime   stats.Summary // across runs
	MeanTaskTime  stats.Summary
}

// Run executes the repeated experiment.
func (e Experiment) Run() (ExperimentResult, error) {
	if e.Runs < 1 {
		return ExperimentResult{}, fmt.Errorf("cluster: experiment needs at least one run")
	}
	out := ExperimentResult{W: e.Workers, DemandPerTask: e.TotalDemand / float64(e.Workers)}
	for i := 0; i < e.Runs; i++ {
		r, err := e.LocalComputation.Run()
		if err != nil {
			return ExperimentResult{}, err
		}
		out.MaxTaskTime.Add(r.MaxTaskTime)
		out.MeanTaskTime.Add(r.MeanTaskTime)
	}
	return out, nil
}
