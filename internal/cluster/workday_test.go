package cluster

import (
	"math"
	"testing"

	"feasim/internal/rng"
	"feasim/internal/stats"
)

func workdaySchedule(t *testing.T) Schedule {
	t.Helper()
	// 8-hour busy day at 25%, 16-hour quiet night at 2% (in seconds).
	s, err := Workday(0.25, 0.02, 10, 8*3600, 16*3600)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule should fail")
	}
	bad := Schedule{{Name: "x", Duration: 0, Params: StationParams{
		OwnerThink: rng.Deterministic{V: 1}, OwnerDemand: rng.Deterministic{V: 1},
	}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-duration phase should fail")
	}
	if err := (Schedule{{Name: "y", Duration: 5, Params: StationParams{}}}).Validate(); err == nil {
		t.Error("invalid phase params should fail")
	}
	if _, err := NewPhasedStation("s", Schedule{}, rng.NewStream(1)); err == nil {
		t.Error("NewPhasedStation should reject invalid schedules")
	}
}

func TestScheduleCycleAndMeanUtil(t *testing.T) {
	s := workdaySchedule(t)
	if got := s.CycleLength(); got != 24*3600 {
		t.Errorf("cycle length %v", got)
	}
	// Duration-weighted: (0.25*8 + 0.02*16)/24.
	want := (0.25*8 + 0.02*16) / 24
	if got := s.MeanUtilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean utilization %v, want %v", got, want)
	}
}

func TestPhaseAtWrapsAround(t *testing.T) {
	s := workdaySchedule(t)
	day, end := s.phaseAt(0)
	if day.Name != "day" || end != 8*3600 {
		t.Errorf("t=0: %s until %v", day.Name, end)
	}
	night, nend := s.phaseAt(10 * 3600)
	if night.Name != "night" || nend != 24*3600 {
		t.Errorf("t=10h: %s until %v", night.Name, nend)
	}
	// Next cycle's day.
	d2, e2 := s.phaseAt(25 * 3600)
	if d2.Name != "day" || math.Abs(e2-32*3600) > 1e-6 {
		t.Errorf("t=25h: %s until %v", d2.Name, e2)
	}
}

func TestNightTasksFasterThanDayTasks(t *testing.T) {
	s := workdaySchedule(t)
	st, err := NewPhasedStation("ws", s, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	var day, night stats.Summary
	const demand = 1800 // 30 minutes: fits inside either phase
	for i := 0; i < 300; i++ {
		day.Add(st.RunTaskAt(0, demand).Elapsed)         // 8am start
		night.Add(st.RunTaskAt(10*3600, demand).Elapsed) // 6pm start
	}
	if night.Mean() >= day.Mean() {
		t.Errorf("night tasks (%.1f) should beat day tasks (%.1f)", night.Mean(), day.Mean())
	}
	// Day slowdown should be near 1/(1-0.25); night near 1/(1-0.02).
	dayStretch := day.Mean() / demand
	if math.Abs(dayStretch-1/0.75) > 0.05 {
		t.Errorf("day stretch %.3f, want about %.3f", dayStretch, 1/0.75)
	}
	nightStretch := night.Mean() / demand
	if math.Abs(nightStretch-1/0.98) > 0.03 {
		t.Errorf("night stretch %.3f, want about %.3f", nightStretch, 1/0.98)
	}
}

func TestTaskCrossingPhaseBoundary(t *testing.T) {
	// A task started one hour before dawn (night→day boundary at 24h)
	// experiences quiet time first, then the busy day: its stretch should
	// land between the two phases' stretches.
	s := workdaySchedule(t)
	st, err := NewPhasedStation("ws", s, rng.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	var cross stats.Summary
	const demand = 2 * 3600 // two hours of compute
	for i := 0; i < 200; i++ {
		cross.Add(st.RunTaskAt(23*3600, demand).Elapsed)
	}
	stretch := cross.Mean() / demand
	if stretch <= 1.0/0.98-0.005 || stretch >= 1/0.75 {
		t.Errorf("boundary-crossing stretch %.3f should lie between night and day stretches", stretch)
	}
}

func TestPhasedStationRecordConsistency(t *testing.T) {
	s := workdaySchedule(t)
	st, err := NewPhasedStation("ws", s, rng.NewStream(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec := st.RunTaskAt(float64(i)*1000, 500)
		if math.Abs(rec.Elapsed-(rec.Demand+rec.OwnerTime)) > 1e-9 {
			t.Fatalf("record inconsistent: %+v", rec)
		}
	}
	if st.Name() != "ws" {
		t.Error("name accessor")
	}
	if st.Schedule().CycleLength() != 24*3600 {
		t.Error("schedule accessor")
	}
}

func TestPhasedStationNegativeDemandPanics(t *testing.T) {
	s := workdaySchedule(t)
	st, _ := NewPhasedStation("ws", s, rng.NewStream(13))
	defer func() {
		if recover() == nil {
			t.Error("negative demand should panic")
		}
	}()
	st.RunTaskAt(0, -1)
}
