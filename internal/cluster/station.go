// Package cluster is the virtual non-dedicated workstation cluster on which
// the paper's experiment (Section 4: PVM on 1-12 Sun ELC Sparcstations)
// is reproduced.
//
// Each Station models one workstation: a CPU shared between an owner
// workload (preemptive priority) and one niced parallel task. Time is
// virtual, per station. This matches the paper's measurement methodology
// exactly: the experiment records each task's own computation interval and
// reports the maximum, "to isolate the impact of workstation owner process
// interference" — message-passing overhead is deliberately excluded, so
// stations do not need a shared clock.
//
// Owner behaviour is the paper's: alternate thinking and computing, with
// configurable think/demand distributions. Unlike the analytic model, think
// time here elapses in wall-clock (virtual) time — owners keep living while
// the parallel task is suspended — which is the "real system" the model is
// an optimistic bound for.
package cluster

import (
	"fmt"
	"sync"

	"feasim/internal/rng"
)

// StationParams configures the owner workload of one virtual workstation.
type StationParams struct {
	// OwnerThink is the owner's think-time distribution (virtual seconds).
	OwnerThink rng.Dist
	// OwnerDemand is the owner's burst service demand distribution.
	OwnerDemand rng.Dist
	// StationaryStart, when true, starts each task against an owner process
	// in steady state: with probability equal to the owner utilization the
	// task arrives mid-burst and waits out a residual. When false the owner
	// always begins thinking at task start (the analytic model's optimistic
	// convention).
	StationaryStart bool
}

// Validate checks the parameters.
func (p StationParams) Validate() error {
	if p.OwnerThink == nil || p.OwnerDemand == nil {
		return fmt.Errorf("cluster: station needs owner think and demand distributions")
	}
	return nil
}

// Utilization is the owner's long-run CPU share E[demand]/(E[think]+E[demand]).
func (p StationParams) Utilization() float64 {
	d, z := p.OwnerDemand.Mean(), p.OwnerThink.Mean()
	if d <= 0 {
		return 0
	}
	return d / (z + d)
}

// TaskRecord is one task execution on one station — the quantity the
// paper's experiment reports ("each task record[s] the system time when it
// started computation and ... when completing computation").
type TaskRecord struct {
	Station   string
	Demand    float64 // pure compute demand
	Elapsed   float64 // wall (virtual) time from start to completion
	OwnerTime float64 // interference absorbed from owner bursts
	Bursts    int     // number of owner bursts that hit the task
	Migrated  bool    // true when the migration extension moved the task
}

// Station is one virtual workstation.
type Station struct {
	name   string
	params StationParams
	stream *rng.Stream

	mu        sync.Mutex
	tasksRun  int
	busyOwner float64 // cumulative owner time charged to tasks
	busyTask  float64 // cumulative task compute delivered
	trace     *Trace  // optional timeline recorder (SetTrace)
}

// NewStation builds a station with its own random stream.
func NewStation(name string, params StationParams, stream *rng.Stream) (*Station, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Station{name: name, params: params, stream: stream}, nil
}

// Name returns the station's host name.
func (s *Station) Name() string { return s.name }

// Params returns the configured owner workload.
func (s *Station) Params() StationParams { return s.params }

// RunTask executes a parallel task of the given compute demand to
// completion and returns its timing record. Safe for concurrent use; each
// call simulates an independent task arrival.
func (s *Station) RunTask(demand float64) TaskRecord {
	rec, remaining := s.runBounded(demand, -1)
	if remaining != 0 {
		panic("cluster: unbounded run left work unfinished")
	}
	return rec
}

// RunTaskBudget executes the task until completion or until accumulated
// owner interference exceeds maxInterference (a virtual-time budget). It
// returns the record so far and the remaining compute demand (0 when the
// task completed). The migration policy is built on this primitive.
func (s *Station) RunTaskBudget(demand, maxInterference float64) (TaskRecord, float64) {
	return s.runBounded(demand, maxInterference)
}

// runBounded is the owner/task interleaving walk. maxInterference < 0 means
// unbounded.
func (s *Station) runBounded(demand, maxInterference float64) (TaskRecord, float64) {
	if demand < 0 {
		panic(fmt.Sprintf("cluster: negative task demand %v", demand))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := TaskRecord{Station: s.name, Demand: demand}
	now := 0.0
	remaining := demand
	taskSeq := s.tasksRun
	emit := func(kind TraceKind, start, end float64) {
		if s.trace != nil && end > start {
			s.trace.add(TraceEvent{Station: s.name, Task: taskSeq, Kind: kind, Start: start, End: end})
		}
	}

	// Owner state at task arrival.
	nextArrival := 0.0
	if s.params.StationaryStart && s.stream.Float64() < s.params.Utilization() {
		// Arrived mid-burst: wait out a residual. Sampling burst×U(0,1) is
		// the exact equilibrium residual for deterministic bursts and a
		// serviceable approximation otherwise.
		resid := s.params.OwnerDemand.Sample(s.stream) * s.stream.Float64()
		emit(TraceOwner, now, now+resid)
		now += resid
		rec.OwnerTime += resid
		rec.Bursts++
		nextArrival = now + s.params.OwnerThink.Sample(s.stream)
	} else {
		// Owner thinking; geometric/exponential thinks are memoryless so a
		// fresh sample is the exact residual.
		nextArrival = now + s.params.OwnerThink.Sample(s.stream)
	}

	for remaining > 0 {
		if maxInterference >= 0 && rec.OwnerTime > maxInterference {
			break
		}
		if nextArrival <= now {
			// Owner bursts in; task is preempted for the whole burst.
			// Zero-length bursts (a dedicated owner) are not counted.
			b := s.params.OwnerDemand.Sample(s.stream)
			emit(TraceOwner, now, now+b)
			now += b
			rec.OwnerTime += b
			if b > 0 {
				rec.Bursts++
			}
			nextArrival = now + s.params.OwnerThink.Sample(s.stream)
			continue
		}
		slice := nextArrival - now
		if slice > remaining {
			slice = remaining
		}
		emit(TraceCompute, now, now+slice)
		now += slice
		remaining -= slice
	}

	rec.Elapsed = now
	s.tasksRun++
	s.busyOwner += rec.OwnerTime
	s.busyTask += demand - remaining
	return rec, remaining
}

// ProbeUtilization measures the owner's busy fraction over a virtual
// horizon with no parallel task present — the analogue of the paper's
// "mean of the machine utilizations (by using the unix uptime command)
// over two working days when no PVM programs were executing".
func (s *Station) ProbeUtilization(horizon float64) float64 {
	if horizon <= 0 {
		panic("cluster: probe horizon must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now, busy := 0.0, 0.0
	for now < horizon {
		now += s.params.OwnerThink.Sample(s.stream)
		if now >= horizon {
			break
		}
		b := s.params.OwnerDemand.Sample(s.stream)
		if now+b > horizon {
			busy += horizon - now
			now = horizon
			break
		}
		busy += b
		now += b
	}
	return busy / horizon
}

// Stats reports cumulative task activity on this station.
func (s *Station) Stats() (tasksRun int, taskTime, ownerTime float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasksRun, s.busyTask, s.busyOwner
}
