package cluster

import (
	"math"
	"testing"

	"feasim/internal/core"
	"feasim/internal/pvm"
)

func testCluster(t *testing.T, n int, util float64, seed uint64) *Cluster {
	t.Helper()
	c, err := New(n, elcParams(t, 10, util), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLocalComputationValidate(t *testing.T) {
	c := testCluster(t, 2, 0.03, 1)
	bad := []LocalComputation{
		{Cluster: nil, Workers: 1, TotalDemand: 10},
		{Cluster: c, Workers: 0, TotalDemand: 10},
		{Cluster: c, Workers: 3, TotalDemand: 10}, // more workers than stations
		{Cluster: c, Workers: 2, TotalDemand: 0},
	}
	for i, lc := range bad {
		if err := lc.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, lc)
		}
		if _, err := lc.Run(); err == nil {
			t.Errorf("case %d: Run should refuse", i)
		}
	}
}

func TestLocalComputationDedicated(t *testing.T) {
	c := testCluster(t, 4, 0, 2)
	res, err := LocalComputation{Cluster: c, Workers: 4, TotalDemand: 400}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTaskTime != 100 || res.MeanTaskTime != 100 {
		t.Errorf("dedicated max/mean = %v/%v, want 100/100", res.MaxTaskTime, res.MeanTaskTime)
	}
	if len(res.Records) != 4 {
		t.Errorf("records = %d", len(res.Records))
	}
	if res.TotalOwnerTime != 0 {
		t.Errorf("owner time on dedicated cluster: %v", res.TotalOwnerTime)
	}
}

func TestLocalComputationRecordsComeFromAllStations(t *testing.T) {
	c := testCluster(t, 6, 0.03, 3)
	res, err := LocalComputation{Cluster: c, Workers: 6, TotalDemand: 600}.Run()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Records {
		seen[r.Station] = true
	}
	if len(seen) != 6 {
		t.Errorf("tasks ran on %d distinct stations, want 6 (one per workstation)", len(seen))
	}
}

func TestLocalComputationMaxAtLeastMean(t *testing.T) {
	c := testCluster(t, 8, 0.1, 4)
	res, err := LocalComputation{Cluster: c, Workers: 8, TotalDemand: 2000}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTaskTime < res.MeanTaskTime {
		t.Errorf("max %v < mean %v", res.MaxTaskTime, res.MeanTaskTime)
	}
	if res.MaxTaskTime < res.DemandPerTask {
		t.Errorf("max task time %v below pure demand %v", res.MaxTaskTime, res.DemandPerTask)
	}
}

func TestLocalComputationOverTCP(t *testing.T) {
	c := testCluster(t, 3, 0.03, 5)
	res, err := LocalComputation{
		Cluster: c, Workers: 3, TotalDemand: 300, Transport: pvm.TCP,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Errorf("TCP run returned %d records", len(res.Records))
	}
	if res.MaxTaskTime < 100 {
		t.Errorf("max task time %v below per-task demand", res.MaxTaskTime)
	}
}

func TestExperimentAveragesRuns(t *testing.T) {
	c := testCluster(t, 4, 0.05, 6)
	exp := Experiment{
		LocalComputation: LocalComputation{Cluster: c, Workers: 4, TotalDemand: 800},
		Runs:             10,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTaskTime.N() != 10 {
		t.Errorf("runs recorded = %d", res.MaxTaskTime.N())
	}
	if res.MaxTaskTime.Mean() < res.DemandPerTask {
		t.Errorf("mean max task time %v below demand %v", res.MaxTaskTime.Mean(), res.DemandPerTask)
	}
	if _, err := (Experiment{LocalComputation: exp.LocalComputation, Runs: 0}).Run(); err == nil {
		t.Error("zero runs should fail")
	}
}

// TestFigure10Agreement reproduces the paper's Figure 10 check at one
// point: measured mean max-task time on the virtual 12-workstation cluster
// at 3% utilization should sit near the analytic prediction (the paper:
// "The models qualitative and quantitative predictions are in close
// agreement with the measured results").
func TestFigure10Agreement(t *testing.T) {
	const (
		o      = 10.0
		util   = 0.03
		w      = 12
		demand = 960.0 * 12 // 16 dedicated minutes scaled to W tasks
	)
	c := testCluster(t, w, util, 77)
	exp := Experiment{
		LocalComputation: LocalComputation{Cluster: c, Workers: w, TotalDemand: demand},
		Runs:             60,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.ParamsFromUtilization(demand, w, o, util)
	if err != nil {
		t.Fatal(err)
	}
	ana := core.MustAnalyze(p)
	got := res.MaxTaskTime.Mean()
	if rel := math.Abs(got-ana.EJob) / ana.EJob; rel > 0.05 {
		t.Errorf("measured mean max-task %.1f vs analytic E_j %.1f (rel %.3f)", got, ana.EJob, rel)
	}
}

// TestFigure11SpeedupFallsWithSmallerDemand pins the paper's Figure 11
// observation: "the speedup decreases as the job demand decreases ... the
// speedup for a job demand of 1 is lower than the speedup for a job demand
// of 16. This is because the task ratio is smaller".
func TestFigure11SpeedupFallsWithSmallerDemand(t *testing.T) {
	const (
		w    = 12
		util = 0.10 // higher interference than the ELCs to sharpen the effect
	)
	speedup := func(minutes float64) float64 {
		demand := minutes * 60
		// maxtask(1)
		c1 := testCluster(t, 1, util, 101)
		e1, err := (Experiment{
			LocalComputation: LocalComputation{Cluster: c1, Workers: 1, TotalDemand: demand},
			Runs:             40,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		// maxtask(W)
		cw := testCluster(t, w, util, 102)
		ew, err := (Experiment{
			LocalComputation: LocalComputation{Cluster: cw, Workers: w, TotalDemand: demand},
			Runs:             40,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return e1.MaxTaskTime.Mean() / ew.MaxTaskTime.Mean()
	}
	s1 := speedup(1)
	s16 := speedup(16)
	if s16 <= s1 {
		t.Errorf("speedup(demand=16min)=%.2f should exceed speedup(demand=1min)=%.2f", s16, s1)
	}
	if s16 > float64(w) {
		t.Errorf("speedup %.2f exceeds W=%d", s16, w)
	}
}
