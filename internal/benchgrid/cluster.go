package benchgrid

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"feasim/internal/peer"
	"feasim/internal/serve"
	"feasim/internal/solve"
)

// The cluster-forward workload (cluster_forward_hit in BENCH_9.json): a
// 3-node loopback ring where every measured request lands on a non-home node
// and is served by forwarding to the home's warm cache — one extra HTTP hop
// on top of the served_query_hit path, which is exactly the cost the
// multi-node answer tier adds when the replica cache cannot absorb a key.
// The entry node's cache holds a single answer while the loop alternates two
// remote-homed envelopes, so each request evicts the other's replica and the
// forward path stays exercised instead of degrading into local replica hits.

// clusterForwardNodes is the ring size of the cluster-forward workload.
const clusterForwardNodes = 3

// ClusterForwardBench builds the forwarded-hit benchmark body: three serve
// nodes on real loopback listeners (the ring needs the URLs before the
// servers exist, so httptest's late-bound address does not fit), the home
// caches warmed directly, and every measured POST entering at a non-home
// node.
func ClusterForwardBench() func(b *testing.B) {
	return func(b *testing.B) {
		lns := make([]net.Listener, clusterForwardNodes)
		urls := make([]string, clusterForwardNodes)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			lns[i] = ln
			urls[i] = "http://" + ln.Addr().String()
		}
		servers := make([]*serve.Server, clusterForwardNodes)
		clusters := make([]*peer.Cluster, clusterForwardNodes)
		for i := range lns {
			var others []string
			for j, u := range urls {
				if j != i {
					others = append(others, u)
				}
			}
			cl, err := peer.New(peer.Config{Self: urls[i], Peers: others})
			if err != nil {
				b.Fatal(err)
			}
			clusters[i] = cl
			cfg := serve.Config{
				Options: solve.Options{Protocol: ServedProtocol()},
				Cluster: cl,
			}
			if i == 0 {
				// The entry node keeps one cached answer: alternating two
				// remote-homed envelopes evicts the other's replica every
				// request, so the measured path is always a forward.
				cfg.CacheCapacity = 1
			}
			srv, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			servers[i] = srv
			go srv.Serve(lns[i])
		}
		defer func() {
			http.DefaultTransport.(*http.Transport).CloseIdleConnections()
			for _, srv := range servers {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				srv.Shutdown(ctx)
				cancel()
			}
		}()

		// Pick two envelopes homed away from the entry node; the ephemeral
		// ports make the ring layout run-dependent, so select dynamically.
		var envs, homes []string
		for seed := 1; len(envs) < 2 && seed < 1000; seed++ {
			env := ServedQueryEnvelope(seed)
			q, err := solve.ParseQuery([]byte(env))
			if err != nil {
				b.Fatal(err)
			}
			h, ok := solve.RouteHash(ServedQueryBackend, q)
			if !ok {
				b.Fatal("unroutable bench envelope")
			}
			if home, local := clusters[0].Home(h); !local {
				envs = append(envs, env)
				homes = append(homes, home)
			}
		}
		if len(envs) < 2 {
			b.Fatal("could not find two remote-homed envelopes")
		}
		post := func(base, env string) {
			resp, err := http.Post(base+"/v1/query?backend="+ServedQueryBackend,
				"application/json", strings.NewReader(env))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		for i, env := range envs {
			post(homes[i], env) // warm each home's cache directly
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(urls[0], envs[i%2])
		}
		b.StopTimer()
		st := clusters[0].Status()
		if st.Forwards < int64(b.N) {
			b.Fatalf("only %d forwards for %d requests — the workload degraded into local hits", st.Forwards, b.N)
		}
	}
}
