// Package benchgrid defines the canonical sweep, served-query, timeline and
// cache workloads measured both by the in-repo benchmarks and by `feasim
// bench` (BENCH_*.json, currently BENCH_9.json). Keeping one definition
// ensures the tracked performance artifact and the benchmark the
// README/ROADMAP numbers cite measure the same workloads.
package benchgrid

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"feasim/internal/serve"
	"feasim/internal/sim"
	"feasim/internal/solve"
)

// Points is the size of each grid returned by this package.
const Points = 100

// ws is the 25-point workstation axis shared by both grids.
func ws() []int {
	out := make([]int, 0, 25)
	for w := 4; w <= 100; w += 4 {
		out = append(out, w)
	}
	return out
}

// AnalyticGrid is the 100-point analytic sweep (25 system sizes × 4
// utilizations at fixed J): per-point work varies with W, isolating the
// engine's fan-out, seed-splitting and channel overhead.
func AnalyticGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:     solve.Scenario{Name: "bench", J: 10000, O: 10},
		W:        ws(),
		Util:     []float64{0.01, 0.05, 0.1, 0.2},
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}

// FixedTPGrid is the fixed-(T, P) W-sweep: the memory-bounded-scaleup shape
// with a large per-task demand (T = 10^5 at every W). Every point shares
// one binomial table per utilization through the process-wide kernel memo,
// so this isolates the gain from cross-worker table sharing.
func FixedTPGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:      solve.Scenario{Name: "fixedtp", O: 10},
		W:         ws(),
		Util:      []float64{0.01, 0.05, 0.1, 0.2},
		TaskRatio: []float64{10000}, // T = ratio·O = 1e5 at every W
		Backends:  []string{solve.BackendAnalytic},
		Seed:      1993,
	}
}

// FrontierWorkload is the canonical adaptive-refinement workload
// (sweep_frontier in BENCH_9.json): the feasibility boundary of the
// 20-workstation system over util × task ratio, refined from a 4×4 coarse
// grid down to resolution 32. The interesting ratio is in the stats the
// bench reports: adaptive probes vs the 33×33 dense lattice.
func FrontierWorkload() solve.FrontierSpec {
	return solve.FrontierSpec{
		Base: solve.ReportQuery{Scenario: solve.Scenario{
			Name: "bench-frontier", J: 2000, W: 20, O: 10, Util: 0.1, TargetEff: 0.8,
		}},
		X:      solve.FrontierAxis{Axis: solve.FrontierAxisUtil, Min: 0.02, Max: 0.2},
		Y:      solve.FrontierAxis{Axis: solve.FrontierAxisRatio, Min: 1, Max: 40},
		Coarse: 4,
		Depth:  3,
		Seed:   1993,
	}
}

// FrontierBench measures the frontier engine end to end on the canonical
// workload: cells/s throughput plus dense_per_probe, the probe-count saving
// over the equivalent dense grid (the engine's reason to exist — the
// tentpole acceptance bar pins it ≥ 10 in the test suite).
func FrontierBench() func(b *testing.B) {
	return func(b *testing.B) {
		spec := FrontierWorkload()
		ctx := context.Background()
		cells := 0
		var stats solve.FrontierStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := solve.CollectFrontier(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Boundary == 0 || res.Stats.Failed > 0 {
				b.Fatalf("degenerate frontier run: %+v", res.Stats)
			}
			cells += res.Stats.Cells
			stats = res.Stats
		}
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
		b.ReportMetric(float64(stats.DenseEvaluations)/float64(stats.Evaluations), "dense_per_probe")
	}
}

// ThresholdPoints is the size of the threshold query grid.
const ThresholdPoints = 40

// ThresholdGrid is the query-path workload: 40 analytic threshold
// bisections (20 utilizations × 2 system sizes, the conclusions-table
// question at each point). Each grid point runs a full
// exponential-plus-binary search, so points/s here measures the typed query
// path end to end — envelope-free dispatch, the bisection driver, and the
// kernel memo that the probes of every search share.
func ThresholdGrid() solve.QuerySweepSpec {
	utils := make([]float64, 0, 20)
	for u := 0.01; u <= 0.20+1e-9; u += 0.01 {
		utils = append(utils, u)
	}
	return solve.QuerySweepSpec{
		Base:     solve.ThresholdQuery{O: 10, TargetEff: 0.8},
		W:        []int{20, 60},
		Util:     utils,
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}

// TimelineEpochCount is the epoch resolution of the canonical workday
// timeline workload.
const TimelineEpochCount = 24

// TimelineWorkdayQuery is the canonical non-stationary workload: the 3-phase
// workday (morning ramp, afternoon peak, overnight idle) queried at 24
// epochs. Each answer runs the quasi-static walker across every epoch, with
// every stationary kernel evaluation flowing through the process-wide
// binomial-table memo — so points/s here measures the timeline query path
// end to end.
func TimelineWorkdayQuery() solve.TimelineQuery {
	return solve.TimelineQuery{
		Scenario: solve.Scenario{
			Name: "bench-workday", J: 400, W: 4, O: 10, Seed: 1993,
			Schedule: []solve.PhaseSpec{
				{Name: "morning", Duration: 480, Util: 0.15},
				{Name: "afternoon", Duration: 480, Util: 0.3},
				{Name: "night", Duration: 480, Util: 0.02},
			},
		},
		Epochs: TimelineEpochCount,
	}
}

// TimelineQuasiStaticBench measures the analytic timeline path
// (timeline_quasistatic in BENCH_9.json): epoch answers per second over the
// canonical workday.
func TimelineQuasiStaticBench() func(b *testing.B) {
	return func(b *testing.B) {
		q := TimelineWorkdayQuery()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := solve.Analytic{}.Answer(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if got := len(a.(solve.TimelineAnswer).Epochs); got != TimelineEpochCount {
				b.Fatalf("got %d epochs, want %d", got, TimelineEpochCount)
			}
		}
		b.ReportMetric(float64(TimelineEpochCount*b.N)/b.Elapsed().Seconds(), "points/s")
	}
}

// The served-query workload, shared by BenchmarkServedQuery and `feasim
// bench` (served_query_cold / served_query_hit in BENCH_9.json): one
// empirical threshold bisection per HTTP request on the exact-sim backend.
// The cold side varies the seed per request so every envelope misses the
// answer cache; the hit side repeats ServedQueryEnvelope(1).

// ServedQueryBackend is the backend the served-query pair exercises.
const ServedQueryBackend = solve.BackendExact

// ServedProtocol is the small batch-means protocol keeping each cold
// bisection probe cheap.
func ServedProtocol() sim.Protocol {
	return sim.Protocol{Batches: 5, BatchSize: 100, Level: 0.90}
}

// ServedQueryEnvelope is the canonical threshold envelope at the given seed.
func ServedQueryEnvelope(seed int) string {
	return fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, seed)
}

// ServedQueryBench builds one side of the served-query pair as a benchmark
// body: the HTTP query service answering the canonical workload end to end,
// cache-hit (one envelope repeated) or cold (a fresh seed per request).
// Each measurement run gets a fresh server — and so a fresh answer cache —
// keeping repeated testing.Benchmark calibration runs honest.
func ServedQueryBench(hit bool) func(b *testing.B) {
	return func(b *testing.B) {
		srv, err := serve.New(serve.Config{
			Options: solve.Options{Protocol: ServedProtocol()},
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		post := func(env string) {
			resp, err := http.Post(ts.URL+"/v1/query?backend="+ServedQueryBackend,
				"application/json", strings.NewReader(env))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		if hit {
			post(ServedQueryEnvelope(1)) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hit {
				post(ServedQueryEnvelope(1))
			} else {
				post(ServedQueryEnvelope(i + 1))
			}
		}
	}
}

// ServedBatchSize is the number of envelopes per /v1/batch request in the
// served-batch workload.
const ServedBatchSize = 64

// ServedBatchBody is the canonical batch: ServedBatchSize mixed envelopes —
// threshold, report and distribution queries on the exact backend, cycling
// through distinct seeds so the batch holds distinct cache keys rather than
// one repeated envelope.
func ServedBatchBody() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < ServedBatchSize; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		seed := i/3 + 1
		switch i % 3 {
		case 0:
			sb.WriteString(ServedQueryEnvelope(seed))
		case 1:
			fmt.Fprintf(&sb, `{"kind": "report", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1, "seed": %d}}`, seed)
		case 2:
			fmt.Fprintf(&sb, `{"kind": "distribution", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1, "seed": %d}, "deadlines": [150]}`, seed)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// ServedBatchBench measures the batched hot path (served_batch in
// BENCH_9.json): one warm request populates the answer cache, then every
// iteration answers all ServedBatchSize envelopes in a single /v1/batch
// round trip from the LRU. The env/s metric is what the acceptance bar
// compares against the per-request served_query_hit throughput — the
// batch's value is amortizing the HTTP round trip and response encoding
// across 64 answers.
func ServedBatchBench() func(b *testing.B) {
	return func(b *testing.B) {
		srv, err := serve.New(serve.Config{
			Options: solve.Options{Protocol: ServedProtocol()},
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		body := ServedBatchBody()
		post := func() {
			resp, err := http.Post(ts.URL+"/v1/batch?backend="+ServedQueryBackend,
				"application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		post() // warm: every distinct envelope solves once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
		b.ReportMetric(float64(ServedBatchSize*b.N)/b.Elapsed().Seconds(), "env/s")
	}
}

// cannedSolver answers instantly with a fixed-shape answer, so the cache
// contention benchmark measures the answer layer's locking and key hashing,
// not a backend.
type cannedSolver struct{ name string }

func (c cannedSolver) Name() string           { return c.name }
func (c cannedSolver) Capabilities() []string { return solve.QueryKinds() }

func (c cannedSolver) Answer(_ context.Context, q solve.Query) (solve.Answer, error) {
	if rq, ok := q.(solve.ReportQuery); ok {
		return solve.ReportAnswer{Report: solve.Report{Scenario: rq.Scenario, Backend: c.name, EJob: 1}}, nil
	}
	return solve.ThresholdAnswer{Backend: c.name, MinRatio: 7}, nil
}

func (c cannedSolver) Solve(ctx context.Context, s solve.Scenario) (solve.Report, error) {
	a, err := c.Answer(ctx, solve.ReportQuery{Scenario: s})
	if err != nil {
		return solve.Report{}, err
	}
	return a.(solve.ReportAnswer).Report, nil
}

// CacheHitContentionBench measures the AnswerCache hot path — repeated hits
// over a resident working set of 256 distinct keys — at a given shard count
// and parallelism (cache_hits_* in BENCH_9.json). shards == 1 is the
// pre-sharding single-mutex layout, the baseline the deployed layout
// (shards == 0, sized to GOMAXPROCS) must not lose to at parallelism 1 — on
// a single-CPU host the default *is* one shard, by design, so the deployed
// cache never pays the shard hash where it cannot shed contention. A pinned
// shards > 1 run records that hash tax explicitly; higher parallelism shows
// what sharding buys once goroutines contend (visible only on multi-core
// hosts).
func CacheHitContentionBench(shards, parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		cache := solve.NewAnswerCacheShards(4096, shards)
		cs := solve.NewCachedSolver(cannedSolver{name: solve.BackendAnalytic}, cache)
		const keys = 256
		queries := make([]solve.Query, keys)
		for i := range queries {
			// Distinct J per key (integral per-task demand at W=10) spreads
			// the working set across shards.
			queries[i] = solve.ReportQuery{Scenario: solve.Scenario{
				J: float64(1000 + 10*i), W: 10, O: 10, Util: 0.1,
			}}
		}
		ctx := context.Background()
		for _, q := range queries {
			if _, err := cs.Answer(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		if parallelism <= 1 {
			// The uncontended baseline must actually be uncontended: a
			// plain sequential loop, not RunParallel (whose goroutine count
			// is parallelism × GOMAXPROCS and would contend on any
			// multi-core host).
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, cached, err := cs.AnswerCached(ctx, queries[i%keys])
				if err != nil || !cached {
					b.Fatalf("cached=%v err=%v", cached, err)
				}
			}
			return
		}
		var failure atomic.Value
		b.SetParallelism(parallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				_, cached, err := cs.AnswerCached(ctx, queries[i%keys])
				i++
				if err != nil || !cached {
					failure.Store(fmt.Sprintf("cached=%v err=%v", cached, err))
					return
				}
			}
		})
		if msg := failure.Load(); msg != nil {
			b.Fatal(msg)
		}
	}
}
