// Package benchgrid defines the canonical sweep workloads measured both by
// the in-repo benchmarks and by `feasim bench` (BENCH_3.json). Keeping one
// definition ensures the tracked performance artifact and the benchmark the
// README/ROADMAP numbers cite measure the same grids.
package benchgrid

import "feasim/internal/solve"

// Points is the size of each grid returned by this package.
const Points = 100

// ws is the 25-point workstation axis shared by both grids.
func ws() []int {
	out := make([]int, 0, 25)
	for w := 4; w <= 100; w += 4 {
		out = append(out, w)
	}
	return out
}

// AnalyticGrid is the 100-point analytic sweep (25 system sizes × 4
// utilizations at fixed J): per-point work varies with W, isolating the
// engine's fan-out, seed-splitting and channel overhead.
func AnalyticGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:     solve.Scenario{Name: "bench", J: 10000, O: 10},
		W:        ws(),
		Util:     []float64{0.01, 0.05, 0.1, 0.2},
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}

// FixedTPGrid is the fixed-(T, P) W-sweep: the memory-bounded-scaleup shape
// with a large per-task demand (T = 10^5 at every W). Every point shares
// one binomial table per utilization through the process-wide kernel memo,
// so this isolates the gain from cross-worker table sharing.
func FixedTPGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:      solve.Scenario{Name: "fixedtp", O: 10},
		W:         ws(),
		Util:      []float64{0.01, 0.05, 0.1, 0.2},
		TaskRatio: []float64{10000}, // T = ratio·O = 1e5 at every W
		Backends:  []string{solve.BackendAnalytic},
		Seed:      1993,
	}
}

// ThresholdPoints is the size of the threshold query grid.
const ThresholdPoints = 40

// ThresholdGrid is the query-path workload: 40 analytic threshold
// bisections (20 utilizations × 2 system sizes, the conclusions-table
// question at each point). Each grid point runs a full
// exponential-plus-binary search, so points/s here measures the typed query
// path end to end — envelope-free dispatch, the bisection driver, and the
// kernel memo that the probes of every search share.
func ThresholdGrid() solve.QuerySweepSpec {
	utils := make([]float64, 0, 20)
	for u := 0.01; u <= 0.20+1e-9; u += 0.01 {
		utils = append(utils, u)
	}
	return solve.QuerySweepSpec{
		Base:     solve.ThresholdQuery{O: 10, TargetEff: 0.8},
		W:        []int{20, 60},
		Util:     utils,
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}
