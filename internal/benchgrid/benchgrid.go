// Package benchgrid defines the canonical sweep workloads measured both by
// the in-repo benchmarks and by `feasim bench` (BENCH_3.json). Keeping one
// definition ensures the tracked performance artifact and the benchmark the
// README/ROADMAP numbers cite measure the same grids.
package benchgrid

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"feasim/internal/serve"
	"feasim/internal/sim"
	"feasim/internal/solve"
)

// Points is the size of each grid returned by this package.
const Points = 100

// ws is the 25-point workstation axis shared by both grids.
func ws() []int {
	out := make([]int, 0, 25)
	for w := 4; w <= 100; w += 4 {
		out = append(out, w)
	}
	return out
}

// AnalyticGrid is the 100-point analytic sweep (25 system sizes × 4
// utilizations at fixed J): per-point work varies with W, isolating the
// engine's fan-out, seed-splitting and channel overhead.
func AnalyticGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:     solve.Scenario{Name: "bench", J: 10000, O: 10},
		W:        ws(),
		Util:     []float64{0.01, 0.05, 0.1, 0.2},
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}

// FixedTPGrid is the fixed-(T, P) W-sweep: the memory-bounded-scaleup shape
// with a large per-task demand (T = 10^5 at every W). Every point shares
// one binomial table per utilization through the process-wide kernel memo,
// so this isolates the gain from cross-worker table sharing.
func FixedTPGrid() solve.SweepSpec {
	return solve.SweepSpec{
		Base:      solve.Scenario{Name: "fixedtp", O: 10},
		W:         ws(),
		Util:      []float64{0.01, 0.05, 0.1, 0.2},
		TaskRatio: []float64{10000}, // T = ratio·O = 1e5 at every W
		Backends:  []string{solve.BackendAnalytic},
		Seed:      1993,
	}
}

// ThresholdPoints is the size of the threshold query grid.
const ThresholdPoints = 40

// ThresholdGrid is the query-path workload: 40 analytic threshold
// bisections (20 utilizations × 2 system sizes, the conclusions-table
// question at each point). Each grid point runs a full
// exponential-plus-binary search, so points/s here measures the typed query
// path end to end — envelope-free dispatch, the bisection driver, and the
// kernel memo that the probes of every search share.
func ThresholdGrid() solve.QuerySweepSpec {
	utils := make([]float64, 0, 20)
	for u := 0.01; u <= 0.20+1e-9; u += 0.01 {
		utils = append(utils, u)
	}
	return solve.QuerySweepSpec{
		Base:     solve.ThresholdQuery{O: 10, TargetEff: 0.8},
		W:        []int{20, 60},
		Util:     utils,
		Backends: []string{solve.BackendAnalytic},
		Seed:     1993,
	}
}

// The served-query workload, shared by BenchmarkServedQuery and `feasim
// bench` (served_query_cold / served_query_hit in BENCH_4.json): one
// empirical threshold bisection per HTTP request on the exact-sim backend.
// The cold side varies the seed per request so every envelope misses the
// answer cache; the hit side repeats ServedQueryEnvelope(1).

// ServedQueryBackend is the backend the served-query pair exercises.
const ServedQueryBackend = solve.BackendExact

// ServedProtocol is the small batch-means protocol keeping each cold
// bisection probe cheap.
func ServedProtocol() sim.Protocol {
	return sim.Protocol{Batches: 5, BatchSize: 100, Level: 0.90}
}

// ServedQueryEnvelope is the canonical threshold envelope at the given seed.
func ServedQueryEnvelope(seed int) string {
	return fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, seed)
}

// ServedQueryBench builds one side of the served-query pair as a benchmark
// body: the HTTP query service answering the canonical workload end to end,
// cache-hit (one envelope repeated) or cold (a fresh seed per request).
// Each measurement run gets a fresh server — and so a fresh answer cache —
// keeping repeated testing.Benchmark calibration runs honest.
func ServedQueryBench(hit bool) func(b *testing.B) {
	return func(b *testing.B) {
		srv, err := serve.New(serve.Config{
			Options: solve.Options{Protocol: ServedProtocol()},
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		post := func(env string) {
			resp, err := http.Post(ts.URL+"/v1/query?backend="+ServedQueryBackend,
				"application/json", strings.NewReader(env))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		if hit {
			post(ServedQueryEnvelope(1)) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hit {
				post(ServedQueryEnvelope(1))
			} else {
				post(ServedQueryEnvelope(i + 1))
			}
		}
	}
}
