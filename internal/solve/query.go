package solve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// The paper asks more than one kind of question. PR 1's Scenario/Report pair
// covers only "evaluate this operating point"; the Query/Answer model types
// the whole family — the Section 3 metrics, the conclusions-table threshold
// search, cluster right-sizing, deadline quantiles, and memory-bounded
// scaleup — behind one JSON envelope {"kind": "...", ...} and one method,
// Solver.Answer. Backends advertise what they can answer via Capabilities,
// and refuse the rest with an UnsupportedError (errors.Is-able against
// ErrUnsupported), so callers can discover capabilities instead of
// hard-coding them.

// Query kinds, the values of the envelope's "kind" field.
const (
	KindReport       = "report"
	KindThreshold    = "threshold"
	KindPartition    = "partition"
	KindDistribution = "distribution"
	KindScaled       = "scaled"
	KindTimeline     = "timeline"
)

// QueryKinds lists every query kind in canonical order.
func QueryKinds() []string {
	return []string{KindReport, KindThreshold, KindPartition, KindDistribution, KindScaled, KindTimeline}
}

// ErrUnsupported is the sentinel for a (backend, query kind) pair the backend
// cannot answer. Backends return an *UnsupportedError wrapping it, so
// errors.Is(err, ErrUnsupported) detects the condition and the error text
// names the pair.
var ErrUnsupported = errors.New("query kind unsupported by backend")

// UnsupportedError reports which backend refused which query kind. Detail,
// when set, names the query *feature* the backend cannot handle (e.g. a
// heterogeneous fleet) rather than the kind itself.
type UnsupportedError struct {
	Backend string
	Kind    string
	Detail  string
}

// Error implements error.
func (e *UnsupportedError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("solve: %s backend does not answer %q queries with %s",
			e.Backend, e.Kind, e.Detail)
	}
	return fmt.Sprintf("solve: %s backend does not answer %q queries (supports %v)",
		e.Backend, e.Kind, capabilitiesOf(e.Backend))
}

// Is makes errors.Is(err, ErrUnsupported) succeed.
func (e *UnsupportedError) Is(target error) bool { return target == ErrUnsupported }

func unsupported(backend, kind string) error {
	return &UnsupportedError{Backend: backend, Kind: kind}
}

// refuseHeterogeneous is the typed refusal for a backend that cannot handle
// heterogeneous (model-form) fleets.
func refuseHeterogeneous(backend, kind string) error {
	return &UnsupportedError{Backend: backend, Kind: kind, Detail: "heterogeneous fleets"}
}

// capabilitiesOf returns the capability list for a backend name, or nil for
// an unknown backend (error paths only, so construction cost is irrelevant).
func capabilitiesOf(name string) []string {
	s, err := NewSolver(name, Options{})
	if err != nil {
		return nil
	}
	return s.Capabilities()
}

// Query is one typed question to a Solver, serialized through the JSON
// envelope {"kind": "...", ...}. The concrete types are ReportQuery,
// ThresholdQuery, PartitionQuery, DistributionQuery and ScaledQuery; the
// interface is sealed (the sweep engine needs axis expansion and seeding
// hooks), so every query a Solver sees round-trips through ParseQuery.
type Query interface {
	// Kind is the envelope discriminator ("report", "threshold", ...).
	Kind() string
	// Validate checks the query for internal consistency.
	Validate() error

	// withAxes applies sweep axis values, withSeed re-seeds the stochastic
	// work, and dedupKey feeds the sweep engine's analytic cache; all three
	// seal the interface.
	withAxes(ax axisPoint) (Query, error)
	withSeed(seed uint64) Query
	dedupKey() (cacheKey, bool)
}

// ---- report ----

// ReportQuery asks for the full Section 3 report at one operating point —
// PR 1's Solve behavior as a query kind. Every backend answers it.
type ReportQuery struct {
	Scenario Scenario `json:"scenario"`
}

// Kind implements Query.
func (ReportQuery) Kind() string { return KindReport }

// Validate implements Query.
func (q ReportQuery) Validate() error { return q.Scenario.Validate() }

// ---- threshold ----

// ThresholdQuery asks for the minimum integer task ratio T/O at which a job
// on W workstations (owner demand O, utilization Util) reaches the target
// weighted efficiency — the paper's conclusions-table search. The analytic
// backend answers it with the exact solver; the simulation backends answer
// it *empirically*, by a monotone bisection over the ratio that simulates
// each probe point (weighted efficiency is nondecreasing in the ratio).
// With a Stations template the query searches a *heterogeneous* fleet:
// the template (model-form per-station p/util/speed) is tiled cyclically
// to W stations, Util must stay zero, and only the analytic backend
// answers (through the Poisson-binomial fleet kernel).
type ThresholdQuery struct {
	W         int     `json:"w"`
	O         float64 `json:"o"`
	Util      float64 `json:"util"`
	TargetEff float64 `json:"target_eff"`
	// Stations optionally makes the search heterogeneous: a model-form
	// station template tiled to each probed fleet.
	Stations []StationSpec `json:"stations,omitempty"`
	// MaxRatio caps the search; 0 means the backend default (DefaultMaxRatio
	// analytic, DefaultSimMaxRatio for the simulation backends — each sim
	// probe costs a full run, so the sim cap is deliberately lower).
	MaxRatio int `json:"max_ratio,omitempty"`
	// Seed drives the simulation backends' probes (split per probed ratio).
	Seed uint64 `json:"seed,omitempty"`
}

// Search caps used when ThresholdQuery.MaxRatio is zero.
const (
	DefaultMaxRatio    = 1 << 20
	DefaultSimMaxRatio = 1 << 12
)

// Kind implements Query.
func (ThresholdQuery) Kind() string { return KindThreshold }

// Validate implements Query.
func (q ThresholdQuery) Validate() error {
	switch {
	case q.W < 1:
		return fmt.Errorf("solve: threshold query needs w >= 1, got %d", q.W)
	case !(q.O > 0):
		return fmt.Errorf("solve: threshold query needs o > 0, got %v", q.O)
	case q.Util < 0 || q.Util >= 1:
		return fmt.Errorf("solve: threshold query needs util in [0,1), got %v", q.Util)
	case !(q.TargetEff > 0) || q.TargetEff > 1:
		return fmt.Errorf("solve: threshold query needs target_eff in (0,1], got %v", q.TargetEff)
	case q.MaxRatio < 0:
		return fmt.Errorf("solve: threshold query needs max_ratio >= 0, got %d", q.MaxRatio)
	case len(q.Stations) > 0 && q.Util != 0:
		return fmt.Errorf("solve: threshold query with a station template must not set aggregate util")
	}
	return validateStationTemplate(q.Stations, q.O)
}

// maxRatio resolves the search cap against the backend default.
func (q ThresholdQuery) maxRatio(def int) int {
	if q.MaxRatio > 0 {
		return q.MaxRatio
	}
	return def
}

// ---- partition ----

// PartitionQuery right-sizes a cluster for a fixed job: the largest W in
// [1, MaxW] at which a job of total demand J still meets the target weighted
// efficiency. The analytic backend wraps the exact PlanPartition solver; the
// DES backend answers empirically by a monotone bisection over W (weighted
// efficiency is nonincreasing in W at fixed J).
// With a Stations template the search is heterogeneous: the template is
// tiled to each probed W (analytic backend only), and Util must stay zero.
type PartitionQuery struct {
	J         float64 `json:"j"`
	O         float64 `json:"o"`
	Util      float64 `json:"util"`
	TargetEff float64 `json:"target_eff"`
	MaxW      int     `json:"max_w"`
	// Stations optionally makes the search heterogeneous (model-form
	// template, tiled to each probed fleet size).
	Stations []StationSpec `json:"stations,omitempty"`
	// Seed drives the simulation backends' probes (split per probed W).
	Seed uint64 `json:"seed,omitempty"`
}

// Kind implements Query.
func (PartitionQuery) Kind() string { return KindPartition }

// Validate implements Query.
func (q PartitionQuery) Validate() error {
	switch {
	case !(q.J > 0):
		return fmt.Errorf("solve: partition query needs j > 0, got %v", q.J)
	case q.Util > 0 && !(q.O > 0):
		return fmt.Errorf("solve: partition query with util > 0 needs o > 0, got %v", q.O)
	case q.O < 0:
		return fmt.Errorf("solve: partition query needs o >= 0, got %v", q.O)
	case q.Util < 0 || q.Util >= 1:
		return fmt.Errorf("solve: partition query needs util in [0,1), got %v", q.Util)
	case !(q.TargetEff > 0) || q.TargetEff > 1:
		return fmt.Errorf("solve: partition query needs target_eff in (0,1], got %v", q.TargetEff)
	case q.MaxW < 1:
		return fmt.Errorf("solve: partition query needs max_w >= 1, got %d", q.MaxW)
	case len(q.Stations) > 0 && q.Util != 0:
		return fmt.Errorf("solve: partition query with a station template must not set aggregate util")
	case len(q.Stations) > 0 && !(q.O > 0):
		return fmt.Errorf("solve: partition query with a station template needs o > 0, got %v", q.O)
	}
	return validateStationTemplate(q.Stations, q.O)
}

// ---- distribution ----

// DistributionQuery asks for the job completion-time distribution at one
// operating point: quantiles and deadline probabilities. The analytic
// backend answers exactly from the model's discrete distribution; the
// simulation backends answer empirically from their batch samples — which is
// what makes deadline tails measurable for workloads the discrete model
// cannot express (explicit stations, arbitrary distributions).
type DistributionQuery struct {
	Scenario Scenario `json:"scenario"`
	// Quantiles lists probabilities in (0,1); empty means DefaultQuantiles.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// Deadlines lists times t for which P(job time <= t) is wanted.
	Deadlines []float64 `json:"deadlines,omitempty"`
}

// DefaultQuantiles is used when DistributionQuery.Quantiles is empty.
func DefaultQuantiles() []float64 { return []float64{0.5, 0.9, 0.95, 0.99} }

// Kind implements Query.
func (DistributionQuery) Kind() string { return KindDistribution }

// Validate implements Query.
func (q DistributionQuery) Validate() error {
	if err := q.Scenario.Validate(); err != nil {
		return err
	}
	for _, p := range q.Quantiles {
		if p <= 0 || p >= 1 {
			return fmt.Errorf("solve: distribution quantiles must be in (0,1), got %v", p)
		}
	}
	for _, d := range q.Deadlines {
		if d < 0 {
			return fmt.Errorf("solve: distribution deadlines must be >= 0, got %v", d)
		}
	}
	return nil
}

// quantiles resolves the default.
func (q DistributionQuery) quantiles() []float64 {
	if len(q.Quantiles) == 0 {
		return DefaultQuantiles()
	}
	return q.Quantiles
}

// ---- scaled ----

// ScaledQuery asks for the memory-bounded scaleup curve (Section 3.2):
// holding the per-task demand T fixed (J = T·W), the job time at each system
// size in Ws, with increases against the dedicated and W=1 baselines.
// Analytic only — the curve is a pure model artifact.
// With a Stations template the curve is heterogeneous: the template is
// tiled to each system size (Util must stay zero).
type ScaledQuery struct {
	T    float64 `json:"t"`
	O    float64 `json:"o"`
	Util float64 `json:"util"`
	Ws   []int   `json:"ws"`
	// Stations optionally makes the curve heterogeneous (model-form
	// template, tiled to each system size).
	Stations []StationSpec `json:"stations,omitempty"`
}

// Kind implements Query.
func (ScaledQuery) Kind() string { return KindScaled }

// Validate implements Query.
func (q ScaledQuery) Validate() error {
	switch {
	case !(q.T > 0):
		return fmt.Errorf("solve: scaled query needs t > 0, got %v", q.T)
	case q.Util > 0 && !(q.O > 0):
		return fmt.Errorf("solve: scaled query with util > 0 needs o > 0, got %v", q.O)
	case q.O < 0:
		return fmt.Errorf("solve: scaled query needs o >= 0, got %v", q.O)
	case q.Util < 0 || q.Util >= 1:
		return fmt.Errorf("solve: scaled query needs util in [0,1), got %v", q.Util)
	case len(q.Ws) == 0:
		return fmt.Errorf("solve: scaled query needs at least one system size")
	case len(q.Stations) > 0 && q.Util != 0:
		return fmt.Errorf("solve: scaled query with a station template must not set aggregate util")
	case len(q.Stations) > 0 && !(q.O > 0):
		return fmt.Errorf("solve: scaled query with a station template needs o > 0, got %v", q.O)
	}
	for _, w := range q.Ws {
		if w < 1 {
			return fmt.Errorf("solve: scaled query system sizes must be >= 1, got %d", w)
		}
	}
	return validateStationTemplate(q.Stations, q.O)
}

// ---- timeline ----

// TimelineQuery asks how feasibility evolves over a workday: the scenario
// must carry a schedule (repeating phases) or trace (recorded timeline),
// and the answer is an epoch series — one efficiency/E[completion] report
// per launch offset. The analytic backend answers with the quasi-static
// approximation (each epoch solved by the stationary kernel and spliced
// across phase boundaries); the DES backend replays each launch offset over
// phased stations.
type TimelineQuery struct {
	Scenario Scenario `json:"scenario"`
	// Start is the first launch offset within the cycle.
	Start float64 `json:"start,omitempty"`
	// Horizon is the span of launch offsets covered; 0 means one full cycle
	// (schedule) or the recorded length (trace).
	Horizon float64 `json:"horizon,omitempty"`
	// Epochs is the number of evenly spaced launch offsets; 0 means one at
	// Start plus one at every phase boundary within the horizon.
	Epochs int `json:"epochs,omitempty"`
	// Samples is the DES backend's replications per epoch; 0 means
	// DefaultTimelineSamples. The analytic backend ignores it.
	Samples int `json:"samples,omitempty"`
}

// DefaultTimelineSamples is the DES replication count per epoch when
// TimelineQuery.Samples is zero.
const DefaultTimelineSamples = 200

// Kind implements Query.
func (TimelineQuery) Kind() string { return KindTimeline }

// Validate implements Query.
func (q TimelineQuery) Validate() error {
	if err := q.Scenario.Validate(); err != nil {
		return err
	}
	switch {
	case !q.Scenario.Phased():
		return fmt.Errorf("solve: timeline query needs a scenario with a schedule or trace")
	case q.Start < 0:
		return fmt.Errorf("solve: timeline query needs start >= 0, got %v", q.Start)
	case q.Horizon < 0:
		return fmt.Errorf("solve: timeline query needs horizon >= 0, got %v", q.Horizon)
	case q.Epochs < 0:
		return fmt.Errorf("solve: timeline query needs epochs >= 0, got %d", q.Epochs)
	case q.Samples < 0:
		return fmt.Errorf("solve: timeline query needs samples >= 0, got %d", q.Samples)
	}
	return nil
}

// samples resolves the DES replication default.
func (q TimelineQuery) samples() int {
	if q.Samples > 0 {
		return q.Samples
	}
	return DefaultTimelineSamples
}

// ---- envelope ----

// queryEnvelope is the wire form: the concrete query's fields plus "kind".
// Each variant embeds the query so the JSON fields are promoted and strict
// decoding still rejects unknown fields.
type reportEnvelope struct {
	Kind string `json:"kind"`
	ReportQuery
}
type thresholdEnvelope struct {
	Kind string `json:"kind"`
	ThresholdQuery
}
type partitionEnvelope struct {
	Kind string `json:"kind"`
	PartitionQuery
}
type distributionEnvelope struct {
	Kind string `json:"kind"`
	DistributionQuery
}
type scaledEnvelope struct {
	Kind string `json:"kind"`
	ScaledQuery
}
type timelineEnvelope struct {
	Kind string `json:"kind"`
	TimelineQuery
}

// MarshalQuery serializes a query into its JSON envelope, "kind" first.
func MarshalQuery(q Query) ([]byte, error) {
	switch t := q.(type) {
	case ReportQuery:
		return json.Marshal(reportEnvelope{KindReport, t})
	case ThresholdQuery:
		return json.Marshal(thresholdEnvelope{KindThreshold, t})
	case PartitionQuery:
		return json.Marshal(partitionEnvelope{KindPartition, t})
	case DistributionQuery:
		return json.Marshal(distributionEnvelope{KindDistribution, t})
	case ScaledQuery:
		return json.Marshal(scaledEnvelope{KindScaled, t})
	case TimelineQuery:
		return json.Marshal(timelineEnvelope{KindTimeline, t})
	default:
		return nil, fmt.Errorf("solve: cannot marshal query of type %T", q)
	}
}

// decodeQuery parses the envelope without validating the result (the sweep
// engine completes partial base queries from its axes before validating).
func decodeQuery(data []byte) (Query, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("solve: bad query envelope: %w", err)
	}
	var (
		q   Query
		err error
	)
	switch probe.Kind {
	case KindReport:
		var env reportEnvelope
		err = unmarshalStrict(data, &env)
		q = env.ReportQuery
	case KindThreshold:
		var env thresholdEnvelope
		err = unmarshalStrict(data, &env)
		q = env.ThresholdQuery
	case KindPartition:
		var env partitionEnvelope
		err = unmarshalStrict(data, &env)
		q = env.PartitionQuery
	case KindDistribution:
		var env distributionEnvelope
		err = unmarshalStrict(data, &env)
		q = env.DistributionQuery
	case KindScaled:
		var env scaledEnvelope
		err = unmarshalStrict(data, &env)
		q = env.ScaledQuery
	case KindTimeline:
		var env timelineEnvelope
		err = unmarshalStrict(data, &env)
		q = env.TimelineQuery
	case "":
		return nil, fmt.Errorf(`solve: query envelope needs a "kind" field (want one of %v)`, QueryKinds())
	default:
		return nil, fmt.Errorf("solve: unknown query kind %q (want one of %v)", probe.Kind, QueryKinds())
	}
	if err != nil {
		return nil, fmt.Errorf("solve: bad %q query: %w", probe.Kind, err)
	}
	return q, nil
}

// ParseQuery decodes a query from its JSON envelope, rejecting unknown
// kinds and unknown fields so typos in hand-written files fail loudly.
func ParseQuery(data []byte) (Query, error) {
	q, err := decodeQuery(data)
	if err != nil {
		return nil, err
	}
	return q, q.Validate()
}

// LoadQuery reads and decodes a query envelope JSON file.
func LoadQuery(path string) (Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseQuery(data)
}
