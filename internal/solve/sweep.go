package solve

import (
	"context"
	"fmt"
	"os"
	"sort"

	"feasim/internal/sim"
)

// SweepSpec declares a Report grid: a base scenario plus per-axis value
// lists. The grid is the cross product of every non-empty axis (an empty
// axis contributes the base value), crossed with the backend list. The spec
// is JSON-serializable so sweeps live in files next to scenarios. It is the
// ReportQuery special case of QuerySweepSpec, kept as the convenient form
// for the most common grid; both run on the same engine.
type SweepSpec struct {
	// Base is the scenario every grid point starts from.
	Base Scenario `json:"base"`

	// W varies the workstation count.
	W []int `json:"w,omitempty"`
	// Util varies the owner utilization (clears any base P).
	Util []float64 `json:"util,omitempty"`
	// TaskRatio varies the task ratio T/O by setting J = ratio·O·W.
	TaskRatio []float64 `json:"task_ratio,omitempty"`
	// OwnerCV2 varies the owner burst demand's squared coefficient of
	// variation (felt by the DES backend; the discrete model sees the mean).
	OwnerCV2 []float64 `json:"owner_cv2,omitempty"`

	// Backends lists the solvers to fan each point across; empty means
	// analytic only.
	Backends []string `json:"backends,omitempty"`

	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Seed is the root of the deterministic per-point seed split.
	Seed uint64 `json:"seed,omitempty"`
	// Protocol overrides the simulation backends' output-analysis protocol.
	Protocol *sim.Protocol `json:"protocol,omitempty"`
	// Warmup overrides the DES backend's warmup job count.
	Warmup int `json:"warmup,omitempty"`
}

// querySpec lowers the Report grid onto the generic query sweep.
func (sp SweepSpec) querySpec() QuerySweepSpec {
	return QuerySweepSpec{
		Base:      ReportQuery{Scenario: sp.Base},
		W:         sp.W,
		Util:      sp.Util,
		TaskRatio: sp.TaskRatio,
		OwnerCV2:  sp.OwnerCV2,
		Backends:  sp.Backends,
		Workers:   sp.Workers,
		Seed:      sp.Seed,
		Protocol:  sp.Protocol,
		Warmup:    sp.Warmup,
	}
}

// Point is one cell of the expanded grid.
type Point struct {
	// Index is the point's position in grid order; results stream in
	// completion order and can be re-sorted by it.
	Index    int      `json:"index"`
	Backend  string   `json:"backend"`
	Scenario Scenario `json:"scenario"`
}

// PointReport is one streamed sweep result: the point, its report or error,
// and whether the report was served from the analytic cache.
type PointReport struct {
	Point  Point  `json:"point"`
	Report Report `json:"report"`
	// Err is non-nil when the point's solve failed; the sweep keeps going.
	Err error `json:"-"`
	// Error mirrors Err for JSON output.
	Error string `json:"error,omitempty"`
	// Cached marks analytic points deduplicated by the in-memory cache.
	Cached bool `json:"cached,omitempty"`
}

// Points expands the grid in deterministic order and assigns each point a
// seed split from the root stream, so a sweep's randomness is a pure
// function of (spec, grid order) no matter how many workers run it or how
// the scheduler interleaves them.
func (sp SweepSpec) Points() ([]Point, error) {
	qpts, err := sp.querySpec().Points()
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(qpts))
	for i, qp := range qpts {
		pts[i] = Point{Index: qp.Index, Backend: qp.Backend, Scenario: qp.Query.(ReportQuery).Scenario}
	}
	return pts, nil
}

// toPointReport converts a ReportQuery sweep result back to the Report form.
func toPointReport(qr QueryResult) PointReport {
	res := PointReport{
		Point:  Point{Index: qr.Point.Index, Backend: qr.Point.Backend},
		Err:    qr.Err,
		Error:  qr.Error,
		Cached: qr.Cached,
	}
	if rq, ok := qr.Point.Query.(ReportQuery); ok {
		res.Point.Scenario = rq.Scenario
	}
	if ra, ok := qr.Answer.(ReportAnswer); ok {
		res.Report = ra.Report
	}
	return res
}

// Sweep runs the expanded grid on a context-cancellable worker pool and
// streams results over the returned channel in completion order. The
// channel is closed once every point has been solved or the context is
// cancelled; after cancellation no further results arrive. Errors on
// individual points are reported in their PointReport and do not stop the
// sweep.
func Sweep(ctx context.Context, spec SweepSpec) (<-chan PointReport, error) {
	return sweepChannel(ctx, spec.querySpec(), toPointReport)
}

// Collect drains a sweep into a slice sorted by grid index. It returns
// ctx.Err() when the sweep was cut short by cancellation, along with
// whatever results completed before the cut.
func Collect(ctx context.Context, spec SweepSpec) ([]PointReport, error) {
	ch, err := Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	var results []PointReport
	for r := range ch {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Point.Index < results[j].Point.Index })
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// ParseSweep decodes a sweep spec from JSON, rejecting unknown fields.
func ParseSweep(data []byte) (SweepSpec, error) {
	var sp SweepSpec
	if err := unmarshalStrict(data, &sp); err != nil {
		return SweepSpec{}, fmt.Errorf("solve: bad sweep spec: %w", err)
	}
	if _, err := sp.Points(); err != nil {
		return SweepSpec{}, err
	}
	return sp, nil
}

// LoadSweep reads and decodes a sweep spec JSON file.
func LoadSweep(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	return ParseSweep(data)
}
