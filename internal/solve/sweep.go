package solve

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"feasim/internal/rng"
	"feasim/internal/sim"
)

// SweepSpec declares a scenario grid: a base scenario plus per-axis value
// lists. The grid is the cross product of every non-empty axis (an empty
// axis contributes the base value), crossed with the backend list. The spec
// is JSON-serializable so sweeps live in files next to scenarios.
type SweepSpec struct {
	// Base is the scenario every grid point starts from.
	Base Scenario `json:"base"`

	// W varies the workstation count.
	W []int `json:"w,omitempty"`
	// Util varies the owner utilization (clears any base P).
	Util []float64 `json:"util,omitempty"`
	// TaskRatio varies the task ratio T/O by setting J = ratio·O·W.
	TaskRatio []float64 `json:"task_ratio,omitempty"`
	// OwnerCV2 varies the owner burst demand's squared coefficient of
	// variation (felt by the DES backend; the discrete model sees the mean).
	OwnerCV2 []float64 `json:"owner_cv2,omitempty"`

	// Backends lists the solvers to fan each point across; empty means
	// analytic only.
	Backends []string `json:"backends,omitempty"`

	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Seed is the root of the deterministic per-point seed split.
	Seed uint64 `json:"seed,omitempty"`
	// Protocol overrides the simulation backends' output-analysis protocol.
	Protocol *sim.Protocol `json:"protocol,omitempty"`
	// Warmup overrides the DES backend's warmup job count.
	Warmup int `json:"warmup,omitempty"`
}

// Point is one cell of the expanded grid.
type Point struct {
	// Index is the point's position in grid order; results stream in
	// completion order and can be re-sorted by it.
	Index    int      `json:"index"`
	Backend  string   `json:"backend"`
	Scenario Scenario `json:"scenario"`
}

// PointReport is one streamed sweep result: the point, its report or error,
// and whether the report was served from the analytic cache.
type PointReport struct {
	Point  Point  `json:"point"`
	Report Report `json:"report"`
	// Err is non-nil when the point's solve failed; the sweep keeps going.
	Err error `json:"-"`
	// Error mirrors Err for JSON output.
	Error string `json:"error,omitempty"`
	// Cached marks analytic points deduplicated by the in-memory cache.
	Cached bool `json:"cached,omitempty"`
}

// backends resolves the backend list.
func (sp SweepSpec) backends() []string {
	if len(sp.Backends) == 0 {
		return []string{BackendAnalytic}
	}
	return sp.Backends
}

// Points expands the grid in deterministic order and assigns each point a
// seed split from the root stream, so a sweep's randomness is a pure
// function of (spec, grid order) no matter how many workers run it or how
// the scheduler interleaves them.
func (sp SweepSpec) Points() ([]Point, error) {
	for _, b := range sp.backends() {
		if _, err := SolverFor(b, sim.Protocol{}); err != nil {
			return nil, err
		}
	}
	ws := sp.W
	if len(ws) == 0 {
		ws = []int{sp.Base.W}
	}
	utils := sp.Util
	if len(utils) == 0 {
		utils = []float64{-1} // sentinel: keep base util/p
	}
	ratios := sp.TaskRatio
	if len(ratios) == 0 {
		ratios = []float64{-1} // sentinel: keep base J
	}
	cv2s := sp.OwnerCV2
	if len(cv2s) == 0 {
		cv2s = []float64{-1} // sentinel: keep base owner_cv2
	}
	root := rng.NewStream(sp.Seed)
	var pts []Point
	for _, backend := range sp.backends() {
		for _, w := range ws {
			for _, util := range utils {
				for _, ratio := range ratios {
					for _, cv2 := range cv2s {
						sc := sp.Base
						sc.W = w
						if util >= 0 {
							sc.Util = util
							sc.P = 0
						}
						if ratio >= 0 {
							sc.J = ratio * sc.O * float64(w)
						}
						if cv2 >= 0 {
							sc.OwnerCV2 = cv2
						}
						if sc.Name == "" {
							sc.Name = fmt.Sprintf("point%04d", len(pts))
						} else {
							sc.Name = fmt.Sprintf("%s/point%04d", sp.Base.Name, len(pts))
						}
						i := len(pts)
						sc.Seed = root.Split(uint64(i)).Uint64()
						if err := sc.Validate(); err != nil {
							return nil, fmt.Errorf("solve: grid point %d (%s): %w", i, backend, err)
						}
						pts = append(pts, Point{Index: i, Backend: backend, Scenario: sc})
					}
				}
			}
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("solve: sweep expands to an empty grid")
	}
	return pts, nil
}

// analyticCache deduplicates repeated analytic grid points. The analytic
// backend is deterministic, so points sharing an analyticKey (e.g. the same
// J/W/O/P crossed with several OwnerCV2 values or seeds) are solved once.
// The key is a comparable struct, so a dense grid pays one map probe per
// point with no marshalling allocations. Points that are not exact repeats
// still share work one layer down: the binomial tables are memoized by
// (N, P) process-wide (core.Tables), so all workers of a sweep — and
// concurrent sweeps — reuse each other's kernel builds.
type analyticCache struct {
	mu    sync.Mutex
	byKey map[analyticKey]Report
	hits  int
}

func newAnalyticCache() *analyticCache {
	return &analyticCache{byKey: make(map[analyticKey]Report)}
}

// get returns a cached report for the scenario, if one exists.
func (c *analyticCache) get(key analyticKey) (Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.byKey[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *analyticCache) put(key analyticKey, r Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey[key] = r
}

// Hits reports how many points were served from the cache.
func (c *analyticCache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Sweep runs the expanded grid on a context-cancellable worker pool and
// streams results over the returned channel in completion order. The
// channel is closed once every point has been solved or the context is
// cancelled; after cancellation no further results arrive. Errors on
// individual points are reported in their PointReport and do not stop the
// sweep.
func Sweep(ctx context.Context, spec SweepSpec) (<-chan PointReport, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	var pr sim.Protocol
	if spec.Protocol != nil {
		pr = *spec.Protocol
	}
	solvers := make(map[string]Solver)
	for _, b := range spec.backends() {
		s, err := SolverFor(b, pr)
		if err != nil {
			return nil, err
		}
		if d, ok := s.(DES); ok && spec.Warmup != 0 {
			d.Warmup = spec.Warmup
			s = d
		}
		solvers[b] = s
	}
	cache := newAnalyticCache()

	in := make(chan Point)
	out := make(chan PointReport, workers)
	var wg sync.WaitGroup

	// Feeder: stops handing out points as soon as the context is done.
	go func() {
		defer close(in)
		for _, p := range pts {
			select {
			case <-ctx.Done():
				return
			case in <- p:
			}
		}
	}()

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range in {
				res := solvePoint(ctx, solvers[p.Backend], cache, p)
				select {
				case <-ctx.Done():
					return
				case out <- res:
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// solvePoint answers one grid point, consulting the analytic cache first.
func solvePoint(ctx context.Context, solver Solver, cache *analyticCache, p Point) PointReport {
	res := PointReport{Point: p}
	key, cacheable := analyticKey{}, false
	if p.Backend == BackendAnalytic {
		key, cacheable = p.Scenario.analyticCacheKey()
	}
	if cacheable {
		if r, ok := cache.get(key); ok {
			r.Scenario = p.Scenario // the cached solve may carry a sibling's name/seed
			res.Report = r
			res.Cached = true
			return res
		}
	}
	r, err := solver.Solve(ctx, p.Scenario)
	if err != nil {
		res.Err = err
		res.Error = err.Error()
		return res
	}
	res.Report = r
	if cacheable {
		cache.put(key, r)
	}
	return res
}

// Collect drains a sweep into a slice sorted by grid index. It returns
// ctx.Err() when the sweep was cut short by cancellation, along with
// whatever results completed before the cut.
func Collect(ctx context.Context, spec SweepSpec) ([]PointReport, error) {
	ch, err := Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	var results []PointReport
	for r := range ch {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Point.Index < results[j].Point.Index })
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// ParseSweep decodes a sweep spec from JSON, rejecting unknown fields.
func ParseSweep(data []byte) (SweepSpec, error) {
	var sp SweepSpec
	if err := unmarshalStrict(data, &sp); err != nil {
		return SweepSpec{}, fmt.Errorf("solve: bad sweep spec: %w", err)
	}
	if _, err := sp.Points(); err != nil {
		return SweepSpec{}, err
	}
	return sp, nil
}

// LoadSweep reads and decodes a sweep spec JSON file.
func LoadSweep(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	return ParseSweep(data)
}
