package solve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"feasim/internal/rng"
	"feasim/internal/sim"
)

// Frontier mode answers the capacity planner's real question — "where is the
// feasibility boundary?" — without filling a dense grid. It is the paper's
// single-axis threshold bisection (Section 4) generalized to two scenario
// dimensions: start from a coarse cell grid over an axis pair, classify each
// cell by the feasibility verdict at its four corners, and subdivide only the
// cells the boundary crosses, down to a requested resolution. Cells interior
// to either region resolve at the coarsest level that proves them uniform, so
// the probe budget concentrates where the answer lives.
//
// Every corner probe goes through the same per-point query path as a dense
// sweep — the same axis application, the same deterministic seed split (the
// seed is a pure function of the corner's finest-grid coordinate, not of
// visit order or refinement level), and the same analytic dedup cache — so a
// frontier run answers exactly the sub-grid of the equivalent dense sweep
// that it touches, and repeated refinement levels hit the memo instead of
// re-solving shared corners.

// Frontier axis names (the QuerySweepSpec JSON field names, so a sweep spec
// and a frontier spec describe axes in the same vocabulary).
const (
	FrontierAxisW        = "w"
	FrontierAxisUtil     = "util"
	FrontierAxisRatio    = "task_ratio"
	FrontierAxisOwnerCV2 = "owner_cv2"
	FrontierAxisSpread   = "spread"
)

// Defaults applied when FrontierSpec leaves the tuning fields zero.
const (
	// DefaultFrontierCoarse is the initial cell count per axis.
	DefaultFrontierCoarse = 4
	// DefaultFrontierDepth is the number of refinement halvings below the
	// coarse grid.
	DefaultFrontierDepth = 3
	// maxFrontierResolution bounds the finest cells-per-axis count
	// (coarse << depth) so a hostile spec cannot demand an unbounded node
	// lattice.
	maxFrontierResolution = 4096
)

// FrontierAxis is one dimension of the frontier search: a sweep axis name
// plus the closed value range to search over.
type FrontierAxis struct {
	// Axis names the swept dimension: "w", "util", "task_ratio" or
	// "owner_cv2" (whichever apply to the base query's kind).
	Axis string `json:"axis"`
	// Min and Max bound the searched range (inclusive).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// value maps finest-grid coordinate i of res cells onto the axis range.
func (a FrontierAxis) value(i, res int) float64 {
	return a.Min + (a.Max-a.Min)*float64(i)/float64(res)
}

// validate checks one axis declaration.
func (a FrontierAxis) validate(label string) error {
	switch {
	case a.Axis != FrontierAxisW && a.Axis != FrontierAxisUtil &&
		a.Axis != FrontierAxisRatio && a.Axis != FrontierAxisOwnerCV2 &&
		a.Axis != FrontierAxisSpread:
		return fmt.Errorf("solve: frontier %s axis %q unknown (want %q, %q, %q, %q or %q)",
			label, a.Axis, FrontierAxisW, FrontierAxisUtil, FrontierAxisRatio, FrontierAxisOwnerCV2, FrontierAxisSpread)
	case math.IsNaN(a.Min) || math.IsInf(a.Min, 0) || math.IsNaN(a.Max) || math.IsInf(a.Max, 0):
		return fmt.Errorf("solve: frontier %s axis %q needs finite bounds, got [%v, %v]", label, a.Axis, a.Min, a.Max)
	case !(a.Min < a.Max):
		return fmt.Errorf("solve: frontier %s axis %q needs min < max, got [%v, %v]", label, a.Axis, a.Min, a.Max)
	case a.Axis == FrontierAxisUtil && (a.Min < 0 || a.Max >= 1):
		return fmt.Errorf("solve: frontier %s axis util must stay inside [0,1), got [%v, %v]", label, a.Min, a.Max)
	case a.Axis == FrontierAxisW && a.Min < 1:
		return fmt.Errorf("solve: frontier %s axis w needs min >= 1, got %v", label, a.Min)
	case a.Axis == FrontierAxisRatio && !(a.Min > 0):
		return fmt.Errorf("solve: frontier %s axis task_ratio needs min > 0, got %v", label, a.Min)
	case a.Axis == FrontierAxisOwnerCV2 && a.Min < 0:
		return fmt.Errorf("solve: frontier %s axis owner_cv2 needs min >= 0, got %v", label, a.Min)
	case a.Axis == FrontierAxisSpread && a.Min < 0:
		return fmt.Errorf("solve: frontier %s axis spread needs min >= 0, got %v", label, a.Min)
	}
	return nil
}

// apply writes the axis value into the axis point.
func (a FrontierAxis) apply(ap *axisPoint, v float64) {
	switch a.Axis {
	case FrontierAxisW:
		// The workstation axis is integral; nodes round to the nearest count.
		ap.w = int(math.Round(v))
	case FrontierAxisUtil:
		ap.util = v
	case FrontierAxisRatio:
		ap.ratio = v
	case FrontierAxisOwnerCV2:
		ap.cv2 = v
	case FrontierAxisSpread:
		ap.spread = v
	}
}

// FrontierSpec declares a frontier search: a base query carrying a
// feasibility verdict (a report or timeline query with target_eff set), two
// distinct scenario axes, and the refinement budget. The finest resolution is
// coarse·2^depth cells per axis; the equivalent dense sweep would evaluate
// (coarse·2^depth + 1)² grid points.
type FrontierSpec struct {
	// Base is the query probed at every evaluated corner. Its kind must
	// produce a feasibility verdict: a report query (scenario target_eff set)
	// or a timeline query (feasible iff every epoch meets the target).
	Base Query

	// X and Y are the two searched axes; they must name distinct dimensions.
	X FrontierAxis
	Y FrontierAxis

	// Coarse is the initial cell count per axis; 0 means
	// DefaultFrontierCoarse.
	Coarse int
	// Depth is the number of refinement halvings; 0 means
	// DefaultFrontierDepth, negative means none (classify the coarse grid
	// only — the dense-equivalent case when Coarse is the full resolution).
	Depth int

	// Backend names the solver classifying the corners; empty means analytic.
	Backend string

	// Workers bounds the per-level probe pool; 0 means GOMAXPROCS.
	Workers int
	// Seed is the root of the deterministic per-corner seed split.
	Seed uint64
	// Protocol overrides the simulation backends' output-analysis protocol.
	Protocol *sim.Protocol
	// Warmup overrides the DES backend's warmup job count.
	Warmup int
}

// frontierJSON is the wire form of FrontierSpec.
type frontierJSON struct {
	Base     json.RawMessage `json:"base"`
	X        FrontierAxis    `json:"x"`
	Y        FrontierAxis    `json:"y"`
	Coarse   int             `json:"coarse,omitempty"`
	Depth    int             `json:"depth,omitempty"`
	Backend  string          `json:"backend,omitempty"`
	Workers  int             `json:"workers,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	Protocol *sim.Protocol   `json:"protocol,omitempty"`
	Warmup   int             `json:"warmup,omitempty"`
}

// MarshalJSON implements json.Marshaler, nesting the base query envelope.
func (sp FrontierSpec) MarshalJSON() ([]byte, error) {
	var base json.RawMessage
	if sp.Base != nil {
		b, err := MarshalQuery(sp.Base)
		if err != nil {
			return nil, err
		}
		base = b
	}
	return json.Marshal(frontierJSON{
		Base: base, X: sp.X, Y: sp.Y, Coarse: sp.Coarse, Depth: sp.Depth,
		Backend: sp.Backend, Workers: sp.Workers, Seed: sp.Seed,
		Protocol: sp.Protocol, Warmup: sp.Warmup,
	})
}

// UnmarshalJSON implements json.Unmarshaler with strict field checking.
func (sp *FrontierSpec) UnmarshalJSON(data []byte) error {
	var raw frontierJSON
	if err := unmarshalStrict(data, &raw); err != nil {
		return err
	}
	var base Query
	if len(raw.Base) > 0 {
		q, err := decodeQuery(raw.Base)
		if err != nil {
			return err
		}
		base = q
	}
	*sp = FrontierSpec{
		Base: base, X: raw.X, Y: raw.Y, Coarse: raw.Coarse, Depth: raw.Depth,
		Backend: raw.Backend, Workers: raw.Workers, Seed: raw.Seed,
		Protocol: raw.Protocol, Warmup: raw.Warmup,
	}
	return nil
}

// backend resolves the backend name.
func (sp FrontierSpec) backend() string {
	if sp.Backend == "" {
		return BackendAnalytic
	}
	return sp.Backend
}

// coarse resolves the initial cell count.
func (sp FrontierSpec) coarse() int {
	if sp.Coarse <= 0 {
		return DefaultFrontierCoarse
	}
	return sp.Coarse
}

// depth resolves the refinement depth.
func (sp FrontierSpec) depth() int {
	if sp.Depth < 0 {
		return 0
	}
	if sp.Depth == 0 {
		return DefaultFrontierDepth
	}
	return sp.Depth
}

// Resolution is the finest cells-per-axis count (coarse · 2^depth): the
// resolution the boundary is located to, and the cell count per axis of the
// equivalent dense sweep.
func (sp FrontierSpec) Resolution() int { return sp.coarse() << sp.depth() }

// Validate checks the spec: a feasibility-bearing base query, two distinct
// well-formed axes that apply to the base kind, a known backend, and a
// bounded resolution. Axis applicability is probed structurally at the
// (min, min) corner — a per-value domain failure there (e.g. a timeline
// rescale overflowing a phase) is a legal per-cell outcome, not a spec error.
func (sp FrontierSpec) Validate() error {
	if sp.Base == nil {
		return fmt.Errorf("solve: frontier spec needs a base query")
	}
	switch sp.Base.Kind() {
	case KindReport, KindTimeline:
	default:
		return fmt.Errorf("solve: frontier mode needs a feasibility verdict per cell; %q queries carry none (use a report or timeline query with target_eff)", sp.Base.Kind())
	}
	if err := sp.X.validate("x"); err != nil {
		return err
	}
	if err := sp.Y.validate("y"); err != nil {
		return err
	}
	if sp.X.Axis == sp.Y.Axis {
		return fmt.Errorf("solve: frontier axes must differ, both are %q", sp.X.Axis)
	}
	if sp.Coarse > maxFrontierResolution {
		return fmt.Errorf("solve: frontier coarse %d exceeds %d cells per axis", sp.Coarse, maxFrontierResolution)
	}
	if sp.Depth > 20 || sp.Resolution() > maxFrontierResolution || sp.Resolution() <= 0 {
		return fmt.Errorf("solve: frontier resolution %d·2^%d exceeds %d cells per axis", sp.coarse(), sp.depth(), maxFrontierResolution)
	}
	if _, err := NewSolver(sp.backend(), Options{}); err != nil {
		return err
	}
	// Structural probe: an axis that does not apply to the base kind (or a
	// task_ratio axis on an explicit-station scenario) must fail the whole
	// spec loudly, exactly as the dense sweep's grid expansion would.
	ax := axisPoint{w: -1, util: -1, ratio: -1, cv2: -1, spread: -1}
	sp.X.apply(&ax, sp.X.Min)
	sp.Y.apply(&ax, sp.Y.Min)
	if _, err := sp.Base.withAxes(ax); err != nil && !errors.As(err, new(*PointDomainError)) {
		return err
	}
	if err := frontierTarget(sp.Base); err != nil {
		return err
	}
	return nil
}

// frontierTarget checks that the base query will produce a feasibility
// verdict (a positive target efficiency on the underlying scenario).
func frontierTarget(q Query) error {
	switch t := q.(type) {
	case ReportQuery:
		if !(t.Scenario.TargetEff > 0) {
			return fmt.Errorf("solve: frontier mode needs scenario target_eff > 0 for the feasible/infeasible verdict")
		}
	case TimelineQuery:
		if !(t.Scenario.TargetEff > 0) {
			return fmt.Errorf("solve: frontier mode needs scenario target_eff > 0 for the feasible/infeasible verdict")
		}
	}
	return nil
}

// Frontier cell verdicts.
const (
	// FrontierFeasible marks a cell whose four corners all meet the target:
	// the whole cell is classified feasible without probing its interior.
	FrontierFeasible = "feasible"
	// FrontierInfeasible marks a cell whose four corners all miss the target.
	FrontierInfeasible = "infeasible"
	// FrontierBoundary marks a finest-resolution cell the boundary still
	// crosses — the frontier the planner asked for.
	FrontierBoundary = "boundary"
	// FrontierError marks a cell whose corner probe failed with a per-point
	// domain error (the 422 taxonomy class); the error rides in the cell.
	FrontierError = "error"
)

// FrontierCell is one resolved cell of a frontier run: its axis-space bounds,
// its finest-grid placement, and the verdict. Cells stream in resolution
// order — every cell of one refinement level before any of the next.
type FrontierCell struct {
	// Depth is the refinement level the cell resolved at (0 = coarse grid).
	Depth int `json:"depth"`
	// X0..Y1 bound the cell in axis units.
	X0 float64 `json:"x0"`
	X1 float64 `json:"x1"`
	Y0 float64 `json:"y0"`
	Y1 float64 `json:"y1"`
	// IX, IY locate the cell's origin on the finest grid; Span is its side
	// length in finest-grid cells (1 at full resolution).
	IX   int `json:"ix"`
	IY   int `json:"iy"`
	Span int `json:"span"`
	// Verdict is the cell classification (feasible, infeasible, boundary,
	// error).
	Verdict string `json:"verdict"`
	// Err is non-nil for error cells; Error mirrors it for JSON output.
	Err   error  `json:"-"`
	Error string `json:"error,omitempty"`
}

// FrontierStats summarizes a completed frontier run.
type FrontierStats struct {
	// Resolution is the finest cells-per-axis count.
	Resolution int `json:"resolution"`
	// Cells counts resolved cells; Boundary and Failed the boundary and
	// error subsets.
	Cells    int `json:"cells"`
	Boundary int `json:"boundary"`
	Failed   int `json:"failed"`
	// Evaluations counts corner probes sent to the solver — the number a
	// dense sweep multiplies by. CacheHits is the subset served by the
	// analytic dedup cache without a backend execution.
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits"`
	// DenseEvaluations is the probe count of the equivalent dense sweep:
	// (resolution+1)².
	DenseEvaluations int `json:"dense_evaluations"`
}

// FrontierResult is a collected frontier run.
type FrontierResult struct {
	Cells []FrontierCell `json:"cells"`
	Stats FrontierStats  `json:"stats"`
}

// frontierNode is one evaluated corner of the refinement lattice.
type frontierNode struct {
	feasible bool
	err      error
}

// frontierCellRef is one unresolved cell in the refinement queue.
type frontierCellRef struct {
	ix, iy, span int
}

// frontierRun holds the engine state shared across refinement levels.
type frontierRun struct {
	spec   FrontierSpec
	res    int
	solver Solver
	cache  *AnswerCache
	seed   *rng.Stream

	mu    sync.Mutex
	nodes map[[2]int]frontierNode
	stats FrontierStats
}

// nodeQuery builds the per-point query for a finest-grid corner, identical to
// the dense sweep's expansion of the same point: axes applied through
// withAxes, the seed split from the root stream by the corner's linear grid
// index. A PointDomainError becomes the node's error; any other axis error is
// structural and aborts the run.
func (fr *frontierRun) nodeQuery(ix, iy int) (Query, error) {
	idx := ix*(fr.res+1) + iy
	ax := axisPoint{index: idx, w: -1, util: -1, ratio: -1, cv2: -1, spread: -1}
	fr.spec.X.apply(&ax, fr.spec.X.value(ix, fr.res))
	fr.spec.Y.apply(&ax, fr.spec.Y.value(iy, fr.res))
	q, err := fr.spec.Base.withAxes(ax)
	if err != nil {
		return nil, err
	}
	return q.withSeed(fr.seed.Split(uint64(idx)).Uint64()), nil
}

// evalNode classifies one corner, recording the result in the node memo.
func (fr *frontierRun) evalNode(ctx context.Context, ix, iy int) frontierNode {
	q, err := fr.nodeQuery(ix, iy)
	if err != nil {
		return frontierNode{err: err}
	}
	if err := q.Validate(); err != nil {
		return frontierNode{err: &PointDomainError{Err: err}}
	}
	fr.mu.Lock()
	fr.stats.Evaluations++
	fr.mu.Unlock()
	res := solveQueryPoint(ctx, fr.solver, fr.cache, QueryPoint{
		Index: ix*(fr.res+1) + iy, Backend: fr.spec.backend(), Query: q,
	})
	if res.Cached {
		fr.mu.Lock()
		fr.stats.CacheHits++
		fr.mu.Unlock()
	}
	if res.Err != nil {
		return frontierNode{err: res.Err}
	}
	feasible, err := frontierVerdict(res.Answer)
	if err != nil {
		return frontierNode{err: err}
	}
	return frontierNode{feasible: feasible}
}

// frontierVerdict extracts the feasibility verdict from an answer.
func frontierVerdict(a Answer) (bool, error) {
	switch t := a.(type) {
	case ReportAnswer:
		if t.Report.Feasible == nil {
			return false, fmt.Errorf("solve: frontier probe returned no feasibility verdict; set scenario target_eff")
		}
		return *t.Report.Feasible, nil
	case TimelineAnswer:
		if len(t.Epochs) == 0 {
			return false, fmt.Errorf("solve: frontier probe returned an empty timeline")
		}
		for _, ep := range t.Epochs {
			if ep.Feasible == nil {
				return false, fmt.Errorf("solve: frontier probe returned no feasibility verdict; set scenario target_eff")
			}
			if !*ep.Feasible {
				// A workday is feasible only when every launch epoch meets
				// the target.
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("solve: frontier mode cannot classify %q answers", a.Kind())
	}
}

// SweepFrontier runs the adaptive frontier refinement and streams resolved
// cells over the returned channel, every cell of one refinement level before
// any of the next. The channel closes once the search completes or ctx is
// cancelled; the stats callback is valid after the channel closes. Backends
// are built from the standard registry per the spec.
func SweepFrontier(ctx context.Context, spec FrontierSpec) (<-chan FrontierCell, func() FrontierStats, error) {
	return SweepFrontierSolver(ctx, spec, nil)
}

// SweepFrontierSolver is SweepFrontier with an injected solver for the spec's
// backend (nil builds one from the registry) — the hook the HTTP service uses
// to route frontier probes through its own cached, fault-wrapped solver set,
// so repeated refinements compound with the server's answer cache.
func SweepFrontierSolver(ctx context.Context, spec FrontierSpec, solver Solver) (<-chan FrontierCell, func() FrontierStats, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if solver == nil {
		var pr sim.Protocol
		if spec.Protocol != nil {
			pr = *spec.Protocol
		}
		s, err := NewSolver(spec.backend(), Options{Protocol: pr, Warmup: spec.Warmup})
		if err != nil {
			return nil, nil, err
		}
		solver = s
	}
	res := spec.Resolution()
	fr := &frontierRun{
		spec:   spec,
		res:    res,
		solver: solver,
		cache:  NewAnswerCache(max((res+1)*(res+1)/4, DefaultAnswerCacheCapacity)),
		seed:   rng.NewStream(spec.Seed),
		nodes:  make(map[[2]int]frontierNode),
	}
	fr.stats.Resolution = res
	fr.stats.DenseEvaluations = (res + 1) * (res + 1)

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan FrontierCell, workers)
	go func() {
		defer close(out)
		fr.run(ctx, workers, out)
	}()
	return out, func() FrontierStats {
		fr.mu.Lock()
		defer fr.mu.Unlock()
		return fr.stats
	}, nil
}

// run drives the refinement loop: evaluate the level's unseen corners on a
// worker pool, classify its cells in deterministic order, stream resolved
// cells, queue the straddling cells' children for the next level.
func (fr *frontierRun) run(ctx context.Context, workers int, out chan<- FrontierCell) {
	span0 := fr.res / fr.spec.coarse()
	var queue []frontierCellRef
	for ix := 0; ix < fr.res; ix += span0 {
		for iy := 0; iy < fr.res; iy += span0 {
			queue = append(queue, frontierCellRef{ix: ix, iy: iy, span: span0})
		}
	}
	for depth := 0; len(queue) > 0; depth++ {
		if !fr.evalLevel(ctx, workers, queue) {
			return // ctx cancelled; the caller reads ctx.Err()
		}
		var next []frontierCellRef
		for _, c := range queue {
			cell, subdivide := fr.classify(depth, c)
			if subdivide {
				half := c.span / 2
				next = append(next,
					frontierCellRef{ix: c.ix, iy: c.iy, span: half},
					frontierCellRef{ix: c.ix + half, iy: c.iy, span: half},
					frontierCellRef{ix: c.ix, iy: c.iy + half, span: half},
					frontierCellRef{ix: c.ix + half, iy: c.iy + half, span: half},
				)
				continue
			}
			fr.mu.Lock()
			fr.stats.Cells++
			switch cell.Verdict {
			case FrontierBoundary:
				fr.stats.Boundary++
			case FrontierError:
				fr.stats.Failed++
			}
			fr.mu.Unlock()
			select {
			case out <- cell:
			case <-ctx.Done():
				return
			}
		}
		queue = next
	}
}

// evalLevel evaluates every not-yet-memoized corner of the queued cells on a
// bounded worker pool. Returns false when ctx ended mid-level.
func (fr *frontierRun) evalLevel(ctx context.Context, workers int, queue []frontierCellRef) bool {
	var todo [][2]int
	seen := make(map[[2]int]bool)
	for _, c := range queue {
		for _, n := range c.corners() {
			if seen[n] {
				continue
			}
			seen[n] = true
			if _, ok := fr.nodes[n]; !ok {
				todo = append(todo, n)
			}
		}
	}
	if len(todo) == 0 {
		return ctx.Err() == nil
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	in := make(chan [2]int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range in {
				node := fr.evalNode(ctx, n[0], n[1])
				fr.mu.Lock()
				fr.nodes[n] = node
				fr.mu.Unlock()
			}
		}()
	}
feed:
	for _, n := range todo {
		select {
		case in <- n:
		case <-ctx.Done():
			break feed
		}
	}
	close(in)
	wg.Wait()
	return ctx.Err() == nil
}

// corners lists the cell's four corner coordinates.
func (c frontierCellRef) corners() [4][2]int {
	return [4][2]int{
		{c.ix, c.iy},
		{c.ix + c.span, c.iy},
		{c.ix, c.iy + c.span},
		{c.ix + c.span, c.iy + c.span},
	}
}

// classify resolves one cell from its corner verdicts, or asks for
// subdivision when the boundary crosses it and resolution remains.
func (fr *frontierRun) classify(depth int, c frontierCellRef) (FrontierCell, bool) {
	cell := FrontierCell{
		Depth: depth,
		X0:    fr.spec.X.value(c.ix, fr.res),
		X1:    fr.spec.X.value(c.ix+c.span, fr.res),
		Y0:    fr.spec.Y.value(c.iy, fr.res),
		Y1:    fr.spec.Y.value(c.iy+c.span, fr.res),
		IX:    c.ix, IY: c.iy, Span: c.span,
	}
	feasible, infeasible := 0, 0
	var nodeErr error
	for _, n := range c.corners() {
		node := fr.nodes[n]
		switch {
		case node.err != nil:
			if nodeErr == nil {
				nodeErr = node.err
			}
		case node.feasible:
			feasible++
		default:
			infeasible++
		}
	}
	switch {
	case nodeErr != nil:
		// A corner outside the model's domain (util rescale overflow, an
		// unanswerable point) resolves the cell as an error — the per-cell
		// 422, never an aborted run.
		cell.Verdict = FrontierError
		cell.Err = nodeErr
		cell.Error = nodeErr.Error()
	case feasible == 4:
		cell.Verdict = FrontierFeasible
	case infeasible == 4:
		cell.Verdict = FrontierInfeasible
	case c.span == 1:
		cell.Verdict = FrontierBoundary
	default:
		return FrontierCell{}, true
	}
	return cell, false
}

// CollectFrontier drains a frontier run into cells (in stream order) plus the
// run stats. It returns ctx.Err() when the refinement was cut short, along
// with whatever cells resolved before the cut.
func CollectFrontier(ctx context.Context, spec FrontierSpec) (FrontierResult, error) {
	ch, stats, err := SweepFrontier(ctx, spec)
	if err != nil {
		return FrontierResult{}, err
	}
	var cells []FrontierCell
	for c := range ch {
		cells = append(cells, c)
	}
	res := FrontierResult{Cells: cells, Stats: stats()}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// ParseFrontier decodes a frontier spec from JSON, rejecting unknown fields
// and validating the search declaration.
func ParseFrontier(data []byte) (FrontierSpec, error) {
	var sp FrontierSpec
	if err := json.Unmarshal(data, &sp); err != nil {
		return FrontierSpec{}, fmt.Errorf("solve: bad frontier spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return FrontierSpec{}, err
	}
	return sp, nil
}

// LoadFrontier reads and decodes a frontier spec JSON file.
func LoadFrontier(path string) (FrontierSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FrontierSpec{}, err
	}
	return ParseFrontier(data)
}
