package solve

import (
	"context"
	"time"

	"feasim/internal/rng"
	"feasim/internal/timeline"
)

// The timeline kind's backend bodies. Both lower the phased scenario onto
// internal/timeline: the analytic backend walks the quasi-static
// approximation (each epoch solved by the stationary kernel, spliced across
// phase boundaries), the DES backend replays every launch offset with
// independent cluster.PhasedStation replications. Both iterate the same
// EpochStarts, so the two answers line up epoch-for-epoch and the parity
// tests can compare them directly.

// timelineProfile lowers the scenario's phases onto the timeline package.
func (s Scenario) timelineProfile() (timeline.Profile, error) {
	phases, cyclic := s.phases()
	segs := make([]timeline.Segment, len(phases))
	for i, ph := range phases {
		segs[i] = timeline.Segment{Name: ph.Name, Duration: ph.Duration, Util: ph.Util}
	}
	p := timeline.Profile{Segments: segs, Cyclic: cyclic}
	return p, p.Validate()
}

// timelineEpochMetrics derives the ratio metrics and feasibility verdict
// shared by both backends from the epoch's E[job] and span-mean utilization.
func timelineEpochMetrics(sc Scenario, ep *TimelineEpoch) {
	if ep.EJob > 0 {
		ep.Speedup = sc.J / ep.EJob
		ep.Efficiency = ep.Speedup / float64(sc.W)
		ep.WeightedEfficiency = weightedEff(sc.J, sc.W, ep.MeanUtil, ep.EJob)
	}
	if sc.TargetEff > 0 {
		ok := ep.WeightedEfficiency >= sc.TargetEff
		ep.Feasible = &ok
	}
}

// timeline answers a TimelineQuery with the quasi-static approximation.
func (Analytic) timeline(ctx context.Context, q TimelineQuery) (Answer, error) {
	start := time.Now()
	sc := q.Scenario
	prof, err := sc.timelineProfile()
	if err != nil {
		return nil, err
	}
	qs, err := timeline.NewQuasiStatic(prof, sc.J, sc.W, sc.O)
	if err != nil {
		return nil, err
	}
	ans := TimelineAnswer{
		Backend:     BackendAnalytic,
		Scenario:    sc,
		CycleLength: prof.Length(),
		MeanUtil:    prof.MeanUtilization(),
	}
	for _, t0 := range prof.EpochStarts(q.Start, q.Horizon, q.Epochs) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e, err := qs.At(t0)
		if err != nil {
			return nil, err
		}
		ep := TimelineEpoch{
			Start:    e.Start,
			Phase:    e.Segment,
			Util:     e.LaunchUtil,
			MeanUtil: e.MeanUtil,
			EJob:     e.EJob,
		}
		timelineEpochMetrics(sc, &ep)
		ans.Epochs = append(ans.Epochs, ep)
	}
	ans.Elapsed = time.Since(start)
	return ans, nil
}

// timeline answers a TimelineQuery by DES replay over phased stations.
func (d DES) timeline(ctx context.Context, q TimelineQuery) (Answer, error) {
	start := time.Now()
	sc := q.Scenario
	prof, err := sc.timelineProfile()
	if err != nil {
		return nil, err
	}
	sched, err := prof.ClusterSchedule(sc.O)
	if err != nil {
		return nil, err
	}
	level := protocolOrDefault(d.Protocol).Level
	root := rng.NewStream(sc.Seed)
	ans := TimelineAnswer{
		Backend:     BackendDES,
		Scenario:    sc,
		CycleLength: prof.Length(),
		MeanUtil:    prof.MeanUtilization(),
	}
	demand := sc.J / float64(sc.W)
	for i, t0 := range prof.EpochStarts(q.Start, q.Horizon, q.Epochs) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each epoch's replications draw from a stream split by epoch index,
		// so adding or reordering epochs never changes another epoch's
		// samples.
		res, err := timeline.Replay(sched, sc.W, demand, t0, q.samples(), level, root.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		seg, _ := prof.SegmentAt(t0)
		ep := TimelineEpoch{
			Start:    t0,
			Phase:    seg.Name,
			Util:     seg.Util,
			MeanUtil: prof.MeanUtilizationOver(t0, t0+res.Mean),
			EJob:     res.Mean,
			EJobCI:   intervalFromCI(res.CI),
			Samples:  res.Samples,
		}
		timelineEpochMetrics(sc, &ep)
		ans.Epochs = append(ans.Epochs, ep)
	}
	ans.Elapsed = time.Since(start)
	return ans, nil
}
