package solve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// marshalScenario is the canonical scenario encoding (scenarios have no
// custom marshaler; the envelope conventions come from the struct tags).
func marshalScenario(s Scenario) ([]byte, error) { return json.Marshal(s) }

// Native fuzz targets for the JSON envelope decode path: whatever bytes
// arrive (the HTTP service accepts them from the network), ParseQuery and
// ParseScenario must never panic, and any input they accept must be stable
// under decode→encode→decode — the encoded form is the canonical envelope,
// so re-decoding it must succeed, reproduce the same value, and re-encode
// to identical bytes. Seed corpora come from the checked-in CLI testdata.

// corpusSeeds loads every matching JSON file as a fuzz seed.
func corpusSeeds(f *testing.F, glob string) {
	f.Helper()
	paths, err := filepath.Glob(glob)
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatalf("no seed corpus at %s", glob)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

func FuzzQueryUnmarshal(f *testing.F) {
	corpusSeeds(f, filepath.Join("..", "..", "cmd", "feasim", "testdata", "query_*.json"))
	// Hostile shapes: wrong types, duplicate keys, deep junk, empty kinds.
	for _, s := range []string{
		``,
		`null`,
		`{"kind": ""}`,
		`{"kind": "report", "scenario": null}`,
		`{"kind": "threshold", "w": 1e309}`,
		`{"kind": "scaled", "t": 1, "o": 1, "util": 0, "ws": []}`,
		`{"kind": "distribution", "scenario": {"j": 1, "w": 1, "o": 1}, "quantiles": [0.5], "kind": "report"}`,
		`{"kind": "timeline", "scenario": {"j": 400, "w": 4, "o": 10, "schedule": [{"name": "day", "duration": 600, "util": 0.1}, {"duration": 600, "util": 0.01}]}, "epochs": 4}`,
		`{"kind": "timeline", "scenario": {"j": 400, "w": 4, "o": 10, "trace": [{"duration": 1e-300, "util": 0.999999}]}, "samples": -1}`,
		`{"kind": "timeline", "scenario": {"j": 1, "w": 1, "o": 1, "util": 0.1}}`,
		`{"kind": "timeline", "scenario": {"j": 1, "w": 1, "o": 1, "schedule": [{"duration": -5, "util": 0}], "trace": [{"duration": 0, "util": 2}]}, "start": -1e309, "horizon": 1e309}`,
		`{"kind": "timeline", "scenario": {"j": 1, "w": 1, "o": 1, "schedule": []}}`,
		// Heterogeneous fleets: model-form scenarios and station templates,
		// valid and hostile (p out of range, template with aggregate util,
		// distribution form where the model form is required).
		`{"kind": "report", "scenario": {"j": 400, "o": 10, "stations": [{"p": 0.03, "count": 2}, {"p": 0.08, "count": 2}]}}`,
		`{"kind": "threshold", "w": 4, "o": 10, "target_eff": 0.7, "stations": [{"p": 0.03, "count": 2}, {"p": 0.08, "speed": 2, "count": 2}]}`,
		`{"kind": "threshold", "w": 4, "o": 10, "util": 0.05, "target_eff": 0.7, "stations": [{"p": 0.03}]}`,
		`{"kind": "threshold", "w": 4, "o": 10, "target_eff": 0.7, "stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}]}`,
		`{"kind": "partition", "j": 400, "o": 10, "target_eff": 0.5, "max_w": 8, "stations": [{"p": 0.03, "count": 1}, {"p": 0.08, "speed": 2}]}`,
		`{"kind": "partition", "j": 400, "o": 10, "target_eff": 0.5, "max_w": 8, "stations": [{"p": 1.5, "count": 2}]}`,
		`{"kind": "scaled", "t": 100, "o": 10, "ws": [1, 4], "stations": [{"util": 0.1, "count": 3}, {"p": 0.9999}]}`,
		`{"kind": "scaled", "t": 100, "o": 10, "ws": [1], "stations": [{"p": 0.1, "count": -3}]}`,
		`{"kind": "distribution", "scenario": {"j": 400, "o": 10, "stations": [{"util": 0.05, "count": 2}, {"util": 0.1, "speed": 1e309, "count": 2}]}, "quantiles": [0.5]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseQuery(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		enc, err := MarshalQuery(q)
		if err != nil {
			t.Fatalf("accepted query failed to marshal: %v\ninput: %q", err, data)
		}
		q2, err := ParseQuery(enc)
		if err != nil {
			t.Fatalf("canonical envelope failed to re-parse: %v\nenvelope: %s", err, enc)
		}
		if q2.Kind() != q.Kind() {
			t.Fatalf("kind changed across round trip: %q -> %q", q.Kind(), q2.Kind())
		}
		enc2, err := MarshalQuery(q2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("envelope not stable under decode->encode->decode:\n first: %s\nsecond: %s", enc, enc2)
		}
		// One more hop pins the decoded value as a fixed point of the
		// canonical form.
		q3, err := ParseQuery(enc2)
		if err != nil {
			t.Fatalf("third parse failed: %v", err)
		}
		if !reflect.DeepEqual(q2, q3) {
			t.Fatalf("decoded value not a fixed point:\n %+v\n %+v", q2, q3)
		}
	})
}

func FuzzQuerySweepUnmarshal(f *testing.F) {
	corpusSeeds(f, filepath.Join("..", "..", "cmd", "feasim", "testdata", "query_*.json"))
	for _, s := range []string{
		``,
		`{}`,
		`{"base": {"kind": "threshold", "w": 20, "o": 10, "target_eff": 0.8}, "util": [0.05, 0.1]}`,
		// The hostile timeline case of the util-axis bugfix: 0.8 rescales the
		// day phase past saturation — a per-point domain error, never an
		// expansion abort (and never a panic).
		`{"base": {"kind": "timeline", "scenario": {"j": 400, "w": 4, "o": 10, "schedule": [{"name": "day", "duration": 480, "util": 0.2}, {"name": "night", "duration": 960, "util": 0.05}]}, "epochs": 2}, "util": [0.1, 0.8]}`,
		// The task_ratio axis over an explicit-station scenario must be
		// rejected, not expanded into J = 0 grids.
		`{"base": {"kind": "report", "scenario": {"stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}], "task_demand": "det:100"}}, "task_ratio": [5, 10], "backends": ["des"]}`,
		`{"base": {"kind": "report", "scenario": {"j": 1, "w": 1, "o": 1, "util": 0.1}}, "w": [0], "util": [-1], "task_ratio": [1e309]}`,
		`{"base": {"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1]}, "backends": ["bogus"]}`,
		// Spread axis: a hostile value (3) pushes a station below p = 0 at one
		// grid point — a per-point domain error that must stay marshalable.
		`{"base": {"kind": "report", "scenario": {"j": 2000, "w": 20, "o": 10, "target_eff": 0.8, "stations": [{"p": 0.005, "count": 10}, {"p": 0.018, "count": 10}]}}, "spread": [0, 1, 3]}`,
		// A spread axis over a homogeneous base is a whole-grid rejection.
		`{"base": {"kind": "report", "scenario": {"j": 1, "w": 1, "o": 1, "util": 0.1}}, "spread": [0.5]}`,
		`{"base": {"kind": "threshold", "w": 4, "o": 10, "target_eff": 0.7, "stations": [{"p": 0.03, "count": 2}, {"p": 0.08, "count": 2}]}, "spread": [0, 1.5]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp QuerySweepSpec
		if err := json.Unmarshal(data, &sp); err != nil {
			return // rejected inputs just must not panic
		}
		// Expansion is the cross product of the axis lists; bound it before
		// walking a hostile grid (the decode path above is the fuzz surface,
		// expansion just must not panic on accepted shapes).
		n := max(len(sp.W), 1) * max(len(sp.Util), 1) * max(len(sp.TaskRatio), 1) *
			max(len(sp.OwnerCV2), 1) * max(len(sp.Spread), 1) * max(len(sp.Backends), 1)
		if n > 4096 {
			return
		}
		pts, err := sp.Points()
		if err != nil {
			return
		}
		for _, p := range pts {
			// Every expanded point — including per-point domain errors — must
			// keep the wire shape encodable.
			if _, err := p.MarshalJSON(); err != nil {
				t.Fatalf("expanded point %d failed to marshal: %v\ninput: %q", p.Index, err, data)
			}
			if p.Err == nil {
				if err := p.Query.Validate(); err != nil {
					t.Fatalf("expansion accepted an invalid point %d: %v\ninput: %q", p.Index, err, data)
				}
			}
		}
	})
}

func FuzzFrontierUnmarshal(f *testing.F) {
	for _, s := range []string{
		``,
		`{}`,
		`{"base": {"kind": "report", "scenario": {"j": 2000, "w": 20, "o": 10, "util": 0.1, "target_eff": 0.8}}, "x": {"axis": "util", "min": 0.02, "max": 0.2}, "y": {"axis": "task_ratio", "min": 1, "max": 40}}`,
		`{"base": {"kind": "timeline", "scenario": {"j": 400, "w": 4, "o": 10, "target_eff": 0.5, "schedule": [{"duration": 480, "util": 0.2}, {"duration": 960, "util": 0.05}]}, "epochs": 2}, "x": {"axis": "util", "min": 0.05, "max": 0.6}, "y": {"axis": "w", "min": 2, "max": 10}, "coarse": 2, "depth": 1}`,
		`{"base": {"kind": "threshold", "w": 20, "o": 10, "target_eff": 0.8}, "x": {"axis": "util", "min": 0, "max": 0.5}, "y": {"axis": "util", "min": 0, "max": 0.5}}`,
		`{"x": {"axis": "w", "min": 1e309, "max": -1e309}, "y": {"axis": "util", "min": 0.5, "max": 0.1}, "coarse": -1, "depth": 99}`,
		`{"base": {"kind": "report", "scenario": {"j": 2000, "w": 20, "o": 10, "target_eff": 0.8, "stations": [{"p": 0.005, "count": 10}, {"p": 0.018, "count": 10}]}}, "x": {"axis": "spread", "min": 0, "max": 1.6}, "y": {"axis": "task_ratio", "min": 1, "max": 40}, "coarse": 2, "depth": 2}`,
		`{"base": {"kind": "report", "scenario": {"j": 2000, "w": 20, "o": 10, "target_eff": 0.8, "stations": [{"p": 0.005, "count": 10}]}}, "x": {"axis": "spread", "min": -1, "max": 1}, "y": {"axis": "w", "min": 2, "max": 10}}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseFrontier(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted frontier spec failed to marshal: %v\ninput: %q", err, data)
		}
		sp2, err := ParseFrontier(enc)
		if err != nil {
			t.Fatalf("canonical frontier spec failed to re-parse: %v\nencoded: %s", err, enc)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("frontier spec not a fixed point:\n %+v\n %+v", sp, sp2)
		}
	})
}

func FuzzScenarioUnmarshal(f *testing.F) {
	corpusSeeds(f, filepath.Join("..", "..", "testdata", "scenario.json"))
	for _, s := range []string{
		``,
		`{}`,
		`{"j": 1000, "w": 10, "o": 10, "util": 0.05}`,
		`{"stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}], "task_demand": "det:100"}`,
		`{"j": 1, "w": 1, "o": 1, "util": 0.5, "p": 0.5}`,
		`{"j": 1000, "w": 10, "o": 10, "util": 0.05, "seed": 18446744073709551615}`,
		`{"j": 400, "w": 4, "o": 10, "schedule": [{"name": "day", "duration": 480, "util": 0.3}, {"name": "night", "duration": 960, "util": 0.02}]}`,
		`{"j": 400, "w": 4, "o": 10, "trace": [{"duration": 60, "util": 0.5}, {"duration": 600, "util": 0.01}]}`,
		`{"j": 400, "w": 4, "o": 10, "schedule": [{"duration": 0, "util": 0.1}]}`,
		`{"j": 400, "w": 4, "o": 10, "util": 0.1, "schedule": [{"duration": 100, "util": 0.1}], "trace": [{"duration": 100, "util": 0.1}]}`,
		// Heterogeneous model-form fleets, valid and hostile: out-of-range
		// and conflicting availabilities, negative counts and speeds, a W
		// that disagrees with the station total, and a mix of the model and
		// distribution station forms.
		`{"j": 400, "o": 10, "stations": [{"p": 0.03, "count": 2}, {"p": 0.08, "count": 2}]}`,
		`{"j": 400, "o": 10, "stations": [{"util": 0.05, "count": 2}, {"util": 0.1, "speed": 2, "count": 2}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 1, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 1.5, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": -0.25, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 0.1, "count": -3}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 0.1, "util": 0.2, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 0.1, "speed": -2, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 0.1, "speed": 1e309, "count": 4}]}`,
		`{"j": 400, "w": 7, "o": 10, "stations": [{"p": 0.1, "count": 4}]}`,
		`{"j": 400, "w": 4, "o": 10, "util": 0.05, "stations": [{"p": 0.1, "count": 4}]}`,
		`{"j": 400, "o": 10, "stations": [{"p": 0.1, "count": 2}, {"owner_think": "exp:90", "owner_demand": "det:10"}]}`,
		`{"j": 400, "o": 10, "task_demand": "det:100", "stations": [{"p": 0.1, "count": 4}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScenario(data)
		if err != nil {
			return
		}
		enc, err := marshalScenario(s)
		if err != nil {
			t.Fatalf("accepted scenario failed to marshal: %v\ninput: %q", err, data)
		}
		s2, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("canonical scenario failed to re-parse: %v\nencoded: %s", err, enc)
		}
		enc2, err := marshalScenario(s2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("scenario not stable under decode->encode->decode:\n first: %s\nsecond: %s", enc, enc2)
		}
		s3, err := ParseScenario(enc2)
		if err != nil {
			t.Fatalf("third parse failed: %v", err)
		}
		if !reflect.DeepEqual(s2, s3) {
			t.Fatalf("decoded scenario not a fixed point:\n %+v\n %+v", s2, s3)
		}
	})
}
