package solve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
)

// Multi-node routing support: the PR 4/5 answer-cache key doubles as the
// cluster routing key. RouteHash renders that identity as a hash every node
// computes identically, so a consistent-hash ring built over it assigns each
// answer exactly one home node fleet-wide; ParseAnswer turns a peer's wire
// answer back into the typed form so forwarded answers can live in the local
// cache as hot-entry replicas.

// RouteHash returns a process-independent 64-bit hash of the answer-cache
// identity of (backend, q) — the key the multi-node answer tier routes on.
// Unlike the cache's internal shard hash (seeded per process, deliberately
// unstable), RouteHash is a pure function of the key's content: every node of
// a cluster computes the same value for the same query, which is what lets a
// consistent-hash ring agree on the key's home node without coordination.
// ok is false when the query has no stable identity (an analytic query
// outside the discrete model, or an unmarshalable query type); such queries
// cannot be routed and must be answered locally.
func RouteHash(backend string, q Query) (uint64, bool) {
	key, ok := answerCacheKey(backend, q)
	if !ok {
		return 0, false
	}
	h := fnv.New64a()
	var buf [8]byte
	writeField := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeBits := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeField(key.backend)
	writeField(key.key.kind)
	writeField(key.key.extra)
	s := key.key.scen
	writeBits(math.Float64bits(s.j))
	writeBits(uint64(s.w))
	writeBits(math.Float64bits(s.o))
	writeBits(math.Float64bits(s.p))
	writeBits(math.Float64bits(s.deadline))
	writeBits(math.Float64bits(s.target))
	return h.Sum64(), true
}

// ParseAnswer decodes an answer body of the given query kind — the inverse
// of marshaling an Answer, used to adopt a peer's wire answer as a typed
// cache entry. Decoding is deliberately lenient (no unknown-field rejection):
// a cluster mid-upgrade may receive answers carrying fields this node does
// not know yet, and dropping them beats refusing the answer.
func ParseAnswer(kind string, data []byte) (Answer, error) {
	var (
		a   Answer
		err error
	)
	switch kind {
	case KindReport:
		var v ReportAnswer
		err = json.Unmarshal(data, &v)
		a = v
	case KindThreshold:
		var v ThresholdAnswer
		err = json.Unmarshal(data, &v)
		a = v
	case KindPartition:
		var v PartitionAnswer
		err = json.Unmarshal(data, &v)
		a = v
	case KindDistribution:
		var v DistributionAnswer
		err = json.Unmarshal(data, &v)
		a = v
	case KindScaled:
		var v ScaledAnswer
		err = json.Unmarshal(data, &v)
		a = v
	case KindTimeline:
		var v TimelineAnswer
		err = json.Unmarshal(data, &v)
		a = v
	default:
		return nil, fmt.Errorf("solve: unknown answer kind %q (want one of %v)", kind, QueryKinds())
	}
	if err != nil {
		return nil, fmt.Errorf("solve: bad %q answer: %w", kind, err)
	}
	return a, nil
}
