package solve

import (
	"context"
	"testing"
)

// TestThresholdWarmStartCutsProbes pins the ROADMAP perf item: warm-starting
// the empirical threshold bisection from the analytic answer must confirm
// the boundary in exactly two probes on the reference scenario, agree with
// the cold search's answer, and cut the probe count by at least 3×. The
// probe function is the analytic report itself, which makes the "simulated"
// measurements deterministic and exactly monotone — so warm and cold paths
// are guaranteed to see the same boundary and the comparison isolates the
// search strategy.
func TestThresholdWarmStartCutsProbes(t *testing.T) {
	ctx := context.Background()
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8}
	maxRatio := q.maxRatio(DefaultSimMaxRatio)
	probe := Analytic{}.report

	ca, err := bisectThreshold(ctx, BackendExact, q, maxRatio, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	cold := ca.(ThresholdAnswer)

	guess := analyticThresholdGuess(q, maxRatio)
	if guess != cold.MinRatio {
		t.Fatalf("analytic guess %d, cold empirical boundary %d: the deterministic probe should agree", guess, cold.MinRatio)
	}
	wa, err := bisectThreshold(ctx, BackendExact, q, maxRatio, guess, probe)
	if err != nil {
		t.Fatal(err)
	}
	warm := wa.(ThresholdAnswer)

	if warm.MinRatio != cold.MinRatio {
		t.Errorf("warm-started boundary %d != cold boundary %d", warm.MinRatio, cold.MinRatio)
	}
	if warm.AchievedWeff != cold.AchievedWeff {
		t.Errorf("warm boundary weff %v != cold %v", warm.AchievedWeff, cold.AchievedWeff)
	}
	if warm.Probes != 2 {
		t.Errorf("warm start should confirm the analytic boundary in 2 probes, took %d", warm.Probes)
	}
	if cold.Probes < 3*warm.Probes {
		t.Errorf("probe reduction not realized: cold %d probes vs warm %d", cold.Probes, warm.Probes)
	}
}

// TestThresholdWarmStartDisagreement: when the guess is wrong in either
// direction the search must still land on the true boundary of the measured
// (deterministic, monotone) curve.
func TestThresholdWarmStartDisagreement(t *testing.T) {
	ctx := context.Background()
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8}
	maxRatio := q.maxRatio(DefaultSimMaxRatio)
	probe := Analytic{}.report

	ca, err := bisectThreshold(ctx, BackendExact, q, maxRatio, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	want := ca.(ThresholdAnswer).MinRatio

	for _, guess := range []int{1, want - 3, want + 5, 4 * want, maxRatio} {
		if guess < 1 {
			continue
		}
		wa, err := bisectThreshold(ctx, BackendExact, q, maxRatio, guess, probe)
		if err != nil {
			t.Fatalf("guess %d: %v", guess, err)
		}
		if got := wa.(ThresholdAnswer).MinRatio; got != want {
			t.Errorf("guess %d: boundary %d, want %d", guess, got, want)
		}
	}
}

// TestThresholdWarmStartRespectsDedicated: util == 0 short-circuits before
// any probing regardless of the guess.
func TestThresholdWarmStartRespectsDedicated(t *testing.T) {
	q := ThresholdQuery{W: 10, O: 10, Util: 0, TargetEff: 0.8}
	a, err := bisectThreshold(context.Background(), BackendExact, q, 64, 7,
		func(context.Context, Scenario) (Report, error) {
			panic("dedicated systems must not probe")
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.(ThresholdAnswer).MinRatio; got != 1 {
		t.Errorf("dedicated system min ratio %d, want 1", got)
	}
}

// TestPartitionWarmStartCutsProbes is the threshold pin's mirror for the
// right-sizing search (the ROADMAP carry-forward): warm-starting the
// empirical partition bisection from core.PlanPartition must confirm the
// boundary in exactly two probes, agree with the cold search, and cut the
// probe count by at least 3×. The probe is again the analytic report, so the
// measured curve is deterministic and exactly monotone in W.
func TestPartitionWarmStartCutsProbes(t *testing.T) {
	ctx := context.Background()
	q := PartitionQuery{J: 2000, O: 10, Util: 0.1, TargetEff: 0.8, MaxW: 64, Seed: 5}
	probe := Analytic{}.report

	ca, err := bisectPartition(ctx, BackendDES, q, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	cold := ca.(PartitionAnswer)
	if cold.W <= 1 || cold.W >= q.MaxW {
		t.Fatalf("boundary W=%d sits on the search edge; pick a query with an interior boundary", cold.W)
	}

	guess := analyticPartitionGuess(q)
	if guess != cold.W {
		t.Fatalf("analytic guess %d, cold empirical boundary %d: the deterministic probe should agree", guess, cold.W)
	}
	wa, err := bisectPartition(ctx, BackendDES, q, guess, probe)
	if err != nil {
		t.Fatal(err)
	}
	warm := wa.(PartitionAnswer)

	if warm.W != cold.W {
		t.Errorf("warm-started boundary W=%d != cold W=%d", warm.W, cold.W)
	}
	if warm.Report.WeightedEfficiency != cold.Report.WeightedEfficiency {
		t.Errorf("warm boundary weff %v != cold %v", warm.Report.WeightedEfficiency, cold.Report.WeightedEfficiency)
	}
	if warm.Probes != 2 {
		t.Errorf("warm start should confirm the analytic boundary in 2 probes, took %d", warm.Probes)
	}
	if cold.Probes < 3*warm.Probes {
		t.Errorf("probe reduction not realized: cold %d probes vs warm %d", cold.Probes, warm.Probes)
	}
}

// TestPartitionWarmStartDisagreement: wrong guesses in either direction must
// still land on the true boundary of the measured monotone curve.
func TestPartitionWarmStartDisagreement(t *testing.T) {
	ctx := context.Background()
	q := PartitionQuery{J: 2000, O: 10, Util: 0.1, TargetEff: 0.8, MaxW: 64, Seed: 5}
	probe := Analytic{}.report

	ca, err := bisectPartition(ctx, BackendDES, q, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	want := ca.(PartitionAnswer).W

	for _, guess := range []int{1, want - 3, want + 5, 2 * want, q.MaxW} {
		if guess < 1 {
			continue
		}
		wa, err := bisectPartition(ctx, BackendDES, q, guess, probe)
		if err != nil {
			t.Fatalf("guess %d: %v", guess, err)
		}
		if got := wa.(PartitionAnswer).W; got != want {
			t.Errorf("guess %d: boundary W=%d, want %d", guess, got, want)
		}
	}
}

// TestPartitionWarmStartInfeasible: when even one workstation misses the
// target (a simulated probe can measure below target where the analytic
// model cannot), warm and cold paths must fail with the same diagnostic.
func TestPartitionWarmStartInfeasible(t *testing.T) {
	ctx := context.Background()
	q := PartitionQuery{J: 40, O: 10, Util: 0.45, TargetEff: 0.8, MaxW: 4, Seed: 5}
	probe := func(_ context.Context, s Scenario) (Report, error) {
		return Report{W: s.W, WeightedEfficiency: 0.5}, nil
	}

	_, coldErr := bisectPartition(ctx, BackendDES, q, 0, probe)
	if coldErr == nil {
		t.Fatal("expected infeasibility")
	}
	for _, guess := range []int{1, 2, 4} {
		_, warmErr := bisectPartition(ctx, BackendDES, q, guess, probe)
		if warmErr == nil || warmErr.Error() != coldErr.Error() {
			t.Errorf("guess %d: error %v, want %v", guess, warmErr, coldErr)
		}
	}
}
