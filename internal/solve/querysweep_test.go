package solve

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSweepRatioAxisExplicitStationsRejected: explicit-station scenarios
// carry no aggregate owner demand (sc.O == 0), so the task_ratio axis used
// to expand silently to J = 0 grids. It must now fail expansion loudly.
func TestSweepRatioAxisExplicitStationsRejected(t *testing.T) {
	explicit := Scenario{
		Stations: []StationSpec{
			{OwnerThink: "exp:190", OwnerDemand: "det:10", Count: 2},
			{OwnerThink: "exp:90", OwnerDemand: "det:10", Count: 2},
		},
		TaskDemand: "det:100",
	}
	for name, base := range map[string]Query{
		"report":       ReportQuery{Scenario: explicit},
		"distribution": DistributionQuery{Scenario: explicit},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := (QuerySweepSpec{
				Base:      base,
				TaskRatio: []float64{5, 10},
				Backends:  []string{BackendDES},
			}).Points()
			if err == nil {
				t.Fatal("task_ratio axis over an explicit-station scenario should fail expansion")
			}
			if !strings.Contains(err.Error(), "explicit-station") {
				t.Fatalf("error should name the explicit-station conflict, got: %v", err)
			}
		})
	}

	// The same axis on an aggregate scenario still expands (control).
	pts, err := (QuerySweepSpec{
		Base:      ReportQuery{Scenario: Scenario{W: 10, O: 10, Util: 0.1}},
		TaskRatio: []float64{5, 10},
	}).Points()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{5 * 10 * 10, 10 * 10 * 10} {
		if j := pts[i].Query.(ReportQuery).Scenario.J; j != want {
			t.Errorf("point %d: J = %v, want ratio·O·W = %v", i, j, want)
		}
	}
}

// TestTimelineUtilAxisOverflowIsPerPoint: a util axis value that rescales a
// peak phase past saturation used to abort the whole sweep. It must now be a
// per-point domain error: the grid expands, the hostile point reports a
// PointDomainError, and every other point still answers.
func TestTimelineUtilAxisOverflowIsPerPoint(t *testing.T) {
	base := TimelineQuery{Scenario: Scenario{
		J: 400, W: 4, O: 10,
		Schedule: []PhaseSpec{
			{Name: "day", Duration: 480, Util: 0.2},
			{Name: "night", Duration: 960, Util: 0.05},
		},
	}, Epochs: 2}
	// Mean util 0.1; day phase saturates when the axis asks for ≥ 0.5
	// (factor 5 · 0.2 = 1.0).
	spec := QuerySweepSpec{Base: base, Util: []float64{0.1, 0.3, 0.8}, Seed: 9}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("expansion dropped points: got %d, want 3", len(pts))
	}
	var domain *PointDomainError
	if pts[2].Err == nil || !errors.As(pts[2].Err, &domain) {
		t.Fatalf("overflowing point should carry a PointDomainError, got %v", pts[2].Err)
	}
	if pts[0].Err != nil || pts[1].Err != nil {
		t.Fatalf("in-domain points should carry no error: %v, %v", pts[0].Err, pts[1].Err)
	}
	// The hostile point still marshals (the wire shape of /v1/sweep points).
	if _, err := pts[2].MarshalJSON(); err != nil {
		t.Fatalf("domain-error point must stay marshalable: %v", err)
	}

	res, err := CollectQueries(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for _, r := range res[:2] {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		if len(r.Answer.(TimelineAnswer).Epochs) != 2 {
			t.Fatalf("point %d: wrong epoch count", r.Point.Index)
		}
	}
	if res[2].Err == nil || !errors.As(res[2].Err, &domain) {
		t.Fatalf("result 2 should report the domain error, got %v", res[2].Err)
	}
	if !strings.Contains(res[2].Error, "must stay below 1") {
		t.Fatalf("result 2 error text %q lost the saturation message", res[2].Error)
	}
	if res[2].Answer != nil {
		t.Fatal("domain-error point must not carry an answer")
	}

	// An all-idle timeline stays a structural (whole-sweep) failure: there is
	// no meaningful rescale of a zero-utilization day, at any axis value.
	idle := base
	idle.Scenario.Schedule = []PhaseSpec{{Name: "idle", Duration: 480, Util: 0}}
	if _, err := (QuerySweepSpec{Base: idle, Util: []float64{0.1}}).Points(); err == nil {
		t.Fatal("all-idle timeline should still fail the whole expansion")
	}
}
