package solve

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// spreadBase is the canonical heterogeneous frontier fixture: two
// availability classes about a count-weighted mean of p̄ = 0.0115 (the
// util ≈ 0.10 neighbourhood of the Section 3 boundary), searched over the
// spread × task-ratio plane.
func spreadBase() ReportQuery {
	return ReportQuery{Scenario: Scenario{
		Name: "spread", W: 20, O: 10, J: 2000, TargetEff: 0.8,
		Stations: []StationSpec{
			{P: 0.005, Count: 10},
			{P: 0.018, Count: 10},
		},
	}}
}

// TestSpreadAxisMatchesDirectAnswers expands a spread × ratio grid and
// checks every point bit-for-bit against a direct analytic solve of the
// manually rescaled fleet — the axis must be pure sugar over spreadStations.
func TestSpreadAxisMatchesDirectAnswers(t *testing.T) {
	ctx := context.Background()
	spreads := []float64{0, 0.5, 1, 1.4}
	ratios := []float64{4, 12}
	res, err := CollectQueries(ctx, QuerySweepSpec{
		Base: spreadBase(), Spread: spreads, TaskRatio: ratios, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(spreads)*len(ratios) {
		t.Fatalf("grid has %d points, want %d", len(res), len(spreads)*len(ratios))
	}
	analytic := Analytic{}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		// Ratio is the outer loop, spread the inner one.
		ratio := ratios[r.Point.Index/len(spreads)]
		spread := spreads[r.Point.Index%len(spreads)]

		base := spreadBase().Scenario
		specs, err := spreadStations(base.Stations, base.O, spread)
		if err != nil {
			t.Fatalf("spread %g: %v", spread, err)
		}
		direct := base
		direct.Stations = specs
		direct.J = ratio * direct.O * float64(direct.W)
		want, err := analytic.Answer(ctx, ReportQuery{Scenario: direct})
		if err != nil {
			t.Fatalf("direct solve (spread %g, ratio %g): %v", spread, ratio, err)
		}
		g, w := r.Answer.(ReportAnswer).Report, want.(ReportAnswer).Report
		if g.EJob != w.EJob || g.WeightedEfficiency != w.WeightedEfficiency || g.U != w.U {
			t.Errorf("point %d (spread %g, ratio %g): grid (EJob %v, weff %v, U %v) vs direct (%v, %v, %v)",
				r.Point.Index, spread, ratio, g.EJob, w.EJob, g.WeightedEfficiency, w.WeightedEfficiency, g.U, w.U)
		}
	}
}

// TestSpreadZeroIsHomogeneousCousin pins the axis's anchor: spread 0
// collapses the fleet onto its count-weighted mean availability, and the
// answer must reproduce the aggregate-form homogeneous report bit-for-bit.
func TestSpreadZeroIsHomogeneousCousin(t *testing.T) {
	ctx := context.Background()
	analytic := Analytic{}
	res, err := CollectQueries(ctx, QuerySweepSpec{Base: spreadBase(), Spread: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("spread-0 grid: %+v", res)
	}
	got := res[0].Answer.(ReportAnswer).Report

	// p̄ = (10·0.005 + 10·0.018)/20, spelled the aggregate way.
	cousin, err := analytic.Answer(ctx, ReportQuery{Scenario: Scenario{
		Name: "cousin", W: 20, O: 10, J: 2000, TargetEff: 0.8, P: 0.0115,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := cousin.(ReportAnswer).Report
	if got.EJob != want.EJob || got.WeightedEfficiency != want.WeightedEfficiency || got.U != want.U {
		t.Errorf("spread 0 (EJob %v, weff %v, U %v) differs from homogeneous cousin (%v, %v, %v)",
			got.EJob, got.WeightedEfficiency, got.U, want.EJob, want.WeightedEfficiency, want.U)
	}
	if got.Feasible == nil || want.Feasible == nil || *got.Feasible != *want.Feasible {
		t.Errorf("spread 0 verdict %v differs from cousin %v", got.Feasible, want.Feasible)
	}
}

// TestSpreadAxisThresholdTemplate drives the spread axis through a
// station-template threshold query: every grid point must match a direct
// solve over the rescaled template.
func TestSpreadAxisThresholdTemplate(t *testing.T) {
	ctx := context.Background()
	base := ThresholdQuery{
		W: 4, O: 10, TargetEff: 0.7, Seed: 11,
		Stations: []StationSpec{{P: 0.03, Count: 2}, {P: 0.08, Count: 2}},
	}
	spreads := []float64{0, 1, 1.5}
	res, err := CollectQueries(ctx, QuerySweepSpec{Base: base, Spread: spreads, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(spreads) {
		t.Fatalf("grid has %d points, want %d", len(res), len(spreads))
	}
	analytic := Analytic{}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		specs, err := spreadStations(base.Stations, base.O, spreads[r.Point.Index])
		if err != nil {
			t.Fatal(err)
		}
		direct := base
		direct.Stations = specs
		want, err := analytic.Answer(ctx, direct)
		if err != nil {
			t.Fatalf("direct threshold (spread %g): %v", spreads[r.Point.Index], err)
		}
		g, w := r.Answer.(ThresholdAnswer), want.(ThresholdAnswer)
		if g.MinRatio != w.MinRatio || g.MinJobDemand != w.MinJobDemand {
			t.Errorf("spread %g: grid ratio %d (J %g) vs direct %d (J %g)",
				spreads[r.Point.Index], g.MinRatio, g.MinJobDemand, w.MinRatio, w.MinJobDemand)
		}
	}
}

// TestSpreadFrontierMatchesDenseSweep locates the feasibility boundary on
// the spread × ratio plane adaptively and checks it cell-for-cell against a
// dense sweep over the identical node lattice — the heterogeneous analogue
// of TestFrontierMatchesDenseSweep.
func TestSpreadFrontierMatchesDenseSweep(t *testing.T) {
	x := FrontierAxis{Axis: FrontierAxisSpread, Min: 0, Max: 1.6}
	y := FrontierAxis{Axis: FrontierAxisRatio, Min: 1, Max: 40}
	spec := FrontierSpec{Base: spreadBase(), X: x, Y: y, Coarse: 2, Depth: 3, Seed: 5}
	res := spec.Resolution()
	if res != 16 {
		t.Fatalf("resolution %d, want 16", res)
	}
	fres, err := CollectFrontier(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := boundarySet(t, fres.Cells)

	var spreads, ratios []float64
	for i := 0; i <= res; i++ {
		spreads = append(spreads, x.value(i, res))
		ratios = append(ratios, y.value(i, res))
	}
	dense, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base: spreadBase(), Spread: spreads, TaskRatio: ratios, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	feas := make(map[[2]int]bool)
	for _, r := range dense {
		if r.Err != nil {
			t.Fatalf("dense point %d: %v", r.Point.Index, r.Err)
		}
		rep := r.Answer.(ReportAnswer).Report
		if rep.Feasible == nil {
			t.Fatalf("dense point %d carries no verdict", r.Point.Index)
		}
		// Ratio is the outer loop, spread the inner: ix is the spread index.
		feas[[2]int{r.Point.Index % (res + 1), r.Point.Index / (res + 1)}] = *rep.Feasible
	}
	want := make(map[[2]int]bool)
	for ix := 0; ix < res; ix++ {
		for iy := 0; iy < res; iy++ {
			a, b := feas[[2]int{ix, iy}], feas[[2]int{ix + 1, iy}]
			c, d := feas[[2]int{ix, iy + 1}], feas[[2]int{ix + 1, iy + 1}]
			if a != b || a != c || a != d {
				want[[2]int{ix, iy}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture's boundary does not cross the searched window")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("boundary cells differ: frontier %d cells, dense %d cells", len(got), len(want))
	}
	if fres.Stats.Evaluations >= fres.Stats.DenseEvaluations {
		t.Errorf("adaptive run probed %d nodes, dense needs only %d", fres.Stats.Evaluations, fres.Stats.DenseEvaluations)
	}
}

// TestSpreadAxisDomainErrorIsPerPoint checks that a spread value pushing a
// station outside [0,1) poisons only its own grid point: the sweep records
// a PointDomainError there and answers the rest.
func TestSpreadAxisDomainErrorIsPerPoint(t *testing.T) {
	res, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base: spreadBase(), Spread: []float64{1, 3}, // 3 drives p below 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("grid has %d points, want 2", len(res))
	}
	if res[0].Err != nil {
		t.Errorf("in-domain point failed: %v", res[0].Err)
	}
	var domain *PointDomainError
	if !errors.As(res[1].Err, &domain) {
		t.Fatalf("out-of-domain point: want PointDomainError, got %v", res[1].Err)
	}
	if !strings.Contains(domain.Error(), "spread") {
		t.Errorf("domain error should name the spread axis: %v", domain)
	}
}

// TestSpreadAxisRejectsHomogeneousBase pins the hard (whole-grid) error for
// a spread axis over a base with no station mix to rescale.
func TestSpreadAxisRejectsHomogeneousBase(t *testing.T) {
	_, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base:   ReportQuery{Scenario: Scenario{Name: "hom", W: 20, O: 10, J: 2000, Util: 0.1}},
		Spread: []float64{0, 1},
	})
	if err == nil || !strings.Contains(err.Error(), "spread") {
		t.Fatalf("homogeneous base with a spread axis: want hard error, got %v", err)
	}

	_, err = CollectQueries(context.Background(), QuerySweepSpec{
		Base:   ThresholdQuery{W: 4, O: 10, Util: 0.05, TargetEff: 0.7},
		Spread: []float64{0, 1},
	})
	if err == nil || !strings.Contains(err.Error(), "spread") {
		t.Fatalf("template-free threshold with a spread axis: want hard error, got %v", err)
	}
}

// TestSpreadSpecJSONRoundTrip checks the sweep and frontier wire formats
// carry the new axis.
func TestSpreadSpecJSONRoundTrip(t *testing.T) {
	spec := QuerySweepSpec{Base: spreadBase(), Spread: []float64{0, 0.5, 1}, TaskRatio: []float64{4}, Seed: 3}
	b, err := spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back QuerySweepSpec
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Spread, spec.Spread) {
		t.Errorf("spread round-trips to %v, want %v", back.Spread, spec.Spread)
	}

	fs := FrontierSpec{
		Base: spreadBase(),
		X:    FrontierAxis{Axis: FrontierAxisSpread, Min: 0, Max: 1.6},
		Y:    FrontierAxis{Axis: FrontierAxisRatio, Min: 1, Max: 40},
		Coarse: 2, Depth: 2,
	}
	if err := fs.Validate(); err != nil {
		t.Fatalf("spread frontier spec should validate: %v", err)
	}
	neg := fs
	neg.X.Min = -0.5
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "spread") {
		t.Errorf("negative spread minimum: want validation error naming the axis, got %v", err)
	}
	if math.IsNaN(fs.X.value(8, 16)) {
		t.Error("axis value interpolation broke")
	}
}
