package solve

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"feasim/internal/sim"
)

func phasedScenario(phases ...PhaseSpec) Scenario {
	return Scenario{Name: "tl", J: 400, W: 4, O: 10, Seed: 42, Schedule: phases}
}

// TestTimelineParityMatrix is the quasi-static-vs-replay parity table: the
// analytic walker and the DES phased-station replay must agree per epoch
// within tolerance, across schedule shapes — including the single-phase
// schedule, which must reproduce the stationary report answer exactly.
func TestTimelineParityMatrix(t *testing.T) {
	ctx := context.Background()
	des := DES{Protocol: sim.Protocol{Batches: 4, BatchSize: 30, Level: 0.9}}
	cases := []struct {
		name     string
		schedule []PhaseSpec
		trace    []PhaseSpec
		epochs   int
		tol      float64
	}{
		{
			name:     "single-phase",
			schedule: []PhaseSpec{{Name: "flat", Duration: 300, Util: 0.05}},
			epochs:   3,
			tol:      0.06,
		},
		{
			name: "workday",
			schedule: []PhaseSpec{
				{Name: "day", Duration: 600, Util: 0.1},
				{Name: "night", Duration: 600, Util: 0.01},
			},
			tol: 0.06,
		},
		{
			name: "three-phase",
			schedule: []PhaseSpec{
				{Name: "morning", Duration: 480, Util: 0.08},
				{Name: "afternoon", Duration: 480, Util: 0.15},
				{Name: "night", Duration: 480, Util: 0.01},
			},
			epochs: 6,
			tol:    0.08,
		},
		{
			name: "trace",
			trace: []PhaseSpec{
				{Name: "burst", Duration: 120, Util: 0.2},
				{Name: "calm", Duration: 600, Util: 0.02},
			},
			epochs: 4,
			tol:    0.08,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := Scenario{Name: "tl/" + c.name, J: 400, W: 4, O: 10, Seed: 42, Schedule: c.schedule, Trace: c.trace}
			q := TimelineQuery{Scenario: sc, Epochs: c.epochs, Samples: 160}
			aAns, err := Analytic{}.Answer(ctx, q)
			if err != nil {
				t.Fatalf("analytic: %v", err)
			}
			dAns, err := des.Answer(ctx, q)
			if err != nil {
				t.Fatalf("des: %v", err)
			}
			qa, da := aAns.(TimelineAnswer), dAns.(TimelineAnswer)
			if len(qa.Epochs) == 0 || len(qa.Epochs) != len(da.Epochs) {
				t.Fatalf("epoch counts: analytic %d, des %d", len(qa.Epochs), len(da.Epochs))
			}
			for i := range qa.Epochs {
				ae, de := qa.Epochs[i], da.Epochs[i]
				if ae.Start != de.Start || ae.Phase != de.Phase || ae.Util != de.Util {
					t.Fatalf("epoch %d launch mismatch: (%v,%q,%v) vs (%v,%q,%v)",
						i, ae.Start, ae.Phase, ae.Util, de.Start, de.Phase, de.Util)
				}
				if rel := math.Abs(de.EJob-ae.EJob) / ae.EJob; rel > c.tol {
					t.Errorf("epoch %d (start %v, %s): replay E[job] %.3f vs quasi-static %.3f, off %.1f%% (tol %.0f%%)",
						i, ae.Start, ae.Phase, de.EJob, ae.EJob, rel*100, c.tol*100)
				}
				if de.Samples != 160 {
					t.Errorf("epoch %d: %d samples, want 160", i, de.Samples)
				}
				if !de.EJobCI.Zero() && !(de.EJobCI.Lo <= de.EJob && de.EJob <= de.EJobCI.Hi) {
					t.Errorf("epoch %d: mean %v outside its own CI %+v", i, de.EJob, de.EJobCI)
				}
			}
		})
	}
}

// TestTimelineSinglePhaseIsStationary pins the acceptance criterion: a
// single-phase schedule reproduces the stationary report's E[job] exactly —
// bit-for-bit, not within tolerance.
func TestTimelineSinglePhaseIsStationary(t *testing.T) {
	ctx := context.Background()
	stationary, err := Analytic{}.Solve(ctx, Scenario{Name: "flat", J: 400, W: 4, O: 10, Util: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	q := TimelineQuery{
		Scenario: phasedScenario(PhaseSpec{Name: "flat", Duration: 777, Util: 0.05}),
		Epochs:   5,
	}
	a, err := Analytic{}.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ans := a.(TimelineAnswer)
	if len(ans.Epochs) != 5 {
		t.Fatalf("%d epochs", len(ans.Epochs))
	}
	for i, ep := range ans.Epochs {
		if ep.EJob != stationary.EJob {
			t.Fatalf("epoch %d: timeline E[job] %v != stationary %v", i, ep.EJob, stationary.EJob)
		}
		if ep.WeightedEfficiency != stationary.WeightedEfficiency {
			t.Fatalf("epoch %d: weff %v != stationary %v", i, ep.WeightedEfficiency, stationary.WeightedEfficiency)
		}
	}
}

// TestScenarioScheduleRoundTrip pins the JSON wire form of schedule/trace
// scenarios: decode(encode(s)) == s, strict decoding, phases preserved in
// order.
func TestScenarioScheduleRoundTrip(t *testing.T) {
	cases := []Scenario{
		phasedScenario(
			PhaseSpec{Name: "day", Duration: 480, Util: 0.3},
			PhaseSpec{Name: "night", Duration: 960, Util: 0.02},
		),
		{Name: "traced", J: 200, W: 2, O: 5, Trace: []PhaseSpec{
			{Duration: 60, Util: 0.5},
			{Name: "tail", Duration: 600, Util: 0.01},
		}},
	}
	for _, sc := range cases {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("round-trip of %s: %v", data, err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("round-trip changed the scenario:\n in: %+v\nout: %+v", sc, back)
		}
	}
}

// TestTimelineQueryEnvelopeRoundTrip does the same for the query envelope.
func TestTimelineQueryEnvelopeRoundTrip(t *testing.T) {
	q := TimelineQuery{
		Scenario: phasedScenario(
			PhaseSpec{Name: "day", Duration: 480, Util: 0.25},
			PhaseSpec{Name: "night", Duration: 960, Util: 0.01},
		),
		Start:   100,
		Horizon: 1440,
		Epochs:  12,
		Samples: 64,
	}
	data, err := MarshalQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"timeline"`) {
		t.Fatalf("envelope missing kind: %s", data)
	}
	back, err := ParseQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, q) {
		t.Fatalf("round-trip changed the query:\n in: %+v\nout: %+v", q, back)
	}
}

// TestPhasedScenarioValidation pins the rejection catalogue: the error for
// each contradictory phased form names the problem.
func TestPhasedScenarioValidation(t *testing.T) {
	ok := phasedScenario(PhaseSpec{Name: "day", Duration: 100, Util: 0.1})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid phased scenario rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"zero duration", func(s *Scenario) { s.Schedule[0].Duration = 0 }, "duration must be positive"},
		{"negative duration", func(s *Scenario) { s.Schedule[0].Duration = -3 }, "duration must be positive"},
		{"util at one", func(s *Scenario) { s.Schedule[0].Util = 1 }, "util must be in [0,1)"},
		{"schedule and trace", func(s *Scenario) { s.Trace = []PhaseSpec{{Duration: 1, Util: 0}} }, "pick one timeline form"},
		{"schedule plus util", func(s *Scenario) { s.Util = 0.2 }, "phases define the owner activity"},
		{"schedule plus p", func(s *Scenario) { s.P = 0.01 }, "phases define the owner activity"},
		{"schedule plus stations", func(s *Scenario) {
			s.Stations = []StationSpec{{OwnerThink: "det:50", OwnerDemand: "det:5"}}
		}, "schedule defines the owner workload"},
		{"schedule plus task_demand", func(s *Scenario) { s.TaskDemand = "det:100" }, "task_demand is not supported"},
		{"schedule plus owner_cv2", func(s *Scenario) { s.OwnerCV2 = 4 }, "deterministic bursts"},
		{"schedule plus deadline", func(s *Scenario) { s.Deadline = 100 }, "expected completion only"},
		{"no job", func(s *Scenario) { s.J = 0 }, "j > 0"},
		{"no stations", func(s *Scenario) { s.W = 0 }, "w >= 1"},
		{"no owner demand", func(s *Scenario) { s.O = 0 }, "o must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := phasedScenario(PhaseSpec{Name: "day", Duration: 100, Util: 0.1})
			c.mut(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestPhasedScenarioRefusesStationaryPaths pins that every stationary
// answer path fails loudly on a phased scenario instead of silently
// averaging the timeline away.
func TestPhasedScenarioRefusesStationaryPaths(t *testing.T) {
	ctx := context.Background()
	sc := phasedScenario(PhaseSpec{Name: "day", Duration: 100, Util: 0.1})
	if _, err := sc.Params(); err == nil || !strings.Contains(err.Error(), "timeline queries") {
		t.Fatalf("Params: %v", err)
	}
	for _, backend := range Backends() {
		sv, err := NewSolver(backend, Options{Protocol: sim.Protocol{Batches: 2, BatchSize: 5, Level: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sv.Answer(ctx, ReportQuery{Scenario: sc}); err == nil {
			t.Errorf("%s report answered a phased scenario", backend)
		}
	}
}

// TestTimelineQueryValidation covers the query-level parameter checks.
func TestTimelineQueryValidation(t *testing.T) {
	base := TimelineQuery{Scenario: phasedScenario(PhaseSpec{Duration: 100, Util: 0.1})}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*TimelineQuery)
	}{
		{"stationary scenario", func(q *TimelineQuery) { q.Scenario = Scenario{J: 100, W: 1, O: 10, Util: 0.1} }},
		{"negative start", func(q *TimelineQuery) { q.Start = -1 }},
		{"negative horizon", func(q *TimelineQuery) { q.Horizon = -1 }},
		{"negative epochs", func(q *TimelineQuery) { q.Epochs = -1 }},
		{"negative samples", func(q *TimelineQuery) { q.Samples = -1 }},
	}
	for _, c := range cases {
		q := base
		c.mut(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestTimelineDedupAndCache pins the analytic cache identity: name and seed
// are excluded (sibling hits rebind their own scenario), the phases are
// included (different schedules never share an answer).
func TestTimelineDedupAndCache(t *testing.T) {
	ctx := context.Background()
	day := PhaseSpec{Name: "day", Duration: 480, Util: 0.2}
	night := PhaseSpec{Name: "night", Duration: 960, Util: 0.01}
	q1 := TimelineQuery{Scenario: phasedScenario(day, night)}
	q2 := q1
	q2.Scenario.Name = "sibling"
	q2.Scenario.Seed = 777
	k1, ok1 := q1.dedupKey()
	k2, ok2 := q2.dedupKey()
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("name/seed siblings should share a dedup key: %v %v", k1, k2)
	}
	q3 := q1
	q3.Scenario.Schedule = []PhaseSpec{day, {Name: "night", Duration: 960, Util: 0.05}}
	if k3, _ := q3.dedupKey(); k3 == k1 {
		t.Fatal("different schedules must not share a dedup key")
	}

	cs := NewCachedSolver(Analytic{}, nil)
	a1, err := cs.Answer(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	a2, cached, err := cs.AnswerCached(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("sibling timeline query should hit the cache")
	}
	t1, t2 := a1.(TimelineAnswer), a2.(TimelineAnswer)
	if t2.Scenario.Name != "sibling" {
		t.Fatalf("cache hit did not rebind the caller's scenario: %q", t2.Scenario.Name)
	}
	if t2.Elapsed != 0 {
		t.Fatalf("cache hit should scrub Elapsed, got %v", t2.Elapsed)
	}
	if len(t1.Epochs) != len(t2.Epochs) || t1.Epochs[0].EJob != t2.Epochs[0].EJob {
		t.Fatal("cache hit changed the epoch series")
	}
}

// TestTimelineSweepAxes drives the sweep engine over a timeline base query:
// W and util axes expand, the util axis rescales phases preserving shape,
// and the cv2 axis is refused.
func TestTimelineSweepAxes(t *testing.T) {
	base := TimelineQuery{Scenario: Scenario{
		J: 400, W: 4, O: 10,
		Schedule: []PhaseSpec{
			{Name: "day", Duration: 480, Util: 0.2},
			{Name: "night", Duration: 960, Util: 0.05},
		},
	}, Epochs: 2}
	spec := QuerySweepSpec{Base: base, W: []int{2, 4}, Util: []float64{0.05, 0.1}, Seed: 9}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		q := p.Query.(TimelineQuery)
		phases := q.Scenario.Schedule
		var weighted, total float64
		for _, ph := range phases {
			weighted += ph.Util * ph.Duration
			total += ph.Duration
		}
		mean := weighted / total
		if math.Abs(mean-0.05) > 1e-9 && math.Abs(mean-0.1) > 1e-9 {
			t.Fatalf("point %d: mean util %v not on the axis", p.Index, mean)
		}
		// The day/night ratio must be preserved by the rescale.
		if r := phases[0].Util / phases[1].Util; math.Abs(r-4) > 1e-9 {
			t.Fatalf("point %d: rescale broke the shape: ratio %v", p.Index, r)
		}
	}
	res, err := CollectQueries(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		if len(r.Answer.(TimelineAnswer).Epochs) != 2 {
			t.Fatalf("point %d: wrong epoch count", r.Point.Index)
		}
	}

	if _, err := (QuerySweepSpec{Base: base, OwnerCV2: []float64{1, 4}}).Points(); err == nil {
		t.Fatal("cv2 axis over a timeline base should be refused")
	}
}
