package solve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"feasim/internal/rng"
	"feasim/internal/sim"
)

// The query sweep is the generalization of PR 1's Report grid: the same axis
// expansion, worker pool, deterministic per-point seeding and analytic
// deduplication, but over any query kind. SweepSpec (Report grids) is now a
// thin adapter over this engine.

// axisPoint is one cell of the axis cross product. A negative value means
// "keep the base query's value" (axes that do not apply to a query kind are
// rejected loudly by withAxes).
type axisPoint struct {
	// index is the point's position in grid order, used to name scenarios.
	index  int
	w      int
	util   float64
	ratio  float64
	cv2    float64
	spread float64
}

// PointDomainError marks a per-point failure of the model's domain — an axis
// value that produces a point no backend could answer (e.g. a utilization
// rescale pushing a phase to saturation). The grid expansion records it on
// the point instead of aborting the sweep, and the HTTP error taxonomy maps
// it to the unprocessable class (422), not a server fault.
type PointDomainError struct {
	Err error
}

func (e *PointDomainError) Error() string { return e.Err.Error() }
func (e *PointDomainError) Unwrap() error { return e.Err }

// applyScenarioAxes is the shared axis interpretation for scenario-carrying
// query kinds (report, distribution) — identical to PR 1's grid expansion.
func applyScenarioAxes(sc Scenario, ax axisPoint) (Scenario, error) {
	if ax.w >= 0 {
		sc.W = ax.w
	}
	if ax.util >= 0 {
		sc.Util = ax.util
		sc.P = 0
	}
	if ax.ratio >= 0 {
		if sc.Explicit() {
			// Explicit-station scenarios carry no aggregate owner demand
			// (sc.O == 0), so ratio·O·W would silently expand to J = 0 grids.
			return sc, fmt.Errorf("solve: the task_ratio axis does not apply to explicit-station scenarios (owner demand is per station, not aggregate)")
		}
		sc.J = ax.ratio * sc.O * float64(sc.W)
	}
	if ax.cv2 >= 0 {
		sc.OwnerCV2 = ax.cv2
	}
	if ax.spread >= 0 {
		if !sc.Heterogeneous() {
			return sc, fmt.Errorf("solve: the spread axis applies only to heterogeneous (model-form) scenarios")
		}
		specs, err := spreadStations(sc.Stations, sc.O, ax.spread)
		if err != nil {
			// The rescale pushed a station outside [0,1): this one grid point
			// is outside the model's domain, but its neighbours may not be.
			// Keep the original (marshalable) station mix, name the point, and
			// report a per-point domain error so the sweep carries on.
			sc.Name = pointName(sc.Name, ax.index)
			return sc, &PointDomainError{Err: err}
		}
		sc.Stations = specs
	}
	sc.Name = pointName(sc.Name, ax.index)
	return sc, nil
}

// spreadStations rescales a model-form fleet's availability dispersion about
// its count-weighted mean: p_i' = p̄ + spread·(p_i − p̄). Spread 0 collapses
// the fleet onto its mean availability (the homogeneous cousin), 1 is the
// identity, and larger values widen the mix. Speeds and counts are untouched;
// per-station utilizations are resolved to explicit p values.
func spreadStations(specs []StationSpec, o, spread float64) ([]StationSpec, error) {
	var mean, total float64
	ps := make([]float64, len(specs))
	for i, ss := range specs {
		p, err := ss.resolveP(o)
		if err != nil {
			return nil, fmt.Errorf("solve: station %d: %w", i, err)
		}
		ps[i] = p
		mean += p * float64(ss.count())
		total += float64(ss.count())
	}
	mean /= total
	out := make([]StationSpec, len(specs))
	for i, ss := range specs {
		p := mean + spread*(ps[i]-mean)
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("solve: spread %g pushes station %d availability to p=%v (must stay in [0,1))", spread, i, p)
		}
		out[i] = StationSpec{P: p, Speed: ss.Speed, Count: ss.Count}
	}
	return out, nil
}

// cacheKey deduplicates analytic grid points across query kinds: the kind
// discriminator, a comparable scenario core (the report fast path pays no
// formatting or allocation, preserving PR 2's struct-key optimization), and
// a kind-specific extra for the non-report kinds, which are rare enough per
// grid that a formatted string costs nothing measurable.
type cacheKey struct {
	kind  string
	scen  analyticKey
	extra string
}

// ---- axis / seed / dedup hooks per query kind ----

func (q ReportQuery) withAxes(ax axisPoint) (Query, error) {
	sc, err := applyScenarioAxes(q.Scenario, ax)
	q.Scenario = sc
	if err != nil {
		var domain *PointDomainError
		if errors.As(err, &domain) {
			return q, err // per-point failure: the grid records it and moves on
		}
		return nil, err
	}
	return q, nil
}

func (q ReportQuery) withSeed(seed uint64) Query {
	q.Scenario = q.Scenario.WithSeed(seed)
	return q
}

func (q ReportQuery) dedupKey() (cacheKey, bool) {
	k, extra, ok := q.Scenario.analyticCacheKey()
	return cacheKey{kind: KindReport, scen: k, extra: extra}, ok
}

func (q DistributionQuery) withAxes(ax axisPoint) (Query, error) {
	sc, err := applyScenarioAxes(q.Scenario, ax)
	q.Scenario = sc
	if err != nil {
		var domain *PointDomainError
		if errors.As(err, &domain) {
			return q, err
		}
		return nil, err
	}
	return q, nil
}

func (q DistributionQuery) withSeed(seed uint64) Query {
	q.Scenario = q.Scenario.WithSeed(seed)
	return q
}

func (q DistributionQuery) dedupKey() (cacheKey, bool) {
	k, extra, ok := q.Scenario.analyticCacheKey()
	return cacheKey{
		kind:  KindDistribution,
		scen:  k,
		extra: fmt.Sprintf("%s%v|%v", extra, q.Quantiles, q.Deadlines),
	}, ok
}

func (q ThresholdQuery) withAxes(ax axisPoint) (Query, error) {
	if ax.ratio >= 0 {
		return nil, fmt.Errorf("solve: the task_ratio axis is the threshold query's search variable")
	}
	if ax.cv2 >= 0 {
		return nil, fmt.Errorf("solve: the owner_cv2 axis does not apply to threshold queries")
	}
	if ax.w >= 0 {
		q.W = ax.w
	}
	if ax.util >= 0 {
		q.Util = ax.util
	}
	if ax.spread >= 0 {
		if len(q.Stations) == 0 {
			return nil, fmt.Errorf("solve: the spread axis needs a station template on the threshold query")
		}
		specs, err := spreadStations(q.Stations, q.O, ax.spread)
		if err != nil {
			return q, &PointDomainError{Err: err}
		}
		q.Stations = specs
	}
	return q, nil
}

func (q ThresholdQuery) withSeed(seed uint64) Query {
	q.Seed = seed
	return q
}

func (q ThresholdQuery) dedupKey() (cacheKey, bool) {
	// The analytic threshold solver ignores the seed, so it is excluded. The
	// station-template signature folds the heterogeneity identity in.
	tpl, err := stationTemplateSignature(q.Stations, q.O)
	if err != nil {
		return cacheKey{}, false
	}
	return cacheKey{
		kind:  KindThreshold,
		extra: fmt.Sprintf("%d|%g|%g|%g|%d|%s", q.W, q.O, q.Util, q.TargetEff, q.MaxRatio, tpl),
	}, true
}

func (q PartitionQuery) withAxes(ax axisPoint) (Query, error) {
	if ax.ratio >= 0 {
		return nil, fmt.Errorf("solve: the task_ratio axis does not apply to partition queries")
	}
	if ax.cv2 >= 0 {
		return nil, fmt.Errorf("solve: the owner_cv2 axis does not apply to partition queries")
	}
	if ax.w >= 0 {
		q.MaxW = ax.w
	}
	if ax.util >= 0 {
		q.Util = ax.util
	}
	if ax.spread >= 0 {
		if len(q.Stations) == 0 {
			return nil, fmt.Errorf("solve: the spread axis needs a station template on the partition query")
		}
		specs, err := spreadStations(q.Stations, q.O, ax.spread)
		if err != nil {
			return q, &PointDomainError{Err: err}
		}
		q.Stations = specs
	}
	return q, nil
}

func (q PartitionQuery) withSeed(seed uint64) Query {
	q.Seed = seed
	return q
}

func (q PartitionQuery) dedupKey() (cacheKey, bool) {
	tpl, err := stationTemplateSignature(q.Stations, q.O)
	if err != nil {
		return cacheKey{}, false
	}
	return cacheKey{
		kind:  KindPartition,
		extra: fmt.Sprintf("%g|%g|%g|%g|%d|%s", q.J, q.O, q.Util, q.TargetEff, q.MaxW, tpl),
	}, true
}

func (q ScaledQuery) withAxes(ax axisPoint) (Query, error) {
	if ax.w >= 0 {
		return nil, fmt.Errorf("solve: the w axis does not apply to scaled queries (set ws in the query)")
	}
	if ax.cv2 >= 0 {
		return nil, fmt.Errorf("solve: the owner_cv2 axis does not apply to scaled queries")
	}
	if ax.util >= 0 {
		q.Util = ax.util
	}
	if ax.ratio >= 0 {
		q.T = ax.ratio * q.O
	}
	if ax.spread >= 0 {
		if len(q.Stations) == 0 {
			return nil, fmt.Errorf("solve: the spread axis needs a station template on the scaled query")
		}
		specs, err := spreadStations(q.Stations, q.O, ax.spread)
		if err != nil {
			return q, &PointDomainError{Err: err}
		}
		q.Stations = specs
	}
	return q, nil
}

// withSeed is a no-op: the scaled curve is analytic only.
func (q ScaledQuery) withSeed(uint64) Query { return q }

func (q ScaledQuery) dedupKey() (cacheKey, bool) {
	tpl, err := stationTemplateSignature(q.Stations, q.O)
	if err != nil {
		return cacheKey{}, false
	}
	return cacheKey{
		kind:  KindScaled,
		extra: fmt.Sprintf("%g|%g|%g|%v|%s", q.T, q.O, q.Util, q.Ws, tpl),
	}, true
}

func (q TimelineQuery) withAxes(ax axisPoint) (Query, error) {
	if ax.cv2 >= 0 {
		return nil, fmt.Errorf("solve: the owner_cv2 axis does not apply to timeline queries")
	}
	if ax.spread >= 0 {
		return nil, fmt.Errorf("solve: the spread axis does not apply to timeline queries (phased scenarios are homogeneous)")
	}
	sc := q.Scenario
	if ax.w >= 0 {
		sc.W = ax.w
	}
	if ax.ratio >= 0 {
		sc.J = ax.ratio * sc.O * float64(sc.W)
	}
	if ax.util >= 0 {
		// The util axis rescales every phase so the duration-weighted mean
		// hits the axis value, preserving the schedule's day/night shape.
		phases, _ := sc.phases()
		var weighted, total float64
		for _, ph := range phases {
			weighted += ph.Util * ph.Duration
			total += ph.Duration
		}
		if !(weighted > 0) {
			return nil, fmt.Errorf("solve: the util axis cannot rescale an all-idle timeline")
		}
		factor := ax.util * total / weighted
		scaled := make([]PhaseSpec, len(phases))
		for i, ph := range phases {
			ph.Util *= factor
			if ph.Util >= 1 {
				// The rescale overflowed a peak phase: this one grid point is
				// outside the model's domain, but its neighbours may not be.
				// Name the point, keep the original (marshalable) day shape,
				// and report a per-point domain error so the sweep carries on.
				sc.Name = pointName(sc.Name, ax.index)
				q.Scenario = sc
				return q, &PointDomainError{Err: fmt.Errorf("solve: util axis %g pushes phase %q to utilization %g (must stay below 1)", ax.util, ph.Name, ph.Util)}
			}
			scaled[i] = ph
		}
		if len(sc.Schedule) > 0 {
			sc.Schedule = scaled
		} else {
			sc.Trace = scaled
		}
	}
	sc.Name = pointName(sc.Name, ax.index)
	q.Scenario = sc
	return q, nil
}

// pointName appends the grid-order point suffix to a scenario name.
func pointName(name string, index int) string {
	if name == "" {
		return fmt.Sprintf("point%04d", index)
	}
	return fmt.Sprintf("%s/point%04d", name, index)
}

func (q TimelineQuery) withSeed(seed uint64) Query {
	q.Scenario = q.Scenario.WithSeed(seed)
	return q
}

func (q TimelineQuery) dedupKey() (cacheKey, bool) {
	sc := q.Scenario
	if !sc.Phased() || sc.Explicit() || sc.TaskDemand != "" {
		return cacheKey{}, false
	}
	// The quasi-static answer ignores Name, Seed and Samples; everything
	// else — including every phase of the timeline — is identity. Phases go
	// through the formatted extra, which also folds them into RouteHash.
	return cacheKey{
		kind: KindTimeline,
		extra: fmt.Sprintf("%g|%d|%g|%g|%g|%g|%d|%v|%v",
			sc.J, sc.W, sc.O, sc.TargetEff, q.Start, q.Horizon, q.Epochs, sc.Schedule, sc.Trace),
	}, true
}

// ---- spec ----

// QuerySweepSpec declares a query grid: a base query plus per-axis value
// lists, crossed with a backend list. Which axes apply depends on the base
// query's kind — scenario axes for report/distribution queries, W/Util for
// threshold queries, MaxW/Util for partition queries, Util/TaskRatio for
// scaled queries; an inapplicable axis fails expansion loudly. The JSON form
// nests the base query's envelope under "base".
type QuerySweepSpec struct {
	// Base is the query every grid point starts from. It may be incomplete
	// where an axis fills the value in (e.g. a zero W with a W axis).
	Base Query

	// W varies the workstation count (MaxW for partition queries).
	W []int
	// Util varies the owner utilization.
	Util []float64
	// TaskRatio varies the task ratio T/O (scenario J = ratio·O·W; scaled
	// query T = ratio·O).
	TaskRatio []float64
	// OwnerCV2 varies the owner demand variance (scenario kinds only).
	OwnerCV2 []float64
	// Spread varies a heterogeneous fleet's availability dispersion about
	// its count-weighted mean (p_i' = p̄ + spread·(p_i − p̄)); applies to
	// heterogeneous scenarios and station-template queries only.
	Spread []float64

	// Backends lists the solvers to fan each point across; empty means
	// analytic only.
	Backends []string

	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Seed is the root of the deterministic per-point seed split.
	Seed uint64
	// Protocol overrides the simulation backends' output-analysis protocol.
	Protocol *sim.Protocol
	// Warmup overrides the DES backend's warmup job count.
	Warmup int
}

// querySweepJSON is the wire form of QuerySweepSpec.
type querySweepJSON struct {
	Base      json.RawMessage `json:"base"`
	W         []int           `json:"w,omitempty"`
	Util      []float64       `json:"util,omitempty"`
	TaskRatio []float64       `json:"task_ratio,omitempty"`
	OwnerCV2  []float64       `json:"owner_cv2,omitempty"`
	Spread    []float64       `json:"spread,omitempty"`
	Backends  []string        `json:"backends,omitempty"`
	Workers   int             `json:"workers,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
	Protocol  *sim.Protocol   `json:"protocol,omitempty"`
	Warmup    int             `json:"warmup,omitempty"`
}

// MarshalJSON implements json.Marshaler, nesting the base query envelope.
func (sp QuerySweepSpec) MarshalJSON() ([]byte, error) {
	var base json.RawMessage
	if sp.Base != nil {
		b, err := MarshalQuery(sp.Base)
		if err != nil {
			return nil, err
		}
		base = b
	}
	return json.Marshal(querySweepJSON{
		Base: base, W: sp.W, Util: sp.Util, TaskRatio: sp.TaskRatio, OwnerCV2: sp.OwnerCV2,
		Spread: sp.Spread, Backends: sp.Backends, Workers: sp.Workers, Seed: sp.Seed,
		Protocol: sp.Protocol, Warmup: sp.Warmup,
	})
}

// UnmarshalJSON implements json.Unmarshaler with strict field checking. The
// base query is decoded but not validated — axes may complete it.
func (sp *QuerySweepSpec) UnmarshalJSON(data []byte) error {
	var raw querySweepJSON
	if err := unmarshalStrict(data, &raw); err != nil {
		return err
	}
	var base Query
	if len(raw.Base) > 0 {
		q, err := decodeQuery(raw.Base)
		if err != nil {
			return err
		}
		base = q
	}
	*sp = QuerySweepSpec{
		Base: base, W: raw.W, Util: raw.Util, TaskRatio: raw.TaskRatio, OwnerCV2: raw.OwnerCV2,
		Spread: raw.Spread, Backends: raw.Backends, Workers: raw.Workers, Seed: raw.Seed,
		Protocol: raw.Protocol, Warmup: raw.Warmup,
	}
	return nil
}

// backends resolves the backend list.
func (sp QuerySweepSpec) backends() []string {
	if len(sp.Backends) == 0 {
		return []string{BackendAnalytic}
	}
	return sp.Backends
}

// QueryPoint is one cell of the expanded query grid.
type QueryPoint struct {
	// Index is the point's position in grid order; results stream in
	// completion order and can be re-sorted by it.
	Index   int    `json:"index"`
	Backend string `json:"backend"`
	Query   Query  `json:"query"`
	// Err is a per-point domain error recorded at expansion time (an axis
	// value outside the model's domain, e.g. a timeline utilization rescale
	// overflowing a peak phase). The point is never solved; its QueryResult
	// carries the error. Not part of the wire shape — results report errors.
	Err error `json:"-"`
}

// MarshalJSON wraps the query in its kind envelope.
func (p QueryPoint) MarshalJSON() ([]byte, error) {
	q, err := MarshalQuery(p.Query)
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Index   int             `json:"index"`
		Backend string          `json:"backend"`
		Query   json.RawMessage `json:"query"`
	}{p.Index, p.Backend, q})
}

// QueryResult is one streamed query-sweep result.
type QueryResult struct {
	Point  QueryPoint `json:"point"`
	Answer Answer     `json:"answer,omitempty"`
	// Err is non-nil when the point's solve failed; the sweep keeps going.
	Err error `json:"-"`
	// Error mirrors Err for JSON output.
	Error string `json:"error,omitempty"`
	// Cached marks analytic points deduplicated by the in-memory cache.
	Cached bool `json:"cached,omitempty"`
}

// Points expands the grid in deterministic order and assigns each point a
// seed split from the root stream, so a sweep's randomness is a pure
// function of (spec, grid order) no matter how many workers run it or how
// the scheduler interleaves them.
func (sp QuerySweepSpec) Points() ([]QueryPoint, error) {
	if sp.Base == nil {
		return nil, fmt.Errorf("solve: query sweep needs a base query")
	}
	for _, b := range sp.backends() {
		if _, err := NewSolver(b, Options{}); err != nil {
			return nil, err
		}
	}
	ws := sp.W
	if len(ws) == 0 {
		ws = []int{-1} // sentinel: keep base value
	}
	utils := sp.Util
	if len(utils) == 0 {
		utils = []float64{-1}
	}
	ratios := sp.TaskRatio
	if len(ratios) == 0 {
		ratios = []float64{-1}
	}
	cv2s := sp.OwnerCV2
	if len(cv2s) == 0 {
		cv2s = []float64{-1}
	}
	spreads := sp.Spread
	if len(spreads) == 0 {
		spreads = []float64{-1}
	}
	root := rng.NewStream(sp.Seed)
	var pts []QueryPoint
	for _, backend := range sp.backends() {
		for _, w := range ws {
			for _, util := range utils {
				for _, ratio := range ratios {
					for _, cv2 := range cv2s {
						for _, spread := range spreads {
							i := len(pts)
							q, err := sp.Base.withAxes(axisPoint{index: i, w: w, util: util, ratio: ratio, cv2: cv2, spread: spread})
							if err != nil {
								var domain *PointDomainError
								if errors.As(err, &domain) && q != nil {
									// A domain failure is this point's answer, not
									// the grid's: record it and keep expanding.
									pts = append(pts, QueryPoint{Index: i, Backend: backend, Query: q, Err: err})
									continue
								}
								return nil, err
							}
							q = q.withSeed(root.Split(uint64(i)).Uint64())
							if err := q.Validate(); err != nil {
								return nil, fmt.Errorf("solve: grid point %d (%s): %w", i, backend, err)
							}
							pts = append(pts, QueryPoint{Index: i, Backend: backend, Query: q})
						}
					}
				}
			}
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("solve: sweep expands to an empty grid")
	}
	return pts, nil
}

// SweepQueries runs the expanded query grid on a context-cancellable worker
// pool and streams results over the returned channel in completion order.
// The channel is closed once every point has been answered or the context is
// cancelled; after cancellation no further results arrive. Errors on
// individual points are reported in their QueryResult and do not stop the
// sweep.
func SweepQueries(ctx context.Context, spec QuerySweepSpec) (<-chan QueryResult, error) {
	return sweepChannel(ctx, spec, func(qr QueryResult) QueryResult { return qr })
}

// sweepChannel is the shared worker-pool engine: convert runs inside the
// worker, so specialized result shapes (the Report grid's PointReport) pay
// no extra channel hop.
func sweepChannel[T any](ctx context.Context, spec QuerySweepSpec, convert func(QueryResult) T) (<-chan T, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	var pr sim.Protocol
	if spec.Protocol != nil {
		pr = *spec.Protocol
	}
	solvers := make(map[string]Solver)
	for _, b := range spec.backends() {
		s, err := NewSolver(b, Options{Protocol: pr, Warmup: spec.Warmup})
		if err != nil {
			return nil, err
		}
		solvers[b] = s
	}
	// The sweep dedup cache is the shared answer layer of cache.go: the
	// analytic backend is deterministic, so points sharing a key (e.g. the
	// same J/W/O/P crossed with several OwnerCV2 values or seeds) are solved
	// once. Points that are not exact repeats still share work one layer
	// down: the binomial tables are memoized by (N, P) process-wide
	// (core.Tables), so all workers of a sweep — and concurrent sweeps —
	// reuse each other's kernel builds.
	cache := NewAnswerCache(max(len(pts), DefaultAnswerCacheCapacity))

	in := make(chan QueryPoint)
	out := make(chan T, workers)
	var wg sync.WaitGroup

	// Feeder: stops handing out points as soon as the context is done.
	go func() {
		defer close(in)
		for _, p := range pts {
			select {
			case <-ctx.Done():
				return
			case in <- p:
			}
		}
	}()

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range in {
				res := convert(solveQueryPoint(ctx, solvers[p.Backend], cache, p))
				select {
				case <-ctx.Done():
					return
				case out <- res:
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// solveQueryPoint answers one grid point, consulting the analytic cache
// first. Points carrying an expansion-time domain error are never solved.
func solveQueryPoint(ctx context.Context, solver Solver, cache *AnswerCache, p QueryPoint) QueryResult {
	res := QueryResult{Point: p}
	if p.Err != nil {
		res.Err = p.Err
		res.Error = p.Err.Error()
		return res
	}
	key, cacheable := answerKey{}, false
	if p.Backend == BackendAnalytic {
		key, cacheable = answerCacheKey(BackendAnalytic, p.Query)
	}
	if cacheable {
		if a, ok := cache.lookup(key); ok {
			// The cached solve may carry a sibling's name/seed; restore this
			// point's scenario on the scenario-carrying answer kinds (and
			// scrub the stored Elapsed — it is not this point's).
			res.Answer = cachedAnswer(a, p.Query)
			res.Cached = true
			return res
		}
	}
	a, err := solver.Answer(ctx, p.Query)
	if err != nil {
		res.Err = err
		res.Error = err.Error()
		return res
	}
	res.Answer = a
	if cacheable {
		cache.store(key, a, nil)
	}
	return res
}

// CollectQueries drains a query sweep into a slice sorted by grid index. It
// returns ctx.Err() when the sweep was cut short by cancellation, along with
// whatever results completed before the cut.
func CollectQueries(ctx context.Context, spec QuerySweepSpec) ([]QueryResult, error) {
	ch, err := SweepQueries(ctx, spec)
	if err != nil {
		return nil, err
	}
	var results []QueryResult
	for r := range ch {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Point.Index < results[j].Point.Index })
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// ParseQuerySweep decodes a query sweep spec from JSON, rejecting unknown
// fields and validating the expanded grid.
func ParseQuerySweep(data []byte) (QuerySweepSpec, error) {
	var sp QuerySweepSpec
	if err := json.Unmarshal(data, &sp); err != nil {
		return QuerySweepSpec{}, fmt.Errorf("solve: bad query sweep spec: %w", err)
	}
	if _, err := sp.Points(); err != nil {
		return QuerySweepSpec{}, err
	}
	return sp, nil
}

// LoadQuerySweep reads and decodes a query sweep spec JSON file.
func LoadQuerySweep(path string) (QuerySweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return QuerySweepSpec{}, err
	}
	return ParseQuerySweep(data)
}
