package solve

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"feasim/internal/sim"
)

// roundTripQueries is one fully populated fixture per query kind.
func roundTripQueries() []Query {
	return []Query{
		ReportQuery{Scenario: Scenario{
			Name: "rt", J: 1000, W: 10, O: 10, Util: 0.05, Deadline: 150, TargetEff: 0.8, Seed: 7,
		}},
		ThresholdQuery{W: 60, O: 10, Util: 0.1, TargetEff: 0.8, MaxRatio: 512, Seed: 3},
		PartitionQuery{J: 2000, O: 10, Util: 0.05, TargetEff: 0.8, MaxW: 100, Seed: 5},
		DistributionQuery{
			Scenario:  Scenario{Name: "dist", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 11},
			Quantiles: []float64{0.5, 0.99},
			Deadlines: []float64{150, 200},
		},
		ScaledQuery{T: 100, O: 10, Util: 0.1, Ws: []int{1, 10, 100}},
	}
}

// TestQueryEnvelopeRoundTrip marshals every query kind through the JSON
// envelope and requires the parsed value to be deeply equal to the original,
// with the kind discriminator present on the wire.
func TestQueryEnvelopeRoundTrip(t *testing.T) {
	for _, want := range roundTripQueries() {
		t.Run(want.Kind(), func(t *testing.T) {
			if err := want.Validate(); err != nil {
				t.Fatalf("fixture invalid: %v", err)
			}
			data, err := MarshalQuery(want)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), `"kind":"`+want.Kind()+`"`) {
				t.Errorf("envelope missing kind discriminator: %s", data)
			}
			got, err := ParseQuery(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestQueryEnvelopeRejectsBadInput: unknown kinds, missing kinds and unknown
// fields must all fail loudly.
func TestQueryEnvelopeRejectsBadInput(t *testing.T) {
	bad := []struct {
		name string
		json string
	}{
		{"unknown kind", `{"kind": "optimise", "w": 10}`},
		{"missing kind", `{"w": 10, "o": 10}`},
		{"not json", `{"kind":`},
		{"unknown field report", `{"kind": "report", "scenario": {"j": 100, "w": 10, "o": 10}, "wiggle": 1}`},
		{"unknown field threshold", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "jitter": 2}`},
		{"unknown field partition", `{"kind": "partition", "j": 100, "o": 10, "util": 0.1, "target_eff": 0.8, "max_w": 10, "x": 1}`},
		{"unknown field distribution", `{"kind": "distribution", "scenario": {"j": 100, "w": 10, "o": 10}, "quantile": [0.5]}`},
		{"unknown field scaled", `{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1], "maxw": 3}`},
		{"unknown scenario field", `{"kind": "report", "scenario": {"j": 100, "w": 10, "o": 10, "wobble": 1}}`},
		{"invalid threshold", `{"kind": "threshold", "w": 0, "o": 10, "util": 0.1, "target_eff": 0.8}`},
		{"invalid partition", `{"kind": "partition", "j": 100, "o": 10, "util": 0.1, "target_eff": 0.8, "max_w": 0}`},
		{"invalid quantile", `{"kind": "distribution", "scenario": {"j": 100, "w": 10, "o": 10}, "quantiles": [1.5]}`},
		{"invalid scaled ws", `{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [0]}`},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseQuery([]byte(c.json)); err == nil {
				t.Errorf("expected error for %s", c.json)
			}
		})
	}
}

// TestCapabilitiesAndUnsupported requires every (backend, kind) pair to be
// either answerable or refused with an error matching ErrUnsupported, in
// exact agreement with the backend's Capabilities listing.
func TestCapabilitiesAndUnsupported(t *testing.T) {
	ctx := context.Background()
	pr := sim.Protocol{Batches: 3, BatchSize: 20, Level: 0.9}
	solvers := []Solver{
		Analytic{},
		ExactSim{Protocol: pr},
		DES{Protocol: pr, Warmup: 2},
	}
	queries := map[string]Query{
		KindReport:       ReportQuery{Scenario: Scenario{Name: "cap", J: 200, W: 4, O: 10, Util: 0.05, Seed: 1}},
		KindThreshold:    ThresholdQuery{W: 2, O: 10, Util: 0.05, TargetEff: 0.5, Seed: 1},
		KindPartition:    PartitionQuery{J: 200, O: 10, Util: 0.05, TargetEff: 0.5, MaxW: 4, Seed: 1},
		KindDistribution: DistributionQuery{Scenario: Scenario{Name: "cap", J: 200, W: 4, O: 10, Util: 0.05, Seed: 1}},
		KindScaled:       ScaledQuery{T: 50, O: 10, Util: 0.05, Ws: []int{1, 2}},
		KindTimeline: TimelineQuery{
			Scenario: Scenario{
				Name: "cap", J: 200, W: 4, O: 10, Seed: 1,
				Schedule: []PhaseSpec{{Name: "day", Duration: 300, Util: 0.1}, {Name: "night", Duration: 300, Util: 0.01}},
			},
			Epochs:  2,
			Samples: 8,
		},
	}
	for _, sv := range solvers {
		capable := make(map[string]bool)
		for _, k := range sv.Capabilities() {
			capable[k] = true
		}
		for _, kind := range QueryKinds() {
			a, err := sv.Answer(ctx, queries[kind])
			if capable[kind] {
				if err != nil {
					t.Errorf("%s/%s: capable backend errored: %v", sv.Name(), kind, err)
					continue
				}
				if a.Kind() != kind {
					t.Errorf("%s/%s: answer kind %q", sv.Name(), kind, a.Kind())
				}
			} else {
				if !errors.Is(err, ErrUnsupported) {
					t.Errorf("%s/%s: want ErrUnsupported, got %v", sv.Name(), kind, err)
				}
				var ue *UnsupportedError
				if !errors.As(err, &ue) || ue.Backend != sv.Name() || ue.Kind != kind {
					t.Errorf("%s/%s: UnsupportedError should carry the pair, got %v", sv.Name(), kind, err)
				}
			}
		}
	}
}

// TestAnalyticAnswersMatchFlatAPIs pins the query path to the flat functions
// it wraps.
func TestAnalyticAnswersMatchFlatAPIs(t *testing.T) {
	ctx := context.Background()
	a := Analytic{}

	// Threshold vs the conclusions-table solver.
	ta, err := a.Answer(ctx, ThresholdQuery{W: 60, O: 10, Util: 0.1, TargetEff: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	th := ta.(ThresholdAnswer)
	if th.MinRatio < 8 || th.MinRatio > 20 {
		t.Errorf("min task ratio %d outside the paper's plausible band", th.MinRatio)
	}
	if th.AchievedWeff < 0.8 {
		t.Errorf("achieved weff %.4f below target", th.AchievedWeff)
	}
	if th.MinJobDemand != float64(th.MinRatio)*10*60 {
		t.Errorf("min job demand %.0f != ratio*O*W", th.MinJobDemand)
	}

	// Partition: the report at the chosen W must meet the target, and W+1
	// must miss it (maximality).
	pa, err := a.Answer(ctx, PartitionQuery{J: 2000, O: 10, Util: 0.05, TargetEff: 0.8, MaxW: 200})
	if err != nil {
		t.Fatal(err)
	}
	pp := pa.(PartitionAnswer)
	if pp.Report.WeightedEfficiency < 0.8 {
		t.Errorf("partition report weff %.4f below target", pp.Report.WeightedEfficiency)
	}
	next, err := a.Solve(ctx, Scenario{J: 2000, W: pp.W + 1, O: 10, Util: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if next.WeightedEfficiency >= 0.8 {
		t.Errorf("W=%d still meets the target; partition answer %d is not maximal", pp.W+1, pp.W)
	}

	// Distribution vs the exact model distribution: the mean must equal the
	// report's E[job] and the deadline coverage must match DeadlineProb.
	s := Scenario{J: 1000, W: 10, O: 10, Util: 0.1}
	da, err := a.Answer(ctx, DistributionQuery{Scenario: s, Deadlines: []float64{150}})
	if err != nil {
		t.Fatal(err)
	}
	d := da.(DistributionAnswer)
	rep, err := a.Solve(ctx, s.WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	if diff := d.Mean - rep.EJob; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("distribution mean %.6f != report E[job] %.6f", d.Mean, rep.EJob)
	}
	if len(d.Deadlines) != 1 || d.Deadlines[0].Prob <= 0 || d.Deadlines[0].Prob > 1 {
		t.Errorf("bad deadline coverage: %+v", d.Deadlines)
	}

	// Scaled: W=1 increase-vs-single must be zero and the curve monotone.
	sa, err := a.Answer(ctx, ScaledQuery{T: 100, O: 10, Util: 0.1, Ws: []int{1, 10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	sc := sa.(ScaledAnswer)
	if len(sc.Points) != 3 || sc.Points[0].IncreaseVsSingle != 0 {
		t.Fatalf("bad scaled curve: %+v", sc.Points)
	}
	for i := 1; i < len(sc.Points); i++ {
		if sc.Points[i].EJob < sc.Points[i-1].EJob {
			t.Errorf("scaled E[job] not monotone at %d: %+v", i, sc.Points)
		}
	}
}

// TestQuerySweepSpecJSONRoundTrip checks the nested base envelope and strict
// decoding of the query sweep spec.
func TestQuerySweepSpecJSONRoundTrip(t *testing.T) {
	want := QuerySweepSpec{
		Base:     ThresholdQuery{W: 60, O: 10, TargetEff: 0.8},
		Util:     []float64{0.05, 0.1, 0.2},
		Backends: []string{BackendAnalytic},
		Workers:  2,
		Seed:     9,
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseQuerySweep(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ParseQuerySweep([]byte(`{"base": {"kind": "bogus"}}`)); err == nil {
		t.Error("unknown base kind should fail")
	}
	if _, err := ParseQuerySweep([]byte(`{"base": {"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1]}, "frobnicate": 1}`)); err == nil {
		t.Error("unknown spec field should fail")
	}
	if _, err := ParseQuerySweep([]byte(`{"w": [1]}`)); err == nil {
		t.Error("missing base should fail")
	}
}

// TestQuerySweepAxesPerKind checks which axes apply to which kinds, and that
// inapplicable axes are rejected loudly.
func TestQuerySweepAxesPerKind(t *testing.T) {
	ctx := context.Background()

	// Threshold grid over utilization: one bisection per grid point.
	res, err := CollectQueries(ctx, QuerySweepSpec{
		Base: ThresholdQuery{W: 20, O: 10, TargetEff: 0.8},
		Util: []float64{0.05, 0.1},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	r05 := res[0].Answer.(ThresholdAnswer)
	r10 := res[1].Answer.(ThresholdAnswer)
	if r05.MinRatio >= r10.MinRatio {
		t.Errorf("threshold should grow with utilization: %d @5%% vs %d @10%%", r05.MinRatio, r10.MinRatio)
	}

	// The task_ratio axis is the threshold query's search variable.
	if _, err := (QuerySweepSpec{
		Base:      ThresholdQuery{W: 20, O: 10, TargetEff: 0.8, Util: 0.1},
		TaskRatio: []float64{5, 10},
	}).Points(); err == nil {
		t.Error("task_ratio axis on a threshold grid should fail")
	}

	// The w axis does not apply to scaled queries.
	if _, err := (QuerySweepSpec{
		Base: ScaledQuery{T: 100, O: 10, Util: 0.1, Ws: []int{1, 10}},
		W:    []int{1, 2},
	}).Points(); err == nil {
		t.Error("w axis on a scaled grid should fail")
	}

	// Scenario axes apply to distribution queries like report queries.
	dres, err := CollectQueries(ctx, QuerySweepSpec{
		Base: DistributionQuery{Scenario: Scenario{J: 1000, O: 10, Util: 0.1, W: 1}},
		W:    []int{5, 10},
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dres) != 2 {
		t.Fatalf("got %d results, want 2", len(dres))
	}
	for i, want := range []int{5, 10} {
		q := dres[i].Point.Query.(DistributionQuery)
		if q.Scenario.W != want {
			t.Errorf("point %d: W=%d, want %d", i, q.Scenario.W, want)
		}
	}
}

// TestQuerySweepDedupAcrossKinds: repeated analytic points of non-report
// kinds must be served from the kind-keyed cache.
func TestQuerySweepDedupAcrossKinds(t *testing.T) {
	// Two identical utils expand to identical threshold queries (the seed is
	// excluded from the analytic dedup key).
	res, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base:    ThresholdQuery{W: 20, O: 10, TargetEff: 0.8},
		Util:    []float64{0.1, 0.1},
		Workers: 1, // serial so cache hits are deterministic
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	cached := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		if r.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("cache served %d points, want 1", cached)
	}
}

// TestQuerySweepCachedDistributionKeepsOwnScenario: the analytic backend
// ignores OwnerCV2, so an OwnerCV2 axis dedups to one solve — but each
// cached DistributionAnswer must still report its own point's scenario
// (name, seed, cv2), not the sibling's that populated the cache.
func TestQuerySweepCachedDistributionKeepsOwnScenario(t *testing.T) {
	res, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base:     DistributionQuery{Scenario: Scenario{J: 1000, W: 10, O: 10, Util: 0.1}},
		OwnerCV2: []float64{0, 4, 16},
		Workers:  1,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	cached := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", r.Point.Index, r.Err)
		}
		if r.Cached {
			cached++
		}
		want := r.Point.Query.(DistributionQuery).Scenario
		got := r.Answer.(DistributionAnswer).Scenario
		if !reflect.DeepEqual(got, want) {
			t.Errorf("point %d: answer scenario %+v, want the point's own %+v", r.Point.Index, got, want)
		}
	}
	if cached != 2 {
		t.Errorf("cache served %d points, want 2", cached)
	}
}
