package solve

import (
	"context"
	"fmt"
	"time"

	"feasim/internal/core"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// Backend names accepted by SolverFor and SweepSpec.Backends.
const (
	BackendAnalytic = "analytic"
	BackendExact    = "exact"
	BackendDES      = "des"
)

// Backends lists the backend names in canonical order.
func Backends() []string { return []string{BackendAnalytic, BackendExact, BackendDES} }

// Interval is a closed interval [Lo, Hi]. Simulation backends report one per
// metric; the analytic backend leaves them zero (its answers are exact).
// Unlike stats.CI it need not be symmetric around the point estimate, which
// matters for metrics obtained by monotone transforms of the job time.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width is Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Zero reports whether the interval is the zero value (no CI available).
func (iv Interval) Zero() bool { return iv.Lo == 0 && iv.Hi == 0 }

// Widen returns the interval scaled about its midpoint by (1 + slack), the
// same convention as sim.ValidateAgainstAnalysis.
func (iv Interval) Widen(slack float64) Interval {
	mid := (iv.Lo + iv.Hi) / 2
	half := (iv.Hi - iv.Lo) / 2 * (1 + slack)
	return Interval{Lo: mid - half, Hi: mid + half}
}

func intervalFromCI(ci stats.CI) Interval { return Interval{Lo: ci.Lo(), Hi: ci.Hi()} }

// Report is the answer every backend returns for a Scenario. Point estimates
// are always filled; confidence intervals and sample counts only by the
// simulation backends (the analytic backend leaves them at the zero
// Interval — test with Interval.Zero); the feasibility block only when the
// scenario sets TargetEff; DeadlineProb only when it sets Deadline
// (analytic backend).
type Report struct {
	Scenario Scenario `json:"scenario"`
	Backend  string   `json:"backend"`

	W int     `json:"w"`
	U float64 `json:"u"` // owner utilization used by the weighted metrics

	EJob               float64 `json:"e_job"`
	ETask              float64 `json:"e_task"`
	TaskRatio          float64 `json:"task_ratio,omitempty"`
	Speedup            float64 `json:"speedup"`
	Efficiency         float64 `json:"efficiency"`
	WeightedEfficiency float64 `json:"weighted_efficiency"`

	EJobCI  Interval `json:"e_job_ci"`
	ETaskCI Interval `json:"e_task_ci"`
	// WeffCI is the weighted-efficiency interval induced by EJobCI (weighted
	// efficiency is a decreasing function of the job time, so the endpoints
	// swap).
	WeffCI       Interval `json:"weff_ci"`
	Samples      int64    `json:"samples,omitempty"`
	MetPrecision bool     `json:"met_precision,omitempty"`

	// Feasible is non-nil when the scenario sets TargetEff.
	Feasible *bool `json:"feasible,omitempty"`
	// MinRatio and MinJobDemand are the analytic backend's prescription for
	// an infeasible point: the threshold task ratio and the job demand that
	// reaches it.
	MinRatio     int     `json:"min_ratio,omitempty"`
	MinJobDemand float64 `json:"min_job_demand,omitempty"`

	// DeadlineProb is non-nil when the scenario sets Deadline and the
	// backend can compute P(job time <= Deadline).
	DeadlineProb *float64 `json:"deadline_prob,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Solver answers a Scenario. Implementations must honor ctx: a cancelled
// context makes Solve return ctx.Err() promptly.
type Solver interface {
	// Name is the backend name ("analytic", "exact", "des").
	Name() string
	// Solve answers the scenario.
	Solve(ctx context.Context, s Scenario) (Report, error)
}

// SolverFor builds the named backend. A zero protocol means
// sim.DefaultProtocol() for the simulation backends.
func SolverFor(name string, pr sim.Protocol) (Solver, error) {
	switch name {
	case BackendAnalytic:
		return Analytic{}, nil
	case BackendExact:
		return ExactSim{Protocol: pr}, nil
	case BackendDES:
		return DES{Protocol: pr}, nil
	default:
		return nil, fmt.Errorf("solve: unknown backend %q (want %v)", name, Backends())
	}
}

// protocolOrDefault resolves a zero protocol to the paper's.
func protocolOrDefault(pr sim.Protocol) sim.Protocol {
	if pr == (sim.Protocol{}) {
		return sim.DefaultProtocol()
	}
	return pr
}

// weightedEff computes J/((1-u)·W·ejob), the weighted efficiency of
// equation form used throughout Section 3.
func weightedEff(j float64, w int, u, ejob float64) float64 {
	if ejob <= 0 || u >= 1 {
		return 0
	}
	return j / ((1 - u) * float64(w) * ejob)
}

// simReport assembles the common part of a simulation backend's report.
func simReport(s Scenario, backend string, j float64, w int, u float64, run sim.RunResult) Report {
	ejob := run.JobTime.Mean
	r := Report{
		Scenario:     s,
		Backend:      backend,
		W:            w,
		U:            u,
		EJob:         ejob,
		ETask:        run.MeanTask.Mean,
		EJobCI:       intervalFromCI(run.JobTime),
		ETaskCI:      intervalFromCI(run.MeanTask),
		Samples:      run.Samples,
		MetPrecision: run.MetPrecision,
	}
	if s.O > 0 {
		r.TaskRatio = j / float64(w) / s.O
	}
	if ejob > 0 {
		r.Speedup = j / ejob
		r.Efficiency = r.Speedup / float64(w)
		r.WeightedEfficiency = weightedEff(j, w, u, ejob)
		r.WeffCI = Interval{
			Lo: weightedEff(j, w, u, run.JobTime.Hi()),
			Hi: weightedEff(j, w, u, run.JobTime.Lo()),
		}
	}
	if s.TargetEff > 0 {
		ok := r.WeightedEfficiency >= s.TargetEff
		r.Feasible = &ok
	}
	return r
}

// Analytic answers scenarios with the paper's exact discrete-time analysis
// (equations (1)-(8)) plus the threshold solver and deadline distribution.
type Analytic struct{}

// Name implements Solver.
func (Analytic) Name() string { return BackendAnalytic }

// Solve implements Solver.
func (Analytic) Solve(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	p, err := s.Params()
	if err != nil {
		return Report{}, err
	}
	res, err := core.Analyze(p)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Scenario:           s,
		Backend:            BackendAnalytic,
		W:                  p.W,
		U:                  res.U,
		EJob:               res.EJob,
		ETask:              res.ETask,
		TaskRatio:          res.Metrics.TaskRatio,
		Speedup:            res.Speedup,
		Efficiency:         res.Efficiency,
		WeightedEfficiency: res.WeightedEfficiency,
	}
	if s.TargetEff > 0 {
		v, err := core.Assess(p, s.TargetEff)
		if err != nil {
			return Report{}, err
		}
		r.Feasible = &v.Feasible
		r.MinRatio = v.MinRatio
		r.MinJobDemand = v.MinJobDemand
	}
	if s.Deadline > 0 {
		prob, err := core.DeadlineProb(p, s.Deadline)
		if err != nil {
			return Report{}, err
		}
		r.DeadlineProb = &prob
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

// ExactSim answers scenarios with the discrete-time simulator of the
// analyzed model under the batch-means protocol — the paper's validation
// study as a backend.
type ExactSim struct {
	// Protocol is the output-analysis protocol; zero means the paper's.
	Protocol sim.Protocol
}

// Name implements Solver.
func (ExactSim) Name() string { return BackendExact }

// Solve implements Solver.
func (x ExactSim) Solve(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	p, err := s.Params()
	if err != nil {
		return Report{}, err
	}
	xs, err := sim.NewExact(p, s.Seed)
	if err != nil {
		return Report{}, err
	}
	run, err := sim.RunExactCtx(ctx, xs, protocolOrDefault(x.Protocol))
	if err != nil {
		return Report{}, err
	}
	r := simReport(s, BackendExact, p.J, p.W, p.Utilization(), run)
	r.Elapsed = time.Since(start)
	return r, nil
}

// DES answers scenarios with the discrete-event simulator: wall-clock owner
// think times, arbitrary distributions (OwnerCV2, TaskDemand, explicit
// stations) and heterogeneous machines.
type DES struct {
	// Protocol is the output-analysis protocol; zero means the paper's.
	Protocol sim.Protocol
	// Warmup is the number of discarded job executions that bring the owner
	// processes to steady state; negative disables, zero means a default.
	Warmup int
}

// DefaultDESWarmup is the warmup used when DES.Warmup is zero.
const DefaultDESWarmup = 10

// Name implements Solver.
func (DES) Name() string { return BackendDES }

// Solve implements Solver.
func (d DES) Solve(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	cfg, err := s.GeneralConfig()
	if err != nil {
		return Report{}, err
	}
	switch {
	case d.Warmup > 0:
		cfg.WarmupJobs = d.Warmup
	case d.Warmup == 0:
		cfg.WarmupJobs = DefaultDESWarmup
	}
	g, err := sim.NewGeneral(cfg)
	if err != nil {
		return Report{}, err
	}
	run, err := sim.RunGeneralCtx(ctx, g, protocolOrDefault(d.Protocol))
	if err != nil {
		return Report{}, err
	}
	j, err := s.TotalDemand()
	if err != nil {
		return Report{}, err
	}
	u := cfg.MeanUtilization()
	r := simReport(s, BackendDES, j, s.StationCount(), u, run)
	r.Elapsed = time.Since(start)
	return r, nil
}
