package solve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"feasim/internal/core"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// Backend names accepted by NewSolver and SweepSpec.Backends.
const (
	BackendAnalytic = "analytic"
	BackendExact    = "exact"
	BackendDES      = "des"
)

// Backends lists the backend names in canonical order.
func Backends() []string { return []string{BackendAnalytic, BackendExact, BackendDES} }

// Interval is a closed interval [Lo, Hi]. Simulation backends report one per
// metric; the analytic backend leaves them zero (its answers are exact).
// Unlike stats.CI it need not be symmetric around the point estimate, which
// matters for metrics obtained by monotone transforms of the job time.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width is Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Zero reports whether the interval is the zero value (no CI available).
func (iv Interval) Zero() bool { return iv.Lo == 0 && iv.Hi == 0 }

// Widen returns the interval scaled about its midpoint by (1 + slack), the
// same convention as sim.ValidateAgainstAnalysis.
func (iv Interval) Widen(slack float64) Interval {
	mid := (iv.Lo + iv.Hi) / 2
	half := (iv.Hi - iv.Lo) / 2 * (1 + slack)
	return Interval{Lo: mid - half, Hi: mid + half}
}

func intervalFromCI(ci stats.CI) Interval { return Interval{Lo: ci.Lo(), Hi: ci.Hi()} }

// Report is the answer every backend returns for a ReportQuery. Point
// estimates are always filled; confidence intervals and sample counts only
// by the simulation backends (the analytic backend leaves them at the zero
// Interval — test with Interval.Zero); the feasibility block only when the
// scenario sets TargetEff; DeadlineProb only when it sets Deadline
// (analytic backend).
type Report struct {
	Scenario Scenario `json:"scenario"`
	Backend  string   `json:"backend"`

	W int     `json:"w"`
	U float64 `json:"u"` // owner utilization used by the weighted metrics

	EJob               float64 `json:"e_job"`
	ETask              float64 `json:"e_task"`
	TaskRatio          float64 `json:"task_ratio,omitempty"`
	Speedup            float64 `json:"speedup"`
	Efficiency         float64 `json:"efficiency"`
	WeightedEfficiency float64 `json:"weighted_efficiency"`

	EJobCI  Interval `json:"e_job_ci"`
	ETaskCI Interval `json:"e_task_ci"`
	// WeffCI is the weighted-efficiency interval induced by EJobCI (weighted
	// efficiency is a decreasing function of the job time, so the endpoints
	// swap).
	WeffCI       Interval `json:"weff_ci"`
	Samples      int64    `json:"samples,omitempty"`
	MetPrecision bool     `json:"met_precision,omitempty"`

	// Feasible is non-nil when the scenario sets TargetEff.
	Feasible *bool `json:"feasible,omitempty"`
	// MinRatio and MinJobDemand are the analytic backend's prescription for
	// an infeasible point: the threshold task ratio and the job demand that
	// reaches it.
	MinRatio     int     `json:"min_ratio,omitempty"`
	MinJobDemand float64 `json:"min_job_demand,omitempty"`

	// DeadlineProb is non-nil when the scenario sets Deadline and the
	// backend can compute P(job time <= Deadline).
	DeadlineProb *float64 `json:"deadline_prob,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Solver answers typed queries. Implementations must honor ctx: a cancelled
// context makes Answer (and Solve) return ctx.Err() promptly. A query kind
// outside Capabilities is refused with an error satisfying
// errors.Is(err, ErrUnsupported).
type Solver interface {
	// Name is the backend name ("analytic", "exact", "des").
	Name() string
	// Capabilities lists the query kinds this backend answers.
	Capabilities() []string
	// Answer answers a typed query; the concrete Answer type matches the
	// query kind.
	Answer(ctx context.Context, q Query) (Answer, error)
	// Solve answers the scenario with a full report. It is the ReportQuery
	// fast path kept for compatibility: Solve(s) ≡ Answer(ReportQuery{s}).
	Solve(ctx context.Context, s Scenario) (Report, error)
}

// Options configures a backend built by NewSolver. The zero value means the
// paper's protocol and the default DES warmup.
type Options struct {
	// Protocol is the simulation output-analysis protocol (ignored by the
	// analytic backend); zero means sim.DefaultProtocol().
	Protocol sim.Protocol
	// Warmup is the DES backend's discarded-job warmup; negative disables,
	// zero means DefaultDESWarmup. Ignored by the other backends.
	Warmup int
}

// NewSolver builds the named backend with the given options.
func NewSolver(name string, opts Options) (Solver, error) {
	switch name {
	case BackendAnalytic:
		return Analytic{}, nil
	case BackendExact:
		return ExactSim{Protocol: opts.Protocol}, nil
	case BackendDES:
		return DES{Protocol: opts.Protocol, Warmup: opts.Warmup}, nil
	default:
		return nil, fmt.Errorf("solve: unknown backend %q (want %v)", name, Backends())
	}
}

// SolverFor builds the named backend. A zero protocol means
// sim.DefaultProtocol() for the simulation backends.
func SolverFor(name string, pr sim.Protocol) (Solver, error) {
	return NewSolver(name, Options{Protocol: pr})
}

// protocolOrDefault resolves a zero protocol to the paper's.
func protocolOrDefault(pr sim.Protocol) sim.Protocol {
	if pr == (sim.Protocol{}) {
		return sim.DefaultProtocol()
	}
	return pr
}

// weightedEff computes J/((1-u)·W·ejob), the weighted efficiency of
// equation form used throughout Section 3.
func weightedEff(j float64, w int, u, ejob float64) float64 {
	if ejob <= 0 || u >= 1 {
		return 0
	}
	return j / ((1 - u) * float64(w) * ejob)
}

// simReport assembles the common part of a simulation backend's report.
func simReport(s Scenario, backend string, j float64, w int, u float64, run sim.RunResult) Report {
	ejob := run.JobTime.Mean
	r := Report{
		Scenario:     s,
		Backend:      backend,
		W:            w,
		U:            u,
		EJob:         ejob,
		ETask:        run.MeanTask.Mean,
		EJobCI:       intervalFromCI(run.JobTime),
		ETaskCI:      intervalFromCI(run.MeanTask),
		Samples:      run.Samples,
		MetPrecision: run.MetPrecision,
	}
	if s.O > 0 {
		r.TaskRatio = j / float64(w) / s.O
	}
	if ejob > 0 {
		r.Speedup = j / ejob
		r.Efficiency = r.Speedup / float64(w)
		r.WeightedEfficiency = weightedEff(j, w, u, ejob)
		r.WeffCI = Interval{
			Lo: weightedEff(j, w, u, run.JobTime.Hi()),
			Hi: weightedEff(j, w, u, run.JobTime.Lo()),
		}
	}
	if s.TargetEff > 0 {
		ok := r.WeightedEfficiency >= s.TargetEff
		r.Feasible = &ok
	}
	return r
}

// ---- analytic backend ----

// Analytic answers queries with the paper's exact discrete-time analysis
// (equations (1)-(8)), the threshold and partition solvers, the exact
// completion-time distribution, and the scaled-problem sweep. It is the only
// backend answering every query kind.
type Analytic struct{}

// Name implements Solver.
func (Analytic) Name() string { return BackendAnalytic }

// Capabilities implements Solver: the analytic backend answers every kind.
func (Analytic) Capabilities() []string { return QueryKinds() }

// Solve implements Solver.
func (a Analytic) Solve(ctx context.Context, s Scenario) (Report, error) {
	return a.report(ctx, s)
}

// Answer implements Solver.
func (a Analytic) Answer(ctx context.Context, q Query) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch t := q.(type) {
	case ReportQuery:
		r, err := a.report(ctx, t.Scenario)
		if err != nil {
			return nil, err
		}
		return ReportAnswer{Report: r}, nil
	case ThresholdQuery:
		return a.threshold(t)
	case PartitionQuery:
		return a.partition(ctx, t)
	case DistributionQuery:
		return a.distribution(t)
	case ScaledQuery:
		return a.scaled(t)
	case TimelineQuery:
		return a.timeline(ctx, t)
	default:
		return nil, unsupported(BackendAnalytic, q.Kind())
	}
}

// report is the ReportQuery body (PR 1's Solve).
func (a Analytic) report(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	if s.Heterogeneous() {
		r, err := a.fleetReport(s)
		if err != nil {
			return Report{}, err
		}
		r.Elapsed = time.Since(start)
		return r, nil
	}
	p, err := s.Params()
	if err != nil {
		return Report{}, err
	}
	res, err := core.Analyze(p)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Scenario:           s,
		Backend:            BackendAnalytic,
		W:                  p.W,
		U:                  res.U,
		EJob:               res.EJob,
		ETask:              res.ETask,
		TaskRatio:          res.Metrics.TaskRatio,
		Speedup:            res.Speedup,
		Efficiency:         res.Efficiency,
		WeightedEfficiency: res.WeightedEfficiency,
	}
	if s.TargetEff > 0 {
		v, err := core.Assess(p, s.TargetEff)
		if err != nil {
			return Report{}, err
		}
		r.Feasible = &v.Feasible
		r.MinRatio = v.MinRatio
		r.MinJobDemand = v.MinJobDemand
	}
	if s.Deadline > 0 {
		prob, err := core.DeadlineProb(p, s.Deadline)
		if err != nil {
			return Report{}, err
		}
		r.DeadlineProb = &prob
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

// fleetReport answers a heterogeneous (model-form fleet) scenario through
// the Poisson-binomial fleet kernel.
func (Analytic) fleetReport(s Scenario) (Report, error) {
	f, err := s.Fleet()
	if err != nil {
		return Report{}, err
	}
	res, err := core.AnalyzeFleet(f)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Scenario:           s,
		Backend:            BackendAnalytic,
		W:                  res.W,
		U:                  res.U,
		EJob:               res.EJob,
		ETask:              res.ETask,
		TaskRatio:          res.Metrics.TaskRatio,
		Speedup:            res.Speedup,
		Efficiency:         res.Efficiency,
		WeightedEfficiency: res.WeightedEfficiency,
	}
	if s.TargetEff > 0 {
		v, err := core.AssessFleet(f, s.TargetEff)
		if err != nil {
			return Report{}, err
		}
		r.Feasible = &v.Feasible
		r.MinRatio = v.MinRatio
		r.MinJobDemand = v.MinJobDemand
	}
	if s.Deadline > 0 {
		prob, err := core.FleetDeadlineProb(f, s.Deadline)
		if err != nil {
			return Report{}, err
		}
		r.DeadlineProb = &prob
	}
	return r, nil
}

// threshold answers a ThresholdQuery with the exact solver.
func (Analytic) threshold(q ThresholdQuery) (Answer, error) {
	if len(q.Stations) > 0 {
		template, err := fleetTemplate(q.Stations, q.O)
		if err != nil {
			return nil, err
		}
		stations, err := core.TileFleet(template, q.W)
		if err != nil {
			return nil, err
		}
		fq := core.FleetThresholdQuery{Stations: stations, O: q.O, TargetWeightedEff: q.TargetEff}
		ratio, err := fq.MinTaskRatio(q.maxRatio(DefaultMaxRatio))
		if err != nil {
			return nil, err
		}
		ans := ThresholdAnswer{
			Backend:      BackendAnalytic,
			MinRatio:     ratio,
			MinJobDemand: core.RequiredJobDemand(ratio, q.O, q.W),
		}
		res, err := core.AnalyzeFleet(core.Fleet{J: ans.MinJobDemand, O: q.O, Stations: stations})
		if err != nil {
			return nil, err
		}
		ans.AchievedWeff = res.WeightedEfficiency
		return ans, nil
	}
	cq := core.ThresholdQuery{W: q.W, O: q.O, Util: q.Util, TargetWeightedEff: q.TargetEff}
	ratio, err := cq.MinTaskRatio(q.maxRatio(DefaultMaxRatio))
	if err != nil {
		return nil, err
	}
	ans := ThresholdAnswer{
		Backend:      BackendAnalytic,
		MinRatio:     ratio,
		MinJobDemand: core.RequiredJobDemand(ratio, q.O, q.W),
		AchievedWeff: 1,
	}
	if q.Util > 0 {
		p, err := core.ParamsFromUtilization(ans.MinJobDemand, q.W, q.O, q.Util)
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(p)
		if err != nil {
			return nil, err
		}
		ans.AchievedWeff = res.WeightedEfficiency
	}
	return ans, nil
}

// partition answers a PartitionQuery with the exact right-sizing solver and
// reports the full model output at the chosen size.
func (a Analytic) partition(ctx context.Context, q PartitionQuery) (Answer, error) {
	if len(q.Stations) > 0 {
		template, err := fleetTemplate(q.Stations, q.O)
		if err != nil {
			return nil, err
		}
		w, err := core.MaxFleetWorkstations(q.J, q.O, template, q.TargetEff, q.MaxW)
		if err != nil {
			return nil, err
		}
		tiled, err := core.TileFleet(template, w)
		if err != nil {
			return nil, err
		}
		r, err := a.report(ctx, Scenario{
			Name: "partition", J: q.J, W: w, O: q.O, TargetEff: q.TargetEff,
			Stations: stationSpecs(tiled),
		})
		if err != nil {
			return nil, err
		}
		return PartitionAnswer{Backend: BackendAnalytic, W: w, Report: r}, nil
	}
	plan, err := core.PlanPartition(q.J, q.O, q.Util, q.TargetEff, q.MaxW)
	if err != nil {
		return nil, err
	}
	r, err := a.report(ctx, Scenario{
		Name: "partition", J: q.J, W: plan.W, O: q.O, Util: q.Util, TargetEff: q.TargetEff,
	})
	if err != nil {
		return nil, err
	}
	return PartitionAnswer{Backend: BackendAnalytic, W: plan.W, Report: r}, nil
}

// distribution answers a DistributionQuery exactly from the model's
// discrete job-time distribution.
func (Analytic) distribution(q DistributionQuery) (Answer, error) {
	var (
		d   core.TimeDistribution
		err error
	)
	if q.Scenario.Heterogeneous() {
		var f core.Fleet
		if f, err = q.Scenario.Fleet(); err != nil {
			return nil, err
		}
		d, err = core.FleetJobTimeDistribution(f)
	} else {
		var p core.Params
		if p, err = q.Scenario.Params(); err != nil {
			return nil, err
		}
		d, err = core.JobTimeDistribution(p)
	}
	if err != nil {
		return nil, err
	}
	ans := DistributionAnswer{
		Backend:  BackendAnalytic,
		Scenario: q.Scenario,
		Mean:     d.Mean(),
		StdDev:   d.StdDev(),
	}
	for _, prob := range q.quantiles() {
		ans.Quantiles = append(ans.Quantiles, QuantileValue{Q: prob, Time: d.Quantile(prob)})
	}
	for _, t := range q.Deadlines {
		ans.Deadlines = append(ans.Deadlines, DeadlineValue{Deadline: t, Prob: 1 - d.TailProb(t)})
	}
	return ans, nil
}

// scaled answers a ScaledQuery with the exact scaled-problem sweep.
func (Analytic) scaled(q ScaledQuery) (Answer, error) {
	if len(q.Stations) > 0 {
		template, err := fleetTemplate(q.Stations, q.O)
		if err != nil {
			return nil, err
		}
		pts, err := core.ScaledFleetSweep(q.T, q.O, template, q.Ws)
		if err != nil {
			return nil, err
		}
		ans := ScaledAnswer{Backend: BackendAnalytic, Points: make([]ScaledResultPoint, 0, len(pts))}
		for _, pt := range pts {
			ans.Points = append(ans.Points, ScaledResultPoint{
				W:                   pt.W,
				EJob:                pt.Result.EJob,
				IncreaseVsDedicated: pt.IncreaseVsDedicated,
				IncreaseVsSingle:    pt.IncreaseVsSingle,
				WeightedEff:         pt.Result.WeightedEfficiency,
			})
		}
		return ans, nil
	}
	pts, err := core.ScaledSweep(q.T, q.O, q.Util, q.Ws)
	if err != nil {
		return nil, err
	}
	ans := ScaledAnswer{Backend: BackendAnalytic, Points: make([]ScaledResultPoint, 0, len(pts))}
	for _, pt := range pts {
		ans.Points = append(ans.Points, ScaledResultPoint{
			W:                   pt.W,
			EJob:                pt.Result.EJob,
			IncreaseVsDedicated: pt.IncreaseVsDedicated,
			IncreaseVsSingle:    pt.IncreaseVsSingle,
			WeightedEff:         pt.Result.WeightedEfficiency,
		})
	}
	return ans, nil
}

// ---- exact-simulation backend ----

// ExactSim answers queries with the discrete-time simulator of the analyzed
// model under the batch-means protocol — the paper's validation study as a
// backend. Threshold queries run an empirical bisection; distribution
// queries are answered from raw job samples.
type ExactSim struct {
	// Protocol is the output-analysis protocol; zero means the paper's.
	Protocol sim.Protocol
}

// Name implements Solver.
func (ExactSim) Name() string { return BackendExact }

// Capabilities implements Solver. Partition queries are excluded: the exact
// simulator requires integral task demand, which a bisection over W cannot
// maintain at fixed J.
func (ExactSim) Capabilities() []string {
	return []string{KindReport, KindThreshold, KindDistribution}
}

// Solve implements Solver.
func (x ExactSim) Solve(ctx context.Context, s Scenario) (Report, error) {
	return x.report(ctx, s)
}

// Answer implements Solver.
func (x ExactSim) Answer(ctx context.Context, q Query) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch t := q.(type) {
	case ReportQuery:
		r, err := x.report(ctx, t.Scenario)
		if err != nil {
			return nil, err
		}
		return ReportAnswer{Report: r}, nil
	case ThresholdQuery:
		if len(t.Stations) > 0 {
			return nil, refuseHeterogeneous(BackendExact, KindThreshold)
		}
		maxRatio := t.maxRatio(DefaultSimMaxRatio)
		return bisectThreshold(ctx, BackendExact, t, maxRatio, analyticThresholdGuess(t, maxRatio), x.report)
	case DistributionQuery:
		return x.distribution(ctx, t)
	default:
		return nil, unsupported(BackendExact, q.Kind())
	}
}

// report is the ReportQuery body (PR 1's Solve). Heterogeneous fleets are
// refused with the typed error: the discrete-time simulator realizes the
// homogeneous model only.
func (x ExactSim) report(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	if s.Heterogeneous() {
		return Report{}, refuseHeterogeneous(BackendExact, KindReport)
	}
	p, err := s.Params()
	if err != nil {
		return Report{}, err
	}
	xs, err := sim.NewExact(p, s.Seed)
	if err != nil {
		return Report{}, err
	}
	run, err := sim.RunExactCtx(ctx, xs, protocolOrDefault(x.Protocol))
	if err != nil {
		return Report{}, err
	}
	r := simReport(s, BackendExact, p.J, p.W, p.Utilization(), run)
	r.Elapsed = time.Since(start)
	return r, nil
}

// distribution answers a DistributionQuery empirically: the protocol's
// sample budget of raw job executions, summarized by the empirical CDF.
func (x ExactSim) distribution(ctx context.Context, q DistributionQuery) (Answer, error) {
	if q.Scenario.Heterogeneous() {
		return nil, refuseHeterogeneous(BackendExact, KindDistribution)
	}
	p, err := q.Scenario.Params()
	if err != nil {
		return nil, err
	}
	xs, err := sim.NewExact(p, q.Scenario.Seed)
	if err != nil {
		return nil, err
	}
	pr := protocolOrDefault(x.Protocol)
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	n := pr.Batches * pr.BatchSize
	samples := make([]float64, 0, n)
	for len(samples) < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < pr.BatchSize && len(samples) < n; i++ {
			samples = append(samples, xs.Sample().JobTime)
		}
	}
	return empiricalDistribution(BackendExact, q, samples), nil
}

// ---- discrete-event backend ----

// DES answers queries with the discrete-event simulator: wall-clock owner
// think times, arbitrary distributions (OwnerCV2, TaskDemand, explicit
// stations) and heterogeneous machines. Threshold and partition queries run
// empirical bisections; each probe's precision refinement extends a live
// GeneralRun session, so tightening a CI never re-simulates earlier samples.
type DES struct {
	// Protocol is the output-analysis protocol; zero means the paper's.
	Protocol sim.Protocol
	// Warmup is the number of discarded job executions that bring the owner
	// processes to steady state; negative disables, zero means a default.
	Warmup int
}

// DefaultDESWarmup is the warmup used when DES.Warmup is zero.
const DefaultDESWarmup = 10

// Name implements Solver.
func (DES) Name() string { return BackendDES }

// Capabilities implements Solver: everything except the scaled curve, which
// is a pure model artifact.
func (DES) Capabilities() []string {
	return []string{KindReport, KindThreshold, KindPartition, KindDistribution, KindTimeline}
}

// Solve implements Solver.
func (d DES) Solve(ctx context.Context, s Scenario) (Report, error) {
	return d.report(ctx, s)
}

// Answer implements Solver.
func (d DES) Answer(ctx context.Context, q Query) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch t := q.(type) {
	case ReportQuery:
		r, err := d.report(ctx, t.Scenario)
		if err != nil {
			return nil, err
		}
		return ReportAnswer{Report: r}, nil
	case ThresholdQuery:
		maxRatio := t.maxRatio(DefaultSimMaxRatio)
		return bisectThreshold(ctx, BackendDES, t, maxRatio, analyticThresholdGuess(t, maxRatio), d.report)
	case PartitionQuery:
		return bisectPartition(ctx, BackendDES, t, analyticPartitionGuess(t), d.report)
	case DistributionQuery:
		return d.distribution(ctx, t)
	case TimelineQuery:
		return d.timeline(ctx, t)
	default:
		return nil, unsupported(BackendDES, q.Kind())
	}
}

// report is the ReportQuery body (PR 1's Solve).
func (d DES) report(ctx context.Context, s Scenario) (Report, error) {
	start := time.Now()
	cfg, err := d.generalConfig(s)
	if err != nil {
		return Report{}, err
	}
	g, err := sim.NewGeneral(cfg)
	if err != nil {
		return Report{}, err
	}
	run, err := sim.RunGeneralCtx(ctx, g, protocolOrDefault(d.Protocol))
	if err != nil {
		return Report{}, err
	}
	j, err := s.TotalDemand()
	if err != nil {
		return Report{}, err
	}
	u := cfg.MeanUtilization()
	r := simReport(s, BackendDES, j, s.StationCount(), u, run)
	r.Elapsed = time.Since(start)
	return r, nil
}

// generalConfig lowers the scenario with the backend's warmup applied.
func (d DES) generalConfig(s Scenario) (sim.GeneralConfig, error) {
	cfg, err := s.GeneralConfig()
	if err != nil {
		return sim.GeneralConfig{}, err
	}
	switch {
	case d.Warmup > 0:
		cfg.WarmupJobs = d.Warmup
	case d.Warmup == 0:
		cfg.WarmupJobs = DefaultDESWarmup
	}
	return cfg, nil
}

// distribution answers a DistributionQuery empirically from the general
// simulator's job samples.
func (d DES) distribution(ctx context.Context, q DistributionQuery) (Answer, error) {
	cfg, err := d.generalConfig(q.Scenario)
	if err != nil {
		return nil, err
	}
	g, err := sim.NewGeneral(cfg)
	if err != nil {
		return nil, err
	}
	pr := protocolOrDefault(d.Protocol)
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	st, err := g.RunCtx(ctx, pr.Batches*pr.BatchSize)
	if err != nil {
		return nil, err
	}
	samples := make([]float64, len(st.Samples))
	for i, s := range st.Samples {
		samples[i] = s.JobTime
	}
	return empiricalDistribution(BackendDES, q, samples), nil
}

// empiricalDistribution summarizes raw job-time samples into a
// DistributionAnswer: moments, inverse-CDF quantiles and deadline coverage.
func empiricalDistribution(backend string, q DistributionQuery, samples []float64) DistributionAnswer {
	sort.Float64s(samples)
	var sum stats.Summary
	for _, v := range samples {
		sum.Add(v)
	}
	ans := DistributionAnswer{
		Backend:  backend,
		Scenario: q.Scenario,
		Mean:     sum.Mean(),
		StdDev:   sum.StdDev(),
		Samples:  int64(len(samples)),
	}
	for _, prob := range q.quantiles() {
		ans.Quantiles = append(ans.Quantiles, QuantileValue{Q: prob, Time: stats.EmpiricalQuantile(samples, prob)})
	}
	for _, t := range q.Deadlines {
		// P(job time <= t): fraction of sorted samples at or below t.
		at := sort.SearchFloat64s(samples, t)
		for at < len(samples) && samples[at] == t {
			at++
		}
		ans.Deadlines = append(ans.Deadlines, DeadlineValue{Deadline: t, Prob: float64(at) / float64(len(samples))})
	}
	return ans
}
