package solve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"runtime"
	"sync"
)

// ErrPanicked is the error shared with single-flight waiters when the
// execution they coalesced onto panicked. The panic itself propagates up the
// leader's stack (the serve layer recovers it into a 500); the waiters get
// this sentinel instead of a deadlock, and the key is left clean so the next
// caller re-executes.
var ErrPanicked = errors.New("solve: answer execution panicked")

// The answer layer sits between callers and backends: a size-bounded LRU of
// previously computed answers plus single-flight coalescing of concurrent
// identical queries. It generalizes the sweep engine's analytic dedup cache
// (which it now backs) to any caller-facing surface — the HTTP service of
// internal/serve is the heavy-traffic consumer, but the CLI and library
// callers can wrap any Solver the same way.
//
// Cache identity. An answer is keyed by {backend, kind, scenario core,
// extra}. For the analytic backend the scenario core is the comparable
// analyticKey of scenario.go — deliberately excluding Name, Seed and
// OwnerCV2, which the exact analysis cannot see — so siblings differing only
// in those fields share one solve (seed-independent kinds only, in the sense
// that the analytic answer never depends on the seed). The stochastic
// backends' answers are a pure function of the entire query (the seed picks
// the sample path), so their identity is the full canonical JSON envelope:
// only literally identical queries — the hot case under heavy traffic —
// share an answer.
//
// Sharding. The hot state — LRU + single-flight table — is split across a
// power-of-two number of shards selected by a seeded hash of the key, so
// concurrent lookups of distinct keys contend only within their shard. Each
// shard carries its own LRU bound (capacity/shards) and its own in-flight
// table; the capacity bound and single-flight guarantee are therefore
// per-shard, which preserves the global invariants that matter — total
// residency never exceeds the configured capacity, and concurrent identical
// queries (same key → same shard) still execute exactly once.

// DefaultAnswerCacheCapacity bounds an AnswerCache built with capacity <= 0.
const DefaultAnswerCacheCapacity = 4096

// maxAnswerCacheShards caps the shard count used by NewAnswerCache.
const maxAnswerCacheShards = 16

// defaultAnswerCacheShards sizes NewAnswerCache's layout to the available
// parallelism: shards exist to shed inter-core contention, and a
// GOMAXPROCS=1 process cannot contend on one mutex, so it should not pay
// the per-lookup shard hash either. Multi-core hosts get up to
// maxAnswerCacheShards.
func defaultAnswerCacheShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxAnswerCacheShards {
		n = maxAnswerCacheShards
	}
	return n
}

// answerKey identifies one (backend, query) answer: the backend name plus
// the query's dedup identity (the sweep engine's cacheKey, generalized).
type answerKey struct {
	backend string
	key     cacheKey
}

// answerCacheKey builds the cache identity for a query answered by the named
// backend; ok is false when the query has no stable identity (an analytic
// query outside the discrete model, or an unmarshalable query type). Solvers
// registered under one backend name must be configured identically
// (protocol, warmup) for sharing one AnswerCache to be sound.
func answerCacheKey(backend string, q Query) (answerKey, bool) {
	if backend == BackendAnalytic {
		k, ok := q.dedupKey()
		return answerKey{backend: backend, key: k}, ok
	}
	env, err := MarshalQuery(q)
	if err != nil {
		return answerKey{}, false
	}
	return answerKey{backend: backend, key: cacheKey{kind: q.Kind(), extra: string(env)}}, true
}

// rebindAnswer restores the requesting query's scenario on scenario-carrying
// answer kinds: an analytic cache hit may have been computed for a sibling
// that differs only in fields outside the dedup key (name, seed, owner CV²),
// and the caller should see its own scenario echoed back.
func rebindAnswer(a Answer, q Query) Answer {
	switch t := a.(type) {
	case ReportAnswer:
		if rq, ok := q.(ReportQuery); ok {
			t.Report.Scenario = rq.Scenario
			return t
		}
	case DistributionAnswer:
		if dq, ok := q.(DistributionQuery); ok {
			t.Scenario = dq.Scenario
			return t
		}
	case TimelineAnswer:
		if tq, ok := q.(TimelineQuery); ok {
			t.Scenario = tq.Scenario
			return t
		}
	}
	return a
}

// zeroElapsed scrubs the stored Elapsed stamp from answer kinds that carry
// one. The stored duration belongs to the original solve, not to a later
// lookup — without the scrub a ~37 µs hit would echo a ~780 µs elapsed_ns in
// the answer body.
func zeroElapsed(a Answer) Answer {
	switch t := a.(type) {
	case ReportAnswer:
		t.Report.Elapsed = 0
		return t
	case PartitionAnswer:
		t.Report.Elapsed = 0
		return t
	case TimelineAnswer:
		t.Elapsed = 0
		return t
	}
	return a
}

// cachedAnswer prepares a stored answer for a hit: rebind the caller's
// scenario and zero the stored Elapsed stamp.
func cachedAnswer(a Answer, q Query) Answer {
	return zeroElapsed(rebindAnswer(a, q))
}

// bytesSafe reports whether a stored answer's JSON encoding can be echoed
// verbatim to any future hit of this key. True exactly for non-analytic
// keys: they are keyed on the full canonical envelope, so every hit *is* the
// original query and the scenario rebind is a no-op. Analytic entries are
// seed/name/CV²-blind — a sibling hit must see its own scenario echoed back,
// which a byte replay cannot do.
func bytesSafe(key answerKey) bool { return key.backend != BackendAnalytic }

// encodeAnswer renders the canonical hit encoding of an answer: the JSON of
// the Elapsed-scrubbed body, so a byte replay never echoes a stale duration.
func encodeAnswer(a Answer) []byte {
	enc, err := json.Marshal(zeroElapsed(a))
	if err != nil {
		return nil // answers are plain structs; unreachable in practice
	}
	return enc
}

// CacheStats is a point-in-time snapshot of an AnswerCache, aggregated
// across its shards.
type CacheStats struct {
	// Hits counts lookups served from a stored answer.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to execute the backend.
	Misses int64 `json:"misses"`
	// Coalesced counts callers that waited on another caller's in-flight
	// execution of the same key instead of executing themselves.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts stored answers dropped by the per-shard LRU bound.
	Evictions int64 `json:"evictions"`
	// Entries and Capacity describe the current occupancy summed over shards.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Shards is the shard count the key space is split across.
	Shards int `json:"shards"`
	// PerShard breaks the counters down by shard (in shard order), making
	// hash imbalance — one shard hot, its siblings idle — visible to
	// operators instead of hiding inside the aggregate.
	PerShard []ShardCacheStats `json:"per_shard,omitempty"`
}

// ShardCacheStats is one shard's slice of CacheStats.
type ShardCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// flight is one in-progress execution that concurrent identical queries
// attach to instead of re-executing.
type flight struct {
	done chan struct{}
	ans  Answer
	err  error
	// retry marks a flight that failed *because* the leader's own context
	// ended mid-solve: that error says nothing about the waiters' queries, so
	// they re-enter the cache (and one of them leads a fresh execution)
	// instead of inheriting a cancellation they did not cause. A failure that
	// is not the leader's context error — a deterministic domain error — is
	// shared as-is: re-executing it would fail identically.
	retry bool
}

// cacheShard is one slice of the key space: its own mutex, LRU and
// single-flight table. Keys never move between shards, so every per-key
// guarantee of the old single-mutex design holds within a shard.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[answerKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[answerKey]*flight

	hits, misses, coalesced, evictions int64
}

// AnswerCache is the shared answer layer: sharded LRUs of answers plus
// per-shard single-flight tables. The zero value is not usable; construct
// with NewAnswerCache. All methods are safe for concurrent use.
type AnswerCache struct {
	seed   maphash.Seed
	shards []*cacheShard // len is a power of two
}

// lruEntry is the list payload, carrying the key back for eviction. enc,
// when non-nil, is the canonical hit encoding (Elapsed-scrubbed JSON) of
// ans, kept only for bytes-safe keys so the serve layer can echo hits
// without re-encoding the answer.
type lruEntry struct {
	key answerKey
	ans Answer
	enc []byte
}

// NewAnswerCache builds a cache bounded to capacity answers; capacity <= 0
// means DefaultAnswerCacheCapacity. The key space is split across a
// power-of-two number of shards sized to the host's parallelism (up to
// maxAnswerCacheShards, fewer for tiny capacities so each shard holds at
// least one entry — and exactly one shard on a GOMAXPROCS=1 host, where
// there is no contention to shed).
func NewAnswerCache(capacity int) *AnswerCache {
	return NewAnswerCacheShards(capacity, 0)
}

// NewAnswerCacheShards builds a cache with an explicit shard count, rounded
// up to a power of two and capped so every shard holds at least one entry;
// shards <= 0 selects the parallelism-sized default. shards == 1 is the
// single-mutex layout — the contention baseline, also used by tests that
// pin strict global LRU order.
func NewAnswerCacheShards(capacity, shards int) *AnswerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheCapacity
	}
	if shards <= 0 {
		shards = defaultAnswerCacheShards()
	}
	n := 1
	for n < shards {
		n *= 2
	}
	// Cap AFTER rounding to a power of two: rounding up must never push the
	// shard count past capacity, or the excess shards would get a zero
	// capacity bound and evict every entry the instant it is stored.
	for n > capacity {
		n /= 2
	}
	c := &AnswerCache{seed: maphash.MakeSeed(), shards: make([]*cacheShard, n)}
	for i := range c.shards {
		// Spread the bound as evenly as integer division allows; the first
		// capacity%n shards absorb the remainder so the total is exact.
		cap := capacity / n
		if i < capacity%n {
			cap++
		}
		c.shards[i] = &cacheShard{
			capacity: cap,
			entries:  make(map[answerKey]*list.Element),
			order:    list.New(),
			inflight: make(map[answerKey]*flight),
		}
	}
	return c
}

// shardFor hashes the key onto one shard. Identical keys always land on the
// same shard — the choice is a pure function of the key's content — which is
// what keeps the per-shard single-flight exact; distinct keys may share a
// shard, which only costs contention. The hottest key shape (an analytic
// report/distribution point: non-zero scenario core, empty extra) is hashed
// as a handful of integer mixes over the fixed-size core, skipping string
// hashing entirely so the uncontended sharded lookup costs the same as the
// single-mutex layout's; every other shape goes through one
// maphash.Comparable call over the whole key.
func (c *AnswerCache) shardFor(key answerKey) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	if key.key.extra == "" && key.key.scen != (analyticKey{}) {
		// Shard spread only needs the high-entropy axes (J, P, W); keys
		// differing solely in deadline/target/O sharing a shard is harmless.
		s := key.key.scen
		h := math.Float64bits(s.j) ^ math.Float64bits(s.p)*0x9e3779b97f4a7c15 ^ uint64(s.w)*0xff51afd7ed558ccd
		h ^= h >> 29
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 32
		return c.shards[h&uint64(len(c.shards)-1)]
	}
	return c.shardForString(key)
}

// shardForString is the string-bearing key shapes' path, kept out of
// shardFor so the fixed-size fast path stays inlinable.
func (c *AnswerCache) shardForString(key answerKey) *cacheShard {
	h := maphash.Comparable(c.seed, key)
	return c.shards[h&uint64(len(c.shards)-1)]
}

// Stats snapshots the counters, summed across shards, plus the per-shard
// breakdown.
func (c *AnswerCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards), PerShard: make([]ShardCacheStats, 0, len(c.shards))}
	for _, s := range c.shards {
		s.mu.Lock()
		sh := ShardCacheStats{
			Hits:      s.hits,
			Misses:    s.misses,
			Coalesced: s.coalesced,
			Evictions: s.evictions,
			Entries:   len(s.entries),
			Capacity:  s.capacity,
		}
		s.mu.Unlock()
		st.Hits += sh.Hits
		st.Misses += sh.Misses
		st.Coalesced += sh.Coalesced
		st.Evictions += sh.Evictions
		st.Entries += sh.Entries
		st.Capacity += sh.Capacity
		st.PerShard = append(st.PerShard, sh)
	}
	return st
}

// lookup returns the stored answer for key, counting a hit or a miss.
func (c *AnswerCache) lookup(key answerKey) (Answer, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits++
	return el.Value.(*lruEntry).ans, true
}

// peek returns the stored answer and encoding for key without counting a
// miss: it serves the cluster routing probe ("do I hold a replica?"), and a
// probe that finds nothing forwards the query instead of executing it, so it
// must not skew the miss counter that tracks local backend executions. A
// find still counts as a hit (it served traffic) and refreshes recency.
func (c *AnswerCache) peek(key answerKey) (Answer, []byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, nil, false
	}
	s.order.MoveToFront(el)
	s.hits++
	e := el.Value.(*lruEntry)
	return e.ans, e.enc, true
}

// store inserts an answer, evicting the least recently used entry of the
// key's shard past that shard's capacity bound.
func (c *AnswerCache) store(key answerKey, a Answer, enc []byte) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeLocked(key, a, enc)
}

func (s *cacheShard) storeLocked(key answerKey, a Answer, enc []byte) {
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*lruEntry)
		e.ans, e.enc = a, enc
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&lruEntry{key: key, ans: a, enc: enc})
	if len(s.entries) > s.capacity {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*lruEntry).key)
		s.evictions++
	}
}

// do returns the cached answer for key, or executes fn — at most once across
// concurrent callers of the same key (single flight; same key → same shard).
// Callers that find an execution already in flight wait for its result; a
// caller whose context expires while waiting returns the context error
// without disturbing the execution. Errors are shared with waiting callers
// but never cached, so a transient failure does not poison the key — and
// when the shared failure *is* the leader's own context ending (its client
// hung up mid-solve), the waiters re-enter and one of them leads a fresh
// execution rather than inheriting a cancellation they did not cause. A
// deterministic failure that merely coincided with the leader's context
// ending is shared as-is: re-executing a guaranteed failure in a loop would
// never converge.
func (c *AnswerCache) do(ctx context.Context, key answerKey, fn func() (Answer, error)) (a Answer, enc []byte, cached bool, err error) {
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.order.MoveToFront(el)
			s.hits++
			e := el.Value.(*lruEntry)
			a, enc = e.ans, e.enc
			s.mu.Unlock()
			return a, enc, true, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.coalesced++
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.retry {
					continue
				}
				return f.ans, nil, false, f.err
			case <-ctx.Done():
				return nil, nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.misses++
		s.mu.Unlock()

		func() {
			// A panicking fn must not strand the waiters on f.done nor leave
			// the inflight entry poisoning the key: share ErrPanicked with
			// the waiters, clear the flight, and let the panic continue to
			// the caller's recovery policy (the serve layer maps it to a 500).
			defer func() {
				if p := recover(); p != nil {
					f.err = fmt.Errorf("%w: %v", ErrPanicked, p)
					s.mu.Lock()
					delete(s.inflight, key)
					s.mu.Unlock()
					close(f.done)
					panic(p)
				}
			}()
			f.ans, f.err = fn()
		}()

		var stored []byte
		if f.err == nil && bytesSafe(key) {
			// Encode outside the shard lock: one encode per miss buys every
			// future hit a verbatim byte echo.
			stored = encodeAnswer(f.ans)
		}
		s.mu.Lock()
		delete(s.inflight, key)
		if f.err == nil {
			s.storeLocked(key, f.ans, stored)
		} else if cerr := ctx.Err(); cerr != nil && errors.Is(f.err, cerr) {
			// Only the leader's own context error is worth retrying; any
			// other failure under an expired context is deterministic for
			// the waiters too.
			f.retry = true
		}
		s.mu.Unlock()
		close(f.done)
		return f.ans, nil, false, f.err
	}
}

// CachedSolver wraps a Solver with an AnswerCache: repeated queries are
// served from the LRU and concurrent identical queries execute once. It
// implements Solver, so it drops in anywhere a backend does. Several
// CachedSolvers may share one AnswerCache (the HTTP service does this, one
// wrapper per backend over a single cache); keys always include the backend
// name, so answers never cross backend *names* — but the name is all they
// include of the solver's identity, so every solver sharing a cache under
// one name must be configured identically (protocol, warmup). Use separate
// caches for differently-configured solvers of the same backend.
type CachedSolver struct {
	inner Solver
	cache *AnswerCache
}

// NewCachedSolver wraps inner with the given cache; a nil cache gets a
// private one with the default capacity.
func NewCachedSolver(inner Solver, cache *AnswerCache) *CachedSolver {
	if cache == nil {
		cache = NewAnswerCache(0)
	}
	return &CachedSolver{inner: inner, cache: cache}
}

// Name implements Solver.
func (c *CachedSolver) Name() string { return c.inner.Name() }

// Capabilities implements Solver.
func (c *CachedSolver) Capabilities() []string { return c.inner.Capabilities() }

// Cache exposes the underlying AnswerCache (stats, sharing).
func (c *CachedSolver) Cache() *AnswerCache { return c.cache }

// Answer implements Solver.
func (c *CachedSolver) Answer(ctx context.Context, q Query) (Answer, error) {
	a, _, err := c.AnswerCached(ctx, q)
	return a, err
}

// AnswerCached answers like Answer and additionally reports whether the
// answer came from the cache (as opposed to a fresh — possibly coalesced —
// execution). Hits carry a zero Elapsed in the answer body: the stored
// solve's duration is not this lookup's.
func (c *CachedSolver) AnswerCached(ctx context.Context, q Query) (Answer, bool, error) {
	a, _, cached, err := c.AnswerCachedEncoded(ctx, q)
	return a, cached, err
}

// AnswerCachedEncoded answers like AnswerCached and additionally returns the
// canonical JSON encoding of the answer body when the hit carries one —
// non-analytic keys only, where the full-envelope identity makes a byte
// replay exact. A nil enc means the caller must encode the typed answer
// itself (fresh executions, coalesced waiters, and every analytic key, whose
// hits rebind the caller's scenario and so cannot be replayed verbatim).
func (c *CachedSolver) AnswerCachedEncoded(ctx context.Context, q Query) (Answer, []byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	key, ok := answerCacheKey(c.inner.Name(), q)
	if !ok {
		a, err := c.inner.Answer(ctx, q)
		return a, nil, false, err
	}
	a, enc, cached, err := c.cache.do(ctx, key, func() (Answer, error) {
		return c.inner.Answer(ctx, q)
	})
	if err != nil {
		return nil, nil, false, err
	}
	if cached {
		return cachedAnswer(a, q), enc, true, nil
	}
	return rebindAnswer(a, q), nil, false, nil
}

// Peek returns the cached answer (and, for non-analytic keys, its canonical
// encoding) without executing the backend or joining an in-flight execution.
// A miss leaves the miss counter untouched — Peek is the cluster routing
// probe, and a probe that finds nothing forwards the query to its home node
// rather than executing it here, so counting it would break the "misses ==
// local backend executions" reading the cluster endpoint reports.
func (c *CachedSolver) Peek(q Query) (Answer, []byte, bool) {
	key, ok := answerCacheKey(c.inner.Name(), q)
	if !ok {
		return nil, nil, false
	}
	a, enc, ok := c.cache.peek(key)
	if !ok {
		return nil, nil, false
	}
	return cachedAnswer(a, q), enc, true
}

// StoreReplica adopts an answer computed elsewhere — a peer's forwarded
// response — as a local cache entry, so repeats of the same query are served
// here without another network hop. The entry is indistinguishable from a
// locally computed one: non-analytic keys get the canonical hit encoding
// (re-encoded from the typed answer, never trusted bytes, so a peer's
// elapsed stamp cannot leak into future hits); analytic keys store the typed
// answer only, keeping the scenario rebind on sibling hits intact.
func (c *CachedSolver) StoreReplica(q Query, a Answer) {
	key, ok := answerCacheKey(c.inner.Name(), q)
	if !ok {
		return
	}
	var enc []byte
	if bytesSafe(key) {
		enc = encodeAnswer(a)
	}
	c.cache.store(key, a, enc)
}

// Solve implements Solver as the ReportQuery shorthand, so report answers
// share the cache with Answer callers.
func (c *CachedSolver) Solve(ctx context.Context, s Scenario) (Report, error) {
	a, err := c.Answer(ctx, ReportQuery{Scenario: s})
	if err != nil {
		return Report{}, err
	}
	ra, ok := a.(ReportAnswer)
	if !ok {
		return Report{}, fmt.Errorf("solve: report query answered with %T", a)
	}
	return ra.Report, nil
}
