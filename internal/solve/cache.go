package solve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// The answer layer sits between callers and backends: a size-bounded LRU of
// previously computed answers plus single-flight coalescing of concurrent
// identical queries. It generalizes the sweep engine's analytic dedup cache
// (which it now backs) to any caller-facing surface — the HTTP service of
// internal/serve is the heavy-traffic consumer, but the CLI and library
// callers can wrap any Solver the same way.
//
// Cache identity. An answer is keyed by {backend, kind, scenario core,
// extra}. For the analytic backend the scenario core is the comparable
// analyticKey of scenario.go — deliberately excluding Name, Seed and
// OwnerCV2, which the exact analysis cannot see — so siblings differing only
// in those fields share one solve (seed-independent kinds only, in the sense
// that the analytic answer never depends on the seed). The stochastic
// backends' answers are a pure function of the entire query (the seed picks
// the sample path), so their identity is the full canonical JSON envelope:
// only literally identical queries — the hot case under heavy traffic —
// share an answer.

// DefaultAnswerCacheCapacity bounds an AnswerCache built with capacity <= 0.
const DefaultAnswerCacheCapacity = 4096

// answerKey identifies one (backend, query) answer: the backend name plus
// the query's dedup identity (the sweep engine's cacheKey, generalized).
type answerKey struct {
	backend string
	key     cacheKey
}

// answerCacheKey builds the cache identity for a query answered by the named
// backend; ok is false when the query has no stable identity (an analytic
// query outside the discrete model, or an unmarshalable query type). Solvers
// registered under one backend name must be configured identically
// (protocol, warmup) for sharing one AnswerCache to be sound.
func answerCacheKey(backend string, q Query) (answerKey, bool) {
	if backend == BackendAnalytic {
		k, ok := q.dedupKey()
		return answerKey{backend: backend, key: k}, ok
	}
	env, err := MarshalQuery(q)
	if err != nil {
		return answerKey{}, false
	}
	return answerKey{backend: backend, key: cacheKey{kind: q.Kind(), extra: string(env)}}, true
}

// rebindAnswer restores the requesting query's scenario on scenario-carrying
// answer kinds: an analytic cache hit may have been computed for a sibling
// that differs only in fields outside the dedup key (name, seed, owner CV²),
// and the caller should see its own scenario echoed back.
func rebindAnswer(a Answer, q Query) Answer {
	switch t := a.(type) {
	case ReportAnswer:
		if rq, ok := q.(ReportQuery); ok {
			t.Report.Scenario = rq.Scenario
			return t
		}
	case DistributionAnswer:
		if dq, ok := q.(DistributionQuery); ok {
			t.Scenario = dq.Scenario
			return t
		}
	}
	return a
}

// CacheStats is a point-in-time snapshot of an AnswerCache.
type CacheStats struct {
	// Hits counts lookups served from a stored answer.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to execute the backend.
	Misses int64 `json:"misses"`
	// Coalesced counts callers that waited on another caller's in-flight
	// execution of the same key instead of executing themselves.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts stored answers dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Entries and Capacity describe the current LRU occupancy.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// flight is one in-progress execution that concurrent identical queries
// attach to instead of re-executing.
type flight struct {
	done chan struct{}
	ans  Answer
	err  error
	// retry marks a flight whose leader's own context ended mid-solve: its
	// error says nothing about the waiters' queries, so they re-enter the
	// cache (and one of them leads a fresh execution) instead of inheriting
	// a failure they did not cause.
	retry bool
}

// AnswerCache is the shared answer layer: a mutex-guarded LRU of answers
// plus the single-flight table. The zero value is not usable; construct with
// NewAnswerCache. All methods are safe for concurrent use.
type AnswerCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[answerKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[answerKey]*flight

	hits, misses, coalesced, evictions int64
}

// lruEntry is the list payload, carrying the key back for eviction.
type lruEntry struct {
	key answerKey
	ans Answer
}

// NewAnswerCache builds a cache bounded to capacity answers; capacity <= 0
// means DefaultAnswerCacheCapacity.
func NewAnswerCache(capacity int) *AnswerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheCapacity
	}
	return &AnswerCache{
		capacity: capacity,
		entries:  make(map[answerKey]*list.Element),
		order:    list.New(),
		inflight: make(map[answerKey]*flight),
	}
}

// Stats snapshots the counters.
func (c *AnswerCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Capacity:  c.capacity,
	}
}

// lookup returns the stored answer for key, counting a hit or a miss.
func (c *AnswerCache) lookup(key answerKey) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*lruEntry).ans, true
}

// store inserts an answer, evicting the least recently used entry past the
// capacity bound.
func (c *AnswerCache) store(key answerKey, a Answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, a)
}

func (c *AnswerCache) storeLocked(key answerKey, a Answer) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).ans = a
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, ans: a})
	if len(c.entries) > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// do returns the cached answer for key, or executes fn — at most once across
// concurrent callers of the same key (single flight). Callers that find an
// execution already in flight wait for its result; a caller whose context
// expires while waiting returns the context error without disturbing the
// execution. Errors are shared with waiting callers but never cached, so a
// transient failure does not poison the key — and when the shared failure
// was only the *leader's* context ending (its client hung up mid-solve),
// the waiters re-enter and one of them leads a fresh execution rather than
// inheriting a cancellation they did not cause.
func (c *AnswerCache) do(ctx context.Context, key answerKey, fn func() (Answer, error)) (a Answer, cached bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			a = el.Value.(*lruEntry).ans
			c.mu.Unlock()
			return a, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.retry {
					continue
				}
				return f.ans, false, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		c.mu.Unlock()

		f.ans, f.err = fn()

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.storeLocked(key, f.ans)
		} else if ctx.Err() != nil {
			f.retry = true
		}
		c.mu.Unlock()
		close(f.done)
		return f.ans, false, f.err
	}
}

// CachedSolver wraps a Solver with an AnswerCache: repeated queries are
// served from the LRU and concurrent identical queries execute once. It
// implements Solver, so it drops in anywhere a backend does. Several
// CachedSolvers may share one AnswerCache (the HTTP service does this, one
// wrapper per backend over a single cache); keys always include the backend
// name, so answers never cross backend *names* — but the name is all they
// include of the solver's identity, so every solver sharing a cache under
// one name must be configured identically (protocol, warmup). Use separate
// caches for differently-configured solvers of the same backend.
type CachedSolver struct {
	inner Solver
	cache *AnswerCache
}

// NewCachedSolver wraps inner with the given cache; a nil cache gets a
// private one with the default capacity.
func NewCachedSolver(inner Solver, cache *AnswerCache) *CachedSolver {
	if cache == nil {
		cache = NewAnswerCache(0)
	}
	return &CachedSolver{inner: inner, cache: cache}
}

// Name implements Solver.
func (c *CachedSolver) Name() string { return c.inner.Name() }

// Capabilities implements Solver.
func (c *CachedSolver) Capabilities() []string { return c.inner.Capabilities() }

// Cache exposes the underlying AnswerCache (stats, sharing).
func (c *CachedSolver) Cache() *AnswerCache { return c.cache }

// Answer implements Solver.
func (c *CachedSolver) Answer(ctx context.Context, q Query) (Answer, error) {
	a, _, err := c.AnswerCached(ctx, q)
	return a, err
}

// AnswerCached answers like Answer and additionally reports whether the
// answer came from the cache (as opposed to a fresh — possibly coalesced —
// execution).
func (c *CachedSolver) AnswerCached(ctx context.Context, q Query) (Answer, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	key, ok := answerCacheKey(c.inner.Name(), q)
	if !ok {
		a, err := c.inner.Answer(ctx, q)
		return a, false, err
	}
	a, cached, err := c.cache.do(ctx, key, func() (Answer, error) {
		return c.inner.Answer(ctx, q)
	})
	if err != nil {
		return nil, false, err
	}
	return rebindAnswer(a, q), cached, nil
}

// Solve implements Solver as the ReportQuery shorthand, so report answers
// share the cache with Answer callers.
func (c *CachedSolver) Solve(ctx context.Context, s Scenario) (Report, error) {
	a, err := c.Answer(ctx, ReportQuery{Scenario: s})
	if err != nil {
		return Report{}, err
	}
	ra, ok := a.(ReportAnswer)
	if !ok {
		return Report{}, fmt.Errorf("solve: report query answered with %T", a)
	}
	return ra.Report, nil
}
