package solve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicOnceSolver panics on its first Answer (after the release gate opens)
// and answers normally afterwards.
type panicOnceSolver struct {
	calls   atomic.Int64
	release chan struct{}
}

func (p *panicOnceSolver) Name() string           { return "boom" }
func (p *panicOnceSolver) Capabilities() []string { return QueryKinds() }

func (p *panicOnceSolver) Answer(ctx context.Context, q Query) (Answer, error) {
	n := p.calls.Add(1)
	if p.release != nil {
		<-p.release
	}
	if n == 1 {
		panic("kaboom")
	}
	return ThresholdAnswer{Backend: "boom", MinRatio: 7}, nil
}

func (p *panicOnceSolver) Solve(ctx context.Context, s Scenario) (Report, error) {
	a, err := p.Answer(ctx, ReportQuery{Scenario: s})
	if err != nil {
		return Report{}, err
	}
	return a.(ReportAnswer).Report, nil
}

// TestCachePanicDoesNotPoisonKey: a panic in the single-flight leader must
// propagate up the leader's own stack, release coalesced waiters with
// ErrPanicked instead of deadlocking them, and leave the key clean so the
// next caller re-executes.
func TestCachePanicDoesNotPoisonKey(t *testing.T) {
	ctx := context.Background()
	inner := &panicOnceSolver{release: make(chan struct{})}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 9}

	var wg sync.WaitGroup
	leaderPanic := make(chan any, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { leaderPanic <- recover() }()
		cs.AnswerCached(ctx, q)
	}()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			runtime.Gosched()
		}
	}
	waitFor(func() bool { return inner.calls.Load() == 1 }, "the leader to start")

	const waiters = 3
	waiterErrs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := cs.AnswerCached(ctx, q)
			waiterErrs[i] = err
		}(i)
	}
	waitFor(func() bool { return cs.Cache().Stats().Coalesced == waiters }, "the waiters to coalesce")

	close(inner.release) // the leader now panics
	wg.Wait()

	if p := <-leaderPanic; p == nil {
		t.Fatal("the leader's panic must propagate, not be swallowed")
	}
	for i, err := range waiterErrs {
		if !errors.Is(err, ErrPanicked) {
			t.Fatalf("waiter %d: want ErrPanicked, got %v", i, err)
		}
	}

	// The key is clean: a fresh call re-executes and succeeds.
	a, cached, err := cs.AnswerCached(ctx, q)
	if err != nil || cached {
		t.Fatalf("post-panic call: cached=%v err=%v", cached, err)
	}
	if a.(ThresholdAnswer).MinRatio != 7 {
		t.Fatalf("post-panic answer %+v", a)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("inner executed %d times, want 2 (panicked once, succeeded once)", got)
	}
}
