package solve

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"feasim/internal/rng"
	"feasim/internal/sim"
)

// frontierBase is the canonical frontier fixture: the Section 3 aggregate
// model with a 0.8 weighted-efficiency target, searched over the
// utilization × task-ratio plane where the paper's feasibility boundary
// lives (threshold ratio grows with utilization).
func frontierBase() ReportQuery {
	return ReportQuery{Scenario: Scenario{
		Name: "frontier", W: 20, O: 10, Util: 0.1, J: 2000, TargetEff: 0.8,
	}}
}

func frontierAxes() (FrontierAxis, FrontierAxis) {
	return FrontierAxis{Axis: FrontierAxisUtil, Min: 0.02, Max: 0.2},
		FrontierAxis{Axis: FrontierAxisRatio, Min: 1, Max: 40}
}

// boundarySet collects the finest-grid origins of a run's boundary cells.
func boundarySet(t *testing.T, cells []FrontierCell) map[[2]int]bool {
	t.Helper()
	set := make(map[[2]int]bool)
	for _, c := range cells {
		if c.Verdict == FrontierError {
			t.Fatalf("cell (%d,%d): %s", c.IX, c.IY, c.Error)
		}
		if c.Verdict == FrontierBoundary {
			if c.Span != 1 {
				t.Fatalf("boundary cell (%d,%d) has span %d, want 1", c.IX, c.IY, c.Span)
			}
			set[[2]int{c.IX, c.IY}] = true
		}
	}
	return set
}

// TestFrontierMatchesDenseSweep locates the boundary adaptively at
// resolution 16 and checks it against the ground truth computed from a full
// dense query sweep over the same node lattice: exactly the same boundary
// cells, from far fewer probes.
func TestFrontierMatchesDenseSweep(t *testing.T) {
	x, y := frontierAxes()
	spec := FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 2, Depth: 3, Seed: 21}
	res := spec.Resolution()
	if res != 16 {
		t.Fatalf("resolution %d, want 16", res)
	}
	fres, err := CollectFrontier(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := boundarySet(t, fres.Cells)

	// Ground truth: the dense grid over the identical node values, through
	// the ordinary query-sweep engine.
	var utils, ratios []float64
	for i := 0; i <= res; i++ {
		utils = append(utils, x.value(i, res))
		ratios = append(ratios, y.value(i, res))
	}
	dense, err := CollectQueries(context.Background(), QuerySweepSpec{
		Base: frontierBase(), Util: utils, TaskRatio: ratios, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != (res+1)*(res+1) {
		t.Fatalf("dense grid has %d points, want %d", len(dense), (res+1)*(res+1))
	}
	feas := make(map[[2]int]bool)
	for _, r := range dense {
		if r.Err != nil {
			t.Fatalf("dense point %d: %v", r.Point.Index, r.Err)
		}
		rep := r.Answer.(ReportAnswer).Report
		if rep.Feasible == nil {
			t.Fatalf("dense point %d carries no verdict", r.Point.Index)
		}
		feas[[2]int{r.Point.Index / (res + 1), r.Point.Index % (res + 1)}] = *rep.Feasible
	}
	want := make(map[[2]int]bool)
	for ix := 0; ix < res; ix++ {
		for iy := 0; iy < res; iy++ {
			a, b := feas[[2]int{ix, iy}], feas[[2]int{ix + 1, iy}]
			c, d := feas[[2]int{ix, iy + 1}], feas[[2]int{ix + 1, iy + 1}]
			if a != b || a != c || a != d {
				want[[2]int{ix, iy}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture's boundary does not cross the searched window")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("boundary cells differ: frontier %d cells, dense %d cells", len(got), len(want))
	}

	// The cells must tile the window exactly: every finest-resolution unit
	// covered once.
	area := 0
	for _, c := range fres.Cells {
		area += c.Span * c.Span
	}
	if area != res*res {
		t.Errorf("cells cover %d unit squares, want %d", area, res*res)
	}
	if fres.Stats.Boundary != len(want) {
		t.Errorf("stats.Boundary = %d, want %d", fres.Stats.Boundary, len(want))
	}
	if fres.Stats.Evaluations >= fres.Stats.DenseEvaluations {
		t.Errorf("adaptive run probed %d nodes, dense needs only %d", fres.Stats.Evaluations, fres.Stats.DenseEvaluations)
	}
}

// TestFrontierMatchesExhaustiveDES runs the same adaptive-vs-exhaustive
// comparison on the DES backend: node seeds are a pure function of the
// finest-grid coordinate, so both runs see identical stochastic verdicts and
// must agree on the boundary.
func TestFrontierMatchesExhaustiveDES(t *testing.T) {
	pr := &sim.Protocol{Batches: 4, BatchSize: 40, Level: 0.9}
	x, y := frontierAxes()
	base := FrontierSpec{
		Base: frontierBase(), X: x, Y: y,
		Backend: BackendDES, Protocol: pr, Warmup: 5, Seed: 33,
	}
	adaptive := base
	adaptive.Coarse, adaptive.Depth = 2, 1
	exhaustive := base
	exhaustive.Coarse, exhaustive.Depth = 4, -1
	if adaptive.Resolution() != exhaustive.Resolution() {
		t.Fatalf("resolutions differ: %d vs %d", adaptive.Resolution(), exhaustive.Resolution())
	}
	ares, err := CollectFrontier(context.Background(), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := CollectFrontier(context.Background(), exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	got, want := boundarySet(t, ares.Cells), boundarySet(t, eres.Cells)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DES boundary differs: adaptive %v, exhaustive %v", got, want)
	}
	if eres.Stats.Evaluations != (exhaustive.Resolution()+1)*(exhaustive.Resolution()+1) {
		t.Errorf("exhaustive run probed %d nodes, want the full lattice %d",
			eres.Stats.Evaluations, (exhaustive.Resolution()+1)*(exhaustive.Resolution()+1))
	}
}

// countingAnalytic wraps Analytic and counts Answer executions — the probes
// a backend actually pays for, after the dedup cache.
type countingAnalytic struct {
	Analytic
	calls atomic.Int64
}

func (c *countingAnalytic) Answer(ctx context.Context, q Query) (Answer, error) {
	c.calls.Add(1)
	return c.Analytic.Answer(ctx, q)
}

// TestFrontierTenfoldFewerSolverCalls pins the tentpole's acceptance bar: at
// depth 5 (resolution 128) the adaptive search must locate the boundary with
// at least 10× fewer backend executions than the equivalent dense grid.
func TestFrontierTenfoldFewerSolverCalls(t *testing.T) {
	x, y := frontierAxes()
	spec := FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 4, Depth: 5, Seed: 7}
	solver := &countingAnalytic{}
	ch, stats, err := SweepFrontierSolver(context.Background(), spec, solver)
	if err != nil {
		t.Fatal(err)
	}
	boundary := 0
	for c := range ch {
		if c.Verdict == FrontierError {
			t.Fatalf("cell (%d,%d): %s", c.IX, c.IY, c.Error)
		}
		if c.Verdict == FrontierBoundary {
			boundary++
		}
	}
	st := stats()
	res := spec.Resolution()
	dense := (res + 1) * (res + 1)
	calls := int(solver.calls.Load())
	if st.DenseEvaluations != dense {
		t.Errorf("stats.DenseEvaluations = %d, want %d", st.DenseEvaluations, dense)
	}
	if calls != st.Evaluations-st.CacheHits {
		t.Errorf("solver saw %d calls, stats say %d probes − %d cache hits", calls, st.Evaluations, st.CacheHits)
	}
	if boundary < res {
		t.Errorf("only %d boundary cells at resolution %d; the frontier should span the window", boundary, res)
	}
	if calls*10 > dense {
		t.Errorf("adaptive search paid %d backend executions; dense grid is %d — ratio %.1f×, want ≥ 10×",
			calls, dense, float64(dense)/float64(calls))
	}
	t.Logf("boundary at resolution %d: %d backend executions vs %d dense (%.1f×), %d boundary cells",
		res, calls, dense, float64(dense)/float64(calls), boundary)
}

// TestFrontierStreamsLevelByLevel: cells must arrive in nondecreasing depth
// order — each refinement level's classifications stream before the next
// level's probes finish — and the channel must deliver the coarse level's
// interior cells even if the consumer is slow.
func TestFrontierStreamsLevelByLevel(t *testing.T) {
	x, y := frontierAxes()
	spec := FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 2, Depth: 2, Seed: 3}
	ch, _, err := SweepFrontier(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for c := range ch {
		if c.Depth < last {
			t.Fatalf("cell (%d,%d) at depth %d arrived after depth %d", c.IX, c.IY, c.Depth, last)
		}
		last = c.Depth
	}
	if last == 0 {
		t.Fatal("run never refined past the coarse grid")
	}
}

// TestFrontierCancellation: a cancelled context ends the run promptly with
// the channel closed and ctx.Err() reported by CollectFrontier.
func TestFrontierCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, y := frontierAxes()
	_, err := CollectFrontier(ctx, FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 2, Depth: 2})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestFrontierTimelineDomainErrorCells: a timeline base whose util axis
// overflows the peak phase at the top of the range must resolve those cells
// as per-point domain errors while the rest of the window classifies
// normally — the sweep-engine bugfix carried into frontier mode.
func TestFrontierTimelineDomainErrorCells(t *testing.T) {
	base := TimelineQuery{Scenario: Scenario{
		J: 400, W: 4, O: 10, TargetEff: 0.5,
		Schedule: []PhaseSpec{
			{Name: "day", Duration: 480, Util: 0.2},
			{Name: "night", Duration: 960, Util: 0.05},
		},
	}, Epochs: 2}
	spec := FrontierSpec{
		Base: base,
		// Mean utilization 0.53 rescales the day phase to 0.2·5.3 = 1.06 ≥ 1:
		// the top of this range is outside the model's domain (and the node
		// spacing skips the narrow band where the phase stays below 1 but the
		// derived request probability already exceeds it).
		X:      FrontierAxis{Axis: FrontierAxisUtil, Min: 0.05, Max: 0.53},
		Y:      FrontierAxis{Axis: FrontierAxisW, Min: 2, Max: 10},
		Coarse: 4, Depth: -1, Seed: 5,
	}
	res, err := CollectFrontier(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var failed, overflow, classified int
	var domain *PointDomainError
	for _, c := range res.Cells {
		switch c.Verdict {
		case FrontierError:
			failed++
			// The saturated rescale arrives as the expansion-time domain
			// error; other corners may fail inside the backend instead (the
			// same per-cell class, different layer).
			if errors.As(c.Err, &domain) && strings.Contains(c.Error, "must stay below 1") {
				overflow++
			}
		case FrontierFeasible, FrontierInfeasible, FrontierBoundary:
			classified++
		}
	}
	if overflow == 0 {
		t.Fatalf("no cells carry the rescale-overflow domain error (%d error cells total)", failed)
	}
	if classified == 0 {
		t.Fatal("no classified cells; the overflow must not poison the whole window")
	}
	if res.Stats.Failed != failed {
		t.Errorf("stats.Failed = %d, want %d", res.Stats.Failed, failed)
	}
}

// TestFrontierSpecValidation walks the loud-rejection matrix.
func TestFrontierSpecValidation(t *testing.T) {
	x, y := frontierAxes()
	ok := FrontierSpec{Base: frontierBase(), X: x, Y: y}
	cases := []struct {
		name   string
		mutate func(*FrontierSpec)
		want   string
	}{
		{"missing base", func(s *FrontierSpec) { s.Base = nil }, "needs a base query"},
		{"no verdict kind", func(s *FrontierSpec) {
			s.Base = ThresholdQuery{W: 20, O: 10, Util: 0.1, TargetEff: 0.8}
		}, "feasibility verdict"},
		{"no target", func(s *FrontierSpec) {
			q := frontierBase()
			q.Scenario.TargetEff = 0
			s.Base = q
		}, "target_eff"},
		{"unknown axis", func(s *FrontierSpec) { s.X.Axis = "cv" }, "unknown"},
		{"same axis twice", func(s *FrontierSpec) { s.Y = s.X }, "must differ"},
		{"inverted range", func(s *FrontierSpec) { s.X.Min, s.X.Max = s.X.Max, s.X.Min }, "min < max"},
		{"util at saturation", func(s *FrontierSpec) { s.X.Max = 1 }, "inside [0,1)"},
		{"resolution blowup", func(s *FrontierSpec) { s.Coarse = 64; s.Depth = 12 }, "exceeds"},
		{"unknown backend", func(s *FrontierSpec) { s.Backend = "quantum" }, "backend"},
		{"ratio axis on explicit stations", func(s *FrontierSpec) {
			s.Base = ReportQuery{Scenario: Scenario{
				TargetEff: 0.8,
				Stations: []StationSpec{
					{OwnerThink: "exp:90", OwnerDemand: "det:10", Count: 2},
				},
				TaskDemand: "det:100",
			}}
		}, "explicit-station"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := ok
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("want a validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline spec should validate: %v", err)
	}
}

// TestFrontierSpecJSONRoundTrip pins the wire form: nested base envelope,
// strict fields, and ParseFrontier validation.
func TestFrontierSpecJSONRoundTrip(t *testing.T) {
	x, y := frontierAxes()
	want := FrontierSpec{
		Base: frontierBase(), X: x, Y: y,
		Coarse: 2, Depth: 2, Backend: BackendAnalytic, Workers: 3, Seed: 17,
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrontier(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ParseFrontier([]byte(`{"base": {"kind": "report", "scenario": {"j": 1, "w": 1, "o": 1, "util": 0.1}}, "x": {"axis": "w", "min": 1, "max": 4}, "y": {"axis": "util", "min": 0.1, "max": 0.5}, "frobnicate": 1}`)); err == nil {
		t.Error("unknown spec field should fail")
	}
	if _, err := ParseFrontier([]byte(`{}`)); err == nil {
		t.Error("empty spec should fail")
	}
}

// TestFrontierDeterministicSeeds: the node seed is a pure function of the
// finest-grid coordinate, so two runs at different depths assign the same
// seed to the same axis point — the property that lets refinement levels and
// the answer cache compound.
func TestFrontierDeterministicSeeds(t *testing.T) {
	x, y := frontierAxes()
	shallow := FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 4, Depth: -1, Seed: 11}
	deep := FrontierSpec{Base: frontierBase(), X: x, Y: y, Coarse: 2, Depth: 1, Seed: 11}
	if shallow.Resolution() != deep.Resolution() {
		t.Fatalf("resolutions differ: %d vs %d", shallow.Resolution(), deep.Resolution())
	}
	collect := func(spec FrontierSpec) map[[2]int]uint64 {
		res := spec.Resolution()
		fr := &frontierRun{spec: spec, res: res, seed: rng.NewStream(spec.Seed)}
		seeds := make(map[[2]int]uint64)
		for ix := 0; ix <= res; ix++ {
			for iy := 0; iy <= res; iy++ {
				q, err := fr.nodeQuery(ix, iy)
				if err != nil {
					t.Fatal(err)
				}
				seeds[[2]int{ix, iy}] = q.(ReportQuery).Scenario.Seed
			}
		}
		return seeds
	}
	if !reflect.DeepEqual(collect(shallow), collect(deep)) {
		t.Error("node seeds depend on the refinement schedule, not just the coordinate")
	}
}

// TestFrontierTimeBudget keeps the suite honest about wall-clock: the
// depth-5 counting run plus the analytic parity run must stay well under a
// second on the analytic backend.
func TestFrontierTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	x, y := frontierAxes()
	start := time.Now()
	if _, err := CollectFrontier(context.Background(), FrontierSpec{
		Base: frontierBase(), X: x, Y: y, Coarse: 4, Depth: 4, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("depth-4 analytic frontier took %v", d)
	}
}
