package solve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSolver counts Answer executions and can gate them on a channel so
// tests control overlap deterministically.
type countingSolver struct {
	name    string
	calls   atomic.Int64
	release chan struct{} // nil: answer immediately
	err     error
	// ignoreCtx makes a gated solver wait out its release even under a
	// cancelled context, so tests can order "ctx expires, then the solver
	// fails deterministically" without racing the select below.
	ignoreCtx bool
}

func (c *countingSolver) Name() string           { return c.name }
func (c *countingSolver) Capabilities() []string { return QueryKinds() }

func (c *countingSolver) Answer(ctx context.Context, q Query) (Answer, error) {
	c.calls.Add(1)
	if c.release != nil {
		if c.ignoreCtx {
			<-c.release
		} else {
			select {
			case <-c.release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	return ThresholdAnswer{Backend: c.name, MinRatio: 7}, nil
}

func (c *countingSolver) Solve(ctx context.Context, s Scenario) (Report, error) {
	a, err := c.Answer(ctx, ReportQuery{Scenario: s})
	if err != nil {
		return Report{}, err
	}
	return a.(ReportAnswer).Report, nil
}

// TestCachedSolverHitsAndMisses: repeated identical queries execute once;
// distinct queries execute separately; stats track both.
func TestCachedSolverHitsAndMisses(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake"}
	cs := NewCachedSolver(inner, nil)

	q1 := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 1}
	q2 := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 2}

	for i := 0; i < 3; i++ {
		a, cached, err := cs.AnswerCached(ctx, q1)
		if err != nil {
			t.Fatal(err)
		}
		if wantCached := i > 0; cached != wantCached {
			t.Errorf("call %d: cached=%v, want %v", i, cached, wantCached)
		}
		if a.(ThresholdAnswer).MinRatio != 7 {
			t.Errorf("call %d: unexpected answer %+v", i, a)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner executed %d times for one query, want 1", got)
	}
	// A non-analytic backend's key is the full envelope: a different seed is
	// a different answer.
	if _, cached, err := cs.AnswerCached(ctx, q2); err != nil || cached {
		t.Errorf("distinct seed should miss: cached=%v err=%v", cached, err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("inner executed %d times for two distinct queries, want 2", got)
	}
	st := cs.Cache().Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats %+v, want 2 hits / 2 misses / 2 entries", st)
	}
}

// TestCachedSolverCoalesces: concurrent identical queries execute the inner
// solver exactly once, with the waiters counted as coalesced.
func TestCachedSolverCoalesces(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake", release: make(chan struct{})}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 5}

	const n = 8
	var wg sync.WaitGroup
	answers := make([]Answer, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], _, errs[i] = cs.AnswerCached(ctx, q)
		}(i)
	}
	// Release once every caller is either leading or waiting on the flight.
	for {
		st := cs.Cache().Stats()
		if st.Misses == 1 && st.Coalesced == n-1 {
			break
		}
		runtime.Gosched()
	}
	close(inner.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(answers[i], answers[0]) {
			t.Errorf("caller %d got a different answer: %+v vs %+v", i, answers[i], answers[0])
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner executed %d times under %d concurrent identical queries, want 1", got, n)
	}
	st := cs.Cache().Stats()
	if st.Coalesced != n-1 || st.Misses != 1 {
		t.Errorf("stats %+v, want %d coalesced / 1 miss", st, n-1)
	}
}

// TestCachedSolverDoesNotCacheErrors: a failed execution is shared with
// in-flight waiters but must not poison the key.
func TestCachedSolverDoesNotCacheErrors(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake", err: errors.New("transient")}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 9}

	if _, _, err := cs.AnswerCached(ctx, q); err == nil {
		t.Fatal("want the inner error")
	}
	inner.err = nil
	a, cached, err := cs.AnswerCached(ctx, q)
	if err != nil || cached {
		t.Fatalf("retry after error: cached=%v err=%v", cached, err)
	}
	if a == nil || inner.calls.Load() != 2 {
		t.Errorf("error must not be cached: %d calls", inner.calls.Load())
	}
}

// TestCachedSolverAnalyticRebindsScenario: analytic answers are shared
// across siblings differing only in name/seed/owner CV², but each caller
// must see its own scenario echoed back.
func TestCachedSolverAnalyticRebindsScenario(t *testing.T) {
	ctx := context.Background()
	cs := NewCachedSolver(Analytic{}, nil)
	base := Scenario{Name: "a", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 1}
	sib := Scenario{Name: "b", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 2, OwnerCV2: 16}

	if _, cached, err := cs.AnswerCached(ctx, ReportQuery{Scenario: base}); err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	a, cached, err := cs.AnswerCached(ctx, ReportQuery{Scenario: sib})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("sibling scenario should hit the analytic dedup key")
	}
	if got := a.(ReportAnswer).Report.Scenario; !reflect.DeepEqual(got, sib) {
		t.Errorf("cached answer carries scenario %+v, want the caller's %+v", got, sib)
	}
}

// TestCachedSolverSolveSharesCache: the Solve shorthand and Answer(Report)
// must share one entry.
func TestCachedSolverSolveSharesCache(t *testing.T) {
	ctx := context.Background()
	cs := NewCachedSolver(Analytic{}, nil)
	s := Scenario{J: 1000, W: 10, O: 10, Util: 0.1}
	rep, err := cs.Solve(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	a, cached, err := cs.AnswerCached(ctx, ReportQuery{Scenario: s})
	if err != nil || !cached {
		t.Fatalf("Answer after Solve should hit: cached=%v err=%v", cached, err)
	}
	if got := a.(ReportAnswer).Report.EJob; got != rep.EJob {
		t.Errorf("cached E[job] %v != solved %v", got, rep.EJob)
	}
}

// TestAnswerCacheLRUBound: the cache must hold at most its capacity and
// evict least-recently-used entries first. Pinned to the single-shard layout,
// where the LRU order is global and deterministic.
func TestAnswerCacheLRUBound(t *testing.T) {
	c := NewAnswerCacheShards(2, 1)
	key := func(i int) answerKey {
		return answerKey{backend: "fake", key: cacheKey{kind: KindThreshold, extra: fmt.Sprint(i)}}
	}
	c.store(key(1), ThresholdAnswer{MinRatio: 1}, nil)
	c.store(key(2), ThresholdAnswer{MinRatio: 2}, nil)
	if _, ok := c.lookup(key(1)); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("entry 1 should be resident")
	}
	c.store(key(3), ThresholdAnswer{MinRatio: 3}, nil) // evicts 2
	if _, ok := c.lookup(key(2)); ok {
		t.Error("entry 2 should have been evicted")
	}
	for _, i := range []int{1, 3} {
		if _, ok := c.lookup(key(i)); !ok {
			t.Errorf("entry %d should be resident", i)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Errorf("stats %+v, want 2 entries / capacity 2 / 1 eviction", st)
	}
}

// TestAnswerCacheShardedBound: under a sharded layout, total residency
// never exceeds the configured capacity no matter how keys hash, and the
// capacity reported by Stats is exactly the configured bound. The shard
// count is pinned (the default adapts to GOMAXPROCS and may be 1 on a
// single-CPU host).
func TestAnswerCacheShardedBound(t *testing.T) {
	const capacity = 64
	c := NewAnswerCacheShards(capacity, 8)
	if st := c.Stats(); st.Capacity != capacity {
		t.Fatalf("sharded capacity sums to %d, want %d", st.Capacity, capacity)
	}
	if st := c.Stats(); st.Shards != 8 {
		t.Fatalf("want 8 shards, got %d", st.Shards)
	}
	for i := 0; i < 10*capacity; i++ {
		key := answerKey{backend: "fake", key: cacheKey{kind: KindThreshold, extra: fmt.Sprint(i)}}
		c.store(key, ThresholdAnswer{MinRatio: i}, nil)
	}
	st := c.Stats()
	if st.Entries > capacity {
		t.Errorf("%d entries resident, capacity %d", st.Entries, capacity)
	}
	if st.Evictions == 0 {
		t.Error("overflow insertions must evict")
	}
}

// TestAnswerCacheShardCapacityInvariant: every shard must hold at least one
// entry of capacity no matter how the requested shard count rounds — a
// zero-capacity shard would evict each entry the instant it is stored,
// silently disabling caching for its slice of the key space.
func TestAnswerCacheShardCapacityInvariant(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{5, 5}, {1, 16}, {2, 3}, {7, 8}, {16, 16}, {4096, 0}, {3, 0},
	} {
		c := NewAnswerCacheShards(tc.capacity, tc.shards)
		st := c.Stats()
		if st.Capacity != tc.capacity {
			t.Errorf("cap %d shards %d: capacities sum to %d", tc.capacity, tc.shards, st.Capacity)
		}
		for i, s := range c.shards {
			if s.capacity < 1 {
				t.Errorf("cap %d shards %d: shard %d/%d has capacity %d",
					tc.capacity, tc.shards, i, st.Shards, s.capacity)
			}
		}
		// And a store on any key must stay resident until capacity pressure.
		key := answerKey{backend: "fake", key: cacheKey{kind: KindThreshold, extra: "probe"}}
		c.store(key, ThresholdAnswer{MinRatio: 1}, nil)
		if _, ok := c.lookup(key); !ok {
			t.Errorf("cap %d shards %d: freshly stored entry not resident", tc.capacity, tc.shards)
		}
	}
}

// TestAnswerCacheShardedSingleFlight: the per-shard in-flight tables must
// still guarantee exactly one execution per distinct key with many keys in
// flight at once across shards.
func TestAnswerCacheShardedSingleFlight(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake"}
	cs := NewCachedSolver(inner, NewAnswerCacheShards(256, 16))

	const keys = 32
	const callersPerKey = 4
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: uint64(k + 1)}
		for i := 0; i < callersPerKey; i++ {
			wg.Add(1)
			go func(q ThresholdQuery) {
				defer wg.Done()
				if _, _, err := cs.AnswerCached(ctx, q); err != nil {
					t.Error(err)
				}
			}(q)
		}
	}
	wg.Wait()
	if got := inner.calls.Load(); got != keys {
		t.Errorf("inner executed %d times for %d distinct keys, want exactly one each", got, keys)
	}
	st := cs.Cache().Stats()
	if st.Misses != keys || st.Hits+st.Coalesced != keys*(callersPerKey-1) {
		t.Errorf("stats %+v, want %d misses and %d hits+coalesced", st, keys, keys*(callersPerKey-1))
	}
}

// TestCachedSolverFreshElapsedOnHit: a cache hit must not echo the original
// solve's Elapsed in the answer body — a microsecond lookup claiming a long
// solve's duration misreports the service's latency.
func TestCachedSolverFreshElapsedOnHit(t *testing.T) {
	ctx := context.Background()
	cs := NewCachedSolver(Analytic{}, nil)
	q := ReportQuery{Scenario: Scenario{J: 1000, W: 10, O: 10, Util: 0.1}}

	a, cached, err := cs.AnswerCached(ctx, q)
	if err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if a.(ReportAnswer).Report.Elapsed <= 0 {
		t.Fatal("fresh solve should stamp a positive Elapsed")
	}
	a, cached, err = cs.AnswerCached(ctx, q)
	if err != nil || !cached {
		t.Fatalf("second solve: cached=%v err=%v", cached, err)
	}
	if got := a.(ReportAnswer).Report.Elapsed; got != 0 {
		t.Errorf("cache hit echoes the original solve's Elapsed %v, want 0", got)
	}
}

// TestCachedSolverDomainErrorAfterLeaderCancelIsShared: when the leader's
// context has ended but the execution failed with a *deterministic* domain
// error, waiters must inherit that error instead of re-executing a
// guaranteed failure in a loop (the retry path is only for failures that ARE
// the leader's context error).
func TestCachedSolverDomainErrorAfterLeaderCancelIsShared(t *testing.T) {
	domainErr := errors.New("non-integral task demand")
	inner := &countingSolver{name: "fake", release: make(chan struct{}), ignoreCtx: true, err: domainErr}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 21}

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := cs.AnswerCached(leaderCtx, q)
		leaderDone <- err
	}()
	for cs.Cache().Stats().Misses == 0 {
		runtime.Gosched()
	}
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := cs.AnswerCached(context.Background(), q)
		waiterDone <- err
	}()
	for cs.Cache().Stats().Coalesced == 0 {
		runtime.Gosched()
	}

	// The leader's client hangs up, but the solver fails with the domain
	// error — not the context error (ignoreCtx makes it wait out the release
	// and return inner.err regardless of the cancellation).
	leaderCancel()
	close(inner.release)
	if err := <-leaderDone; !errors.Is(err, domainErr) {
		t.Fatalf("leader: want the domain error, got %v", err)
	}
	if err := <-waiterDone; !errors.Is(err, domainErr) {
		t.Fatalf("waiter must inherit the deterministic failure, got %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner executed %d times; a deterministic failure must not be retried", got)
	}
}

// TestCachedSolverLeaderCancellationDoesNotPoisonWaiters: when the flight
// leader's own context is cancelled mid-solve, a healthy coalesced waiter
// must not inherit that cancellation — it re-enters, leads a fresh
// execution, and gets the answer.
func TestCachedSolverLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	inner := &countingSolver{name: "fake", release: make(chan struct{})}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 13}

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := cs.AnswerCached(leaderCtx, q)
		leaderDone <- err
	}()
	for cs.Cache().Stats().Misses == 0 {
		runtime.Gosched()
	}
	waiterDone := make(chan error, 1)
	var waiterAns Answer
	go func() {
		a, _, err := cs.AnswerCached(context.Background(), q)
		waiterAns = a
		waiterDone <- err
	}()
	for cs.Cache().Stats().Coalesced == 0 {
		runtime.Gosched()
	}

	// The leader's client hangs up mid-solve; its execution fails with its
	// context error.
	leaderCancel()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: want context.Canceled, got %v", err)
	}
	// The waiter re-enters and leads a fresh execution; release it.
	for cs.Cache().Stats().Misses < 2 {
		runtime.Gosched()
	}
	close(inner.release)
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter must not inherit the leader's cancellation: %v", err)
	}
	if waiterAns == nil || waiterAns.(ThresholdAnswer).MinRatio != 7 {
		t.Errorf("waiter answer %+v", waiterAns)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("inner executed %d times (cancelled leader + re-elected waiter), want 2", got)
	}
}

// TestAnswerCacheContextWhileCoalesced: a waiter whose context expires
// while coalesced returns the context error without disturbing the
// in-flight execution.
func TestAnswerCacheContextWhileCoalesced(t *testing.T) {
	inner := &countingSolver{name: "fake", release: make(chan struct{})}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 11}

	leadDone := make(chan error, 1)
	go func() {
		_, _, err := cs.AnswerCached(context.Background(), q)
		leadDone <- err
	}()
	for cs.Cache().Stats().Misses == 0 {
		runtime.Gosched()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := cs.AnswerCached(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired waiter: want context.DeadlineExceeded, got %v", err)
	}
	close(inner.release)
	if err := <-leadDone; err != nil {
		t.Errorf("leader should complete: %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner executed %d times, want 1", got)
	}
}
