// Package solve is the unified entry point to the feasibility study: a
// declarative, JSON-serializable Scenario describes the question ("this job,
// this cluster, these owners — is stealing the idle cycles worth it?"), a
// Solver answers it with one of the repository's three methods (exact
// analysis, discrete-time simulation, discrete-event simulation), and the
// Sweep engine fans a grid of scenarios across a context-cancellable worker
// pool.
//
// The three backends adapt the existing layers:
//
//   - "analytic" wraps core.Analyze/Assess — the paper's equations (1)-(8).
//   - "exact" wraps sim.Exact under the batch-means Protocol — the paper's
//     CSIM validation study.
//   - "des" wraps sim.General — the engine that drops the model's
//     simplifying assumptions (wall-clock owner think times, arbitrary
//     distributions, heterogeneous stations).
//
// All three answer the same Scenario, so callers can cross-validate methods
// or trade precision for speed without restating the workload.
package solve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"feasim/internal/core"
	"feasim/internal/rng"
	"feasim/internal/sim"
)

// StationSpec declares one (or Count identical) workstation owner workloads,
// in one of two forms:
//
//   - distribution form: OwnerThink/OwnerDemand rng.Parse spec strings
//     (e.g. "exp:90" or "hyper:0.1,55,5"), understood only by the DES
//     backend — the discrete model has no notion of per-station
//     distributions;
//   - model form: per-station availability (P or Util) and Speed inside the
//     paper's model, making the scenario *heterogeneous* — answered
//     analytically through the Poisson-binomial fleet kernel and
//     cross-checked by DES.
//
// A fleet must use one form throughout; mixing is rejected.
type StationSpec struct {
	// OwnerThink is the wall-clock think time between owner bursts
	// (distribution form).
	OwnerThink string `json:"owner_think,omitempty"`
	// OwnerDemand is the owner burst service demand (distribution form).
	OwnerDemand string `json:"owner_demand,omitempty"`

	// P is this station's owner request probability per unit of task
	// progress (model form). Exactly one of P and Util may be set.
	P float64 `json:"p,omitempty"`
	// Util is this station's owner utilization in [0,1); P is derived via
	// equation (8) from the scenario's aggregate O (model form).
	Util float64 `json:"util,omitempty"`
	// Speed scales task execution on this station: effective per-task
	// demand is (J/W)/Speed. Zero means the reference rate 1 (model form).
	Speed float64 `json:"speed,omitempty"`

	// Count repeats this spec; 0 means 1.
	Count int `json:"count,omitempty"`
}

// modelForm reports whether the spec uses per-station model parameters.
func (ss StationSpec) modelForm() bool { return ss.P != 0 || ss.Util != 0 || ss.Speed != 0 }

// distForm reports whether the spec uses distribution strings.
func (ss StationSpec) distForm() bool { return ss.OwnerThink != "" || ss.OwnerDemand != "" }

// resolveP returns the station's request probability, deriving it from a
// per-station utilization via equation (8) when needed.
func (ss StationSpec) resolveP(o float64) (float64, error) {
	if ss.Util != 0 {
		if ss.Util < 0 || ss.Util >= 1 {
			return 0, fmt.Errorf("solve: station util must be in [0,1), got %v", ss.Util)
		}
		if !(o > 0) {
			return 0, fmt.Errorf("solve: station util needs aggregate owner demand o > 0")
		}
		return ss.Util / (o * (1 - ss.Util)), nil
	}
	if ss.P < 0 || ss.P >= 1 {
		return 0, fmt.Errorf("solve: station p must be in [0,1), got %v", ss.P)
	}
	return ss.P, nil
}

func (ss StationSpec) count() int {
	if ss.Count < 1 {
		return 1
	}
	return ss.Count
}

// configs expands the spec into per-station simulator configurations.
func (ss StationSpec) configs() ([]sim.StationConfig, error) {
	think, err := rng.Parse(ss.OwnerThink)
	if err != nil {
		return nil, fmt.Errorf("solve: station owner_think: %w", err)
	}
	demand, err := rng.Parse(ss.OwnerDemand)
	if err != nil {
		return nil, fmt.Errorf("solve: station owner_demand: %w", err)
	}
	cfgs := make([]sim.StationConfig, ss.count())
	for i := range cfgs {
		cfgs[i] = sim.StationConfig{OwnerThink: think, OwnerDemand: demand}
	}
	return cfgs, nil
}

// Scenario is the declarative input shared by every Solver. It describes the
// workload either in the paper's aggregate terms — total job demand J on W
// workstations with owner bursts O at utilization Util (or request
// probability P) — or, for the DES backend, as explicit per-station
// distributions. The zero value is invalid; every field is JSON-stable so
// scenarios round-trip through files untouched.
type Scenario struct {
	// Name labels the scenario in reports and sweep output.
	Name string `json:"name,omitempty"`

	// J is the total job demand in time units (the paper's J).
	J float64 `json:"j,omitempty"`
	// W is the number of workstations (= number of tasks).
	W int `json:"w,omitempty"`
	// O is the mean owner burst demand in time units.
	O float64 `json:"o,omitempty"`
	// Util is the owner utilization in [0,1); P is derived via equation (8).
	// Exactly one of Util and P should be set (both zero means dedicated).
	Util float64 `json:"util,omitempty"`
	// P is the owner request probability per unit of task progress.
	P float64 `json:"p,omitempty"`

	// OwnerCV2 is the squared coefficient of variation of the owner burst
	// demand. Zero or 1 keeps the paper's deterministic bursts; above 1 the
	// DES backend draws bursts from a balanced hyperexponential with mean O.
	// The analytic and exact backends see only the mean, so they are
	// unaffected — which is exactly what a variance ablation measures.
	OwnerCV2 float64 `json:"owner_cv2,omitempty"`

	// Schedule, when non-empty, replaces the stationary owner description
	// with a repeating owner-utilization timeline (a workday: phases of
	// Duration at Util, the cluster.Schedule shape in aggregate terms).
	// Phased scenarios are answerable only by timeline queries; Util and P
	// must stay zero — the phases define the owner activity.
	Schedule []PhaseSpec `json:"schedule,omitempty"`
	// Trace is a recorded, non-repeating availability timeline; after the
	// last phase its final utilization holds. Mutually exclusive with
	// Schedule.
	Trace []PhaseSpec `json:"trace,omitempty"`

	// Stations, when non-empty, replaces the aggregate owner description
	// with explicit per-station distributions (DES backend only).
	Stations []StationSpec `json:"stations,omitempty"`
	// TaskDemand optionally overrides the per-task demand distribution as an
	// rng.Parse spec; empty means the paper's Deterministic{J/W}.
	TaskDemand string `json:"task_demand,omitempty"`

	// Deadline, when positive, asks for P(job completes within Deadline).
	Deadline float64 `json:"deadline,omitempty"`
	// TargetEff, when positive, asks for a feasibility verdict against this
	// weighted-efficiency target (the paper's bar is 0.8).
	TargetEff float64 `json:"target_eff,omitempty"`

	// Seed drives all stochastic backends. The sweep engine overrides it
	// per grid point by splitting a root rng.Stream.
	Seed uint64 `json:"seed,omitempty"`
}

// PhaseSpec is one phase of a scenario's owner-utilization timeline: the
// owners run at Util for Duration time units.
type PhaseSpec struct {
	// Name labels the phase in answers ("day", "night", ...).
	Name string `json:"name,omitempty"`
	// Duration is the phase length in time units; must be positive.
	Duration float64 `json:"duration"`
	// Util is the owner utilization during the phase, in [0,1).
	Util float64 `json:"util"`
}

// Explicit reports whether the scenario uses explicit per-station
// distributions instead of the aggregate J/W/O/util description.
// Heterogeneous (model-form) fleets are not explicit: they stay inside the
// discrete model, generalized per station.
func (s Scenario) Explicit() bool { return len(s.Stations) > 0 && !s.Heterogeneous() }

// Heterogeneous reports whether the scenario is a model-form fleet: any
// station carrying per-station p/util/speed. Mixed-form fleets claim
// heterogeneity here and are rejected by Validate.
func (s Scenario) Heterogeneous() bool {
	for _, ss := range s.Stations {
		if ss.modelForm() {
			return true
		}
	}
	return false
}

// Phased reports whether the scenario carries a non-stationary owner
// timeline (schedule or trace).
func (s Scenario) Phased() bool { return len(s.Schedule) > 0 || len(s.Trace) > 0 }

// phases returns the timeline phases and whether they repeat.
func (s Scenario) phases() ([]PhaseSpec, bool) {
	if len(s.Schedule) > 0 {
		return s.Schedule, true
	}
	return s.Trace, false
}

// validatePhased checks the timeline form: the phases define the owner
// activity over time, so every stationary owner description (util/p,
// explicit stations) and non-aggregate workload form is rejected loudly.
func (s Scenario) validatePhased() error {
	switch {
	case len(s.Schedule) > 0 && len(s.Trace) > 0:
		return fmt.Errorf("solve: scenario %q sets both schedule and trace; pick one timeline form", s.Name)
	case len(s.Stations) > 0:
		return fmt.Errorf("solve: phased scenario %q also declares per-station workloads; the schedule defines the owner workload", s.Name)
	case s.Util != 0 || s.P != 0:
		return fmt.Errorf("solve: phased scenario %q also sets util/p; the phases define the owner activity", s.Name)
	case s.TaskDemand != "":
		return fmt.Errorf("solve: phased scenario %q needs the aggregate j/w form; task_demand is not supported", s.Name)
	case s.OwnerCV2 != 0:
		return fmt.Errorf("solve: phased scenario %q sets owner_cv2; phased owners use the paper's deterministic bursts", s.Name)
	case s.Deadline != 0:
		return fmt.Errorf("solve: phased scenario %q sets deadline; timeline answers report expected completion only", s.Name)
	case !(s.J > 0):
		return fmt.Errorf("solve: phased scenario needs job demand j > 0, got %v", s.J)
	case s.W < 1:
		return fmt.Errorf("solve: phased scenario needs w >= 1, got %d", s.W)
	case !(s.O > 0):
		return fmt.Errorf("solve: owner burst demand o must be positive, got %v", s.O)
	}
	phases, _ := s.phases()
	for i, ph := range phases {
		if !(ph.Duration > 0) {
			return fmt.Errorf("solve: scenario %q phase %d (%s): duration must be positive, got %v", s.Name, i, ph.Name, ph.Duration)
		}
		if ph.Util < 0 || ph.Util >= 1 {
			return fmt.Errorf("solve: scenario %q phase %d (%s): util must be in [0,1), got %v", s.Name, i, ph.Name, ph.Util)
		}
	}
	return nil
}

// validateHeterogeneous checks the model-form fleet: per-station p/util/
// speed generalize the aggregate owner description, so the fleet still
// needs the aggregate J and O — those are shared — while the aggregate
// availability fields (util/p) must stay zero, and every station must use
// the model form consistently.
func (s Scenario) validateHeterogeneous() error {
	switch {
	case s.Util != 0 || s.P != 0:
		return fmt.Errorf("solve: heterogeneous scenario %q also sets aggregate util/p; the stations define availability", s.Name)
	case s.TaskDemand != "":
		return fmt.Errorf("solve: heterogeneous scenario %q sets task_demand; the model form uses the deterministic J/W task demand", s.Name)
	case !(s.O > 0):
		return fmt.Errorf("solve: heterogeneous scenario %q needs aggregate owner demand o > 0", s.Name)
	case !(s.J > 0):
		return fmt.Errorf("solve: heterogeneous scenario %q needs job demand j > 0", s.Name)
	}
	total := 0
	for i, ss := range s.Stations {
		switch {
		case ss.distForm():
			return fmt.Errorf("solve: station %d mixes distribution specs with per-station p/util/speed; a fleet must use one form", i)
		case ss.P != 0 && ss.Util != 0:
			return fmt.Errorf("solve: station %d sets both p and util; pick one", i)
		case ss.Count < 0:
			return fmt.Errorf("solve: station %d count must be >= 0, got %d", i, ss.Count)
		}
		if _, err := ss.resolveP(s.O); err != nil {
			return fmt.Errorf("solve: station %d: %w", i, err)
		}
		if ss.Speed < 0 || math.IsNaN(ss.Speed) || math.IsInf(ss.Speed, 0) {
			return fmt.Errorf("solve: station %d speed must be >= 0 and finite, got %v", i, ss.Speed)
		}
		total += ss.count()
	}
	if s.W != 0 && s.W != total {
		return fmt.Errorf("solve: w=%d disagrees with %d per-station workstations", s.W, total)
	}
	// The fleet kernel enforces the remaining model-range rules (effective
	// per-station demand >= 1, etc.).
	f, err := s.Fleet()
	if err != nil {
		return err
	}
	return f.Validate()
}

// Fleet lowers a heterogeneous scenario onto the core fleet kernel.
func (s Scenario) Fleet() (core.Fleet, error) {
	if !s.Heterogeneous() {
		return core.Fleet{}, fmt.Errorf("solve: scenario %q is not a heterogeneous fleet", s.Name)
	}
	f := core.Fleet{J: s.J, O: s.O}
	for i, ss := range s.Stations {
		p, err := ss.resolveP(s.O)
		if err != nil {
			return core.Fleet{}, fmt.Errorf("solve: station %d: %w", i, err)
		}
		f.Stations = append(f.Stations, core.FleetStation{P: p, Speed: ss.Speed, Count: ss.count()})
	}
	return f, nil
}

// fleetSignature renders the canonical station multiset compactly — the
// heterogeneity identity that rides in dedupKey.extra, so the answer
// cache, sweep dedup and RouteHash all fold it in without new plumbing.
// Stations that resolve to the same (p, speed) multiset share a signature
// regardless of declaration order, split groups, or the p-vs-util spelling.
func fleetSignature(f core.Fleet) string {
	var b strings.Builder
	b.WriteString("fleet:")
	for _, g := range f.Canonical() {
		b.WriteString(strconv.FormatUint(math.Float64bits(g.P), 16))
		b.WriteByte('~')
		b.WriteString(strconv.FormatUint(math.Float64bits(g.Speed), 16))
		b.WriteByte('~')
		b.WriteString(strconv.Itoa(g.Count))
		b.WriteByte(';')
	}
	return b.String()
}

// stationTemplateSignature is fleetSignature for a raw station template
// (threshold/partition/scaled queries), where the fleet size varies with
// the search: identity is the normalized template itself.
func stationTemplateSignature(specs []StationSpec, o float64) (string, error) {
	if len(specs) == 0 {
		return "", nil
	}
	var b strings.Builder
	b.WriteString("tpl:")
	for i, ss := range specs {
		p, err := ss.resolveP(o)
		if err != nil {
			return "", fmt.Errorf("solve: station %d: %w", i, err)
		}
		speed := ss.Speed
		if speed == 0 {
			speed = 1
		}
		b.WriteString(strconv.FormatUint(math.Float64bits(p), 16))
		b.WriteByte('~')
		b.WriteString(strconv.FormatUint(math.Float64bits(speed), 16))
		b.WriteByte('~')
		b.WriteString(strconv.Itoa(ss.count()))
		b.WriteByte(';')
	}
	return b.String(), nil
}

// validateStationTemplate checks a threshold/partition/scaled station
// template: every spec must use the model form exclusively, with resolvable
// availability and a sane speed. An empty template is valid (homogeneous
// search).
func validateStationTemplate(specs []StationSpec, o float64) error {
	for i, ss := range specs {
		switch {
		case ss.distForm():
			return fmt.Errorf("solve: template station %d uses distribution specs; station templates need the model form (p/util/speed)", i)
		case !ss.modelForm():
			return fmt.Errorf("solve: template station %d is empty; station templates need per-station p, util or speed", i)
		case ss.P != 0 && ss.Util != 0:
			return fmt.Errorf("solve: template station %d sets both p and util; pick one", i)
		case ss.Count < 0:
			return fmt.Errorf("solve: template station %d count must be >= 0, got %d", i, ss.Count)
		case ss.Speed < 0 || math.IsNaN(ss.Speed) || math.IsInf(ss.Speed, 0):
			return fmt.Errorf("solve: template station %d speed must be >= 0 and finite, got %v", i, ss.Speed)
		}
		if _, err := ss.resolveP(o); err != nil {
			return fmt.Errorf("solve: template station %d: %w", i, err)
		}
	}
	return nil
}

// fleetTemplate lowers a station template onto the core fleet kernel's
// station groups.
func fleetTemplate(specs []StationSpec, o float64) ([]core.FleetStation, error) {
	if err := validateStationTemplate(specs, o); err != nil {
		return nil, err
	}
	out := make([]core.FleetStation, 0, len(specs))
	for _, ss := range specs {
		p, _ := ss.resolveP(o)
		out = append(out, core.FleetStation{P: p, Speed: ss.Speed, Count: ss.count()})
	}
	return out, nil
}

// stationSpecs lifts core fleet station groups back into scenario specs —
// the inverse of fleetTemplate, used to restate a tiled fleet as a
// heterogeneous Scenario.
func stationSpecs(stations []core.FleetStation) []StationSpec {
	out := make([]StationSpec, 0, len(stations))
	for _, s := range stations {
		out = append(out, StationSpec{P: s.P, Speed: s.Speed, Count: s.Count})
	}
	return out
}

// Validate checks the scenario for internal consistency.
func (s Scenario) Validate() error {
	if s.Phased() {
		if err := s.validatePhased(); err != nil {
			return err
		}
	} else if s.Heterogeneous() {
		if err := s.validateHeterogeneous(); err != nil {
			return err
		}
	} else if s.Explicit() {
		// The stations define the owner workload; a scenario that also sets
		// the aggregate owner fields is contradictory — the values would be
		// silently ignored, which hides user intent. Reject it loudly.
		if s.O != 0 || s.Util != 0 || s.P != 0 || s.OwnerCV2 != 0 {
			return fmt.Errorf("solve: explicit-station scenario %q also sets aggregate owner fields (o/util/p/owner_cv2); remove them — the stations define the owner workload", s.Name)
		}
		total := 0
		for i, ss := range s.Stations {
			if ss.OwnerThink == "" || ss.OwnerDemand == "" {
				return fmt.Errorf("solve: station %d needs owner_think and owner_demand specs", i)
			}
			if _, err := ss.configs(); err != nil {
				return err
			}
			total += ss.count()
		}
		if s.W != 0 && s.W != total {
			return fmt.Errorf("solve: w=%d disagrees with %d explicit stations", s.W, total)
		}
		if s.TaskDemand == "" && !(s.J > 0) {
			return fmt.Errorf("solve: explicit scenario needs task_demand or j")
		}
	} else {
		if _, err := s.Params(); err != nil {
			return err
		}
		if !(s.O > 0) {
			return fmt.Errorf("solve: owner burst demand o must be positive, got %v", s.O)
		}
	}
	if s.Util != 0 && s.P != 0 {
		return fmt.Errorf("solve: set util or p, not both")
	}
	if s.OwnerCV2 < 0 {
		return fmt.Errorf("solve: owner_cv2 must be >= 0, got %v", s.OwnerCV2)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("solve: deadline must be >= 0, got %v", s.Deadline)
	}
	if s.TargetEff < 0 || s.TargetEff > 1 {
		return fmt.Errorf("solve: target_eff must be in [0,1], got %v", s.TargetEff)
	}
	if s.TaskDemand != "" {
		if _, err := rng.Parse(s.TaskDemand); err != nil {
			return err
		}
	}
	return nil
}

// Params reduces an aggregate scenario to the discrete model's parameters.
// Explicit-station scenarios are not reducible and return an error.
func (s Scenario) Params() (core.Params, error) {
	if s.Phased() {
		return core.Params{}, fmt.Errorf("solve: scenario %q has a non-stationary owner timeline; only timeline queries answer phased scenarios", s.Name)
	}
	if s.Heterogeneous() {
		return core.Params{}, fmt.Errorf("solve: scenario %q is a heterogeneous fleet; the homogeneous model does not reduce it — use Fleet()", s.Name)
	}
	if s.Explicit() {
		return core.Params{}, fmt.Errorf("solve: scenario %q uses explicit stations; the discrete model needs the aggregate J/W/O/util form", s.Name)
	}
	if s.P > 0 {
		p := core.NewParams(s.J, s.W, s.O, s.P)
		return p, p.Validate()
	}
	return core.ParamsFromUtilization(s.J, s.W, s.O, s.Util)
}

// StationCount returns the number of workstations, for either description
// form.
func (s Scenario) StationCount() int {
	if len(s.Stations) == 0 {
		return s.W
	}
	total := 0
	for _, ss := range s.Stations {
		total += ss.count()
	}
	return total
}

// GeneralConfig lowers the scenario onto the DES simulator.
func (s Scenario) GeneralConfig() (sim.GeneralConfig, error) {
	if err := s.Validate(); err != nil {
		return sim.GeneralConfig{}, err
	}
	var cfg sim.GeneralConfig
	cfg.Seed = s.Seed
	if s.Heterogeneous() {
		// Model-form fleet: each station's owner is the paper's workload
		// at its own request probability — geometric think, mean-O bursts
		// (hyperexponential under an OwnerCV2 ablation) — and its speed
		// scales task execution in the engine.
		demand := rng.Dist(rng.Deterministic{V: s.O})
		if s.OwnerCV2 > 1 {
			demand = rng.BalancedHyperExp(s.O, s.OwnerCV2)
		}
		for i, ss := range s.Stations {
			p, err := ss.resolveP(s.O)
			if err != nil {
				return sim.GeneralConfig{}, fmt.Errorf("solve: station %d: %w", i, err)
			}
			st := sim.StationConfig{OwnerThink: rng.Geometric{P: p}, OwnerDemand: demand, Speed: ss.Speed}
			for k := 0; k < ss.count(); k++ {
				cfg.Stations = append(cfg.Stations, st)
			}
		}
	} else if s.Explicit() {
		for _, ss := range s.Stations {
			sts, err := ss.configs()
			if err != nil {
				return sim.GeneralConfig{}, err
			}
			cfg.Stations = append(cfg.Stations, sts...)
		}
	} else {
		p, err := s.Params()
		if err != nil {
			return sim.GeneralConfig{}, err
		}
		demand := rng.Dist(rng.Deterministic{V: s.O})
		if s.OwnerCV2 > 1 {
			demand = rng.BalancedHyperExp(s.O, s.OwnerCV2)
		}
		st := sim.StationConfig{OwnerThink: rng.Geometric{P: p.P}, OwnerDemand: demand}
		for i := 0; i < s.W; i++ {
			cfg.Stations = append(cfg.Stations, st)
		}
	}
	switch {
	case s.TaskDemand != "":
		d, err := rng.Parse(s.TaskDemand)
		if err != nil {
			return sim.GeneralConfig{}, err
		}
		cfg.TaskDemand = d
	case s.J > 0:
		cfg.TaskDemand = rng.Deterministic{V: s.J / float64(s.StationCount())}
	default:
		return sim.GeneralConfig{}, fmt.Errorf("solve: scenario %q has no task demand", s.Name)
	}
	return cfg, nil
}

// TotalDemand is the job demand J: the aggregate field when present,
// otherwise stations × mean task demand.
func (s Scenario) TotalDemand() (float64, error) {
	if s.J > 0 {
		return s.J, nil
	}
	if s.TaskDemand == "" {
		return 0, fmt.Errorf("solve: scenario %q has neither j nor task_demand", s.Name)
	}
	d, err := rng.Parse(s.TaskDemand)
	if err != nil {
		return 0, err
	}
	return d.Mean() * float64(s.StationCount()), nil
}

// Utilization is the owner utilization the weighted metrics divide by:
// the configured aggregate value, or the mean across explicit stations.
func (s Scenario) Utilization() (float64, error) {
	if s.Heterogeneous() {
		f, err := s.Fleet()
		if err != nil {
			return 0, err
		}
		return f.Utilization(), nil
	}
	if !s.Explicit() {
		p, err := s.Params()
		if err != nil {
			return 0, err
		}
		return p.Utilization(), nil
	}
	cfg, err := s.GeneralConfig()
	if err != nil {
		return 0, err
	}
	return cfg.MeanUtilization(), nil
}

// WithSeed returns a copy of the scenario with the given seed.
func (s Scenario) WithSeed(seed uint64) Scenario {
	s.Seed = seed
	return s
}

// analyticKey is the deduplication key for the sweep engine's analytic
// cache: everything the analytic backend's answer depends on, as a plain
// comparable struct so dense grids pay no per-point formatting or
// allocation. Seed, Name and OwnerCV2 are deliberately excluded — the exact
// analysis sees only the mean owner demand, so grid points differing only in
// those fields share one solve.
type analyticKey struct {
	j        float64
	w        int
	o        float64
	p        float64
	deadline float64
	target   float64
}

// analyticCacheKey builds the dedup key; ok is false when the scenario is
// outside the discrete model (explicit stations, custom task demand). For
// heterogeneous fleets the extra string carries the canonical fleet
// signature — the PR 8 schedule pattern — so the answer cache, sweep dedup
// and RouteHash distinguish fleets with zero new plumbing while analytic
// siblings (split groups, p-vs-util spellings) still share one solve.
func (s Scenario) analyticCacheKey() (analyticKey, string, bool) {
	if s.Heterogeneous() {
		f, err := s.Fleet()
		if err != nil {
			return analyticKey{}, "", false
		}
		k := analyticKey{j: f.J, w: f.W(), o: f.O, deadline: s.Deadline, target: s.TargetEff}
		return k, fleetSignature(f), true
	}
	p, err := s.Params()
	if err != nil {
		return analyticKey{}, "", false
	}
	if s.TaskDemand != "" {
		return analyticKey{}, "", false // not the discrete model's workload
	}
	return analyticKey{j: p.J, w: p.W, o: p.O, p: p.P, deadline: s.Deadline, target: s.TargetEff}, "", true
}

// ParseScenario decodes a scenario from JSON, rejecting unknown fields so
// typos in hand-written files fail loudly.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := unmarshalStrict(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("solve: bad scenario: %w", err)
	}
	return s, s.Validate()
}

// LoadScenario reads and decodes a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return ParseScenario(data)
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
