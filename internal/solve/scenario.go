// Package solve is the unified entry point to the feasibility study: a
// declarative, JSON-serializable Scenario describes the question ("this job,
// this cluster, these owners — is stealing the idle cycles worth it?"), a
// Solver answers it with one of the repository's three methods (exact
// analysis, discrete-time simulation, discrete-event simulation), and the
// Sweep engine fans a grid of scenarios across a context-cancellable worker
// pool.
//
// The three backends adapt the existing layers:
//
//   - "analytic" wraps core.Analyze/Assess — the paper's equations (1)-(8).
//   - "exact" wraps sim.Exact under the batch-means Protocol — the paper's
//     CSIM validation study.
//   - "des" wraps sim.General — the engine that drops the model's
//     simplifying assumptions (wall-clock owner think times, arbitrary
//     distributions, heterogeneous stations).
//
// All three answer the same Scenario, so callers can cross-validate methods
// or trade precision for speed without restating the workload.
package solve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"feasim/internal/core"
	"feasim/internal/rng"
	"feasim/internal/sim"
)

// StationSpec declares one (or Count identical) workstation owner workloads
// by distribution spec strings (the rng.Parse syntax, e.g. "exp:90" or
// "hyper:0.1,55,5"). Explicit stations are understood only by the DES
// backend; the discrete model has no notion of per-station distributions.
type StationSpec struct {
	// OwnerThink is the wall-clock think time between owner bursts.
	OwnerThink string `json:"owner_think"`
	// OwnerDemand is the owner burst service demand.
	OwnerDemand string `json:"owner_demand"`
	// Count repeats this spec; 0 means 1.
	Count int `json:"count,omitempty"`
}

func (ss StationSpec) count() int {
	if ss.Count < 1 {
		return 1
	}
	return ss.Count
}

// configs expands the spec into per-station simulator configurations.
func (ss StationSpec) configs() ([]sim.StationConfig, error) {
	think, err := rng.Parse(ss.OwnerThink)
	if err != nil {
		return nil, fmt.Errorf("solve: station owner_think: %w", err)
	}
	demand, err := rng.Parse(ss.OwnerDemand)
	if err != nil {
		return nil, fmt.Errorf("solve: station owner_demand: %w", err)
	}
	cfgs := make([]sim.StationConfig, ss.count())
	for i := range cfgs {
		cfgs[i] = sim.StationConfig{OwnerThink: think, OwnerDemand: demand}
	}
	return cfgs, nil
}

// Scenario is the declarative input shared by every Solver. It describes the
// workload either in the paper's aggregate terms — total job demand J on W
// workstations with owner bursts O at utilization Util (or request
// probability P) — or, for the DES backend, as explicit per-station
// distributions. The zero value is invalid; every field is JSON-stable so
// scenarios round-trip through files untouched.
type Scenario struct {
	// Name labels the scenario in reports and sweep output.
	Name string `json:"name,omitempty"`

	// J is the total job demand in time units (the paper's J).
	J float64 `json:"j,omitempty"`
	// W is the number of workstations (= number of tasks).
	W int `json:"w,omitempty"`
	// O is the mean owner burst demand in time units.
	O float64 `json:"o,omitempty"`
	// Util is the owner utilization in [0,1); P is derived via equation (8).
	// Exactly one of Util and P should be set (both zero means dedicated).
	Util float64 `json:"util,omitempty"`
	// P is the owner request probability per unit of task progress.
	P float64 `json:"p,omitempty"`

	// OwnerCV2 is the squared coefficient of variation of the owner burst
	// demand. Zero or 1 keeps the paper's deterministic bursts; above 1 the
	// DES backend draws bursts from a balanced hyperexponential with mean O.
	// The analytic and exact backends see only the mean, so they are
	// unaffected — which is exactly what a variance ablation measures.
	OwnerCV2 float64 `json:"owner_cv2,omitempty"`

	// Schedule, when non-empty, replaces the stationary owner description
	// with a repeating owner-utilization timeline (a workday: phases of
	// Duration at Util, the cluster.Schedule shape in aggregate terms).
	// Phased scenarios are answerable only by timeline queries; Util and P
	// must stay zero — the phases define the owner activity.
	Schedule []PhaseSpec `json:"schedule,omitempty"`
	// Trace is a recorded, non-repeating availability timeline; after the
	// last phase its final utilization holds. Mutually exclusive with
	// Schedule.
	Trace []PhaseSpec `json:"trace,omitempty"`

	// Stations, when non-empty, replaces the aggregate owner description
	// with explicit per-station distributions (DES backend only).
	Stations []StationSpec `json:"stations,omitempty"`
	// TaskDemand optionally overrides the per-task demand distribution as an
	// rng.Parse spec; empty means the paper's Deterministic{J/W}.
	TaskDemand string `json:"task_demand,omitempty"`

	// Deadline, when positive, asks for P(job completes within Deadline).
	Deadline float64 `json:"deadline,omitempty"`
	// TargetEff, when positive, asks for a feasibility verdict against this
	// weighted-efficiency target (the paper's bar is 0.8).
	TargetEff float64 `json:"target_eff,omitempty"`

	// Seed drives all stochastic backends. The sweep engine overrides it
	// per grid point by splitting a root rng.Stream.
	Seed uint64 `json:"seed,omitempty"`
}

// PhaseSpec is one phase of a scenario's owner-utilization timeline: the
// owners run at Util for Duration time units.
type PhaseSpec struct {
	// Name labels the phase in answers ("day", "night", ...).
	Name string `json:"name,omitempty"`
	// Duration is the phase length in time units; must be positive.
	Duration float64 `json:"duration"`
	// Util is the owner utilization during the phase, in [0,1).
	Util float64 `json:"util"`
}

// Explicit reports whether the scenario uses explicit per-station
// distributions instead of the aggregate J/W/O/util description.
func (s Scenario) Explicit() bool { return len(s.Stations) > 0 }

// Phased reports whether the scenario carries a non-stationary owner
// timeline (schedule or trace).
func (s Scenario) Phased() bool { return len(s.Schedule) > 0 || len(s.Trace) > 0 }

// phases returns the timeline phases and whether they repeat.
func (s Scenario) phases() ([]PhaseSpec, bool) {
	if len(s.Schedule) > 0 {
		return s.Schedule, true
	}
	return s.Trace, false
}

// validatePhased checks the timeline form: the phases define the owner
// activity over time, so every stationary owner description (util/p,
// explicit stations) and non-aggregate workload form is rejected loudly.
func (s Scenario) validatePhased() error {
	switch {
	case len(s.Schedule) > 0 && len(s.Trace) > 0:
		return fmt.Errorf("solve: scenario %q sets both schedule and trace; pick one timeline form", s.Name)
	case s.Explicit():
		return fmt.Errorf("solve: phased scenario %q also declares explicit stations; the schedule defines the owner workload", s.Name)
	case s.Util != 0 || s.P != 0:
		return fmt.Errorf("solve: phased scenario %q also sets util/p; the phases define the owner activity", s.Name)
	case s.TaskDemand != "":
		return fmt.Errorf("solve: phased scenario %q needs the aggregate j/w form; task_demand is not supported", s.Name)
	case s.OwnerCV2 != 0:
		return fmt.Errorf("solve: phased scenario %q sets owner_cv2; phased owners use the paper's deterministic bursts", s.Name)
	case s.Deadline != 0:
		return fmt.Errorf("solve: phased scenario %q sets deadline; timeline answers report expected completion only", s.Name)
	case !(s.J > 0):
		return fmt.Errorf("solve: phased scenario needs job demand j > 0, got %v", s.J)
	case s.W < 1:
		return fmt.Errorf("solve: phased scenario needs w >= 1, got %d", s.W)
	case !(s.O > 0):
		return fmt.Errorf("solve: owner burst demand o must be positive, got %v", s.O)
	}
	phases, _ := s.phases()
	for i, ph := range phases {
		if !(ph.Duration > 0) {
			return fmt.Errorf("solve: scenario %q phase %d (%s): duration must be positive, got %v", s.Name, i, ph.Name, ph.Duration)
		}
		if ph.Util < 0 || ph.Util >= 1 {
			return fmt.Errorf("solve: scenario %q phase %d (%s): util must be in [0,1), got %v", s.Name, i, ph.Name, ph.Util)
		}
	}
	return nil
}

// Validate checks the scenario for internal consistency.
func (s Scenario) Validate() error {
	if s.Phased() {
		if err := s.validatePhased(); err != nil {
			return err
		}
	} else if s.Explicit() {
		// The stations define the owner workload; a scenario that also sets
		// the aggregate owner fields is contradictory — the values would be
		// silently ignored, which hides user intent. Reject it loudly.
		if s.O != 0 || s.Util != 0 || s.P != 0 || s.OwnerCV2 != 0 {
			return fmt.Errorf("solve: explicit-station scenario %q also sets aggregate owner fields (o/util/p/owner_cv2); remove them — the stations define the owner workload", s.Name)
		}
		total := 0
		for i, ss := range s.Stations {
			if ss.OwnerThink == "" || ss.OwnerDemand == "" {
				return fmt.Errorf("solve: station %d needs owner_think and owner_demand specs", i)
			}
			if _, err := ss.configs(); err != nil {
				return err
			}
			total += ss.count()
		}
		if s.W != 0 && s.W != total {
			return fmt.Errorf("solve: w=%d disagrees with %d explicit stations", s.W, total)
		}
		if s.TaskDemand == "" && !(s.J > 0) {
			return fmt.Errorf("solve: explicit scenario needs task_demand or j")
		}
	} else {
		if _, err := s.Params(); err != nil {
			return err
		}
		if !(s.O > 0) {
			return fmt.Errorf("solve: owner burst demand o must be positive, got %v", s.O)
		}
	}
	if s.Util != 0 && s.P != 0 {
		return fmt.Errorf("solve: set util or p, not both")
	}
	if s.OwnerCV2 < 0 {
		return fmt.Errorf("solve: owner_cv2 must be >= 0, got %v", s.OwnerCV2)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("solve: deadline must be >= 0, got %v", s.Deadline)
	}
	if s.TargetEff < 0 || s.TargetEff > 1 {
		return fmt.Errorf("solve: target_eff must be in [0,1], got %v", s.TargetEff)
	}
	if s.TaskDemand != "" {
		if _, err := rng.Parse(s.TaskDemand); err != nil {
			return err
		}
	}
	return nil
}

// Params reduces an aggregate scenario to the discrete model's parameters.
// Explicit-station scenarios are not reducible and return an error.
func (s Scenario) Params() (core.Params, error) {
	if s.Phased() {
		return core.Params{}, fmt.Errorf("solve: scenario %q has a non-stationary owner timeline; only timeline queries answer phased scenarios", s.Name)
	}
	if s.Explicit() {
		return core.Params{}, fmt.Errorf("solve: scenario %q uses explicit stations; the discrete model needs the aggregate J/W/O/util form", s.Name)
	}
	if s.P > 0 {
		p := core.NewParams(s.J, s.W, s.O, s.P)
		return p, p.Validate()
	}
	return core.ParamsFromUtilization(s.J, s.W, s.O, s.Util)
}

// StationCount returns the number of workstations, for either description
// form.
func (s Scenario) StationCount() int {
	if !s.Explicit() {
		return s.W
	}
	total := 0
	for _, ss := range s.Stations {
		total += ss.count()
	}
	return total
}

// GeneralConfig lowers the scenario onto the DES simulator.
func (s Scenario) GeneralConfig() (sim.GeneralConfig, error) {
	if err := s.Validate(); err != nil {
		return sim.GeneralConfig{}, err
	}
	var cfg sim.GeneralConfig
	cfg.Seed = s.Seed
	if s.Explicit() {
		for _, ss := range s.Stations {
			sts, err := ss.configs()
			if err != nil {
				return sim.GeneralConfig{}, err
			}
			cfg.Stations = append(cfg.Stations, sts...)
		}
	} else {
		p, err := s.Params()
		if err != nil {
			return sim.GeneralConfig{}, err
		}
		demand := rng.Dist(rng.Deterministic{V: s.O})
		if s.OwnerCV2 > 1 {
			demand = rng.BalancedHyperExp(s.O, s.OwnerCV2)
		}
		st := sim.StationConfig{OwnerThink: rng.Geometric{P: p.P}, OwnerDemand: demand}
		for i := 0; i < s.W; i++ {
			cfg.Stations = append(cfg.Stations, st)
		}
	}
	switch {
	case s.TaskDemand != "":
		d, err := rng.Parse(s.TaskDemand)
		if err != nil {
			return sim.GeneralConfig{}, err
		}
		cfg.TaskDemand = d
	case s.J > 0:
		cfg.TaskDemand = rng.Deterministic{V: s.J / float64(s.StationCount())}
	default:
		return sim.GeneralConfig{}, fmt.Errorf("solve: scenario %q has no task demand", s.Name)
	}
	return cfg, nil
}

// TotalDemand is the job demand J: the aggregate field when present,
// otherwise stations × mean task demand.
func (s Scenario) TotalDemand() (float64, error) {
	if s.J > 0 {
		return s.J, nil
	}
	if s.TaskDemand == "" {
		return 0, fmt.Errorf("solve: scenario %q has neither j nor task_demand", s.Name)
	}
	d, err := rng.Parse(s.TaskDemand)
	if err != nil {
		return 0, err
	}
	return d.Mean() * float64(s.StationCount()), nil
}

// Utilization is the owner utilization the weighted metrics divide by:
// the configured aggregate value, or the mean across explicit stations.
func (s Scenario) Utilization() (float64, error) {
	if !s.Explicit() {
		p, err := s.Params()
		if err != nil {
			return 0, err
		}
		return p.Utilization(), nil
	}
	cfg, err := s.GeneralConfig()
	if err != nil {
		return 0, err
	}
	return cfg.MeanUtilization(), nil
}

// WithSeed returns a copy of the scenario with the given seed.
func (s Scenario) WithSeed(seed uint64) Scenario {
	s.Seed = seed
	return s
}

// analyticKey is the deduplication key for the sweep engine's analytic
// cache: everything the analytic backend's answer depends on, as a plain
// comparable struct so dense grids pay no per-point formatting or
// allocation. Seed, Name and OwnerCV2 are deliberately excluded — the exact
// analysis sees only the mean owner demand, so grid points differing only in
// those fields share one solve.
type analyticKey struct {
	j        float64
	w        int
	o        float64
	p        float64
	deadline float64
	target   float64
}

// analyticCacheKey builds the dedup key; ok is false when the scenario is
// outside the discrete model (explicit stations, custom task demand).
func (s Scenario) analyticCacheKey() (analyticKey, bool) {
	p, err := s.Params()
	if err != nil {
		return analyticKey{}, false
	}
	if s.TaskDemand != "" {
		return analyticKey{}, false // not the discrete model's workload
	}
	return analyticKey{j: p.J, w: p.W, o: p.O, p: p.P, deadline: s.Deadline, target: s.TargetEff}, true
}

// ParseScenario decodes a scenario from JSON, rejecting unknown fields so
// typos in hand-written files fail loudly.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := unmarshalStrict(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("solve: bad scenario: %w", err)
	}
	return s, s.Validate()
}

// LoadScenario reads and decodes a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return ParseScenario(data)
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
