package solve

import (
	"context"
	"fmt"

	"feasim/internal/core"
	"feasim/internal/rng"
)

// Empirical search: the simulation backends answer threshold and partition
// queries by bisecting a monotone metric measured by simulation. Weighted
// efficiency is nondecreasing in the task ratio (larger tasks amortize each
// owner burst over more useful work) and nonincreasing in W at fixed J
// (each task shrinks) — the same monotonicity the analytic solvers in
// core/threshold.go and core/optimize.go rely on, property-tested there.
// Decisions use the point estimate; the answer carries the boundary probe's
// confidence interval so callers can judge how sharp the cut is. Each probe
// gets a seed split from the query seed by its probed value (ratio or W),
// so the search result is a pure function of the query, not of the probe
// order. Within one DES probe, the precision-driven protocol extends a live
// GeneralRun session (sim.RunGeneralCtx), so CI refinement carries earlier
// samples forward instead of re-simulating.

// reportFn is a backend's ReportQuery body, used as the probe primitive.
type reportFn func(ctx context.Context, s Scenario) (Report, error)

// analyticThresholdGuess warm-starts the empirical threshold bisections from
// the analytic backend's answer to the same question (the ROADMAP perf
// item): the search probes analytic and analytic−1 first and falls back to
// bracketing only when the simulated boundary disagrees. Each probe's seed
// is still split by the probed value, so any ratio measures identically on
// either path; when the empirical boundary sits at the analytic one (the
// common case) the warm search returns the cold search's answer in two
// probes. 0 means no guess (the analytic solver could not place the
// boundary within maxRatio), preserving the cold full search.
func analyticThresholdGuess(q ThresholdQuery, maxRatio int) int {
	if len(q.Stations) > 0 {
		stations, err := tiledFleetStations(q.Stations, q.O, q.W)
		if err != nil {
			return 0
		}
		fq := core.FleetThresholdQuery{Stations: stations, O: q.O, TargetWeightedEff: q.TargetEff}
		g, err := fq.MinTaskRatio(maxRatio)
		if err != nil || g < 1 {
			return 0
		}
		return g
	}
	cq := core.ThresholdQuery{W: q.W, O: q.O, Util: q.Util, TargetWeightedEff: q.TargetEff}
	g, err := cq.MinTaskRatio(maxRatio)
	if err != nil || g < 1 {
		return 0
	}
	return g
}

// tiledFleetStations resolves and tiles a query's station template to
// exactly w stations in core form.
func tiledFleetStations(specs []StationSpec, o float64, w int) ([]core.FleetStation, error) {
	template, err := fleetTemplate(specs, o)
	if err != nil {
		return nil, err
	}
	return core.TileFleet(template, w)
}

// tiledStationSpecs is tiledFleetStations lifted back to scenario specs, for
// building heterogeneous probe scenarios.
func tiledStationSpecs(specs []StationSpec, o float64, w int) ([]StationSpec, error) {
	tiled, err := tiledFleetStations(specs, o, w)
	if err != nil {
		return nil, err
	}
	return stationSpecs(tiled), nil
}

// bisectThreshold finds the smallest integer task ratio in [1, maxRatio]
// whose simulated weighted efficiency meets the target. With a warmStart
// guess it confirms the guessed boundary in two probes (guess meets the
// target, guess−1 misses) and only falls back to bracketing plus binary
// search when the empirical boundary disagrees; without one it runs the cold
// exponential-then-binary search.
func bisectThreshold(ctx context.Context, backend string, q ThresholdQuery, maxRatio, warmStart int, probe reportFn) (Answer, error) {
	if q.Util == 0 && len(q.Stations) == 0 {
		// Dedicated system: weighted efficiency is 1 at any ratio. (A station
		// template always searches — even an all-p=0 fleet with speeds below
		// the reference rate caps weighted efficiency below 1.)
		return ThresholdAnswer{
			Backend:      backend,
			MinRatio:     1,
			MinJobDemand: core.RequiredJobDemand(1, q.O, q.W),
			AchievedWeff: 1,
		}, nil
	}
	var tiled []StationSpec
	if len(q.Stations) > 0 {
		var err error
		if tiled, err = tiledStationSpecs(q.Stations, q.O, q.W); err != nil {
			return nil, err
		}
	}
	root := rng.NewStream(q.Seed)
	probes, samples := 0, int64(0)
	eval := func(ratio int) (Report, error) {
		sc := Scenario{
			Name:     fmt.Sprintf("threshold/r%d", ratio),
			J:        float64(ratio) * q.O * float64(q.W),
			W:        q.W,
			O:        q.O,
			Util:     q.Util,
			Stations: tiled,
			Seed:     root.Split(uint64(ratio)).Uint64(),
		}
		r, err := probe(ctx, sc)
		if err != nil {
			return Report{}, fmt.Errorf("solve: threshold probe at ratio %d: %w", ratio, err)
		}
		probes++
		samples += r.Samples
		return r, nil
	}
	answer := func(ratio int, boundary Report) (Answer, error) {
		return ThresholdAnswer{
			Backend:      backend,
			MinRatio:     ratio,
			MinJobDemand: core.RequiredJobDemand(ratio, q.O, q.W),
			AchievedWeff: boundary.WeightedEfficiency,
			WeffCI:       boundary.WeffCI,
			Probes:       probes,
			Samples:      samples,
		}, nil
	}

	// Bracket invariant for the binary phase: weff(hi) >= target with
	// boundary holding the report at hi; lo == 0 or weff(lo) < target.
	var lo, hi int
	var boundary Report

	// bracketUp establishes the invariant by exponential search upward from
	// `from`, whose report `below` is known to miss the target.
	bracketUp := func(from int, below Report) error {
		for {
			if from >= maxRatio {
				return fmt.Errorf("solve: %s backend: target weighted efficiency %.3f unreachable within task ratio %d (best %.4f)",
					backend, q.TargetEff, maxRatio, below.WeightedEfficiency)
			}
			lo = from
			hi = from * 2
			if hi > maxRatio {
				hi = maxRatio
			}
			r, err := eval(hi)
			if err != nil {
				return err
			}
			if r.WeightedEfficiency >= q.TargetEff {
				boundary = r
				return nil
			}
			from, below = hi, r
		}
	}

	if g := min(warmStart, maxRatio); g >= 1 {
		r, err := eval(g)
		if err != nil {
			return nil, err
		}
		switch {
		case r.WeightedEfficiency < q.TargetEff:
			// Empirical boundary above the analytic guess.
			if err := bracketUp(g, r); err != nil {
				return nil, err
			}
		case g == 1:
			return answer(1, r)
		default:
			below, err := eval(g - 1)
			if err != nil {
				return nil, err
			}
			if below.WeightedEfficiency < q.TargetEff {
				return answer(g, r) // the hot case: two probes confirm
			}
			// Empirical boundary below the analytic guess: bisect (0, g-1].
			lo, hi, boundary = 0, g-1, below
		}
	} else {
		r, err := eval(1)
		if err != nil {
			return nil, err
		}
		if r.WeightedEfficiency >= q.TargetEff {
			return answer(1, r)
		}
		if err := bracketUp(1, r); err != nil {
			return nil, err
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if r.WeightedEfficiency >= q.TargetEff {
			hi, boundary = mid, r
		} else {
			lo = mid
		}
	}
	return answer(hi, boundary)
}

// analyticPartitionGuess warm-starts the empirical partition bisection from
// the exact right-sizing solver's answer (the ROADMAP carry-forward mirroring
// analyticThresholdGuess): the search probes the analytic W and W+1 first and
// falls back to the cold bracket only when the simulated boundary disagrees.
// Probe seeds are split by the probed W either way, so any W measures
// identically on either path. 0 means no guess (the analytic solver refused
// the point), preserving the cold full search.
func analyticPartitionGuess(q PartitionQuery) int {
	if len(q.Stations) > 0 {
		template, err := fleetTemplate(q.Stations, q.O)
		if err != nil {
			return 0
		}
		w, err := core.MaxFleetWorkstations(q.J, q.O, template, q.TargetEff, q.MaxW)
		if err != nil || w < 1 {
			return 0
		}
		return w
	}
	plan, err := core.PlanPartition(q.J, q.O, q.Util, q.TargetEff, q.MaxW)
	if err != nil || plan.W < 1 {
		return 0
	}
	return plan.W
}

// bisectPartition finds the largest W in [1, maxW] whose simulated weighted
// efficiency still meets the target for the fixed job q.J. With a warmStart
// guess it confirms the guessed boundary in two probes (guess meets the
// target, guess+1 misses) and only falls back to the full bracket plus
// binary search when the empirical boundary disagrees.
func bisectPartition(ctx context.Context, backend string, q PartitionQuery, warmStart int, probe reportFn) (Answer, error) {
	maxW := q.MaxW
	// The aggregate scenario form needs T = J/W >= 1, capping the usable
	// system size at floor(J) — the same clamp as core.MaxWorkstations.
	if q.Util > 0 && float64(maxW) > q.J {
		maxW = int(q.J)
		if maxW < 1 {
			return nil, fmt.Errorf("solve: job demand %v is below one time unit", q.J)
		}
	}
	if len(q.Stations) > 0 {
		// Heterogeneous template: the model needs every interruptible
		// station's effective demand J/(w·speed) >= 1, the same clamp as
		// core.MaxFleetWorkstations.
		maxSpeed := 0.0
		for _, ss := range q.Stations {
			p, err := ss.resolveP(q.O)
			if err != nil {
				return nil, err
			}
			speed := ss.Speed
			if speed == 0 {
				speed = 1
			}
			if p > 0 && speed > maxSpeed {
				maxSpeed = speed
			}
		}
		if maxSpeed > 0 && float64(maxW) > q.J/maxSpeed {
			maxW = int(q.J / maxSpeed)
			if maxW < 1 {
				return nil, fmt.Errorf("solve: job demand %v is below one effective time unit at the template's fastest station", q.J)
			}
		}
	}
	root := rng.NewStream(q.Seed)
	probes, samples := 0, int64(0)
	eval := func(w int) (Report, error) {
		sc := Scenario{
			Name:      fmt.Sprintf("partition/w%d", w),
			J:         q.J,
			W:         w,
			O:         q.O,
			Util:      q.Util,
			TargetEff: q.TargetEff,
			Seed:      root.Split(uint64(w)).Uint64(),
		}
		if len(q.Stations) > 0 {
			tiled, err := tiledStationSpecs(q.Stations, q.O, w)
			if err != nil {
				return Report{}, err
			}
			sc.Stations = tiled
		}
		r, err := probe(ctx, sc)
		if err != nil {
			return Report{}, fmt.Errorf("solve: partition probe at W=%d: %w", w, err)
		}
		probes++
		samples += r.Samples
		return r, nil
	}
	answer := func(best Report) (Answer, error) {
		return PartitionAnswer{Backend: backend, W: best.W, Report: best, Probes: probes, Samples: samples}, nil
	}
	infeasibleAtOne := func(one Report) error {
		return fmt.Errorf("solve: %s backend: even one workstation reaches only %.4f weighted efficiency (target %.4f)",
			backend, one.WeightedEfficiency, q.TargetEff)
	}

	// Binary-phase invariant: weff(lo) >= target with best the report at lo;
	// weff(hi) < target.
	var lo, hi int
	var best Report

	if g := min(warmStart, maxW); g >= 1 {
		r, err := eval(g)
		if err != nil {
			return nil, err
		}
		switch {
		case r.WeightedEfficiency < q.TargetEff:
			// Empirical boundary below the analytic guess: bisect [1, g).
			if g == 1 {
				return nil, infeasibleAtOne(r)
			}
			one, err := eval(1)
			if err != nil {
				return nil, err
			}
			if one.WeightedEfficiency < q.TargetEff {
				return nil, infeasibleAtOne(one)
			}
			lo, hi, best = 1, g, one
		case g == maxW:
			return answer(r)
		default:
			above, err := eval(g + 1)
			if err != nil {
				return nil, err
			}
			if above.WeightedEfficiency < q.TargetEff {
				return answer(r) // the hot case: two probes confirm
			}
			// Empirical boundary above the analytic guess: bisect (g, maxW].
			if g+1 == maxW {
				return answer(above)
			}
			top, err := eval(maxW)
			if err != nil {
				return nil, err
			}
			if top.WeightedEfficiency >= q.TargetEff {
				return answer(top)
			}
			lo, hi, best = g+1, maxW, above
		}
	} else {
		one, err := eval(1)
		if err != nil {
			return nil, err
		}
		if one.WeightedEfficiency < q.TargetEff {
			return nil, infeasibleAtOne(one)
		}
		if maxW == 1 {
			return answer(one)
		}
		top, err := eval(maxW)
		if err != nil {
			return nil, err
		}
		if top.WeightedEfficiency >= q.TargetEff {
			return answer(top)
		}
		lo, hi, best = 1, maxW, one
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if r.WeightedEfficiency >= q.TargetEff {
			lo, best = mid, r
		} else {
			hi = mid
		}
	}
	return answer(best)
}
