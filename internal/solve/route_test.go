package solve

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestRouteHashDeterministic: the routing hash is a pure function of the
// cache identity — equal queries hash equal, and the analytic dedup rules
// carry over (siblings differing only outside the dedup key share a home).
func TestRouteHashDeterministic(t *testing.T) {
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 1}
	h1, ok1 := RouteHash("exact", q)
	h2, ok2 := RouteHash("exact", q)
	if !ok1 || !ok2 || h1 != h2 {
		t.Fatalf("equal queries must hash equal: %v/%v %v/%v", h1, ok1, h2, ok2)
	}
	// A stochastic backend keys on the full envelope: a different seed is a
	// different identity (and, fnv collisions aside, a different hash).
	q2 := q
	q2.Seed = 2
	if h3, ok := RouteHash("exact", q2); !ok || h3 == h1 {
		t.Errorf("distinct seed should change the stochastic routing hash (got %v ok=%v)", h3, ok)
	}
	// Backend is part of the identity.
	if h4, ok := RouteHash("des", q); !ok || h4 == h1 {
		t.Errorf("distinct backend should change the routing hash (got %v ok=%v)", h4, ok)
	}
	// Analytic siblings differing only in name/seed/owner CV² share a key —
	// and therefore a home node.
	base := ReportQuery{Scenario: Scenario{Name: "a", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 1}}
	sib := ReportQuery{Scenario: Scenario{Name: "b", J: 1000, W: 10, O: 10, Util: 0.1, Seed: 9, OwnerCV2: 16}}
	hb, okb := RouteHash(BackendAnalytic, base)
	hs, oks := RouteHash(BackendAnalytic, sib)
	if !okb || !oks || hb != hs {
		t.Errorf("analytic siblings must share a routing hash: %v/%v vs %v/%v", hb, okb, hs, oks)
	}
}

// TestRouteHashFoldsSchedule: the owner schedule is part of a timeline
// query's routing identity — two workdays differing only in a phase's
// utilization live on different home nodes, while analytic name/seed
// siblings of the same workday share one.
func TestRouteHashFoldsSchedule(t *testing.T) {
	workday := func(nightUtil float64) TimelineQuery {
		return TimelineQuery{Scenario: Scenario{
			Name: "a", J: 400, W: 4, O: 10, Seed: 1,
			Schedule: []PhaseSpec{
				{Name: "day", Duration: 600, Util: 0.1},
				{Name: "night", Duration: 600, Util: nightUtil},
			},
		}}
	}
	h1, ok1 := RouteHash(BackendAnalytic, workday(0.01))
	h2, ok2 := RouteHash(BackendAnalytic, workday(0.02))
	if !ok1 || !ok2 {
		t.Fatal("timeline queries must be routable")
	}
	if h1 == h2 {
		t.Error("a different schedule must change the routing hash")
	}
	sib := workday(0.01)
	sib.Scenario.Name, sib.Scenario.Seed = "b", 99
	if hs, ok := RouteHash(BackendAnalytic, sib); !ok || hs != h1 {
		t.Errorf("analytic timeline siblings must share a routing hash: %v/%v vs %v", hs, ok, h1)
	}
	// Epoch layout is identity too: the answer is the epoch series.
	more := workday(0.01)
	more.Epochs = 24
	if hm, ok := RouteHash(BackendAnalytic, more); !ok || hm == h1 {
		t.Error("a different epoch layout must change the routing hash")
	}
}

// TestParseAnswerRoundtrip: ParseAnswer inverts the wire encoding for every
// answer kind, so a forwarded answer can be adopted as a typed cache entry.
func TestParseAnswerRoundtrip(t *testing.T) {
	answers := map[string]Answer{
		KindReport:       ReportAnswer{Report: Report{Backend: "analytic", W: 10, U: 0.1, EJob: 123.4}},
		KindThreshold:    ThresholdAnswer{Backend: "analytic", MinRatio: 7, AchievedWeff: 0.83},
		KindPartition:    PartitionAnswer{Backend: "analytic", W: 4, Report: Report{EJob: 9}},
		KindDistribution: DistributionAnswer{Backend: "exact", Quantiles: []QuantileValue{{Q: 0.5, Time: 1}}},
		KindScaled:       ScaledAnswer{Backend: "analytic"},
		KindTimeline: TimelineAnswer{Backend: "analytic", CycleLength: 1200, MeanUtil: 0.055,
			Epochs: []TimelineEpoch{{Start: 0, Phase: "day", Util: 0.1, EJob: 123.4}}},
	}
	for kind, a := range answers {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got, err := ParseAnswer(kind, data)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Errorf("%s roundtrip: got %+v want %+v", kind, got, a)
		}
		if got.Kind() != kind {
			t.Errorf("%s roundtrip: kind %q", kind, got.Kind())
		}
	}
	if _, err := ParseAnswer("bogus", []byte(`{}`)); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := ParseAnswer(KindReport, []byte(`{`)); err == nil {
		t.Error("malformed body must fail")
	}
}

// TestPeekDoesNotCountMisses: Peek is the cluster's routing probe — a miss
// must leave the stats untouched so cache misses keep meaning "local backend
// executions", the number /v1/cluster sums fleet-wide.
func TestPeekDoesNotCountMisses(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake"}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 1}

	if _, _, ok := cs.Peek(q); ok {
		t.Fatal("cold Peek must miss")
	}
	if st := cs.Cache().Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("a Peek miss must count nothing, got %+v", st)
	}
	if _, _, err := cs.AnswerCached(ctx, q); err != nil {
		t.Fatal(err)
	}
	a, enc, ok := cs.Peek(q)
	if !ok {
		t.Fatal("Peek after solve must hit")
	}
	if a.(ThresholdAnswer).MinRatio != 7 {
		t.Errorf("Peek answer %+v", a)
	}
	// A stochastic-key entry carries its canonical encoding.
	if enc == nil {
		t.Error("stochastic-key Peek hit should carry encoded bytes")
	}
	var decoded ThresholdAnswer
	if err := json.Unmarshal(enc, &decoded); err != nil || decoded.MinRatio != 7 {
		t.Errorf("cached bytes decode to %+v (err %v)", decoded, err)
	}
	st := cs.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats after solve+peek-hit: %+v, want 1 hit / 1 miss", st)
	}
}

// TestStoreReplica: an adopted answer serves later lookups without an inner
// execution, and the stored encoding is this cache's canonical scrubbed one,
// not whatever the peer sent.
func TestStoreReplica(t *testing.T) {
	ctx := context.Background()
	inner := &countingSolver{name: "fake"}
	cs := NewCachedSolver(inner, nil)
	q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: 3}

	cs.StoreReplica(q, ThresholdAnswer{Backend: "fake", MinRatio: 42})
	a, cached, err := cs.AnswerCached(ctx, q)
	if err != nil || !cached {
		t.Fatalf("replica must hit: cached=%v err=%v", cached, err)
	}
	if a.(ThresholdAnswer).MinRatio != 42 {
		t.Errorf("replica answer %+v", a)
	}
	if inner.calls.Load() != 0 {
		t.Errorf("replica hit must not execute the backend (%d calls)", inner.calls.Load())
	}
	if _, enc, ok := cs.Peek(q); !ok || enc == nil {
		t.Error("replica entry should carry encoded bytes for a stochastic key")
	}
}

// TestEncodedHitScrubsElapsed: the cached encoding is the scrubbed answer —
// a replayed hit must not leak the original solve's elapsed stamp (the PR 5
// bugfix, preserved on the new byte-replay path).
func TestEncodedHitScrubsElapsed(t *testing.T) {
	ctx := context.Background()
	cs := NewCachedSolver(ExactSim{}, nil)
	q := ReportQuery{Scenario: Scenario{J: 100, W: 4, O: 10, Util: 0.1, Seed: 1}}
	if _, _, err := cs.AnswerCached(ctx, q); err != nil {
		t.Fatal(err)
	}
	a, enc, cached, err := cs.AnswerCachedEncoded(ctx, q)
	if err != nil || !cached {
		t.Fatalf("second solve should hit: cached=%v err=%v", cached, err)
	}
	if enc == nil {
		t.Fatal("stochastic hit should return encoded bytes")
	}
	if bytes.Contains(enc, []byte("elapsed_ns")) {
		t.Errorf("cached bytes leak the original elapsed stamp: %s", enc)
	}
	if a.(ReportAnswer).Report.Elapsed != 0 {
		t.Errorf("typed hit leaks elapsed %v", a.(ReportAnswer).Report.Elapsed)
	}
	// The bytes and the typed answer are the same wire object.
	want, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("cached bytes diverge from typed answer:\n  enc  %s\n  want %s", enc, want)
	}
}

// TestPerShardStats: the per-shard breakdown must sum to the aggregate.
func TestPerShardStats(t *testing.T) {
	ctx := context.Background()
	cs := NewCachedSolver(&countingSolver{name: "fake"}, NewAnswerCacheShards(64, 8))
	for i := 0; i < 16; i++ {
		q := ThresholdQuery{W: 10, O: 10, Util: 0.1, TargetEff: 0.8, Seed: uint64(i + 1)}
		if _, _, err := cs.AnswerCached(ctx, q); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cs.AnswerCached(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	st := cs.Cache().Stats()
	if len(st.PerShard) != st.Shards {
		t.Fatalf("%d per-shard entries for %d shards", len(st.PerShard), st.Shards)
	}
	var hits, misses, entries, capacity int64
	for _, sh := range st.PerShard {
		hits += sh.Hits
		misses += sh.Misses
		entries += int64(sh.Entries)
		capacity += int64(sh.Capacity)
	}
	if hits != st.Hits || misses != st.Misses || entries != int64(st.Entries) || capacity != int64(st.Capacity) {
		t.Errorf("per-shard sums (h=%d m=%d e=%d c=%d) diverge from aggregate %+v",
			hits, misses, entries, capacity, st)
	}
	if st.Hits != 16 || st.Misses != 16 {
		t.Errorf("want 16 hits / 16 misses, got %+v", st)
	}
}
