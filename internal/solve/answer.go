package solve

import "time"

// Answer is a Solver's reply to a Query. The concrete type matches the query
// kind: ReportAnswer, ThresholdAnswer, PartitionAnswer, DistributionAnswer,
// ScaledAnswer, TimelineAnswer. Kind returns the originating query kind so
// generic consumers (the CLI, the query sweep) can dispatch without a type
// switch.
type Answer interface {
	Kind() string
}

// ReportAnswer wraps the full Section 3 report — the answer to a
// ReportQuery.
type ReportAnswer struct {
	Report Report `json:"report"`
}

// Kind implements Answer.
func (ReportAnswer) Kind() string { return KindReport }

// ThresholdAnswer is the answer to a ThresholdQuery: the minimum task ratio
// reaching the target, the job demand that realizes it, and the weighted
// efficiency achieved at the boundary. Simulation backends add the boundary
// confidence interval and the bisection cost.
type ThresholdAnswer struct {
	Backend string `json:"backend"`

	MinRatio     int     `json:"min_ratio"`
	MinJobDemand float64 `json:"min_job_demand"`
	// AchievedWeff is the weighted efficiency measured at MinRatio.
	AchievedWeff float64 `json:"achieved_weff"`
	// WeffCI is the simulation CI at the boundary ratio (zero for analytic).
	WeffCI Interval `json:"weff_ci"`
	// Probes counts the bisection's simulated points; Samples the total
	// simulated job executions across probes (simulation backends only).
	Probes  int   `json:"probes,omitempty"`
	Samples int64 `json:"samples,omitempty"`
}

// Kind implements Answer.
func (ThresholdAnswer) Kind() string { return KindThreshold }

// PartitionAnswer is the answer to a PartitionQuery: the chosen system size
// and the full report at that size.
type PartitionAnswer struct {
	Backend string `json:"backend"`

	// W is the largest system size meeting the target.
	W int `json:"w"`
	// Report is the full answer at the chosen W.
	Report Report `json:"report"`
	// Probes and Samples report the bisection cost (simulation backends).
	Probes  int   `json:"probes,omitempty"`
	Samples int64 `json:"samples,omitempty"`
}

// Kind implements Answer.
func (PartitionAnswer) Kind() string { return KindPartition }

// QuantileValue is one completion-time quantile.
type QuantileValue struct {
	Q    float64 `json:"q"`
	Time float64 `json:"time"`
}

// DeadlineValue is one deadline probability P(job time <= Deadline).
type DeadlineValue struct {
	Deadline float64 `json:"deadline"`
	Prob     float64 `json:"prob"`
}

// DistributionAnswer is the answer to a DistributionQuery: moments,
// quantiles and deadline tail probabilities of the job completion time —
// exact from the analytic backend, empirical from the simulators.
type DistributionAnswer struct {
	Backend  string   `json:"backend"`
	Scenario Scenario `json:"scenario"`

	Mean      float64         `json:"mean"`
	StdDev    float64         `json:"std_dev"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
	Deadlines []DeadlineValue `json:"deadlines,omitempty"`
	// Samples is the empirical sample count (simulation backends only).
	Samples int64 `json:"samples,omitempty"`
}

// Kind implements Answer.
func (DistributionAnswer) Kind() string { return KindDistribution }

// ScaledResultPoint is one system size of a scaled-problem curve.
type ScaledResultPoint struct {
	W                   int     `json:"w"`
	EJob                float64 `json:"e_job"`
	IncreaseVsDedicated float64 `json:"increase_vs_dedicated"`
	IncreaseVsSingle    float64 `json:"increase_vs_single"`
	WeightedEff         float64 `json:"weighted_eff"`
}

// ScaledAnswer is the answer to a ScaledQuery: the memory-bounded scaleup
// curve across the requested system sizes.
type ScaledAnswer struct {
	Backend string              `json:"backend"`
	Points  []ScaledResultPoint `json:"points"`
}

// Kind implements Answer.
func (ScaledAnswer) Kind() string { return KindScaled }

// TimelineEpoch is one launch offset of a TimelineAnswer.
type TimelineEpoch struct {
	// Start is the launch offset within the cycle.
	Start float64 `json:"start"`
	// Phase names the schedule phase active at launch.
	Phase string `json:"phase,omitempty"`
	// Util is the owner utilization at launch; MeanUtil the duration-
	// weighted utilization over the job's span (the value the weighted
	// metrics divide by).
	Util     float64 `json:"util"`
	MeanUtil float64 `json:"mean_util"`

	// EJob is the expected completion time of a job launched here.
	EJob               float64 `json:"e_job"`
	Speedup            float64 `json:"speedup"`
	Efficiency         float64 `json:"efficiency"`
	WeightedEfficiency float64 `json:"weighted_efficiency"`

	// EJobCI and Samples are filled by the DES backend only.
	EJobCI  Interval `json:"e_job_ci"`
	Samples int64    `json:"samples,omitempty"`

	// Feasible is non-nil when the scenario sets TargetEff.
	Feasible *bool `json:"feasible,omitempty"`
}

// TimelineAnswer is the answer to a TimelineQuery: the feasibility epoch
// series over the scenario's workday schedule or recorded trace.
type TimelineAnswer struct {
	Backend  string   `json:"backend"`
	Scenario Scenario `json:"scenario"`

	// CycleLength is the schedule cycle (or trace length); MeanUtil the
	// duration-weighted utilization over it.
	CycleLength float64 `json:"cycle_length"`
	MeanUtil    float64 `json:"mean_util"`

	Epochs []TimelineEpoch `json:"epochs"`

	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Kind implements Answer.
func (TimelineAnswer) Kind() string { return KindTimeline }
