package des

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestServerUncontendedServiceTime(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var done Time
	e.Spawn("task", func(p *Proc) {
		s.Use(p, 10, 0)
		done = p.Now()
	})
	e.Run()
	if done != 10 {
		t.Errorf("uncontended service finished at %v, want 10", done)
	}
	if s.Served() != 1 {
		t.Errorf("Served = %d", s.Served())
	}
	if s.Preemptions() != 0 {
		t.Errorf("Preemptions = %d", s.Preemptions())
	}
}

// TestPreemptionStretchesLowPriority is the paper's workstation in
// miniature: a parallel task of demand 10 is preempted at t=3 by an owner
// burst of demand 5; the owner finishes at 8, the task at 15.
func TestPreemptionStretchesLowPriority(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("ws")
	var taskDone, ownerDone Time
	e.Spawn("task", func(p *Proc) {
		s.Use(p, 10, 0)
		taskDone = p.Now()
	})
	e.Spawn("owner", func(p *Proc) {
		p.Hold(3)
		s.Use(p, 5, 1)
		ownerDone = p.Now()
	})
	e.Run()
	if ownerDone != 8 {
		t.Errorf("owner finished at %v, want 8", ownerDone)
	}
	if taskDone != 15 {
		t.Errorf("task finished at %v, want 15 (preemptive resume)", taskDone)
	}
	if s.Preemptions() != 1 {
		t.Errorf("Preemptions = %d, want 1", s.Preemptions())
	}
}

func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var aDone, bDone Time
	e.Spawn("a", func(p *Proc) {
		s.Use(p, 10, 1)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Hold(2)
		s.Use(p, 10, 1)
		bDone = p.Now()
	})
	e.Run()
	if aDone != 10 || bDone != 20 {
		t.Errorf("a/b done at %v/%v, want 10/20 (FIFO within class)", aDone, bDone)
	}
}

func TestFIFOWithinPriorityClass(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var order []string
	// Occupy the server, then queue three same-priority requests.
	e.Spawn("holder", func(p *Proc) {
		s.Use(p, 5, 0)
	})
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			switch name {
			case "first":
				p.Hold(1)
			case "second":
				p.Hold(2)
			case "third":
				p.Hold(3)
			}
			s.Use(p, 1, 0)
			order = append(order, name)
		})
	}
	e.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestPreemptedResumesBeforeLaterArrivalsOfSameClass(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var order []string
	e.Spawn("victim", func(p *Proc) {
		s.Use(p, 10, 0) // preempted at t=2
		order = append(order, "victim")
	})
	e.Spawn("owner", func(p *Proc) {
		p.Hold(2)
		s.Use(p, 5, 1)
	})
	e.Spawn("later", func(p *Proc) {
		p.Hold(3) // arrives while owner running, same class as victim
		s.Use(p, 1, 0)
		order = append(order, "later")
	})
	e.Run()
	// Victim arrived first; it must resume (and finish) before "later".
	if len(order) != 2 || order[0] != "victim" || order[1] != "later" {
		t.Errorf("order = %v, want [victim later]", order)
	}
}

func TestNestedPreemptionThreeLevels(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var done = map[string]Time{}
	e.Spawn("low", func(p *Proc) {
		s.Use(p, 10, 0)
		done["low"] = p.Now()
	})
	e.Spawn("mid", func(p *Proc) {
		p.Hold(2)
		s.Use(p, 4, 1)
		done["mid"] = p.Now()
	})
	e.Spawn("high", func(p *Proc) {
		p.Hold(3)
		s.Use(p, 2, 2)
		done["high"] = p.Now()
	})
	e.Run()
	// high: 3..5; mid: 2..3 then 5..8; low: 0..2 then 8..16.
	if done["high"] != 5 {
		t.Errorf("high done at %v, want 5", done["high"])
	}
	if done["mid"] != 8 {
		t.Errorf("mid done at %v, want 8", done["mid"])
	}
	if done["low"] != 16 {
		t.Errorf("low done at %v, want 16", done["low"])
	}
	if s.Preemptions() != 2 {
		t.Errorf("Preemptions = %d, want 2", s.Preemptions())
	}
}

func TestZeroDemandReturnsImmediately(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	var at Time
	e.Spawn("p", func(p *Proc) {
		s.Use(p, 0, 0)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Errorf("zero demand took time: %v", at)
	}
	if s.Served() != 0 {
		t.Errorf("zero demand should not count as served")
	}
}

func TestNegativeDemandPanics(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	panicked := false
	e.Spawn("p", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		s.Use(p, -1, 0)
	})
	e.Run()
	if !panicked {
		t.Error("negative demand should panic")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("ws")
	e.Spawn("task", func(p *Proc) {
		s.Use(p, 10, 0)
	})
	e.Spawn("owner", func(p *Proc) {
		p.Hold(3)
		s.Use(p, 5, 1)
	})
	e.Run()
	if bt := s.BusyTime(0); bt != 10 {
		t.Errorf("task-class busy time %v, want 10", bt)
	}
	if bt := s.BusyTime(1); bt != 5 {
		t.Errorf("owner-class busy time %v, want 5", bt)
	}
	if tot := s.TotalBusyTime(); tot != 15 {
		t.Errorf("total busy %v, want 15", tot)
	}
	// Horizon is 15 (no idle): utilizations 10/15 and 5/15.
	if u := s.Utilization(1); math.Abs(u-5.0/15) > 1e-12 {
		t.Errorf("owner utilization %v, want %v", u, 5.0/15)
	}
}

func TestBusyTimeIncludesInProgressSlice(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	s := e.NewPreemptiveServer("ws")
	e.Spawn("task", func(p *Proc) {
		s.Use(p, 10, 0)
	})
	e.RunUntil(4)
	if bt := s.BusyTime(0); bt != 4 {
		t.Errorf("in-progress busy time %v, want 4", bt)
	}
	if !s.Busy() {
		t.Error("server should be busy at t=4")
	}
}

// TestWorkConservation drives random arrivals through the server and checks
// that delivered service equals the sum of demands once everything drains,
// and that no customer finishes before its arrival + demand.
func TestWorkConservation(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		s := e.NewPreemptiveServer("cpu")
		var totalDemand float64
		type rec struct{ arrive, demand, done float64 }
		var recs []*rec
		n := 2 + r.IntN(30)
		for i := 0; i < n; i++ {
			arrive := r.Float64() * 50
			demand := 0.1 + r.Float64()*10
			prio := r.IntN(3)
			totalDemand += demand
			rc := &rec{arrive: arrive, demand: demand}
			recs = append(recs, rc)
			e.Spawn("c", func(p *Proc) {
				p.Hold(arrive)
				s.Use(p, demand, prio)
				rc.done = p.Now()
			})
		}
		e.Run()
		if got := s.TotalBusyTime(); math.Abs(got-totalDemand) > 1e-6 {
			t.Fatalf("trial %d: busy %v != total demand %v", trial, got, totalDemand)
		}
		for _, rc := range recs {
			if rc.done < rc.arrive+rc.demand-1e-9 {
				t.Fatalf("trial %d: customer finished at %v before arrive+demand %v",
					trial, rc.done, rc.arrive+rc.demand)
			}
		}
		if s.Served() != uint64(n) {
			t.Fatalf("trial %d: served %d of %d", trial, s.Served(), n)
		}
		if s.QueueLen() != 0 || s.Busy() {
			t.Fatalf("trial %d: server not drained", trial)
		}
	}
}

// TestHighPriorityUnaffectedByLow verifies the paper's core assumption:
// owner processes never wait for parallel tasks.
func TestHighPriorityUnaffectedByLow(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	e := NewEngine()
	s := e.NewPreemptiveServer("ws")
	// A parallel task hogging the CPU from t=0.
	e.Spawn("task", func(p *Proc) {
		s.Use(p, 1e6, 0)
	})
	// Sparse owner bursts must each take exactly their demand.
	for i := 0; i < 20; i++ {
		arrive := 10 + float64(i)*100 + r.Float64()*10
		demand := 1 + r.Float64()*5
		e.Spawn("owner", func(p *Proc) {
			p.Hold(arrive)
			s.Use(p, demand, 1)
			if got := p.Now() - arrive; math.Abs(got-demand) > 1e-9 {
				t.Errorf("owner burst took %v, want %v", got, demand)
			}
		})
	}
	e.Run()
}

func TestServerName(t *testing.T) {
	e := NewEngine()
	if s := e.NewPreemptiveServer("ws7"); s.Name() != "ws7" {
		t.Errorf("Name = %q", s.Name())
	}
}
