package des

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestHoldAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Hold(5)
		p.Hold(2.5)
		at = p.Now()
	})
	e.Run()
	if at != 7.5 {
		t.Errorf("process finished at %v, want 7.5", at)
	}
	if e.Now() != 7.5 {
		t.Errorf("engine clock %v, want 7.5", e.Now())
	}
}

func TestProcessesInterleaveByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	spawnHold := func(name string, d Time) {
		e.Spawn(name, func(p *Proc) {
			p.Hold(d)
			order = append(order, name)
		})
	}
	spawnHold("slow", 5)
	spawnHold("fast", 3)
	spawnHold("mid", 4)
	e.Run()
	want := []string{"fast", "mid", "slow"}
	for i, n := range want {
		if order[i] != n {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

func TestSameTimeTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(1)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated schedule order: %v", order)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var times []float64
		r := rand.New(rand.NewPCG(42, 43))
		for i := 0; i < 50; i++ {
			e.Spawn("p", func(p *Proc) {
				p.Hold(r.Float64() * 100)
				times = append(times, p.Now())
			})
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical schedules produced different histories")
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(10, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 10 {
		t.Errorf("late process started at %v, want 10", started)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Hold(3)
		p.Engine().Spawn("child", func(c *Proc) {
			c.Hold(4)
			childAt = c.Now()
		})
		p.Hold(10)
	})
	e.Run()
	if childAt != 7 {
		t.Errorf("child finished at %v, want 7", childAt)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	ran := 0
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Hold(1)
			ran++
		}
	})
	e.RunUntil(4.5)
	if ran != 4 {
		t.Errorf("%d holds completed before horizon, want 4", ran)
	}
	if e.Now() != 4.5 {
		t.Errorf("clock %v, want horizon 4.5", e.Now())
	}
	e.RunUntil(100)
	if ran != 10 {
		t.Errorf("%d holds after second run, want 10", ran)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("p", func(p *Proc) {
		p.Hold(1)
		count++
		p.Hold(1)
		count++
	})
	if !e.Step() { // start event
		t.Fatal("first step should succeed")
	}
	if count != 0 {
		t.Fatal("body should be blocked in first Hold")
	}
	e.Step()
	if count != 1 {
		t.Fatalf("count = %d after second step", count)
	}
	e.Step()
	if count != 2 {
		t.Fatalf("count = %d after third step", count)
	}
	if e.Step() {
		t.Fatal("no events should remain")
	}
}

func TestScheduleFuncAndCancel(t *testing.T) {
	e := NewEngine()
	fired := []string{}
	e.ScheduleFunc(5, func() { fired = append(fired, "keep") })
	ev := e.ScheduleFunc(3, func() { fired = append(fired, "cancelled") })
	ev.Cancel()
	e.Run()
	if len(fired) != 1 || fired[0] != "keep" {
		t.Errorf("fired = %v", fired)
	}
	if e.Now() != 5 {
		t.Errorf("clock %v, want 5", e.Now())
	}
}

func TestPendingAndProcessedCounters(t *testing.T) {
	e := NewEngine()
	e.ScheduleFunc(1, func() {})
	e.ScheduleFunc(2, func() {})
	ev := e.ScheduleFunc(3, func() {})
	ev.Cancel()
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2 (cancelled excluded)", e.Pending())
	}
	e.Run()
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	e := NewEngine()
	sig := e.NewSignal("never")
	for i := 0; i < 5; i++ {
		e.Spawn("waiter", func(p *Proc) {
			sig.Wait(p) // never fired
			t.Error("waiter should not resume")
		})
	}
	e.Run()
	if e.Live() != 5 {
		t.Fatalf("Live = %d, want 5 blocked", e.Live())
	}
	e.Close()
	if e.Live() != 0 {
		t.Errorf("Live after Close = %d", e.Live())
	}
	// Close is idempotent.
	e.Close()
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleFunc(10, func() {})
	e.Run() // clock now 10
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past should panic")
		}
	}()
	e.ScheduleFunc(5, func() {})
}

func TestNegativeHoldPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("p", func(p *Proc) {
		// Recovering inside the body turns the misuse panic into a normal
		// termination, keeping the engine consistent.
		defer func() { panicked = recover() != nil }()
		p.Hold(-1)
	})
	e.Run()
	if !panicked {
		t.Error("negative hold should panic")
	}
	if e.Live() != 0 {
		t.Errorf("Live = %d after recovered panic", e.Live())
	}
}

func TestQuickRandomHoldsCompleteInOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 25; trial++ {
		e := NewEngine()
		n := 1 + r.IntN(40)
		type done struct{ at, want float64 }
		var finished []done
		for i := 0; i < n; i++ {
			d := r.Float64() * 50
			e.Spawn("p", func(p *Proc) {
				p.Hold(d)
				finished = append(finished, done{p.Now(), d})
			})
		}
		e.Run()
		if len(finished) != n {
			t.Fatalf("trial %d: %d of %d processes finished", trial, len(finished), n)
		}
		if !sort.SliceIsSorted(finished, func(i, j int) bool { return finished[i].at < finished[j].at }) {
			t.Fatalf("trial %d: completions out of time order", trial)
		}
		for _, f := range finished {
			if f.at != f.want {
				t.Fatalf("trial %d: completion at %v, want %v", trial, f.at, f.want)
			}
		}
	}
}

func TestPendingLiveCounter(t *testing.T) {
	// Pending is maintained incrementally; it must track the brute-force
	// definition (scheduled, uncancelled, unexecuted) through schedule,
	// cancel, double-cancel, cancel-after-fire and step.
	e := NewEngine()
	a := e.ScheduleFunc(1, func() {})
	b := e.ScheduleFunc(2, func() {})
	e.ScheduleFunc(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	b.Cancel()
	b.Cancel() // idempotent
	if e.Pending() != 2 {
		t.Fatalf("after cancel: Pending = %d, want 2", e.Pending())
	}
	if !e.Step() { // fires a
		t.Fatal("expected an event")
	}
	if e.Pending() != 1 {
		t.Fatalf("after step: Pending = %d, want 1", e.Pending())
	}
	a.Cancel() // cancelling an already-fired event must not double-count
	if e.Pending() != 1 {
		t.Fatalf("after cancel-after-fire: Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("after drain: Pending = %d, want 0", e.Pending())
	}
}

func TestPendingTracksTimeoutWakes(t *testing.T) {
	// A timed receive schedules a timeout wake and cancels it when the
	// message wins; the counter must survive that churn and end at zero.
	e := NewEngine()
	mb := e.NewMailbox("mb")
	var got any
	e.Spawn("recv", func(p *Proc) {
		got, _ = mb.RecvTimeout(p, 50)
	})
	e.Spawn("send", func(p *Proc) {
		p.Hold(5)
		mb.Send(7)
	})
	e.Run()
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("after run: Pending = %d, want 0", e.Pending())
	}
	e.Close()
}
