package des

import (
	"testing"
)

func TestSemaphoreMutualExclusion(t *testing.T) {
	e := NewEngine()
	sem := e.NewSemaphore("mutex", 1)
	inside := 0
	violations := 0
	for i := 0; i < 5; i++ {
		e.Spawn("p", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > 1 {
				violations++
			}
			p.Hold(3)
			inside--
			sem.Release()
		})
	}
	e.Run()
	if violations != 0 {
		t.Errorf("%d mutual-exclusion violations", violations)
	}
	if e.Now() != 15 {
		t.Errorf("5 serialized critical sections of 3: clock %v, want 15", e.Now())
	}
	if sem.Acquisitions() != 5 {
		t.Errorf("acquisitions = %d", sem.Acquisitions())
	}
}

func TestSemaphoreCountingParallelism(t *testing.T) {
	e := NewEngine()
	sem := e.NewSemaphore("pool", 2)
	var finished []Time
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *Proc) {
			sem.Acquire(p)
			p.Hold(10)
			sem.Release()
			finished = append(finished, p.Now())
		})
	}
	e.Run()
	// Two permits: pairs finish at 10 and 20.
	want := []Time{10, 10, 20, 20}
	for i, w := range want {
		if finished[i] != w {
			t.Fatalf("finish times %v, want %v", finished, want)
		}
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	e := NewEngine()
	sem := e.NewSemaphore("s", 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Hold(Time(i)) // arrival order 0,1,2
			sem.Acquire(p)
			order = append(order, i)
		})
	}
	e.Spawn("releaser", func(p *Proc) {
		p.Hold(10)
		for i := 0; i < 3; i++ {
			sem.Release()
			p.Hold(1)
		}
	})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := e.NewSemaphore("s", 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	sem.Release()
	if sem.Available() != 1 {
		t.Errorf("available = %d", sem.Available())
	}
	if sem.Name() != "s" {
		t.Errorf("name = %q", sem.Name())
	}
}

func TestSemaphoreNegativeInitialPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative initial count should panic")
		}
	}()
	e.NewSemaphore("bad", -1)
}

func TestSemaphoreWaitingCount(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sem := e.NewSemaphore("s", 0)
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) { sem.Acquire(p) })
	}
	e.Run()
	if sem.Waiting() != 3 {
		t.Errorf("waiting = %d, want 3", sem.Waiting())
	}
}

func TestServerQueueLengthStats(t *testing.T) {
	e := NewEngine()
	s := e.NewPreemptiveServer("cpu")
	// Occupant 0..10; three arrivals at t=0 queue behind it, draining one
	// every 10: queue length 3 on [0,10), 2 on [10,20), 1 on [20,30), 0 after.
	for i := 0; i < 4; i++ {
		e.Spawn("c", func(p *Proc) {
			s.Use(p, 10, 0)
		})
	}
	e.Run()
	// Mean over [0,40): (3+2+1+0)*10/40 = 1.5.
	if got := s.MeanQueueLen(); got < 1.45 || got > 1.55 {
		t.Errorf("mean queue length %v, want 1.5", got)
	}
	if s.MaxQueueLen() != 3 {
		t.Errorf("max queue length %d, want 3", s.MaxQueueLen())
	}
}
