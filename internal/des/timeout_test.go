package des

import "testing"

func TestRecvTimeoutGetsMessageInTime(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	var got any
	var ok bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		got, ok = mb.RecvTimeout(p, 10)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Hold(4)
		mb.Send("hello")
	})
	e.Run()
	if !ok || got != "hello" {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	if at != 4 {
		t.Errorf("received at %v, want 4", at)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	var ok bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		_, ok = mb.RecvTimeout(p, 7)
		at = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("should have timed out")
	}
	if at != 7 {
		t.Errorf("timed out at %v, want 7", at)
	}
	if len(mb.waiters) != 0 {
		t.Error("timed-out receiver leaked in waiter list")
	}
}

func TestRecvTimeoutImmediateMessage(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	mb.Send(42)
	var got any
	e.Spawn("recv", func(p *Proc) {
		got, _ = mb.RecvTimeout(p, 5)
		if p.Now() != 0 {
			t.Errorf("queued message should cost no time, now=%v", p.Now())
		}
	})
	e.Run()
	if got != 42 {
		t.Errorf("got %v", got)
	}
}

func TestRecvTimeoutZeroDuration(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	var ok bool
	e.Spawn("recv", func(p *Proc) {
		_, ok = mb.RecvTimeout(p, 0)
	})
	e.Run()
	if ok {
		t.Error("zero timeout with empty queue should fail immediately")
	}
}

// TestRecvTimeoutSimultaneousSendAndTimeout exercises the stale-wake path:
// a message sent at exactly the deadline instant. Whichever event fires
// first, the process must end up with the message exactly once and the
// engine must not deadlock on the duplicate wake.
func TestRecvTimeoutSimultaneousSendAndTimeout(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	var got any
	var ok bool
	e.Spawn("recv", func(p *Proc) {
		got, ok = mb.RecvTimeout(p, 5)
	})
	e.Spawn("send", func(p *Proc) {
		p.Hold(5) // lands at the deadline instant
		mb.Send("photo-finish")
	})
	e.Run() // must terminate (no stuck duplicate wake)
	// Either outcome is legal at the exact instant, but the message must
	// not be lost: if the receive timed out, the message stays queued.
	if ok {
		if got != "photo-finish" {
			t.Errorf("got %v", got)
		}
		if mb.Len() != 0 {
			t.Error("message duplicated")
		}
	} else if mb.Len() != 1 {
		t.Error("message lost on timeout")
	}
}

func TestRecvTimeoutCompetingReceiver(t *testing.T) {
	// Two receivers, one message: the loser of the race must keep waiting
	// and eventually time out rather than return someone else's message.
	e := NewEngine()
	mb := e.NewMailbox("q")
	results := make(map[string]bool)
	e.Spawn("fast", func(p *Proc) {
		_, ok := mb.RecvTimeout(p, 100)
		results["fast"] = ok
	})
	e.Spawn("slow", func(p *Proc) {
		_, ok := mb.RecvTimeout(p, 20)
		results["slow"] = ok
	})
	e.Spawn("send", func(p *Proc) {
		p.Hold(10)
		mb.Send(1)
	})
	e.Run()
	// "fast" registered first, so it wins the message; "slow" times out.
	if !results["fast"] {
		t.Error("first receiver should get the message")
	}
	if results["slow"] {
		t.Error("second receiver should time out")
	}
}

func TestStaleWakeDoesNotResurrectHold(t *testing.T) {
	// A process whose pending duplicate wake fires while it is blocked in a
	// later Hold must not be woken early.
	e := NewEngine()
	mb := e.NewMailbox("q")
	var holdEnd Time
	e.Spawn("p", func(p *Proc) {
		// Timeout at t=5 and message at t=5 produce a potential duplicate.
		mb.RecvTimeout(p, 5)
		p.Hold(100) // must not be shortened by any stale wake
		holdEnd = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Hold(5)
		mb.Send(1)
	})
	e.Run()
	if holdEnd != 105 {
		t.Errorf("hold ended at %v, want 105", holdEnd)
	}
}
