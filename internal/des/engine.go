// Package des is a process-oriented discrete-event simulation engine in the
// style of CSIM (Schwetman 1986, the paper's reference [8]), which the
// original study used to validate its analysis.
//
// Model processes are goroutines that interact with simulated time through a
// *Proc handle: Hold advances the process through simulated time, Signal and
// Mailbox synchronize processes, and PreemptiveServer models a CPU serving
// prioritized customers with preemptive resume. Exactly one goroutine — the
// engine or a single process — runs at any instant; control is handed off
// through channels, so the engine is deterministic given a fixed event
// schedule and safe under the race detector.
package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is simulated time. The feasibility model is discrete time; it simply
// schedules at integral Times.
type Time = float64

// Engine owns the event calendar and the simulated clock.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	procs  map[*Proc]struct{}
	yield  chan struct{}
	// running is the process currently executing, nil when the engine is in
	// control. Used only for misuse diagnostics.
	running   *Proc
	processed uint64
	// pending counts scheduled, uncancelled, not-yet-executed events. It is
	// maintained incrementally (push / pop / Cancel) so Pending is O(1)
	// instead of an O(heap) scan.
	pending int
	closed  bool
}

// NewEngine creates an empty simulation.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return e.pending }

// event is a calendar entry: either an engine-side callback (fn) or the
// wake-up of a blocked process (proc).
type event struct {
	eng       *Engine
	t         Time
	seq       uint64
	fn        func()
	proc      *Proc
	procSeq   uint64 // the blocking episode this wake belongs to
	cancelled bool
	popped    bool // executed or skipped; no longer counted as pending
	index     int
}

// Cancel marks the event so it is skipped when its time comes. Cancelling an
// event that already fired (or was already cancelled) is a no-op, so the
// pending count never double-decrements.
func (ev *event) Cancel() {
	if ev.cancelled || ev.popped {
		return
	}
	ev.cancelled = true
	ev.eng.pending--
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq // schedule order breaks ties deterministically
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ScheduleFunc runs fn at simulated time t (>= Now). The returned event can
// be cancelled. Callbacks run in engine context and must not block.
func (e *Engine) ScheduleFunc(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	ev := &event{eng: e, t: t, seq: e.seq, fn: fn}
	e.seq++
	e.pending++
	heap.Push(&e.events, ev)
	return ev
}

// scheduleWake schedules the wake-up of p at time t.
func (e *Engine) scheduleWake(t Time, p *Proc) *event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	ev := &event{eng: e, t: t, seq: e.seq, proc: p, procSeq: p.blockSeq}
	e.seq++
	e.pending++
	heap.Push(&e.events, ev)
	return ev
}

// wakeNow schedules p to resume at the current time (after any events
// already scheduled for this instant).
func (e *Engine) wakeNow(p *Proc) *event { return e.scheduleWake(e.now, p) }

// Run executes events until the calendar is empty. Processes still blocked
// on signals, mailboxes or servers when the calendar drains simply remain
// blocked; call Close to terminate them.
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunUntil executes events with time <= horizon (any horizon < 0 means "run
// to exhaustion"). The clock is left at the last executed event's time, or
// at the horizon if it is later.
func (e *Engine) RunUntil(horizon Time) {
	if e.closed {
		panic("des: engine is closed")
	}
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.cancelled {
			next.popped = true
			heap.Pop(&e.events)
			continue
		}
		if horizon >= 0 && next.t > horizon {
			break
		}
		heap.Pop(&e.events)
		next.popped = true
		e.pending--
		e.now = next.t
		e.processed++
		if next.fn != nil {
			next.fn()
			continue
		}
		p := next.proc
		if p.terminated || !p.blocked || next.procSeq != p.blockSeq {
			continue // terminated target or stale duplicate wake
		}
		e.dispatch(p)
	}
	if horizon >= 0 && e.now < horizon {
		e.now = horizon
	}
}

// Step executes exactly one event; it reports false when the calendar is
// empty.
func (e *Engine) Step() bool {
	if e.closed {
		panic("des: engine is closed")
	}
	for e.events.Len() > 0 {
		next := heap.Pop(&e.events).(*event)
		if next.cancelled {
			next.popped = true
			continue
		}
		next.popped = true
		e.pending--
		e.now = next.t
		e.processed++
		if next.fn != nil {
			next.fn()
			return true
		}
		if next.proc.terminated || !next.proc.blocked || next.procSeq != next.proc.blockSeq {
			continue
		}
		e.dispatch(next.proc)
		return true
	}
	return false
}

// dispatch hands control to p and blocks until p yields back.
func (e *Engine) dispatch(p *Proc) {
	e.running = p
	p.wake <- wakeRun
	<-e.yield
	e.running = nil
}

// Live returns the number of processes that have been spawned and have not
// yet terminated.
func (e *Engine) Live() int { return len(e.procs) }

// Close terminates every live process by unwinding its goroutine, then marks
// the engine unusable. It is safe to call after Run/RunUntil; it must not be
// called from inside a process.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	if e.running != nil {
		panic("des: Close called from inside a process")
	}
	e.closed = true
	for p := range e.procs {
		if p.started && !p.terminated && p.blocked {
			e.running = p
			p.wake <- wakeKill
			<-e.yield
			e.running = nil
		}
		delete(e.procs, p)
	}
}

// errKilled unwinds a process goroutine during Close.
var errKilled = errors.New("des: process killed")
