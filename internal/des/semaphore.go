package des

import "fmt"

// Semaphore is a counting semaphore with FIFO waiters — the remaining CSIM
// synchronization primitive, used for mutual exclusion and bounded
// resources that do not need the preemptive service of PreemptiveServer.
type Semaphore struct {
	eng     *Engine
	name    string
	count   int
	waiters []*Proc
	acqs    uint64
}

// NewSemaphore creates a semaphore with the given initial count (permits).
func (e *Engine) NewSemaphore(name string, initial int) *Semaphore {
	if initial < 0 {
		panic(fmt.Sprintf("des: semaphore %q initial count %d < 0", name, initial))
	}
	return &Semaphore{eng: e, name: name, count: initial}
}

// Acquire takes one permit, blocking p until one is available. Waiters are
// served FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 {
		s.count--
		s.acqs++
		return
	}
	s.waiters = append(s.waiters, p)
	p.block()
	// The releaser transferred its permit directly to us.
	s.acqs++
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.count > 0 {
		s.count--
		s.acqs++
		return true
	}
	return false
}

// Release returns one permit, waking the oldest waiter if any. It may be
// called from processes or engine callbacks.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.wakeNow(w)
		return // permit handed to the waiter, count unchanged (still 0)
	}
	s.count++
}

// Available returns the current permit count.
func (s *Semaphore) Available() int { return s.count }

// Waiting returns the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// Acquisitions returns the total number of successful acquires.
func (s *Semaphore) Acquisitions() uint64 { return s.acqs }

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }
