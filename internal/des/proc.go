package des

import "fmt"

type wakeKind int

const (
	wakeRun wakeKind = iota
	wakeKill
)

// Proc is the handle a model process uses to interact with simulated time.
// It is only valid inside the goroutine started by Spawn.
type Proc struct {
	eng        *Engine
	name       string
	wake       chan wakeKind
	started    bool
	terminated bool
	// blocked is true while the process waits for a wake-up; blockSeq
	// counts completed blocking episodes. A wake event records the episode
	// it was created in, and the engine discards wakes from past episodes:
	// they are stale duplicates (e.g. a timed receive woken by both the
	// message and the timeout, where the loser event must not disturb a
	// later Hold at the same timestamp).
	blocked  bool
	blockSeq uint64
}

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process that will begin executing body at the current
// simulated time (after events already scheduled for this instant).
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt creates a process that will begin executing body at time t.
func (e *Engine) SpawnAt(t Time, name string, body func(p *Proc)) *Proc {
	if e.closed {
		panic("des: engine is closed")
	}
	p := &Proc{eng: e, name: name, wake: make(chan wakeKind), blocked: true}
	e.procs[p] = struct{}{}
	go p.run(body)
	p.started = true
	e.scheduleWake(t, p)
	return p
}

// run is the goroutine wrapper: it waits for the first wake, executes the
// body, and hands control back to the engine on termination. A kill during
// Close unwinds the body via panic(errKilled).
func (p *Proc) run(body func(p *Proc)) {
	kind := <-p.wake
	p.blocked = false
	p.blockSeq++
	if kind == wakeKill {
		p.terminated = true
		p.eng.yield <- struct{}{}
		return
	}
	defer func() {
		r := recover()
		p.terminated = true
		if r != nil && r != errKilled {
			// Real model bug: surface it in the engine goroutine by
			// re-panicking there would be complex; fail loudly here instead.
			panic(r)
		}
		if r == errKilled {
			p.eng.yield <- struct{}{}
			return
		}
		delete(p.eng.procs, p)
		p.eng.yield <- struct{}{}
	}()
	body(p)
}

// block yields control to the engine and sleeps until some event wakes this
// process. Every wake-up must have been scheduled before calling block.
func (p *Proc) block() {
	if p.eng.running != p {
		panic(fmt.Sprintf("des: process %q blocking while not running", p.name))
	}
	p.blocked = true
	p.eng.yield <- struct{}{}
	kind := <-p.wake
	p.blocked = false
	p.blockSeq++
	if kind == wakeKill {
		panic(errKilled)
	}
}

// Hold advances the process by d units of simulated time.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative hold %v in %q", d, p.name))
	}
	p.eng.scheduleWake(p.eng.now+d, p)
	p.block()
}

// Yield relinquishes control until all other events scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Hold(0) }

// Signal is a broadcast condition: processes Wait on it, Fire releases all
// current waiters at the current simulated time.
type Signal struct {
	eng     *Engine
	name    string
	waiters []*Proc
	fires   uint64
}

// NewSignal creates a named signal.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block()
}

// Fire releases every current waiter. Waiters that arrive after Fire wait
// for the next one.
func (s *Signal) Fire() {
	s.fires++
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.eng.wakeNow(w)
	}
}

// Waiting returns the number of processes currently blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Fires returns how many times the signal has fired.
func (s *Signal) Fires() uint64 { return s.fires }

// Mailbox is an unbounded FIFO message queue with blocking receive, the
// des-level analogue of CSIM mailboxes.
type Mailbox struct {
	eng     *Engine
	name    string
	q       []any
	waiters []*Proc
	sent    uint64
}

// NewMailbox creates a named mailbox.
func (e *Engine) NewMailbox(name string) *Mailbox {
	return &Mailbox{eng: e, name: name}
}

// Send enqueues v and wakes one waiting receiver, if any. Send never blocks
// and may be called from engine callbacks as well as processes.
func (m *Mailbox) Send(v any) {
	m.sent++
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.eng.wakeNow(w)
	}
}

// Recv dequeues the oldest message, blocking p until one is available.
func (m *Mailbox) Recv(p *Proc) any {
	for len(m.q) == 0 {
		m.waiters = append(m.waiters, p)
		p.block()
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v
}

// TryRecv dequeues a message if one is present.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// RecvTimeout dequeues the oldest message, waiting at most d units of
// simulated time. It reports ok=false on timeout. A process woken by both
// the message and the timeout in the same instant receives the message:
// the duplicate wake-up is discarded by the engine's stale-wake check.
func (m *Mailbox) RecvTimeout(p *Proc, d Time) (any, bool) {
	if v, ok := m.TryRecv(); ok {
		return v, true
	}
	if d <= 0 {
		return nil, false
	}
	deadline := m.eng.now + d
	for {
		m.waiters = append(m.waiters, p)
		timeout := m.eng.scheduleWake(deadline, p)
		p.block()
		timeout.Cancel()
		if v, ok := m.TryRecv(); ok {
			m.removeWaiter(p)
			return v, true
		}
		m.removeWaiter(p)
		if m.eng.now >= deadline {
			return nil, false
		}
		// Woken by a message another receiver consumed first; keep waiting.
	}
}

// removeWaiter drops p from the waiter list if still present.
func (m *Mailbox) removeWaiter(p *Proc) {
	for i, w := range m.waiters {
		if w == p {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// Len is the number of queued messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Sent is the total number of messages ever sent.
func (m *Mailbox) Sent() uint64 { return m.sent }
