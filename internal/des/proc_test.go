package des

import (
	"testing"
)

func TestSignalReleasesAllWaiters(t *testing.T) {
	e := NewEngine()
	sig := e.NewSignal("go")
	released := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			released++
			if p.Now() != 9 {
				t.Errorf("waiter released at %v, want 9", p.Now())
			}
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Hold(9)
		if sig.Waiting() != 4 {
			t.Errorf("Waiting = %d, want 4", sig.Waiting())
		}
		sig.Fire()
	})
	e.Run()
	if released != 4 {
		t.Errorf("released = %d, want 4", released)
	}
	if sig.Fires() != 1 {
		t.Errorf("Fires = %d", sig.Fires())
	}
}

func TestSignalLateWaiterNeedsNextFire(t *testing.T) {
	e := NewEngine()
	sig := e.NewSignal("gate")
	var events []string
	e.Spawn("early", func(p *Proc) {
		sig.Wait(p)
		events = append(events, "early")
	})
	e.Spawn("ctrl", func(p *Proc) {
		p.Hold(1)
		sig.Fire()
		p.Hold(1)
		sig.Fire()
	})
	e.Spawn("late", func(p *Proc) {
		p.Hold(1.5) // after the first fire
		sig.Wait(p)
		events = append(events, "late")
	})
	e.Run()
	if len(events) != 2 || events[0] != "early" || events[1] != "late" {
		t.Errorf("events = %v", events)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Hold(1)
			mb.Send(i)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("messages out of order: %v", got)
		}
	}
	if mb.Sent() != 5 {
		t.Errorf("Sent = %d", mb.Sent())
	}
}

func TestMailboxBufferedBeforeReceive(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	mb.Send("a")
	mb.Send("b")
	if mb.Len() != 2 {
		t.Fatalf("Len = %d", mb.Len())
	}
	var got []string
	e.Spawn("recv", func(p *Proc) {
		got = append(got, mb.Recv(p).(string))
		got = append(got, mb.Recv(p).(string))
	})
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("got %v", got)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	if _, ok := mb.TryRecv(); ok {
		t.Error("TryRecv on empty should fail")
	}
	mb.Send(7)
	v, ok := mb.TryRecv()
	if !ok || v.(int) != 7 {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
	if mb.Len() != 0 {
		t.Error("TryRecv should consume")
	}
}

func TestMailboxMultipleReceiversEachGetOne(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("q")
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("recv", func(p *Proc) {
			mb.Recv(p)
			counts[i]++
		})
	}
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Hold(1)
			mb.Send(i)
		}
	})
	e.Run()
	for i, c := range counts {
		if c != 1 {
			t.Errorf("receiver %d got %d messages", i, c)
		}
	}
}

func TestYieldOrdersWithinInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Yield()
		order = append(order, "a-after-yield")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a-after-yield" {
		t.Errorf("order = %v", order)
	}
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine()
	e.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine accessor wrong")
		}
	})
	e.Run()
}

func TestSpawnOnClosedEnginePanics(t *testing.T) {
	e := NewEngine()
	e.Close()
	defer func() {
		if recover() == nil {
			t.Error("Spawn on closed engine should panic")
		}
	}()
	e.Spawn("p", func(*Proc) {})
}
