package des

import (
	"fmt"
	"sort"

	"feasim/internal/stats"
)

// PreemptiveServer is a single CPU serving prioritized customers under
// preemptive resume: a higher-priority arrival immediately suspends the
// customer in service; the suspended customer later resumes with its
// remaining demand intact. Within a priority class, service is FIFO by
// arrival. This is the workstation of the paper's model — owner processes
// run at a higher priority than parallel tasks and preempt them on arrival.
type PreemptiveServer struct {
	eng  *Engine
	name string

	occupant *request
	queue    []*request // waiting requests, kept sorted by (prio desc, seq asc)

	// busyBy accumulates service time delivered to each priority class.
	busyBy     map[int]Time
	preemptCnt uint64
	servedCnt  uint64
	createdAt  Time
	// qlen tracks the time-weighted number of waiting (not in service)
	// requests.
	qlen stats.TimeWeighted
}

type request struct {
	proc       *Proc
	prio       int
	remaining  Time
	seq        uint64 // arrival order, preserved across preemptions
	done       bool
	startedAt  Time
	completion *event
}

// NewPreemptiveServer creates a named server on e.
func (e *Engine) NewPreemptiveServer(name string) *PreemptiveServer {
	srv := &PreemptiveServer{
		eng:       e,
		name:      name,
		busyBy:    make(map[int]Time),
		createdAt: e.now,
	}
	srv.qlen.Observe(e.now, 0)
	return srv
}

// Name returns the server's name.
func (s *PreemptiveServer) Name() string { return s.name }

// Use consumes demand units of service at the given priority (larger is more
// important), blocking p until the service completes. The call may stretch
// far beyond demand when higher-priority customers preempt.
func (s *PreemptiveServer) Use(p *Proc, demand Time, prio int) {
	if demand < 0 {
		panic(fmt.Sprintf("des: negative service demand %v on %q", demand, s.name))
	}
	if demand == 0 {
		return
	}
	req := &request{proc: p, prio: prio, remaining: demand, seq: s.eng.seq}
	s.eng.seq++
	s.arrive(req)
	for !req.done {
		p.block()
	}
}

func (s *PreemptiveServer) arrive(req *request) {
	if s.occupant == nil {
		s.begin(req)
		return
	}
	if req.prio > s.occupant.prio {
		s.suspendOccupant()
		s.begin(req)
		return
	}
	s.enqueue(req)
}

// begin puts req into service and schedules its completion.
func (s *PreemptiveServer) begin(req *request) {
	s.occupant = req
	req.startedAt = s.eng.now
	req.completion = s.eng.ScheduleFunc(s.eng.now+req.remaining, func() {
		s.complete(req)
	})
}

// suspendOccupant preempts the customer in service, crediting the service it
// already received and returning it to the queue with its remaining demand.
func (s *PreemptiveServer) suspendOccupant() {
	occ := s.occupant
	s.occupant = nil
	occ.completion.Cancel()
	occ.completion = nil
	served := s.eng.now - occ.startedAt
	occ.remaining -= served
	s.busyBy[occ.prio] += served
	s.preemptCnt++
	if occ.remaining < 0 {
		occ.remaining = 0 // float guard; cannot go negative in exact arithmetic
	}
	s.enqueue(occ)
}

func (s *PreemptiveServer) enqueue(req *request) {
	defer s.observeQueue()
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.prio != req.prio {
			return q.prio < req.prio
		}
		return q.seq > req.seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = req
}

// complete finishes the occupant's service, wakes its process, and starts
// the next queued request.
func (s *PreemptiveServer) complete(req *request) {
	if s.occupant != req {
		panic("des: completion for a request not in service")
	}
	s.occupant = nil
	s.busyBy[req.prio] += s.eng.now - req.startedAt
	req.remaining = 0
	req.done = true
	req.completion = nil
	s.servedCnt++
	s.eng.wakeNow(req.proc)
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.observeQueue()
		s.begin(next)
	}
}

// observeQueue records the current queue length for time-weighted stats.
func (s *PreemptiveServer) observeQueue() {
	s.qlen.Observe(s.eng.now, float64(len(s.queue)))
}

// MeanQueueLen returns the time-average number of waiting requests since
// the server was created.
func (s *PreemptiveServer) MeanQueueLen() float64 {
	if !s.qlen.Started() {
		return 0
	}
	return s.qlen.Mean(s.eng.now)
}

// MaxQueueLen returns the largest observed queue length.
func (s *PreemptiveServer) MaxQueueLen() int { return int(s.qlen.Max()) }

// Busy reports whether a customer is in service.
func (s *PreemptiveServer) Busy() bool { return s.occupant != nil }

// QueueLen is the number of waiting (not in service) requests.
func (s *PreemptiveServer) QueueLen() int { return len(s.queue) }

// Preemptions is the number of preemptions so far.
func (s *PreemptiveServer) Preemptions() uint64 { return s.preemptCnt }

// Served is the number of completed service requests.
func (s *PreemptiveServer) Served() uint64 { return s.servedCnt }

// BusyTime returns the cumulative service delivered to the given priority
// class, including the in-progress slice of the current occupant.
func (s *PreemptiveServer) BusyTime(prio int) Time {
	t := s.busyBy[prio]
	if s.occupant != nil && s.occupant.prio == prio {
		t += s.eng.now - s.occupant.startedAt
	}
	return t
}

// TotalBusyTime returns cumulative service over all priorities.
func (s *PreemptiveServer) TotalBusyTime() Time {
	var t Time
	for prio := range s.busyBy {
		t += s.busyBy[prio]
	}
	if s.occupant != nil {
		t += s.eng.now - s.occupant.startedAt
	}
	return t
}

// Utilization returns the busy fraction of the given priority class since
// the server was created.
func (s *PreemptiveServer) Utilization(prio int) float64 {
	horizon := s.eng.now - s.createdAt
	if horizon <= 0 {
		return 0
	}
	return s.BusyTime(prio) / horizon
}
