package experiment

import (
	"fmt"

	"feasim/internal/core"
	"feasim/internal/plot"
	"feasim/internal/sim"
)

// simValidation reproduces Section 2.2: "We duplicated the experiment found
// in figure 1 of this paper and the simulation results were identical to
// the analysis thus verifying the correctness of analysis code." It
// simulates Figure 1's speedup curves with the exact discrete-time
// simulator under the paper's batch-means protocol and overlays them on the
// analysis. Checks require every simulated point's CI to cover the analytic
// value.
func simValidation() Definition {
	return Definition{
		ID:    "simval",
		Paper: "Section 2.2: simulation validation of the analysis (Figure 1 duplicated)",
		Workload: "exact discrete-time simulator, J=1000, O=10, utils {1,20}%, batch means " +
			"(paper protocol: 20 batches x 1000 samples, 90% CI)",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			fig := plot.Figure{
				ID:     "simval",
				Title:  "Simulation vs Analysis (Figure 1 duplicated)",
				XLabel: "Number of Processors",
				YLabel: "Speedup",
			}
			var checks []Check
			covered, points := 0, 0
			seed := cfg.Seed
			for _, util := range []float64{0.01, 0.2} {
				ana := plot.Series{Name: fmt.Sprintf("analysis util=%g", util)}
				simu := plot.Series{Name: fmt.Sprintf("simulation util=%g", util)}
				for _, w := range cfg.ValidationWs {
					p, err := core.ParamsFromUtilization(1000, w, paperO, util)
					if err != nil {
						return Output{}, err
					}
					if t := p.TaskDemand(); t != float64(int(t)) {
						continue // exact simulator needs integral T
					}
					r, err := core.Analyze(p)
					if err != nil {
						return Output{}, err
					}
					x, err := sim.NewExact(p, seed)
					if err != nil {
						return Output{}, err
					}
					seed++
					run, err := sim.RunExact(x, cfg.Protocol)
					if err != nil {
						return Output{}, err
					}
					ana.X = append(ana.X, float64(w))
					ana.Y = append(ana.Y, r.Speedup)
					simu.X = append(simu.X, float64(w))
					simu.Y = append(simu.Y, p.J/run.JobTime.Mean)
					points++
					// Widen by 3x to absorb expected CI misses across the
					// sweep at the 90% level.
					ci := run.JobTime
					ci.HalfWidth *= 3
					if ci.Contains(r.EJob) {
						covered++
					}
				}
				fig.Series = append(fig.Series, ana, simu)
			}
			checks = append(checks, Check{
				Name:  "simulated points whose CI covers the analysis (fraction)",
				Paper: 1.0, Got: float64(covered) / float64(points), AbsTol: 0.05,
			})
			return Output{
				Figure: &fig,
				Checks: checks,
				Notes:  fmt.Sprintf("%d/%d points covered; the paper reports simulation 'identical to the analysis'", covered, points),
			}, nil
		},
	}
}

// thresholdTable reproduces the conclusions' headline numbers: the task
// ratio needed for 80% weighted efficiency at 5/10/20% utilization.
func thresholdTable() Definition {
	return Definition{
		ID:    "thresholds",
		Paper: "Conclusions: task ratio needed for 80% of possible speedup (8 @5%, 13 @10%, 20 @20%)",
		Workload: "threshold solve on the analytic model at W=60 (the Figure 7 system), O=10, " +
			"target weighted efficiency 0.8",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			utils := []float64{0.05, 0.1, 0.2}
			rows, err := core.ThresholdTable(60, paperO, 0.8, utils)
			if err != nil {
				return Output{}, err
			}
			paperRatios := map[float64]float64{0.05: 8, 0.1: 13, 0.2: 20}
			tbl := plot.Table{
				ID:      "thresholds",
				Title:   "Minimum task ratio for 80% weighted efficiency (W=60, O=10)",
				Columns: []string{"owner utilization", "paper (read off Fig 7)", "exact solve", "achieved weff"},
			}
			var checks []Check
			for _, row := range rows {
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprintf("%.0f%%", row.Util*100),
					fmt.Sprintf("%.0f", paperRatios[row.Util]),
					fmt.Sprintf("%d", row.MinRatio),
					fmt.Sprintf("%.3f", row.WeightedEff),
				})
				checks = append(checks, Check{
					Name:  fmt.Sprintf("min task ratio at util %g%%", row.Util*100),
					Paper: paperRatios[row.Util],
					Got:   float64(row.MinRatio),
					// The paper read these off Figure 7; allow 2 ratio units.
					AbsTol: 2,
				})
			}
			return Output{Table: &tbl, Checks: checks}, nil
		},
	}
}
