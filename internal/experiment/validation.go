package experiment

import (
	"context"
	"fmt"

	"feasim/internal/plot"
	"feasim/internal/solve"
)

// simValidation reproduces Section 2.2: "We duplicated the experiment found
// in figure 1 of this paper and the simulation results were identical to
// the analysis thus verifying the correctness of analysis code." It fans
// Figure 1's speedup curves across the solve package's sweep engine —
// analytic and exact-simulation backends answer the same scenario grid in
// parallel — and overlays the two. Checks require every simulated point's
// CI to cover the analytic value.
func simValidation() Definition {
	return Definition{
		ID:    "simval",
		Paper: "Section 2.2: simulation validation of the analysis (Figure 1 duplicated)",
		Workload: "analytic + exact backends over one scenario grid, J=1000, O=10, utils {1,20}%, " +
			"batch means (paper protocol: 20 batches x 1000 samples, 90% CI)",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			// The exact simulator needs integral task demand; drop the other
			// system sizes exactly as the paper's figure sampling does.
			var ws []int
			for _, w := range cfg.ValidationWs {
				if t := 1000 / float64(w); t == float64(int(t)) {
					ws = append(ws, w)
				}
			}
			utils := []float64{0.01, 0.2}
			pr := cfg.Protocol
			spec := solve.SweepSpec{
				Base:     solve.Scenario{Name: "simval", J: 1000, O: paperO},
				W:        ws,
				Util:     utils,
				Backends: []string{solve.BackendAnalytic, solve.BackendExact},
				Seed:     cfg.Seed,
				Protocol: &pr,
			}
			results, err := solve.Collect(context.Background(), spec)
			if err != nil {
				return Output{}, err
			}
			type key struct {
				backend string
				w       int
				util    float64
			}
			byKey := make(map[key]solve.Report, len(results))
			for _, res := range results {
				if res.Err != nil {
					return Output{}, fmt.Errorf("experiment: simval point %d: %w", res.Point.Index, res.Err)
				}
				s := res.Point.Scenario
				byKey[key{res.Point.Backend, s.W, s.Util}] = res.Report
			}
			fig := plot.Figure{
				ID:     "simval",
				Title:  "Simulation vs Analysis (Figure 1 duplicated)",
				XLabel: "Number of Processors",
				YLabel: "Speedup",
			}
			covered, points := 0, 0
			for _, util := range utils {
				ana := plot.Series{Name: fmt.Sprintf("analysis util=%g", util)}
				simu := plot.Series{Name: fmt.Sprintf("simulation util=%g", util)}
				for _, w := range ws {
					a, okA := byKey[key{solve.BackendAnalytic, w, util}]
					x, okX := byKey[key{solve.BackendExact, w, util}]
					if !okA || !okX {
						return Output{}, fmt.Errorf("experiment: simval missing grid point W=%d util=%g", w, util)
					}
					ana.X = append(ana.X, float64(w))
					ana.Y = append(ana.Y, a.Speedup)
					simu.X = append(simu.X, float64(w))
					simu.Y = append(simu.Y, x.Speedup)
					points++
					// Widen by 3x to absorb expected CI misses across the
					// sweep at the 90% level.
					if x.EJobCI.Widen(2).Contains(a.EJob) {
						covered++
					}
				}
				fig.Series = append(fig.Series, ana, simu)
			}
			checks := []Check{{
				Name:  "simulated points whose CI covers the analysis (fraction)",
				Paper: 1.0, Got: float64(covered) / float64(points), AbsTol: 0.05,
			}}
			return Output{
				Figure: &fig,
				Checks: checks,
				Notes:  fmt.Sprintf("%d/%d points covered; the paper reports simulation 'identical to the analysis'", covered, points),
			}, nil
		},
	}
}

// thresholdTable reproduces the conclusions' headline numbers: the task
// ratio needed for 80% weighted efficiency at 5/10/20% utilization. It is
// the first cross-backend consumer of the typed query API: one
// ThresholdQuery per utilization fanned over the query sweep engine for the
// analytic column, plus an empirical (exact-simulation bisection) answer at
// 10% utilization cross-checking the analytic threshold.
func thresholdTable() Definition {
	return Definition{
		ID:    "thresholds",
		Paper: "Conclusions: task ratio needed for 80% of possible speedup (8 @5%, 13 @10%, 20 @20%)",
		Workload: "threshold queries at W=60 (the Figure 7 system), O=10, target weighted efficiency 0.8: " +
			"analytic at 5/10/20% utilization, exact-sim bisection at 10%",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			utils := []float64{0.05, 0.1, 0.2}
			results, err := solve.CollectQueries(context.Background(), solve.QuerySweepSpec{
				Base: solve.ThresholdQuery{W: 60, O: paperO, TargetEff: 0.8},
				Util: utils,
				Seed: cfg.Seed,
			})
			if err != nil {
				return Output{}, err
			}
			// The empirical column: the exact-sim backend bisects the same
			// question at 10% utilization under the configured protocol.
			pr := cfg.Protocol
			empirical, err := solve.ExactSim{Protocol: pr}.Answer(context.Background(),
				solve.ThresholdQuery{W: 60, O: paperO, Util: 0.1, TargetEff: 0.8, Seed: cfg.Seed})
			if err != nil {
				return Output{}, err
			}
			emp := empirical.(solve.ThresholdAnswer)
			paperRatios := map[float64]float64{0.05: 8, 0.1: 13, 0.2: 20}
			tbl := plot.Table{
				ID:      "thresholds",
				Title:   "Minimum task ratio for 80% weighted efficiency (W=60, O=10)",
				Columns: []string{"owner utilization", "paper (read off Fig 7)", "exact solve", "achieved weff", "empirical (exact-sim)"},
			}
			var checks []Check
			var anaAt10 int
			for i, res := range results {
				if res.Err != nil {
					return Output{}, fmt.Errorf("experiment: threshold query at util %g: %w", utils[i], res.Err)
				}
				row := res.Answer.(solve.ThresholdAnswer)
				util := utils[i]
				empCol := ""
				if util == 0.1 {
					anaAt10 = row.MinRatio
					empCol = fmt.Sprintf("%d (%d probes)", emp.MinRatio, emp.Probes)
				}
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprintf("%.0f%%", util*100),
					fmt.Sprintf("%.0f", paperRatios[util]),
					fmt.Sprintf("%d", row.MinRatio),
					fmt.Sprintf("%.3f", row.AchievedWeff),
					empCol,
				})
				checks = append(checks, Check{
					Name:  fmt.Sprintf("min task ratio at util %g%%", util*100),
					Paper: paperRatios[util],
					Got:   float64(row.MinRatio),
					// The paper read these off Figure 7; allow 2 ratio units.
					AbsTol: 2,
				})
			}
			checks = append(checks, Check{
				Name:  "empirical (exact-sim) threshold vs analytic at util 10%",
				Paper: float64(anaAt10),
				Got:   float64(emp.MinRatio),
				// Simulation noise can flip a knife-edge boundary by a step.
				AbsTol: 1,
			})
			return Output{
				Table:  &tbl,
				Checks: checks,
				Notes: fmt.Sprintf("empirical bisection: %d probes, %d simulated jobs, boundary weff %.3f",
					emp.Probes, emp.Samples, emp.AchievedWeff),
			}, nil
		},
	}
}
