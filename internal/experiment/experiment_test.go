package experiment

import (
	"strings"
	"testing"

	"feasim/internal/plot"
)

func TestAllDefinitionsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if d.ID == "" || d.Paper == "" || d.Workload == "" || d.Run == nil {
			t.Errorf("definition %q incomplete", d.ID)
		}
		if seen[d.ID] {
			t.Errorf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
	}
	// Every paper artifact is present (11 figures + validation + table)
	// plus the three extension studies.
	if len(All()) != 16 {
		t.Errorf("expected 16 experiments, got %d", len(All()))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig07"); !ok {
		t.Error("fig07 should exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs() length mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := TestConfig().Validate(); err != nil {
		t.Errorf("test config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("Runs=0 should fail")
	}
	bad2 := DefaultConfig()
	bad2.WStep = 0
	if err := bad2.Validate(); err == nil {
		t.Error("WStep=0 should fail")
	}
	bad3 := DefaultConfig()
	bad3.ValidationWs = nil
	if err := bad3.Validate(); err == nil {
		t.Error("empty ValidationWs should fail")
	}
}

func TestCheckPass(t *testing.T) {
	if !(Check{Paper: 10, Got: 10.4, AbsTol: 0.5}).Pass() {
		t.Error("within abs tolerance should pass")
	}
	if (Check{Paper: 10, Got: 10.6, AbsTol: 0.5}).Pass() {
		t.Error("outside abs tolerance should fail")
	}
	if !(Check{Paper: 100, Got: 104, RelTol: 0.05}).Pass() {
		t.Error("within rel tolerance should pass")
	}
	c := Check{Name: "x", Paper: 1, Got: 2}
	if !strings.Contains(c.String(), "MISS") {
		t.Error("failing check should render MISS")
	}
}

// TestEveryExperimentRunsAndPasses executes all 15 experiments with the
// scaled-down test configuration and requires every paper check to pass and
// every figure/table to be well-formed.
func TestEveryExperimentRunsAndPasses(t *testing.T) {
	cfg := TestConfig()
	for _, d := range All() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			out, err := d.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", d.ID, err)
			}
			if out.Figure == nil && out.Table == nil {
				t.Fatalf("%s produced neither figure nor table", d.ID)
			}
			if out.Figure != nil {
				if err := out.Figure.Validate(); err != nil {
					t.Fatalf("%s figure invalid: %v", d.ID, err)
				}
				if _, err := plot.RenderASCII(*out.Figure, 72, 20); err != nil {
					t.Fatalf("%s does not render: %v", d.ID, err)
				}
				if _, err := plot.CSV(*out.Figure); err != nil {
					t.Fatalf("%s CSV failed: %v", d.ID, err)
				}
			}
			if out.Table != nil && len(out.Table.Rows) == 0 {
				t.Fatalf("%s table empty", d.ID)
			}
			for _, c := range out.Checks {
				if !c.Pass() {
					t.Errorf("%s: %s", d.ID, c)
				}
			}
		})
	}
}

func TestFigureSeriesCounts(t *testing.T) {
	cfg := TestConfig()
	wantSeries := map[string]int{
		"fig01": 5,  // perfect + 4 utils
		"fig02": 4,  // 4 utils
		"fig03": 5,  // perfect + 4
		"fig04": 4,  // 4
		"fig07": 4,  // 4 utils
		"fig08": 6,  // 6 system sizes
		"fig09": 4,  // 4 utils
		"fig10": 10, // 5 demands x (measured, analytic)
		"fig11": 6,  // perfect + 5 demands
	}
	for id, want := range wantSeries {
		d, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := d.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := len(out.Figure.Series); got != want {
			t.Errorf("%s: %d series, want %d", id, got, want)
		}
	}
}

func TestRunAllAndMarkdownReport(t *testing.T) {
	results := RunAll(TestConfig())
	if len(results) != len(All()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s errored: %v", r.ID, r.Err)
		}
	}
	if fails := FailedChecks(results); len(fails) != 0 {
		for _, c := range fails {
			t.Errorf("failed check: %s", c)
		}
	}
	md := MarkdownReport(results)
	for _, id := range IDs() {
		if !strings.Contains(md, id) {
			t.Errorf("markdown report missing %s", id)
		}
	}
	if !strings.Contains(md, "| Paper | Measured |") {
		t.Error("report header malformed")
	}
}

func TestWSweepIncludesEndpoints(t *testing.T) {
	for _, step := range []int{1, 7, 50, 200} {
		ws := wSweep(step)
		if ws[0] != 1 || ws[len(ws)-1] != 100 {
			t.Errorf("step %d: sweep endpoints %d..%d", step, ws[0], ws[len(ws)-1])
		}
		for i := 1; i < len(ws); i++ {
			if ws[i] <= ws[i-1] {
				t.Errorf("step %d: sweep not strictly increasing", step)
			}
		}
	}
}
