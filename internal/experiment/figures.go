package experiment

import (
	"context"
	"fmt"

	"feasim/internal/cluster"
	"feasim/internal/core"
	"feasim/internal/plot"
	"feasim/internal/solve"
)

const paperO = 10.0 // owner burst demand used throughout the paper

// metricSelector picks one metric out of a model result.
type metricSelector struct {
	name string
	get  func(core.Result) float64
}

// fixedSizeFigure builds Figures 1-6: a metric versus number of
// workstations for the paper's four utilizations, with an optional
// "perfect" reference line.
func fixedSizeFigure(id, caption, yLabel string, j float64, sel metricSelector, perfect func(w int) float64) func(Config) (Output, error) {
	return func(cfg Config) (Output, error) {
		if err := cfg.Validate(); err != nil {
			return Output{}, err
		}
		ws := wSweep(cfg.WStep)
		fig := plot.Figure{
			ID:     id,
			Title:  caption,
			XLabel: "Number of Processors",
			YLabel: yLabel,
		}
		if perfect != nil {
			s := plot.Series{Name: "perfect"}
			for _, w := range ws {
				s.X = append(s.X, float64(w))
				s.Y = append(s.Y, perfect(w))
			}
			fig.Series = append(fig.Series, s)
		}
		for _, util := range paperUtils {
			s := plot.Series{Name: fmt.Sprintf("util = %g", util)}
			for _, w := range ws {
				p, err := core.ParamsFromUtilization(j, w, paperO, util)
				if err != nil {
					return Output{}, err
				}
				r, err := core.Analyze(p)
				if err != nil {
					return Output{}, err
				}
				s.X = append(s.X, float64(w))
				s.Y = append(s.Y, sel.get(r))
			}
			fig.Series = append(fig.Series, s)
		}
		return Output{Figure: &fig}, nil
	}
}

func analyzeAt(j float64, w int, util float64) (core.Result, error) {
	p, err := core.ParamsFromUtilization(j, w, paperO, util)
	if err != nil {
		return core.Result{}, err
	}
	return core.Analyze(p)
}

func figure01() Definition {
	run := fixedSizeFigure("fig01", "Speedup, J = 1000 units", "Speedup", 1000,
		metricSelector{"speedup", func(r core.Result) float64 { return r.Speedup }},
		func(w int) float64 { return float64(w) })
	return Definition{
		ID:       "fig01",
		Paper:    "Figure 1: Speedup, J = 1000 units",
		Workload: "J=1000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: func(cfg Config) (Output, error) {
			out, err := run(cfg)
			if err != nil {
				return out, err
			}
			// "At 100 nodes the speedup for a system with only 1% utilization
			// is only 61% of the optimal speedup, for a 20% utilization the
			// speedup is only 32.5%."
			r1, err := analyzeAt(1000, 100, 0.01)
			if err != nil {
				return out, err
			}
			r20, err := analyzeAt(1000, 100, 0.2)
			if err != nil {
				return out, err
			}
			out.Checks = append(out.Checks,
				Check{Name: "% of optimal speedup at W=100, util 1%", Paper: 61.0, Got: r1.Speedup, AbsTol: 0.5},
				Check{Name: "% of optimal speedup at W=100, util 20%", Paper: 32.5, Got: r20.Speedup, AbsTol: 0.5},
			)
			return out, nil
		},
	}
}

func figure02() Definition {
	return Definition{
		ID:       "fig02",
		Paper:    "Figure 2: Efficiency, J = 1000 units",
		Workload: "J=1000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: fixedSizeFigure("fig02", "Efficiency, J = 1000 units", "Efficiency", 1000,
			metricSelector{"efficiency", func(r core.Result) float64 { return r.Efficiency }}, nil),
	}
}

func figure03() Definition {
	return Definition{
		ID:       "fig03",
		Paper:    "Figure 3: Weighted Speedup, J = 1000 units",
		Workload: "J=1000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: fixedSizeFigure("fig03", "Weighted Speedup, J = 1000 units", "Weighted Speedup", 1000,
			metricSelector{"wspeedup", func(r core.Result) float64 { return r.WeightedSpeedup }},
			func(w int) float64 { return float64(w) }),
	}
}

func figure04() Definition {
	run := fixedSizeFigure("fig04", "Weighted Efficiency, J = 1000 units", "Weighted Efficiency", 1000,
		metricSelector{"weff", func(r core.Result) float64 { return r.WeightedEfficiency }}, nil)
	return Definition{
		ID:       "fig04",
		Paper:    "Figure 4: Weighted Efficiency, J = 1000 units",
		Workload: "J=1000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: func(cfg Config) (Output, error) {
			out, err := run(cfg)
			if err != nil {
				return out, err
			}
			// "the weighted-efficiency is still only 61.5% (41%) for a
			// utilization of 1% (20%)".
			r1, err := analyzeAt(1000, 100, 0.01)
			if err != nil {
				return out, err
			}
			r20, err := analyzeAt(1000, 100, 0.2)
			if err != nil {
				return out, err
			}
			out.Checks = append(out.Checks,
				Check{Name: "weighted efficiency at W=100, util 1%", Paper: 0.615, Got: r1.WeightedEfficiency, AbsTol: 0.01},
				Check{Name: "weighted efficiency at W=100, util 20%", Paper: 0.41, Got: r20.WeightedEfficiency, AbsTol: 0.01},
			)
			return out, nil
		},
	}
}

func figure05() Definition {
	return Definition{
		ID:       "fig05",
		Paper:    "Figure 5: Weighted Speedup, J = 10,000 units",
		Workload: "J=10000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: fixedSizeFigure("fig05", "Weighted Speedup, J = 10,000 units", "Weighted Speedup", 10000,
			metricSelector{"wspeedup", func(r core.Result) float64 { return r.WeightedSpeedup }},
			func(w int) float64 { return float64(w) }),
	}
}

func figure06() Definition {
	run := fixedSizeFigure("fig06", "Weighted Efficiency, J = 10,000 units", "Weighted Efficiency", 10000,
		metricSelector{"weff", func(r core.Result) float64 { return r.WeightedEfficiency }}, nil)
	return Definition{
		ID:       "fig06",
		Paper:    "Figure 6: Weighted Efficiency, J = 10,000 units",
		Workload: "J=10000, O=10, W=1..100, owner utilization in {1,5,10,20}%",
		Run: func(cfg Config) (Output, error) {
			out, err := run(cfg)
			if err != nil {
				return out, err
			}
			// "The weighted-speedups and weighted-efficiencies for a job
			// demand of 10K units are much higher than their counterparts":
			// encode as W=100 comparison against Figure 4.
			big, err := analyzeAt(10000, 100, 0.1)
			if err != nil {
				return out, err
			}
			small, err := analyzeAt(1000, 100, 0.1)
			if err != nil {
				return out, err
			}
			out.Notes = fmt.Sprintf("J=10K dominates J=1K at every point; e.g. weff(W=100, util 10%%): %.3f vs %.3f",
				big.WeightedEfficiency, small.WeightedEfficiency)
			out.Checks = append(out.Checks, Check{
				Name:  "weff gain J=10K over J=1K at W=100, util 10% (positive)",
				Paper: 1, Got: boolTo01(big.WeightedEfficiency > small.WeightedEfficiency),
			})
			return out, nil
		},
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func taskRatioFigure(id, caption string, w int, utils []float64, seriesName func(util float64, w int) string) func(Config) (Output, error) {
	return func(cfg Config) (Output, error) {
		if err := cfg.Validate(); err != nil {
			return Output{}, err
		}
		fig := plot.Figure{
			ID:     id,
			Title:  caption,
			XLabel: "Task Ratio",
			YLabel: "Weighted Efficiency",
		}
		for _, util := range utils {
			s := plot.Series{Name: seriesName(util, w)}
			for ratio := 1; ratio <= 60; ratio++ {
				t := float64(ratio) * paperO
				p, err := core.ParamsFromUtilization(t*float64(w), w, paperO, util)
				if err != nil {
					return Output{}, err
				}
				r, err := core.Analyze(p)
				if err != nil {
					return Output{}, err
				}
				s.X = append(s.X, float64(ratio))
				s.Y = append(s.Y, r.WeightedEfficiency)
			}
			fig.Series = append(fig.Series, s)
		}
		return Output{Figure: &fig}, nil
	}
}

func figure07() Definition {
	run := taskRatioFigure("fig07", "Effect of Task Ratio, 60 Workstations", 60, paperUtils,
		func(util float64, _ int) string { return fmt.Sprintf("util = %g", util) })
	return Definition{
		ID:       "fig07",
		Paper:    "Figure 7: Effect of Task Ratio, 60 Workstations",
		Workload: "W=60, O=10, task ratio 1..60 (T = ratio*O), owner utilization in {1,5,10,20}%",
		Run:      run,
	}
}

func figure08() Definition {
	systems := []int{2, 4, 8, 20, 60, 100}
	return Definition{
		ID:       "fig08",
		Paper:    "Figure 8: Effect of Task Ratio, Number Workstations Varied, Owner Utilization = 0.1",
		Workload: "util=10%, O=10, task ratio 1..60, W in {2,4,8,20,60,100}",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			fig := plot.Figure{
				ID:     "fig08",
				Title:  "Effect of Task Ratio, Number Workstations Varied, Owner Utilization = 0.1",
				XLabel: "Task Ratio",
				YLabel: "Weighted Efficiency",
			}
			for _, w := range systems {
				sub := taskRatioFigure("tmp", "", w, []float64{0.1},
					func(_ float64, w int) string { return fmt.Sprintf("numProc = %d", w) })
				out, err := sub(cfg)
				if err != nil {
					return Output{}, err
				}
				fig.Series = append(fig.Series, out.Figure.Series...)
			}
			// "Sensitivity to the task ratio increases with system size":
			// at ratio 10 the smallest system must beat the largest.
			small := fig.Series[0].Y[9]
			large := fig.Series[len(fig.Series)-1].Y[9]
			return Output{
				Figure: &fig,
				Checks: []Check{{
					Name:  "weff(ratio=10) higher on W=2 than W=100 (positive)",
					Paper: 1, Got: boolTo01(small > large),
				}},
			}, nil
		},
	}
}

func figure09() Definition {
	return Definition{
		ID:       "fig09",
		Paper:    "Figure 9: Effect of Scaling Problem",
		Workload: "memory-bounded scaleup: scaled queries (T=100 fixed, J=100*W, O=10, W=1..100) over a utilization axis {1,5,10,20}%",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			ws := wSweep(cfg.WStep)
			fig := plot.Figure{
				ID:     "fig09",
				Title:  "Effect of Scaling Problem",
				XLabel: "Number of Processors",
				YLabel: "Execution Time",
			}
			var checks []Check
			// The paper quotes increases of 14/30/44/71% at W=100. One
			// ScaledQuery per utilization, fanned over the query sweep.
			paperInc := map[float64]float64{0.01: 0.14, 0.05: 0.30, 0.1: 0.44, 0.2: 0.71}
			results, err := solve.CollectQueries(context.Background(), solve.QuerySweepSpec{
				Base: solve.ScaledQuery{T: 100, O: paperO, Ws: ws},
				Util: paperUtils,
				Seed: cfg.Seed,
			})
			if err != nil {
				return Output{}, err
			}
			for i, res := range results {
				util := paperUtils[i]
				if res.Err != nil {
					return Output{}, fmt.Errorf("experiment: scaled query at util %g: %w", util, res.Err)
				}
				pts := res.Answer.(solve.ScaledAnswer).Points
				s := plot.Series{Name: fmt.Sprintf("util = %g", util)}
				for _, pt := range pts {
					s.X = append(s.X, float64(pt.W))
					s.Y = append(s.Y, pt.EJob)
				}
				fig.Series = append(fig.Series, s)
				last := pts[len(pts)-1]
				checks = append(checks, Check{
					Name:  fmt.Sprintf("scaled response-time increase at W=100, util %g%%", util*100),
					Paper: paperInc[util], Got: last.IncreaseVsDedicated, AbsTol: 0.02,
				})
			}
			return Output{
				Figure: &fig,
				Checks: checks,
				Notes: "Increases measured against the dedicated baseline T=100; the paper's prose says " +
					"'one workstation with the same owner utilization' but its quoted 14/30/44/71% match the " +
					"dedicated baseline (see EXPERIMENTS.md).",
			}, nil
		},
	}
}

// elcUtil is the paper's measured owner utilization on the Sun ELCs.
const elcUtil = 0.03

// fig10Demands are the paper's problem sizes: service demand on one
// dedicated machine, in minutes.
var fig10Demands = []float64{1, 2, 4, 8, 16}

func figure10() Definition {
	return Definition{
		ID:    "fig10",
		Paper: "Figure 10: Experimental Validation: Response Time",
		Workload: "virtual Sun ELC cluster, util 3%, O=10s; fixed problem sizes of 1/2/4/8/16 dedicated " +
			"minutes; W=1..12; PVM local computation, mean max-task time over runs; plus analytic model at 3%",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			fig := plot.Figure{
				ID:     "fig10",
				Title:  "Experimental Validation: Response Time",
				XLabel: "Number of Processors",
				YLabel: "Maximum Task Execution Time (s)",
			}
			var checks []Check
			var seedOff uint64
			for _, minutes := range fig10Demands {
				demand := minutes * 60 // seconds of dedicated compute
				measured := plot.Series{Name: fmt.Sprintf("measured %g", minutes)}
				analytic := plot.Series{Name: fmt.Sprintf("analytic %g", minutes)}
				for w := 1; w <= 12; w++ {
					seedOff++
					params, err := cluster.SunELCParams(paperO, elcUtil)
					if err != nil {
						return Output{}, err
					}
					c, err := cluster.New(w, params, cfg.Seed+seedOff)
					if err != nil {
						return Output{}, err
					}
					res, err := cluster.Experiment{
						LocalComputation: cluster.LocalComputation{
							Cluster: c, Workers: w, TotalDemand: demand,
						},
						Runs: cfg.Runs,
					}.Run()
					if err != nil {
						return Output{}, err
					}
					measured.X = append(measured.X, float64(w))
					measured.Y = append(measured.Y, res.MaxTaskTime.Mean())

					p, err := core.ParamsFromUtilization(demand, w, paperO, elcUtil)
					if err != nil {
						return Output{}, err
					}
					r, err := core.Analyze(p)
					if err != nil {
						return Output{}, err
					}
					analytic.X = append(analytic.X, float64(w))
					analytic.Y = append(analytic.Y, r.EJob)
				}
				fig.Series = append(fig.Series, measured, analytic)
				// "The models qualitative and quantitative predictions are in
				// close agreement with the measured results."
				last := len(measured.Y) - 1
				// The virtual cluster is the "real system": tasks can arrive
				// mid-burst (stationary owners), so measurements sit slightly
				// above the optimistic model — up to about one owner burst
				// (10s) on the slowest station. AbsTol covers that constant
				// offset, which is invisible at the paper's 0-1200s axis.
				checks = append(checks, Check{
					Name:   fmt.Sprintf("measured vs analytic max-task time, demand %gmin, W=12", minutes),
					Paper:  analytic.Y[last],
					Got:    measured.Y[last],
					AbsTol: 2.0,
					RelTol: 0.05,
				})
			}
			return Output{
				Figure: &fig,
				Checks: checks,
				Notes: "Measured curves sit at or slightly above the analytic ones (the model is an optimistic " +
					"bound; the virtual cluster includes mid-burst arrivals and wall-clock owner thinking), " +
					"matching the paper's 'close agreement' at plot scale.",
			}, nil
		},
	}
}

func figure11() Definition {
	return Definition{
		ID:    "fig11",
		Paper: "Figure 11: Experimental Validation: Speedups",
		Workload: "same measurements as Figure 10; speedup = max-task-time(1) / max-task-time(W); " +
			"perfect line for reference",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			fig := plot.Figure{
				ID:     "fig11",
				Title:  "Experimental Validation: Speedups",
				XLabel: "Number of Workstations",
				YLabel: "Speedup",
			}
			perfect := plot.Series{Name: "perfect"}
			for w := 1; w <= 12; w++ {
				perfect.X = append(perfect.X, float64(w))
				perfect.Y = append(perfect.Y, float64(w))
			}
			fig.Series = append(fig.Series, perfect)
			var seedOff uint64 = 1000
			type sp struct {
				minutes float64
				w12     float64
			}
			var speedups []sp
			for _, minutes := range fig10Demands {
				demand := minutes * 60
				s := plot.Series{Name: fmt.Sprintf("demand = %g", minutes)}
				var base float64
				for w := 1; w <= 12; w++ {
					seedOff++
					params, err := cluster.SunELCParams(paperO, elcUtil)
					if err != nil {
						return Output{}, err
					}
					c, err := cluster.New(w, params, cfg.Seed+seedOff)
					if err != nil {
						return Output{}, err
					}
					res, err := cluster.Experiment{
						LocalComputation: cluster.LocalComputation{
							Cluster: c, Workers: w, TotalDemand: demand,
						},
						Runs: cfg.Runs,
					}.Run()
					if err != nil {
						return Output{}, err
					}
					mt := res.MaxTaskTime.Mean()
					if w == 1 {
						base = mt
					}
					s.X = append(s.X, float64(w))
					s.Y = append(s.Y, base/mt)
				}
				fig.Series = append(fig.Series, s)
				speedups = append(speedups, sp{minutes, s.Y[len(s.Y)-1]})
			}
			// "the speedup for a job demand of 1 is lower than the speedup
			// for a job demand of 16" at the large system sizes.
			first, last := speedups[0], speedups[len(speedups)-1]
			return Output{
				Figure: &fig,
				Checks: []Check{{
					Name:  "speedup(16min) > speedup(1min) at W=12 (positive)",
					Paper: 1, Got: boolTo01(last.w12 > first.w12),
				}},
				Notes: fmt.Sprintf("W=12 speedups: demand 1min %.2f, demand 16min %.2f", first.w12, last.w12),
			}, nil
		},
	}
}
