package experiment

import (
	"fmt"
	"strings"
)

// Result pairs a definition with its output for reporting.
type Result struct {
	Definition
	Output
	Err error
}

// RunAll executes every experiment with the given configuration.
func RunAll(cfg Config) []Result {
	defs := All()
	out := make([]Result, 0, len(defs))
	for _, d := range defs {
		o, err := d.Run(cfg)
		out = append(out, Result{Definition: d, Output: o, Err: err})
	}
	return out
}

// MarkdownReport renders paper-vs-measured for a set of results — the body
// of EXPERIMENTS.md.
func MarkdownReport(results []Result) string {
	var sb strings.Builder
	sb.WriteString("| Experiment | Check | Paper | Measured | Status |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&sb, "| %s | run failed | — | — | ERROR: %v |\n", r.ID, r.Err)
			continue
		}
		if len(r.Checks) == 0 {
			fmt.Fprintf(&sb, "| %s | (shape only — see %s data) | — | — | OK |\n", r.ID, r.ID)
			continue
		}
		for _, c := range r.Checks {
			status := "OK"
			if !c.Pass() {
				status = "MISS"
			}
			fmt.Fprintf(&sb, "| %s | %s | %.4g | %.4g | %s |\n", r.ID, c.Name, c.Paper, c.Got, status)
		}
	}
	var notes []string
	for _, r := range results {
		if r.Err == nil && r.Notes != "" {
			notes = append(notes, fmt.Sprintf("- **%s**: %s", r.ID, r.Notes))
		}
	}
	if len(notes) > 0 {
		sb.WriteString("\nNotes:\n\n")
		sb.WriteString(strings.Join(notes, "\n"))
		sb.WriteString("\n")
	}
	return sb.String()
}

// FailedChecks collects all failing checks across results.
func FailedChecks(results []Result) []Check {
	var fails []Check
	for _, r := range results {
		for _, c := range r.Checks {
			if !c.Pass() {
				fails = append(fails, c)
			}
		}
	}
	return fails
}
