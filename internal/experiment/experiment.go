// Package experiment defines one reproducible experiment per figure and
// table in the paper's evaluation, plus the simulation-validation run of
// Section 2.2 and the conclusions' threshold table. Each definition knows
// its workload, regenerates its data series, and carries "checks" — the
// numbers the paper quotes in prose — so EXPERIMENTS.md can report
// paper-vs-measured for every artifact.
package experiment

import (
	"fmt"
	"math"
	"sort"

	"feasim/internal/plot"
	"feasim/internal/sim"
)

// Check compares a reproduced value against one the paper quotes.
type Check struct {
	Name  string
	Paper float64 // the paper's number
	Got   float64 // our number
	// AbsTol and RelTol define the acceptance band: pass when
	// |Got-Paper| <= AbsTol + RelTol*|Paper|.
	AbsTol, RelTol float64
}

// Pass reports whether the reproduced value is inside the band.
func (c Check) Pass() bool {
	return math.Abs(c.Got-c.Paper) <= c.AbsTol+c.RelTol*math.Abs(c.Paper)
}

func (c Check) String() string {
	status := "OK"
	if !c.Pass() {
		status = "MISS"
	}
	return fmt.Sprintf("[%s] %s: paper %.4g, measured %.4g", status, c.Name, c.Paper, c.Got)
}

// Output is the result of running one experiment definition.
type Output struct {
	Figure *plot.Figure // line-chart experiments
	Table  *plot.Table  // tabular experiments
	Checks []Check
	Notes  string
}

// Config tunes experiment execution. The zero value is NOT valid; use
// DefaultConfig (paper-fidelity) or TestConfig (scaled down for CI).
type Config struct {
	// Seed drives all stochastic experiments.
	Seed uint64
	// Runs is the repetition count for the PVM experiment (the paper: 10).
	Runs int
	// WStep is the sweep granularity over workstation counts in analytic
	// figures (1 reproduces every plotted point).
	WStep int
	// Protocol is the simulation output-analysis protocol for the
	// validation experiment.
	Protocol sim.Protocol
	// ValidationWs lists the system sizes the validation experiment
	// simulates.
	ValidationWs []int
}

// DefaultConfig reproduces the paper's settings.
func DefaultConfig() Config {
	return Config{
		Seed:         1993, // the paper's year; any seed works
		Runs:         10,
		WStep:        1,
		Protocol:     sim.DefaultProtocol(),
		ValidationWs: []int{1, 10, 20, 40, 60, 80, 100},
	}
}

// TestConfig is a scaled-down configuration for fast deterministic tests.
func TestConfig() Config {
	return Config{
		Seed:         1993,
		Runs:         6,
		WStep:        7,
		Protocol:     sim.Protocol{Batches: 10, BatchSize: 200, Level: 0.90, MaxRel: 0, MaxSamples: 1 << 20},
		ValidationWs: []int{1, 50, 100},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Runs < 1 {
		return fmt.Errorf("experiment: Runs must be >= 1, got %d", c.Runs)
	}
	if c.WStep < 1 {
		return fmt.Errorf("experiment: WStep must be >= 1, got %d", c.WStep)
	}
	if len(c.ValidationWs) == 0 {
		return fmt.Errorf("experiment: ValidationWs must not be empty")
	}
	return c.Protocol.Validate()
}

// Definition is one reproducible experiment.
type Definition struct {
	ID       string // stable identifier, e.g. "fig01"
	Paper    string // the paper's caption
	Workload string // parameters in prose, for DESIGN/EXPERIMENTS docs
	Run      func(Config) (Output, error)
}

// All returns every experiment in paper order.
func All() []Definition {
	return []Definition{
		figure01(), figure02(), figure03(), figure04(), figure05(),
		figure06(), figure07(), figure08(), figure09(), figure10(),
		figure11(), simValidation(), thresholdTable(),
		extension01(), extension02(), extension03(),
	}
}

// ByID finds one experiment.
func ByID(id string) (Definition, bool) {
	for _, d := range All() {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	defs := All()
	ids := make([]string, len(defs))
	for i, d := range defs {
		ids[i] = d.ID
	}
	return ids
}

// sortedUtils are the owner utilizations all analytic figures sweep.
var paperUtils = []float64{0.01, 0.05, 0.1, 0.2}

// wSweep builds 1..100 with the configured step, always including 1 and 100.
func wSweep(step int) []int {
	set := map[int]bool{1: true, 100: true}
	for w := 1; w <= 100; w += step {
		set[w] = true
	}
	ws := make([]int, 0, len(set))
	for w := range set {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}
