package experiment

import (
	"fmt"

	"feasim/internal/core"
	"feasim/internal/plot"
	"feasim/internal/rng"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// Extension experiments — not figures from the paper, but the studies its
// Sections 2.2 and 5 call for. They appear in cmd/figures output alongside
// the paper artifacts, prefixed "ext".

// extension01 sweeps the owner-demand squared coefficient of variation,
// quantifying Section 2.1's optimism point 2 ("typical processes experience
// a much larger variance") with the general simulator.
func extension01() Definition {
	return Definition{
		ID:    "ext01",
		Paper: "Extension (paper §2.2 future work): owner service-demand variance sweep",
		Workload: "general simulator, W=12, T=100, O mean 10, util 10%; owner demand deterministic " +
			"(CV²=0), exponential (CV²=1), balanced hyperexponential CV² in {4,16,64}",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			samples := 100 * cfg.Runs
			type pt struct {
				cv2  float64
				dist rng.Dist
			}
			pts := []pt{
				{0, rng.Deterministic{V: 10}},
				{1, rng.Exponential{M: 10}},
				{4, rng.BalancedHyperExp(10, 4)},
				{16, rng.BalancedHyperExp(10, 16)},
				{64, rng.BalancedHyperExp(10, 64)},
			}
			s := plot.Series{Name: "simulated mean job time"}
			for i, q := range pts {
				base := sim.HomogeneousGeometric(12, 100, 10, 1.0/90)
				for k := range base.Stations {
					base.Stations[k].OwnerDemand = q.dist
				}
				base.Seed = cfg.Seed + uint64(i)
				base.WarmupJobs = 20
				g, err := sim.NewGeneral(base)
				if err != nil {
					return Output{}, err
				}
				st, err := g.Run(samples)
				if err != nil {
					return Output{}, err
				}
				var sum stats.Summary
				for _, x := range st.Samples {
					sum.Add(x.JobTime)
				}
				s.X = append(s.X, q.cv2)
				s.Y = append(s.Y, sum.Mean())
			}
			// The paper's model (deterministic O) as the optimistic floor.
			p, err := core.ParamsFromUtilization(1200, 12, 10, 0.1)
			if err != nil {
				return Output{}, err
			}
			ana, err := core.Analyze(p)
			if err != nil {
				return Output{}, err
			}
			floor := plot.Series{Name: "analytic bound (deterministic O)"}
			for _, x := range s.X {
				floor.X = append(floor.X, x)
				floor.Y = append(floor.Y, ana.EJob)
			}
			fig := plot.Figure{
				ID:     "ext01",
				Title:  "Owner demand variance vs job time (W=12, T=100, util 10%)",
				XLabel: "owner demand CV^2",
				YLabel: "mean job time",
				Series: []plot.Series{s, floor},
			}
			mono := true
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					mono = false
				}
			}
			return Output{
				Figure: &fig,
				Checks: []Check{
					{Name: "job time nondecreasing in owner CV² (positive)", Paper: 1, Got: boolTo01(mono)},
					{Name: "deterministic case above analytic floor", Paper: 1,
						Got: boolTo01(s.Y[0] >= ana.EJob*0.98)},
				},
				Notes: fmt.Sprintf("mean job time grows from %.1f (CV²=0) to %.1f (CV²=64); analytic floor %.1f",
					s.Y[0], s.Y[len(s.Y)-1], ana.EJob),
			}, nil
		},
	}
}

// extension02 sweeps the multiprogramming level: several parallel jobs
// sharing the same non-dedicated cluster (the paper analyzes exactly one).
func extension02() Definition {
	return Definition{
		ID:    "ext02",
		Paper: "Extension (paper §2 assumption relaxed): multiple concurrent parallel jobs",
		Workload: "closed multi-job simulator, W=8, T=100, O=10, util 10%, job think exp(50); " +
			"multiprogramming level K in {1,2,4,8}",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			n := 25 * cfg.Runs
			base := sim.HomogeneousGeometric(8, 100, 10, 1.0/90)
			mj := sim.MultiJobConfig{
				Stations:     base.Stations,
				TaskDemand:   base.TaskDemand,
				JobThink:     rng.Exponential{M: 50},
				Seed:         cfg.Seed,
				WarmupPerJob: 5,
			}
			levels := []int{1, 2, 4, 8}
			pts, err := sim.MultiJobSweepLevels(mj, levels, n)
			if err != nil {
				return Output{}, err
			}
			resp := plot.Series{Name: "mean response time"}
			thr := plot.Series{Name: "throughput x1000"}
			for _, pt := range pts {
				resp.X = append(resp.X, float64(pt.Jobs))
				resp.Y = append(resp.Y, pt.MeanResponse)
				thr.X = append(thr.X, float64(pt.Jobs))
				thr.Y = append(thr.Y, pt.Throughput*1000)
			}
			fig := plot.Figure{
				ID:     "ext02",
				Title:  "Multi-job contention (W=8, T=100, util 10%)",
				XLabel: "concurrent parallel jobs K",
				YLabel: "time / scaled throughput",
				Series: []plot.Series{resp, thr},
			}
			// K=1 must agree with the single-job analysis within a few %.
			p, err := core.ParamsFromUtilization(800, 8, 10, 0.1)
			if err != nil {
				return Output{}, err
			}
			ana, err := core.Analyze(p)
			if err != nil {
				return Output{}, err
			}
			mono := true
			for i := 1; i < len(resp.Y); i++ {
				if resp.Y[i] <= resp.Y[i-1] {
					mono = false
				}
			}
			return Output{
				Figure: &fig,
				Checks: []Check{
					{Name: "K=1 mean response vs analytic E_j", Paper: ana.EJob, Got: resp.Y[0], RelTol: 0.06},
					{Name: "response strictly grows with K (positive)", Paper: 1, Got: boolTo01(mono)},
				},
				Notes: fmt.Sprintf("response grows %.1f → %.1f from K=1 to K=8; throughput saturates at %.4f jobs/unit",
					resp.Y[0], resp.Y[len(resp.Y)-1], thr.Y[len(thr.Y)-1]/1000),
			}, nil
		},
	}
}
