package experiment

import (
	"fmt"

	"feasim/internal/plot"
	"feasim/internal/rng"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// extension03 studies heterogeneity: the paper assumes every workstation
// has the same owner utilization; here the same *mean* utilization is
// spread unevenly across stations. Because the job waits for its slowest
// task, concentrating owner activity on a few stations is strictly worse
// than spreading it — a placement lesson for real clusters.
func extension03() Definition {
	return Definition{
		ID:    "ext03",
		Paper: "Extension (paper homogeneity assumption relaxed): utilization spread at fixed mean",
		Workload: "general simulator, W=12, T=100, O=10, mean owner utilization 10%; spread " +
			"configurations: homogeneous, half 5%/half 15%, half 2%/half 18%, two hogs at 50% + ten at 2%",
		Run: func(cfg Config) (Output, error) {
			if err := cfg.Validate(); err != nil {
				return Output{}, err
			}
			samples := 100 * cfg.Runs
			// Each configuration lists per-station utilizations with mean 0.10.
			configs := []struct {
				name   string
				spread float64 // population SD of the utilizations, the x-axis
				utils  []float64
			}{
				{"homogeneous", 0, repeatU(0.10, 12)},
				{"±5%", 0.05, append(repeatU(0.05, 6), repeatU(0.15, 6)...)},
				{"±8%", 0.08, append(repeatU(0.02, 6), repeatU(0.18, 6)...)},
				{"two hogs", 0.1823, append(repeatU(0.50, 2), repeatU(0.02, 10)...)},
			}
			s := plot.Series{Name: "mean job time"}
			var notes string
			for i, c := range configs {
				gcfg := sim.GeneralConfig{
					TaskDemand: sim.HomogeneousGeometric(1, 100, 10, 0.01).TaskDemand,
					Seed:       cfg.Seed + uint64(100+i),
					WarmupJobs: 20,
				}
				var mean float64
				for _, u := range c.utils {
					mean += u / float64(len(c.utils))
					p := u / (10 * (1 - u)) // invert equation (8) with O=10
					gcfg.Stations = append(gcfg.Stations, sim.StationConfig{
						OwnerThink:  rng.Geometric{P: p},
						OwnerDemand: rng.Deterministic{V: 10},
					})
				}
				if df := mean - 0.10; df > 1e-9 || df < -1e-9 {
					return Output{}, fmt.Errorf("ext03: config %q mean utilization %v != 0.10", c.name, mean)
				}
				g, err := sim.NewGeneral(gcfg)
				if err != nil {
					return Output{}, err
				}
				st, err := g.Run(samples)
				if err != nil {
					return Output{}, err
				}
				var sum stats.Summary
				for _, x := range st.Samples {
					sum.Add(x.JobTime)
				}
				s.X = append(s.X, c.spread)
				s.Y = append(s.Y, sum.Mean())
				notes += fmt.Sprintf("%s: %.1f; ", c.name, sum.Mean())
			}
			fig := plot.Figure{
				ID:     "ext03",
				Title:  "Utilization spread vs job time (W=12, T=100, mean util 10%)",
				XLabel: "per-station utilization spread (SD)",
				YLabel: "mean job time",
				Series: []plot.Series{s},
			}
			mono := true
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					mono = false
				}
			}
			return Output{
				Figure: &fig,
				Checks: []Check{{
					Name:  "job time nondecreasing in utilization spread (positive)",
					Paper: 1, Got: boolTo01(mono),
				}},
				Notes: "mean job time by configuration: " + notes +
					"the busiest station dominates E[max], so spreading owner load helps",
			}, nil
		},
	}
}

func repeatU(u float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = u
	}
	return out
}
