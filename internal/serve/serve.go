// Package serve exposes the typed Query/Answer API of internal/solve as a
// long-running HTTP/JSON service — the request/response front-end the
// ROADMAP's "heavy traffic" north star asks for, put directly over the PR 3
// envelope so the CLI, the library and the wire all speak one format.
//
// Endpoints:
//
//	POST /v1/query?backend=NAME   one query envelope {"kind": ...}; answers
//	                              with {"kind", "backend", "cached",
//	                              "elapsed_ns", "answer"}
//	POST /v1/batch?backend=NAME   a JSON array of query envelopes, answered
//	                              concurrently; one response with a per-item
//	                              status + answer (or error) in request
//	                              order
//	POST /v1/sweep                a QuerySweepSpec grid; answers with the
//	                              collected results in grid order
//	GET  /v1/healthz              liveness probe
//	GET  /v1/stats                cache hits/misses/coalesced, in-flight
//	                              gauge, per-kind counters, uptime
//
// Batches amortize the per-request overhead of the hot cache-hit path: the
// whole array shares one deadline and occupies one concurrency-limiter slot,
// its items fan out across an internal worker pool straight into the shared
// answer layer (so duplicate envelopes in one batch — or across concurrent
// batches — coalesce onto a single solve), and a malformed or failing item
// reports its own status without failing its neighbors. The batch request
// itself is 200 whenever the array was admitted at all.
//
// Error taxonomy: a body that does not decode or validate is 400; an
// unknown backend name is 400; a (backend, kind) pair outside the backend's
// Capabilities is 501 (mapped from *solve.UnsupportedError); a solve that
// exceeds the per-request deadline is 504; a request whose context ends
// while it is still queued on the concurrency limiter is 503; a solve cut
// short by the client disconnecting is 499 (and deliberately not counted
// in the Errors stat); a request turned away at admission because its
// estimated queue wait exceeds its deadline is 429 with a Retry-After hint
// (counted in Rejected, not Errors — shedding is the overload protection
// working); a request that panics is answered 500 by the recovery
// middleware and counted in Panics, never allowed to kill the process; any
// other solver failure (a workload the backend cannot express numerically,
// e.g. non-integral task demand on the exact simulator) is 422. Error
// bodies are {"error": "..."}.
//
// Sweeps run on the query-sweep engine, which builds its backends per spec
// from the standard registry: a spec that does not set its own protocol or
// warmup inherits the server's Options, so /v1/query and /v1/sweep answer
// the same envelope identically — but solvers injected via Config.Solvers
// are not visible to /v1/sweep, and each sweep dedups on the engine's
// per-sweep cache rather than the server's LRU.
//
// In front of the solvers sits the shared answer layer of internal/solve:
// one size-bounded LRU across all backends (keys include the backend name)
// plus single-flight coalescing, so concurrent identical queries — the hot
// case under heavy traffic — execute once. Analytic answers are cached by
// scenario core (seed-independent); stochastic backends are cached by their
// full envelope, seed included, so a cached answer is always the one the
// query would have computed.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"feasim/internal/fault"
	"feasim/internal/peer"
	"feasim/internal/sim"
	"feasim/internal/solve"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultMaxInFlight bounds concurrently executing query/sweep requests.
	DefaultMaxInFlight = 64
	// DefaultRequestTimeout is the per-request solve deadline.
	DefaultRequestTimeout = time.Minute
	// maxBodyBytes caps request bodies; envelopes are small, sweeps and
	// batches modest.
	maxBodyBytes = 1 << 20
	// maxBatchItems caps one /v1/batch array: a batch shares one limiter
	// slot, so its internal fan-out must stay bounded.
	maxBatchItems = 1024
)

// Config configures a Server. The zero value serves the three standard
// backends with default options.
type Config struct {
	// Solvers maps backend names to implementations; nil means the three
	// standard backends (analytic, exact, des) built with Options. Every
	// solver is wrapped in the shared answer cache.
	Solvers map[string]solve.Solver
	// Options configures the standard backends when Solvers is nil.
	Options solve.Options
	// CacheCapacity bounds the shared answer LRU; <= 0 means
	// solve.DefaultAnswerCacheCapacity.
	CacheCapacity int
	// MaxInFlight bounds concurrently executing query/sweep requests;
	// <= 0 means DefaultMaxInFlight. Excess requests wait their turn (and
	// time out under the request deadline if the server stays saturated).
	MaxInFlight int
	// RequestTimeout is the per-request solve deadline; 0 means
	// DefaultRequestTimeout, negative disables the deadline.
	RequestTimeout time.Duration
	// DefaultBackend answers queries that do not name one with ?backend=;
	// "" means the analytic backend. Must be a key of the solver set.
	DefaultBackend string
	// SweepWorkers bounds each sweep's worker pool: specs that leave
	// Workers at 0 get this value, and client-supplied Workers are clamped
	// to it. 0 means the engine default (GOMAXPROCS).
	SweepWorkers int
	// Cluster, when non-nil, makes this node a member of the multi-node
	// answer tier: queries whose routing key is homed on a healthy peer are
	// forwarded there (and the answer cached locally as a replica) instead
	// of solved locally. New starts the cluster's health prober; Shutdown
	// stops it. Nil means single-node operation; /v1/cluster then reports
	// {"enabled": false}. All members must serve identically-configured
	// solver sets — the routing key is cache identity, which assumes one
	// backend name means one configuration fleet-wide.
	Cluster *peer.Cluster
	// ShedAnalytic opts into degraded-mode load shedding: when every limiter
	// slot is busy, a query addressed to a stochastic backend whose kind the
	// analytic backend also answers is served by the analytic backend
	// immediately — marked "degraded": true, counted in Stats.Sheds — instead
	// of queueing. Off by default: shedding trades fidelity for latency and
	// the operator must choose that trade.
	ShedAnalytic bool
	// Fault, when non-nil, wraps every solver with the chaos injector (the
	// peer transport is wrapped by the caller via Config.Client on the
	// cluster side). Nil injects nothing. For smoke tests and chaos drills
	// only — injected faults are indistinguishable from real ones downstream.
	Fault *fault.Injector
}

// Stats is the /v1/stats payload (and the Server.Stats snapshot). Queries
// counts /v1/query requests; Batches counts /v1/batch requests and
// BatchItems their parsed envelopes (each of which also counts in PerKind).
type Stats struct {
	UptimeNS   int64 `json:"uptime_ns"`
	InFlight   int64 `json:"in_flight"`
	Waiting    int64 `json:"waiting"` // queued on the limiter right now
	Queries    int64 `json:"queries"`
	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batch_items"`
	Sweeps     int64 `json:"sweeps"`
	Errors     int64 `json:"errors"`
	// Rejected counts 429 admission rejections (deadline-aware load
	// shedding); deliberately not part of Errors — rejecting early is the
	// overload protection working, not the service failing.
	Rejected int64 `json:"rejected"`
	// Panics counts recovered request panics (each also a 500 in Errors).
	Panics int64 `json:"panics"`
	// Sheds counts queries answered by the analytic backend in degraded mode.
	Sheds   int64            `json:"sheds"`
	PerKind map[string]int64 `json:"per_kind"`
	Cache   solve.CacheStats `json:"cache"`
	// Cluster carries the answer-tier view (ring, peer health,
	// forward/fallback counters) when cluster mode is on; omitted otherwise.
	Cluster *peer.Status `json:"cluster,omitempty"`
	// Chaos carries the fault injector's counters when one is configured.
	Chaos *fault.Stats `json:"chaos,omitempty"`
}

// Server is the HTTP front-end. Construct with New; serve with Serve (or
// mount Handler under an existing mux); stop with Shutdown, which drains
// in-flight requests.
type Server struct {
	solvers        map[string]*solve.CachedSolver
	backends       []string // sorted, for error messages
	cache          *solve.AnswerCache
	options        solve.Options // fills unset sweep-spec protocol/warmup
	defaultBackend string
	timeout        time.Duration
	sem            chan struct{}
	sweepWorkers   int
	cluster        *peer.Cluster // nil: single-node
	shedAnalytic   bool
	fault          *fault.Injector // nil: no chaos
	mux            *http.ServeMux
	handler        http.Handler // mux wrapped in panic recovery
	http           *http.Server

	parsed parseCache

	start      time.Time
	inFlight   atomic.Int64
	waiting    atomic.Int64 // requests queued on the limiter
	occupancy  atomic.Int64 // EWMA of slot hold time, ns (admission estimator)
	queries    atomic.Int64
	batches    atomic.Int64
	batchItems atomic.Int64
	sweeps     atomic.Int64
	errors     atomic.Int64
	rejected   atomic.Int64
	panics     atomic.Int64
	sheds      atomic.Int64
	perKind    map[string]*atomic.Int64
}

// parseCache memoizes ParseQuery by the raw envelope bytes. Under heavy
// traffic the same envelopes arrive verbatim over and over (the cache-hit
// case the service exists for), and the two-pass strict decode is several
// times the cost of the answer lookup itself. Reads are lock-free
// (sync.Map); the bound is enforced by swapping in a fresh map once the
// entry count passes parseCacheCap — crude eviction, but envelope diversity
// is tiny next to the churn of a real LRU and the swap costs one pointer
// store. Parsed queries are validated before caching and are treated as
// immutable by everything downstream; parse *errors* are never cached, so
// the malformed (cold) path stays un-memoized.
type parseCache struct {
	entries atomic.Int64
	m       atomic.Pointer[sync.Map]
}

// parseCacheCap bounds the memo's entry count and parseCacheMaxEntryBytes
// its per-entry key size: envelopes above it (legal — maxBodyBytes is 1 MB)
// are parsed but never memoized, so an adversarial stream of huge distinct
// envelopes cannot pin more than parseCacheCap × parseCacheMaxEntryBytes
// ≈ 4 MB of raw keys.
const (
	parseCacheCap           = 4096
	parseCacheMaxEntryBytes = 1 << 10
)

func (p *parseCache) parse(env []byte) (solve.Query, error) {
	memoize := len(env) <= parseCacheMaxEntryBytes
	var m *sync.Map
	if memoize {
		m = p.m.Load()
		if m == nil {
			m = &sync.Map{}
			if !p.m.CompareAndSwap(nil, m) {
				m = p.m.Load()
			}
		}
		if v, ok := m.Load(string(env)); ok {
			return v.(solve.Query), nil
		}
	}
	q, err := solve.ParseQuery(env)
	if err != nil {
		return nil, err
	}
	if !memoize {
		return q, nil
	}
	if p.entries.Add(1) > parseCacheCap {
		p.entries.Store(0)
		m = &sync.Map{}
		p.m.Store(m)
	}
	m.Store(string(env), q)
	return q, nil
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	inner := cfg.Solvers
	if inner == nil {
		inner = make(map[string]solve.Solver, len(solve.Backends()))
		for _, name := range solve.Backends() {
			sv, err := solve.NewSolver(name, cfg.Options)
			if err != nil {
				return nil, err
			}
			inner[name] = sv
		}
	}
	if len(inner) == 0 {
		return nil, fmt.Errorf("serve: no solvers configured")
	}
	def := cfg.DefaultBackend
	if def == "" {
		def = solve.BackendAnalytic
		if _, ok := inner[def]; !ok {
			return nil, fmt.Errorf("serve: config needs DefaultBackend when the solver set lacks %q", def)
		}
	}
	if _, ok := inner[def]; !ok {
		return nil, fmt.Errorf("serve: default backend %q is not in the solver set", def)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	s := &Server{
		solvers:        make(map[string]*solve.CachedSolver, len(inner)),
		cache:          solve.NewAnswerCache(cfg.CacheCapacity),
		options:        cfg.Options,
		defaultBackend: def,
		timeout:        timeout,
		sem:            make(chan struct{}, maxInFlight),
		sweepWorkers:   cfg.SweepWorkers,
		cluster:        cfg.Cluster,
		shedAnalytic:   cfg.ShedAnalytic,
		fault:          cfg.Fault,
		start:          time.Now(),
		perKind:        make(map[string]*atomic.Int64, len(solve.QueryKinds())),
	}
	for name, sv := range inner {
		// Fault.Solver is the identity when no injector is configured.
		s.solvers[name] = solve.NewCachedSolver(s.fault.Solver(sv), s.cache)
		s.backends = append(s.backends, name)
	}
	sort.Strings(s.backends)
	for _, kind := range solve.QueryKinds() {
		s.perKind[kind] = &atomic.Int64{}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.handler = s.recoverPanics(s.mux)
	s.http = &http.Server{Handler: s.handler}
	if s.cluster != nil {
		s.cluster.Start()
	}
	return s, nil
}

// Handler returns the service's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// recoverPanics is the outermost layer of the handler chain: a panicking
// request — an injected chaos panic or a genuine solver bug — costs one 500
// and a counter bump, never the process. net/http's deliberate
// ErrAbortHandler is re-raised so connection aborts keep their meaning.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Add(1)
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: recovered request panic: %v", p))
		}()
		next.ServeHTTP(w, r)
	})
}

// Backends lists the served backend names in sorted order.
func (s *Server) Backends() []string { return append([]string(nil), s.backends...) }

// Serve accepts connections on l until Shutdown; like net/http it returns
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown stops accepting new requests and waits for in-flight ones to
// drain, bounded by ctx — the graceful path. In cluster mode it also stops
// the health prober.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	if s.cluster != nil {
		s.cluster.Close()
	}
	return err
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	st := Stats{
		UptimeNS:   time.Since(s.start).Nanoseconds(),
		InFlight:   s.inFlight.Load(),
		Waiting:    s.waiting.Load(),
		Queries:    s.queries.Load(),
		Batches:    s.batches.Load(),
		BatchItems: s.batchItems.Load(),
		Sweeps:     s.sweeps.Load(),
		Errors:     s.errors.Load(),
		Rejected:   s.rejected.Load(),
		Panics:     s.panics.Load(),
		Sheds:      s.sheds.Load(),
		PerKind:    make(map[string]int64, len(s.perKind)),
		Cache:      s.cache.Stats(),
	}
	for kind, n := range s.perKind {
		st.PerKind[kind] = n.Load()
	}
	if s.cluster != nil {
		cst := s.cluster.Status()
		st.Cluster = &cst
	}
	if s.fault != nil && s.fault.Spec().Enabled() {
		fst := s.fault.Stats()
		st.Chaos = &fst
	}
	return st
}

// admit applies the per-request deadline and the concurrency limiter. When
// it returns ok, the caller must call release when done.
//
// Admission is deadline-aware: when every slot is busy and the estimated
// queue wait (queue depth × smoothed slot hold time / capacity) already
// exceeds the request's remaining deadline, the request is rejected up front
// with 429 and a Retry-After hint instead of queueing to a certain 503/504.
// Rejecting early under overload is cheaper for both sides: the client can
// retry elsewhere immediately and the server's queue holds only requests
// that can still make their deadlines.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (ctx context.Context, release func(), ok bool) {
	ctx = r.Context()
	cancel := context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	if deadline, has := ctx.Deadline(); has && len(s.sem) == cap(s.sem) {
		if est := s.queueWait(); est > 0 && est > time.Until(deadline) {
			cancel()
			s.rejectOverload(w, est)
			return nil, nil, false
		}
	}
	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.waiting.Add(-1)
		cancel()
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server saturated: %w", ctx.Err()))
		return nil, nil, false
	}
	s.waiting.Add(-1)
	s.inFlight.Add(1)
	admitted := time.Now()
	return ctx, func() {
		s.noteOccupancy(time.Since(admitted))
		s.inFlight.Add(-1)
		<-s.sem
		cancel()
	}, true
}

// noteOccupancy folds one released slot's hold time into the admission
// estimator's EWMA (alpha 1/8 — a few releases adjust it, one outlier does
// not swing it).
func (s *Server) noteOccupancy(d time.Duration) {
	for {
		old := s.occupancy.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if s.occupancy.CompareAndSwap(old, next) {
			return
		}
	}
}

// queueWait estimates how long a request arriving now would wait for a
// limiter slot: requests ahead of it (plus itself), drained cap-at-a-time,
// each holding a slot for the smoothed hold time. Zero when the estimator
// has no samples yet — admission then falls back to queue-and-timeout.
func (s *Server) queueWait() time.Duration {
	avg := s.occupancy.Load()
	if avg == 0 {
		return 0
	}
	return time.Duration((s.waiting.Load() + 1) * avg / int64(cap(s.sem)))
}

// rejectOverload writes the 429 admission rejection. Deliberately not routed
// through writeError: shedding is the overload protection working as
// designed, so it counts in Rejected, not Errors.
func (s *Server) rejectOverload(w http.ResponseWriter, est time.Duration) {
	s.rejected.Add(1)
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error: fmt.Sprintf("serve: overloaded: estimated queue wait %v exceeds the request deadline", est),
	})
}

// shedQuery is the opt-in degraded mode: with every limiter slot busy, a
// query bound for a stochastic backend is answered by the analytic backend
// right now — marked "degraded": true — rather than queued behind expensive
// simulations. Analytic answers cost microseconds, so they run without a
// limiter slot; that is the point of shedding to them. Returns false when the
// query cannot be shed (already analytic, or the analytic backend is absent
// or lacks the kind) — the caller then queues normally.
func (s *Server) shedQuery(w http.ResponseWriter, r *http.Request, sv *solve.CachedSolver, q solve.Query) bool {
	an, ok := s.solvers[solve.BackendAnalytic]
	if !ok || sv.Name() == solve.BackendAnalytic {
		return false
	}
	if !slices.Contains(an.Capabilities(), q.Kind()) {
		return false
	}
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	defer cancel()
	s.queries.Add(1)
	s.perKind[q.Kind()].Add(1)
	s.sheds.Add(1)
	start := time.Now()
	a, enc, cached, err := an.AnswerCachedEncoded(ctx, q)
	if err != nil {
		s.writeError(w, statusForSolveError(err), err)
		return true
	}
	s.writeJSON(w, http.StatusOK, queryResponse{
		Kind:      a.Kind(),
		Backend:   an.Name(),
		Cached:    cached,
		Degraded:  true,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Answer:    answerPayload(a, enc, cached),
	})
	return true
}

// queryResponse is the /v1/query success payload. Answer is either a typed
// solve.Answer (cold path) or the cache's pre-encoded json.RawMessage bytes
// (stochastic-key hits and cluster replicas) — identical on the wire.
type queryResponse struct {
	Kind    string `json:"kind"`
	Backend string `json:"backend"`
	Cached  bool   `json:"cached"`
	// Degraded marks an answer served by the analytic backend in place of
	// the requested one under shed-to-analytic load shedding.
	Degraded  bool  `json:"degraded,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns"`
	Answer    any   `json:"answer"`
}

// answerPayload picks the wire form of an answer: cached hits whose entry
// carries its canonical encoding are echoed as raw bytes, skipping the
// per-response reflection encode that PR 5 left on the stochastic hit path.
func answerPayload(a solve.Answer, enc []byte, cached bool) any {
	if cached && enc != nil {
		return json.RawMessage(enc)
	}
	return a
}

// sweepResponse is the /v1/sweep success payload.
type sweepResponse struct {
	Points  int                 `json:"points"`
	Failed  int                 `json:"failed"`
	Cached  int                 `json:"cached"`
	Results []solve.QueryResult `json:"results"`
}

// errorResponse is every error payload.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Read and validate before taking a limiter slot: the semaphore bounds
	// concurrent *solves*, and slow or malformed clients should not be able
	// to occupy it without ever reaching a solver.
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.parsed.parse(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sv, err := s.backend(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.shedAnalytic && len(s.sem) == cap(s.sem) {
		if s.shedQuery(w, r, sv, q) {
			return
		}
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.queries.Add(1)
	s.perKind[q.Kind()].Add(1)
	if s.cluster != nil {
		if r.Header.Get(peer.ForwardHeader) != "" {
			// Loop guard: a forwarded request is answered here no matter what
			// this node thinks the key's home is.
			s.cluster.NoteForwardedIn()
		} else if s.routeQuery(ctx, w, sv, q, body, r.URL.RawQuery) {
			return
		}
	}
	start := time.Now()
	a, enc, cached, err := sv.AnswerCachedEncoded(ctx, q)
	if err != nil {
		s.writeError(w, statusForSolveError(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, queryResponse{
		Kind:      a.Kind(),
		Backend:   sv.Name(),
		Cached:    cached,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Answer:    answerPayload(a, enc, cached),
	})
}

// batchItem is one element of the /v1/batch response, mirroring the
// queryResponse shape plus the per-item status of the error taxonomy.
type batchItem struct {
	Status    int    `json:"status"`
	Kind      string `json:"kind,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
	Answer    any    `json:"answer,omitempty"`
	Error     string `json:"error,omitempty"`
}

// batchResponse is the /v1/batch success payload; Items keeps request order.
type batchResponse struct {
	Backend string      `json:"backend"`
	OK      int         `json:"ok"`
	Failed  int         `json:"failed"`
	Cached  int         `json:"cached"`
	Items   []batchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// As in handleQuery: read, decode the array shell and resolve the
	// backend before occupying a limiter slot. Individual envelopes are
	// parsed per item — a malformed one fails alone.
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var envs []json.RawMessage
	if err := json.Unmarshal(body, &envs); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad batch: want a JSON array of query envelopes: %w", err))
		return
	}
	if len(envs) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty batch"))
		return
	}
	if len(envs) > maxBatchItems {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: batch of %d exceeds %d items", len(envs), maxBatchItems))
		return
	}
	sv, err := s.backend(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	queries := make([]solve.Query, len(envs))
	items := make([]batchItem, len(envs))
	todo := make([]int, 0, len(envs))
	for i, env := range envs {
		q, err := s.parsed.parse(env)
		if err != nil {
			items[i] = batchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		queries[i] = q
		todo = append(todo, i)
	}

	// One admission per batch: the array shares a deadline and one limiter
	// slot, and fans out over an internal pool bounded by the host's cores.
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.batches.Add(1)
	s.batchItems.Add(int64(len(todo)))
	for _, i := range todo {
		s.perKind[queries[i].Kind()].Add(1)
	}
	if s.cluster != nil {
		if r.Header.Get(peer.ForwardHeader) != "" {
			// Loop guard: answer a peer's sub-batch entirely locally.
			s.cluster.NoteForwardedIn()
		} else {
			todo = s.routeBatchItems(ctx, sv, envs, queries, items, todo, r.URL.RawQuery)
		}
	}
	answerItem := func(i int) {
		// A panicking item — injected or real — fails alone with a 500,
		// like any other per-item error; its worker keeps draining.
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.errors.Add(1)
				items[i] = batchItem{Status: http.StatusInternalServerError, Error: fmt.Sprintf("serve: recovered item panic: %v", p)}
			}
		}()
		start := time.Now()
		a, enc, cached, err := sv.AnswerCachedEncoded(ctx, queries[i])
		if err != nil {
			items[i] = batchItem{Status: statusForSolveError(err), Error: err.Error()}
			return
		}
		items[i] = batchItem{
			Status:    http.StatusOK,
			Kind:      a.Kind(),
			Cached:    cached,
			ElapsedNS: time.Since(start).Nanoseconds(),
			Answer:    answerPayload(a, enc, cached),
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		// A single worker is this goroutine: no pool, no channel hops.
		for _, i := range todo {
			answerItem(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					answerItem(i)
				}
			}()
		}
		for _, i := range todo {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	resp := batchResponse{Backend: sv.Name(), Items: items}
	for _, it := range items {
		if it.Status == http.StatusOK {
			resp.OK++
			if it.Cached {
				resp.Cached++
			}
		} else {
			resp.Failed++
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSweep dispatches on the ?mode= selector: the buffered grid sweep
// (the original /v1/sweep contract) or the streamed frontier refinement.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "grid":
		s.handleGridSweep(w, r)
	case "frontier":
		s.handleFrontierSweep(w, r)
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown sweep mode %q (want \"grid\" or \"frontier\")", mode))
	}
}

func (s *Server) handleGridSweep(w http.ResponseWriter, r *http.Request) {
	// As in handleQuery: decode before occupying a limiter slot.
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := solve.ParseQuerySweep(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// The client may size the sweep's worker pool down but never past the
	// server's bound — otherwise one request could multiply the MaxInFlight
	// concurrency guarantee by an arbitrary factor.
	maxWorkers := s.sweepWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if spec.Workers <= 0 || spec.Workers > maxWorkers {
		spec.Workers = maxWorkers
	}
	// A spec that does not configure its simulation backends inherits the
	// server's, so /v1/query and /v1/sweep answer one envelope identically.
	if spec.Protocol == nil && s.options.Protocol != (sim.Protocol{}) {
		pr := s.options.Protocol
		spec.Protocol = &pr
	}
	if spec.Warmup == 0 {
		spec.Warmup = s.options.Warmup
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.sweeps.Add(1)
	if spec.Base != nil {
		s.perKind[spec.Base.Kind()].Add(1)
	}
	results, err := solve.CollectQueries(ctx, spec)
	if err != nil {
		s.writeError(w, statusForSolveError(err), fmt.Errorf("sweep stopped after %d points: %w", len(results), err))
		return
	}
	resp := sweepResponse{Points: len(results), Results: results}
	for _, res := range results {
		if res.Err != nil {
			resp.Failed++
		}
		if res.Cached {
			resp.Cached++
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// frontierDoneRecord is the terminal NDJSON line of a completed frontier
// stream.
type frontierDoneRecord struct {
	Done  bool                `json:"done"`
	Stats solve.FrontierStats `json:"stats"`
}

// frontierErrorRecord is the terminal NDJSON line of a frontier stream cut
// short after the 200 status line was already committed. Status carries the
// taxonomy code the run would have returned had it failed before streaming
// (499 client-gone, 504 deadline), so clients need no out-of-band signal to
// distinguish a truncated stream from a complete one.
type frontierErrorRecord struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// handleFrontierSweep streams the adaptive boundary refinement as NDJSON:
// one line per resolved cell, flushed as each refinement level classifies
// it, then exactly one terminal record — done+stats on success, error+status
// on a mid-run cut. Probes run through the server's cached solver set, so
// repeated refinements (and grid sweeps over the same points) compound in
// the shared answer LRU.
func (s *Server) handleFrontierSweep(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := solve.ParseFrontier(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	backend := spec.Backend
	if backend == "" {
		backend = solve.BackendAnalytic
	}
	sv, ok := s.solvers[backend]
	if !ok {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown backend %q (want one of %v)", backend, s.backends))
		return
	}
	// Same worker clamp as the grid path: one request must not multiply the
	// MaxInFlight concurrency guarantee.
	maxWorkers := s.sweepWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if spec.Workers <= 0 || spec.Workers > maxWorkers {
		spec.Workers = maxWorkers
	}
	// The server's solvers already run at the server's protocol/warmup (and
	// through the fault injector and answer cache). A spec that overrides the
	// simulation protocol needs its own registry-built backend instead —
	// those probes bypass the shared cache, like any custom-protocol run.
	solver := solve.Solver(sv)
	if spec.Protocol != nil || spec.Warmup != 0 {
		solver = nil
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.sweeps.Add(1)
	if spec.Base != nil {
		s.perKind[spec.Base.Kind()].Add(1)
	}
	cells, stats, err := solve.SweepFrontierSolver(ctx, spec, solver)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	for c := range cells {
		if err := enc.Encode(c); err != nil {
			// The client is gone; drain the run via ctx cancellation upstream.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		streamed++
	}
	if err := ctx.Err(); err != nil {
		// The 200 status line is already on the wire; the taxonomy code
		// rides in the terminal record instead. 499 is the client's own
		// hang-up, not a service error — mirror writeError's counting.
		status := statusForSolveError(err)
		if status != statusClientClosedRequest {
			s.errors.Add(1)
		}
		enc.Encode(frontierErrorRecord{
			Error:  fmt.Sprintf("frontier sweep stopped after %d cells: %v", streamed, err),
			Status: status,
		})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	if err := enc.Encode(frontierDoneRecord{Done: true, Stats: stats()}); err == nil && flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// backend resolves the ?backend= selector against the solver set.
func (s *Server) backend(r *http.Request) (*solve.CachedSolver, error) {
	name := r.URL.Query().Get("backend")
	if name == "" {
		name = s.defaultBackend
	}
	sv, ok := s.solvers[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown backend %q (want one of %v)", name, s.backends)
	}
	return sv, nil
}

// readBody drains the (bounded) request body.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading request body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("serve: request body exceeds %d bytes", maxBodyBytes)
	}
	return body, nil
}

// statusClientClosedRequest reports a solve cut short because the client
// went away (the nginx 499 convention; net/http has no name for it). The
// response is unreadable by definition, but the status keeps logs truthful
// and writeError keeps these out of the Errors counter.
const statusClientClosedRequest = 499

// statusForSolveError maps solver failures onto the documented taxonomy.
func statusForSolveError(err error) int {
	switch {
	case errors.Is(err, solve.ErrPanicked):
		// A coalesced waiter whose single-flight leader panicked: the
		// leader's own request 500s via the recovery middleware; waiters
		// report the same server fault.
		return http.StatusInternalServerError
	case errors.Is(err, solve.ErrUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// encoderPool recycles response buffers (each carrying its own
// json.Encoder) across requests, so the hot cache-hit path — and the large
// batch responses — do not re-allocate an encoding buffer per response.
var encoderPool = sync.Pool{New: func() any {
	buf := &bytes.Buffer{}
	return &pooledEncoder{buf: buf, enc: json.NewEncoder(buf)}
}}

type pooledEncoder struct {
	buf *bytes.Buffer
	enc *json.Encoder
}

// pooledEncoderMaxBytes stops one huge response (a big sweep or batch) from
// pinning its buffer in the pool forever.
const pooledEncoderMaxBytes = 1 << 20

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	pe := encoderPool.Get().(*pooledEncoder)
	pe.buf.Reset()
	if err := pe.enc.Encode(v); err != nil {
		// Answers are plain data structs; failing to marshal one is a bug.
		// Even this path keeps the JSON error-body contract.
		s.errors.Add(1)
		pe.buf.Reset()
		fmt.Fprintf(pe.buf, "{\"error\": %q}\n", err.Error())
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(pe.buf.Bytes())
	if pe.buf.Cap() <= pooledEncoderMaxBytes {
		encoderPool.Put(pe)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	// A client hanging up mid-solve is its business, not a service error.
	if status != statusClientClosedRequest {
		s.errors.Add(1)
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
